package analytic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestYoungPeriodFormula(t *testing.T) {
	// sqrt(2 * 50 * 10000) = 1000.
	if got := YoungPeriod(50, 10000); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("young = %v", got)
	}
}

func TestDalyPeriodNearYoungForSmallC(t *testing.T) {
	y := YoungPeriod(1, 1e6)
	d := DalyPeriod(1, 1e6)
	if math.Abs(d-y)/y > 0.01 {
		t.Fatalf("daly %v should approach young %v for small C/M", d, y)
	}
}

func TestDalyPeriodDegradesGracefully(t *testing.T) {
	if got := DalyPeriod(300, 100); got != 100 {
		t.Fatalf("C >= 2M should clamp to M, got %v", got)
	}
}

func TestCheckpointWasteMinimizedAtYoung(t *testing.T) {
	const c, m = 20.0, 5000.0
	opt := YoungPeriod(c, m)
	wOpt := CheckpointWaste(c, m, opt)
	for _, f := range []float64{0.25, 0.5, 2, 4} {
		if w := CheckpointWaste(c, m, opt*f); w < wOpt {
			t.Fatalf("waste at %vx optimal (%v) below optimal waste (%v)", f, w, wOpt)
		}
	}
}

func TestCheckpointWasteClamped(t *testing.T) {
	if w := CheckpointWaste(1e9, 1, 1); w != 1 {
		t.Fatalf("waste should clamp to 1, got %v", w)
	}
}

func TestDalyWallTimeExceedsSolve(t *testing.T) {
	got := DalyWallTime(3600, 30, 60, 10000, YoungPeriod(30, 10000))
	if got <= 3600 {
		t.Fatalf("wall %v should exceed solve time", got)
	}
	// And be within a plausible overhead for these parameters (<2x).
	if got > 7200 {
		t.Fatalf("wall %v implausibly large", got)
	}
}

func TestDalyWallTimeMinimizedNearOptimal(t *testing.T) {
	const solve, c, r, m = 86400.0, 60.0, 120.0, 3600.0
	opt := DalyPeriod(c, m)
	wOpt := DalyWallTime(solve, c, r, m, opt)
	for _, f := range []float64{0.2, 5} {
		if w := DalyWallTime(solve, c, r, m, opt*f); w < wOpt {
			t.Fatalf("wall at %vx optimal (%v) below optimal (%v)", f, w, wOpt)
		}
	}
}

func TestAmdahlClassicLimits(t *testing.T) {
	if AmdahlSpeedup(0, 8) != 8 {
		t.Fatal("fully parallel should scale linearly")
	}
	if AmdahlSpeedup(1, 64) != 1 {
		t.Fatal("fully serial should not scale")
	}
	// Limit 1/s.
	if got := AmdahlSpeedup(0.1, 1<<20); got > 10 {
		t.Fatalf("speedup %v exceeds 1/s", got)
	}
}

func TestGustafsonLinearInP(t *testing.T) {
	if got := GustafsonSpeedup(0.1, 100); math.Abs(got-(0.1+0.9*100)) > 1e-12 {
		t.Fatalf("gustafson = %v", got)
	}
}

func TestAmdahlMonotoneProperty(t *testing.T) {
	f := func(sRaw uint8, pRaw uint16) bool {
		s := float64(sRaw) / 255
		p := int(pRaw%1000) + 1
		return AmdahlSpeedup(s, p+1) >= AmdahlSpeedup(s, p)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCavelanNonMonotone(t *testing.T) {
	// The key published finding: under faults + C/R, speedup peaks at
	// a finite p and then declines.
	speedup := func(p int) float64 { return CavelanSpeedup(0.0001, p, 5*365*24*3600, 60) }
	bestP, bestS := OptimalProcs(1<<20, speedup)
	if bestP <= 1 || bestP >= 1<<20 {
		t.Fatalf("optimal p = %d should be interior", bestP)
	}
	if speedup(1<<20) >= bestS {
		t.Fatal("speedup should decline past the optimum")
	}
}

func TestCavelanBelowAmdahl(t *testing.T) {
	for _, p := range []int{8, 64, 1024} {
		if CavelanSpeedup(0.01, p, 1e7, 100) >= AmdahlSpeedup(0.01, p) {
			t.Fatalf("faulty speedup should be below fault-free at p=%d", p)
		}
	}
}

func TestZhengLanRestartPenalty(t *testing.T) {
	base := ZhengLanAmdahl(0.01, 256, 1e7, 100, 0)
	with := ZhengLanAmdahl(0.01, 256, 1e7, 100, 500)
	if with >= base {
		t.Fatal("restart cost should reduce speedup")
	}
}

func TestZhengLanGustafsonAboveAmdahlAtScale(t *testing.T) {
	// Weak scaling sustains far higher speedups than strong scaling.
	a := ZhengLanAmdahl(0.05, 4096, 1e8, 60, 120)
	g := ZhengLanGustafson(0.05, 4096, 1e8, 60, 120)
	if g <= a {
		t.Fatalf("gustafson %v should exceed amdahl %v at scale", g, a)
	}
}

func TestHussainReplicationCrossover(t *testing.T) {
	// Hussain et al.: at small scale plain C/R wins (replication
	// wastes half the machine); at large scale replication's MTTI
	// advantage dominates — a crossover exists.
	const s, mtbf, c = 1e-6, 86400.0, 30.0 // 1-day node MTBF: failures hurt
	plainSmall := CavelanSpeedup(s, 64, mtbf, c)
	repSmall := HussainReplicationSpeedup(s, 64, mtbf, c)
	if repSmall >= plainSmall {
		t.Fatalf("replication should lose at small scale: %v vs %v", repSmall, plainSmall)
	}
	const big = 1 << 17
	plainBig := CavelanSpeedup(s, big, mtbf, c)
	repBig := HussainReplicationSpeedup(s, big, mtbf, c)
	if repBig <= plainBig {
		t.Fatalf("replication should win at large scale: %v vs %v", repBig, plainBig)
	}
}

func TestHussainMaxSpeedupHigher(t *testing.T) {
	// The paper's headline: replication allows a greater maximum
	// speedup than checkpoint-restart alone.
	const s, mtbf, c = 1e-6, 86400.0, 30.0
	_, bestPlain := OptimalProcs(1<<18, func(p int) float64 { return CavelanSpeedup(s, p, mtbf, c) })
	_, bestRep := OptimalProcs(1<<18, func(p int) float64 { return HussainReplicationSpeedup(s, p, mtbf, c) })
	if bestRep <= bestPlain {
		t.Fatalf("replication max %v should beat plain max %v", bestRep, bestPlain)
	}
}

func TestJinSpareNodes(t *testing.T) {
	// 10 expected failures, z=0 -> exactly 10.
	if got := JinSpareNodes(1000, 100, 0); got != 10 {
		t.Fatalf("spares = %d", got)
	}
	// z>0 adds margin.
	if JinSpareNodes(1000, 100, 2) <= 10 {
		t.Fatal("z-margin should add spares")
	}
}

func TestJinWallTime(t *testing.T) {
	// 4 failures expected; 2 spares cover half at 10s, rest requeue at 1000s.
	got := JinWallTime(400, 100, 10, 1000, 2)
	want := 400 + 2*10 + 2*1000
	if math.Abs(got-float64(want)) > 1e-9 {
		t.Fatalf("wall = %v, want %v", got, want)
	}
	// More spares never hurt.
	if JinWallTime(400, 100, 10, 1000, 10) > got {
		t.Fatal("extra spares increased wall time")
	}
}

func TestPanicsOnBadInputs(t *testing.T) {
	cases := []func(){
		func() { YoungPeriod(0, 1) },
		func() { DalyPeriod(1, 0) },
		func() { DalyWallTime(0, 1, 1, 1, 1) },
		func() { CheckpointWaste(1, 1, 0) },
		func() { AmdahlSpeedup(-0.1, 4) },
		func() { AmdahlSpeedup(0.5, 0) },
		func() { OptimalProcs(0, func(int) float64 { return 1 }) },
		func() { JinSpareNodes(0, 1, 1) },
		func() { JinWallTime(1, 1, 1, 1, -1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
