// Package analytic implements the fault-tolerance-aware analytical
// performance models from the paper's related-work section, used as
// baselines against BE-SST's concrete simulation approach:
//
//   - Young's and Daly's optimal checkpoint intervals and Daly's
//     expected-completion-time model;
//   - Cavelan et al., "When Amdahl meets Young/Daly" (CLUSTER'16):
//     Amdahl's law extended with failures and checkpoint-restart;
//   - Zheng & Lan's reliability-aware speedup models, extending both
//     Amdahl's and Gustafson's laws;
//   - Hussain et al. (DSN'20): reliability-aware speedup with dual
//     replication;
//   - Jin et al. (ICPP'10): spare-node provisioning for a
//     fault-tolerant environment.
//
// These capture the papers' qualitative behaviour (optimal process
// counts, non-monotone speedup under faults, replication's crossover)
// in simple closed forms; the BE-SST simulation refines them with
// machine-concrete models.
package analytic

import "math"

// YoungPeriod returns Young's first-order optimal checkpoint interval
// sqrt(2*C*M) for checkpoint cost C and mean time between failures M
// (both seconds, M for the whole job partition).
func YoungPeriod(c, mtbf float64) float64 {
	if c <= 0 || mtbf <= 0 {
		panic("analytic: non-positive checkpoint cost or MTBF")
	}
	return math.Sqrt(2 * c * mtbf)
}

// DalyPeriod returns Daly's higher-order optimal interval, which
// corrects Young's estimate when C is not negligible next to M:
//
//	tau = sqrt(2*C*M) * [1 + (1/3)*sqrt(C/(2M)) + (1/9)*(C/(2M))] - C
//
// valid for C < 2M; it degrades gracefully to M for larger C.
func DalyPeriod(c, mtbf float64) float64 {
	if c <= 0 || mtbf <= 0 {
		panic("analytic: non-positive checkpoint cost or MTBF")
	}
	if c >= 2*mtbf {
		return mtbf
	}
	x := math.Sqrt(c / (2 * mtbf))
	return math.Sqrt(2*c*mtbf)*(1+x/3+x*x/9) - c
}

// DalyWallTime returns Daly's expected wall-clock time to complete
// solve seconds of work with checkpoint cost c, restart cost r,
// exponential failures with MTBF m, and checkpoint interval tau:
//
//	T = m * exp(r/m) * (exp((tau+c)/m) - 1) * solve/tau
func DalyWallTime(solve, c, r, mtbf, tau float64) float64 {
	if solve <= 0 || tau <= 0 || mtbf <= 0 {
		panic("analytic: non-positive solve, tau, or MTBF")
	}
	return mtbf * math.Exp(r/mtbf) * (math.Expm1((tau + c) / mtbf)) * solve / tau
}

// CheckpointWaste returns the fraction of time lost to checkpointing
// plus expected rework for interval tau: W = C/tau + tau/(2M). The
// first-order waste model both Cavelan and Zheng/Lan build on.
func CheckpointWaste(c, mtbf, tau float64) float64 {
	if tau <= 0 || mtbf <= 0 {
		panic("analytic: non-positive tau or MTBF")
	}
	w := c/tau + tau/(2*mtbf)
	if w > 1 {
		w = 1
	}
	return w
}

// AmdahlSpeedup is the classic fault-free Amdahl speedup with serial
// fraction s on p processors.
func AmdahlSpeedup(s float64, p int) float64 {
	checkFrac(s)
	checkProcs(p)
	return 1 / (s + (1-s)/float64(p))
}

// GustafsonSpeedup is the classic fault-free Gustafson scaled speedup.
func GustafsonSpeedup(s float64, p int) float64 {
	checkFrac(s)
	checkProcs(p)
	return s + (1-s)*float64(p)
}

func checkFrac(s float64) {
	if s < 0 || s > 1 {
		panic("analytic: serial fraction outside [0,1]")
	}
}

func checkProcs(p int) {
	if p <= 0 {
		panic("analytic: non-positive processor count")
	}
}

// CavelanSpeedup returns the Amdahl speedup under failures with
// checkpoint-restart, following Cavelan et al.: the machine-wide MTBF
// shrinks as M/p, checkpoints are taken at the Young-optimal interval,
// and the achievable speedup is the fault-free Amdahl speedup scaled by
// (1 - waste). The result is non-monotone in p: past the optimum,
// additional processors add more failure waste than parallelism.
// nodeMTBF and ckptCost in seconds.
func CavelanSpeedup(s float64, p int, nodeMTBF, ckptCost float64) float64 {
	checkFrac(s)
	checkProcs(p)
	m := nodeMTBF / float64(p)
	tau := YoungPeriod(ckptCost, m)
	waste := CheckpointWaste(ckptCost, m, tau)
	return AmdahlSpeedup(s, p) * (1 - waste)
}

// ZhengLanAmdahl returns Zheng & Lan's reliability-aware Amdahl
// speedup: identical waste structure, retained separately because the
// two papers parameterize recovery differently — Zheng/Lan add a
// restart term per failure. restart is the per-failure restart cost in
// seconds.
func ZhengLanAmdahl(s float64, p int, nodeMTBF, ckptCost, restart float64) float64 {
	checkFrac(s)
	checkProcs(p)
	m := nodeMTBF / float64(p)
	tau := YoungPeriod(ckptCost, m)
	waste := CheckpointWaste(ckptCost, m, tau) + restart/m
	if waste > 1 {
		waste = 1
	}
	return AmdahlSpeedup(s, p) * (1 - waste)
}

// ZhengLanGustafson returns the reliability-aware Gustafson (weak
// scaling) speedup from Zheng & Lan.
func ZhengLanGustafson(s float64, p int, nodeMTBF, ckptCost, restart float64) float64 {
	checkFrac(s)
	checkProcs(p)
	m := nodeMTBF / float64(p)
	tau := YoungPeriod(ckptCost, m)
	waste := CheckpointWaste(ckptCost, m, tau) + restart/m
	if waste > 1 {
		waste = 1
	}
	return GustafsonSpeedup(s, p) * (1 - waste)
}

// HussainReplicationSpeedup returns the dual-replication speedup from
// Hussain et al.: half the processors do useful work (each node is
// mirrored), but the application only fails when both replicas of a
// pair have failed, which stretches the mean time to interrupt to
// roughly M_pair = nodeMTBF * sqrt(pi / (2 * pairs)) (the birthday-
// problem result for n independent pairs), compared to nodeMTBF/p
// without replication. Checkpoints still run at the Young-optimal
// interval against the stretched MTTI.
func HussainReplicationSpeedup(s float64, p int, nodeMTBF, ckptCost float64) float64 {
	checkFrac(s)
	checkProcs(p)
	if p < 2 {
		return CavelanSpeedup(s, p, nodeMTBF, ckptCost)
	}
	pairs := p / 2
	mtti := nodeMTBF * math.Sqrt(math.Pi/(2*float64(pairs)))
	tau := YoungPeriod(ckptCost, mtti)
	waste := CheckpointWaste(ckptCost, mtti, tau)
	return AmdahlSpeedup(s, pairs) * (1 - waste)
}

// OptimalProcs scans for the processor count in [1, maxP] maximizing
// the given speedup function — the "optimal number of processes"
// question all four related works answer.
func OptimalProcs(maxP int, speedup func(p int) float64) (bestP int, bestS float64) {
	if maxP < 1 {
		panic("analytic: non-positive processor bound")
	}
	bestP, bestS = 1, speedup(1)
	for p := 2; p <= maxP; p++ {
		if s := speedup(p); s > bestS {
			bestP, bestS = p, s
		}
	}
	return bestP, bestS
}

// JinSpareNodes returns the spare-node count recommended by the Jin et
// al. style analysis: enough warm spares to cover the expected number
// of failures during the run plus zSigma standard deviations of the
// Poisson count (z=2 covers ~97.7% of runs).
func JinSpareNodes(solveSec, jobMTBF, zSigma float64) int {
	if solveSec <= 0 || jobMTBF <= 0 {
		panic("analytic: non-positive solve time or MTBF")
	}
	mean := solveSec / jobMTBF
	spares := mean + zSigma*math.Sqrt(mean)
	return int(math.Ceil(spares))
}

// JinWallTime returns expected wall time with k warm spares: failures
// while spares remain cost warmRestart; once spares are exhausted,
// failures cost requeue (waiting for a replacement allocation).
func JinWallTime(solve, jobMTBF, warmRestart, requeue float64, spares int) float64 {
	if solve <= 0 || jobMTBF <= 0 {
		panic("analytic: non-positive solve time or MTBF")
	}
	if spares < 0 {
		panic("analytic: negative spare count")
	}
	failures := solve / jobMTBF
	covered := math.Min(failures, float64(spares))
	uncovered := failures - covered
	return solve + covered*warmRestart + uncovered*requeue
}
