package exp

import (
	"io"

	"besst/internal/benchdata"
	"besst/internal/cli"
	"besst/internal/lulesh"
	"besst/internal/perfmodel"
	"besst/internal/stats"
	"besst/internal/workflow"
)

// AlgDSERow compares the two fault-tolerance strategies at one design
// point: checkpoint/restart (baseline algorithm + periodic L1) versus
// an algorithm-based fault-tolerant timestep (checksummed kernels, no
// checkpoint I/O).
type AlgDSERow struct {
	EPR, Ranks int
	// Per-step costs in seconds (checkpoint amortized over its period).
	CRSec   float64
	ABFTSec float64
	// Winner is "C/R" or "ABFT".
	Winner string
}

// AlgorithmicDSE performs the alternate-algorithm exploration of the
// paper's Co-Design section (its FFT example; ABFT is its named
// candidate technique): benchmark the ABFT timestep variant, fit a
// model for it, and compare per-step cost against baseline + L1
// checkpointing across the design grid. ABFT's overhead is a roughly
// constant compute factor while C/R's grows with rank count, so a
// crossover appears along the ranks axis — a decision only FT-aware
// MODSIM can locate without running every configuration.
func AlgorithmicDSE(ctx *Context, ckptPeriod int) []AlgDSERow {
	em := ctx.Quartz
	// Benchmark and model the ABFT variant.
	campaign := &benchdata.Campaign{}
	rng := stats.NewRNG(ctx.Seed + 77)
	for _, epr := range CaseEPRs {
		for _, ranks := range CaseRanks {
			p := perfmodel.Params{"epr": float64(epr), "ranks": float64(ranks)}
			for i := 0; i < ctx.SamplesPer; i++ {
				campaign.Add(lulesh.OpTimestepABFT, p, em.MeasureLuleshTimestepABFT(epr, ranks, rng))
			}
		}
	}
	models := workflow.Develop(campaign, workflow.SymbolicRegression, []string{"epr", "ranks"}, ctx.Seed+78)
	abft := models.ByOp[lulesh.OpTimestepABFT]
	base := ctx.Models.ByOp[lulesh.OpTimestep]
	l1 := ctx.Models.ByOp[lulesh.OpCkptL1]

	var out []AlgDSERow
	for _, epr := range CaseEPRs {
		for _, ranks := range CaseRanks {
			p := perfmodel.Params{"epr": float64(epr), "ranks": float64(ranks)}
			cr := base.Predict(p) + l1.Predict(p)/float64(ckptPeriod)
			ab := abft.Predict(p)
			row := AlgDSERow{EPR: epr, Ranks: ranks, CRSec: cr, ABFTSec: ab, Winner: "C/R"}
			if ab < cr {
				row.Winner = "ABFT"
			}
			out = append(out, row)
		}
	}
	return out
}

// FormatAlgDSE renders the comparison grid.
func FormatAlgDSE(w io.Writer, rows []AlgDSERow, ckptPeriod int) {
	out := cli.Wrap(w)
	out.Printf("Extension E: algorithmic DSE - C/R (L1 every %d steps) vs ABFT timestep\n", ckptPeriod)
	out.Printf("  %6s %6s %14s %14s %8s\n", "epr", "ranks", "C/R s/step", "ABFT s/step", "winner")
	for _, r := range rows {
		out.Printf("  %6d %6d %14.6g %14.6g %8s\n", r.EPR, r.Ranks, r.CRSec, r.ABFTSec, r.Winner)
	}
}
