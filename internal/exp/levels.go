package exp

import (
	"io"

	"besst/internal/benchdata"
	"besst/internal/cli"
	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/perfmodel"
	"besst/internal/workflow"
)

// LevelRow is one FTI level of the all-levels extension study.
type LevelRow struct {
	Level fti.Level
	// ValidationMAPE of the fitted instance model.
	ValidationMAPE float64
	// InstanceSec64 and InstanceSec1000 are modeled checkpoint times
	// at epr 15 on 64 and 1000 ranks.
	InstanceSec64   float64
	InstanceSec1000 float64
	// AmortizedOverheadPct is the per-step cost at a 40-step period
	// relative to the epr-15 timestep at 1000 ranks.
	AmortizedOverheadPct float64
}

// AllLevelsStudy extends the case study to all four FTI levels — the
// part the paper defers to future work ("at which point we can more
// fully explore the higher levels of fault-tolerance") because Levels 3
// and 4 need communication and PFS models, both of which this
// reproduction has. It benchmarks every level on the ground truth, fits
// models, and compares modeled instance costs and amortized overheads.
func AllLevelsStudy(ctx *Context) []LevelRow {
	em := ctx.Quartz
	campaign := benchdata.CollectLulesh(em, benchdata.LuleshPlan{
		EPRs:       CaseEPRs,
		Ranks:      CaseRanks,
		Levels:     []fti.Level{fti.L1, fti.L2, fti.L3, fti.L4},
		SamplesPer: ctx.SamplesPer,
		Seed:       ctx.Seed + 50,
	})
	models := workflow.Develop(campaign, workflow.SymbolicRegression, []string{"epr", "ranks"}, ctx.Seed+51)

	tsModel := ctx.Models.ByOp[lulesh.OpTimestep]
	ts1000 := tsModel.Predict(perfmodel.Params{"epr": 15, "ranks": 1000})

	var out []LevelRow
	for l := fti.L1; l <= fti.L4; l++ {
		op := lulesh.CkptOp(l)
		m := models.ByOp[op]
		i64 := m.Predict(perfmodel.Params{"epr": 15, "ranks": 64})
		i1000 := m.Predict(perfmodel.Params{"epr": 15, "ranks": 1000})
		out = append(out, LevelRow{
			Level:                l,
			ValidationMAPE:       models.Report(op).ValidationMAPE,
			InstanceSec64:        i64,
			InstanceSec1000:      i1000,
			AmortizedOverheadPct: 100 * (i1000 / 40) / ts1000,
		})
	}
	return out
}

// FormatAllLevels renders the all-levels study.
func FormatAllLevels(w io.Writer, rows []LevelRow) {
	out := cli.Wrap(w)
	out.Println("Extension C: all four FTI levels modeled (paper future work)")
	out.Printf("  %-6s %10s %14s %14s %16s\n",
		"level", "MAPE", "inst@64rk", "inst@1000rk", "amortized ovhd")
	for _, r := range rows {
		out.Printf("  L%-5d %9.2f%% %13.5gs %13.5gs %15.1f%%\n",
			int(r.Level), r.ValidationMAPE, r.InstanceSec64, r.InstanceSec1000, r.AmortizedOverheadPct)
	}
	out.Println("  (instances at epr 15; amortized over a 40-step period vs the timestep)")
}
