package exp

import (
	"fmt"
	"io"
	"math"
	"strings"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/cli"
	"besst/internal/cmtbone"
	"besst/internal/dse"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/perfmodel"
	"besst/internal/stats"
	"besst/internal/workflow"
)

// ValidationPoint is one point of the Figs 5-6 model-validation plots:
// the modeled runtime of a function at one parameter combination, next
// to the benchmarked mean when the combination lies in the validation
// region (NaN in the prediction region beyond the benchmarked grid).
type ValidationPoint struct {
	Op           string
	EPR, Ranks   int
	MeasuredMean float64
	Modeled      float64
	Prediction   bool
}

// validationSeries produces points for all ops over the given axes.
func validationSeries(ctx *Context, eprs, ranks []int) []ValidationPoint {
	measured := map[string]map[string][]float64{}
	for _, s := range ctx.Campaign.Samples {
		key := s.Params.Key()
		if measured[s.Op] == nil {
			measured[s.Op] = map[string][]float64{}
		}
		measured[s.Op][key] = append(measured[s.Op][key], s.Seconds)
	}
	var out []ValidationPoint
	for _, op := range ctx.Campaign.Ops() {
		model := ctx.Models.ByOp[op]
		for _, epr := range eprs {
			for _, r := range ranks {
				p := perfmodel.Params{"epr": float64(epr), "ranks": float64(r)}
				pt := ValidationPoint{
					Op: op, EPR: epr, Ranks: r,
					Modeled:      model.Predict(p),
					MeasuredMean: math.NaN(),
					Prediction:   true,
				}
				if samples, ok := measured[op][p.Key()]; ok {
					pt.MeasuredMean = stats.Mean(samples)
					pt.Prediction = false
				}
				out = append(out, pt)
			}
		}
	}
	return out
}

// Fig5 reproduces the model-validation-vs-problem-size plot: the
// Table II grid plus the prediction region at epr 30 (a notional system
// with more memory per node).
func Fig5(ctx *Context) []ValidationPoint {
	eprs := append(append([]int{}, CaseEPRs...), 30)
	return validationSeries(ctx, eprs, CaseRanks)
}

// Fig6 reproduces the model-validation-vs-ranks plot: the Table II
// grid plus the prediction region at 1331 ranks (beyond the paper's
// 1000-rank Quartz allocation).
func Fig6(ctx *Context) []ValidationPoint {
	ranks := append(append([]int{}, CaseRanks...), 1331)
	return validationSeries(ctx, CaseEPRs, ranks)
}

// FormatValidationPoints renders Figs 5-6 data grouped by op, with the
// prediction region marked.
func FormatValidationPoints(w io.Writer, title string, pts []ValidationPoint) {
	out := cli.Wrap(w)
	out.Println(title)
	currentOp := ""
	for _, p := range pts {
		if p.Op != currentOp {
			currentOp = p.Op
			out.Printf("%s\n  %6s %6s %14s %14s %s\n", p.Op, "epr", "ranks", "measured", "modeled", "")
		}
		meas := "      (predict)"
		if !p.Prediction {
			meas = fmt.Sprintf("%14.6g", p.MeasuredMean)
		}
		marker := ""
		if p.Prediction {
			marker = "  <- prediction region"
		}
		out.Printf("  %6d %6d %s %14.6g%s\n", p.EPR, p.Ranks, meas, p.Modeled, marker)
	}
}

// FullRunSeries is one scenario's curve of Figs 7-8: cumulative
// measured and simulated runtime per timestep, plus the timesteps at
// which checkpoints complete (the black dots).
type FullRunSeries struct {
	Scenario  string
	EPR       int
	Ranks     int
	Measured  []float64 // cumulative seconds per step (ground truth)
	Predicted []float64 // cumulative seconds per step (MC mean)
	CkptTimes []float64 // predicted checkpoint completion times
	MAPE      float64   // over the cumulative series
}

// FigFullRun reproduces a Figs 7-8 panel: the three fault-tolerance
// scenarios for 200 timesteps at the given rank count (64 for Fig 7,
// 1000 for Fig 8; the paper plots epr 10).
func FigFullRun(ctx *Context, epr, ranks, timesteps, mcRuns int, mode besst.Mode) []FullRunSeries {
	cfg := ctx.Quartz.Cost.Config
	rng := stats.NewRNG(ctx.Seed + uint64(ranks))
	var out []FullRunSeries
	for _, sc := range []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2} {
		app := lulesh.App(epr, ranks, timesteps, sc, cfg)
		arch := beo.NewArchBEO(ctx.Quartz.M, cfg.NodeSize)
		workflow.BindLulesh(arch, ctx.Models)
		runs := besst.Replicate(app, arch, mcRuns,
			besst.WithMode(mode),
			besst.WithPerRankNoise(true),
			besst.WithSeed(rng.Uint64()))

		pred := make([]float64, timesteps)
		for _, r := range runs {
			if len(r.StepCompletions) != timesteps {
				panic("exp: step series length mismatch")
			}
			for i, v := range r.StepCompletions {
				pred[i] += v
			}
		}
		for i := range pred {
			pred[i] /= float64(len(runs))
		}

		series := FullRunSeries{
			Scenario: sc.Name, EPR: epr, Ranks: ranks,
			Measured:  ctx.Quartz.FullRun(epr, ranks, timesteps, sc, rng.Split()),
			Predicted: pred,
			CkptTimes: runs[0].CkptTimes,
		}
		series.MAPE = stats.MAPE(series.Measured, series.Predicted)
		out = append(out, series)
	}
	return out
}

// FormatFullRun renders a Figs 7-8 panel, sampling the cumulative
// series every `every` steps.
func FormatFullRun(w io.Writer, title string, series []FullRunSeries, every int) {
	out := cli.Wrap(w)
	out.Println(title)
	for _, s := range series {
		out.Printf("scenario %-8s (epr=%d, ranks=%d)  series MAPE %.2f%%\n",
			s.Scenario, s.EPR, s.Ranks, s.MAPE)
		out.Printf("  %6s %14s %14s\n", "step", "measured", "predicted")
		for i := every - 1; i < len(s.Measured); i += every {
			out.Printf("  %6d %14.6g %14.6g\n", i+1, s.Measured[i], s.Predicted[i])
		}
		if len(s.CkptTimes) > 0 {
			out.Printf("  checkpoints complete at (s):")
			for _, t := range s.CkptTimes {
				out.Printf(" %.4g", t)
			}
			out.Println()
		}
	}
}

// Fig9 reproduces the overhead-prediction tables: percentage runtime
// of every (epr, ranks, scenario) combination relative to the no-FT
// baseline at the smallest rank count, for 64 and 1000 ranks.
func Fig9(ctx *Context, timesteps, mcRuns int) []dse.Cell {
	return dse.OverheadSweep(ctx.Models, ctx.Quartz.M, ctx.Quartz.Cost.Config.NodeSize, dse.SweepConfig{
		EPRs:      []int{10, 15, 20, 25},
		Ranks:     []int{64, 1000},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: timesteps,
		MCRuns:    mcRuns,
		Seed:      ctx.Seed + 9,
	})
}

// FormatFig9 renders both rank tables.
func FormatFig9(w io.Writer, cells []dse.Cell) {
	out := cli.Wrap(w)
	out.Println("Fig 9: Overhead Prediction for Full System Simulation")
	out.Println("(percent of the no-FT runtime at 64 ranks, per problem size)")
	out.Println(dse.FormatOverheadTable(cells, 64))
	out.Println(dse.FormatOverheadTable(cells, 1000))
}

// Fig1Point is one scatter point of the Fig 1 reproduction: CMT-bone on
// Vulcan, benchmarked (validation region) and simulated runtimes.
type Fig1Point struct {
	PSize, Ranks int
	MeasuredSec  float64 // NaN in the prediction region
	SimMeanSec   float64
	SimStdSec    float64
	Prediction   bool
}

// Fig1Result bundles the scatter points with the Monte Carlo
// distribution pop-out of one configuration.
type Fig1Result struct {
	Points []Fig1Point
	// Distribution pop-out (histogram of MC makespans) at PopPSize/PopRanks.
	PopPSize, PopRanks int
	HistCounts         []int
	HistEdges          []float64
	// TimestepModelMAPE is the validation error of the fitted
	// CMT-bone timestep model.
	TimestepModelMAPE float64
}

// Fig1 reproduces the Vulcan/CMT-bone validation-and-prediction study:
// benchmark and model CMT-bone on the Vulcan ground truth, validate
// simulations up to 131072 ranks (the paper's 128K-core allocation),
// then predict up to 1M ranks on a notional extension of Vulcan.
func Fig1(timesteps, mcRuns int, seed uint64) *Fig1Result {
	em := groundtruth.NewVulcan()
	validationRanks := []int{128, 1024, 8192, 65536, 131072}
	predictionRanks := []int{262144, 524288, 1048576}
	psizes := []int{16, 32, 64}

	campaign := benchdata.CollectCmtBone(em, psizes, validationRanks, 8, seed)
	models := workflow.Develop(campaign, workflow.SymbolicRegression, []string{"psize", "ranks"}, seed+1)
	model := models.ByOp[cmtbone.OpTimestep]

	rng := stats.NewRNG(seed + 2)
	res := &Fig1Result{
		PopPSize: 64, PopRanks: 8192,
		TimestepModelMAPE: models.Report(cmtbone.OpTimestep).ValidationMAPE,
	}

	simulate := func(psize, ranks int) (mean, std float64, makespans []float64) {
		app := cmtbone.App(psize, 4, ranks, timesteps)
		m := em.M
		ranksPerNode := m.CoresPerNode
		needNodes := (ranks + ranksPerNode - 1) / ranksPerNode
		if needNodes > m.Nodes {
			m = machine.Notional(em.M, needNodes, 0)
		}
		arch := beo.NewArchBEO(m, ranksPerNode)
		arch.Bind(cmtbone.OpTimestep, model)
		runs := besst.Replicate(app, arch, mcRuns,
			besst.WithMode(besst.Direct),
			besst.WithPerRankNoise(true),
			besst.WithSeed(rng.Uint64()))
		ms := besst.Makespans(runs)
		s := stats.Summarize(ms)
		return s.Mean, s.Std, ms
	}

	for _, ps := range psizes {
		for _, r := range validationRanks {
			mean, std, ms := simulate(ps, r)
			pt := Fig1Point{
				PSize: ps, Ranks: r,
				MeasuredSec: em.CmtFullRun(ps, r, timesteps, rng.Split()),
				SimMeanSec:  mean, SimStdSec: std,
			}
			res.Points = append(res.Points, pt)
			if ps == res.PopPSize && r == res.PopRanks {
				res.HistCounts, res.HistEdges = stats.Histogram(ms, 8)
			}
		}
		for _, r := range predictionRanks {
			mean, std, _ := simulate(ps, r)
			res.Points = append(res.Points, Fig1Point{
				PSize: ps, Ranks: r,
				MeasuredSec: math.NaN(),
				SimMeanSec:  mean, SimStdSec: std,
				Prediction: true,
			})
		}
	}
	return res
}

// FormatFig1 renders the Fig 1 reproduction.
func FormatFig1(w io.Writer, r *Fig1Result) {
	out := cli.Wrap(w)
	out.Println("Fig 1: BE-SST validation & prediction, CMT-bone on Vulcan")
	out.Printf("  timestep model validation MAPE: %.2f%%\n", r.TimestepModelMAPE)
	out.Printf("  %6s %9s %14s %14s %12s\n", "psize", "ranks", "measured", "sim mean", "sim std")
	for _, p := range r.Points {
		meas := "     (predict)"
		if !p.Prediction {
			meas = fmt.Sprintf("%14.6g", p.MeasuredSec)
		}
		out.Printf("  %6d %9d %s %14.6g %12.3g\n", p.PSize, p.Ranks, meas, p.SimMeanSec, p.SimStdSec)
	}
	out.Printf("  MC distribution pop-out at psize=%d ranks=%d:\n", r.PopPSize, r.PopRanks)
	maxCount := 0
	for _, c := range r.HistCounts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range r.HistCounts {
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		out.Printf("    [%.5g, %.5g) %s\n", r.HistEdges[i], r.HistEdges[i+1], bar)
	}
}
