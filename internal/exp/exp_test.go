package exp

import (
	"math"
	"strings"
	"sync"
	"testing"

	"besst/internal/besst"
	"besst/internal/dse"
	"besst/internal/fti"
	"besst/internal/lulesh"
)

var (
	tctxOnce sync.Once
	tctx     *Context
)

// testCtx builds a reduced-cost context shared by all exp tests.
func testCtx(t *testing.T) *Context {
	t.Helper()
	tctxOnce.Do(func() {
		tctx = NewContext(6, 42)
	})
	return tctx
}

func TestTable1Renders(t *testing.T) {
	var b strings.Builder
	Table1(&b)
	out := b.String()
	for _, want := range []string{"L1", "L2", "L3", "L4", "Reed-Solomon", "parity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
	// L1 must not recover hard failures; L4 recovers everything.
	if !strings.Contains(out, "soft=true  1 hard=false") {
		t.Fatalf("L1 semantics not shown:\n%s", out)
	}
}

func TestTable2Renders(t *testing.T) {
	var b strings.Builder
	Table2(&b)
	out := b.String()
	for _, want := range []string{"[5 10 15 20 25]", "[8 64 216 512 1000]", "Group Size"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Band(t *testing.T) {
	rows := Table3(testCtx(t))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	ts, l1, l2 := rows[0], rows[1], rows[2]
	if ts.MAPE > 12 {
		t.Fatalf("timestep MAPE %v out of band", ts.MAPE)
	}
	if l1.MAPE > 28 || l2.MAPE > 28 {
		t.Fatalf("checkpoint MAPE out of band: %v %v", l1.MAPE, l2.MAPE)
	}
	if ts.MAPE >= l1.MAPE || ts.MAPE >= l2.MAPE {
		t.Fatal("timestep error should be smallest (paper shape)")
	}
	if ts.PaperMAPE != 6.64 {
		t.Fatal("paper reference values lost")
	}
	var b strings.Builder
	FormatTable3(&b, rows)
	if !strings.Contains(b.String(), "LULESH Timestep") {
		t.Fatal("Table III rendering broken")
	}
}

func TestTable4Band(t *testing.T) {
	rows := Table4(testCtx(t), 60, 3)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.IsNaN(r.MAPE) || r.MAPE <= 0 || r.MAPE > 35 {
			t.Fatalf("system MAPE out of band: %+v", r)
		}
		if len(r.Points) != len(CaseEPRs)*len(CaseRanks) {
			t.Fatalf("grid incomplete: %d points", len(r.Points))
		}
	}
	var b strings.Builder
	FormatTable4(&b, rows)
	if !strings.Contains(b.String(), "Fault-Tolerance Level") {
		t.Fatal("Table IV rendering broken")
	}
}

func TestFig5PredictionRegion(t *testing.T) {
	pts := Fig5(testCtx(t))
	// 3 ops x 6 eprs x 5 rank counts.
	if len(pts) != 3*6*5 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.EPR == 30 {
			if !p.Prediction || !math.IsNaN(p.MeasuredMean) {
				t.Fatalf("epr 30 should be prediction-only: %+v", p)
			}
			if p.Modeled <= 0 {
				t.Fatalf("prediction not positive: %+v", p)
			}
		} else if p.Prediction {
			t.Fatalf("benchmarked point marked as prediction: %+v", p)
		}
	}
}

func TestFig5TrendsContinue(t *testing.T) {
	// The modeled curve must keep rising into the prediction region.
	pts := Fig5(testCtx(t))
	get := func(op string, epr int) float64 {
		for _, p := range pts {
			if p.Op == op && p.EPR == epr && p.Ranks == 1000 {
				return p.Modeled
			}
		}
		t.Fatalf("missing %s epr=%d", op, epr)
		return 0
	}
	for _, op := range []string{lulesh.OpTimestep, lulesh.OpCkptL1, lulesh.OpCkptL2} {
		if get(op, 30) <= get(op, 25) {
			t.Fatalf("%s prediction does not continue upward", op)
		}
	}
}

func TestFig6PredictionRegion(t *testing.T) {
	pts := Fig6(testCtx(t))
	if len(pts) != 3*5*6 {
		t.Fatalf("points = %d", len(pts))
	}
	sawPrediction := false
	for _, p := range pts {
		if p.Ranks == 1331 {
			sawPrediction = true
			if !p.Prediction {
				t.Fatalf("1331 ranks should be prediction-only: %+v", p)
			}
		}
	}
	if !sawPrediction {
		t.Fatal("no prediction points at 1331 ranks")
	}
}

func TestFigOrderingCkptAboveTimestep(t *testing.T) {
	// Figs 5-6 shape: checkpoint instances cost more than timesteps
	// across the grid, with L2 above L1.
	pts := Fig6(testCtx(t))
	byOp := map[string]map[int]float64{}
	for _, p := range pts {
		if p.EPR != 15 {
			continue
		}
		if byOp[p.Op] == nil {
			byOp[p.Op] = map[int]float64{}
		}
		byOp[p.Op][p.Ranks] = p.Modeled
	}
	l2AboveL1 := 0
	for _, ranks := range CaseRanks {
		ts := byOp[lulesh.OpTimestep][ranks]
		l1 := byOp[lulesh.OpCkptL1][ranks]
		l2 := byOp[lulesh.OpCkptL2][ranks]
		// Timesteps are far below checkpoints everywhere; L1 vs L2
		// ordering holds in the ground truth but the two fitted model
		// curves sit within each other's error band, so (like the
		// paper's "mostly ordered") require only majority ordering.
		if ts >= l1 || ts >= l2 {
			t.Fatalf("timestep above checkpoint at ranks=%d: %v %v %v", ranks, ts, l1, l2)
		}
		if l2 > l1 {
			l2AboveL1++
		}
	}
	if l2AboveL1 < (len(CaseRanks)+1)/2 {
		t.Fatalf("L2 above L1 at only %d of %d rank counts", l2AboveL1, len(CaseRanks))
	}
}

func TestFigFullRunSmall(t *testing.T) {
	series := FigFullRun(testCtx(t), 10, 64, 80, 3, besst.DES)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Measured) != 80 || len(s.Predicted) != 80 {
			t.Fatalf("series lengths wrong: %d %d", len(s.Measured), len(s.Predicted))
		}
		if s.MAPE > 35 {
			t.Fatalf("%s full-run MAPE %v out of band", s.Scenario, s.MAPE)
		}
	}
	// Scenario totals ordered: No FT < L1 < L1&L2.
	if !(series[0].Predicted[79] < series[1].Predicted[79] &&
		series[1].Predicted[79] < series[2].Predicted[79]) {
		t.Fatal("scenario ordering broken in predictions")
	}
	// Checkpoint markers: L1 scenario has 2 (steps 40, 80), L1&L2 has 4.
	if len(series[1].CkptTimes) != 2 || len(series[2].CkptTimes) != 4 {
		t.Fatalf("checkpoint markers wrong: %d %d", len(series[1].CkptTimes), len(series[2].CkptTimes))
	}
	var b strings.Builder
	FormatFullRun(&b, "Fig 7", series, 20)
	if !strings.Contains(b.String(), "checkpoints complete") {
		t.Fatal("rendering lost checkpoint markers")
	}
}

func TestFig9Shape(t *testing.T) {
	cells := Fig9(testCtx(t), 60, 3)
	if len(cells) != 4*2*3 {
		t.Fatalf("cells = %d", len(cells))
	}
	get := func(sc string, epr, ranks int) float64 {
		for _, c := range cells {
			if c.Scenario == sc && c.EPR == epr && c.Ranks == ranks {
				return c.OverheadPct
			}
		}
		t.Fatalf("missing %s %d %d", sc, epr, ranks)
		return 0
	}
	// Fig 9 shape: every scenario's overhead grows with ranks, FT
	// levels stack, and the most expensive cell sits in the
	// L1&L2/1000-rank row.
	var worst dse.Cell
	for _, c := range cells {
		if c.OverheadPct > worst.OverheadPct {
			worst = c
		}
	}
	if worst.Scenario != "L1 & L2" || worst.Ranks != 1000 {
		t.Fatalf("worst cell should be L1&L2 at 1000 ranks, got %+v", worst)
	}
	if !(get("No FT", 10, 64) < get("L1", 10, 64) && get("L1", 10, 64) < get("L1 & L2", 10, 64)) {
		t.Fatal("FT level stacking broken at 64 ranks")
	}
	if get("L1", 10, 1000) <= get("L1", 10, 64) {
		t.Fatal("L1 overhead should grow from 64 to 1000 ranks")
	}
	var b strings.Builder
	FormatFig9(&b, cells)
	if !strings.Contains(b.String(), "1000 Ranks") {
		t.Fatal("Fig 9 rendering broken")
	}
}

func TestFig1SmallScale(t *testing.T) {
	r := Fig1(5, 3, 7)
	if len(r.Points) != 3*8 {
		t.Fatalf("points = %d", len(r.Points))
	}
	if r.TimestepModelMAPE <= 0 || r.TimestepModelMAPE > 15 {
		t.Fatalf("CMT-bone model MAPE %v out of band", r.TimestepModelMAPE)
	}
	for _, p := range r.Points {
		if p.SimMeanSec <= 0 {
			t.Fatalf("bad sim mean: %+v", p)
		}
		if p.Ranks > 131072 && !p.Prediction {
			t.Fatalf("mega-scale point should be prediction: %+v", p)
		}
		if !p.Prediction {
			// Validation points: sim within 50% of measured.
			if math.Abs(p.SimMeanSec-p.MeasuredSec)/p.MeasuredSec > 0.5 {
				t.Fatalf("validation point diverges: %+v", p)
			}
		}
	}
	if len(r.HistCounts) == 0 {
		t.Fatal("missing MC distribution pop-out")
	}
	var b strings.Builder
	FormatFig1(&b, r)
	if !strings.Contains(b.String(), "pop-out") {
		t.Fatal("Fig 1 rendering broken")
	}
}

func TestFaultStudyShape(t *testing.T) {
	// A long job (600k steps of epr-25 work, ~35 simulated minutes) on
	// nodes with a 5-hour MTBF: a few failures per run, with restart
	// cost well below the system MTBF so recovery converges.
	rows := FaultStudy(testCtx(t), 25, 64, 600000, 20, 5)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	case1, case2, case3, case4 := rows[0], rows[1], rows[2], rows[3]
	if case1.Faults != 0 || case3.Faults != 0 {
		t.Fatal("no-fault cases saw faults")
	}
	if case2.MeanWall <= case1.MeanWall {
		t.Fatal("faults should slow the no-FT run")
	}
	if case3.MeanWall <= case1.MeanWall {
		t.Fatal("FT overhead should cost something without faults")
	}
	if case4.MeanWall >= case2.MeanWall {
		t.Fatalf("FT should pay off under faults: %v vs %v", case4.MeanWall, case2.MeanWall)
	}
	var b strings.Builder
	FormatFaultStudy(&b, rows)
	if !strings.Contains(b.String(), "Case 4") {
		t.Fatal("fault study rendering broken")
	}
}

func TestAnalyticStudyShape(t *testing.T) {
	rows := AnalyticStudy(testCtx(t), 1e-5, []int{64, 1024, 65536, 1 << 20})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Cavelan >= r.Amdahl {
			t.Fatalf("faulty speedup should trail Amdahl at p=%d", r.P)
		}
		if r.ZhengGustaf < r.ZhengAmdahl {
			t.Fatalf("Gustafson should not trail Amdahl at p=%d", r.P)
		}
		if r.ZhengAmdahl > 0 && r.ZhengGustaf <= r.ZhengAmdahl {
			t.Fatalf("Gustafson should beat Amdahl when both positive at p=%d", r.P)
		}
	}
	var b strings.Builder
	FormatAnalyticStudy(&b, rows)
	if !strings.Contains(b.String(), "Hussain") {
		t.Fatal("analytic rendering broken")
	}
}

func TestValidationPointsRender(t *testing.T) {
	var b strings.Builder
	FormatValidationPoints(&b, "Fig 5", Fig5(testCtx(t)))
	out := b.String()
	if !strings.Contains(out, "prediction region") || !strings.Contains(out, lulesh.OpTimestep) {
		t.Fatal("Fig 5 rendering broken")
	}
}

func TestAllLevelsStudy(t *testing.T) {
	rows := AllLevelsStudy(testCtx(t))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Level != fti.Level(i+1) {
			t.Fatalf("row %d level %v", i, r.Level)
		}
		if r.ValidationMAPE <= 0 || r.ValidationMAPE > 30 {
			t.Fatalf("L%d MAPE %v out of band", int(r.Level), r.ValidationMAPE)
		}
		if r.InstanceSec1000 < r.InstanceSec64 {
			t.Fatalf("L%d instance should not shrink with ranks", int(r.Level))
		}
	}
	// At scale the level ordering holds strictly in the ground truth
	// (the Table I overhead progression)...
	em := testCtx(t).Quartz
	for l := fti.L2; l <= fti.L4; l++ {
		if em.CkptMean(l, 15, 1000) <= em.CkptMean(l-1, 15, 1000) {
			t.Fatalf("ground-truth level ordering broken at L%d", int(l))
		}
	}
	// ...while the fitted model curves may blur adjacent levels by
	// their error band; require ordering within 15% tolerance.
	for i := 1; i < 4; i++ {
		if rows[i].InstanceSec1000 < 0.85*rows[i-1].InstanceSec1000 {
			t.Fatalf("modeled level ordering broken at 1000 ranks: L%d %v << L%d %v",
				i+1, rows[i].InstanceSec1000, i, rows[i-1].InstanceSec1000)
		}
	}
	var b strings.Builder
	FormatAllLevels(&b, rows)
	if !strings.Contains(b.String(), "Extension C") {
		t.Fatal("rendering broken")
	}
}

func TestOptimalLevelStudy(t *testing.T) {
	rows := OptimalLevelStudy(testCtx(t), 25, 1000, 100000, 6,
		[]float64{2000, 20})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Reliable machine: fault tolerance is pure overhead, no FT wins.
	if rows[0].Best != 0 {
		t.Fatalf("no FT should win at 2000h MTBF, got L%d", rows[0].Best)
	}
	// Failure-prone machine: some FT level must beat no FT.
	if rows[1].Best == 0 {
		t.Fatal("an FT level should win at 20h MTBF")
	}
	if rows[1].WallByLevel[rows[1].Best] >= rows[1].WallByLevel[0] {
		t.Fatal("best level should beat no FT at high fault rate")
	}
	var b strings.Builder
	FormatOptimalLevel(&b, rows)
	if !strings.Contains(b.String(), "Extension D") {
		t.Fatal("rendering broken")
	}
}

func TestAlgorithmicDSECrossover(t *testing.T) {
	rows := AlgorithmicDSE(testCtx(t), 40)
	if len(rows) != len(CaseEPRs)*len(CaseRanks) {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(epr, ranks int) AlgDSERow {
		for _, r := range rows {
			if r.EPR == epr && r.Ranks == ranks {
				return r
			}
		}
		t.Fatalf("missing %d/%d", epr, ranks)
		return AlgDSERow{}
	}
	// The crossover structure: at 1000 ranks ABFT must win (C/R's
	// checkpoint cost scales with ranks, ABFT's overhead does not)...
	for _, epr := range CaseEPRs {
		if r := get(epr, 1000); r.Winner != "ABFT" {
			t.Fatalf("ABFT should win at 1000 ranks, epr %d: %+v", epr, r)
		}
	}
	// ...and C/R must win somewhere (otherwise there is no trade-off
	// to explore). The paper's DSE value proposition depends on both
	// regions existing.
	crWins := 0
	for _, r := range rows {
		if r.Winner == "C/R" {
			crWins++
		}
		if r.CRSec <= 0 || r.ABFTSec <= 0 {
			t.Fatalf("non-positive cost: %+v", r)
		}
	}
	if crWins == 0 {
		t.Fatal("C/R never wins; crossover lost")
	}
	var b strings.Builder
	FormatAlgDSE(&b, rows, 40)
	if !strings.Contains(b.String(), "ABFT") {
		t.Fatal("rendering broken")
	}
}

func TestArchitecturalDSE(t *testing.T) {
	rows := ArchitecturalDSE(testCtx(t))
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	base := rows[0]
	byName := map[string]ArchDSERow{}
	for _, r := range rows {
		byName[r.Variant] = r
		if r.L1Sec <= 0 || r.L2Sec <= 0 || r.L4Sec <= 0 {
			t.Fatalf("non-positive instance: %+v", r)
		}
	}
	// Faster local storage must cheapen L1/L2 but leave L4's PFS term.
	fast := byName["2x local storage BW"]
	if fast.L1Sec >= base.L1Sec || fast.L2Sec >= base.L2Sec {
		t.Fatal("faster disk should cheapen L1/L2")
	}
	slow := byName["1/2 local storage BW"]
	if slow.L1Sec <= base.L1Sec {
		t.Fatal("slower disk should raise L1")
	}
	// Bigger PFS only helps L4.
	pfs := byName["2x PFS aggregate BW"]
	if pfs.L4Sec >= base.L4Sec {
		t.Fatal("bigger PFS should cheapen L4")
	}
	if pfs.L1Sec != base.L1Sec {
		t.Fatal("PFS change should not affect L1")
	}
	// Faster network cheapens L2's partner transfer.
	nw := byName["2x network link BW"]
	if nw.L2Sec >= base.L2Sec {
		t.Fatal("faster network should cheapen L2")
	}
	if nw.L1Sec != base.L1Sec {
		t.Fatal("network change should not affect L1")
	}
	var b strings.Builder
	FormatArchDSE(&b, rows)
	if !strings.Contains(b.String(), "Extension F") {
		t.Fatal("rendering broken")
	}
}
