package exp

import (
	"io"
	"strings"

	"besst/internal/cli"
	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/workflow"
)

// Table1 renders the FTI checkpoint-level reference (paper Table I),
// generated from the implemented level semantics rather than prose: for
// each level it prints the description and a demonstration of what the
// implementation can and cannot recover.
func Table1(w io.Writer) {
	out := cli.Wrap(w)
	cfg := fti.Config{GroupSize: 4, NodeSize: 2}
	out.Println("Table I: Checkpointing Levels of the Fault Tolerance Interface (FTI)")
	out.Println(strings.Repeat("-", 78))
	soft := []fti.Failure{{Node: 0, Kind: fti.SoftFailure}}
	hard := []fti.Failure{{Node: 0, Kind: fti.HardFailure}}
	pair := []fti.Failure{{Node: 0, Kind: fti.HardFailure}, {Node: 1, Kind: fti.HardFailure}}
	group := []fti.Failure{
		{Node: 0, Kind: fti.HardFailure}, {Node: 1, Kind: fti.HardFailure},
		{Node: 2, Kind: fti.HardFailure},
	}
	for l := fti.L1; l <= fti.L4; l++ {
		out.Printf("%s\n", l)
		out.Printf("    recovers: soft=%v  1 hard=%v  partner pair hard=%v  3-of-group hard=%v\n",
			cfg.Recoverable(l, soft), cfg.Recoverable(l, hard),
			cfg.Recoverable(l, pair), cfg.Recoverable(l, group))
	}
	out.Printf("(group_size=%d, node_size=%d; L3 parity shards=%d)\n",
		cfg.GroupSize, cfg.NodeSize, cfg.ParityShards())
}

// Table2 renders the case-study parameter grid (paper Table II) and
// verifies the launch rules that produced it.
func Table2(w io.Writer) {
	out := cli.Wrap(w)
	cfg := fti.Config{GroupSize: 4, NodeSize: 2}
	out.Println("Table II: Case Study Parameters")
	out.Printf("  Problem Size (epr): %v\n", CaseEPRs)
	out.Printf("  Ranks:              %v\n", CaseRanks)
	out.Printf("  Group Size:         %d\n", cfg.GroupSize)
	out.Printf("  Node Size:          %d\n", cfg.NodeSize)
	valid := lulesh.ValidRanks(1000, cfg)
	out.Printf("  (perfect cubes divisible by %d up to 1000: %v)\n",
		cfg.GroupSize*cfg.NodeSize, valid)
}

// Table3Row is one kernel of the instance-model validation.
type Table3Row struct {
	Kernel    string
	MAPE      float64 // measured in this reproduction
	PaperMAPE float64 // the published value
}

// Table3 computes the instance-model validation MAPE per kernel
// (paper Table III: LULESH timestep 6.64 %, L1 16.68 %, L2 14.50 %).
func Table3(ctx *Context) []Table3Row {
	return []Table3Row{
		{"LULESH Timestep", ctx.Models.Report(lulesh.OpTimestep).ValidationMAPE, 6.64},
		{"Level 1 Checkpointing", ctx.Models.Report(lulesh.OpCkptL1).ValidationMAPE, 16.68},
		{"Level 2 Checkpointing", ctx.Models.Report(lulesh.OpCkptL2).ValidationMAPE, 14.50},
	}
}

// FormatTable3 renders Table3 results next to the paper's numbers.
func FormatTable3(w io.Writer, rows []Table3Row) {
	out := cli.Wrap(w)
	out.Println("Table III: Model Validation via Mean Average Percent Error")
	out.Printf("  %-24s %10s %10s\n", "Kernel", "MAPE", "paper")
	for _, r := range rows {
		out.Printf("  %-24s %9.2f%% %9.2f%%\n", r.Kernel, r.MAPE, r.PaperMAPE)
	}
}

// Table4Row is one scenario of the full-system validation.
type Table4Row struct {
	Scenario  string
	MAPE      float64
	PaperMAPE float64
	Points    []workflow.SystemValidation
}

// Table4 validates full-system simulation across the Table II grid for
// the three scenarios (paper Table IV: 20.13 %, 17.64 %, 14.54 %).
// timesteps is 200 in the paper; mcRuns Monte Carlo replications are
// averaged per grid point.
func Table4(ctx *Context, timesteps, mcRuns int) []Table4Row {
	scenarios := []struct {
		sc    lulesh.Scenario
		paper float64
	}{
		{lulesh.ScenarioNoFT, 20.13},
		{lulesh.ScenarioL1, 17.64},
		{lulesh.ScenarioL1L2, 14.54},
	}
	var out []Table4Row
	for i, s := range scenarios {
		pts := workflow.ValidateSystem(ctx.Quartz, ctx.Models, CaseEPRs, CaseRanks,
			timesteps, s.sc, mcRuns, ctx.Seed+uint64(100+i))
		out = append(out, Table4Row{
			Scenario:  "LULESH + " + s.sc.Name,
			MAPE:      workflow.SystemMAPE(pts),
			PaperMAPE: s.paper,
			Points:    pts,
		})
	}
	return out
}

// FormatTable4 renders Table4 results next to the paper's numbers.
func FormatTable4(w io.Writer, rows []Table4Row) {
	out := cli.Wrap(w)
	out.Println("Table IV: Validation for Full System Simulation")
	out.Printf("  %-36s %10s %10s\n", "Fault-Tolerance Level", "MAPE", "paper")
	for _, r := range rows {
		out.Printf("  %-36s %9.2f%% %9.2f%%\n", r.Scenario, r.MAPE, r.PaperMAPE)
	}
}
