package exp

import (
	"fmt"
	"io"

	"besst/internal/analytic"
	"besst/internal/cli"
	"besst/internal/faults"
	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/stats"
)

// FaultCase is one row of the fault-injection extension experiment:
// the expected wall time of a LULESH run under one of the paper's
// Fig 4 cases.
type FaultCase struct {
	Name       string
	MeanWall   float64
	Efficiency float64
	Faults     float64 // mean fault count per run
	Recovered  float64
	Scratch    float64
}

// FaultStudy runs the Cases 1-4 comparison of Fig 4 for a LULESH job
// using the developed models: Case 1 (no faults, no FT), Case 2
// (faults, no FT), Case 3 (no faults, FT overhead only), Case 4
// (faults + FT at L1&L2, plus a Daly-optimal variant). The node MTBF is
// deliberately pessimistic (exascale-like) so failures matter over a
// run of this length.
func FaultStudy(ctx *Context, epr, ranks, steps, mcRuns int, nodeMTBFHours float64) []FaultCase {
	cfg := ctx.Quartz.Cost.Config
	if err := cfg.CheckRanks(ranks); err != nil {
		panic(err)
	}
	nodes := cfg.NodesFor(ranks)
	stepSec := ctx.Models.ByOp[lulesh.OpTimestep].Predict(params(epr, ranks)) +
		ctx.Quartz.AllreduceMean(ranks)
	ckptSec := func(l fti.Level) float64 {
		return ctx.Models.ByOp[lulesh.CkptOp(l)].Predict(params(epr, ranks))
	}
	restartSec := func(l fti.Level) float64 {
		return ctx.Quartz.Cost.RestartTime(l, ranks, lulesh.CheckpointBytes(epr))
	}

	fm := faults.FaultModel{
		Nodes:             nodes,
		FaultsPerNodeHour: 1 / nodeMTBFHours,
		HardFraction:      0.4,
	}
	noFaults := faults.FaultModel{Nodes: nodes}
	scratch := 2 * ctx.Quartz.M.RecoverySeconds

	baseSpec := faults.JobSpec{
		Steps: steps, StepSec: stepSec, ScratchRestartSec: scratch,
	}
	ftSpec := baseSpec
	ftSpec.Schedules = []faults.CkptSchedule{
		{Level: fti.L1, Period: 40}, {Level: fti.L2, Period: 40},
	}
	ftSpec.CkptSec = ckptSec
	ftSpec.RestartSec = restartSec

	// Daly-optimal L2 period against the system MTBF.
	mtbf := fm.SystemMTBFSeconds()
	tau := analytic.DalyPeriod(ckptSec(fti.L2), mtbf)
	dalyPeriod := int(tau / stepSec)
	if dalyPeriod < 1 {
		dalyPeriod = 1
	}
	if dalyPeriod > steps {
		dalyPeriod = steps
	}
	dalySpec := baseSpec
	dalySpec.Schedules = []faults.CkptSchedule{{Level: fti.L2, Period: dalyPeriod}}
	dalySpec.CkptSec = ckptSec
	dalySpec.RestartSec = restartSec

	cases := []struct {
		name string
		spec faults.JobSpec
		fm   faults.FaultModel
	}{
		{"Case 1: no faults, no FT", baseSpec, noFaults},
		{"Case 2: faults, no FT", baseSpec, fm},
		{"Case 3: no faults, FT (L1&L2/40)", ftSpec, noFaults},
		{"Case 4: faults, FT (L1&L2/40)", ftSpec, fm},
		{fmt.Sprintf("Case 4b: faults, FT (L2/Daly=%d steps)", dalyPeriod), dalySpec, fm},
	}

	var out []FaultCase
	for i, c := range cases {
		runs := faults.MonteCarlo(c.spec, c.fm, cfg, mcRuns, ctx.Seed+uint64(200+i))
		var wall, eff, nf, nr, ns []float64
		for _, r := range runs {
			wall = append(wall, r.WallSec)
			eff = append(eff, r.Efficiency())
			nf = append(nf, float64(r.Faults))
			nr = append(nr, float64(r.Recovered))
			ns = append(ns, float64(r.Scratch))
		}
		out = append(out, FaultCase{
			Name:       c.name,
			MeanWall:   stats.Mean(wall),
			Efficiency: stats.Mean(eff),
			Faults:     stats.Mean(nf),
			Recovered:  stats.Mean(nr),
			Scratch:    stats.Mean(ns),
		})
	}
	return out
}

func params(epr, ranks int) map[string]float64 {
	return map[string]float64{"epr": float64(epr), "ranks": float64(ranks)}
}

// FormatFaultStudy renders the fault-injection comparison.
func FormatFaultStudy(w io.Writer, rows []FaultCase) {
	out := cli.Wrap(w)
	out.Println("Extension A: fault injection (Fig 4 cases)")
	out.Printf("  %-40s %12s %8s %8s %9s %8s\n",
		"case", "mean wall s", "eff", "faults", "recovered", "scratch")
	for _, r := range rows {
		out.Printf("  %-40s %12.1f %7.1f%% %8.2f %9.2f %8.2f\n",
			r.Name, r.MeanWall, 100*r.Efficiency, r.Faults, r.Recovered, r.Scratch)
	}
}

// AnalyticRow is one processor count of the analytic-baseline study.
type AnalyticRow struct {
	P           int
	Amdahl      float64
	Cavelan     float64
	ZhengAmdahl float64
	ZhengGustaf float64
	HussainRepl float64
}

// AnalyticStudy evaluates the related-work speedup models over a range
// of processor counts, with checkpoint cost taken from the developed L1
// model — tying the abstract baselines to the concrete case study.
func AnalyticStudy(ctx *Context, serialFraction float64, ps []int) []AnalyticRow {
	nodeMTBF := ctx.Quartz.M.NodeMTBFHours * 3600
	ckpt := ctx.Models.ByOp[lulesh.OpCkptL1].Predict(params(10, 64))
	restart := ctx.Quartz.M.RecoverySeconds
	var out []AnalyticRow
	for _, p := range ps {
		out = append(out, AnalyticRow{
			P:           p,
			Amdahl:      analytic.AmdahlSpeedup(serialFraction, p),
			Cavelan:     analytic.CavelanSpeedup(serialFraction, p, nodeMTBF, ckpt),
			ZhengAmdahl: analytic.ZhengLanAmdahl(serialFraction, p, nodeMTBF, ckpt, restart),
			ZhengGustaf: analytic.ZhengLanGustafson(serialFraction, p, nodeMTBF, ckpt, restart),
			HussainRepl: analytic.HussainReplicationSpeedup(serialFraction, p, nodeMTBF, ckpt),
		})
	}
	return out
}

// FormatAnalyticStudy renders the baseline comparison.
func FormatAnalyticStudy(w io.Writer, rows []AnalyticRow) {
	out := cli.Wrap(w)
	out.Println("Extension B: analytic FT-aware speedup baselines")
	out.Printf("  %10s %12s %12s %12s %14s %12s\n",
		"p", "Amdahl", "Cavelan", "Zheng-Amdahl", "Zheng-Gustafson", "Hussain-rep")
	for _, r := range rows {
		out.Printf("  %10d %12.1f %12.1f %12.1f %14.1f %12.1f\n",
			r.P, r.Amdahl, r.Cavelan, r.ZhengAmdahl, r.ZhengGustaf, r.HussainRepl)
	}
}
