package exp

import (
	"fmt"
	"io"

	"besst/internal/cli"
	"besst/internal/faults"
	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/perfmodel"
)

// OptLevelRow records which FTI level minimizes expected wall time at
// one node-MTBF point — the cost/benefit balance the paper's
// introduction motivates ("it is important to better understand the
// balance between the benefit and cost of various FT techniques").
type OptLevelRow struct {
	NodeMTBFHours float64
	// WallByLevel[0] is the no-FT expected wall; [1..4] levels 1-4.
	WallByLevel [5]float64
	// Best is the argmin (0 = no FT).
	Best int
}

// OptimalLevelStudy sweeps the node failure rate and, for each rate,
// injects faults into a LULESH campaign protected by each single FTI
// level (and by nothing), reporting expected wall times and the optimal
// choice. Low-resilience levels win on reliable machines (cheapest
// instances) and lose to higher levels as hard failures become common —
// the fault-rate/FT-level crossover that makes the design space worth
// exploring.
func OptimalLevelStudy(ctx *Context, epr, ranks, steps, mcRuns int, mtbfHours []float64) []OptLevelRow {
	cfg := ctx.Quartz.Cost.Config
	nodes := cfg.NodesFor(ranks)
	p := perfmodel.Params{"epr": float64(epr), "ranks": float64(ranks)}
	stepSec := ctx.Models.ByOp[lulesh.OpTimestep].Predict(p) + ctx.Quartz.AllreduceMean(ranks)

	// Instance costs: levels 1-2 from the fitted case-study models,
	// levels 3-4 from the ground-truth cost model (the all-levels
	// extension fits them too; here the cost model keeps this study
	// independent of that campaign).
	ckptSec := func(l fti.Level) float64 {
		switch l {
		case fti.L1, fti.L2:
			return ctx.Models.ByOp[lulesh.CkptOp(l)].Predict(p)
		default:
			return ctx.Quartz.CkptMean(l, epr, ranks)
		}
	}
	// Warm restart: reload I/O without full node replacement.
	restartSec := func(l fti.Level) float64 {
		return ctx.Quartz.Cost.RestartTime(l, ranks, lulesh.CheckpointBytes(epr)) -
			ctx.Quartz.M.RecoverySeconds + 15
	}

	var out []OptLevelRow
	for i, mtbf := range mtbfHours {
		row := OptLevelRow{NodeMTBFHours: mtbf}
		fm := faults.FaultModel{
			Nodes:             nodes,
			FaultsPerNodeHour: 1 / mtbf,
			HardFraction:      0.5,
			// Rare correlated bursts take out a whole group: the
			// scenario that separates L2 from L3/L4.
			CorrelatedProb: 0.02,
			CorrelatedSize: cfg.GroupSize,
		}
		for lvl := 0; lvl <= 4; lvl++ {
			spec := faults.JobSpec{
				Steps: steps, StepSec: stepSec,
				ScratchRestartSec: 2 * ctx.Quartz.M.RecoverySeconds,
				// Censor divergent runs (no-FT under heavy failures)
				// at 20x the ideal solve time.
				MaxWallSec: 20 * float64(steps) * stepSec,
			}
			if lvl > 0 {
				spec.Schedules = []faults.CkptSchedule{{Level: fti.Level(lvl), Period: 40}}
				spec.CkptSec = ckptSec
				spec.RestartSec = restartSec
			}
			runs := faults.MonteCarlo(spec, fm, cfg, mcRuns, ctx.Seed+uint64(300+10*i+lvl))
			row.WallByLevel[lvl] = faults.MeanWall(runs)
		}
		row.Best = 0
		for lvl := 1; lvl <= 4; lvl++ {
			if row.WallByLevel[lvl] < row.WallByLevel[row.Best] {
				row.Best = lvl
			}
		}
		out = append(out, row)
	}
	return out
}

// FormatOptimalLevel renders the study.
func FormatOptimalLevel(w io.Writer, rows []OptLevelRow) {
	out := cli.Wrap(w)
	out.Println("Extension D: optimal FT level vs node failure rate")
	out.Printf("  %14s %10s %10s %10s %10s %10s %8s\n",
		"node MTBF (h)", "no FT", "L1", "L2", "L3", "L4", "best")
	for _, r := range rows {
		best := "no FT"
		if r.Best > 0 {
			best = fmt.Sprintf("L%d", r.Best)
		}
		out.Printf("  %14.1f %9.0fs %9.0fs %9.0fs %9.0fs %9.0fs %8s\n",
			r.NodeMTBFHours, r.WallByLevel[0], r.WallByLevel[1],
			r.WallByLevel[2], r.WallByLevel[3], r.WallByLevel[4], best)
	}
}
