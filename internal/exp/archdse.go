package exp

import (
	"io"

	"besst/internal/cli"
	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/machine"
)

// ArchDSERow reports the FT cost structure of one hardware variant.
type ArchDSERow struct {
	Variant string
	// Instance times at epr 15 / 1000 ranks for the affected levels.
	L1Sec, L2Sec, L4Sec float64
	// L1OverheadPct is the L1 checkpoint cost amortized over a
	// 40-step period relative to the timestep.
	L1OverheadPct float64
}

// ArchitecturalDSE performs the Co-Design phase's other axis (paper
// §III-B): instead of swapping application models, modify the ArchBEO's
// hardware parameters — local storage bandwidth, PFS aggregate
// bandwidth, network link bandwidth — and predict how the
// fault-tolerance cost structure responds, answering "which hardware
// investment buys down FT overhead" without building any variant.
//
// The predictions come from the physically parameterized FTI cost model
// re-evaluated on each notional machine; the application timestep is
// hardware-compute-bound and taken from the fitted model.
func ArchitecturalDSE(ctx *Context) []ArchDSERow {
	const epr, ranks = 15, 1000
	tsSec := ctx.Models.ByOp[lulesh.OpTimestep].Predict(params(epr, ranks))
	bytes := lulesh.CheckpointBytes(epr)

	variants := []struct {
		name   string
		mutate func(m *machine.Machine)
	}{
		{"baseline Quartz", func(*machine.Machine) {}},
		{"2x local storage BW", func(m *machine.Machine) { m.Disk.Bandwidth *= 2 }},
		{"1/2 local storage BW", func(m *machine.Machine) { m.Disk.Bandwidth /= 2 }},
		{"2x PFS aggregate BW", func(m *machine.Machine) { m.PFS.AggregateBandwidth *= 2 }},
		{"2x network link BW", func(m *machine.Machine) { m.Net.LinkBandwidth *= 2 }},
		{"4x larger write cache", func(m *machine.Machine) { m.Disk.CacheBytes *= 4 }},
	}

	var out []ArchDSERow
	for _, v := range variants {
		m := *ctx.Quartz.M // copy; sub-structs are values
		v.mutate(&m)
		m.Validate()
		cost := fti.NewCostModel(&m, ctx.Quartz.Cost.Config)
		cost.CoordPerRank = ctx.Quartz.Cost.CoordPerRank
		cost.CoordPerStage = ctx.Quartz.Cost.CoordPerStage
		cost.CoordPerRankByte = ctx.Quartz.Cost.CoordPerRankByte

		l1 := cost.InstanceTime(fti.L1, ranks, bytes)
		out = append(out, ArchDSERow{
			Variant:       v.name,
			L1Sec:         l1,
			L2Sec:         cost.InstanceTime(fti.L2, ranks, bytes),
			L4Sec:         cost.InstanceTime(fti.L4, ranks, bytes),
			L1OverheadPct: 100 * (l1 / 40) / tsSec,
		})
	}
	return out
}

// FormatArchDSE renders the hardware-variant comparison.
func FormatArchDSE(w io.Writer, rows []ArchDSERow) {
	out := cli.Wrap(w)
	out.Println("Extension F: architectural DSE - hardware variants vs FT cost")
	out.Println("(checkpoint instances at epr 15, 1000 ranks; L1 overhead per 40-step period)")
	out.Printf("  %-24s %12s %12s %12s %12s\n", "variant", "L1 inst", "L2 inst", "L4 inst", "L1 ovhd")
	for _, r := range rows {
		out.Printf("  %-24s %11.5gs %11.5gs %11.5gs %11.1f%%\n",
			r.Variant, r.L1Sec, r.L2Sec, r.L4Sec, r.L1OverheadPct)
	}
}
