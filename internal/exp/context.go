// Package exp regenerates every table and figure of the paper's
// evaluation, plus the extension experiments DESIGN.md commits to
// (fault injection — the paper's Cases 2 and 4 — and the analytic
// baselines of the related-work section). Each experiment returns
// structured results and has a Format function used by cmd/besst-exp;
// the per-experiment index lives in DESIGN.md and the measured-vs-paper
// record in EXPERIMENTS.md.
package exp

import (
	"sync"

	"besst/internal/benchdata"
	"besst/internal/groundtruth"
	"besst/internal/workflow"
)

// Context carries the shared state of the case-study experiments: the
// Quartz ground-truth emulator, the Table II benchmarking campaign, and
// the symbolic-regression models developed from it.
type Context struct {
	Quartz   *groundtruth.Emulator
	Models   *workflow.Models
	Campaign *benchdata.Campaign

	// SamplesPer is the number of benchmark repetitions per parameter
	// combination used for the campaign.
	SamplesPer int
	// Seed drives every random decision in the experiments.
	Seed uint64
}

// Table II parameter grid (the case study's design space).
var (
	CaseEPRs  = []int{5, 10, 15, 20, 25}
	CaseRanks = []int{8, 64, 216, 512, 1000}
)

// NewContext develops the case-study models. SamplesPer 10 matches the
// "multiple timing samples per combination" protocol; the seed pins the
// whole reproduction.
func NewContext(samplesPer int, seed uint64) *Context {
	em := groundtruth.NewQuartz()
	models, campaign := workflow.DevelopLuleshQuartz(em, samplesPer, workflow.SymbolicRegression, seed)
	return &Context{
		Quartz:     em,
		Models:     models,
		Campaign:   campaign,
		SamplesPer: samplesPer,
		Seed:       seed,
	}
}

var (
	defaultOnce sync.Once
	defaultCtx  *Context
)

// Default returns a lazily built, shared context with the standard
// reproduction parameters (10 samples per combination, seed 42).
func Default() *Context {
	defaultOnce.Do(func() {
		defaultCtx = NewContext(10, 42)
	})
	return defaultCtx
}
