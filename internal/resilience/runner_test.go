package resilience

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"besst/internal/par"
	"besst/internal/stats"
)

// fakeWork returns a deterministic payload for trial i derived from a
// seed fan — the same purity contract real trial runners obey.
func fakeWork(seed uint64, n int) WorkFunc {
	seeds := par.SeedFan(seed, n)
	return func(i int) (json.RawMessage, error) {
		rng := stats.NewRNG(seeds[i])
		return json.Marshal(map[string]float64{"x": rng.Float64(), "y": rng.Float64()})
	}
}

// flakyWork wraps a WorkFunc so chosen indices panic on their first
// `failures` attempts, tracked per index.
type flakyWork struct {
	mu       sync.Mutex
	calls    map[int]int
	failures map[int]int // index -> attempts that must fail (-1: always)
	inner    WorkFunc
}

func newFlakyWork(inner WorkFunc, failures map[int]int) *flakyWork {
	return &flakyWork{calls: map[int]int{}, failures: failures, inner: inner}
}

func (f *flakyWork) work(i int) (json.RawMessage, error) {
	f.mu.Lock()
	f.calls[i]++
	call := f.calls[i]
	limit, flaky := f.failures[i]
	f.mu.Unlock()
	if flaky && (limit < 0 || call <= limit) {
		panic(fmt.Sprintf("flaky trial %d call %d", i, call))
	}
	return f.inner(i)
}

func (f *flakyWork) callCount(i int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls[i]
}

func fastRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond}
}

// provenanceRecorder implements FaultCollector for assertions.
type provenanceRecorder struct {
	mu          sync.Mutex
	retries     map[int]int
	quarantined map[int]int
	replayed    int
}

func newProvenanceRecorder() *provenanceRecorder {
	return &provenanceRecorder{retries: map[int]int{}, quarantined: map[int]int{}}
}

func (p *provenanceRecorder) TrialRetry(i, attempt int) {
	p.mu.Lock()
	if attempt > p.retries[i] {
		p.retries[i] = attempt
	}
	p.mu.Unlock()
}

func (p *provenanceRecorder) TrialQuarantined(i, attempts int) {
	p.mu.Lock()
	p.quarantined[i] = attempts
	p.mu.Unlock()
}

func (p *provenanceRecorder) TrialsReplayed(n int) {
	p.mu.Lock()
	p.replayed += n
	p.mu.Unlock()
}

func samePayloads(t *testing.T, label string, a, b []json.RawMessage) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d vs %d payloads", label, len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("%s: payload %d differs:\n  %s\n  %s", label, i, a[i], b[i])
		}
	}
}

func TestRunRetriesTransientAndQuarantinesPoison(t *testing.T) {
	const n = 16
	work := newFlakyWork(fakeWork(7, n), map[int]int{3: 2, 9: -1})
	rec := newProvenanceRecorder()
	camp := Campaign{Workers: 4, Retry: fastRetry(), Collector: rec}
	payloads, rep, err := camp.Run(n, work.work)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Completed != n-1 || len(rep.FailedIndices) != 1 || rep.FailedIndices[0] != 9 {
		t.Fatalf("report = %+v, want completed=%d failed=[9]", rep, n-1)
	}
	if payloads[9] != nil {
		t.Error("quarantined trial has a payload")
	}
	if payloads[3] == nil {
		t.Error("retried trial 3 has no payload")
	}
	if got := work.callCount(3); got != 3 {
		t.Errorf("trial 3 ran %d times, want 3 (2 failures + success)", got)
	}
	if got := work.callCount(9); got != 3 {
		t.Errorf("trial 9 ran %d times, want MaxAttempts=3", got)
	}
	if rep.Attempts[3] != 3 || rep.Attempts[9] != 3 {
		t.Errorf("Attempts = %v, want 3 for trials 3 and 9", rep.Attempts)
	}
	var te *TrialError
	if !errors.As(rep.Errors[9], &te) || te.Index != 9 {
		t.Errorf("Errors[9] = %v, want *TrialError for index 9", rep.Errors[9])
	}
	var pe *par.PanicError
	if !errors.As(rep.Errors[9], &pe) {
		t.Errorf("quarantine cause %v does not unwrap to *par.PanicError", rep.Errors[9])
	}
	if rec.retries[3] == 0 || rec.quarantined[9] != 3 {
		t.Errorf("collector provenance retries=%v quarantined=%v", rec.retries, rec.quarantined)
	}
	if !rep.Failed(9) || rep.Failed(3) {
		t.Error("Report.Failed classification wrong")
	}
}

// TestRunPayloadsIndependentOfWorkers asserts the fault envelope keeps
// the determinism contract: same payload vector at 1 and 8 workers,
// with or without a journal.
func TestRunPayloadsIndependentOfWorkers(t *testing.T) {
	const n = 32
	work := fakeWork(99, n)
	ref, rep, err := Campaign{Workers: 1}.Run(n, work)
	if err != nil || rep.Completed != n {
		t.Fatalf("reference run: %+v, %v", rep, err)
	}
	for _, workers := range []int{1, 8} {
		path := filepath.Join(t.TempDir(), "CKPT_w.jsonl")
		camp := Campaign{Tool: "w", Path: path, ConfigHash: "h", Seed: 99, Workers: workers, CkptEvery: 4}
		got, rep, err := camp.Run(n, work)
		if err != nil || rep.Completed != n {
			t.Fatalf("workers=%d: %+v, %v", workers, rep, err)
		}
		samePayloads(t, fmt.Sprintf("workers=%d", workers), ref, got)
	}
}

// TestResumeReRunsOnlyMissing interrupts a campaign after k journaled
// trials, resumes, and asserts (a) only the missing indices re-ran,
// (b) the final payload vector is byte-identical to an uninterrupted
// run, (c) replay provenance is reported.
func TestResumeReRunsOnlyMissing(t *testing.T) {
	const n, k = 20, 8
	work := fakeWork(5, n)
	ref, _, err := Campaign{Workers: 1}.Run(n, work)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "CKPT_r.jsonl")
	man := Manifest{Tool: "r", ConfigHash: "h", Seed: 5, N: n}
	j, err := Create(path, man, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		p, _ := work(i)
		if err := j.Append(Entry{Kind: EntryTrial, Index: i, Attempts: 1, Payload: p}); err != nil {
			t.Fatal(err)
		}
	}
	// A journaled failure must be re-run on resume, not replayed.
	if err := j.Append(Entry{Kind: EntryFailed, Index: k, Attempts: 3, Error: "earlier crash"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	ran := map[int]bool{}
	var mu sync.Mutex
	counting := func(i int) (json.RawMessage, error) {
		mu.Lock()
		ran[i] = true
		mu.Unlock()
		return work(i)
	}
	rec := newProvenanceRecorder()
	camp := Campaign{Tool: "r", Path: path, ConfigHash: "h", Seed: 5, Workers: 4, Resume: true, Collector: rec}
	got, rep, err := camp.Run(n, counting)
	if err != nil {
		t.Fatalf("resumed Run: %v", err)
	}
	samePayloads(t, "resume", ref, got)
	if rep.Replayed != k || rec.replayed != k {
		t.Errorf("Replayed = %d (collector %d), want %d", rep.Replayed, rec.replayed, k)
	}
	for i := 0; i < k; i++ {
		if ran[i] {
			t.Errorf("journaled trial %d re-ran", i)
		}
	}
	for i := k; i < n; i++ {
		if !ran[i] {
			t.Errorf("missing trial %d did not run", i)
		}
	}
	if rep.Completed != n {
		t.Errorf("Completed = %d, want %d", rep.Completed, n)
	}
}

// TestResumeAfterTornAppend simulates a crash mid-append (torn last
// line) and asserts resume still converges to the reference output.
func TestResumeAfterTornAppend(t *testing.T) {
	const n = 10
	work := fakeWork(13, n)
	ref, _, err := Campaign{Workers: 1}.Run(n, work)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "CKPT_t.jsonl")
	camp := Campaign{Tool: "t", Path: path, ConfigHash: "h", Seed: 13, Workers: 1}
	if _, _, err := camp.Run(n, work); err != nil {
		t.Fatal(err)
	}
	// Tear the last line: drop its final 7 bytes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	camp.Resume = true
	got, rep, err := camp.Run(n, work)
	if err != nil {
		t.Fatalf("resume after torn append: %v", err)
	}
	samePayloads(t, "torn", ref, got)
	if rep.Replayed >= n || rep.Replayed == 0 {
		t.Errorf("Replayed = %d, want in (0, %d)", rep.Replayed, n)
	}
}

func TestRunWatchdogQuarantinesHangs(t *testing.T) {
	const n = 6
	inner := fakeWork(3, n)
	work := func(i int) (json.RawMessage, error) {
		if i == 2 {
			time.Sleep(time.Second)
		}
		return inner(i)
	}
	camp := Campaign{
		Workers: 2,
		Retry:   RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond, Watchdog: 20 * time.Millisecond},
	}
	payloads, rep, err := camp.Run(n, work)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.FailedIndices) != 1 || rep.FailedIndices[0] != 2 {
		t.Fatalf("FailedIndices = %v, want [2]", rep.FailedIndices)
	}
	var we *WatchdogError
	if !errors.As(rep.Errors[2], &we) || we.Index != 2 {
		t.Errorf("Errors[2] = %v, want *WatchdogError", rep.Errors[2])
	}
	if payloads[2] != nil {
		t.Error("hung trial has a payload")
	}
	if rep.Completed != n-1 {
		t.Errorf("Completed = %d, want %d", rep.Completed, n-1)
	}
}

func TestRunRejectsNonPositiveN(t *testing.T) {
	if _, _, err := (Campaign{}).Run(0, fakeWork(1, 1)); err == nil {
		t.Error("Run(0) succeeded")
	}
}

func TestDecode(t *testing.T) {
	type point struct {
		X float64 `json:"x"`
	}
	payloads := []json.RawMessage{json.RawMessage(`{"x":1.5}`), nil, json.RawMessage(`{"x":-2}`)}
	vals, err := Decode[point](payloads)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] == nil || vals[0].X != 1.5 || vals[1] != nil || vals[2] == nil || vals[2].X != -2 {
		t.Errorf("Decode = %+v", vals)
	}
	if _, err := Decode[point]([]json.RawMessage{json.RawMessage(`{`)}); err == nil {
		t.Error("Decode accepted malformed payload")
	}
}

// TestRunCancelDrainsAndResumes proves the graceful-drain contract: a
// campaign cancelled mid-run journals what completed, skips the rest
// without quarantining anything, and a resumed campaign finishes with
// payloads byte-identical to an uninterrupted run.
func TestRunCancelDrainsAndResumes(t *testing.T) {
	const n = 16
	path := filepath.Join(t.TempDir(), "CKPT_cancel.jsonl")
	camp := Campaign{
		Tool: "cancel", Path: path, ConfigHash: "cancel-v1", Seed: 9,
		Workers: 1, CkptEvery: 1,
	}

	ref, rep, err := Campaign{Workers: 1}.Run(n, fakeWork(9, n))
	if err != nil || rep.Completed != n {
		t.Fatalf("reference: %+v, %v", rep, err)
	}

	// Cancel after the 5th trial completes: the work func closes the
	// channel itself, so the cut point is deterministic.
	cancel := make(chan struct{})
	inner := fakeWork(9, n)
	var ran int
	interrupted := camp
	interrupted.Cancel = cancel
	payloads, rep, err := interrupted.Run(n, func(i int) (json.RawMessage, error) {
		ran++
		if ran == 5 {
			close(cancel)
		}
		return inner(i)
	})
	if err != nil {
		t.Fatalf("interrupted run: %v", err)
	}
	if rep.Completed != 5 || rep.Skipped != n-5 || len(rep.FailedIndices) != 0 {
		t.Fatalf("drain report: %+v", rep)
	}
	for i, p := range payloads {
		if (p != nil) != (i < 5) {
			t.Fatalf("payload %d presence = %v", i, p != nil)
		}
	}

	// Resume with no cancel channel: only the skipped trials run, and
	// the payload vector matches the uninterrupted reference exactly.
	resumed := camp
	resumed.Resume = true
	payloads, rep, err = resumed.Run(n, fakeWork(9, n))
	if err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	if rep.Completed != n || rep.Replayed != 5 || rep.Skipped != 0 {
		t.Fatalf("resume report: %+v", rep)
	}
	for i := range ref {
		if string(payloads[i]) != string(ref[i]) {
			t.Fatalf("trial %d: resumed payload %s != reference %s", i, payloads[i], ref[i])
		}
	}
}
