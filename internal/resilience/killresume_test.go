package resilience

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"
)

// The kill-resume integration test re-executes this test binary as a
// "child" campaign process (selected by env var, dispatched from
// TestMain), SIGKILLs it mid-campaign — the one fault recover() cannot
// see — and asserts that resuming in-process completes the campaign
// with output byte-identical to an uninterrupted run.

const (
	childEnv        = "BESST_KILLRESUME_CHILD"
	childJournalEnv = "BESST_KILLRESUME_JOURNAL"
	childWorkersEnv = "BESST_KILLRESUME_WORKERS"
)

const (
	killResumeN    = 24
	killResumeSeed = uint64(4242)
	killResumeHash = "killresume-v1"
)

// killResumeWork builds the shared trial function: a pure function of
// the index, optionally slowed so the parent has time to kill the
// child mid-campaign.
func killResumeWork(delay time.Duration) WorkFunc {
	inner := fakeWork(killResumeSeed, killResumeN)
	return func(i int) (json.RawMessage, error) {
		if delay > 0 {
			time.Sleep(delay)
		}
		return inner(i)
	}
}

func killResumeCampaign(path string, workers int) Campaign {
	return Campaign{
		Tool:       "killresume",
		Path:       path,
		ConfigHash: killResumeHash,
		Seed:       killResumeSeed,
		Workers:    workers,
		CkptEvery:  1, // fsync every trial so the kill loses nothing journaled
	}
}

// killResumeChild is the re-executed child's entry point: run the slow
// campaign to completion (it never gets there — the parent kills it)
// and exit 0.
func killResumeChild() int {
	workers, err := strconv.Atoi(os.Getenv(childWorkersEnv))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad workers:", err)
		return 2
	}
	camp := killResumeCampaign(os.Getenv(childJournalEnv), workers)
	camp.Resume = true // tolerate being killed and re-spawned
	if _, _, err := camp.Run(killResumeN, killResumeWork(30*time.Millisecond)); err != nil {
		fmt.Fprintln(os.Stderr, "child campaign:", err)
		return 1
	}
	return 0
}

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		os.Exit(killResumeChild())
	}
	os.Exit(m.Run())
}

// journalLines counts whole lines currently in the journal file.
func journalLines(path string) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		n++
	}
	return n
}

func TestKillAndResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	ref, rep, err := Campaign{Workers: 1}.Run(killResumeN, killResumeWork(0))
	if err != nil || rep.Completed != killResumeN {
		t.Fatalf("reference run: %+v, %v", rep, err)
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "CKPT_killresume.jsonl")

			cmd := exec.Command(os.Args[0], "-test.run=TestMain")
			cmd.Env = append(os.Environ(),
				childEnv+"=1",
				childJournalEnv+"="+path,
				childWorkersEnv+"="+strconv.Itoa(workers),
			)
			cmd.Stderr = os.Stderr
			if err := cmd.Start(); err != nil {
				t.Fatalf("start child: %v", err)
			}

			// Wait until the child has durably journaled a few trials
			// (manifest line + >= 3 entries), then SIGKILL it mid-flight.
			deadline := time.Now().Add(10 * time.Second)
			for journalLines(path) < 4 {
				if time.Now().After(deadline) {
					_ = cmd.Process.Kill()
					_ = cmd.Wait()
					t.Fatalf("child journaled %d lines in 10s", journalLines(path))
				}
				time.Sleep(5 * time.Millisecond)
			}
			if err := cmd.Process.Kill(); err != nil {
				t.Fatalf("kill child: %v", err)
			}
			if err := cmd.Wait(); err == nil {
				t.Fatal("child exited cleanly before the kill — campaign too fast to interrupt")
			}

			// The journal must hold a strict subset of the campaign.
			_, entries, _, err := ReadJournal(path)
			if err != nil {
				t.Fatalf("journal unreadable after SIGKILL: %v", err)
			}
			if len(entries) == 0 || len(entries) >= killResumeN {
				t.Fatalf("journal has %d of %d trials — kill landed outside the campaign", len(entries), killResumeN)
			}

			// Resume in-process at full speed and compare byte-for-byte.
			camp := killResumeCampaign(path, workers)
			camp.Resume = true
			got, rep, err := camp.Run(killResumeN, killResumeWork(0))
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if rep.Replayed != len(entries) {
				t.Errorf("Replayed = %d, want %d journaled trials", rep.Replayed, len(entries))
			}
			if rep.Completed != killResumeN || len(rep.FailedIndices) != 0 {
				t.Fatalf("resumed report = %+v", rep)
			}
			samePayloads(t, "kill-resume", ref, got)
		})
	}
}
