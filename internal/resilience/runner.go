package resilience

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"besst/internal/par"
)

// RetryPolicy bounds how hard the runner fights for one trial before
// quarantining it.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per trial (default 3).
	MaxAttempts int
	// BaseBackoff is the sleep after the first failed attempt; each
	// further failure doubles it up to MaxBackoff (defaults 5ms/250ms).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Watchdog, when positive, bounds one attempt's wall time: an
	// attempt still running after this long is abandoned (its goroutine
	// is left to finish in the background — trial work cannot be
	// preempted) and counted as a failure.
	Watchdog time.Duration
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 5 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 250 * time.Millisecond
	}
	return p
}

// backoff returns the sleep before retrying after failed attempt k
// (1-based): BaseBackoff doubled per further failure, capped.
func (p RetryPolicy) backoff(k int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < k && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// FaultCollector receives campaign fault-provenance callbacks. The
// interface is typed with builtins only, so the observability layer
// (internal/obs) implements it structurally without this package
// importing it. Implementations must be safe for concurrent use.
type FaultCollector interface {
	// TrialRetry reports that attempt `attempt` of trial i failed and
	// the trial will be retried.
	TrialRetry(i, attempt int)
	// TrialQuarantined reports that trial i exhausted its attempts.
	TrialQuarantined(i, attempts int)
	// TrialsReplayed reports how many completed trials a resumed
	// campaign recovered from its journal instead of re-running.
	TrialsReplayed(n int)
}

// WatchdogError marks an attempt abandoned by the per-trial watchdog.
type WatchdogError struct {
	Index   int
	Timeout time.Duration
}

func (e *WatchdogError) Error() string {
	return fmt.Sprintf("resilience: trial %d exceeded the %v watchdog", e.Index, e.Timeout)
}

// TrialError is the quarantine record for one poison trial: every
// attempt failed; Last is the final attempt's error (*par.PanicError
// for panics, *WatchdogError for hangs).
type TrialError struct {
	Index    int
	Attempts int
	Last     error
}

func (e *TrialError) Error() string {
	return fmt.Sprintf("resilience: trial %d quarantined after %d attempts: %v", e.Index, e.Attempts, e.Last)
}

func (e *TrialError) Unwrap() error { return e.Last }

// Campaign configures one crash-safe campaign run. The zero value runs
// without checkpointing, chaos, or metrics — retries and panic
// isolation alone.
type Campaign struct {
	// Tool names the campaign (journal manifest, metrics document).
	Tool string
	// Path is the checkpoint journal location (conventionally
	// results/CKPT_<tool>.jsonl); empty disables checkpointing.
	Path string
	// ConfigHash fingerprints everything that determines trial results
	// (flags, app parameters, seed). Resume refuses a journal whose
	// hash differs, so stale results can never be spliced in. Build it
	// with ConfigHash.
	ConfigHash string
	// Seed is recorded in the manifest and verified on resume; it must
	// be the master seed the trial work derives from.
	Seed uint64
	// Workers bounds campaign concurrency (<= 0: GOMAXPROCS).
	Workers int
	// CkptEvery fsyncs the journal every this many completed trials
	// (<= 0: every trial), bounding work lost to a crash.
	CkptEvery int
	// Resume replays an existing journal and re-runs only the missing
	// (and previously failed) indices.
	Resume bool
	// Retry is the per-trial isolation policy.
	Retry RetryPolicy
	// Chaos, when enabled, injects deterministic faults into every
	// attempt (tests and the -chaos flag).
	Chaos ChaosConfig
	// Collector, when non-nil, receives fault-provenance callbacks.
	Collector FaultCollector
	// Cancel, when non-nil and closed, drains the campaign: trials not
	// yet started are skipped (left unrun, neither completed nor
	// quarantined) while in-flight trials finish and are journaled. A
	// drained campaign resumes exactly where it stopped — the graceful
	// SIGTERM path of besst-serve.
	Cancel <-chan struct{}
}

// Report is the campaign's explicit fault provenance: the partial
// result's caveats rather than a reason to abort.
type Report struct {
	// N is the campaign size, Completed how many trials have payloads
	// (including replayed ones), Replayed how many came from the
	// journal.
	N, Completed, Replayed int
	// Skipped is how many trials a cancelled campaign left unrun; they
	// are re-run on resume.
	Skipped int
	// FailedIndices lists quarantined trials, ascending.
	FailedIndices []int
	// Attempts maps every trial that needed more than one attempt to
	// its total attempt count (quarantined trials included).
	Attempts map[int]int
	// Errors maps each quarantined index to its final error.
	Errors map[int]error
}

// Failed reports whether trial i was quarantined.
func (r Report) Failed(i int) bool {
	for _, f := range r.FailedIndices {
		if f == i {
			return true
		}
	}
	return false
}

// WorkFunc produces the serialized result of trial i. It must be a
// pure function of i (trial seeds pre-drawn, no shared mutable state)
// so that re-running any index after a crash — or on another worker
// count — yields the same payload bytes.
type WorkFunc func(i int) (json.RawMessage, error)

// Run executes trials [0, n) under the campaign's fault envelope and
// returns the per-index payloads (nil at quarantined indices), the
// fault report, and the first infrastructure error (journal I/O —
// trial failures are provenance, not errors).
//
// With a journal configured, every completed trial is appended as it
// finishes and fsynced every CkptEvery completions; with Resume set,
// journaled results are replayed first and only missing indices run.
// Because payloads are exact JSON and trial seeds are pre-drawn by the
// caller, a resumed campaign's payload vector is byte-identical to an
// uninterrupted run's.
func (c Campaign) Run(n int, work WorkFunc) ([]json.RawMessage, Report, error) {
	if n <= 0 {
		return nil, Report{}, fmt.Errorf("resilience: non-positive campaign size %d", n)
	}
	rep := Report{N: n, Attempts: map[int]int{}, Errors: map[int]error{}}
	results := make([]json.RawMessage, n)

	var journal *Journal
	if c.Path != "" {
		man := Manifest{Tool: c.Tool, ConfigHash: c.ConfigHash, Seed: c.Seed, N: n}
		if c.Resume {
			j, entries, err := Resume(c.Path, man, c.CkptEvery)
			if err != nil {
				return nil, rep, err
			}
			journal = j
			for _, e := range entries {
				if e.Index < 0 || e.Index >= n || e.Kind != EntryTrial {
					continue // failed entries are provenance; re-run them
				}
				if results[e.Index] == nil {
					rep.Replayed++
				}
				results[e.Index] = e.Payload
			}
			if c.Collector != nil && rep.Replayed > 0 {
				c.Collector.TrialsReplayed(rep.Replayed)
			}
		} else {
			j, err := Create(c.Path, man, c.CkptEvery)
			if err != nil {
				return nil, rep, err
			}
			journal = j
		}
	}

	// Enumerate the missing indices in order; the pool walks this list.
	missing := make([]int, 0, n)
	for i := range results {
		if results[i] == nil {
			missing = append(missing, i)
		}
	}

	inj := c.Chaos.NewInjector(n)
	retry := c.Retry.withDefaults()
	var mu sync.Mutex // guards rep across workers
	errs := par.ForEachIsolated(c.Workers, len(missing), func(k int) error {
		i := missing[k]
		if c.cancelled() {
			return nil // drained: leave the trial unrun for resume
		}
		payload, attempts, err := c.runTrial(i, work, inj, retry)
		mu.Lock()
		if attempts > 1 {
			rep.Attempts[i] = attempts
		}
		if err != nil {
			rep.FailedIndices = append(rep.FailedIndices, i)
			rep.Errors[i] = err
		}
		mu.Unlock()
		if err != nil {
			if c.Collector != nil {
				c.Collector.TrialQuarantined(i, attempts)
			}
			if journal != nil {
				return journal.Append(Entry{Kind: EntryFailed, Index: i, Attempts: attempts, Error: err.Error()})
			}
			return nil
		}
		results[i] = payload
		if journal != nil {
			return journal.Append(Entry{Kind: EntryTrial, Index: i, Attempts: attempts, Payload: payload})
		}
		return nil
	})

	var firstErr error
	for _, err := range errs {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if journal != nil {
		if err := journal.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	sort.Ints(rep.FailedIndices)
	for _, p := range results {
		if p != nil {
			rep.Completed++
		}
	}
	rep.Skipped = rep.N - rep.Completed - len(rep.FailedIndices)
	return results, rep, firstErr
}

// cancelled reports whether the campaign's cancel channel is closed.
func (c Campaign) cancelled() bool {
	if c.Cancel == nil {
		return false
	}
	select {
	case <-c.Cancel:
		return true
	default:
		return false
	}
}

// runTrial is the per-trial fault envelope: chaos injection, recover(),
// watchdog, bounded retry with exponential backoff. It returns the
// payload, the number of attempts consumed, and the final error when
// every attempt failed.
func (c Campaign) runTrial(i int, work WorkFunc, inj *Injector, retry RetryPolicy) (json.RawMessage, int, error) {
	var last error
	for attempt := 1; attempt <= retry.MaxAttempts; attempt++ {
		payload, err := c.runAttempt(i, attempt, work, inj, retry.Watchdog)
		if err == nil {
			return payload, attempt, nil
		}
		last = err
		if attempt < retry.MaxAttempts {
			if c.Collector != nil {
				c.Collector.TrialRetry(i, attempt)
			}
			time.Sleep(retry.backoff(attempt))
		}
	}
	return nil, retry.MaxAttempts, &TrialError{Index: i, Attempts: retry.MaxAttempts, Last: last}
}

// runAttempt executes one guarded attempt: panics become errors, and a
// positive watchdog abandons attempts that outlive it.
func (c Campaign) runAttempt(i, attempt int, work WorkFunc, inj *Injector, watchdog time.Duration) (json.RawMessage, error) {
	guarded := func() (payload json.RawMessage, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &par.PanicError{Index: i, Value: r}
			}
		}()
		inj.Inject(i, attempt)
		return work(i)
	}
	if watchdog <= 0 {
		return guarded()
	}
	type outcome struct {
		payload json.RawMessage
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		p, err := guarded()
		done <- outcome{p, err}
	}()
	timer := time.NewTimer(watchdog)
	defer timer.Stop()
	select {
	case o := <-done:
		return o.payload, o.err
	case <-timer.C:
		return nil, &WatchdogError{Index: i, Timeout: watchdog}
	}
}

// ConfigHash fingerprints a campaign configuration: every value that
// influences trial results should be included, in a fixed order. The
// result is a short hex digest for the journal manifest.
func ConfigHash(parts ...any) string {
	h := sha256.New()
	for _, p := range parts {
		_, _ = fmt.Fprintf(h, "%v\x00", p)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Decode unmarshals each non-nil payload into a fresh T, returning the
// per-index values (nil at quarantined indices). It is the generic
// bridge from journal payloads back to typed results; float64 fields
// survive exactly because encoding/json emits shortest round-trippable
// representations.
func Decode[T any](payloads []json.RawMessage) ([]*T, error) {
	out := make([]*T, len(payloads))
	for i, p := range payloads {
		if p == nil {
			continue
		}
		v := new(T)
		if err := json.Unmarshal(p, v); err != nil {
			return nil, fmt.Errorf("resilience: decode payload %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}
