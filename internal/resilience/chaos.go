package resilience

import (
	"fmt"
	"os"
	"time"

	"besst/internal/par"
	"besst/internal/stats"
)

// ChaosConfig parameterizes the deterministic fault injector used to
// stress the campaign runner: before each trial attempt it may inject a
// delay, a panic, or both, each decided by a coin flip from an RNG
// derived purely from (chaos seed, trial index, attempt). The same
// config therefore produces the same fault schedule on every run and at
// every worker count — chaos tests are as reproducible as the
// simulations they harden. The zero value injects nothing.
type ChaosConfig struct {
	// PanicRate is the per-attempt probability of an injected panic
	// (simulating a crashed worker or a poison trial).
	PanicRate float64
	// DelayRate is the per-attempt probability of an injected delay
	// (simulating a straggling or descheduled worker).
	DelayRate float64
	// MaxDelay bounds the injected delay (default 2ms).
	MaxDelay time.Duration
	// KillRate is the per-attempt probability of an injected process
	// kill — the total loss of a worker, dying mid-shard with no
	// chance to recover, flush, or answer its coordinator. Unlike
	// PanicRate (which the retry machinery absorbs in-process), a kill
	// is only survivable by an *external* layer: journal resume or
	// replica reassignment.
	KillRate float64
	// Kill performs the injected kill. Nil selects the real thing —
	// SIGKILL on the running process. Tests override it to observe the
	// decision without dying.
	Kill func()
	// Seed drives the injector's RNG, independent of trial seeds.
	Seed uint64
}

// enabled reports whether the config injects anything.
func (c ChaosConfig) enabled() bool {
	return c.PanicRate > 0 || c.DelayRate > 0 || c.KillRate > 0
}

// chaosPanic is the injected panic value, recognizable in quarantine
// provenance.
type chaosPanic struct {
	index, attempt int
}

func (p chaosPanic) String() string {
	return fmt.Sprintf("chaos: injected panic at trial %d attempt %d", p.index, p.attempt)
}

// Injector is a materialized ChaosConfig for an n-trial campaign, with
// one pre-drawn base seed per trial index (the same SeedFan discipline
// the simulator uses, so injection never depends on completion order).
// It is exported so out-of-process executors (besst-worker) can run the
// same deterministic fault schedule the in-process campaign runner
// does.
type Injector struct {
	cfg   ChaosConfig
	seeds []uint64
}

// NewInjector materializes the config for an n-unit campaign; a
// disabled config yields nil, which Inject treats as a no-op.
func (c ChaosConfig) NewInjector(n int) *Injector {
	if !c.enabled() {
		return nil
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.Kill == nil {
		c.Kill = killSelf
	}
	return &Injector{cfg: c, seeds: par.SeedFan(c.Seed, n)}
}

// killSelf is the real kill action: SIGKILL the running process, the
// one signal no deferred recovery can intercept.
func killSelf() {
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		panic(fmt.Sprintf("chaos: cannot find own process: %v", err))
	}
	_ = p.Kill()
	// SIGKILL delivery is asynchronous; never let this trial proceed.
	select {}
}

// attemptSeed derives the RNG seed for one (trial, attempt) pair from
// the trial's base seed via a splitmix64 step, so every retry of a
// trial sees an independent — but fixed — fault decision.
func attemptSeed(base uint64, attempt int) uint64 {
	x := base + uint64(attempt)*0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Inject runs the fault decisions for one trial attempt: possibly
// sleep, possibly kill the process, possibly panic. Called inside the
// recover() guard, so an injected panic exercises exactly the retry
// path a real one would. The decision stream is fixed by
// (seed, index, attempt) alone — the same schedule fires at any worker
// count, in any process, in any order.
func (in *Injector) Inject(index, attempt int) {
	if in == nil {
		return
	}
	rng := stats.NewRNG(attemptSeed(in.seeds[index], attempt))
	if rng.Float64() < in.cfg.DelayRate {
		frac := rng.Float64()
		time.Sleep(time.Duration(frac * float64(in.cfg.MaxDelay)))
	}
	if rng.Float64() < in.cfg.KillRate {
		in.cfg.Kill()
	}
	if rng.Float64() < in.cfg.PanicRate {
		panic(chaosPanic{index: index, attempt: attempt})
	}
}
