package resilience

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/dse"
	"besst/internal/fti"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/workflow"
)

var (
	onceModels sync.Once
	testModels *workflow.Models
)

// devModels fits cheap interpolation models once for the package.
func devModels(t *testing.T) *workflow.Models {
	t.Helper()
	onceModels.Do(func() {
		em := groundtruth.NewQuartz()
		testModels, _ = workflow.DevelopLuleshQuartz(em, 5, workflow.Interpolation, 7)
	})
	return testModels
}

func testCompiledRun(t *testing.T) *besst.CompiledRun {
	t.Helper()
	app := lulesh.App(10, 8, 12, lulesh.ScenarioL1, fti.Config{GroupSize: 4, NodeSize: 2})
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	workflow.BindLulesh(arch, devModels(t))
	cr, err := besst.CompileErr(app, arch)
	if err != nil {
		t.Fatalf("CompileErr: %v", err)
	}
	return cr
}

// jsonRoundTrip normalizes a Result the way a journal payload does, so
// in-memory reference results compare equal to decoded ones (nil vs
// empty slice distinctions wash out identically on both sides).
func jsonRoundTrip(t *testing.T, r *besst.Result) *besst.Result {
	t.Helper()
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	out := new(besst.Result)
	if err := json.Unmarshal(raw, out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestReplicateResumableMatchesReplicate runs the same campaign through
// the plain path and the resumable path (with a journal, then resumed
// against the complete journal) and asserts identical results.
func TestReplicateResumableMatchesReplicate(t *testing.T) {
	const n, seed = 6, uint64(11)
	cr := testCompiledRun(t)
	opts := []besst.Option{
		besst.WithMode(besst.Direct), besst.WithPerRankNoise(true),
		besst.WithSeed(seed), besst.WithConcurrency(1),
	}
	ref, err := cr.ReplicateErr(n, opts...)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "CKPT_a.jsonl")
	camp := Campaign{Tool: "a", Path: path, ConfigHash: "h", Seed: seed, Workers: 2}
	got, rep, err := ReplicateResumable(cr, n, camp, opts...)
	if err != nil {
		t.Fatalf("ReplicateResumable: %v", err)
	}
	if rep.Completed != n || len(rep.FailedIndices) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	for i := range ref {
		if !reflect.DeepEqual(jsonRoundTrip(t, ref[i]), got[i]) {
			t.Errorf("trial %d: resumable result differs from Replicate", i)
		}
	}

	// Resume against the complete journal: everything replays, nothing
	// re-runs, same results.
	camp.Resume = true
	again, rep, err := ReplicateResumable(cr, n, camp, opts...)
	if err != nil {
		t.Fatalf("resumed ReplicateResumable: %v", err)
	}
	if rep.Replayed != n {
		t.Errorf("Replayed = %d, want %d", rep.Replayed, n)
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], again[i]) {
			t.Errorf("trial %d: replayed result differs", i)
		}
	}
}

// TestSweepResumableMatchesOverheadSweep compares the resumable sweep
// against the plain OverheadSweep, then resumes against the complete
// journal.
func TestSweepResumableMatchesOverheadSweep(t *testing.T) {
	models := devModels(t)
	m := machine.Quartz()
	cfg := dse.SweepConfig{
		EPRs:      []int{10},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1},
		Timesteps: 20,
		MCRuns:    2,
		Seed:      3,
	}
	ref := dse.OverheadSweep(models, m, 2, cfg)

	s := dse.PrepareSweep(models, m, 2, cfg)
	path := filepath.Join(t.TempDir(), "CKPT_s.jsonl")
	camp := Campaign{Tool: "s", Path: path, ConfigHash: "h", Seed: cfg.Seed, Workers: 2}
	cells, rep, err := SweepResumable(s, camp)
	if err != nil {
		t.Fatalf("SweepResumable: %v", err)
	}
	if rep.Completed != s.NumPoints() {
		t.Fatalf("completed %d of %d points", rep.Completed, s.NumPoints())
	}
	if !reflect.DeepEqual(ref, cells) {
		t.Errorf("resumable sweep differs from OverheadSweep:\n%+v\n%+v", ref, cells)
	}

	camp.Resume = true
	cells2, rep, err := SweepResumable(s, camp)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Replayed != s.NumPoints() {
		t.Errorf("Replayed = %d, want %d", rep.Replayed, s.NumPoints())
	}
	if !reflect.DeepEqual(cells, cells2) {
		t.Error("replayed sweep differs")
	}
}
