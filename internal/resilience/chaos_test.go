package resilience

import (
	"encoding/json"
	"testing"
	"time"

	"besst/internal/obs"
)

// TestChaosCampaignSurvivesInjection runs 100 trials at 10% panic and
// 10% delay rates and asserts: every non-quarantined trial's payload
// matches the chaos-free reference byte for byte, quarantines are rare
// (three failures in a row at 10% is a 0.1% event per trial), and the
// fault provenance lands in the metrics snapshot.
func TestChaosCampaignSurvivesInjection(t *testing.T) {
	const n = 100
	work := fakeWork(21, n)
	ref, _, err := Campaign{Workers: 1}.Run(n, work)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 8} {
		col := obs.NewCollector()
		camp := Campaign{
			Workers: workers,
			Retry:   fastRetry(),
			Chaos: ChaosConfig{
				PanicRate: 0.10,
				DelayRate: 0.10,
				MaxDelay:  100 * time.Microsecond,
				Seed:      777,
			},
			Collector: col,
		}
		payloads, rep, err := camp.Run(n, work)
		if err != nil {
			t.Fatalf("workers=%d: Run: %v", workers, err)
		}
		if rep.Completed+len(rep.FailedIndices) != n {
			t.Fatalf("workers=%d: completed %d + failed %d != %d", workers, rep.Completed, len(rep.FailedIndices), n)
		}
		if len(rep.FailedIndices) > n/10 {
			t.Errorf("workers=%d: %d quarantines at 10%% rate with 3 attempts — injector is not retrying", workers, len(rep.FailedIndices))
		}
		if len(rep.Attempts) == 0 {
			t.Errorf("workers=%d: no retries recorded at 10%% panic rate over %d trials", workers, n)
		}
		for i := 0; i < n; i++ {
			if rep.Failed(i) {
				if payloads[i] != nil {
					t.Errorf("workers=%d: quarantined trial %d has a payload", workers, i)
				}
				continue
			}
			if string(payloads[i]) != string(ref[i]) {
				t.Errorf("workers=%d: trial %d payload corrupted by chaos:\n  %s\n  %s", workers, i, payloads[i], ref[i])
			}
		}
		// The injected fault schedule is a pure function of (seed, index,
		// attempt), so provenance must agree across worker counts.
		m := col.Snapshot("chaos-test")
		if len(m.TrialRetries) != len(rep.Attempts)-len(rep.FailedIndices) && len(m.TrialRetries) == 0 {
			t.Errorf("workers=%d: metrics snapshot lost retry provenance", workers)
		}
		for _, idx := range rep.FailedIndices {
			found := false
			for _, fi := range m.FailedIndices {
				if fi == idx {
					found = true
				}
			}
			if !found {
				t.Errorf("workers=%d: quarantined trial %d missing from metrics failed_indices", workers, idx)
			}
		}
	}
}

// TestChaosScheduleDeterministic asserts the same chaos config yields
// the same quarantine set and attempt counts on repeated runs.
func TestChaosScheduleDeterministic(t *testing.T) {
	const n = 60
	work := fakeWork(4, n)
	run := func() ([]int, map[int]int) {
		camp := Campaign{
			Workers: 4,
			Retry:   RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Microsecond, MaxBackoff: time.Microsecond},
			Chaos:   ChaosConfig{PanicRate: 0.25, Seed: 31},
		}
		_, rep, err := camp.Run(n, work)
		if err != nil {
			t.Fatal(err)
		}
		return rep.FailedIndices, rep.Attempts
	}
	f1, a1 := run()
	f2, a2 := run()
	if len(f1) != len(f2) {
		t.Fatalf("quarantine sets differ: %v vs %v", f1, f2)
	}
	for i := range f1 {
		if f1[i] != f2[i] {
			t.Fatalf("quarantine sets differ: %v vs %v", f1, f2)
		}
	}
	if len(a1) != len(a2) {
		t.Fatalf("attempt maps differ: %v vs %v", a1, a2)
	}
	for k, v := range a1 {
		if a2[k] != v {
			t.Fatalf("attempt maps differ at %d: %d vs %d", k, v, a2[k])
		}
	}
	if len(f1) == 0 {
		t.Error("25% panic rate with 2 attempts over 60 trials quarantined nothing — injector inert")
	}
}

// TestChaosZeroValueInjectsNothing pins the off switch.
func TestChaosZeroValueInjectsNothing(t *testing.T) {
	if (ChaosConfig{}).NewInjector(4) != nil {
		t.Error("zero ChaosConfig built an injector")
	}
	var in *Injector
	in.Inject(0, 1) // nil receiver must be a no-op, not a crash
}

// TestChaosPanicValueIsRecognizable pins the quarantine provenance of
// an injected panic.
func TestChaosPanicValueIsRecognizable(t *testing.T) {
	work := func(i int) (json.RawMessage, error) { return json.RawMessage(`1`), nil }
	camp := Campaign{
		Workers: 1,
		Retry:   RetryPolicy{MaxAttempts: 1, BaseBackoff: time.Microsecond},
		Chaos:   ChaosConfig{PanicRate: 1.0, Seed: 1},
	}
	_, rep, err := camp.Run(3, work)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.FailedIndices) != 3 {
		t.Fatalf("PanicRate=1 quarantined %d of 3", len(rep.FailedIndices))
	}
	if rep.Errors[0] == nil || rep.Errors[0].Error() == "" {
		t.Fatal("no quarantine error recorded")
	}
}

// TestChaosKillDeterministicSchedule pins the kill decision stream: a
// KillRate config with an overridden Kill hook fires on the same
// (index, attempt) pairs on every run, and never fires at rate zero.
func TestChaosKillDeterministicSchedule(t *testing.T) {
	const n = 50
	schedule := func() []int {
		var fired []int
		cur := -1
		in := ChaosConfig{
			KillRate: 0.2,
			Seed:     99,
			Kill:     func() { fired = append(fired, cur) },
		}.NewInjector(n)
		if in == nil {
			t.Fatal("KillRate>0 config built no injector")
		}
		for i := 0; i < n; i++ {
			cur = i
			in.Inject(i, 1)
		}
		return fired
	}
	s1, s2 := schedule(), schedule()
	if len(s1) == 0 {
		t.Fatal("20% kill rate over 50 trials fired nothing — injector inert")
	}
	if len(s1) != len(s2) {
		t.Fatalf("kill schedules differ: %v vs %v", s1, s2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("kill schedules differ: %v vs %v", s1, s2)
		}
	}
}
