package resilience

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func testManifest(n int) Manifest {
	return Manifest{Tool: "test", ConfigHash: "cafe0123", Seed: 42, N: n}
}

// writeTestJournal creates a journal with k entries and returns its
// path and full byte content.
func writeTestJournal(t *testing.T, k int) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "CKPT_test.jsonl")
	j, err := Create(path, testManifest(k), 1)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	for i := 0; i < k; i++ {
		payload, _ := json.Marshal(map[string]int{"i": i})
		if err := j.Append(Entry{Kind: EntryTrial, Index: i, Attempts: 1, Payload: payload}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	return path, data
}

func TestJournalRoundTrip(t *testing.T) {
	path, _ := writeTestJournal(t, 5)
	m, entries, _, err := ReadJournal(path)
	if err != nil {
		t.Fatalf("ReadJournal: %v", err)
	}
	want := testManifest(5)
	want.Kind = "manifest"
	want.SchemaVersion = JournalSchemaVersion
	if *m != want {
		t.Errorf("manifest = %+v, want %+v", *m, want)
	}
	if len(entries) != 5 {
		t.Fatalf("got %d entries, want 5", len(entries))
	}
	for i, e := range entries {
		if e.Kind != EntryTrial || e.Index != i || e.Attempts != 1 {
			t.Errorf("entry %d = %+v", i, e)
		}
	}
}

// TestJournalTornTailEveryOffset truncates the journal at every byte
// length and asserts ReadJournal never errors (once the manifest line
// is whole), never panics, and returns exactly the whole entry lines
// that survived.
func TestJournalTornTailEveryOffset(t *testing.T) {
	_, data := writeTestJournal(t, 4)
	manifestLen := 0
	for i, b := range data {
		if b == '\n' {
			manifestLen = i + 1
			break
		}
	}
	// Count entry-line boundaries so we know how many whole entries a
	// prefix of each length retains.
	wholeAt := func(n int) int {
		count := 0
		for i := manifestLen; i < n; i++ {
			if data[i] == '\n' {
				count++
			}
		}
		return count
	}
	for cut := 0; cut <= len(data); cut++ {
		torn := filepath.Join(t.TempDir(), "torn.jsonl")
		if err := os.WriteFile(torn, data[:cut], 0o644); err != nil {
			t.Fatalf("write torn copy: %v", err)
		}
		m, entries, validLen, err := ReadJournal(torn)
		if cut < manifestLen {
			if !errors.Is(err, ErrNoManifest) {
				t.Fatalf("cut=%d: err = %v, want ErrNoManifest", cut, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
		if m == nil {
			t.Fatalf("cut=%d: nil manifest", cut)
		}
		if want := wholeAt(cut); len(entries) != want {
			t.Errorf("cut=%d: got %d entries, want %d", cut, len(entries), want)
		}
		if validLen > int64(cut) {
			t.Errorf("cut=%d: validLen %d exceeds file size", cut, validLen)
		}
	}
}

// TestResumeTruncatesTornTail appends garbage to a valid journal and
// verifies Resume cuts it away so subsequent appends produce a clean
// file.
func TestResumeTruncatesTornTail(t *testing.T) {
	path, data := writeTestJournal(t, 3)
	if err := os.WriteFile(path, append(data, []byte(`{"kind":"trial","ind`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	j, entries, err := Resume(path, testManifest(3), 1)
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if len(entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(entries))
	}
	if err := j.Append(Entry{Kind: EntryTrial, Index: 3}); err != nil {
		t.Fatalf("Append after resume: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if _, entries, _, err = ReadJournal(path); err != nil || len(entries) != 4 {
		t.Fatalf("after torn-tail resume: entries=%d err=%v, want 4 nil", len(entries), err)
	}
}

func TestResumeRejectsManifestMismatch(t *testing.T) {
	path, _ := writeTestJournal(t, 2)
	cases := []Manifest{
		{Tool: "other", ConfigHash: "cafe0123", Seed: 42, N: 2},
		{Tool: "test", ConfigHash: "deadbeef", Seed: 42, N: 2},
		{Tool: "test", ConfigHash: "cafe0123", Seed: 7, N: 2},
		{Tool: "test", ConfigHash: "cafe0123", Seed: 42, N: 3},
	}
	for i, m := range cases {
		if _, _, err := Resume(path, m, 1); !errors.Is(err, ErrManifestMismatch) {
			t.Errorf("case %d: err = %v, want ErrManifestMismatch", i, err)
		}
	}
}

func TestResumeMissingFileCreates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "CKPT_test.jsonl")
	j, entries, err := Resume(path, testManifest(1), 1)
	if err != nil {
		t.Fatalf("Resume on missing file: %v", err)
	}
	if entries != nil {
		t.Errorf("fresh journal returned %d entries", len(entries))
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if m, _, _, err := ReadJournal(path); err != nil || m.Tool != "test" {
		t.Fatalf("created journal unreadable: %v", err)
	}
}

func TestReadJournalRejectsNonManifestFirstLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte(`{"kind":"trial","index":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ReadJournal(path); !errors.Is(err, ErrNoManifest) {
		t.Errorf("err = %v, want ErrNoManifest", err)
	}
}

// FuzzReadJournal feeds arbitrary bytes through the journal reader: it
// must never panic, and any accepted journal must report a validLen
// within the file.
func FuzzReadJournal(f *testing.F) {
	valid := `{"kind":"manifest","schema_version":1,"tool":"t","config_hash":"x","seed":1,"n":2}` + "\n" +
		`{"kind":"trial","index":0,"attempts":1,"payload":{"i":0}}` + "\n" +
		`{"kind":"failed","index":1,"attempts":3,"error":"boom"}` + "\n"
	f.Add([]byte(valid))
	f.Add([]byte(""))
	f.Add([]byte("{\n"))
	f.Add([]byte(`{"kind":"manifest","schema_version":1}` + "\n" + `{"kind":"trial"`))
	f.Add([]byte(`{"kind":"manifest"}` + "\n" + `{"kind":"weird","index":1}` + "\n"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.jsonl")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Skip()
		}
		m, entries, validLen, err := ReadJournal(path)
		if err != nil {
			return
		}
		if m == nil {
			t.Fatal("nil manifest with nil error")
		}
		if validLen < 0 || validLen > int64(len(raw)) {
			t.Fatalf("validLen %d outside [0, %d]", validLen, len(raw))
		}
		for _, e := range entries {
			if e.Kind != EntryTrial && e.Kind != EntryFailed {
				t.Fatalf("accepted entry of kind %q", e.Kind)
			}
		}
	})
}

func TestJournalPath(t *testing.T) {
	got := JournalPath("results", "besst-sim")
	want := filepath.Join("results", "CKPT_besst-sim.jsonl")
	if got != want {
		t.Errorf("JournalPath = %q, want %q", got, want)
	}
}

func TestConfigHashStableAndSensitive(t *testing.T) {
	a := ConfigHash("besst-sim", 100, uint64(42), "quartz")
	b := ConfigHash("besst-sim", 100, uint64(42), "quartz")
	c := ConfigHash("besst-sim", 101, uint64(42), "quartz")
	if a != b {
		t.Errorf("hash not stable: %q vs %q", a, b)
	}
	if a == c {
		t.Errorf("hash insensitive to config change: %q", a)
	}
	if len(a) != 16 {
		t.Errorf("hash length = %d, want 16", len(a))
	}
}
