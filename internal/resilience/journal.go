// Package resilience makes the simulator's own long-running campaigns
// fault tolerant — the paper's FT-awareness applied to the tool itself.
// A Monte Carlo or DSE campaign that used to die irrecoverably on a
// panic, an OOM-killed worker, or a Ctrl-C now (1) checkpoints every
// completed trial to an append-only JSONL journal so `-resume` re-runs
// only the missing indices, (2) isolates each trial behind recover()
// with bounded retries, exponential backoff, and a watchdog timeout so
// one poison trial degrades the campaign to a partial result instead of
// aborting it, and (3) can be stress-tested by a deterministic chaos
// injector that plants panics and delays at configurable rates.
//
// The determinism contract of internal/par makes crash recovery exact:
// per-index seeds are pre-drawn before any work starts, so a trial
// re-run after a crash consumes the same random stream it would have in
// the original process, and a resumed campaign's final output is
// byte-identical to an uninterrupted run.
package resilience

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// JournalSchemaVersion is bumped whenever the journal line layout
// changes incompatibly; Resume rejects journals from other versions.
const JournalSchemaVersion = 1

// Sentinel errors of the journal layer, wrapped with detail; classify
// with errors.Is.
var (
	// ErrNoManifest marks a journal whose first line is missing or not
	// a manifest record.
	ErrNoManifest = errors.New("resilience: journal has no manifest")
	// ErrManifestMismatch marks a resume attempt against a journal
	// written by a different campaign configuration.
	ErrManifestMismatch = errors.New("resilience: journal manifest does not match campaign")
	// ErrCorruptJournal marks undecodable journal content before the
	// final line (a torn final line is tolerated, not an error).
	ErrCorruptJournal = errors.New("resilience: corrupt journal")
)

// Manifest identifies the campaign a journal belongs to. Resume
// verifies every field, so results from a different configuration,
// seed, or trial count can never be silently spliced into a campaign.
type Manifest struct {
	Kind          string `json:"kind"` // always "manifest"
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool"`
	ConfigHash    string `json:"config_hash"`
	Seed          uint64 `json:"seed"`
	N             int    `json:"n"`
}

// matches reports whether two manifests describe the same campaign.
func (m Manifest) matches(other Manifest) bool {
	return m.SchemaVersion == other.SchemaVersion && m.Tool == other.Tool &&
		m.ConfigHash == other.ConfigHash && m.Seed == other.Seed && m.N == other.N
}

// Entry kinds.
const (
	// EntryTrial records one completed trial with its payload.
	EntryTrial = "trial"
	// EntryFailed records a quarantined trial: no payload, but explicit
	// provenance (attempt count, final error). On resume, failed trials
	// are re-run — the crash cause may be gone.
	EntryFailed = "failed"
)

// Entry is one journal line after the manifest.
type Entry struct {
	Kind     string          `json:"kind"`
	Index    int             `json:"index"`
	Attempts int             `json:"attempts,omitempty"`
	Error    string          `json:"error,omitempty"`
	Payload  json.RawMessage `json:"payload,omitempty"`
}

// Journal is an append-only campaign checkpoint log: one JSON document
// per line, a manifest first, then one entry per completed (or
// quarantined) trial. Appends are buffered and fsynced every
// `every` entries, so at most that many trials can be lost to a crash.
// All methods are safe for concurrent use.
type Journal struct {
	mu    sync.Mutex
	f     *os.File
	w     *bufio.Writer
	every int
	since int // appends since the last fsync
}

// JournalPath returns the conventional journal filename for a tool,
// e.g. JournalPath("results", "besst-sim") = "results/CKPT_besst-sim.jsonl".
func JournalPath(dir, tool string) string {
	return filepath.Join(dir, fmt.Sprintf("CKPT_%s.jsonl", tool))
}

// Create atomically creates a fresh journal at path holding only the
// manifest: the manifest line is written to a temp file, fsynced, and
// renamed into place, so a crash during creation leaves either no
// journal or a valid one — never a torn manifest. ckptEvery <= 0
// fsyncs every append.
func Create(path string, m Manifest, ckptEvery int) (*Journal, error) {
	m.Kind = "manifest"
	m.SchemaVersion = JournalSchemaVersion
	dir := filepath.Dir(path)
	if dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("resilience: mkdir %s: %w", dir, err)
		}
	}
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return nil, fmt.Errorf("resilience: create journal temp: %w", err)
	}
	line, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("resilience: marshal manifest: %w", err)
	}
	line = append(line, '\n')
	if _, err := tmp.Write(line); err == nil {
		err = tmp.Sync()
	}
	if err == nil {
		err = tmp.Close()
	}
	if err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return nil, fmt.Errorf("resilience: write manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		_ = os.Remove(tmp.Name())
		return nil, fmt.Errorf("resilience: install journal: %w", err)
	}
	syncDir(dir)
	return openAppend(path, ckptEvery)
}

// Resume opens an existing journal for appending, verifying its
// manifest against m and replaying its entries. The torn tail a crash
// can leave — a partially written final line — is tolerated: it is
// truncated away before appending resumes, so the journal stays a
// sequence of whole lines. If no journal exists at path, Resume
// creates a fresh one and returns no entries.
func Resume(path string, m Manifest, ckptEvery int) (*Journal, []Entry, error) {
	if _, err := os.Stat(path); errors.Is(err, os.ErrNotExist) {
		j, cerr := Create(path, m, ckptEvery)
		return j, nil, cerr
	}
	m.Kind = "manifest"
	m.SchemaVersion = JournalSchemaVersion
	got, entries, validLen, err := ReadJournal(path)
	if err != nil {
		return nil, nil, err
	}
	if !got.matches(m) {
		return nil, nil, fmt.Errorf("%w: journal %+v vs campaign %+v", ErrManifestMismatch, *got, m)
	}
	if err := os.Truncate(path, validLen); err != nil {
		return nil, nil, fmt.Errorf("resilience: truncate torn tail: %w", err)
	}
	j, err := openAppend(path, ckptEvery)
	if err != nil {
		return nil, nil, err
	}
	return j, entries, nil
}

func openAppend(path string, ckptEvery int) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("resilience: open journal: %w", err)
	}
	if ckptEvery <= 0 {
		ckptEvery = 1
	}
	return &Journal{f: f, w: bufio.NewWriter(f), every: ckptEvery}, nil
}

// Append persists one entry. The write is buffered; every `every`
// appends the buffer is flushed and fsynced so completed trials are
// durable against a crash.
func (j *Journal) Append(e Entry) error {
	line, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("resilience: marshal entry %d: %w", e.Index, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("resilience: append entry %d: %w", e.Index, err)
	}
	j.since++
	if j.since >= j.every {
		j.since = 0
		if err := j.w.Flush(); err != nil {
			return fmt.Errorf("resilience: flush journal: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("resilience: fsync journal: %w", err)
		}
	}
	return nil
}

// Close flushes, fsyncs, and closes the journal.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	ferr := j.w.Flush()
	serr := j.f.Sync()
	cerr := j.f.Close()
	if ferr != nil {
		return fmt.Errorf("resilience: flush journal: %w", ferr)
	}
	if serr != nil {
		return fmt.Errorf("resilience: fsync journal: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("resilience: close journal: %w", cerr)
	}
	return nil
}

// ReadJournal parses a journal file: the manifest, every decodable
// entry, and the byte length of the valid prefix. A torn tail — any
// undecodable or unterminated content after the last whole valid line,
// the signature a SIGKILL mid-append leaves — is tolerated: parsing
// stops there and validLen marks where appending may safely resume.
// Only a missing or undecodable manifest line is an error.
func ReadJournal(path string) (m *Manifest, entries []Entry, validLen int64, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("resilience: read journal: %w", err)
	}
	off := int64(0)
	line, n := nextLine(data)
	if n == 0 {
		return nil, nil, 0, fmt.Errorf("%w: %s", ErrNoManifest, path)
	}
	var man Manifest
	if jerr := json.Unmarshal(line, &man); jerr != nil || man.Kind != "manifest" {
		return nil, nil, 0, fmt.Errorf("%w: %s: first line is not a manifest", ErrNoManifest, path)
	}
	data = data[n:]
	off += int64(n)
	for {
		line, n = nextLine(data)
		if n == 0 {
			break // end of file, or a torn unterminated tail
		}
		var e Entry
		if jerr := json.Unmarshal(line, &e); jerr != nil {
			break // torn or corrupt tail: stop at the last whole valid line
		}
		if e.Kind != EntryTrial && e.Kind != EntryFailed {
			break
		}
		entries = append(entries, e)
		data = data[n:]
		off += int64(n)
	}
	return &man, entries, off, nil
}

// nextLine returns the first newline-terminated line of data (without
// the terminator) and the number of bytes it consumed including the
// terminator. An unterminated trailing fragment returns n == 0: it is
// not a whole line and must not be parsed.
func nextLine(data []byte) (line []byte, n int) {
	for i, b := range data {
		if b == '\n' {
			return data[:i], i + 1
		}
	}
	return nil, 0
}

// syncDir best-effort fsyncs a directory so a freshly renamed journal
// survives a crash of the directory metadata. Errors are ignored: not
// every platform or filesystem supports directory fsync, and the
// rename itself is already atomic.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
