package resilience

import (
	"encoding/json"
	"fmt"

	"besst/internal/besst"
	"besst/internal/dse"
)

// ReplicateResumable runs an n-trial Monte Carlo campaign over a
// compiled run under the campaign's fault envelope: checkpointed,
// resumable, panic-isolated. Quarantined trials come back as nil
// Results with their indices in the Report.
//
// Every trial — freshly run or replayed from the journal — passes
// through the same JSON round-trip, and encoding/json emits exact
// (shortest round-trippable) float64 representations, so a resumed
// campaign's results are identical to an uninterrupted run's.
func ReplicateResumable(cr *besst.CompiledRun, n int, camp Campaign, opts ...besst.Option) ([]*besst.Result, Report, error) {
	runner, err := cr.TrialRunner(n, opts...)
	if err != nil {
		return nil, Report{}, err
	}
	payloads, rep, err := camp.Run(n, func(i int) (json.RawMessage, error) {
		return runner(i).Payload()
	})
	if err != nil {
		return nil, rep, err
	}
	results, err := Decode[besst.Result](payloads)
	return results, rep, err
}

// SweepResumable evaluates a prepared DSE sweep under the campaign's
// fault envelope. Quarantined points surface in the Report and
// contribute a zero mean; Cells reports 0% overhead for any point whose
// per-EPR baseline failed rather than dividing by zero.
func SweepResumable(s *dse.PreparedSweep, camp Campaign) ([]dse.Cell, Report, error) {
	n := s.NumPoints()
	payloads, rep, err := camp.Run(n, func(i int) (json.RawMessage, error) {
		return json.Marshal(s.EvalPoint(i))
	})
	if err != nil {
		return nil, rep, err
	}
	means := make([]float64, n)
	for i, p := range payloads {
		if p == nil {
			continue
		}
		if jerr := json.Unmarshal(p, &means[i]); jerr != nil {
			return nil, rep, fmt.Errorf("resilience: decode sweep point %d (%s): %w", i, s.PointLabel(i), jerr)
		}
	}
	return s.Cells(means), rep, nil
}
