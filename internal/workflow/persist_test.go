package workflow

import (
	"bytes"
	"strings"
	"testing"

	"besst/internal/lulesh"
	"besst/internal/perfmodel"
	"besst/internal/stats"
)

func TestSaveLoadSymregRoundTrip(t *testing.T) {
	sr, _, _ := developed(t)
	var buf bytes.Buffer
	if err := sr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.ByOp) != len(sr.ByOp) {
		t.Fatalf("ops %d != %d", len(back.ByOp), len(sr.ByOp))
	}
	// Predictions must be bit-identical across the grid.
	for op, orig := range sr.ByOp {
		loaded := back.ByOp[op]
		for _, epr := range []float64{5, 15, 30} {
			for _, ranks := range []float64{8, 512, 1331} {
				p := perfmodel.Params{"epr": epr, "ranks": ranks}
				if orig.Predict(p) != loaded.Predict(p) {
					t.Fatalf("%s prediction differs after round trip at %v", op, p.Key())
				}
			}
		}
	}
	// Sampling variance survives (residual sigma restored).
	rng1, rng2 := stats.NewRNG(1), stats.NewRNG(1)
	p := perfmodel.Params{"epr": 15, "ranks": 64}
	a := sr.ByOp[lulesh.OpCkptL1].Sample(p, rng1)
	b := back.ByOp[lulesh.OpCkptL1].Sample(p, rng2)
	if a != b {
		t.Fatalf("sample streams diverge after round trip: %v vs %v", a, b)
	}
	// Reports carried over.
	if back.Report(lulesh.OpTimestep).ValidationMAPE != sr.Report(lulesh.OpTimestep).ValidationMAPE {
		t.Fatal("report lost in round trip")
	}
}

func TestSaveLoadTableRoundTrip(t *testing.T) {
	_, it, _ := developed(t)
	var buf bytes.Buffer
	if err := it.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for op, orig := range it.ByOp {
		loaded := back.ByOp[op]
		for _, epr := range []float64{5, 12.5, 25} {
			p := perfmodel.Params{"epr": epr, "ranks": 216}
			if orig.Predict(p) != loaded.Predict(p) {
				t.Fatalf("%s table prediction differs at %v", op, p.Key())
			}
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error")
	}
	if _, err := Load(strings.NewReader(`{"models":{}}`)); err == nil {
		t.Fatal("expected error for empty bundle")
	}
	if _, err := Load(strings.NewReader(`{"models":{"x":{"kind":"alien","data":{}}}}`)); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}
