package workflow

import (
	"math"
	"sync"
	"testing"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/fti"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/perfmodel"
)

var (
	once     sync.Once
	srModels *Models
	itModels *Models
	srQuartz *groundtruth.Emulator
)

func developed(t *testing.T) (*Models, *Models, *groundtruth.Emulator) {
	t.Helper()
	once.Do(func() {
		srQuartz = groundtruth.NewQuartz()
		srModels, _ = DevelopLuleshQuartz(srQuartz, 8, SymbolicRegression, 42)
		itModels, _ = DevelopLuleshQuartz(srQuartz, 8, Interpolation, 42)
	})
	return srModels, itModels, srQuartz
}

func TestDevelopProducesAllOps(t *testing.T) {
	sr, it, _ := developed(t)
	for _, models := range []*Models{sr, it} {
		for _, op := range []string{lulesh.OpTimestep, lulesh.OpCkptL1, lulesh.OpCkptL2} {
			if _, ok := models.ByOp[op]; !ok {
				t.Fatalf("missing model for %q", op)
			}
		}
		if len(models.Reports) != 3 {
			t.Fatalf("reports = %d", len(models.Reports))
		}
	}
}

func TestSymregReportsCarryDiagnostics(t *testing.T) {
	sr, _, _ := developed(t)
	for _, r := range sr.Reports {
		if math.IsNaN(r.TrainMAPE) || r.Expression == "" {
			t.Fatalf("symreg report incomplete: %+v", r)
		}
		if math.IsNaN(r.ValidationMAPE) || r.ValidationMAPE <= 0 {
			t.Fatalf("validation MAPE missing: %+v", r)
		}
	}
}

func TestInterpolationReportsNoExpression(t *testing.T) {
	_, it, _ := developed(t)
	for _, r := range it.Reports {
		if !math.IsNaN(r.TrainMAPE) || r.Expression != "" {
			t.Fatalf("interpolation report should have no GP fields: %+v", r)
		}
	}
}

func TestValidationMAPEInPaperBand(t *testing.T) {
	// The reproduction target: timestep well under checkpoint errors,
	// all in the paper's band (timestep ~6.6%, checkpoints < ~25%).
	sr, _, _ := developed(t)
	ts := sr.Report(lulesh.OpTimestep).ValidationMAPE
	l1 := sr.Report(lulesh.OpCkptL1).ValidationMAPE
	l2 := sr.Report(lulesh.OpCkptL2).ValidationMAPE
	if ts > 12 {
		t.Fatalf("timestep MAPE %v too high", ts)
	}
	if l1 > 28 || l2 > 28 {
		t.Fatalf("checkpoint MAPE too high: %v %v", l1, l2)
	}
	if ts >= l1 || ts >= l2 {
		t.Fatalf("timestep error %v should be below checkpoint errors %v %v", ts, l1, l2)
	}
}

func TestReportMissingPanics(t *testing.T) {
	sr, _, _ := developed(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	sr.Report("ghost")
}

func TestBindLulesh(t *testing.T) {
	sr, _, em := developed(t)
	arch := beo.NewArchBEO(em.M, 2)
	BindLulesh(arch, sr)
	app := lulesh.App(10, 64, 10, lulesh.ScenarioL1L2, em.Cost.Config)
	if err := arch.Validate(app); err != nil {
		t.Fatalf("bound arch should validate: %v", err)
	}
}

func TestValidateSystemProducesGrid(t *testing.T) {
	sr, _, em := developed(t)
	pts := ValidateSystem(em, sr, []int{10, 15}, []int{8, 64}, 40, lulesh.ScenarioL1, 3, 5)
	if len(pts) != 4 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.MeasuredSec <= 0 || p.PredictedSec <= 0 {
			t.Fatalf("bad point %+v", p)
		}
		if math.IsNaN(p.PercentError) {
			t.Fatalf("NaN error %+v", p)
		}
	}
}

func TestSystemMAPEInBand(t *testing.T) {
	// Full-system simulation error should stay comparable to instance
	// error — the paper's insight 1 (Table IV vs Table III).
	sr, _, em := developed(t)
	for _, sc := range []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1} {
		pts := ValidateSystem(em, sr, []int{10, 20}, []int{64, 512}, 120, sc, 4, 9)
		mape := SystemMAPE(pts)
		if mape > 30 {
			t.Fatalf("%s system MAPE %v out of band", sc.Name, mape)
		}
	}
}

func TestValidateSystemDeterministic(t *testing.T) {
	sr, _, em := developed(t)
	a := ValidateSystem(em, sr, []int{10}, []int{64}, 40, lulesh.ScenarioL1, 2, 77)
	b := ValidateSystem(em, sr, []int{10}, []int{64}, 40, lulesh.ScenarioL1, 2, 77)
	if a[0].PredictedSec != b[0].PredictedSec || a[0].MeasuredSec != b[0].MeasuredSec {
		t.Fatal("validation not reproducible")
	}
}

func TestDevelopOnVulcanCampaign(t *testing.T) {
	// The workflow generalizes beyond the Quartz case study.
	em := groundtruth.NewVulcan()
	_ = em
	if machine.Vulcan().Name != "Vulcan" {
		t.Fatal("vulcan machine unavailable")
	}
}

func TestMethodString(t *testing.T) {
	if Interpolation.String() != "interpolation" || SymbolicRegression.String() != "symbolic regression" {
		t.Fatal("method strings wrong")
	}
}

func TestDistributionCheckMonteCarloClaim(t *testing.T) {
	// The Fig 1 claim: Monte Carlo draws from the developed models
	// reproduce the calibration-sample distributions. With only 8
	// measured samples per combination the KS statistic is naturally
	// coarse; require it to beat the trivially-failing regime (a
	// degenerate point distribution against spread samples gives
	// KS ~ 1).
	em := groundtruth.NewQuartz()
	campaign := benchdataCollect(em)
	sr := Develop(campaign, SymbolicRegression, []string{"epr", "ranks"}, 11)
	it := Develop(campaign, Interpolation, []string{"epr", "ranks"}, 11)
	for _, op := range []string{lulesh.OpTimestep, lulesh.OpCkptL1} {
		d := DistributionCheck(sr.ByOp[op], campaign, op, 400, 3)
		if d >= 0.9 {
			t.Fatalf("symreg %s: KS %v — model variance collapsed", op, d)
		}
		// Interpolation tables resample the stored measurements, so
		// their distribution match is near-exact at benchmarked points.
		dIt := DistributionCheck(it.ByOp[op], campaign, op, 400, 3)
		if dIt > 0.25 {
			t.Fatalf("table %s: KS %v too large", op, dIt)
		}
	}
}

func TestDistributionCheckDetectsCollapsedVariance(t *testing.T) {
	// A deterministic model (no Sample spread) must score far worse
	// than the fitted models against noisy measurements.
	_, _, em := developed(t)
	campaign := benchdataCollect(em)
	flat := perfmodel.Func{Label: "flat", F: func(p perfmodel.Params) float64 {
		return em.LuleshTimestepMean(int(p.Get("epr")), int(p.Get("ranks")))
	}}
	d := DistributionCheck(flat, campaign, lulesh.OpTimestep, 400, 3)
	if d < 0.3 {
		t.Fatalf("deterministic model should mismatch the sample spread: KS %v", d)
	}
}

func TestDistributionCheckPanics(t *testing.T) {
	sr, _, em := developed(t)
	campaign := benchdataCollect(em)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DistributionCheck(sr.ByOp[lulesh.OpTimestep], campaign, lulesh.OpTimestep, 0, 1)
}

// benchdataCollect builds a small shared campaign for distribution tests.
func benchdataCollect(em *groundtruth.Emulator) *benchdata.Campaign {
	return benchdata.CollectLulesh(em, benchdata.LuleshPlan{
		EPRs:       []int{10, 20},
		Ranks:      []int{64, 512},
		Levels:     []fti.Level{fti.L1},
		SamplesPer: 8,
		Seed:       42,
	})
}
