// Package workflow wires the BE-SST phases together end to end: run a
// benchmarking campaign on the (emulated) machine, develop performance
// models from it with either modeling method (interpolation tables or
// symbolic regression), validate them against the measurements, bind
// them into an ArchBEO, and validate full-system simulations — the
// complete loop of Fig 2, including the FT-aware extensions.
package workflow

import (
	"fmt"
	"math"
	"sort"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/perfmodel"
	"besst/internal/stats"
	"besst/internal/symreg"
)

// Method selects the Model Development modeling method.
type Method int

// The two implemented methods from the paper.
const (
	// Interpolation organizes samples into lookup tables and
	// interpolates between benchmarked combinations.
	Interpolation Method = iota
	// SymbolicRegression fits closed-form expressions with genetic
	// programming (the method used in the paper's case study).
	SymbolicRegression
)

func (m Method) String() string {
	if m == Interpolation {
		return "interpolation"
	}
	return "symbolic regression"
}

// ModelReport records the development outcome of one op's model.
type ModelReport struct {
	Op             string
	Method         Method
	TrainMAPE      float64 // percent; NaN for interpolation
	TestMAPE       float64 // percent; NaN when no held-out set
	ValidationMAPE float64 // percent, vs every campaign sample
	Expression     string  // symbolic form, "" for tables
}

// Models is the output of the Model Development phase.
type Models struct {
	ByOp    map[string]perfmodel.Model
	Reports []ModelReport
}

// Warm polls every model once at the given parameters, forcing lazy
// internal state (interpolation-table rebuilds) to materialize. Callers
// that share one Models value across goroutines — the parallel DSE
// sweep, pooled Monte Carlo replications — must Warm it first so all
// subsequent Predict/Sample calls are pure reads.
func (ms *Models) Warm(p perfmodel.Params) {
	for _, m := range ms.ByOp {
		m.Predict(p)
	}
}

// Develop fits one model per op present in the campaign, using the
// given parameter names as model inputs. For symbolic regression the
// campaign is split 80/20 train/test per the paper's protocol.
func Develop(c *benchdata.Campaign, method Method, paramNames []string, seed uint64) *Models {
	out := &Models{ByOp: map[string]perfmodel.Model{}}
	ops := c.Ops()
	sort.Strings(ops)
	rng := stats.NewRNG(seed)
	for _, op := range ops {
		rep := ModelReport{Op: op, Method: method, TrainMAPE: math.NaN(), TestMAPE: math.NaN()}
		var m perfmodel.Model
		switch method {
		case Interpolation:
			m = c.Table(op, paramNames...)
		case SymbolicRegression:
			ds := c.Dataset(op, paramNames...)
			train, test := ds.Split(0.2, rng.Uint64())
			f := symreg.Fit(op, train, test, symreg.Options{Seed: rng.Uint64()})
			rep.TrainMAPE = f.TrainMAPE
			rep.TestMAPE = f.TestMAPE
			rep.Expression = f.String()
			m = f
		default:
			panic(fmt.Sprintf("workflow: unknown method %d", method))
		}
		rep.ValidationMAPE = ValidateModel(m, c, op)
		out.ByOp[op] = m
		out.Reports = append(out.Reports, rep)
	}
	return out
}

// ValidateModel computes the MAPE of a model against every sample of
// one op in the campaign — the Table III validation metric (predicted
// vs measured runtime over the design-space grid).
func ValidateModel(m perfmodel.Model, c *benchdata.Campaign, op string) float64 {
	var measured, predicted []float64
	for _, s := range c.ForOp(op) {
		measured = append(measured, s.Seconds)
		predicted = append(predicted, m.Predict(s.Params))
	}
	return stats.MAPE(measured, predicted)
}

// Report returns the report for one op, panicking if absent.
func (m *Models) Report(op string) ModelReport {
	for _, r := range m.Reports {
		if r.Op == op {
			return r
		}
	}
	panic(fmt.Sprintf("workflow: no report for op %q", op))
}

// BindLulesh attaches the developed LULESH models to an ArchBEO.
func BindLulesh(arch *beo.ArchBEO, models *Models) {
	for op, m := range models.ByOp {
		arch.Bind(op, m)
	}
}

// DevelopLuleshQuartz runs the full case-study Model Development phase:
// collect the Table II campaign from the Quartz ground truth and fit
// models with the given method. It returns the campaign too, for
// validation and plotting.
func DevelopLuleshQuartz(em *groundtruth.Emulator, samplesPer int, method Method, seed uint64) (*Models, *benchdata.Campaign) {
	campaign := benchdata.CollectLulesh(em, benchdata.CaseStudyPlan(samplesPer, seed))
	models := Develop(campaign, method, []string{"epr", "ranks"}, seed+1)
	return models, campaign
}

// SystemValidation is one full-system validation point: a simulated
// run compared against a measured run (Figs 7-8, Table IV).
type SystemValidation struct {
	EPR, Ranks   int
	Scenario     string
	MeasuredSec  float64 // ground-truth total runtime
	PredictedSec float64 // Monte Carlo mean of simulated makespans
	PercentError float64 // signed
}

// ValidateSystem simulates app-level runs for every (epr, ranks) in the
// grid under one scenario and compares them to ground-truth full runs.
// mcRuns Monte Carlo replications are averaged per point. Simulation
// uses Direct mode for speed; DES mode is exercised in Figs 7-8 runs.
func ValidateSystem(em *groundtruth.Emulator, models *Models, eprs, ranks []int,
	timesteps int, sc lulesh.Scenario, mcRuns int, seed uint64) []SystemValidation {

	cfg := em.Cost.Config
	rng := stats.NewRNG(seed)
	var out []SystemValidation
	var cum []float64 // ground-truth buffer, reused across grid points
	for _, epr := range eprs {
		for _, r := range ranks {
			app := lulesh.App(epr, r, timesteps, sc, cfg)
			arch := beo.NewArchBEO(em.M, cfg.NodeSize)
			BindLulesh(arch, models)
			runs := besst.Replicate(app, arch, mcRuns,
				besst.WithMode(besst.Direct),
				besst.WithPerRankNoise(true),
				besst.WithSeed(rng.Uint64()))
			pred := stats.Mean(besst.Makespans(runs))

			cum = em.FullRunInto(cum, epr, r, timesteps, sc, rng.Split())
			meas := cum[len(cum)-1]
			out = append(out, SystemValidation{
				EPR: epr, Ranks: r, Scenario: sc.Name,
				MeasuredSec:  meas,
				PredictedSec: pred,
				PercentError: stats.PercentError(meas, pred),
			})
		}
	}
	return out
}

// SystemMAPE aggregates validation points into the Table IV metric.
func SystemMAPE(points []SystemValidation) float64 {
	var m, p []float64
	for _, pt := range points {
		m = append(m, pt.MeasuredSec)
		p = append(p, pt.PredictedSec)
	}
	return stats.MAPE(m, p)
}

// DistributionCheck validates the Monte Carlo claim of Fig 1: that
// sampling from a developed model reproduces not just the mean but the
// *distribution* of the calibration samples at each benchmarked
// parameter combination. For every combination of the given op it draws
// `draws` model samples and returns the worst (largest) two-sample
// Kolmogorov-Smirnov distance against the stored measurements.
func DistributionCheck(m perfmodel.Model, c *benchdata.Campaign, op string, draws int, seed uint64) float64 {
	if draws <= 0 {
		panic("workflow: non-positive draw count")
	}
	byCombo := map[string][]float64{}
	params := map[string]perfmodel.Params{}
	for _, s := range c.ForOp(op) {
		key := s.Params.Key()
		byCombo[key] = append(byCombo[key], s.Seconds)
		params[key] = s.Params
	}
	if len(byCombo) == 0 {
		panic(fmt.Sprintf("workflow: no samples for op %q", op))
	}
	keys := make([]string, 0, len(byCombo))
	for k := range byCombo {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rng := stats.NewRNG(seed)
	worst := 0.0
	for _, k := range keys {
		sim := make([]float64, draws)
		for i := range sim {
			sim[i] = m.Sample(params[k], rng)
		}
		if d := stats.KSDistance(byCombo[k], sim); d > worst {
			worst = d
		}
	}
	return worst
}
