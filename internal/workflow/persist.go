package workflow

import (
	"encoding/json"
	"fmt"
	"io"

	"besst/internal/perfmodel"
	"besst/internal/symreg"
)

// persisted is the on-disk bundle format for developed models: one
// entry per op, tagged with the model kind so either method round-trips.
type persisted struct {
	Method string                     `json:"method"`
	Models map[string]persistedModel  `json:"models"`
	Report map[string]persistedReport `json:"reports"`
}

type persistedModel struct {
	Kind string          `json:"kind"` // "symreg" | "table"
	Data json.RawMessage `json:"data"`
}

type persistedReport struct {
	ValidationMAPE float64 `json:"validationMAPE"`
	Expression     string  `json:"expression,omitempty"`
}

// Save serializes the developed models as JSON.
func (m *Models) Save(w io.Writer) error {
	out := persisted{
		Models: map[string]persistedModel{},
		Report: map[string]persistedReport{},
	}
	for op, model := range m.ByOp {
		var pm persistedModel
		switch v := model.(type) {
		case *symreg.Fitted:
			data, err := json.Marshal(v)
			if err != nil {
				return err
			}
			pm = persistedModel{Kind: "symreg", Data: data}
		case *perfmodel.Table:
			data, err := json.Marshal(v)
			if err != nil {
				return err
			}
			pm = persistedModel{Kind: "table", Data: data}
		default:
			return fmt.Errorf("workflow: cannot persist model type %T for op %q", model, op)
		}
		out.Models[op] = pm
	}
	for _, r := range m.Reports {
		out.Report[r.Op] = persistedReport{
			ValidationMAPE: r.ValidationMAPE,
			Expression:     r.Expression,
		}
		out.Method = r.Method.String()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// Load reads a model bundle saved with Save.
func Load(r io.Reader) (*Models, error) {
	var in persisted
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, err
	}
	if len(in.Models) == 0 {
		return nil, fmt.Errorf("workflow: bundle contains no models")
	}
	out := &Models{ByOp: map[string]perfmodel.Model{}}
	method := Interpolation
	if in.Method == SymbolicRegression.String() {
		method = SymbolicRegression
	}
	ops := make([]string, 0, len(in.Models))
	for op := range in.Models {
		ops = append(ops, op)
	}
	sortStrings(ops)
	for _, op := range ops {
		pm := in.Models[op]
		var model perfmodel.Model
		switch pm.Kind {
		case "symreg":
			f := &symreg.Fitted{}
			if err := json.Unmarshal(pm.Data, f); err != nil {
				return nil, fmt.Errorf("workflow: op %q: %w", op, err)
			}
			model = f
		case "table":
			t := &perfmodel.Table{}
			if err := json.Unmarshal(pm.Data, t); err != nil {
				return nil, fmt.Errorf("workflow: op %q: %w", op, err)
			}
			model = t
		default:
			return nil, fmt.Errorf("workflow: op %q has unknown model kind %q", op, pm.Kind)
		}
		out.ByOp[op] = model
		rep := ModelReport{Op: op, Method: method}
		if pr, ok := in.Report[op]; ok {
			rep.ValidationMAPE = pr.ValidationMAPE
			rep.Expression = pr.Expression
		}
		out.Reports = append(out.Reports, rep)
	}
	return out, nil
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
