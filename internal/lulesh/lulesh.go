// Package lulesh generates the AppBEO for the Livermore Unstructured
// Lagrangian Explicit Shock Hydrodynamics proxy application used in the
// paper's case study. It encodes LULESH's parameter rules (one cubic
// subdomain per rank, so the rank count must be a perfect cube; the
// problem size is elements per rank, epr, the edge length of each
// rank's cubic subdomain) and its control flow: a timestep loop of
// compute-dominant work with a small halo exchange and the global
// time-constraint allreduce, plus optional FTI checkpoint blocks — the
// Fig 3 "fault-tolerance aware iterative solver" structure.
package lulesh

import (
	"fmt"
	"math"

	"besst/internal/beo"
	"besst/internal/fti"
	"besst/internal/perfmodel"
)

// Op names bound in the ArchBEO.
const (
	OpTimestep = "lulesh_timestep"
	// OpTimestepABFT is the algorithm-based fault-tolerant timestep
	// variant: checksummed element kernels that detect/correct silent
	// data corruption at extra compute cost, the alternate-algorithm
	// DSE axis of the paper's Co-Design discussion.
	OpTimestepABFT = "lulesh_timestep_abft"
	OpCkptL1       = "fti_ckpt_l1"
	OpCkptL2       = "fti_ckpt_l2"
	OpCkptL3       = "fti_ckpt_l3"
	OpCkptL4       = "fti_ckpt_l4"
)

// CkptOp returns the op name for an FTI level.
func CkptOp(l fti.Level) string {
	switch l {
	case fti.L1:
		return OpCkptL1
	case fti.L2:
		return OpCkptL2
	case fti.L3:
		return OpCkptL3
	case fti.L4:
		return OpCkptL4
	default:
		panic(fmt.Sprintf("lulesh: %v", l))
	}
}

// IsPerfectCube reports whether n is a positive perfect cube — LULESH's
// rank-count requirement ("8, 27, 64, ...").
func IsPerfectCube(n int) bool {
	if n <= 0 {
		return false
	}
	r := int(math.Round(math.Cbrt(float64(n))))
	for _, c := range []int{r - 1, r, r + 1} {
		if c > 0 && c*c*c == n {
			return true
		}
	}
	return false
}

// ValidRanks returns the rank counts up to max that satisfy both
// LULESH's perfect-cube rule and FTI's divisibility rule (a multiple of
// group_size*node_size) — the paper's "every perfect cube number of
// ranks that is evenly divisible by 8".
func ValidRanks(max int, cfg fti.Config) []int {
	var out []int
	for c := 1; c*c*c <= max; c++ {
		r := c * c * c
		if cfg.CheckRanks(r) == nil {
			out = append(out, r)
		}
	}
	return out
}

// Elements returns the element count per rank for a problem size:
// epr^3 elements in each rank's cubic subdomain.
func Elements(epr int) int64 {
	if epr <= 0 {
		panic("lulesh: non-positive problem size")
	}
	e := int64(epr)
	return e * e * e
}

// CheckpointBytes returns the protected state per rank FTI must persist
// for a problem size: element-centered fields (~13 doubles per element)
// plus node-centered fields (~7 three-vectors of doubles on the
// (epr+1)^3 nodal grid), matching the LULESH_FTI protect list.
func CheckpointBytes(epr int) int64 {
	elems := Elements(epr)
	n := int64(epr + 1)
	nodes := n * n * n
	return elems*13*8 + nodes*7*3*8
}

// HaloBytes returns the per-neighbor halo-exchange payload of one
// timestep: three nodal fields on one face of the subdomain.
func HaloBytes(epr int) int64 {
	n := int64(epr + 1)
	return n * n * 3 * 8
}

// CkptSchedule configures one checkpoint level within a scenario.
type CkptSchedule struct {
	Level  fti.Level
	Period int // timesteps between checkpoints
}

// Scenario is one fault-tolerance configuration of the case study:
// which levels checkpoint, and how often.
type Scenario struct {
	Name      string
	Schedules []CkptSchedule
}

// The paper's three full-system scenarios (Figs 7-8): no fault
// tolerance, Level 1 checkpointing, and Levels 1 & 2 — all with a
// checkpoint period of 40 timesteps.
var (
	ScenarioNoFT = Scenario{Name: "No FT"}
	ScenarioL1   = Scenario{Name: "L1", Schedules: []CkptSchedule{{Level: fti.L1, Period: 40}}}
	ScenarioL1L2 = Scenario{Name: "L1 & L2", Schedules: []CkptSchedule{
		{Level: fti.L1, Period: 40}, {Level: fti.L2, Period: 40},
	}}
)

// ParseScenario resolves a scenario flag value ("noft", "l1", "l1l2")
// to a deep copy of the corresponding case-study scenario, so callers
// may adjust checkpoint periods without mutating the shared variables.
// It is the one scenario-name path shared by the CLI flags and the
// besst-serve request schema.
func ParseScenario(name string) (Scenario, error) {
	var sc Scenario
	switch name {
	case "noft":
		sc = ScenarioNoFT
	case "l1":
		sc = ScenarioL1
	case "l1l2":
		sc = ScenarioL1L2
	default:
		return Scenario{}, fmt.Errorf("lulesh: unknown scenario %q (want noft, l1, or l1l2)", name)
	}
	sc.Schedules = append([]CkptSchedule(nil), sc.Schedules...)
	return sc, nil
}

// App builds the LULESH AppBEO for the given problem size, rank count,
// timestep count, and fault-tolerance scenario. It panics on parameter
// combinations LULESH or FTI reject, mirroring the real launchers.
func App(epr, ranks, timesteps int, sc Scenario, cfg fti.Config) *beo.AppBEO {
	if !IsPerfectCube(ranks) {
		panic(fmt.Sprintf("lulesh: ranks %d is not a perfect cube", ranks))
	}
	if len(sc.Schedules) > 0 {
		if err := cfg.CheckRanks(ranks); err != nil {
			panic(err)
		}
	}
	if timesteps <= 0 {
		panic("lulesh: non-positive timestep count")
	}
	params := perfmodel.Params{"epr": float64(epr), "ranks": float64(ranks)}

	body := []beo.Instr{
		beo.Comp{Op: OpTimestep, Params: params},
		// Face-neighbor halo exchange (up to 6 neighbors) and the
		// global dt allreduce every timestep.
		beo.Comm{Pattern: beo.Halo, Bytes: HaloBytes(epr), Neighbors: 6},
		beo.Comm{Pattern: beo.Allreduce, Bytes: 8},
	}
	for _, s := range sc.Schedules {
		if s.Period <= 0 {
			panic("lulesh: non-positive checkpoint period")
		}
		body = append(body, beo.Periodic{
			Period: s.Period,
			// Checkpoint at the END of each period (iterations
			// period-1, 2*period-1, ...), not at timestep 0.
			Offset: s.Period - 1,
			Body: []beo.Instr{
				beo.Ckpt{Op: CkptOp(s.Level), Level: s.Level, Params: params},
			},
		})
	}

	return &beo.AppBEO{
		Name:    fmt.Sprintf("LULESH_FTI(epr=%d, ranks=%d, %s)", epr, ranks, sc.Name),
		Ranks:   ranks,
		Program: []beo.Instr{beo.Loop{Count: timesteps, Body: body}},
	}
}
