package lulesh

import (
	"testing"
	"testing/quick"

	"besst/internal/beo"
	"besst/internal/fti"
)

var cfg = fti.Config{GroupSize: 4, NodeSize: 2}

func TestIsPerfectCube(t *testing.T) {
	for _, n := range []int{1, 8, 27, 64, 216, 512, 1000, 1331} {
		if !IsPerfectCube(n) {
			t.Fatalf("%d should be a cube", n)
		}
	}
	for _, n := range []int{0, -8, 2, 9, 100, 999} {
		if IsPerfectCube(n) {
			t.Fatalf("%d should not be a cube", n)
		}
	}
}

func TestIsPerfectCubeProperty(t *testing.T) {
	f := func(c uint8) bool {
		n := int(c%100) + 1
		return IsPerfectCube(n * n * n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValidRanksMatchesPaper(t *testing.T) {
	// Paper Table II: every perfect cube divisible by 8, up to 1000.
	got := ValidRanks(1000, cfg)
	want := []int{8, 64, 216, 512, 1000}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestElementsAndBytes(t *testing.T) {
	if Elements(5) != 125 {
		t.Fatalf("elements = %d", Elements(5))
	}
	// Checkpoint bytes grow strictly with epr and are cubic-ish.
	prev := int64(0)
	for epr := 5; epr <= 30; epr += 5 {
		b := CheckpointBytes(epr)
		if b <= prev {
			t.Fatalf("checkpoint bytes not increasing at epr %d", epr)
		}
		prev = b
	}
	r := float64(CheckpointBytes(20)) / float64(CheckpointBytes(10))
	if r < 6 || r > 10 { // ~2^3 with nodal correction
		t.Fatalf("checkpoint scaling ratio %v not cubic-like", r)
	}
}

func TestHaloBytesQuadratic(t *testing.T) {
	r := float64(HaloBytes(20)) / float64(HaloBytes(10))
	if r < 3 || r > 5 {
		t.Fatalf("halo scaling %v not quadratic-like", r)
	}
}

func TestCkptOpNames(t *testing.T) {
	if CkptOp(fti.L1) != OpCkptL1 || CkptOp(fti.L4) != OpCkptL4 {
		t.Fatal("op name mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CkptOp(fti.Level(9))
}

func TestAppNoFT(t *testing.T) {
	app := App(15, 64, 200, ScenarioNoFT, cfg)
	if app.Ranks != 64 {
		t.Fatal("ranks wrong")
	}
	ops := app.Ops()
	if !ops[OpTimestep] {
		t.Fatal("timestep op missing")
	}
	if ops[OpCkptL1] || ops[OpCkptL2] {
		t.Fatal("no-FT scenario should have no checkpoint ops")
	}
	// 200 * (timestep + halo + allreduce).
	if got := app.CountInstr(); got != 600 {
		t.Fatalf("instr count = %d, want 600", got)
	}
}

func TestAppL1CheckpointCadence(t *testing.T) {
	app := App(10, 64, 200, ScenarioL1, cfg)
	// 200 timesteps, period 40, offset 39 -> checkpoints at 39, 79,
	// 119, 159, 199: 5 instances.
	want := 600 + 5
	if got := app.CountInstr(); got != want {
		t.Fatalf("instr count = %d, want %d", got, want)
	}
}

func TestAppL1L2BothLevels(t *testing.T) {
	app := App(10, 64, 200, ScenarioL1L2, cfg)
	ops := app.Ops()
	if !ops[OpCkptL1] || !ops[OpCkptL2] {
		t.Fatal("both checkpoint levels should appear")
	}
	want := 600 + 10 // 5 instances each of L1 and L2
	if got := app.CountInstr(); got != want {
		t.Fatalf("instr count = %d, want %d", got, want)
	}
}

func TestAppRejectsNonCubeRanks(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	App(10, 100, 10, ScenarioNoFT, cfg)
}

func TestAppRejectsFTIIncompatibleRanks(t *testing.T) {
	// 27 is a cube but not a multiple of 8: fine without FT,
	// rejected with checkpointing.
	App(10, 27, 10, ScenarioNoFT, cfg) // should not panic
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	App(10, 27, 10, ScenarioL1, cfg)
}

func TestAppParamsPropagate(t *testing.T) {
	app := App(20, 512, 10, ScenarioL1, cfg)
	var comp beo.Comp
	loop := app.Program[0].(beo.Loop)
	comp = loop.Body[0].(beo.Comp)
	if comp.Params.Get("epr") != 20 || comp.Params.Get("ranks") != 512 {
		t.Fatalf("params = %v", comp.Params)
	}
}
