package topo

import "fmt"

// Torus is an N-dimensional torus with dimension-ordered routing, the
// stand-in for Vulcan's BlueGene/Q 5-D torus in the Fig 1 reproduction.
//
// Node coordinates are mixed-radix over dims; each node has 2*len(dims)
// directed outgoing links (one per direction per dimension):
//
//	link(n, d, dir) = n*2*D + 2*d + dir   (dir 0 = +, 1 = -)
type Torus struct {
	dims []int
	n    int
}

// NewTorus builds a torus with the given per-dimension sizes. Every
// dimension must be at least 1; a 1-wide dimension simply contributes no
// movement.
func NewTorus(dims ...int) *Torus {
	if len(dims) == 0 {
		panic("topo: torus needs at least one dimension")
	}
	n := 1
	for _, d := range dims {
		if d <= 0 {
			panic("topo: non-positive torus dimension")
		}
		n *= d
	}
	cp := make([]int, len(dims))
	copy(cp, dims)
	return &Torus{dims: cp, n: n}
}

// Nodes implements Topology.
func (t *Torus) Nodes() int { return t.n }

// Dims returns a copy of the per-dimension sizes.
func (t *Torus) Dims() []int {
	cp := make([]int, len(t.dims))
	copy(cp, t.dims)
	return cp
}

// NumLinks implements Topology.
func (t *Torus) NumLinks() int { return t.n * 2 * len(t.dims) }

// Coords converts a node index to torus coordinates.
func (t *Torus) Coords(n int) []int {
	checkNode(t, n)
	c := make([]int, len(t.dims))
	for d := range t.dims {
		c[d] = n % t.dims[d]
		n /= t.dims[d]
	}
	return c
}

// Index converts coordinates back to a node index.
func (t *Torus) Index(coords []int) int {
	if len(coords) != len(t.dims) {
		panic("topo: coordinate dimensionality mismatch")
	}
	idx := 0
	mul := 1
	for d := range t.dims {
		c := coords[d]
		if c < 0 || c >= t.dims[d] {
			panic(fmt.Sprintf("topo: coordinate %d out of range in dim %d", c, d))
		}
		idx += c * mul
		mul *= t.dims[d]
	}
	return idx
}

// wrapDelta returns the signed shortest step count from a to b in a ring
// of the given size, preferring the positive direction on ties.
func wrapDelta(a, b, size int) int {
	fwd := (b - a + size) % size
	bwd := fwd - size // negative
	if fwd <= -bwd {
		return fwd
	}
	return bwd
}

// Hops implements Topology.
func (t *Torus) Hops(a, b int) int {
	ca, cb := t.Coords(a), t.Coords(b)
	h := 0
	for d := range t.dims {
		delta := wrapDelta(ca[d], cb[d], t.dims[d])
		if delta < 0 {
			delta = -delta
		}
		h += delta
	}
	return h
}

func (t *Torus) linkOf(node, dim, dir int) LinkID {
	return LinkID(node*2*len(t.dims) + 2*dim + dir)
}

// neighbor returns the node one step from n along dim in direction dir
// (0 = +, 1 = -), with wraparound.
func (t *Torus) neighbor(n, dim, dir int) int {
	c := t.Coords(n)
	if dir == 0 {
		c[dim] = (c[dim] + 1) % t.dims[dim]
	} else {
		c[dim] = (c[dim] - 1 + t.dims[dim]) % t.dims[dim]
	}
	return t.Index(c)
}

// Route implements Topology using dimension-ordered (e-cube) routing:
// the message fully resolves dimension 0, then dimension 1, and so on,
// taking the shorter wrap direction in each dimension.
func (t *Torus) Route(a, b int) []LinkID {
	checkNode(t, a)
	checkNode(t, b)
	if a == b {
		return nil
	}
	route := make([]LinkID, 0, t.Hops(a, b))
	cur := a
	ca, cb := t.Coords(a), t.Coords(b)
	for d := range t.dims {
		delta := wrapDelta(ca[d], cb[d], t.dims[d])
		dir := 0
		steps := delta
		if delta < 0 {
			dir = 1
			steps = -delta
		}
		for s := 0; s < steps; s++ {
			route = append(route, t.linkOf(cur, d, dir))
			cur = t.neighbor(cur, d, dir)
		}
	}
	return route
}

// Name implements Topology.
func (t *Torus) Name() string {
	return fmt.Sprintf("torus%v(%d nodes)", t.dims, t.n)
}
