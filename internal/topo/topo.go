// Package topo provides the interconnect topologies used by FT-BESST's
// network cost model: the two-stage bidirectional fat tree of LLNL's
// Quartz (Omni-Path) and an N-dimensional torus standing in for LLNL's
// Vulcan (BlueGene/Q, 5-D torus).
//
// A topology maps node pairs to routes — ordered lists of directed link
// IDs — so the network model can charge per-hop latency and account for
// link-level contention when several flows share a link.
package topo

import "fmt"

// LinkID identifies one directed link in a topology. IDs are dense in
// [0, NumLinks()).
type LinkID int

// Topology describes a machine interconnect at link granularity.
type Topology interface {
	// Nodes returns the number of endpoints (compute nodes).
	Nodes() int
	// NumLinks returns the number of directed links.
	NumLinks() int
	// Hops returns the number of links a message from a to b
	// traverses. Hops(a, a) is 0.
	Hops(a, b int) int
	// Route returns the ordered directed links a message from a to b
	// traverses under the topology's deterministic routing. The
	// returned slice must not be modified. Route(a, a) is empty.
	Route(a, b int) []LinkID
	// Name returns a short human-readable description.
	Name() string
}

func checkNode(t Topology, n int) {
	if n < 0 || n >= t.Nodes() {
		panic(fmt.Sprintf("topo: node %d out of range [0,%d)", n, t.Nodes()))
	}
}

// MaxHops returns the network diameter in hops, by exhaustive search for
// small topologies and sampling otherwise. It is used by machine
// summaries and tests.
func MaxHops(t Topology) int {
	n := t.Nodes()
	max := 0
	if n <= 256 {
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if h := t.Hops(a, b); h > max {
					max = h
				}
			}
		}
		return max
	}
	// Deterministic stride sampling for big machines.
	stride := n/256 + 1
	for a := 0; a < n; a += stride {
		for b := 0; b < n; b += stride {
			if h := t.Hops(a, b); h > max {
				max = h
			}
		}
	}
	return max
}
