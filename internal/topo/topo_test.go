package topo

import (
	"testing"
	"testing/quick"
)

func TestFatTreeShape(t *testing.T) {
	ft := NewFatTree(4, 3, 2)
	if ft.Nodes() != 12 {
		t.Fatalf("nodes = %d, want 12", ft.Nodes())
	}
	if ft.EdgeSwitches() != 3 || ft.SpineSwitches() != 2 {
		t.Fatal("switch counts wrong")
	}
	// 2 per node + 2 per edge-spine pair.
	if ft.NumLinks() != 2*12+2*3*2 {
		t.Fatalf("links = %d", ft.NumLinks())
	}
}

func TestFatTreeHops(t *testing.T) {
	ft := NewFatTree(4, 3, 2)
	if ft.Hops(0, 0) != 0 {
		t.Fatal("self hops should be 0")
	}
	if ft.Hops(0, 3) != 2 { // same edge switch
		t.Fatalf("same-edge hops = %d, want 2", ft.Hops(0, 3))
	}
	if ft.Hops(0, 4) != 4 { // different edge switch
		t.Fatalf("cross-edge hops = %d, want 4", ft.Hops(0, 4))
	}
}

func TestFatTreeRouteLengthMatchesHops(t *testing.T) {
	ft := NewFatTree(4, 3, 2)
	for a := 0; a < ft.Nodes(); a++ {
		for b := 0; b < ft.Nodes(); b++ {
			if got := len(ft.Route(a, b)); got != ft.Hops(a, b) {
				t.Fatalf("route(%d,%d) length %d != hops %d", a, b, got, ft.Hops(a, b))
			}
		}
	}
}

func TestFatTreeRouteLinksInRange(t *testing.T) {
	ft := NewFatTree(8, 6, 3)
	n := ft.NumLinks()
	for a := 0; a < ft.Nodes(); a += 5 {
		for b := 0; b < ft.Nodes(); b += 3 {
			for _, l := range ft.Route(a, b) {
				if int(l) < 0 || int(l) >= n {
					t.Fatalf("link %d out of range [0,%d)", l, n)
				}
			}
		}
	}
}

func TestFatTreeRouteSymmetricHops(t *testing.T) {
	ft := NewFatTree(8, 6, 3)
	for a := 0; a < ft.Nodes(); a++ {
		for b := 0; b < ft.Nodes(); b++ {
			if ft.Hops(a, b) != ft.Hops(b, a) {
				t.Fatalf("hop asymmetry %d %d", a, b)
			}
		}
	}
}

func TestFatTreeSpineSpreading(t *testing.T) {
	// Destinations on different edge switches should not all use the
	// same spine: D-mod-S routing spreads them.
	ft := NewFatTree(1, 4, 2)
	spines := map[LinkID]bool{}
	for b := 1; b < 4; b++ {
		r := ft.Route(0, b)
		spines[r[1]] = true // edge->spine link
	}
	if len(spines) < 2 {
		t.Fatalf("all routes used one spine uplink: %v", spines)
	}
}

func TestFatTreeBadNodePanics(t *testing.T) {
	ft := NewFatTree(2, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ft.Hops(0, 99)
}

func TestTorusCoordsRoundTrip(t *testing.T) {
	tor := NewTorus(3, 4, 5)
	for n := 0; n < tor.Nodes(); n++ {
		if got := tor.Index(tor.Coords(n)); got != n {
			t.Fatalf("round trip %d -> %d", n, got)
		}
	}
}

func TestTorusHopsKnown(t *testing.T) {
	tor := NewTorus(4, 4)
	// (0,0) to (2,2): 2+2 = 4 hops.
	if got := tor.Hops(0, tor.Index([]int{2, 2})); got != 4 {
		t.Fatalf("hops = %d, want 4", got)
	}
	// Wraparound: (0,0) to (3,0) is 1 hop backwards.
	if got := tor.Hops(0, tor.Index([]int{3, 0})); got != 1 {
		t.Fatalf("wrap hops = %d, want 1", got)
	}
}

func TestTorusRouteLengthMatchesHops(t *testing.T) {
	tor := NewTorus(3, 3, 2)
	for a := 0; a < tor.Nodes(); a++ {
		for b := 0; b < tor.Nodes(); b++ {
			if got := len(tor.Route(a, b)); got != tor.Hops(a, b) {
				t.Fatalf("route(%d,%d) len %d != hops %d", a, b, got, tor.Hops(a, b))
			}
		}
	}
}

func TestTorusRouteEndsAtDestination(t *testing.T) {
	// Walk the route link by link and confirm we land on b. Links are
	// node*2D + 2d + dir, so we can decode each step.
	tor := NewTorus(3, 4)
	d := len(tor.Dims())
	for a := 0; a < tor.Nodes(); a++ {
		for b := 0; b < tor.Nodes(); b++ {
			cur := a
			for _, l := range tor.Route(a, b) {
				node := int(l) / (2 * d)
				rem := int(l) % (2 * d)
				dim, dir := rem/2, rem%2
				if node != cur {
					t.Fatalf("route link from wrong node: %d != %d", node, cur)
				}
				cur = tor.neighbor(cur, dim, dir)
			}
			if cur != b {
				t.Fatalf("route(%d,%d) ends at %d", a, b, cur)
			}
		}
	}
}

func TestTorusHopsSymmetric(t *testing.T) {
	tor := NewTorus(5, 3)
	for a := 0; a < tor.Nodes(); a++ {
		for b := 0; b < tor.Nodes(); b++ {
			if tor.Hops(a, b) != tor.Hops(b, a) {
				t.Fatalf("asymmetric hops between %d and %d", a, b)
			}
		}
	}
}

func TestTorusTriangleInequalityProperty(t *testing.T) {
	tor := NewTorus(4, 3, 2)
	f := func(ar, br, cr uint16) bool {
		n := tor.Nodes()
		a, b, c := int(ar)%n, int(br)%n, int(cr)%n
		return tor.Hops(a, c) <= tor.Hops(a, b)+tor.Hops(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTorus5DVulcanScale(t *testing.T) {
	// A Vulcan-like 5-D torus; check basic sanity at scale.
	tor := NewTorus(4, 4, 4, 4, 2)
	if tor.Nodes() != 512 {
		t.Fatalf("nodes = %d", tor.Nodes())
	}
	diam := MaxHops(tor)
	want := 2 + 2 + 2 + 2 + 1 // per-dimension max ring distance
	if diam != want {
		t.Fatalf("diameter = %d, want %d", diam, want)
	}
}

func TestMaxHopsFatTree(t *testing.T) {
	ft := NewFatTree(4, 3, 2)
	if MaxHops(ft) != 4 {
		t.Fatalf("diameter = %d, want 4", MaxHops(ft))
	}
}

func TestWrapDelta(t *testing.T) {
	cases := []struct{ a, b, size, want int }{
		{0, 1, 4, 1},
		{0, 3, 4, -1},
		{0, 2, 4, 2}, // tie goes forward
		{3, 0, 4, 1},
		{2, 2, 4, 0},
	}
	for _, c := range cases {
		if got := wrapDelta(c.a, c.b, c.size); got != c.want {
			t.Fatalf("wrapDelta(%d,%d,%d) = %d, want %d", c.a, c.b, c.size, got, c.want)
		}
	}
}

func TestNewTorusPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTorus(3, 0)
}
