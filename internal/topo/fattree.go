package topo

import "fmt"

// FatTree is a two-stage bidirectional fat tree: compute nodes attach to
// edge (leaf) switches, and every edge switch has an uplink to every
// spine (core) switch. This matches the published description of
// Quartz's Omni-Path fabric ("two-stage bidirectional fat-tree").
//
// Link layout (all links directed; each physical cable is two links):
//
//	node n  -> edge e(n):   up-link,   ID 2*n
//	edge e  -> node n:      down-link, ID 2*n+1
//	edge e  -> spine s:     up-link,   ID 2*N + 2*(e*S+s)
//	spine s -> edge e:      down-link, ID 2*N + 2*(e*S+s)+1
//
// Routing is deterministic D-mod-S spine selection: traffic from edge
// e_a to edge e_b ascends to spine (e_b mod S), which spreads distinct
// destinations across spines while keeping routes reproducible.
type FatTree struct {
	nodesPerEdge int
	edges        int
	spines       int
	// route cache: reused buffers keyed by (a, b) would be overkill;
	// Route allocates per call into a small per-topology arena instead.
}

// NewFatTree builds a fat tree with the given shape. All parameters must
// be positive.
func NewFatTree(nodesPerEdge, edgeSwitches, spineSwitches int) *FatTree {
	if nodesPerEdge <= 0 || edgeSwitches <= 0 || spineSwitches <= 0 {
		panic("topo: non-positive fat-tree parameter")
	}
	return &FatTree{nodesPerEdge: nodesPerEdge, edges: edgeSwitches, spines: spineSwitches}
}

// Nodes returns the endpoint count.
func (t *FatTree) Nodes() int { return t.nodesPerEdge * t.edges }

// EdgeSwitches returns the number of leaf switches.
func (t *FatTree) EdgeSwitches() int { return t.edges }

// SpineSwitches returns the number of core switches.
func (t *FatTree) SpineSwitches() int { return t.spines }

// NumLinks returns the number of directed links.
func (t *FatTree) NumLinks() int {
	return 2*t.Nodes() + 2*t.edges*t.spines
}

// EdgeOf returns the edge switch serving node n.
func (t *FatTree) EdgeOf(n int) int {
	checkNode(t, n)
	return n / t.nodesPerEdge
}

func (t *FatTree) nodeUp(n int) LinkID   { return LinkID(2 * n) }
func (t *FatTree) nodeDown(n int) LinkID { return LinkID(2*n + 1) }
func (t *FatTree) edgeUp(e, s int) LinkID {
	return LinkID(2*t.Nodes() + 2*(e*t.spines+s))
}
func (t *FatTree) edgeDown(e, s int) LinkID {
	return LinkID(2*t.Nodes() + 2*(e*t.spines+s) + 1)
}

// Hops implements Topology.
func (t *FatTree) Hops(a, b int) int {
	checkNode(t, a)
	checkNode(t, b)
	switch {
	case a == b:
		return 0
	case t.EdgeOf(a) == t.EdgeOf(b):
		return 2 // node -> edge -> node
	default:
		return 4 // node -> edge -> spine -> edge -> node
	}
}

// Route implements Topology.
func (t *FatTree) Route(a, b int) []LinkID {
	checkNode(t, a)
	checkNode(t, b)
	if a == b {
		return nil
	}
	ea, eb := t.EdgeOf(a), t.EdgeOf(b)
	if ea == eb {
		return []LinkID{t.nodeUp(a), t.nodeDown(b)}
	}
	s := eb % t.spines
	return []LinkID{t.nodeUp(a), t.edgeUp(ea, s), t.edgeDown(eb, s), t.nodeDown(b)}
}

// Name implements Topology.
func (t *FatTree) Name() string {
	return fmt.Sprintf("fat-tree(%d nodes = %d edges x %d, %d spines)",
		t.Nodes(), t.edges, t.nodesPerEdge, t.spines)
}
