package faults

import (
	"math"
	"testing"

	"besst/internal/fti"
	"besst/internal/stats"
)

var cfg = fti.Config{GroupSize: 4, NodeSize: 2}

func baseSpec() JobSpec {
	return JobSpec{
		Steps:             1000,
		StepSec:           1,
		ScratchRestartSec: 30,
	}
}

func withL1(spec JobSpec, period int) JobSpec {
	spec.Schedules = []CkptSchedule{{Level: fti.L1, Period: period}}
	spec.CkptSec = func(fti.Level) float64 { return 5 }
	spec.RestartSec = func(fti.Level) float64 { return 10 }
	return spec
}

func TestNoFaultsNoOverhead(t *testing.T) {
	fm := FaultModel{Nodes: 32, FaultsPerNodeHour: 0}
	st := Run(baseSpec(), fm, cfg, stats.NewRNG(1))
	if st.WallSec != 1000 {
		t.Fatalf("wall = %v, want 1000", st.WallSec)
	}
	if st.Faults != 0 || st.CkptSec != 0 {
		t.Fatalf("unexpected overheads: %+v", st)
	}
	if st.Efficiency() != 1 {
		t.Fatalf("efficiency = %v", st.Efficiency())
	}
}

func TestCheckpointOverheadWithoutFaults(t *testing.T) {
	fm := FaultModel{Nodes: 32, FaultsPerNodeHour: 0}
	st := Run(withL1(baseSpec(), 100), fm, cfg, stats.NewRNG(1))
	// 10 checkpoints x 5s on top of 1000s solve.
	if st.WallSec != 1050 {
		t.Fatalf("wall = %v, want 1050", st.WallSec)
	}
	if st.CkptSec != 50 {
		t.Fatalf("ckpt = %v", st.CkptSec)
	}
}

func TestFaultsForceRework(t *testing.T) {
	fm := FaultModel{Nodes: 64, FaultsPerNodeHour: 2, HardFraction: 0}
	st := Run(withL1(baseSpec(), 50), fm, cfg, stats.NewRNG(2))
	if st.Faults == 0 {
		t.Fatal("expected failures at this rate")
	}
	if st.WallSec <= 1000 {
		t.Fatal("faults should add wall time")
	}
	if st.Recovered == 0 {
		t.Fatal("soft failures with L1 should be recoverable")
	}
	if st.Efficiency() >= 1 {
		t.Fatal("efficiency should drop under faults")
	}
}

func TestCase2ScratchRestarts(t *testing.T) {
	// Case 2 of Fig 4: faults without fault tolerance — every failure
	// restarts the run from the beginning.
	fm := FaultModel{Nodes: 16, FaultsPerNodeHour: 1, HardFraction: 0.5}
	spec := baseSpec()
	spec.Steps = 300
	st := Run(spec, fm, cfg, stats.NewRNG(3))
	if st.Recovered != 0 {
		t.Fatal("no FT: nothing should recover from checkpoints")
	}
	if st.Scratch == 0 || st.Scratch > st.Faults {
		t.Fatalf("faults should restart from scratch (others land in recovery windows): %+v", st)
	}
}

func TestCase4BeatsCase2UnderFaults(t *testing.T) {
	// Case 4 (faults + FT) should finish faster in expectation than
	// Case 2 (faults, no FT) when failures are frequent.
	fm := FaultModel{Nodes: 64, FaultsPerNodeHour: 0.5, HardFraction: 0.3}
	noFT := MonteCarlo(baseSpec(), fm, cfg, 40, 7)
	withFT := MonteCarlo(withL1(baseSpec(), 50), fm, cfg, 40, 7)
	if MeanWall(withFT) >= MeanWall(noFT) {
		t.Fatalf("FT should pay off: %v vs %v", MeanWall(withFT), MeanWall(noFT))
	}
}

func TestL1CannotRecoverHardFailures(t *testing.T) {
	// All failures hard: L1-only checkpoints are useless; runs behave
	// like scratch restarts (with added checkpoint overhead).
	fm := FaultModel{Nodes: 16, FaultsPerNodeHour: 1, HardFraction: 1}
	st := Run(withL1(baseSpec(), 50), fm, cfg, stats.NewRNG(5))
	if st.Faults > 0 && st.Recovered != 0 {
		t.Fatalf("hard failures recovered by L1: %+v", st)
	}
}

func TestL2RecoversHardFailures(t *testing.T) {
	fm := FaultModel{Nodes: 16, FaultsPerNodeHour: 1, HardFraction: 1}
	spec := baseSpec()
	spec.Schedules = []CkptSchedule{{Level: fti.L2, Period: 50}}
	spec.CkptSec = func(fti.Level) float64 { return 6 }
	spec.RestartSec = func(fti.Level) float64 { return 12 }
	st := Run(spec, fm, cfg, stats.NewRNG(6))
	if st.Faults == 0 {
		t.Fatal("expected faults")
	}
	if st.Recovered == 0 {
		t.Fatal("single hard failures should be L2-recoverable")
	}
}

func TestCorrelatedBurstsDefeatL2ButNotL4(t *testing.T) {
	fm := FaultModel{
		Nodes: 16, FaultsPerNodeHour: 5, HardFraction: 1,
		CorrelatedProb: 1, CorrelatedSize: 4, // whole group dies
	}
	mkSpec := func(level fti.Level) JobSpec {
		s := baseSpec()
		s.Steps = 200
		s.Schedules = []CkptSchedule{{Level: level, Period: 50}}
		s.CkptSec = func(fti.Level) float64 { return 5 }
		s.RestartSec = func(fti.Level) float64 { return 10 }
		return s
	}
	l2 := Run(mkSpec(fti.L2), fm, cfg, stats.NewRNG(7))
	if l2.Faults > 0 && l2.Recovered != 0 {
		t.Fatalf("group-wide burst should defeat L2: %+v", l2)
	}
	l4 := Run(mkSpec(fti.L4), fm, cfg, stats.NewRNG(7))
	if l4.Faults == 0 || l4.Recovered == 0 {
		t.Fatalf("L4 should recover bursts: %+v", l4)
	}
	// Failures either trigger a recovery/scratch restart or land
	// inside a recovery window (retrying it); never more restarts
	// than faults.
	if l4.Recovered+l4.Scratch > l4.Faults {
		t.Fatalf("fault accounting broken: %+v", l4)
	}
}

func TestSystemMTBF(t *testing.T) {
	fm := FaultModel{Nodes: 100, FaultsPerNodeHour: 0.01}
	// 1 fault/hour aggregate -> 3600s MTBF.
	if got := fm.SystemMTBFSeconds(); math.Abs(got-3600) > 1e-9 {
		t.Fatalf("MTBF = %v", got)
	}
	if !math.IsInf(FaultModel{Nodes: 10}.SystemMTBFSeconds(), 1) {
		t.Fatal("zero rate should give infinite MTBF")
	}
}

func TestFailureArrivalRateMatches(t *testing.T) {
	fm := FaultModel{Nodes: 50, FaultsPerNodeHour: 0.2}
	rng := stats.NewRNG(8)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += fm.nextFailure(rng)
	}
	want := fm.SystemMTBFSeconds()
	got := sum / n
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("mean interarrival %v, want %v", got, want)
	}
}

func TestWeibullArrivalMeanMatches(t *testing.T) {
	fm := FaultModel{Nodes: 50, FaultsPerNodeHour: 0.2, WeibullShape: 0.7}
	rng := stats.NewRNG(9)
	var sum float64
	const n = 40000
	for i := 0; i < n; i++ {
		sum += fm.nextFailure(rng)
	}
	want := fm.SystemMTBFSeconds()
	got := sum / n
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("weibull mean interarrival %v, want %v", got, want)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	fm := FaultModel{Nodes: 32, FaultsPerNodeHour: 0.5, HardFraction: 0.5}
	a := MonteCarlo(withL1(baseSpec(), 100), fm, cfg, 5, 11)
	b := MonteCarlo(withL1(baseSpec(), 100), fm, cfg, 5, 11)
	for i := range a {
		if a[i].WallSec != b[i].WallSec {
			t.Fatal("MC not reproducible")
		}
	}
}

func TestOptimalPeriodTradeoffVisible(t *testing.T) {
	// Very frequent checkpointing and very rare checkpointing should
	// both lose to a moderate period — the Young/Daly trade-off.
	fm := FaultModel{Nodes: 64, FaultsPerNodeHour: 0.4, HardFraction: 0.2}
	wall := func(period int) float64 {
		return MeanWall(MonteCarlo(withL1(baseSpec(), period), fm, cfg, 60, 13))
	}
	tooOften := wall(2)
	moderate := wall(60)
	tooRare := wall(950)
	if moderate >= tooOften {
		t.Fatalf("period 60 (%v) should beat period 2 (%v)", moderate, tooOften)
	}
	if moderate >= tooRare {
		t.Fatalf("period 60 (%v) should beat period 950 (%v)", moderate, tooRare)
	}
}

func TestValidatePanics(t *testing.T) {
	cases := []func(){
		func() { Run(JobSpec{}, FaultModel{Nodes: 1}, cfg, stats.NewRNG(1)) },
		func() { Run(baseSpec(), FaultModel{Nodes: 0}, cfg, stats.NewRNG(1)) },
		func() { MonteCarlo(baseSpec(), FaultModel{Nodes: 1}, cfg, 0, 1) },
		func() {
			s := baseSpec()
			s.Schedules = []CkptSchedule{{Level: fti.L1, Period: 10}}
			Run(s, FaultModel{Nodes: 1}, cfg, stats.NewRNG(1)) // missing cost fns
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
