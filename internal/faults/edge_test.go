package faults

import (
	"math"
	"testing"

	"besst/internal/fti"
	"besst/internal/stats"
)

// TestWeibullShapeOneIsExponential pins the degenerate case: shape
// exactly 1 must take the exponential path (a Weibull with shape 1 IS
// the exponential, and the explicit branch avoids a needless Gamma
// evaluation), consuming the same RNG stream as an unset shape.
func TestWeibullShapeOneIsExponential(t *testing.T) {
	exp := FaultModel{Nodes: 16, FaultsPerNodeHour: 2}
	one := exp
	one.WeibullShape = 1
	for trial := 0; trial < 50; trial++ {
		a := exp.nextFailure(stats.NewRNG(uint64(trial)))
		b := one.nextFailure(stats.NewRNG(uint64(trial)))
		if a != b {
			t.Fatalf("seed %d: shape=1 drew %v, exponential drew %v", trial, b, a)
		}
	}
	// And a shape meaningfully different from 1 must NOT reproduce the
	// exponential stream — the branch has to actually discriminate.
	weib := exp
	weib.WeibullShape = 0.7
	same := 0
	for trial := 0; trial < 50; trial++ {
		if exp.nextFailure(stats.NewRNG(uint64(trial))) == weib.nextFailure(stats.NewRNG(uint64(trial))) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("shape=0.7 reproduced the exponential stream exactly")
	}
}

// TestCorrelatedBurstLargerThanJob pins the clamp: a burst configured
// wider than the job still fails each node at most once, all hard.
func TestCorrelatedBurstLargerThanJob(t *testing.T) {
	fm := FaultModel{
		Nodes: 3, FaultsPerNodeHour: 1,
		CorrelatedProb: 1, CorrelatedSize: 10,
	}
	fm.Validate()
	for trial := 0; trial < 20; trial++ {
		fs := fm.drawFailures(stats.NewRNG(uint64(trial)))
		if len(fs) != fm.Nodes {
			t.Fatalf("burst of %d from %d nodes", len(fs), fm.Nodes)
		}
		seen := map[int]bool{}
		for _, f := range fs {
			if f.Node < 0 || f.Node >= fm.Nodes {
				t.Fatalf("failure on node %d of %d", f.Node, fm.Nodes)
			}
			if seen[f.Node] {
				t.Fatalf("node %d failed twice in one burst", f.Node)
			}
			seen[f.Node] = true
			if f.Kind != fti.HardFailure {
				t.Fatalf("correlated burst drew a soft failure")
			}
		}
	}
}

// TestZeroFaultRateEdge pins the injection-disabled sentinel across
// every consumer: infinite MTBF, infinite next arrival, and a run that
// never sees a fault even under a Weibull shape and correlated config.
func TestZeroFaultRateEdge(t *testing.T) {
	fm := FaultModel{
		Nodes: 8, FaultsPerNodeHour: 0,
		WeibullShape: 0.7, HardFraction: 0.5,
		CorrelatedProb: 0.5, CorrelatedSize: 4,
	}
	fm.Validate()
	if !math.IsInf(fm.SystemMTBFSeconds(), 1) {
		t.Fatalf("MTBF = %v, want +Inf", fm.SystemMTBFSeconds())
	}
	if got := fm.nextFailure(stats.NewRNG(9)); !math.IsInf(got, 1) {
		t.Fatalf("nextFailure = %v, want +Inf", got)
	}
	st := Run(withL1(baseSpec(), 100), fm, cfg, stats.NewRNG(9))
	if st.Faults != 0 || st.Scratch != 0 || st.ReworkSec != 0 {
		t.Fatalf("zero-rate run saw faults: %+v", st)
	}
	wantWall := st.SolveSec + st.CkptSec
	if st.WallSec != wantWall {
		t.Fatalf("wall = %v, want solve+ckpt = %v", st.WallSec, wantWall)
	}
}

// TestCorrelatedSizeOneIsNotABurst pins the boundary: CorrelatedSize
// must exceed 1 for the burst branch, otherwise the single-failure path
// (with its soft/hard coin) runs even at CorrelatedProb 1.
func TestCorrelatedSizeOneIsNotABurst(t *testing.T) {
	fm := FaultModel{
		Nodes: 8, FaultsPerNodeHour: 1, HardFraction: 0,
		CorrelatedProb: 1, CorrelatedSize: 1,
	}
	for trial := 0; trial < 20; trial++ {
		fs := fm.drawFailures(stats.NewRNG(uint64(trial)))
		if len(fs) != 1 {
			t.Fatalf("size-1 burst drew %d failures", len(fs))
		}
		if fs[0].Kind != fti.SoftFailure {
			t.Fatal("single-failure path ignored HardFraction=0")
		}
	}
}

// TestWeibullShapeMeanPreserved pins the scale normalization: for any
// shape, mean inter-arrival stays 1/rate, so changing the shape changes
// burstiness without silently changing the failure rate.
func TestWeibullShapeMeanPreserved(t *testing.T) {
	for _, shape := range []float64{0.5, 1, 2.5} {
		fm := FaultModel{Nodes: 4, FaultsPerNodeHour: 9, WeibullShape: shape}
		rng := stats.NewRNG(77)
		const n = 200000
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += fm.nextFailure(rng)
		}
		mean := sum / n
		want := fm.SystemMTBFSeconds()
		if math.Abs(mean-want)/want > 0.03 {
			t.Errorf("shape %v: mean arrival %v, want %v (±3%%)", shape, mean, want)
		}
	}
}
