// Package faults implements the fault-injection capability the paper
// plans as the next BE-SST extension (Cases 2 and 4 of its Fig 4):
// simulating application runs under node failures, without
// fault-tolerance (restart from scratch) and with multi-level FTI
// checkpointing (restore from the cheapest sufficient level).
//
// Failures arrive per node as a Poisson process (or Weibull renewal
// process for infant-mortality studies); each failure is soft (local
// storage survives) or hard (node and storage lost), and occasionally
// correlated bursts take out several nodes at once (a switch or PSU
// domain failing) — the scenario that separates FTI level guarantees.
package faults

import (
	"fmt"
	"math"

	"besst/internal/fti"
	"besst/internal/stats"
)

// FaultModel describes the failure behaviour of a machine partition.
type FaultModel struct {
	// Nodes is the number of nodes the job occupies (only their
	// failures interrupt the job).
	Nodes int
	// FaultsPerNodeHour is each node's failure rate.
	FaultsPerNodeHour float64
	// HardFraction is the probability a failure loses node-local
	// storage.
	HardFraction float64
	// WeibullShape, when > 0 and != 1, draws inter-arrival times from
	// a Weibull renewal process with this shape instead of the
	// exponential (shape < 1 models infant mortality).
	WeibullShape float64
	// CorrelatedProb is the probability a failure event is a
	// correlated burst; CorrelatedSize nodes (contiguous, so usually
	// within one FTI group) fail together, all hard.
	CorrelatedProb float64
	CorrelatedSize int
}

// Validate panics on nonsense.
func (f FaultModel) Validate() {
	if f.Nodes <= 0 || f.FaultsPerNodeHour < 0 || f.HardFraction < 0 || f.HardFraction > 1 {
		panic("faults: invalid FaultModel")
	}
	if f.CorrelatedProb < 0 || f.CorrelatedProb > 1 {
		panic("faults: invalid correlated probability")
	}
}

// SystemMTBFSeconds returns the aggregate mean time between failures
// across all job nodes, in seconds.
func (f FaultModel) SystemMTBFSeconds() float64 {
	//lint:ignore floateq exact zero rate is the injection-disabled sentinel
	if f.FaultsPerNodeHour == 0 {
		return math.Inf(1)
	}
	return 3600 / (f.FaultsPerNodeHour * float64(f.Nodes))
}

// nextFailure draws the time to the next system-wide failure event in
// seconds.
func (f FaultModel) nextFailure(rng *stats.RNG) float64 {
	//lint:ignore floateq exact zero rate is the injection-disabled sentinel
	if f.FaultsPerNodeHour == 0 {
		return math.Inf(1)
	}
	rate := f.FaultsPerNodeHour * float64(f.Nodes) / 3600 // per second
	//lint:ignore floateq shape exactly 1 degenerates Weibull to the exponential path
	if f.WeibullShape > 0 && f.WeibullShape != 1 {
		// Scale chosen so the mean matches 1/rate:
		// E[Weibull(k, lambda)] = lambda * Gamma(1 + 1/k).
		scale := 1 / rate / math.Gamma(1+1/f.WeibullShape)
		return rng.Weibull(f.WeibullShape, scale)
	}
	return rng.Exponential(rate)
}

// drawFailures materializes the node set of one failure event.
func (f FaultModel) drawFailures(rng *stats.RNG) []fti.Failure {
	if f.CorrelatedProb > 0 && f.CorrelatedSize > 1 && rng.Float64() < f.CorrelatedProb {
		base := rng.Intn(f.Nodes)
		out := make([]fti.Failure, 0, f.CorrelatedSize)
		for i := 0; i < f.CorrelatedSize && i < f.Nodes; i++ {
			out = append(out, fti.Failure{Node: (base + i) % f.Nodes, Kind: fti.HardFailure})
		}
		return out
	}
	kind := fti.SoftFailure
	if rng.Float64() < f.HardFraction {
		kind = fti.HardFailure
	}
	return []fti.Failure{{Node: rng.Intn(f.Nodes), Kind: kind}}
}

// JobSpec describes the application run being injected.
type JobSpec struct {
	// Steps is the number of timesteps to complete.
	Steps int
	// StepSec is the duration of one timestep (compute + comm).
	StepSec float64
	// Schedules lists the enabled checkpoint levels with their
	// periods (empty for Case 2, no fault tolerance).
	Schedules []CkptSchedule
	// CkptSec returns the checkpoint-instance duration per level.
	CkptSec func(fti.Level) float64
	// RestartSec returns the restore duration per level.
	RestartSec func(fti.Level) float64
	// ScratchRestartSec is the relaunch cost when no checkpoint can
	// recover (or none exists): requeue plus reinitialization.
	ScratchRestartSec float64
	// MaxWallSec, when positive, truncates runs that exceed it (a
	// no-FT job under heavy failures may otherwise never finish —
	// restart-from-scratch diverges once the solve time passes the
	// failure MTBF). Truncated runs report Truncated=true with
	// WallSec = MaxWallSec, a censored observation.
	MaxWallSec float64
}

// CkptSchedule pairs a level with its period in timesteps.
type CkptSchedule struct {
	Level  fti.Level
	Period int
}

// Validate panics on an unusable spec.
func (j JobSpec) Validate() {
	if j.Steps <= 0 || j.StepSec <= 0 || j.ScratchRestartSec < 0 {
		panic("faults: invalid JobSpec")
	}
	for _, s := range j.Schedules {
		if !s.Level.Valid() || s.Period <= 0 {
			panic(fmt.Sprintf("faults: invalid schedule %+v", s))
		}
	}
	if len(j.Schedules) > 0 && (j.CkptSec == nil || j.RestartSec == nil) {
		panic("faults: schedules without cost functions")
	}
}

// RunStats reports one injected run.
type RunStats struct {
	// WallSec is the total wall-clock time to complete all steps (or
	// MaxWallSec when Truncated).
	WallSec float64
	// Truncated marks runs cut off at JobSpec.MaxWallSec.
	Truncated bool
	// SolveSec is the useful forward-progress time (Steps*StepSec).
	SolveSec float64
	// CkptSec is time spent taking checkpoints.
	CkptSec float64
	// ReworkSec is recomputation of steps lost to failures.
	ReworkSec float64
	// RestartSec is time spent in recovery I/O and relaunches.
	RestartSec float64
	// Faults counts failure events that interrupted the job.
	Faults int
	// Recovered counts failures recovered from a checkpoint.
	Recovered int
	// Scratch counts restarts from the beginning.
	Scratch int
}

// Efficiency returns SolveSec / WallSec.
func (r RunStats) Efficiency() float64 {
	//lint:ignore floateq division guard; only an exactly zero wall time is degenerate
	if r.WallSec == 0 {
		return 0
	}
	return r.SolveSec / r.WallSec
}

// Run simulates one job execution under fault injection. cfg provides
// the FTI group structure used to decide recoverability of each failure
// set against each enabled level.
func Run(spec JobSpec, fm FaultModel, cfg fti.Config, rng *stats.RNG) RunStats {
	spec.Validate()
	fm.Validate()

	var st RunStats
	st.SolveSec = float64(spec.Steps) * spec.StepSec

	enabled := make([]fti.Level, 0, len(spec.Schedules))
	for _, s := range spec.Schedules {
		enabled = append(enabled, s.Level)
	}

	wall := 0.0
	nextFail := fm.nextFailure(rng)
	step := 0          // completed steps
	lastCkptStep := -1 // last step covered by a persisted checkpoint (-1: none)

	// advance moves the run forward by dur; if a failure lands inside
	// the interval it returns false with wall set to the failure time.
	advance := func(dur float64) bool {
		if wall+dur <= nextFail {
			wall += dur
			return true
		}
		wall = nextFail
		return false
	}

	// recover charges recovery time with continued failure exposure:
	// a failure landing during the recovery window restarts the
	// recovery (the checkpoint being restored lives on stable storage,
	// so its state is unaffected — a simplification for hard failures
	// hitting the restoring node, noted in the package docs). This is
	// the exposure Daly's exp(R/M) factor models; without it injected
	// runs would be artificially immune to failures while restarting.
	recover := func(dur float64) {
		for {
			if wall+dur <= nextFail {
				wall += dur
				st.RestartSec += dur
				return
			}
			st.RestartSec += nextFail - wall
			wall = nextFail
			st.Faults++
			nextFail = wall + fm.nextFailure(rng)
		}
	}

	for step < spec.Steps {
		if spec.MaxWallSec > 0 && wall >= spec.MaxWallSec {
			st.Truncated = true
			st.WallSec = spec.MaxWallSec
			return st
		}
		// One timestep of forward progress.
		if !advance(spec.StepSec) {
			st.Faults++
			failures := fm.drawFailures(rng)
			level := cfg.BestRecoveryLevel(enabled, failures)
			var lost int
			nextFail = wall + fm.nextFailure(rng)
			if level != 0 && lastCkptStep >= 0 {
				st.Recovered++
				recover(spec.RestartSec(level))
				lost = step - (lastCkptStep + 1)
				step = lastCkptStep + 1
			} else {
				st.Scratch++
				recover(spec.ScratchRestartSec)
				lost = step
				step = 0
				lastCkptStep = -1
			}
			if lost < 0 {
				lost = 0
			}
			st.ReworkSec += float64(lost) * spec.StepSec
			continue
		}
		step++

		// Take any scheduled checkpoints at the end of this step. A
		// failure during checkpointing invalidates the in-progress
		// checkpoint but earlier ones survive.
		for _, s := range spec.Schedules {
			if step%s.Period != 0 {
				continue
			}
			c := spec.CkptSec(s.Level)
			if advance(c) {
				st.CkptSec += c
				lastCkptStep = step - 1
				continue
			}
			st.Faults++
			failures := fm.drawFailures(rng)
			level := cfg.BestRecoveryLevel(enabled, failures)
			var lost int
			nextFail = wall + fm.nextFailure(rng)
			if level != 0 && lastCkptStep >= 0 {
				st.Recovered++
				recover(spec.RestartSec(level))
				lost = step - (lastCkptStep + 1)
				step = lastCkptStep + 1
			} else {
				st.Scratch++
				recover(spec.ScratchRestartSec)
				lost = step
				step = 0
				lastCkptStep = -1
			}
			if lost < 0 {
				lost = 0
			}
			st.ReworkSec += float64(lost) * spec.StepSec
			break // re-enter main loop from the restored step
		}
	}
	st.WallSec = wall
	return st
}

// MonteCarlo runs n injected executions and returns all stats.
func MonteCarlo(spec JobSpec, fm FaultModel, cfg fti.Config, n int, seed uint64) []RunStats {
	if n <= 0 {
		panic("faults: non-positive replication count")
	}
	master := stats.NewRNG(seed)
	out := make([]RunStats, n)
	for i := range out {
		out[i] = Run(spec, fm, cfg, master.Split())
	}
	return out
}

// MeanWall returns the mean wall time of replications.
func MeanWall(runs []RunStats) float64 {
	var xs []float64
	for _, r := range runs {
		xs = append(xs, r.WallSec)
	}
	return stats.Mean(xs)
}
