// Package obs is the observability layer of the simulator: lifecycle
// tracing for the discrete-event engines, run-level metrics, and
// profiling capture. It is stdlib-only and deliberately import-free of
// the simulation packages — the engine hook interfaces (des.Tracer,
// besst.Collector, dse.Collector) are typed with builtins, so the
// concrete implementations here satisfy them structurally.
//
// Two consumers split the work:
//
//   - TraceBuffer records per-event lifecycle records (dispatch, send,
//     barrier wait) into a preallocated ring buffer and exports them in
//     Chrome trace_event JSON, so a run opens directly in
//     chrome://tracing or Perfetto.
//   - Collector aggregates run-level metrics — events processed,
//     per-partition barrier stalls, peak queue depth, wall-clock per
//     phase, per-trial Monte Carlo timings, DSE sweep point timings —
//     and writes them as a versioned METRICS_*.json document.
//
// obs is the one sanctioned reader of the wall clock in the simulator
// stack: the nodeterminism lint check keeps time.Now out of the
// simulation packages, which instead call the primitive-typed hooks and
// let the implementations here stamp wall time. Nothing recorded ever
// feeds back into a simulation, so instrumented runs stay byte-identical
// to uninstrumented ones.
package obs

import (
	"sync"
	"time"
)

// Kind classifies a trace record.
type Kind uint8

// Record kinds.
const (
	// KindDispatch is one component handling one event: Comp is the
	// component, Sim the event time, WallDur the handler's wall time,
	// Aux the simulated time at handler return.
	KindDispatch Kind = iota
	// KindQueued is one event being scheduled: Comp is the destination
	// component, Sim the scheduling time, Aux the delivery time.
	KindQueued
	// KindBarrier is one partition waiting at a window barrier: Sim is
	// the window edge it arrived from, WallDur the wall time spent
	// blocked, Aux the window edge it resumed into (0 while open).
	KindBarrier
)

func (k Kind) String() string {
	switch k {
	case KindDispatch:
		return "dispatch"
	case KindQueued:
		return "queued"
	case KindBarrier:
		return "barrier"
	}
	return "unknown"
}

// Record is one fixed-size trace entry. Stream distinguishes engines
// sharing a tracer (Monte Carlo trial index); Part is the engine
// partition (0 for the sequential engine); Wall is nanoseconds since
// the buffer was created.
type Record struct {
	Kind    Kind
	Stream  int32
	Part    int32
	Comp    int32
	Sim     int64 // simulated ns
	Aux     int64 // kind-specific (see Kind docs)
	Wall    int64 // wall ns since trace start
	WallDur int64 // wall ns duration (-1 while a paired record is open)
}

// streamPart packs a (stream, part) pair into one map key.
func streamPart(stream, part int) uint64 {
	return uint64(uint32(stream))<<32 | uint64(uint32(part))
}

// TraceBuffer is a bounded, concurrency-safe recorder implementing the
// engine tracer hooks. Records land in a ring buffer preallocated at
// construction: once full, the oldest records are overwritten and
// counted as dropped rather than growing the heap mid-run.
type TraceBuffer struct {
	mu      sync.Mutex
	recs    []Record // guarded by mu
	n       uint64   // total records ever appended; guarded by mu
	dropped uint64   // guarded by mu
	// open maps (stream, part) to the absolute index of that lane's
	// open dispatch/barrier record awaiting its closing hook; both
	// guarded by mu.
	openDispatch map[uint64]uint64
	openBarrier  map[uint64]uint64 // guarded by mu
	clock        func() int64      // wall ns; swappable for deterministic tests; guarded by mu
	start        int64             // trace epoch; guarded by mu
}

// DefaultTraceCap is the default ring capacity: 1<<16 records ≈ 3 MiB,
// enough for every event of a validation-scale DES run while bounding
// tracing of mega-scale runs to the most recent window.
const DefaultTraceCap = 1 << 16

// NewTraceBuffer returns a buffer holding at most capacity records
// (<= 0 selects DefaultTraceCap).
func NewTraceBuffer(capacity int) *TraceBuffer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	b := &TraceBuffer{
		recs:         make([]Record, 0, capacity),
		openDispatch: map[uint64]uint64{},
		openBarrier:  map[uint64]uint64{},
		clock:        wallClock,
	}
	b.start = b.clock()
	return b
}

func wallClock() int64 { return time.Now().UnixNano() }

// setClock swaps the wall-clock source (tests only) and restarts the
// trace epoch.
func (b *TraceBuffer) setClock(clock func() int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.clock = clock
	b.start = clock()
}

// append stores r (stamping Wall) and returns its absolute index.
// Caller holds b.mu.
//
//lint:ignore lockguard the caller-holds-mu contract is stated above; every caller is a locked hook method
func (b *TraceBuffer) append(r Record) uint64 {
	r.Wall = b.clock() - b.start
	idx := b.n
	if len(b.recs) < cap(b.recs) {
		b.recs = append(b.recs, r)
	} else {
		b.recs[idx%uint64(cap(b.recs))] = r
		b.dropped++
	}
	b.n++
	return idx
}

// at returns a pointer to the record at absolute index idx, or nil if
// the ring has already overwritten it. Caller holds b.mu.
//
//lint:ignore lockguard the caller-holds-mu contract is stated above; every caller is a locked hook method
func (b *TraceBuffer) at(idx uint64) *Record {
	if b.n-idx > uint64(cap(b.recs)) {
		return nil
	}
	return &b.recs[idx%uint64(cap(b.recs))]
}

// EventDispatch implements the engine tracer hook: it opens a dispatch
// record that EventReturn closes with the handler's wall duration.
func (b *TraceBuffer) EventDispatch(stream, part, comp int, simNs int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := b.append(Record{
		Kind: KindDispatch, Stream: int32(stream), Part: int32(part),
		Comp: int32(comp), Sim: simNs, WallDur: -1,
	})
	b.openDispatch[streamPart(stream, part)] = idx
}

// EventReturn closes the lane's open dispatch record.
func (b *TraceBuffer) EventReturn(stream, part int, simNs int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx, ok := b.openDispatch[streamPart(stream, part)]
	if !ok {
		return
	}
	delete(b.openDispatch, streamPart(stream, part))
	if r := b.at(idx); r != nil && r.Kind == KindDispatch && r.WallDur < 0 {
		r.WallDur = (b.clock() - b.start) - r.Wall
		r.Aux = simNs
	}
}

// EventQueued records one event being scheduled.
func (b *TraceBuffer) EventQueued(stream, part, dst int, simNs, deliverNs int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.append(Record{
		Kind: KindQueued, Stream: int32(stream), Part: int32(part),
		Comp: int32(dst), Sim: simNs, Aux: deliverNs,
	})
}

// BarrierArrive opens a barrier-wait record for the partition.
func (b *TraceBuffer) BarrierArrive(stream, part int, windowNs int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx := b.append(Record{
		Kind: KindBarrier, Stream: int32(stream), Part: int32(part),
		Comp: -1, Sim: windowNs, WallDur: -1,
	})
	b.openBarrier[streamPart(stream, part)] = idx
}

// BarrierResume closes the partition's open barrier-wait record with
// the wall time it spent blocked.
func (b *TraceBuffer) BarrierResume(stream, part int, windowNs int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	idx, ok := b.openBarrier[streamPart(stream, part)]
	if !ok {
		return // first window: resume without a prior arrive
	}
	delete(b.openBarrier, streamPart(stream, part))
	if r := b.at(idx); r != nil && r.Kind == KindBarrier && r.WallDur < 0 {
		r.WallDur = (b.clock() - b.start) - r.Wall
		r.Aux = windowNs
	}
}

// Len returns the number of records currently retained.
func (b *TraceBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.recs)
}

// Dropped returns how many records the ring overwrote.
func (b *TraceBuffer) Dropped() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Records returns the retained records in append order (oldest first).
func (b *TraceBuffer) Records() []Record {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Record, len(b.recs))
	if b.dropped == 0 {
		copy(out, b.recs)
		return out
	}
	head := int(b.n % uint64(cap(b.recs)))
	copy(out, b.recs[head:])
	copy(out[len(b.recs)-head:], b.recs[:head])
	return out
}

// EngineTracer is the engine hook interface, restated locally (method
// sets are identical to des.Tracer) so Tee can compose tracers without
// importing the simulation packages.
type EngineTracer interface {
	EventDispatch(stream, part, comp int, simNs int64)
	EventReturn(stream, part int, simNs int64)
	EventQueued(stream, part, dst int, simNs, deliverNs int64)
	BarrierArrive(stream, part int, windowNs int64)
	BarrierResume(stream, part int, windowNs int64)
}

// AdaptiveTracer restates the adaptive parallel-engine extension hooks
// (method set identical to des.AdaptiveTracer): per-window
// synchronization decisions and committed rebalance passes. Collector
// implements it; Tee forwards the hooks to any member that does.
type AdaptiveTracer interface {
	WindowClosed(stream, part int, windowNs, widthNs int64, localEvents, crossSent int)
	RebalanceApplied(stream, moved int, maxBefore, maxAfter uint64)
}

// tee fans every hook out to multiple tracers.
type tee []EngineTracer

func (t tee) EventDispatch(stream, part, comp int, simNs int64) {
	for _, x := range t {
		x.EventDispatch(stream, part, comp, simNs)
	}
}
func (t tee) EventReturn(stream, part int, simNs int64) {
	for _, x := range t {
		x.EventReturn(stream, part, simNs)
	}
}
func (t tee) EventQueued(stream, part, dst int, simNs, deliverNs int64) {
	for _, x := range t {
		x.EventQueued(stream, part, dst, simNs, deliverNs)
	}
}
func (t tee) BarrierArrive(stream, part int, windowNs int64) {
	for _, x := range t {
		x.BarrierArrive(stream, part, windowNs)
	}
}
func (t tee) BarrierResume(stream, part int, windowNs int64) {
	for _, x := range t {
		x.BarrierResume(stream, part, windowNs)
	}
}

// The tee always presents the adaptive extension and forwards to the
// members that implement it, so wrapping a Collector in Tee keeps the
// engine's one-time AdaptiveTracer detection working.
func (t tee) WindowClosed(stream, part int, windowNs, widthNs int64, localEvents, crossSent int) {
	for _, x := range t {
		if a, ok := x.(AdaptiveTracer); ok {
			a.WindowClosed(stream, part, windowNs, widthNs, localEvents, crossSent)
		}
	}
}
func (t tee) RebalanceApplied(stream, moved int, maxBefore, maxAfter uint64) {
	for _, x := range t {
		if a, ok := x.(AdaptiveTracer); ok {
			a.RebalanceApplied(stream, moved, maxBefore, maxAfter)
		}
	}
}

// Tee combines tracers into one, skipping nils. It returns nil when
// none remain and the sole survivor unwrapped, so callers can hand the
// result straight to an engine's nil-guarded tracer slot.
func Tee(tracers ...EngineTracer) EngineTracer {
	var live tee
	for _, t := range tracers {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
