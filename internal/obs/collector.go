package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"runtime/metrics"
	"sort"
	"sync"
)

// MetricsSchemaVersion is bumped whenever the METRICS_*.json layout
// changes incompatibly, so downstream tooling can reject documents it
// does not understand. Version 2 added the adaptive parallel-engine
// fields: per-partition window widths and cross-partition event counts,
// the engine-wide exchange total, and committed rebalance decisions.
// Version 3 added the distributed-execution fields: shard completions,
// shard retry attempts, replica divergences, and workers lost.
// Version 4 added the surrogate-guided DSE search fields: per-round
// evaluation counts and best-so-far means.
const MetricsSchemaVersion = 4

// Collector aggregates run-level metrics. It implements the engine
// tracer hooks (per-partition event counts, barrier stalls, window
// counts), the besst run-collector hooks (per-trial Monte Carlo
// timings, engine totals), and the dse sweep-collector hooks (per-point
// timings) — all structurally, so the simulation packages never import
// obs. All methods are safe for concurrent use.
type Collector struct {
	mu     sync.Mutex
	clock  func() int64         // guarded by mu
	start  int64                // guarded by mu
	parts  map[int]*partMetrics // guarded by mu
	phases []*PhaseMetrics      // guarded by mu
	// trials and points are map references passed whole into
	// spanStart/spanDone, which lock before touching entries; the
	// references themselves are never reassigned after construction, so
	// they carry no guarded-by annotation.
	trials map[int]*spanMetrics
	points map[int]*spanMetrics

	// Campaign fault provenance (resilience runner hooks): failed
	// attempts per retried trial, attempt counts of quarantined trials,
	// and how many trials a resumed campaign replayed from its journal.
	retries     map[int]int // guarded by mu
	quarantined map[int]int // guarded by mu
	replayed    int         // guarded by mu

	// Adaptive parallel-engine decisions (AdaptiveTracer hooks).
	eventsExchanged uint64           // guarded by mu
	rebalances      []RebalanceEntry // guarded by mu

	// Distributed-execution provenance (dist coordinator hooks):
	// completed shards, failed shard attempts per shard, replica
	// divergences per shard, and workers marked lost at least once.
	shardsDone   int               // guarded by mu
	shardRetries map[int]int       // guarded by mu
	divergences  []DivergenceEntry // guarded by mu
	workersDown  map[int]bool      // guarded by mu

	// Surrogate-guided DSE search rounds (dse search hook), in
	// coordinator order.
	searchRounds []SearchRoundEntry // guarded by mu

	eventsProcessed uint64 // guarded by mu
	peakQueueDepth  int    // guarded by mu
}

type partMetrics struct {
	events       uint64
	stallNs      int64
	windows      uint64
	arrivedWall  int64 // wall ns of the open BarrierArrive, -1 when closed
	arrivedValid bool

	// Adaptive window decisions: sum/count of bounded widened window
	// widths (simulated ns), windows that ran unbounded (free drain),
	// and cross-partition events this partition posted at barriers.
	widthSumNs     int64
	boundedWindows uint64
	drainWindows   uint64
	crossSent      uint64
}

type spanMetrics struct {
	startWall int64
	durNs     int64
	done      bool
}

// PhaseMetrics is one named wall-clock phase of a run.
type PhaseMetrics struct {
	Name   string `json:"name"`
	WallNs int64  `json:"wall_ns"`

	startWall int64
	open      bool
}

// NewCollector returns an empty collector; its wall-clock epoch starts
// now.
func NewCollector() *Collector {
	c := &Collector{
		clock:        wallClock,
		parts:        map[int]*partMetrics{},
		trials:       map[int]*spanMetrics{},
		points:       map[int]*spanMetrics{},
		retries:      map[int]int{},
		quarantined:  map[int]int{},
		shardRetries: map[int]int{},
		workersDown:  map[int]bool{},
	}
	c.start = c.clock()
	return c
}

// setClock swaps the wall-clock source (tests only) and restarts the
// epoch.
func (c *Collector) setClock(clock func() int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.clock = clock
	c.start = clock()
}

// part returns partition i's row, creating it on first use. Caller
// holds c.mu.
//
//lint:ignore lockguard the caller-holds-mu contract is stated above; every caller is a locked hook method
func (c *Collector) part(i int) *partMetrics {
	p, ok := c.parts[i]
	if !ok {
		p = &partMetrics{}
		c.parts[i] = p
	}
	return p
}

// Engine tracer hooks. The collector keys counters by partition only —
// streams (Monte Carlo trials) share partition rows, which is what the
// per-partition stall report wants: total time partition i spent
// blocked across the whole run.

// EventDispatch counts one delivered event against the partition.
func (c *Collector) EventDispatch(stream, part, comp int, simNs int64) {
	c.mu.Lock()
	c.part(part).events++
	c.mu.Unlock()
}

// EventReturn is a no-op: the collector keeps counts, not durations, at
// event granularity.
func (c *Collector) EventReturn(stream, part int, simNs int64) {}

// EventQueued is a no-op: queue growth is summarized by the engine's
// own peak-depth counter, reported via EngineTotals.
func (c *Collector) EventQueued(stream, part, dst int, simNs, deliverNs int64) {}

// BarrierArrive marks the start of a barrier stall for the partition.
func (c *Collector) BarrierArrive(stream, part int, windowNs int64) {
	c.mu.Lock()
	p := c.part(part)
	p.arrivedWall = c.clock()
	p.arrivedValid = true
	c.mu.Unlock()
}

// BarrierResume closes the partition's open stall and counts a window.
func (c *Collector) BarrierResume(stream, part int, windowNs int64) {
	c.mu.Lock()
	p := c.part(part)
	p.windows++
	if p.arrivedValid {
		p.stallNs += c.clock() - p.arrivedWall
		p.arrivedValid = false
	}
	c.mu.Unlock()
}

// Adaptive parallel-engine hooks (des.AdaptiveTracer, structurally).

// WindowClosed accumulates one partition window's adaptive decision:
// the widened width (widthNs < 0 marks an unbounded free drain) and the
// events the partition posted to other partitions at the barrier.
func (c *Collector) WindowClosed(stream, part int, windowNs, widthNs int64, localEvents, crossSent int) {
	c.mu.Lock()
	p := c.part(part)
	if widthNs < 0 {
		p.drainWindows++
	} else {
		p.widthSumNs += widthNs
		p.boundedWindows++
	}
	p.crossSent += uint64(crossSent)
	c.eventsExchanged += uint64(crossSent)
	c.mu.Unlock()
}

// RebalanceApplied records one committed partition-rebalance pass.
func (c *Collector) RebalanceApplied(stream, moved int, maxBefore, maxAfter uint64) {
	c.mu.Lock()
	c.rebalances = append(c.rebalances, RebalanceEntry{
		Moved: moved, MaxLoadBefore: maxBefore, MaxLoadAfter: maxAfter,
	})
	c.mu.Unlock()
}

// Run-level hooks (besst / dse structural interfaces).

// TrialStart marks the beginning of Monte Carlo trial i.
func (c *Collector) TrialStart(i int) { c.spanStart(c.trials, i) }

// TrialDone marks the end of Monte Carlo trial i.
func (c *Collector) TrialDone(i int) { c.spanDone(c.trials, i) }

// PointStart marks the beginning of DSE sweep point i.
func (c *Collector) PointStart(i int) { c.spanStart(c.points, i) }

// PointDone marks the end of DSE sweep point i.
func (c *Collector) PointDone(i int) { c.spanDone(c.points, i) }

func (c *Collector) spanStart(m map[int]*spanMetrics, i int) {
	c.mu.Lock()
	m[i] = &spanMetrics{startWall: c.clock()}
	c.mu.Unlock()
}

func (c *Collector) spanDone(m map[int]*spanMetrics, i int) {
	c.mu.Lock()
	if s, ok := m[i]; ok && !s.done {
		s.durNs = c.clock() - s.startWall
		s.done = true
	}
	c.mu.Unlock()
}

// Campaign fault hooks (resilience runner structural interface).

// TrialRetry records that attempt `attempt` of trial i failed and will
// be retried; the per-trial count keeps the highest failed attempt.
func (c *Collector) TrialRetry(i, attempt int) {
	c.mu.Lock()
	if attempt > c.retries[i] {
		c.retries[i] = attempt
	}
	c.mu.Unlock()
}

// TrialQuarantined records that trial i exhausted its attempts and was
// quarantined: the campaign degrades to a partial result without it.
func (c *Collector) TrialQuarantined(i, attempts int) {
	c.mu.Lock()
	c.quarantined[i] = attempts
	c.mu.Unlock()
}

// TrialsReplayed records how many completed trials a resumed campaign
// recovered from its checkpoint journal instead of re-running.
func (c *Collector) TrialsReplayed(n int) {
	c.mu.Lock()
	c.replayed += n
	c.mu.Unlock()
}

// Distributed-execution hooks (dist coordinator / serve backend
// structural interfaces).

// ShardDone records that shard `shard`, covering unit indices
// [lo, hi), reached quorum and was merged.
func (c *Collector) ShardDone(shard, lo, hi int) {
	c.mu.Lock()
	c.shardsDone++
	c.mu.Unlock()
}

// ShardRetry records that attempt `attempt` of one of shard's replica
// slots failed (worker death, timeout, transport error) and the slot
// was reassigned; the per-shard count keeps the highest failed attempt.
func (c *Collector) ShardRetry(shard, attempt int) {
	c.mu.Lock()
	if attempt > c.shardRetries[shard] {
		c.shardRetries[shard] = attempt
	}
	c.mu.Unlock()
}

// ShardDivergence records a replica disagreement on shard: of
// `returned` replica journals, only `agree` matched the accepted
// majority bytes.
func (c *Collector) ShardDivergence(shard, agree, returned int) {
	c.mu.Lock()
	c.divergences = append(c.divergences, DivergenceEntry{Shard: shard, Agree: agree, Returned: returned})
	c.mu.Unlock()
}

// WorkerDown records that worker `worker` was marked unhealthy at
// least once during the campaign.
func (c *Collector) WorkerDown(worker int) {
	c.mu.Lock()
	c.workersDown[worker] = true
	c.mu.Unlock()
}

// SearchRound records one surrogate-guided DSE search round (dse
// structural interface): how many points the round fully simulated,
// the cumulative total, and the best fully simulated mean so far.
func (c *Collector) SearchRound(round, evals, cumEvals int, bestMean float64) {
	c.mu.Lock()
	c.searchRounds = append(c.searchRounds, SearchRoundEntry{
		Round: round, Evaluated: evals, CumEvaluated: cumEvals, BestMeanSec: bestMean,
	})
	c.mu.Unlock()
}

// EngineTotals reports one engine run's totals; calls accumulate so a
// Monte Carlo campaign sums across trials (peak depth takes the max).
func (c *Collector) EngineTotals(processed uint64, peakQueueDepth int) {
	c.mu.Lock()
	c.eventsProcessed += processed
	if peakQueueDepth > c.peakQueueDepth {
		c.peakQueueDepth = peakQueueDepth
	}
	c.mu.Unlock()
}

// Progress is a lightweight live snapshot of campaign advancement —
// the document besst-serve streams to polling clients. Unlike Snapshot
// it allocates nothing per partition and samples no runtime metrics.
type Progress struct {
	// TrialsStarted/TrialsDone count Monte Carlo trial brackets;
	// PointsStarted/PointsDone count DSE sweep-point brackets.
	TrialsStarted int `json:"trials_started,omitempty"`
	TrialsDone    int `json:"trials_done,omitempty"`
	PointsStarted int `json:"points_started,omitempty"`
	PointsDone    int `json:"points_done,omitempty"`
	// EventsProcessed is the running DES event total across trials.
	EventsProcessed uint64 `json:"events_processed,omitempty"`
	// Fault provenance so far: failed attempts, quarantined trials, and
	// trials replayed from a checkpoint journal on resume.
	Retries     int `json:"retries,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	Replayed    int `json:"replayed,omitempty"`
	// Distributed execution so far: shards merged, shards that needed
	// at least one replica reassignment, replica divergences observed,
	// and workers marked lost.
	ShardsDone       int `json:"shards_done,omitempty"`
	ShardRetries     int `json:"shard_retries,omitempty"`
	ShardDivergences int `json:"shard_divergences,omitempty"`
	WorkersLost      int `json:"workers_lost,omitempty"`
	// Surrogate-guided search so far: refinement rounds completed and
	// points fully simulated (memo hits included).
	SearchRounds    int `json:"search_rounds,omitempty"`
	SearchEvaluated int `json:"search_evaluated,omitempty"`
}

// Progress returns the collector's current campaign progress.
func (c *Collector) Progress() Progress {
	c.mu.Lock()
	defer c.mu.Unlock()
	p := Progress{
		TrialsStarted:    len(c.trials),
		PointsStarted:    len(c.points),
		EventsProcessed:  c.eventsProcessed,
		Retries:          len(c.retries),
		Quarantined:      len(c.quarantined),
		Replayed:         c.replayed,
		ShardsDone:       c.shardsDone,
		ShardRetries:     len(c.shardRetries),
		ShardDivergences: len(c.divergences),
		WorkersLost:      len(c.workersDown),
	}
	for _, s := range c.trials {
		if s.done {
			p.TrialsDone++
		}
	}
	for _, s := range c.points {
		if s.done {
			p.PointsDone++
		}
	}
	if n := len(c.searchRounds); n > 0 {
		p.SearchRounds = n
		p.SearchEvaluated = c.searchRounds[n-1].CumEvaluated
	}
	return p
}

// PhaseStart opens a named wall-clock phase and returns a function that
// closes it. Phases may nest or overlap; they are reported in start
// order.
func (c *Collector) PhaseStart(name string) (done func()) {
	c.mu.Lock()
	p := &PhaseMetrics{Name: name, startWall: c.clock(), open: true}
	c.phases = append(c.phases, p)
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		if p.open {
			p.WallNs = c.clock() - p.startWall
			p.open = false
		}
		c.mu.Unlock()
	}
}

// PartitionEntry is one partition's row in the metrics document. The
// adaptive fields come from the parallel engine's WindowClosed hook:
// mean widened window width over bounded windows (simulated ns), the
// number of windows that ran unbounded (free drain, excluded from the
// mean), and cross-partition events posted at barriers.
type PartitionEntry struct {
	Part           int    `json:"part"`
	Events         uint64 `json:"events"`
	BarrierStallNs int64  `json:"barrier_stall_ns"`
	Windows        uint64 `json:"windows"`

	WindowWidthMeanNs int64  `json:"window_width_mean_ns,omitempty"`
	DrainWindows      uint64 `json:"drain_windows,omitempty"`
	CrossEventsSent   uint64 `json:"cross_events_sent,omitempty"`
}

// RebalanceEntry is one committed partition-rebalance decision: Moved
// components changed partition, lowering the heaviest partition's
// measured event load from MaxLoadBefore to the predicted MaxLoadAfter.
type RebalanceEntry struct {
	Moved         int    `json:"moved"`
	MaxLoadBefore uint64 `json:"max_load_before"`
	MaxLoadAfter  uint64 `json:"max_load_after"`
}

// SpanEntry is one trial or sweep point's timing row.
type SpanEntry struct {
	Index  int   `json:"index"`
	WallNs int64 `json:"wall_ns"`
}

// RetryEntry is one trial's fault-provenance row: how many attempts
// failed (retries) or were consumed before quarantine.
type RetryEntry struct {
	Index    int `json:"index"`
	Attempts int `json:"attempts"`
}

// DivergenceEntry is one replica disagreement: of Returned replica
// journals for Shard, only Agree matched the accepted majority bytes.
type DivergenceEntry struct {
	Shard    int `json:"shard"`
	Agree    int `json:"agree"`
	Returned int `json:"returned"`
}

// SearchRoundEntry is one surrogate-guided DSE search round: the points
// the round fully simulated, the cumulative total after it, and the
// best (lowest) fully simulated mean makespan so far.
type SearchRoundEntry struct {
	Round        int     `json:"round"`
	Evaluated    int     `json:"evaluated"`
	CumEvaluated int     `json:"cum_evaluated"`
	BestMeanSec  float64 `json:"best_mean_sec"`
}

// Metrics is the versioned run-metrics document written to
// results/METRICS_<tool>.json.
type Metrics struct {
	SchemaVersion int    `json:"schema_version"`
	Tool          string `json:"tool,omitempty"`
	GoVersion     string `json:"go_version"`
	GOMAXPROCS    int    `json:"gomaxprocs"`

	EventsProcessed uint64 `json:"events_processed"`
	PeakQueueDepth  int    `json:"peak_queue_depth"`

	// EventsExchanged is the total number of events delivered across
	// partitions at window barriers; Rebalances lists committed
	// partition-rebalance passes in commit order.
	EventsExchanged uint64           `json:"events_exchanged,omitempty"`
	Rebalances      []RebalanceEntry `json:"rebalances,omitempty"`

	Phases     []PhaseMetrics     `json:"phases,omitempty"`
	Partitions []PartitionEntry   `json:"partitions,omitempty"`
	Trials     []SpanEntry        `json:"trials,omitempty"`
	Points     []SpanEntry        `json:"sweep_points,omitempty"`
	Runtime    map[string]float64 `json:"runtime_metrics,omitempty"`

	// Campaign fault provenance: indices that ended quarantined after
	// exhausting their retries, per-trial failed-attempt counts, and
	// the number of trials a resumed campaign replayed from its
	// checkpoint journal.
	FailedIndices  []int        `json:"failed_indices,omitempty"`
	TrialRetries   []RetryEntry `json:"trial_retries,omitempty"`
	ReplayedTrials int          `json:"replayed_trials,omitempty"`

	// Distributed-execution provenance: shards merged, per-shard
	// failed-attempt counts, replica divergences (majority accepted,
	// minority recorded), and workers marked lost at least once.
	ShardsDone   int               `json:"shards_done,omitempty"`
	ShardRetries []RetryEntry      `json:"shard_retries,omitempty"`
	Divergences  []DivergenceEntry `json:"shard_divergences,omitempty"`
	WorkersLost  []int             `json:"workers_lost,omitempty"`

	// Surrogate-guided DSE search provenance: one row per evaluation
	// round, in coordinator order.
	SearchRounds []SearchRoundEntry `json:"search_rounds,omitempty"`
}

// Snapshot freezes the collector's current state into a metrics
// document, including a runtime/metrics sample.
func (c *Collector) Snapshot(tool string) *Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := &Metrics{
		SchemaVersion:   MetricsSchemaVersion,
		Tool:            tool,
		GoVersion:       runtime.Version(),
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		EventsProcessed: c.eventsProcessed,
		PeakQueueDepth:  c.peakQueueDepth,
		Runtime:         runtimeSample(),
	}
	for _, p := range c.phases {
		ph := *p
		if ph.open {
			ph.WallNs = c.clock() - ph.startWall
		}
		m.Phases = append(m.Phases, ph)
	}
	m.EventsExchanged = c.eventsExchanged
	m.Rebalances = append([]RebalanceEntry(nil), c.rebalances...)
	for _, part := range sortedKeys(c.parts) {
		p := c.parts[part]
		entry := PartitionEntry{
			Part: part, Events: p.events, BarrierStallNs: p.stallNs, Windows: p.windows,
			DrainWindows: p.drainWindows, CrossEventsSent: p.crossSent,
		}
		if p.boundedWindows > 0 {
			entry.WindowWidthMeanNs = p.widthSumNs / int64(p.boundedWindows)
		}
		m.Partitions = append(m.Partitions, entry)
	}
	m.Trials = spanEntries(c.trials)
	m.Points = spanEntries(c.points)
	m.FailedIndices = sortedKeys(c.quarantined)
	if len(m.FailedIndices) == 0 {
		m.FailedIndices = nil
	}
	for _, i := range sortedKeys(c.retries) {
		m.TrialRetries = append(m.TrialRetries, RetryEntry{Index: i, Attempts: c.retries[i]})
	}
	m.ReplayedTrials = c.replayed
	m.ShardsDone = c.shardsDone
	for _, i := range sortedKeys(c.shardRetries) {
		m.ShardRetries = append(m.ShardRetries, RetryEntry{Index: i, Attempts: c.shardRetries[i]})
	}
	m.Divergences = append([]DivergenceEntry(nil), c.divergences...)
	if len(m.Divergences) == 0 {
		m.Divergences = nil
	}
	for w := range c.workersDown {
		m.WorkersLost = append(m.WorkersLost, w)
	}
	sort.Ints(m.WorkersLost)
	m.SearchRounds = append([]SearchRoundEntry(nil), c.searchRounds...)
	if len(m.SearchRounds) == 0 {
		m.SearchRounds = nil
	}
	return m
}

func sortedKeys[V any](m map[int]V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func spanEntries(m map[int]*spanMetrics) []SpanEntry {
	var out []SpanEntry
	for _, i := range sortedKeys(m) {
		if s := m[i]; s.done {
			out = append(out, SpanEntry{Index: i, WallNs: s.durNs})
		}
	}
	return out
}

// runtimeSample reads a curated set of runtime/metrics gauges. Missing
// or unexpected metrics are skipped: the set varies across Go releases
// and the document must not fail to write because of that.
func runtimeSample() map[string]float64 {
	names := []string{
		"/gc/heap/allocs:bytes",
		"/gc/heap/objects:objects",
		"/gc/cycles/total:gc-cycles",
		"/memory/classes/heap/objects:bytes",
		"/memory/classes/total:bytes",
		"/sched/goroutines:goroutines",
	}
	samples := make([]metrics.Sample, len(names))
	for i, n := range names {
		samples[i].Name = n
	}
	metrics.Read(samples)
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			out[s.Name] = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			out[s.Name] = s.Value.Float64()
		}
	}
	return out
}

// WriteMetrics writes the collector's snapshot as indented JSON.
func (c *Collector) WriteMetrics(w io.Writer, tool string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c.Snapshot(tool))
}

// MetricsPath returns the conventional metrics filename for a tool,
// e.g. MetricsPath("results", "besst-sim") = "results/METRICS_besst-sim.json".
func MetricsPath(dir, tool string) string {
	return filepath.Join(dir, fmt.Sprintf("METRICS_%s.json", tool))
}
