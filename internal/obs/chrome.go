package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry in the Chrome trace_event format's
// traceEvents array. Timestamps and durations are microseconds.
// Reference: the "Trace Event Format" document; the subset emitted here
// ("X" complete events and "i" instant events) loads in both
// chrome://tracing and Perfetto.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int32          `json:"pid"`
	TID   int32          `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	Metadata        map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the buffer's records as Chrome trace_event
// JSON. Streams map to trace processes (pid) and partitions to threads
// (tid), so a Monte Carlo campaign renders as one lane per trial per
// partition. Dispatch and barrier records become "X" complete events
// with wall durations; queued records become "i" instants. Records
// still open (WallDur < 0) are emitted with zero duration.
func (b *TraceBuffer) WriteChromeTrace(w io.Writer) error {
	recs := b.Records()
	tr := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(recs)),
		DisplayTimeUnit: "ns",
		Metadata: map[string]any{
			"source":  "besst",
			"records": len(recs),
			"dropped": b.Dropped(),
		},
	}
	for _, r := range recs {
		ev := chromeEvent{
			TS:  float64(r.Wall) / 1e3,
			PID: r.Stream,
			TID: r.Part,
		}
		switch r.Kind {
		case KindDispatch:
			ev.Name = fmt.Sprintf("dispatch c%d", r.Comp)
			ev.Phase = "X"
			if r.WallDur > 0 {
				ev.Dur = float64(r.WallDur) / 1e3
			}
			ev.Args = map[string]any{"comp": r.Comp, "sim_ns": r.Sim}
		case KindQueued:
			ev.Name = fmt.Sprintf("queue c%d", r.Comp)
			ev.Phase = "i"
			ev.Scope = "t"
			ev.Args = map[string]any{"dst": r.Comp, "sim_ns": r.Sim, "deliver_ns": r.Aux}
		case KindBarrier:
			ev.Name = "barrier wait"
			ev.Phase = "X"
			if r.WallDur > 0 {
				ev.Dur = float64(r.WallDur) / 1e3
			}
			ev.Args = map[string]any{"window_ns": r.Sim, "resume_window_ns": r.Aux}
		default:
			continue
		}
		tr.TraceEvents = append(tr.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(tr)
}
