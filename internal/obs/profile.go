package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins writing a CPU profile to path and returns a
// stop function that ends profiling and closes the file.
func StartCPUProfile(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: create cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		_ = f.Close() // the profiling error dominates
		return nil, fmt.Errorf("obs: start cpu profile: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("obs: close cpu profile: %w", err)
		}
		return nil
	}, nil
}

// WriteHeapProfile garbage-collects (so the profile reflects live
// objects) and writes a heap profile to path.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: create heap profile: %w", err)
	}
	runtime.GC()
	werr := pprof.WriteHeapProfile(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("obs: write heap profile: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("obs: close heap profile: %w", cerr)
	}
	return nil
}
