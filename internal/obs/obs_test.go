package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// fakeClock is a deterministic wall-clock source: each read advances
// time by step.
type fakeClock struct {
	now  int64
	step int64
}

func (c *fakeClock) read() int64 {
	c.now += c.step
	return c.now
}

func newTestBuffer(capacity int) (*TraceBuffer, *fakeClock) {
	b := NewTraceBuffer(capacity)
	clk := &fakeClock{step: 100}
	b.setClock(clk.read)
	return b, clk
}

func TestTraceBufferDispatchPairing(t *testing.T) {
	b, _ := newTestBuffer(16)
	b.EventDispatch(0, 0, 7, 1000)
	b.EventReturn(0, 0, 1000)
	recs := b.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != KindDispatch || r.Comp != 7 || r.Sim != 1000 {
		t.Fatalf("unexpected record %+v", r)
	}
	if r.WallDur <= 0 {
		t.Fatalf("dispatch duration not patched: %+v", r)
	}
}

func TestTraceBufferBarrierPairing(t *testing.T) {
	b, _ := newTestBuffer(16)
	// First resume has no prior arrive and must be ignored.
	b.BarrierResume(0, 1, 50)
	b.BarrierArrive(0, 1, 50)
	b.BarrierResume(0, 1, 100)
	recs := b.Records()
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Kind != KindBarrier || r.Part != 1 || r.Sim != 50 || r.Aux != 100 {
		t.Fatalf("unexpected record %+v", r)
	}
	if r.WallDur <= 0 {
		t.Fatalf("barrier stall not patched: %+v", r)
	}
}

func TestTraceBufferStreamsDoNotCrossPatch(t *testing.T) {
	b, _ := newTestBuffer(16)
	b.EventDispatch(1, 0, 1, 10)
	b.EventDispatch(2, 0, 2, 20)
	b.EventReturn(1, 0, 10)
	recs := b.Records()
	if recs[0].WallDur <= 0 {
		t.Fatalf("stream 1 dispatch not closed: %+v", recs[0])
	}
	if recs[1].WallDur != -1 {
		t.Fatalf("stream 2 dispatch wrongly closed: %+v", recs[1])
	}
}

func TestTraceBufferRingWrap(t *testing.T) {
	b, _ := newTestBuffer(4)
	for i := 0; i < 10; i++ {
		b.EventQueued(0, 0, i, int64(i), int64(i+1))
	}
	if b.Len() != 4 {
		t.Fatalf("Len = %d, want 4", b.Len())
	}
	if b.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", b.Dropped())
	}
	recs := b.Records()
	// Oldest retained record first: destinations 6,7,8,9.
	for i, r := range recs {
		if want := int32(6 + i); r.Comp != want {
			t.Fatalf("record %d has dst %d, want %d", i, r.Comp, want)
		}
	}
}

func TestTraceBufferWrapDoesNotPatchOverwrittenSlot(t *testing.T) {
	b, _ := newTestBuffer(2)
	b.EventDispatch(0, 0, 1, 10) // will be overwritten before its return
	b.EventQueued(0, 0, 2, 20, 30)
	b.EventQueued(0, 0, 3, 40, 50) // wraps, overwriting the dispatch
	b.EventReturn(0, 0, 10)        // must not corrupt the queued record
	for _, r := range b.Records() {
		if r.Kind != KindQueued {
			t.Fatalf("expected only queued records after wrap, got %+v", r)
		}
	}
}

func TestTeeFansOutAndSkipsNil(t *testing.T) {
	a, _ := newTestBuffer(8)
	b, _ := newTestBuffer(8)
	tr := Tee(nil, a, nil, b)
	tr.EventQueued(0, 0, 1, 2, 3)
	if a.Len() != 1 || b.Len() != 1 {
		t.Fatalf("tee did not fan out: a=%d b=%d", a.Len(), b.Len())
	}
	if got := Tee(nil, nil); got != nil {
		t.Fatalf("Tee of nils = %v, want nil", got)
	}
	if got := Tee(a); got != EngineTracer(a) {
		t.Fatalf("Tee of one tracer should unwrap it")
	}
}

func TestWriteChromeTrace(t *testing.T) {
	b, _ := newTestBuffer(16)
	b.EventDispatch(3, 1, 9, 100)
	b.EventReturn(3, 1, 100)
	b.EventQueued(3, 1, 4, 100, 200)
	b.BarrierArrive(3, 0, 500)
	b.BarrierResume(3, 0, 600)

	var buf bytes.Buffer
	if err := b.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string  `json:"name"`
			Phase string  `json:"ph"`
			TS    float64 `json:"ts"`
			Dur   float64 `json:"dur"`
			PID   int     `json:"pid"`
			TID   int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d trace events, want 3", len(doc.TraceEvents))
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev.Phase]++
		if ev.PID != 3 {
			t.Fatalf("event %q has pid %d, want stream 3", ev.Name, ev.PID)
		}
	}
	if phases["X"] != 2 || phases["i"] != 1 {
		t.Fatalf("phase histogram %v, want 2 X + 1 i", phases)
	}
}

func TestCollectorSnapshot(t *testing.T) {
	c := NewCollector()
	clk := &fakeClock{step: 1000}
	c.setClock(clk.read)

	done := c.PhaseStart("simulate")
	c.TrialStart(0)
	c.EventDispatch(0, 0, 1, 10)
	c.EventDispatch(0, 1, 2, 20)
	c.BarrierArrive(0, 1, 100)
	c.BarrierResume(0, 1, 200)
	c.EngineTotals(2, 5)
	c.TrialDone(0)
	c.PointStart(3)
	c.PointDone(3)
	done()

	m := c.Snapshot("unit")
	if m.SchemaVersion != MetricsSchemaVersion {
		t.Fatalf("schema version %d, want %d", m.SchemaVersion, MetricsSchemaVersion)
	}
	if m.EventsProcessed != 2 || m.PeakQueueDepth != 5 {
		t.Fatalf("totals %+v", m)
	}
	if len(m.Partitions) != 2 {
		t.Fatalf("got %d partitions, want 2", len(m.Partitions))
	}
	p1 := m.Partitions[1]
	if p1.Part != 1 || p1.Events != 1 || p1.Windows != 1 || p1.BarrierStallNs <= 0 {
		t.Fatalf("partition 1 row %+v", p1)
	}
	if len(m.Trials) != 1 || m.Trials[0].Index != 0 || m.Trials[0].WallNs <= 0 {
		t.Fatalf("trials %+v", m.Trials)
	}
	if len(m.Points) != 1 || m.Points[0].Index != 3 {
		t.Fatalf("points %+v", m.Points)
	}
	if len(m.Phases) != 1 || m.Phases[0].Name != "simulate" || m.Phases[0].WallNs <= 0 {
		t.Fatalf("phases %+v", m.Phases)
	}
	if len(m.Runtime) == 0 {
		t.Fatalf("runtime/metrics sample is empty")
	}
}

func TestWriteMetricsRoundTrip(t *testing.T) {
	c := NewCollector()
	c.EngineTotals(42, 7)
	var buf bytes.Buffer
	if err := c.WriteMetrics(&buf, "unit"); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	var m Metrics
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("metrics is not valid JSON: %v", err)
	}
	if m.SchemaVersion != MetricsSchemaVersion || m.Tool != "unit" || m.EventsProcessed != 42 {
		t.Fatalf("round-trip mismatch: %+v", m)
	}
}

func TestMetricsPath(t *testing.T) {
	if got := MetricsPath("results", "besst-sim"); got != "results/METRICS_besst-sim.json" {
		t.Fatalf("MetricsPath = %q", got)
	}
}

func TestCollectorAdaptiveMetrics(t *testing.T) {
	c := NewCollector()
	// Partition 0: two bounded windows (widths 100 and 300) and one free
	// drain; partition 1: cross traffic only.
	c.WindowClosed(0, 0, 100, 100, 3, 2)
	c.WindowClosed(0, 0, 400, 300, 1, 0)
	c.WindowClosed(0, 0, -1, -1, 5, 1)
	c.WindowClosed(0, 1, 400, 300, 2, 4)
	c.RebalanceApplied(0, 3, 84, 43)

	m := c.Snapshot("unit")
	if m.EventsExchanged != 7 {
		t.Fatalf("events exchanged = %d, want 7", m.EventsExchanged)
	}
	if len(m.Partitions) != 2 {
		t.Fatalf("got %d partitions, want 2", len(m.Partitions))
	}
	p0 := m.Partitions[0]
	if p0.WindowWidthMeanNs != 200 || p0.DrainWindows != 1 || p0.CrossEventsSent != 3 {
		t.Fatalf("partition 0 adaptive row %+v, want mean 200, 1 drain, 3 cross", p0)
	}
	p1 := m.Partitions[1]
	if p1.WindowWidthMeanNs != 300 || p1.DrainWindows != 0 || p1.CrossEventsSent != 4 {
		t.Fatalf("partition 1 adaptive row %+v, want mean 300, 0 drains, 4 cross", p1)
	}
	if len(m.Rebalances) != 1 {
		t.Fatalf("rebalances %+v, want one entry", m.Rebalances)
	}
	r := m.Rebalances[0]
	if r.Moved != 3 || r.MaxLoadBefore != 84 || r.MaxLoadAfter != 43 {
		t.Fatalf("rebalance entry %+v", r)
	}
}

func TestTeeForwardsAdaptiveHooks(t *testing.T) {
	buf, _ := newTestBuffer(8) // does not implement AdaptiveTracer
	c := NewCollector()
	tr := Tee(buf, c)
	a, ok := tr.(AdaptiveTracer)
	if !ok {
		t.Fatal("tee of buffer+collector does not expose the adaptive extension")
	}
	a.WindowClosed(0, 0, 50, 25, 1, 6)
	a.RebalanceApplied(0, 1, 10, 5)
	m := c.Snapshot("unit")
	if m.EventsExchanged != 6 || len(m.Rebalances) != 1 {
		t.Fatalf("collector missed forwarded adaptive hooks: %+v", m)
	}
	if buf.Len() != 0 {
		t.Fatalf("trace buffer grew %d records from adaptive hooks", buf.Len())
	}
}

// TestCollectorProgress exercises the lightweight progress snapshot the
// service layer polls: started/done span counts, engine totals, and
// fault provenance, without a full Snapshot.
func TestCollectorProgress(t *testing.T) {
	c := NewCollector()
	c.TrialStart(0)
	c.TrialDone(0)
	c.TrialStart(1)
	c.PointStart(0)
	c.PointDone(0)
	c.EngineTotals(123, 4)
	c.TrialRetry(1, 1)
	c.TrialQuarantined(2, 3)
	c.TrialsReplayed(5)

	p := c.Progress()
	want := Progress{
		TrialsStarted: 2, TrialsDone: 1,
		PointsStarted: 1, PointsDone: 1,
		EventsProcessed: 123,
		Retries:         1, Quarantined: 1, Replayed: 5,
	}
	if p != want {
		t.Fatalf("Progress = %+v, want %+v", p, want)
	}
}

// TestCollectorSearchRounds exercises the surrogate-search metrics:
// per-round entries land in the metrics document in order, and the
// progress snapshot summarizes round count and cumulative evaluations.
func TestCollectorSearchRounds(t *testing.T) {
	c := NewCollector()
	c.SearchRound(1, 10, 10, 0.5)
	c.SearchRound(2, 4, 14, 0.25)

	m := c.Snapshot("unit")
	if len(m.SearchRounds) != 2 {
		t.Fatalf("got %d search rounds, want 2", len(m.SearchRounds))
	}
	r := m.SearchRounds[1]
	if r.Round != 2 || r.Evaluated != 4 || r.CumEvaluated != 14 || r.BestMeanSec != 0.25 {
		t.Fatalf("round entry %+v", r)
	}

	p := c.Progress()
	if p.SearchRounds != 2 || p.SearchEvaluated != 14 {
		t.Fatalf("progress %+v, want 2 rounds, 14 evaluated", p)
	}

	// A collector with no search activity keeps the fields absent.
	if m := NewCollector().Snapshot("unit"); m.SearchRounds != nil {
		t.Fatalf("empty collector emitted search rounds: %+v", m.SearchRounds)
	}
}
