package fti

import "fmt"

// FailureKind distinguishes failures that keep node-local storage
// readable (process crash, soft reboot) from failures that lose it
// (hardware replacement). Level 1 can only recover from the former.
type FailureKind int

const (
	// SoftFailure halts the node's progress but its local storage
	// survives (the paper's L1 recovery scenario: "restart from the
	// most recent successful checkpoint on all nodes").
	SoftFailure FailureKind = iota
	// HardFailure loses the node and everything stored on it.
	HardFailure
)

func (k FailureKind) String() string {
	if k == SoftFailure {
		return "soft"
	}
	return "hard"
}

// Failure records one failed node.
type Failure struct {
	Node int
	Kind FailureKind
}

// Recoverable reports whether a checkpoint taken at the given level can
// restore the application after the given concurrent failures, under
// FTI's semantics:
//
//	L1: survives soft failures only (local files must still be readable).
//	L2: additionally survives hard failures whose partner node (the
//	    ring successor holding the copy) is still alive.
//	L3: survives up to ParityShards() hard failures per group.
//	L4: survives any node failures (checkpoints live on the PFS).
func (c Config) Recoverable(level Level, failures []Failure) bool {
	if !level.Valid() {
		panic(fmt.Sprintf("fti: %v", level))
	}
	if len(failures) == 0 {
		return true
	}
	failed := make(map[int]FailureKind, len(failures))
	for _, f := range failures {
		if f.Node < 0 {
			panic("fti: negative node in failure set")
		}
		// A hard failure dominates a soft failure of the same node.
		if prev, ok := failed[f.Node]; !ok || prev == SoftFailure {
			failed[f.Node] = f.Kind
		}
	}

	switch level {
	case L1:
		for _, kind := range failed {
			if kind == HardFailure {
				return false
			}
		}
		return true
	case L2:
		for node, kind := range failed {
			if kind == SoftFailure {
				continue
			}
			partner := c.PartnerOf(node)
			if pk, dead := failed[partner]; dead && pk == HardFailure {
				return false // the copy died with the partner
			}
		}
		return true
	case L3:
		perGroup := map[int]int{}
		for node, kind := range failed {
			if kind == HardFailure {
				perGroup[c.GroupOf(node)]++
			}
		}
		limit := c.ParityShards()
		for _, n := range perGroup {
			if n > limit {
				return false
			}
		}
		return true
	default: // L4
		return true
	}
}

// BestRecoveryLevel returns the lowest (cheapest) level among enabled
// that can recover from the failures, or 0 if none can. FTI restores
// from the cheapest sufficient level, falling back upward.
func (c Config) BestRecoveryLevel(enabled []Level, failures []Failure) Level {
	best := Level(0)
	for _, l := range enabled {
		if !l.Valid() {
			panic(fmt.Sprintf("fti: %v", l))
		}
		if c.Recoverable(l, failures) && (best == 0 || l < best) {
			best = l
		}
	}
	return best
}
