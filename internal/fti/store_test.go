package fti

import (
	"testing"

	"besst/internal/stats"
)

func storeState(rng *stats.RNG, nodes, size int) [][]byte {
	state := make([][]byte, nodes)
	for i := range state {
		state[i] = make([]byte, size)
		for j := range state[i] {
			state[i][j] = byte(rng.Intn(256))
		}
	}
	return state
}

func TestStoreL1SoftFailureRecovers(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	s := NewStore(cfg, 8)
	state := storeState(stats.NewRNG(1), 8, 64)
	s.Checkpoint(L1, state)
	s.Fail([]Failure{{Node: 3, Kind: SoftFailure}})
	got, err := s.Recover(L1)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(got, state) {
		t.Fatal("recovered state mismatch")
	}
}

func TestStoreL1HardFailureFails(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	s := NewStore(cfg, 8)
	s.Checkpoint(L1, storeState(stats.NewRNG(2), 8, 32))
	s.Fail([]Failure{{Node: 0, Kind: HardFailure}})
	if _, err := s.Recover(L1); err == nil {
		t.Fatal("L1 should not survive hard failure")
	}
}

func TestStoreL2PartnerRecovery(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	s := NewStore(cfg, 8)
	state := storeState(stats.NewRNG(3), 8, 50)
	s.Checkpoint(L2, state)
	s.Fail([]Failure{{Node: 0, Kind: HardFailure}, {Node: 5, Kind: HardFailure}})
	got, err := s.Recover(L2)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(got, state) {
		t.Fatal("L2 recovery mismatch")
	}
}

func TestStoreL2PartnerPairLost(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	s := NewStore(cfg, 8)
	s.Checkpoint(L2, storeState(stats.NewRNG(4), 8, 50))
	// Node 0's copy lives on node 1; kill both.
	s.Fail([]Failure{{Node: 0, Kind: HardFailure}, {Node: 1, Kind: HardFailure}})
	if _, err := s.Recover(L2); err == nil {
		t.Fatal("L2 should fail when a node and its partner both die")
	}
}

func TestStoreL3RecoversUpToParity(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2} // parity 2 per group
	s := NewStore(cfg, 8)
	state := storeState(stats.NewRNG(5), 8, 100)
	s.Checkpoint(L3, state)
	// Two hard failures in group 0 (its parity budget), one in group 1.
	s.Fail([]Failure{
		{Node: 0, Kind: HardFailure}, {Node: 1, Kind: HardFailure},
		{Node: 4, Kind: HardFailure},
	})
	got, err := s.Recover(L3)
	if err != nil {
		t.Fatal(err)
	}
	// Data nodes (first k=2 of each group) must round-trip exactly.
	for _, n := range []int{0, 1, 4, 5} {
		if len(got[n]) < len(state[n]) || string(got[n][:len(state[n])]) != string(state[n]) {
			t.Fatalf("node %d data not recovered", n)
		}
	}
}

func TestStoreL3BeyondParityFails(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	s := NewStore(cfg, 8)
	s.Checkpoint(L3, storeState(stats.NewRNG(6), 8, 100))
	s.Fail([]Failure{
		{Node: 0, Kind: HardFailure}, {Node: 1, Kind: HardFailure},
		{Node: 2, Kind: HardFailure},
	})
	if _, err := s.Recover(L3); err == nil {
		t.Fatal("3 losses in a 4-group should defeat L3")
	}
}

func TestStoreL3RepairedParitySurvivesNextRound(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	s := NewStore(cfg, 8)
	state := storeState(stats.NewRNG(7), 8, 80)
	s.Checkpoint(L3, state)
	// Round 1: lose a parity node; recovery re-encodes it.
	s.Fail([]Failure{{Node: 3, Kind: HardFailure}})
	if _, err := s.Recover(L3); err != nil {
		t.Fatal(err)
	}
	// Round 2: lose two different nodes; full redundancy must be back.
	s.Fail([]Failure{{Node: 0, Kind: HardFailure}, {Node: 2, Kind: HardFailure}})
	got, err := s.Recover(L3)
	if err != nil {
		t.Fatalf("repaired group should survive a second round: %v", err)
	}
	if len(got[0]) < len(state[0]) || string(got[0][:len(state[0])]) != string(state[0]) {
		t.Fatal("node 0 data wrong after second recovery")
	}
}

func TestStoreL4SurvivesEverything(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	s := NewStore(cfg, 8)
	state := storeState(stats.NewRNG(8), 8, 40)
	s.Checkpoint(L4, state)
	var all []Failure
	for n := 0; n < 8; n++ {
		all = append(all, Failure{Node: n, Kind: HardFailure})
	}
	s.Fail(all)
	got, err := s.Recover(L4)
	if err != nil {
		t.Fatal(err)
	}
	if !Verify(got, state) {
		t.Fatal("PFS recovery mismatch")
	}
}

func TestStoreRecoverWithoutCheckpoint(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	s := NewStore(cfg, 8)
	if _, err := s.Recover(L1); err == nil {
		t.Fatal("recover before any checkpoint should fail")
	}
}

// TestStoreAgreesWithRecoverable is the integration property: for
// random failure sets, the functional store recovers exactly when the
// analytical Recoverable predicate says it should (for data-complete
// levels L1, L3, L4; L2's predicate conservatively ignores that a
// node's own local copy can also be lost to its partner's position).
func TestStoreAgreesWithRecoverable(t *testing.T) {
	cfg := Config{GroupSize: 4, NodeSize: 2}
	rng := stats.NewRNG(9)
	for trial := 0; trial < 200; trial++ {
		var fs []Failure
		for n := 0; n < 8; n++ {
			switch rng.Intn(3) {
			case 0:
				fs = append(fs, Failure{Node: n, Kind: HardFailure})
			case 1:
				fs = append(fs, Failure{Node: n, Kind: SoftFailure})
			}
		}
		for _, level := range []Level{L1, L3, L4} {
			s := NewStore(cfg, 8)
			s.Checkpoint(level, storeState(rng, 8, 30))
			s.Fail(fs)
			_, err := s.Recover(level)
			want := cfg.Recoverable(level, fs)
			if (err == nil) != want {
				t.Fatalf("trial %d level %d: store=%v predicate=%v failures=%v",
					trial, int(level), err == nil, want, fs)
			}
		}
	}
}

func TestNewStorePanicsOnBadNodeCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewStore(Config{GroupSize: 4, NodeSize: 2}, 6)
}
