// Package fti models the Fault Tolerance Interface (FTI) multi-level
// checkpointing library used in the paper's case study (Bautista-Gomez
// et al., SC'11). It reproduces FTI's four checkpoint levels (paper
// Table I), its group structure, the parameter rules the case study
// relies on (ranks divisible by group_size*node_size), the per-level
// cost structure, and the per-level recoverability semantics used by
// fault-injection simulations.
package fti

import (
	"fmt"

	"besst/internal/erasure"
	"besst/internal/machine"
	"besst/internal/network"
)

// Level identifies one of FTI's four checkpoint levels.
type Level int

// The four FTI checkpoint levels of Table I.
const (
	// L1 saves the checkpoint file on the local node.
	L1 Level = 1
	// L2 saves locally and sends a copy to the neighbor node in the
	// group (partner copy).
	L2 Level = 2
	// L3 encodes the group's checkpoint files with a Reed-Solomon
	// erasure code, partitioned across the group.
	L3 Level = 3
	// L4 flushes all checkpoint files to the parallel file system.
	L4 Level = 4
)

// String returns the Table I description of the level.
func (l Level) String() string {
	switch l {
	case L1:
		return "L1: checkpoint file saved on local node"
	case L2:
		return "L2: saved on local node and sent to neighbor node in group"
	case L3:
		return "L3: checkpoint files encoded via Reed-Solomon erasure code"
	case L4:
		return "L4: all checkpoint files flushed to parallel file system"
	default:
		return fmt.Sprintf("invalid FTI level %d", int(l))
	}
}

// Valid reports whether l is one of the four defined levels.
func (l Level) Valid() bool { return l >= L1 && l <= L4 }

// Config mirrors the FTI parameters the case study exercises.
type Config struct {
	// GroupSize is the number of nodes per FTI group (paper: 4).
	GroupSize int
	// NodeSize is the number of application processes per node
	// (paper: 2).
	NodeSize int
}

// Validate panics on a non-positive configuration.
func (c Config) Validate() {
	if c.GroupSize < 2 {
		panic("fti: group size must be at least 2")
	}
	if c.NodeSize < 1 {
		panic("fti: node size must be at least 1")
	}
}

// CheckRanks returns an error unless ranks is a positive multiple of
// GroupSize*NodeSize — FTI's launch requirement quoted in the paper.
func (c Config) CheckRanks(ranks int) error {
	c.Validate()
	unit := c.GroupSize * c.NodeSize
	if ranks <= 0 || ranks%unit != 0 {
		return fmt.Errorf("fti: ranks %d must be a positive multiple of group_size*node_size = %d", ranks, unit)
	}
	return nil
}

// NodesFor returns the number of nodes used by `ranks` processes.
func (c Config) NodesFor(ranks int) int {
	if err := c.CheckRanks(ranks); err != nil {
		panic(err)
	}
	return ranks / c.NodeSize
}

// GroupOf returns the FTI group index of a node.
func (c Config) GroupOf(node int) int { return node / c.GroupSize }

// PartnerOf returns the node holding node's L2 partner copy: the next
// node in a ring within the group.
func (c Config) PartnerOf(node int) int {
	g := c.GroupOf(node)
	base := g * c.GroupSize
	return base + (node-base+1)%c.GroupSize
}

// Groups returns the number of groups for the given rank count.
func (c Config) Groups(ranks int) int {
	return c.NodesFor(ranks) / c.GroupSize
}

// ParityShards returns the number of Reed-Solomon parity shards FTI L3
// provisions per group: floor(groupSize/2), matching the paper's "up to
// 1/2 of the nodes' concurrent failures ... in one group" guarantee.
func (c Config) ParityShards() int { return c.GroupSize / 2 }

// L3Coder returns the Reed-Solomon coder an FTI group of this
// configuration uses: data shards from the groupSize - parity "data"
// members, parity spread so any ParityShards() losses are recoverable.
// FTI actually encodes each node's file across the group; modeling the
// group as one (k = groupSize - m, m = parity) code preserves the
// recoverability threshold.
func (c Config) L3Coder() *erasure.Coder {
	c.Validate()
	m := c.ParityShards()
	k := c.GroupSize - m
	return erasure.NewCoder(k, m)
}

// CostModel computes first-principles checkpoint-instance times for a
// machine. The ground-truth emulator uses it (with noise added) as the
// "real machine" behaviour the BE-SST workflow benchmarks against, and
// fault-injection runs use it to charge restart I/O.
type CostModel struct {
	Machine *machine.Machine
	Config  Config
	net     *network.Model // cached network cost model
	// EncodeBandwidth is the Reed-Solomon encode throughput in
	// bytes/second used for the L3 compute term. Calibrate from
	// erasure.Coder.EncodeThroughput or a machine estimate.
	EncodeBandwidth float64
	// CoordPerRank, CoordPerStage, and CoordPerRankByte parameterize
	// the coordinated-checkpoint protocol cost:
	//
	//	coord = CoordPerRank*ranks
	//	      + CoordPerStage*log2(ranks)
	//	      + CoordPerRankByte*ranks*bytesPerRank
	//
	// The per-rank term covers rank-serialized metadata handling at
	// the FTI head processes, the log term the synchronization tree,
	// and the rank-byte term the contention on shared paths (fabric,
	// I/O backplane) that grows with both the level of parallelism
	// and the volume written. The strong scaling of checkpoint cost
	// with ranks AND data the paper observes ("FTI being a
	// coordinated checkpointing solution that touches storage and
	// communication, thus scaling with level of parallelism and
	// amount of data") comes from the last term.
	CoordPerRank     float64
	CoordPerStage    float64
	CoordPerRankByte float64
}

// NewCostModel returns a cost model with encode bandwidth defaulted to a
// per-core streaming estimate derived from the machine's compute rate.
func NewCostModel(m *machine.Machine, cfg Config) *CostModel {
	cfg.Validate()
	return &CostModel{
		Machine: m,
		Config:  cfg,
		net:     m.Network(),
		// RS encoding runs at a few bytes per flop per parity shard;
		// 1 GB/s per core is a serviceable default for Xeon-class
		// nodes and is overridden by calibration in the workflow.
		EncodeBandwidth:  1e9 * m.CoreGFLOPS / 16,
		CoordPerRank:     2e-6,
		CoordPerStage:    2e-4,
		CoordPerRankByte: 4e-11,
	}
}

// log2 of an int, ceiling; 0 for p <= 1.
func log2ceil(p int) int {
	n := 0
	v := 1
	for v < p {
		v <<= 1
		n++
	}
	return n
}

// coordination returns the coordinated-checkpoint protocol cost for
// `ranks` processes each persisting bytesPerRank.
func (cm *CostModel) coordination(ranks int, bytesPerRank int64) float64 {
	return cm.CoordPerRank*float64(ranks) +
		cm.CoordPerStage*float64(log2ceil(ranks)) +
		cm.CoordPerRankByte*float64(ranks)*float64(bytesPerRank)
}

// InstanceTime returns the time in seconds for one coordinated
// checkpoint instance at the given level, with ranks processes and
// bytesPerRank of protected state per rank. It is the quantity Fig 5
// and Fig 6 plot against problem size and rank count.
func (cm *CostModel) InstanceTime(level Level, ranks int, bytesPerRank int64) float64 {
	if !level.Valid() {
		panic(fmt.Sprintf("fti: %v", level))
	}
	if bytesPerRank < 0 {
		panic("fti: negative checkpoint size")
	}
	if err := cm.Config.CheckRanks(ranks); err != nil {
		panic(err)
	}
	rpn := cm.Config.NodeSize
	nodeBytes := bytesPerRank * int64(rpn)
	coord := cm.coordination(ranks, bytesPerRank)

	// Every level begins by materializing the local checkpoint file.
	local := cm.Machine.Disk.WriteTime(bytesPerRank, rpn)

	switch level {
	case L1:
		return coord + local
	case L2:
		// Partner copy: each node streams its node-level file to its
		// ring successor while receiving its predecessor's, then
		// persists the partner copy locally. All groups transfer
		// simultaneously, but partners sit on distinct node uplinks,
		// so the transfer runs at point-to-point speed.
		xfer := cm.net.PointToPoint(0, 1, nodeBytes)
		partnerWrite := cm.Machine.Disk.WriteTime(bytesPerRank, 2*rpn)
		return coord + local + xfer + partnerWrite
	case L3:
		// Reed-Solomon: stream the group's files through the encoder
		// (compute term), exchange encoded chunks within the group
		// (reduce-scatter-like: groupSize-1 fragments of
		// nodeBytes/groupSize each), and persist the encoded blocks.
		// The persistence runs alongside the group exchange with the
		// same doubled writer pressure as L2's partner copy — FTI's
		// published measurements show L3 consistently above L2, the
		// Table I overhead progression this model preserves.
		m := cm.Config.ParityShards()
		encode := float64(nodeBytes) * float64(m) / cm.EncodeBandwidth
		frag := nodeBytes / int64(cm.Config.GroupSize)
		xfer := float64(cm.Config.GroupSize-1) * cm.net.PointToPoint(0, 1, frag)
		encWrite := cm.Machine.Disk.WriteTime(bytesPerRank, 2*rpn)
		return coord + local + encode + xfer + encWrite
	default: // L4
		// All ranks flush to the PFS concurrently.
		flush := cm.Machine.PFS.WriteTime(bytesPerRank, ranks)
		return coord + local + flush
	}
}

// RestartTime returns the time to restore application state at the
// given level after a failure: read back the checkpoint (from partner /
// decoded shards / PFS as appropriate) plus node recovery overhead.
func (cm *CostModel) RestartTime(level Level, ranks int, bytesPerRank int64) float64 {
	if !level.Valid() {
		panic(fmt.Sprintf("fti: %v", level))
	}
	if err := cm.Config.CheckRanks(ranks); err != nil {
		panic(err)
	}
	rpn := cm.Config.NodeSize
	nodeBytes := bytesPerRank * int64(rpn)
	base := cm.Machine.RecoverySeconds

	switch level {
	case L1:
		return base + cm.Machine.Disk.ReadTime(bytesPerRank, rpn)
	case L2:
		return base + cm.Machine.Disk.ReadTime(bytesPerRank, rpn) + cm.net.PointToPoint(0, 1, nodeBytes)
	case L3:
		m := cm.Config.ParityShards()
		decode := float64(nodeBytes) * float64(m) / cm.EncodeBandwidth
		frag := nodeBytes / int64(cm.Config.GroupSize)
		return base + decode + float64(cm.Config.GroupSize-1)*cm.net.PointToPoint(0, 1, frag) +
			cm.Machine.Disk.ReadTime(bytesPerRank, rpn)
	default: // L4
		return base + cm.Machine.PFS.ReadTime(bytesPerRank, ranks)
	}
}
