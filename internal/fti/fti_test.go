package fti

import (
	"strings"
	"testing"
	"testing/quick"

	"besst/internal/machine"
)

func caseStudyConfig() Config { return Config{GroupSize: 4, NodeSize: 2} }

func testCostModel() *CostModel {
	return NewCostModel(machine.Quartz(), caseStudyConfig())
}

func TestLevelStrings(t *testing.T) {
	for l := L1; l <= L4; l++ {
		if !l.Valid() {
			t.Fatalf("level %d should be valid", l)
		}
		if s := l.String(); s == "" || strings.Contains(s, "invalid") {
			t.Fatalf("bad string for %d: %q", l, s)
		}
	}
	if Level(0).Valid() || Level(5).Valid() {
		t.Fatal("out-of-range levels reported valid")
	}
}

func TestCheckRanksDivisibility(t *testing.T) {
	c := caseStudyConfig() // unit = 8
	// Paper: every perfect cube divisible by 8 works.
	for _, r := range []int{8, 64, 216, 512, 1000} {
		if err := c.CheckRanks(r); err != nil {
			t.Fatalf("ranks %d should be accepted: %v", r, err)
		}
	}
	for _, r := range []int{0, -8, 27, 125, 343} { // odd cubes not divisible by 8
		if err := c.CheckRanks(r); err == nil {
			t.Fatalf("ranks %d should be rejected", r)
		}
	}
}

func TestNodesForAndGroups(t *testing.T) {
	c := caseStudyConfig()
	if c.NodesFor(64) != 32 {
		t.Fatalf("nodes = %d, want 32", c.NodesFor(64))
	}
	if c.Groups(64) != 8 {
		t.Fatalf("groups = %d, want 8", c.Groups(64))
	}
}

func TestPartnerRing(t *testing.T) {
	c := caseStudyConfig()
	// Group 0 holds nodes 0..3; the ring wraps.
	if c.PartnerOf(0) != 1 || c.PartnerOf(1) != 2 || c.PartnerOf(3) != 0 {
		t.Fatal("partner ring wrong in group 0")
	}
	// Group 1 holds nodes 4..7.
	if c.PartnerOf(7) != 4 {
		t.Fatalf("partner of 7 = %d, want 4", c.PartnerOf(7))
	}
	if c.GroupOf(5) != 1 {
		t.Fatal("group assignment wrong")
	}
}

func TestPartnerStaysInGroupProperty(t *testing.T) {
	c := Config{GroupSize: 5, NodeSize: 3}
	f := func(nRaw uint16) bool {
		n := int(nRaw % 1000)
		return c.GroupOf(c.PartnerOf(n)) == c.GroupOf(n) && c.PartnerOf(n) != n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParityShards(t *testing.T) {
	if (Config{GroupSize: 4, NodeSize: 1}).ParityShards() != 2 {
		t.Fatal("group 4 should give 2 parity shards")
	}
	if (Config{GroupSize: 5, NodeSize: 1}).ParityShards() != 2 {
		t.Fatal("group 5 should give 2 parity shards")
	}
}

func TestL3CoderMatchesGroup(t *testing.T) {
	c := caseStudyConfig()
	coder := c.L3Coder()
	if coder.DataShards()+coder.ParityShards() != c.GroupSize {
		t.Fatal("coder shards should sum to group size")
	}
	if coder.ParityShards() != c.ParityShards() {
		t.Fatal("parity mismatch")
	}
}

func TestInstanceTimeLevelOrdering(t *testing.T) {
	cm := testCostModel()
	const bytesPerRank = 50 << 20
	// At scale the paper's "overhead grows with level" ordering holds
	// strictly: the PFS is shared by every rank while L1-L3 costs are
	// group-local.
	const ranks = 1000
	t1 := cm.InstanceTime(L1, ranks, bytesPerRank)
	t2 := cm.InstanceTime(L2, ranks, bytesPerRank)
	t3 := cm.InstanceTime(L3, ranks, bytesPerRank)
	t4 := cm.InstanceTime(L4, ranks, bytesPerRank)
	if !(t1 < t2 && t2 < t3 && t3 < t4) {
		t.Fatalf("level ordering violated at scale: %v %v %v %v", t1, t2, t3, t4)
	}
	// At small scale L4 may legitimately be cheap (few writers on a
	// large PFS), but L1 < L2 < L3 is scale-independent and L1 is
	// always the cheapest level.
	for _, small := range []int{8, 64} {
		s1 := cm.InstanceTime(L1, small, bytesPerRank)
		s2 := cm.InstanceTime(L2, small, bytesPerRank)
		s3 := cm.InstanceTime(L3, small, bytesPerRank)
		s4 := cm.InstanceTime(L4, small, bytesPerRank)
		if !(s1 < s2 && s2 < s3) {
			t.Fatalf("ranks %d: L1..L3 ordering violated: %v %v %v", small, s1, s2, s3)
		}
		if s4 <= s1 {
			t.Fatalf("ranks %d: L4 %v should still exceed L1 %v", small, s4, s1)
		}
	}
}

func TestInstanceTimeGrowsWithData(t *testing.T) {
	cm := testCostModel()
	for l := L1; l <= L4; l++ {
		small := cm.InstanceTime(l, 64, 10<<20)
		big := cm.InstanceTime(l, 64, 100<<20)
		if big <= small {
			t.Fatalf("level %d not monotone in data size", l)
		}
	}
}

func TestInstanceTimeGrowsWithRanks(t *testing.T) {
	cm := testCostModel()
	for l := L1; l <= L4; l++ {
		few := cm.InstanceTime(l, 8, 50<<20)
		many := cm.InstanceTime(l, 1000, 50<<20)
		if many < few {
			t.Fatalf("level %d decreased with ranks: %v -> %v", l, few, many)
		}
	}
	// L4 must grow substantially with ranks (PFS sharing).
	if cm.InstanceTime(L4, 1000, 50<<20) < 2*cm.InstanceTime(L4, 8, 50<<20) {
		t.Fatal("L4 should be strongly rank-dependent")
	}
}

func TestInstanceTimeBadArgsPanics(t *testing.T) {
	cm := testCostModel()
	cases := []func(){
		func() { cm.InstanceTime(Level(9), 64, 1) },
		func() { cm.InstanceTime(L1, 64, -1) },
		func() { cm.InstanceTime(L1, 7, 1) }, // not multiple of 8
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestRestartTimeIncludesRecovery(t *testing.T) {
	cm := testCostModel()
	for l := L1; l <= L4; l++ {
		rt := cm.RestartTime(l, 64, 50<<20)
		if rt < cm.Machine.RecoverySeconds {
			t.Fatalf("level %d restart %v below base recovery", l, rt)
		}
	}
}

func TestRecoverableL1(t *testing.T) {
	c := caseStudyConfig()
	if !c.Recoverable(L1, []Failure{{Node: 3, Kind: SoftFailure}}) {
		t.Fatal("L1 should survive soft failure")
	}
	if c.Recoverable(L1, []Failure{{Node: 3, Kind: HardFailure}}) {
		t.Fatal("L1 should not survive hard failure")
	}
	if !c.Recoverable(L1, nil) {
		t.Fatal("no failures is always recoverable")
	}
}

func TestRecoverableL2PartnerSemantics(t *testing.T) {
	c := caseStudyConfig()
	// Node 0 dies hard; partner (node 1) alive -> recoverable.
	if !c.Recoverable(L2, []Failure{{Node: 0, Kind: HardFailure}}) {
		t.Fatal("L2 should survive single hard failure")
	}
	// Node 0 and its partner node 1 both die hard -> copy lost.
	if c.Recoverable(L2, []Failure{
		{Node: 0, Kind: HardFailure}, {Node: 1, Kind: HardFailure},
	}) {
		t.Fatal("L2 should fail when partner also dies")
	}
	// Node 0 hard + node 2 hard (not partners) -> both copies live.
	if !c.Recoverable(L2, []Failure{
		{Node: 0, Kind: HardFailure}, {Node: 2, Kind: HardFailure},
	}) {
		t.Fatal("L2 should survive non-adjacent hard failures")
	}
	// Partner only soft-failed: its storage survives.
	if !c.Recoverable(L2, []Failure{
		{Node: 0, Kind: HardFailure}, {Node: 1, Kind: SoftFailure},
	}) {
		t.Fatal("L2 should survive when partner fails softly")
	}
}

func TestRecoverableL3GroupThreshold(t *testing.T) {
	c := caseStudyConfig() // groups of 4, parity 2
	two := []Failure{{Node: 0, Kind: HardFailure}, {Node: 1, Kind: HardFailure}}
	if !c.Recoverable(L3, two) {
		t.Fatal("L3 should survive 2 failures in a group of 4")
	}
	three := append(two, Failure{Node: 2, Kind: HardFailure})
	if c.Recoverable(L3, three) {
		t.Fatal("L3 should not survive 3 failures in a group of 4")
	}
	// Two failures in each of two different groups: fine.
	spread := []Failure{
		{Node: 0, Kind: HardFailure}, {Node: 1, Kind: HardFailure},
		{Node: 4, Kind: HardFailure}, {Node: 5, Kind: HardFailure},
	}
	if !c.Recoverable(L3, spread) {
		t.Fatal("L3 should survive per-group-bounded failures")
	}
}

func TestRecoverableL4Always(t *testing.T) {
	c := caseStudyConfig()
	lots := make([]Failure, 20)
	for i := range lots {
		lots[i] = Failure{Node: i, Kind: HardFailure}
	}
	if !c.Recoverable(L4, lots) {
		t.Fatal("L4 should survive anything")
	}
}

func TestRecoverableLevelMonotoneProperty(t *testing.T) {
	// If a lower level can recover a failure set, L4 always can; and
	// L3 recovery implies L4 recovery trivially. Check the specific
	// monotonicity L1 => L2 (partner copy only adds protection).
	c := caseStudyConfig()
	f := func(nodesRaw []uint8, kindsRaw []bool) bool {
		n := len(nodesRaw)
		if len(kindsRaw) < n {
			n = len(kindsRaw)
		}
		fs := make([]Failure, 0, n)
		for i := 0; i < n; i++ {
			k := SoftFailure
			if kindsRaw[i] {
				k = HardFailure
			}
			fs = append(fs, Failure{Node: int(nodesRaw[i] % 32), Kind: k})
		}
		if c.Recoverable(L1, fs) && !c.Recoverable(L2, fs) {
			return false
		}
		return c.Recoverable(L4, fs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBestRecoveryLevel(t *testing.T) {
	c := caseStudyConfig()
	enabled := []Level{L1, L2, L4}
	soft := []Failure{{Node: 0, Kind: SoftFailure}}
	if got := c.BestRecoveryLevel(enabled, soft); got != L1 {
		t.Fatalf("got %v, want L1", got)
	}
	hard := []Failure{{Node: 0, Kind: HardFailure}}
	if got := c.BestRecoveryLevel(enabled, hard); got != L2 {
		t.Fatalf("got %v, want L2", got)
	}
	both := []Failure{{Node: 0, Kind: HardFailure}, {Node: 1, Kind: HardFailure}}
	if got := c.BestRecoveryLevel(enabled, both); got != L4 {
		t.Fatalf("got %v, want L4", got)
	}
	if got := c.BestRecoveryLevel([]Level{L1}, hard); got != 0 {
		t.Fatalf("got %v, want 0 (unrecoverable)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	for _, c := range []Config{{GroupSize: 1, NodeSize: 1}, {GroupSize: 4, NodeSize: 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %+v", c)
				}
			}()
			c.Validate()
		}()
	}
}
