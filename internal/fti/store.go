package fti

import (
	"bytes"
	"fmt"
)

// Store is a functional model of FTI's checkpoint storage: it holds the
// actual protected bytes of every rank at every level, applies node
// failures to that storage, and recovers what the level's redundancy
// allows — Level 3 through the real Reed-Solomon coder. The simulator
// uses the cost model for timing; fault-injection tests use Store to
// verify that the *recoverability* semantics the cost model assumes are
// actually achievable with the implemented mechanisms.
type Store struct {
	cfg   Config
	nodes int

	// local[node] is the node-level checkpoint file (the concatenated
	// protected state of its ranks); nil if never written or lost.
	local [][]byte
	// partner[node] is the copy of PartnerOf^-1(node)'s file that L2
	// placed on this node.
	partner [][]byte
	// encoded[node] is the Reed-Solomon shard stored on this node by
	// L3 (data shard or parity shard, by group position).
	encoded [][]byte
	// shardSize is the per-node shard length of the last L3 encode.
	shardSize int
	// pfs[node] is the copy L4 flushed to the parallel file system;
	// PFS contents survive any node failure.
	pfs [][]byte
	// level tracks the highest level each checkpoint was persisted at.
	taken map[Level]bool
}

// NewStore creates storage for the given number of nodes.
func NewStore(cfg Config, nodes int) *Store {
	cfg.Validate()
	if nodes <= 0 || nodes%cfg.GroupSize != 0 {
		panic(fmt.Sprintf("fti: node count %d not a multiple of group size %d", nodes, cfg.GroupSize))
	}
	return &Store{
		cfg:     cfg,
		nodes:   nodes,
		local:   make([][]byte, nodes),
		partner: make([][]byte, nodes),
		encoded: make([][]byte, nodes),
		pfs:     make([][]byte, nodes),
		taken:   map[Level]bool{},
	}
}

// Checkpoint persists the given per-node state at the given level.
// state must have one entry per node; entries must be equal length for
// L3 (the erasure coder works on aligned shards).
func (s *Store) Checkpoint(level Level, state [][]byte) {
	if !level.Valid() {
		panic(fmt.Sprintf("fti: %v", level))
	}
	if len(state) != s.nodes {
		panic(fmt.Sprintf("fti: state for %d nodes, store has %d", len(state), s.nodes))
	}
	clone := func(b []byte) []byte { return append([]byte(nil), b...) }

	// Every level begins with the local write.
	for n := range state {
		s.local[n] = clone(state[n])
	}
	switch level {
	case L1:
		// local only
	case L2:
		for n := range state {
			s.partner[s.cfg.PartnerOf(n)] = clone(state[n])
		}
	case L3:
		s.encodeGroups(state)
	case L4:
		for n := range state {
			s.pfs[n] = clone(state[n])
		}
	}
	s.taken[level] = true
}

// encodeGroups runs the group-wise Reed-Solomon encoding: within each
// group, the first k nodes' files are the data shards and the remaining
// m nodes store parity shards. Files are padded to the group's max
// length.
func (s *Store) encodeGroups(state [][]byte) {
	coder := s.cfg.L3Coder()
	k := coder.DataShards()
	for g := 0; g < s.nodes/s.cfg.GroupSize; g++ {
		base := g * s.cfg.GroupSize
		size := 0
		for i := 0; i < s.cfg.GroupSize; i++ {
			if len(state[base+i]) > size {
				size = len(state[base+i])
			}
		}
		s.shardSize = size
		data := make([][]byte, k)
		for i := 0; i < k; i++ {
			data[i] = make([]byte, size)
			copy(data[i], state[base+i])
		}
		parity := coder.Encode(data)
		for i := 0; i < k; i++ {
			s.encoded[base+i] = data[i]
		}
		for i := range parity {
			s.encoded[base+k+i] = parity[i]
		}
	}
}

// Fail applies failures to the storage: hard failures destroy the
// node's local file, partner copy, and encoded shard (the PFS copy
// survives); soft failures leave storage intact.
func (s *Store) Fail(failures []Failure) {
	for _, f := range failures {
		if f.Node < 0 || f.Node >= s.nodes {
			panic(fmt.Sprintf("fti: failure on unknown node %d", f.Node))
		}
		if f.Kind != HardFailure {
			continue
		}
		s.local[f.Node] = nil
		s.partner[f.Node] = nil
		s.encoded[f.Node] = nil
	}
}

// Recover attempts to reconstruct every node's checkpointed state at
// the given level from what survives. It returns the recovered per-node
// state or an error when the level's redundancy is exhausted — which
// must agree with Config.Recoverable for the same failure set.
func (s *Store) Recover(level Level) ([][]byte, error) {
	if !s.taken[level] {
		return nil, fmt.Errorf("fti: no level-%d checkpoint taken", int(level))
	}
	out := make([][]byte, s.nodes)
	switch level {
	case L1:
		for n := range out {
			if s.local[n] == nil {
				return nil, fmt.Errorf("fti: node %d lost its local checkpoint", n)
			}
			out[n] = s.local[n]
		}
	case L2:
		for n := range out {
			switch {
			case s.local[n] != nil:
				out[n] = s.local[n]
			case s.partner[s.cfg.PartnerOf(n)] != nil:
				out[n] = s.partner[s.cfg.PartnerOf(n)]
			default:
				return nil, fmt.Errorf("fti: node %d lost both local and partner copies", n)
			}
		}
	case L3:
		coder := s.cfg.L3Coder()
		k := coder.DataShards()
		for g := 0; g < s.nodes/s.cfg.GroupSize; g++ {
			base := g * s.cfg.GroupSize
			shards := make([][]byte, s.cfg.GroupSize)
			for i := range shards {
				shards[i] = s.encoded[base+i] // nil when lost
			}
			data, err := coder.Reconstruct(shards)
			if err != nil {
				return nil, fmt.Errorf("fti: group %d beyond parity: %w", g, err)
			}
			for i := 0; i < k; i++ {
				out[base+i] = data[i]
			}
			// Parity-position nodes: restore lost parity shards by
			// re-encoding the recovered data, so a subsequent
			// failure round starts from full redundancy.
			var parity [][]byte
			for i := k; i < s.cfg.GroupSize; i++ {
				if s.encoded[base+i] == nil {
					if parity == nil {
						parity = coder.Encode(data)
					}
					s.encoded[base+i] = parity[i-k]
				}
				out[base+i] = s.encoded[base+i]
			}
		}
	case L4:
		for n := range out {
			if s.pfs[n] == nil {
				return nil, fmt.Errorf("fti: node %d has no PFS checkpoint", n)
			}
			out[n] = s.pfs[n]
		}
	default:
		panic(fmt.Sprintf("fti: %v", level))
	}
	return out, nil
}

// Verify reports whether the recovered state matches want for the data
// nodes (helper for integration tests).
func Verify(got, want [][]byte) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if got[i] == nil && want[i] == nil {
			continue
		}
		// Recovered L3 data shards are padded to shard size; compare
		// prefixes.
		if got[i] == nil || len(got[i]) < len(want[i]) {
			return false
		}
		if !bytes.Equal(got[i][:len(want[i])], want[i]) {
			return false
		}
	}
	return true
}
