package storage

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLocalDiskWriteTime(t *testing.T) {
	d := LocalDisk{Latency: 1e-3, Bandwidth: 1e9}
	got := d.WriteTime(1e9, 1)
	want := 1e-3 + 1.0
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLocalDiskContention(t *testing.T) {
	d := LocalDisk{Latency: 0, Bandwidth: 1e9}
	one := d.WriteTime(1e8, 1)
	four := d.WriteTime(1e8, 4)
	if math.Abs(four/one-4) > 1e-9 {
		t.Fatalf("4 writers should be 4x slower: %v vs %v", four, one)
	}
}

func TestLocalDiskZeroWritersTreatedAsOne(t *testing.T) {
	d := LocalDisk{Latency: 0, Bandwidth: 1e9}
	if d.WriteTime(1e6, 0) != d.WriteTime(1e6, 1) {
		t.Fatal("writers<1 should clamp to 1")
	}
}

func TestLocalDiskReadSymmetric(t *testing.T) {
	d := LocalDisk{Latency: 1e-4, Bandwidth: 5e8}
	if d.ReadTime(1e7, 2) != d.WriteTime(1e7, 2) {
		t.Fatal("read/write asymmetry")
	}
}

func TestLocalDiskNegativePanics(t *testing.T) {
	d := LocalDisk{Latency: 0, Bandwidth: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.WriteTime(-1, 1)
}

func TestLocalDiskValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LocalDisk{Latency: 0, Bandwidth: 0}.Validate()
}

func TestPFSPerClientCap(t *testing.T) {
	p := PFS{Latency: 0, AggregateBandwidth: 100e9, PerClientBandwidth: 1e9}
	// A single writer cannot exceed the per-client cap.
	got := p.WriteTime(1e9, 1)
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("got %v, want 1.0 (capped)", got)
	}
}

func TestPFSAggregateSharing(t *testing.T) {
	p := PFS{Latency: 0, AggregateBandwidth: 10e9, PerClientBandwidth: 1e9}
	// 100 writers share 10 GB/s -> 0.1 GB/s each.
	got := p.WriteTime(1e8, 100)
	if math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("got %v, want 1.0", got)
	}
}

func TestPFSMoreWritersNeverFaster(t *testing.T) {
	p := PFS{Latency: 1e-3, AggregateBandwidth: 10e9, PerClientBandwidth: 1e9}
	f := func(w1, w2 uint16, sz uint32) bool {
		a, b := int(w1%5000)+1, int(w2%5000)+1
		if a > b {
			a, b = b, a
		}
		return p.WriteTime(int64(sz), a) <= p.WriteTime(int64(sz), b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPFSValidate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PFS{AggregateBandwidth: 1, PerClientBandwidth: 0}.Validate()
}

func TestPFSLatencyDominatesSmallWrites(t *testing.T) {
	p := PFS{Latency: 10e-3, AggregateBandwidth: 100e9, PerClientBandwidth: 10e9}
	got := p.WriteTime(1024, 1)
	if got < 10e-3 || got > 10.1e-3 {
		t.Fatalf("small write time %v should be latency-bound", got)
	}
}

func TestPFSReadSymmetric(t *testing.T) {
	p := PFS{Latency: 1e-3, AggregateBandwidth: 10e9, PerClientBandwidth: 1e9}
	if p.ReadTime(1e8, 4) != p.WriteTime(1e8, 4) {
		t.Fatal("PFS read/write asymmetry")
	}
}

func TestPFSNegativePanics(t *testing.T) {
	p := PFS{Latency: 0, AggregateBandwidth: 1, PerClientBandwidth: 1}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.WriteTime(-1, 1)
}

func TestPFSZeroWritersClamp(t *testing.T) {
	p := PFS{Latency: 0, AggregateBandwidth: 10e9, PerClientBandwidth: 1e9}
	if p.WriteTime(1e6, 0) != p.WriteTime(1e6, 1) {
		t.Fatal("writers<1 should clamp to 1")
	}
}

func TestLocalDiskCacheSpeedup(t *testing.T) {
	d := LocalDisk{Latency: 0, Bandwidth: 1e9, CacheBytes: 4 << 20, CacheSpeedup: 4}
	// Burst inside the cache runs 4x faster.
	small := d.WriteTime(1<<20, 2) // 2 MiB total, cached
	if got, want := small, float64(1<<20)*2/(4e9); gotDiff(got, want) {
		t.Fatalf("cached write = %v, want %v", got, want)
	}
	// Burst beyond the cache runs at raw bandwidth.
	big := d.WriteTime(4<<20, 2) // 8 MiB total, uncached
	if got, want := big, float64(4<<20)*2/1e9; gotDiff(got, want) {
		t.Fatalf("uncached write = %v, want %v", got, want)
	}
}

func gotDiff(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d > 1e-12*(1+b)
}

func TestLocalDiskValidateCache(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LocalDisk{Latency: 0, Bandwidth: 1, CacheBytes: 10, CacheSpeedup: 0.5}.Validate()
}

func TestLocalDiskValidateOK(t *testing.T) {
	LocalDisk{Latency: 1e-3, Bandwidth: 1e9, CacheBytes: 1 << 20, CacheSpeedup: 4}.Validate()
	PFS{Latency: 1e-3, AggregateBandwidth: 1e9, PerClientBandwidth: 1e8}.Validate()
}
