// Package storage models the two storage tiers FTI checkpoint levels
// touch: node-local disk/SSD (levels 1–3) and the shared parallel file
// system (level 4). Both are coarse bandwidth/latency models with
// contention: concurrent writers on a node share its local device, and
// all concurrent PFS writers share the aggregate PFS bandwidth up to a
// per-client cap.
package storage

// LocalDisk describes the node-local storage device.
type LocalDisk struct {
	// Latency is the fixed per-operation cost in seconds (open, sync,
	// metadata).
	Latency float64
	// Bandwidth is the sequential write bandwidth in bytes/second.
	Bandwidth float64
	// CacheBytes is the write-back cache capacity: bursts whose total
	// size (across all concurrent writers on the node) fits inside it
	// complete at CacheSpeedup times the raw bandwidth. Small
	// checkpoint files absorb into the cache; large ones stream to
	// the device — the nonlinearity that makes checkpoint cost grow
	// faster than linearly with problem size. Zero disables caching.
	CacheBytes int64
	// CacheSpeedup multiplies Bandwidth for cache-resident bursts
	// (ignored when CacheBytes is 0; must be >= 1 otherwise).
	CacheSpeedup float64
}

// Validate panics on a nonsensical configuration.
func (d LocalDisk) Validate() {
	if d.Latency < 0 || d.Bandwidth <= 0 || d.CacheBytes < 0 {
		panic("storage: invalid LocalDisk")
	}
	if d.CacheBytes > 0 && d.CacheSpeedup < 1 {
		panic("storage: cache speedup below 1")
	}
}

// WriteTime returns the time in seconds for one writer to persist nbytes
// while `writers` processes on the same node write concurrently (fair
// sharing of the device). writers < 1 is treated as 1.
func (d LocalDisk) WriteTime(nbytes int64, writers int) float64 {
	if nbytes < 0 {
		panic("storage: negative write size")
	}
	if writers < 1 {
		writers = 1
	}
	bw := d.Bandwidth
	if d.CacheBytes > 0 && nbytes*int64(writers) <= d.CacheBytes {
		bw *= d.CacheSpeedup
	}
	return d.Latency + float64(nbytes)*float64(writers)/bw
}

// ReadTime returns the time to read nbytes back (restart path). Reads
// are modeled at the same bandwidth as writes; checkpoint restart
// performance is dominated by sequential streaming on both paths.
func (d LocalDisk) ReadTime(nbytes int64, readers int) float64 {
	return d.WriteTime(nbytes, readers)
}

// PFS describes the shared parallel file system.
type PFS struct {
	// Latency is the fixed per-operation cost in seconds, including
	// metadata server round trips.
	Latency float64
	// AggregateBandwidth is the total deliverable bandwidth of the
	// file system in bytes/second.
	AggregateBandwidth float64
	// PerClientBandwidth caps what any single writer can reach,
	// regardless of how idle the file system is.
	PerClientBandwidth float64
}

// Validate panics on a nonsensical configuration.
func (p PFS) Validate() {
	if p.Latency < 0 || p.AggregateBandwidth <= 0 || p.PerClientBandwidth <= 0 {
		panic("storage: invalid PFS")
	}
}

// effectiveBandwidth returns the per-writer bandwidth with `writers`
// concurrent clients.
func (p PFS) effectiveBandwidth(writers int) float64 {
	if writers < 1 {
		writers = 1
	}
	share := p.AggregateBandwidth / float64(writers)
	if share > p.PerClientBandwidth {
		return p.PerClientBandwidth
	}
	return share
}

// WriteTime returns the time in seconds for one of `writers` concurrent
// clients to flush nbytes to the PFS.
func (p PFS) WriteTime(nbytes int64, writers int) float64 {
	if nbytes < 0 {
		panic("storage: negative write size")
	}
	return p.Latency + float64(nbytes)/p.effectiveBandwidth(writers)
}

// ReadTime returns the restart-path read time, symmetric with WriteTime.
func (p PFS) ReadTime(nbytes int64, readers int) float64 {
	return p.WriteTime(nbytes, readers)
}
