package perfmodel

import (
	"encoding/json"
	"fmt"
)

// jsonTable is the serialized form of a lookup table: each point keeps
// its coordinates and raw samples so Monte Carlo draws survive a round
// trip.
type jsonTable struct {
	Label      string      `json:"label"`
	ParamNames []string    `json:"params"`
	Points     []jsonPoint `json:"points"`
}

type jsonPoint struct {
	Coord   []float64 `json:"coord"`
	Samples []float64 `json:"samples"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	j := jsonTable{Label: t.Label, ParamNames: t.ParamNames}
	// Deterministic order: sort by coordinate key.
	keys := make([]string, 0, len(t.points))
	byKey := map[string]*tablePoint{}
	for k, pt := range t.points {
		keys = append(keys, k)
		byKey[k] = pt
	}
	sortStrings(keys)
	for _, k := range keys {
		pt := byKey[k]
		j.Points = append(j.Points, jsonPoint{Coord: pt.coord, Samples: pt.samples})
	}
	return json.Marshal(j)
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *Table) UnmarshalJSON(data []byte) error {
	var j jsonTable
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	if len(j.ParamNames) == 0 {
		return fmt.Errorf("perfmodel: table %q has no parameters", j.Label)
	}
	nt := NewTable(j.Label, j.ParamNames...)
	for i, pt := range j.Points {
		if len(pt.Coord) != len(j.ParamNames) {
			return fmt.Errorf("perfmodel: table %q point %d has %d coords, want %d",
				j.Label, i, len(pt.Coord), len(j.ParamNames))
		}
		p := Params{}
		for d, name := range j.ParamNames {
			p[name] = pt.Coord[d]
		}
		for _, s := range pt.Samples {
			if s < 0 {
				return fmt.Errorf("perfmodel: table %q point %d has negative sample", j.Label, i)
			}
			nt.Add(p, s)
		}
	}
	*t = *nt
	return nil
}
