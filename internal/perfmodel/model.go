// Package perfmodel defines the performance-model abstraction at the
// heart of behavioral emulation, and its two implementations from the
// paper's Model Development phase: lookup tables over calibration
// samples (with interpolation between benchmarked points) and symbolic-
// regression models (fitted in package symreg, wrapped here).
//
// When the BE-SST simulator executes an abstract instruction it polls
// the bound Model for a predicted runtime instead of performing the
// computation — the essence of the workflow of Fig 2. Monte Carlo
// simulation draws from the model's sample distribution to reproduce
// machine variance (Fig 1's distribution pop-out).
package perfmodel

import (
	"fmt"
	"sort"
	"strings"

	"besst/internal/stats"
)

// Params is the parameter set of one abstract-instruction invocation,
// e.g. {"epr": 15, "ranks": 216}. Only parameters that affect
// performance appear — the AppBEO design rule quoted in the paper.
type Params map[string]float64

// Get returns the named parameter and panics if it is missing: a model
// being polled without one of its declared parameters is a wiring bug.
func (p Params) Get(name string) float64 {
	v, ok := p[name]
	if !ok {
		panic(fmt.Sprintf("perfmodel: missing parameter %q", name))
	}
	return v
}

// Clone returns a copy of p.
func (p Params) Clone() Params {
	c := make(Params, len(p))
	for k, v := range p {
		c[k] = v
	}
	return c
}

// Key renders p in a canonical ordering, for map keys and diagnostics.
func (p Params) Key() string {
	names := make([]string, 0, len(p))
	for k := range p {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%g", k, p[k])
	}
	return b.String()
}

// Model predicts the runtime of one abstract instruction.
type Model interface {
	// Predict returns the expected runtime in seconds for the given
	// parameters.
	Predict(p Params) float64
	// Sample returns one draw from the model's runtime distribution,
	// for Monte Carlo simulation of machine variance.
	Sample(p Params, rng *stats.RNG) float64
	// Name identifies the model in diagnostics.
	Name() string
}

// Constant is a trivial model returning a fixed duration; useful for
// fixed overheads and in tests.
type Constant struct {
	Label   string
	Seconds float64
}

// Predict implements Model.
func (c Constant) Predict(Params) float64 { return c.Seconds }

// Sample implements Model.
func (c Constant) Sample(Params, *stats.RNG) float64 { return c.Seconds }

// Name implements Model.
func (c Constant) Name() string { return c.Label }

// Func adapts a plain function into a deterministic Model. The paper's
// ground-truth cost functions are exposed to the simulator this way in
// oracle-model ablations.
type Func struct {
	Label string
	F     func(Params) float64
	// NoiseSigma, when positive, adds multiplicative log-normal noise
	// with the given sigma to Sample draws.
	NoiseSigma float64
}

// Predict implements Model.
func (f Func) Predict(p Params) float64 { return f.F(p) }

// Sample implements Model.
func (f Func) Sample(p Params, rng *stats.RNG) float64 {
	v := f.F(p)
	if f.NoiseSigma > 0 {
		v *= rng.LogNormal(0, f.NoiseSigma)
	}
	return v
}

// Name implements Model.
func (f Func) Name() string { return f.Label }
