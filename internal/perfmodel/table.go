package perfmodel

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"besst/internal/stats"
)

// Table is the paper's interpolation modeling method: calibration
// samples organized into a lookup table keyed by the system parameters.
// When polled at a benchmarked parameter combination it returns (or
// draws from) the stored samples; between combinations it interpolates
// multilinearly along each parameter axis; beyond the benchmarked range
// it extrapolates linearly from the outermost points — the mechanism
// that supports the notional-system prediction regions of Figs 5-6.
type Table struct {
	Label      string
	ParamNames []string // interpolation axes, fixed order

	points map[string]*tablePoint
	axes   [][]float64 // sorted unique values per axis, built lazily
	dirty  bool
}

type tablePoint struct {
	coord   []float64
	samples []float64
	mean    float64
}

// NewTable creates an empty lookup table over the given parameter axes.
func NewTable(label string, paramNames ...string) *Table {
	if len(paramNames) == 0 {
		panic("perfmodel: table needs at least one parameter")
	}
	return &Table{
		Label:      label,
		ParamNames: paramNames,
		points:     make(map[string]*tablePoint),
	}
}

func coordKey(coord []float64) string {
	var b strings.Builder
	for i, v := range coord {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return b.String()
}

func (t *Table) coordOf(p Params) []float64 {
	c := make([]float64, len(t.ParamNames))
	for i, name := range t.ParamNames {
		c[i] = p.Get(name)
	}
	return c
}

// Add records one calibration sample at the given parameters.
func (t *Table) Add(p Params, sample float64) {
	if sample < 0 {
		panic("perfmodel: negative sample")
	}
	coord := t.coordOf(p)
	key := coordKey(coord)
	pt, ok := t.points[key]
	if !ok {
		pt = &tablePoint{coord: coord}
		t.points[key] = pt
	}
	pt.samples = append(pt.samples, sample)
	t.dirty = true
}

// Points returns the number of distinct parameter combinations stored.
func (t *Table) Points() int { return len(t.points) }

// Samples returns the stored samples at exactly the given parameters,
// or nil if that combination was never benchmarked.
func (t *Table) Samples(p Params) []float64 {
	pt, ok := t.points[coordKey(t.coordOf(p))]
	if !ok {
		return nil
	}
	return pt.samples
}

func (t *Table) rebuild() {
	if !t.dirty {
		return
	}
	t.axes = make([][]float64, len(t.ParamNames))
	for d := range t.axes {
		seen := map[float64]bool{}
		for _, pt := range t.points {
			seen[pt.coord[d]] = true
		}
		axis := make([]float64, 0, len(seen))
		for v := range seen {
			axis = append(axis, v)
		}
		sort.Float64s(axis)
		t.axes[d] = axis
	}
	for _, pt := range t.points {
		pt.mean = stats.Mean(pt.samples)
	}
	t.dirty = false
}

// nearest returns the stored point closest to coord in normalized
// axis-index space. Ties break on the canonical coordinate key so the
// choice never depends on map iteration order (predictions must be
// bit-reproducible across runs and serialization round trips).
func (t *Table) nearest(coord []float64) *tablePoint {
	var best *tablePoint
	bestD := math.Inf(1)
	bestKey := ""
	for key, pt := range t.points {
		d := 0.0
		for i := range coord {
			span := t.axes[i][len(t.axes[i])-1] - t.axes[i][0]
			if stats.ApproxEqual(span, 0, 0) {
				span = 1
			}
			dd := (pt.coord[i] - coord[i]) / span
			d += dd * dd
		}
		if d < bestD || (stats.ApproxEqual(d, bestD, 0) && key < bestKey) {
			bestD = d
			best = pt
			bestKey = key
		}
	}
	return best
}

// valueAt returns the mean at an exact stored coordinate, falling back
// to the nearest stored point when a grid corner is missing (sparse
// benchmarking campaigns).
func (t *Table) valueAt(coord []float64) float64 {
	if pt, ok := t.points[coordKey(coord)]; ok {
		return pt.mean
	}
	return t.nearest(coord).mean
}

// interp recursively interpolates along axis dim. Coordinates before
// dim are already pinned to grid values in coord.
func (t *Table) interp(coord []float64, dim int) float64 {
	if dim == len(coord) {
		return t.valueAt(coord)
	}
	axis := t.axes[dim]
	x := coord[dim]

	// Locate bracketing axis values, or the outermost pair for linear
	// extrapolation beyond the benchmarked range.
	i := sort.SearchFloat64s(axis, x)
	switch {
	case len(axis) == 1:
		c := append([]float64{}, coord...)
		c[dim] = axis[0]
		return t.interp(c, dim+1)
	case i < len(axis) && stats.ApproxEqual(axis[i], x, 0):
		c := append([]float64{}, coord...)
		c[dim] = axis[i]
		return t.interp(c, dim+1)
	case i == 0:
		i = 1 // extrapolate below range from first two values
	case i == len(axis):
		i = len(axis) - 1 // extrapolate above range from last two
	}
	lo, hi := axis[i-1], axis[i]
	cLo := append([]float64{}, coord...)
	cLo[dim] = lo
	cHi := append([]float64{}, coord...)
	cHi[dim] = hi
	vLo := t.interp(cLo, dim+1)
	vHi := t.interp(cHi, dim+1)
	frac := (x - lo) / (hi - lo)
	return vLo + frac*(vHi-vLo)
}

// Predict implements Model.
func (t *Table) Predict(p Params) float64 {
	if len(t.points) == 0 {
		panic(fmt.Sprintf("perfmodel: table %q is empty", t.Label))
	}
	t.rebuild()
	v := t.interp(t.coordOf(p), 0)
	if v < 0 {
		v = 0 // linear extrapolation can undershoot; time is non-negative
	}
	return v
}

// Sample implements Model. At a benchmarked combination it draws
// uniformly from the stored samples (the paper: "one of many samples is
// selected"); elsewhere it draws from the nearest benchmarked point and
// rescales to the interpolated mean, preserving relative variance.
func (t *Table) Sample(p Params, rng *stats.RNG) float64 {
	if len(t.points) == 0 {
		panic(fmt.Sprintf("perfmodel: table %q is empty", t.Label))
	}
	t.rebuild()
	coord := t.coordOf(p)
	if pt, ok := t.points[coordKey(coord)]; ok {
		return pt.samples[rng.Intn(len(pt.samples))]
	}
	mean := t.Predict(p)
	near := t.nearest(coord)
	draw := near.samples[rng.Intn(len(near.samples))]
	if near.mean <= 0 {
		return mean
	}
	return mean * draw / near.mean
}

// Name implements Model.
func (t *Table) Name() string { return t.Label }
