package perfmodel

import (
	"encoding/json"
	"testing"

	"besst/internal/stats"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tab := NewTable("k", "x", "y")
	tab.Add(Params{"x": 1, "y": 2}, 10)
	tab.Add(Params{"x": 1, "y": 2}, 12)
	tab.Add(Params{"x": 3, "y": 2}, 30)
	tab.Add(Params{"x": 1, "y": 4}, 40)

	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Points() != tab.Points() {
		t.Fatalf("points %d != %d", back.Points(), tab.Points())
	}
	for _, p := range []Params{
		{"x": 1, "y": 2}, {"x": 2, "y": 2}, {"x": 5, "y": 3},
	} {
		if tab.Predict(p) != back.Predict(p) {
			t.Fatalf("prediction differs at %v", p.Key())
		}
	}
	// Raw samples survive, so Monte Carlo draws match too.
	r1, r2 := stats.NewRNG(3), stats.NewRNG(3)
	for i := 0; i < 20; i++ {
		a := tab.Sample(Params{"x": 1, "y": 2}, r1)
		b := back.Sample(Params{"x": 1, "y": 2}, r2)
		if a != b {
			t.Fatalf("sample %d differs: %v vs %v", i, a, b)
		}
	}
}

func TestTableJSONDeterministicEncoding(t *testing.T) {
	tab := NewTable("k", "x")
	tab.Add(Params{"x": 2}, 1)
	tab.Add(Params{"x": 1}, 2)
	a, _ := json.Marshal(tab)
	b, _ := json.Marshal(tab)
	if string(a) != string(b) {
		t.Fatal("non-deterministic encoding")
	}
}

func TestTableJSONRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"label":"k","params":[],"points":[]}`,
		`{"label":"k","params":["x"],"points":[{"coord":[1,2],"samples":[1]}]}`,
		`{"label":"k","params":["x"],"points":[{"coord":[1],"samples":[-5]}]}`,
		`not json`,
	}
	for i, c := range cases {
		var tab Table
		if err := json.Unmarshal([]byte(c), &tab); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}
