package perfmodel

import (
	"math"
	"testing"

	"besst/internal/stats"
)

func TestParamsGetAndKey(t *testing.T) {
	p := Params{"ranks": 64, "epr": 15}
	if p.Get("ranks") != 64 {
		t.Fatal("Get failed")
	}
	if p.Key() != "epr=15,ranks=64" {
		t.Fatalf("key = %q", p.Key())
	}
	c := p.Clone()
	c["ranks"] = 8
	if p["ranks"] != 64 {
		t.Fatal("Clone aliased the map")
	}
}

func TestParamsGetMissingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Params{}.Get("nope")
}

func TestConstantModel(t *testing.T) {
	m := Constant{Label: "fixed", Seconds: 2.5}
	if m.Predict(nil) != 2.5 || m.Sample(nil, stats.NewRNG(1)) != 2.5 {
		t.Fatal("constant model wrong")
	}
	if m.Name() != "fixed" {
		t.Fatal("name wrong")
	}
}

func TestFuncModelNoise(t *testing.T) {
	m := Func{Label: "f", F: func(p Params) float64 { return p.Get("x") * 2 }, NoiseSigma: 0.1}
	if m.Predict(Params{"x": 3}) != 6 {
		t.Fatal("predict wrong")
	}
	rng := stats.NewRNG(2)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += m.Sample(Params{"x": 3}, rng)
	}
	// LogNormal(0, 0.1) has mean exp(0.005) ~ 1.005.
	if math.Abs(sum/n-6*math.Exp(0.005)) > 0.05 {
		t.Fatalf("noisy mean %v", sum/n)
	}
}

func TestTableExactLookup(t *testing.T) {
	tab := NewTable("k", "x")
	tab.Add(Params{"x": 1}, 10)
	tab.Add(Params{"x": 1}, 14)
	tab.Add(Params{"x": 2}, 20)
	if got := tab.Predict(Params{"x": 1}); got != 12 {
		t.Fatalf("exact predict = %v, want mean 12", got)
	}
	if tab.Points() != 2 {
		t.Fatalf("points = %d", tab.Points())
	}
	if s := tab.Samples(Params{"x": 1}); len(s) != 2 {
		t.Fatalf("samples = %v", s)
	}
	if tab.Samples(Params{"x": 9}) != nil {
		t.Fatal("missing combo should return nil samples")
	}
}

func TestTableLinearInterpolation1D(t *testing.T) {
	tab := NewTable("k", "x")
	tab.Add(Params{"x": 0}, 0)
	tab.Add(Params{"x": 10}, 100)
	if got := tab.Predict(Params{"x": 5}); math.Abs(got-50) > 1e-12 {
		t.Fatalf("interp = %v, want 50", got)
	}
	if got := tab.Predict(Params{"x": 2.5}); math.Abs(got-25) > 1e-12 {
		t.Fatalf("interp = %v, want 25", got)
	}
}

func TestTableExtrapolation(t *testing.T) {
	tab := NewTable("k", "x")
	tab.Add(Params{"x": 0}, 0)
	tab.Add(Params{"x": 10}, 100)
	// Above range: linear continuation supports prediction regions.
	if got := tab.Predict(Params{"x": 20}); math.Abs(got-200) > 1e-12 {
		t.Fatalf("extrapolated = %v, want 200", got)
	}
	// Below range undershoot clamps to zero.
	if got := tab.Predict(Params{"x": -100}); got != 0 {
		t.Fatalf("negative extrapolation should clamp: %v", got)
	}
}

func TestTableBilinearInterpolation(t *testing.T) {
	tab := NewTable("k", "x", "y")
	for _, pt := range []struct{ x, y, v float64 }{
		{0, 0, 0}, {10, 0, 10}, {0, 10, 20}, {10, 10, 30},
	} {
		tab.Add(Params{"x": pt.x, "y": pt.y}, pt.v)
	}
	// Center of a bilinear patch is the mean of the corners.
	if got := tab.Predict(Params{"x": 5, "y": 5}); math.Abs(got-15) > 1e-12 {
		t.Fatalf("bilinear center = %v, want 15", got)
	}
	// Edge midpoint.
	if got := tab.Predict(Params{"x": 5, "y": 0}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("edge = %v, want 5", got)
	}
}

func TestTableSparseGridFallsBackToNearest(t *testing.T) {
	tab := NewTable("k", "x", "y")
	tab.Add(Params{"x": 0, "y": 0}, 1)
	tab.Add(Params{"x": 10, "y": 10}, 9)
	// Corner (10, 0) is missing; interpolation still returns something
	// finite between the stored values.
	got := tab.Predict(Params{"x": 10, "y": 0})
	if math.IsNaN(got) || got < 1 || got > 9 {
		t.Fatalf("sparse predict = %v", got)
	}
}

func TestTableSampleDrawsStored(t *testing.T) {
	tab := NewTable("k", "x")
	tab.Add(Params{"x": 1}, 10)
	tab.Add(Params{"x": 1}, 20)
	rng := stats.NewRNG(3)
	seen := map[float64]bool{}
	for i := 0; i < 100; i++ {
		v := tab.Sample(Params{"x": 1}, rng)
		if v != 10 && v != 20 {
			t.Fatalf("sample %v not from stored set", v)
		}
		seen[v] = true
	}
	if len(seen) != 2 {
		t.Fatal("sampling never hit one of the stored values")
	}
}

func TestTableSampleInterpolatedPreservesSpread(t *testing.T) {
	tab := NewTable("k", "x")
	// 20% relative spread at both ends.
	for _, x := range []float64{0, 10} {
		base := 100 * (1 + x/10)
		tab.Add(Params{"x": x}, base*0.8)
		tab.Add(Params{"x": x}, base*1.2)
	}
	rng := stats.NewRNG(4)
	var lo, hi int
	mean := tab.Predict(Params{"x": 5})
	for i := 0; i < 200; i++ {
		v := tab.Sample(Params{"x": 5}, rng)
		if v < mean {
			lo++
		} else {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Fatalf("interpolated sampling lost variance: lo=%d hi=%d", lo, hi)
	}
}

func TestTableEmptyPanics(t *testing.T) {
	tab := NewTable("k", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Predict(Params{"x": 1})
}

func TestTableNegativeSamplePanics(t *testing.T) {
	tab := NewTable("k", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tab.Add(Params{"x": 1}, -1)
}

func TestTableAddAfterPredict(t *testing.T) {
	tab := NewTable("k", "x")
	tab.Add(Params{"x": 0}, 0)
	tab.Add(Params{"x": 10}, 10)
	_ = tab.Predict(Params{"x": 5})
	tab.Add(Params{"x": 20}, 40)
	// Axes must rebuild: extrapolation now uses the new point.
	if got := tab.Predict(Params{"x": 15}); math.Abs(got-25) > 1e-12 {
		t.Fatalf("predict after add = %v, want 25", got)
	}
}
