// Package cli holds small helpers shared by the command-line tools.
//
// Its centerpiece is Printer, an error-absorbing writer that lets the
// report-formatting layers (internal/exp, internal/dse, the cmd mains)
// print tables without threading an error return through every line,
// while still surfacing output failures: the Printer records the first
// write error, and the top of each main checks Err() before exiting.
// besst-lint's errcheck rule blesses writes routed through a Printer
// for exactly this reason — the error is remembered, not dropped.
package cli

import (
	"fmt"
	"io"
	"os"
)

// Printer wraps an io.Writer and absorbs write errors, keeping the
// first one for the owner to inspect. After an error, further writes
// are skipped (they would be lost mid-stream anyway) but still report
// success so formatting helpers run to completion.
type Printer struct {
	w   io.Writer
	err error
}

// NewPrinter returns a Printer over w.
func NewPrinter(w io.Writer) *Printer { return &Printer{w: w} }

// Wrap returns w itself when it is already a *Printer — so formatting
// helpers called with a main's Printer accumulate onto the same error —
// and a fresh Printer otherwise.
func Wrap(w io.Writer) *Printer {
	if p, ok := w.(*Printer); ok {
		return p
	}
	return NewPrinter(w)
}

// Write implements io.Writer with the absorbing contract above.
func (p *Printer) Write(b []byte) (int, error) {
	if p.err != nil {
		return len(b), nil
	}
	n, err := p.w.Write(b)
	if err == nil && n < len(b) {
		err = io.ErrShortWrite
	}
	if err != nil {
		p.err = err
	}
	return len(b), nil
}

// Printf formats to the underlying writer, absorbing any error.
func (p *Printer) Printf(format string, args ...any) {
	fmt.Fprintf(p, format, args...)
}

// Println prints operands with a trailing newline, absorbing any error.
func (p *Printer) Println(args ...any) {
	fmt.Fprintln(p, args...)
}

// Print prints operands, absorbing any error.
func (p *Printer) Print(args ...any) {
	fmt.Fprint(p, args...)
}

// Err returns the first write error the Printer absorbed, if any.
func (p *Printer) Err() error { return p.err }

// Stdout returns a Printer over os.Stdout.
func Stdout() *Printer { return NewPrinter(os.Stdout) }

// ExitOnErr is a deferred guard for mains: if the Printer absorbed a
// write error, it reports the failure to stderr and exits nonzero, so
// truncated output (a closed pipe, a full disk) cannot pass silently.
func (p *Printer) ExitOnErr(tool string) {
	if p.err != nil {
		fmt.Fprintf(os.Stderr, "%s: writing output: %v\n", tool, p.err)
		os.Exit(1)
	}
}
