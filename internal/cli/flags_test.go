package cli

import (
	"flag"
	"path/filepath"
	"testing"
)

func sessionWith(t *testing.T, args ...string) *Session {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f := RegisterCommon(fs, 0)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	s, err := f.Begin("besst-sim")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCampaignEnabled(t *testing.T) {
	cases := []struct {
		args []string
		want bool
	}{
		{nil, false},
		{[]string{"-ckpt", "results"}, true},
		{[]string{"-resume"}, true},
		{[]string{"-chaos", "0.1"}, true},
		{[]string{"-metrics", "results"}, false},
	}
	for _, c := range cases {
		if got := sessionWith(t, c.args...).CampaignEnabled(); got != c.want {
			t.Errorf("CampaignEnabled(%v) = %v, want %v", c.args, got, c.want)
		}
	}
}

func TestCkptPathResolution(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{nil, ""},
		{[]string{"-chaos", "0.1"}, ""}, // chaos alone runs journal-free
		{[]string{"-ckpt", "results"}, filepath.Join("results", "CKPT_besst-sim.jsonl")},
		{[]string{"-ckpt", "custom/my.jsonl"}, "custom/my.jsonl"},
		{[]string{"-resume"}, filepath.Join("results", "CKPT_besst-sim.jsonl")},
		{[]string{"-resume", "-ckpt", "elsewhere"}, filepath.Join("elsewhere", "CKPT_besst-sim.jsonl")},
	}
	for _, c := range cases {
		if got := sessionWith(t, c.args...).ckptPath(); got != c.want {
			t.Errorf("ckptPath(%v) = %q, want %q", c.args, got, c.want)
		}
	}
}

func TestCampaignAssembly(t *testing.T) {
	s := sessionWith(t, "-ckpt", "results", "-resume", "-ckpt-every", "7",
		"-workers", "3", "-seed", "9", "-chaos", "0.25")
	camp := s.Campaign("deadbeef")
	if camp.Tool != "besst-sim" || camp.ConfigHash != "deadbeef" {
		t.Errorf("identity fields wrong: %+v", camp)
	}
	if camp.Seed != 9 || camp.Workers != 3 || camp.CkptEvery != 7 || !camp.Resume {
		t.Errorf("flag fields wrong: %+v", camp)
	}
	if camp.Chaos.PanicRate != 0.25 || camp.Chaos.DelayRate != 0.25 {
		t.Errorf("chaos rates wrong: %+v", camp.Chaos)
	}
	if camp.Chaos.Seed == 9 {
		t.Error("chaos seed must differ from the trial master seed")
	}
	if camp.Collector == nil {
		t.Error("campaign lost the session collector")
	}
}
