package cli

import (
	"flag"
	"strings"
	"time"

	"besst/internal/dist"
)

// DistFlags is the distributed-execution flag group shared by
// besst-sim and besst-dse: -dist points at a besst-worker fleet and
// the campaign runs across it — sharded, replicated, worker-loss
// tolerant — instead of in-process. The merged result document is
// byte-identical to the local run of the same configuration.
type DistFlags struct {
	// Workers is the comma-separated worker base URL list; empty keeps
	// execution in-process.
	Workers string
	// Shards is the index-range shard count (0: one per worker).
	Shards int
	// Replicas is the functional-replication degree per shard.
	Replicas int
	// Token authenticates worker calls.
	Token string
	// Timeout bounds one shard-replica attempt.
	Timeout time.Duration
}

// RegisterDist registers the -dist flag group on fs.
func RegisterDist(fs *flag.FlagSet) *DistFlags {
	f := &DistFlags{}
	fs.StringVar(&f.Workers, "dist", "",
		"comma-separated besst-worker base URLs; runs the campaign across them instead of in-process and prints the merged campaign result document")
	fs.IntVar(&f.Shards, "dist-shards", 0, "index-range shards for -dist (0: one per worker)")
	fs.IntVar(&f.Replicas, "dist-replicas", 1,
		"functional-replication degree for -dist: each shard runs on this many workers and a strict majority of journals must agree")
	fs.StringVar(&f.Token, "dist-token", "", "bearer token for -dist worker calls")
	fs.DurationVar(&f.Timeout, "dist-timeout", 2*time.Minute, "per-shard attempt timeout for -dist")
	return f
}

// Enabled reports whether a worker fleet was selected.
func (f *DistFlags) Enabled() bool { return f.Workers != "" }

// Coordinator builds the distributed coordinator from the flag values.
func (f *DistFlags) Coordinator() (*dist.Coordinator, error) {
	var urls []string
	for _, w := range strings.Split(f.Workers, ",") {
		if w = strings.TrimSpace(w); w != "" {
			urls = append(urls, w)
		}
	}
	return dist.NewCoordinator(dist.Config{
		Workers:      urls,
		Shards:       f.Shards,
		Replicas:     f.Replicas,
		AuthToken:    f.Token,
		ShardTimeout: f.Timeout,
	})
}

// RunDist executes raw campaign request JSON across the fleet,
// reports retries, worker loss, and divergences on p (stderr-bound in
// the callers), and returns the merged result document.
func RunDist(f *DistFlags, p *Printer, raw []byte) ([]byte, error) {
	c, err := f.Coordinator()
	if err != nil {
		return nil, err
	}
	doc, rep, err := dist.RunRequest(c, raw, nil, nil)
	if err != nil {
		return nil, err
	}
	p.Printf("dist: %d shards x %d replicas across %d workers: retries=%d workers_lost=%d\n",
		rep.Shards, rep.Replicas, len(strings.Split(f.Workers, ",")), rep.Retries, rep.WorkersLost)
	for _, d := range rep.Divergences {
		p.Printf("dist: divergence (majority accepted): %s\n", d)
	}
	return doc, nil
}
