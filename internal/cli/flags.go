package cli

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"besst/internal/besst"
	"besst/internal/des"
	"besst/internal/dse"
	"besst/internal/obs"
	"besst/internal/resilience"
)

// CommonFlags is the flag set shared by every besst command: worker
// and seed control, machine-readable output, and the observability
// switches (tracing, metrics, profiling). Register it with
// RegisterCommon so the six mains stop carrying drift-prone copies of
// the same flag block.
type CommonFlags struct {
	// Workers bounds worker-pool concurrency (<= 0: GOMAXPROCS).
	Workers int
	// Seed is the master random seed.
	Seed uint64
	// JSON selects machine-readable primary output where the tool
	// defines one.
	JSON bool
	// Trace, when non-empty, records DES lifecycle events and writes
	// them to this path in Chrome trace_event JSON (opens in
	// chrome://tracing or Perfetto).
	Trace string
	// TraceCap bounds the trace ring buffer (records; <= 0: default).
	TraceCap int
	// Metrics, when non-empty, writes a versioned run-metrics JSON
	// document. A path ending in .json is used verbatim; anything else
	// is treated as a directory and the conventional
	// METRICS_<tool>.json name is appended.
	Metrics string
	// CPUProfile and MemProfile, when non-empty, capture pprof CPU and
	// heap profiles to these paths.
	CPUProfile string
	// MemProfile is the heap-profile output path.
	MemProfile string
	// Ckpt, when non-empty, checkpoints the tool's campaign to an
	// append-only journal. A path ending in .jsonl is used verbatim;
	// anything else is treated as a directory and the conventional
	// CKPT_<tool>.jsonl name is appended.
	Ckpt string
	// Resume replays an existing checkpoint journal and re-runs only
	// the missing trials. With -ckpt unset it looks in "results".
	Resume bool
	// CkptEvery is how many completed trials may ride in the journal's
	// write buffer before an fsync (the most a crash can lose).
	CkptEvery int
	// Chaos injects deterministic panics and delays into each trial at
	// this per-attempt rate (0 disables) to exercise the retry and
	// quarantine machinery.
	Chaos float64
}

// RegisterCommon registers the shared flags on fs (use flag.CommandLine
// in a main) and returns the bound struct. workersDefault seeds the
// -workers default, since the tools disagree on it (besst-bench keeps
// its historical serial default).
func RegisterCommon(fs *flag.FlagSet, workersDefault int) *CommonFlags {
	f := &CommonFlags{}
	fs.IntVar(&f.Workers, "workers", workersDefault,
		"concurrent workers (<=0: GOMAXPROCS); results are identical for every worker count")
	fs.Uint64Var(&f.Seed, "seed", 42, "master random seed")
	fs.BoolVar(&f.JSON, "json", false, "emit machine-readable JSON output where the tool defines one")
	fs.StringVar(&f.Trace, "trace", "",
		"write a Chrome trace_event JSON trace of the DES run to this path")
	fs.IntVar(&f.TraceCap, "trace-cap", 0,
		"trace ring-buffer capacity in records (<=0: default 65536)")
	fs.StringVar(&f.Metrics, "metrics", "",
		"write run metrics JSON to this path (or METRICS_<tool>.json inside this directory)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this path")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a pprof heap profile to this path")
	fs.StringVar(&f.Ckpt, "ckpt", "",
		"checkpoint the campaign to this journal (or CKPT_<tool>.jsonl inside this directory)")
	fs.BoolVar(&f.Resume, "resume", false,
		"resume from the checkpoint journal, re-running only missing trials (default journal dir: results)")
	fs.IntVar(&f.CkptEvery, "ckpt-every", 16,
		"fsync the checkpoint journal every N completed trials (<=0: every trial)")
	fs.Float64Var(&f.Chaos, "chaos", 0,
		"inject deterministic panics and delays into each trial at this rate (testing the fault envelope)")
	return f
}

// Session is the live observability state behind one command run:
// profiles started, recorders allocated. Create it with Begin after
// flag parsing; call Close before exit to flush everything to disk.
type Session struct {
	flags   *CommonFlags
	tool    string
	stopCPU func() error
	trace   *obs.TraceBuffer
	// collector always exists (Phase timings are recorded regardless)
	// but is only handed to engines — and only written out — when the
	// corresponding flags ask for it, keeping uninstrumented runs on
	// the nil-guarded fast path.
	collector *obs.Collector
}

// Begin starts the requested instrumentation (CPU profile, trace
// buffer) for the named tool.
func (f *CommonFlags) Begin(tool string) (*Session, error) {
	s := &Session{flags: f, tool: tool, collector: obs.NewCollector()}
	if f.CPUProfile != "" {
		stop, err := obs.StartCPUProfile(f.CPUProfile)
		if err != nil {
			return nil, err
		}
		s.stopCPU = stop
	}
	if f.Trace != "" {
		s.trace = obs.NewTraceBuffer(f.TraceCap)
	}
	return s, nil
}

// metricsEnabled reports whether run metrics were requested.
func (s *Session) metricsEnabled() bool { return s.flags.Metrics != "" }

// EngineTracer returns the tracer to install on DES engines: the trace
// buffer and/or the metrics collector, or a truly nil interface when
// neither was requested (so engines stay on the allocation-free
// disabled path).
func (s *Session) EngineTracer() des.Tracer {
	var ts []obs.EngineTracer
	if s.trace != nil {
		ts = append(ts, s.trace)
	}
	if s.metricsEnabled() {
		ts = append(ts, s.collector)
	}
	return obs.Tee(ts...)
}

// RunCollector returns the besst run collector, or nil when metrics
// were not requested.
func (s *Session) RunCollector() besst.Collector {
	if !s.metricsEnabled() {
		return nil
	}
	return s.collector
}

// SweepCollector returns the DSE sweep collector, or nil when metrics
// were not requested.
func (s *Session) SweepCollector() dse.Collector {
	if !s.metricsEnabled() {
		return nil
	}
	return s.collector
}

// RunOptions assembles the besst options the common flags imply: seed,
// concurrency, and — when requested — tracer and collector.
func (s *Session) RunOptions() []besst.Option {
	opts := []besst.Option{
		besst.WithSeed(s.flags.Seed),
		besst.WithConcurrency(s.flags.Workers),
	}
	if t := s.EngineTracer(); t != nil {
		opts = append(opts, besst.WithTracer(t))
	}
	if c := s.RunCollector(); c != nil {
		opts = append(opts, besst.WithCollector(c))
	}
	return opts
}

// Phase opens a named wall-clock phase and returns its closer. Phase
// timings are always recorded; they are only written to disk when
// -metrics is set (and surfaced by tools with a JSON summary).
func (s *Session) Phase(name string) func() {
	return s.collector.PhaseStart(name)
}

// Phases snapshots the phase timings recorded so far.
func (s *Session) Phases() []obs.PhaseMetrics {
	return s.collector.Snapshot(s.tool).Phases
}

// CampaignEnabled reports whether any campaign-resilience flag asks
// for the checkpointing/retry runner instead of the plain path.
func (s *Session) CampaignEnabled() bool {
	return s.flags.Ckpt != "" || s.flags.Resume || s.flags.Chaos > 0
}

// ckptPath resolves the -ckpt value for this tool: a .jsonl path is
// used verbatim, anything else is a directory getting the conventional
// CKPT_<tool>.jsonl name; -resume with no -ckpt defaults to the
// results directory. Empty when checkpointing is off (chaos-only
// campaigns run without a journal).
func (s *Session) ckptPath() string {
	dir := s.flags.Ckpt
	if dir == "" {
		if !s.flags.Resume {
			return ""
		}
		dir = "results"
	}
	if strings.HasSuffix(dir, ".jsonl") {
		return dir
	}
	return resilience.JournalPath(dir, s.tool)
}

// Campaign assembles the resilience campaign the common flags imply.
// configHash must fingerprint every flag that influences trial results
// (build it with resilience.ConfigHash); it is what stops -resume from
// splicing a stale journal into a differently configured run. The
// session collector always receives fault provenance, so quarantines
// and retries land in METRICS_<tool>.json whenever -metrics is set.
func (s *Session) Campaign(configHash string) resilience.Campaign {
	return resilience.Campaign{
		Tool:       s.tool,
		Path:       s.ckptPath(),
		ConfigHash: configHash,
		Seed:       s.flags.Seed,
		Workers:    s.flags.Workers,
		CkptEvery:  s.flags.CkptEvery,
		Resume:     s.flags.Resume,
		Chaos: resilience.ChaosConfig{
			PanicRate: s.flags.Chaos,
			DelayRate: s.flags.Chaos,
			Seed:      s.flags.Seed ^ 0x9e3779b97f4a7c15, // distinct from trial seeds
		},
		Collector: s.collector,
	}
}

// ReportCampaign prints the campaign's fault provenance to p: replayed
// trials on resume, and quarantined indices when the run degraded to a
// partial result. Tools call it right after the campaign completes so
// partial output is always labeled as such.
func ReportCampaign(p *Printer, rep resilience.Report) {
	if rep.Replayed > 0 {
		p.Printf("resumed: %d of %d trials replayed from checkpoint, %d re-run\n",
			rep.Replayed, rep.N, rep.N-rep.Replayed)
	}
	if len(rep.FailedIndices) > 0 {
		p.Printf("WARNING: %d of %d trials quarantined after retries (indices %v); results are partial\n",
			len(rep.FailedIndices), rep.N, rep.FailedIndices)
	}
}

// metricsPath resolves the -metrics value: a .json path is used
// verbatim, anything else is a directory getting the conventional
// METRICS_<tool>.json name.
func (s *Session) metricsPath() string {
	if strings.HasSuffix(s.flags.Metrics, ".json") {
		return s.flags.Metrics
	}
	return obs.MetricsPath(s.flags.Metrics, s.tool)
}

// Close stops profiling and flushes every requested artifact (CPU and
// heap profiles, trace JSON, metrics JSON). It returns the first
// failure but attempts all of them.
func (s *Session) Close() error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.stopCPU != nil {
		keep(s.stopCPU())
		s.stopCPU = nil
	}
	if s.flags.MemProfile != "" {
		keep(obs.WriteHeapProfile(s.flags.MemProfile))
	}
	if s.trace != nil {
		keep(writeFile(s.flags.Trace, func(f *os.File) error {
			return s.trace.WriteChromeTrace(f)
		}))
	}
	if s.metricsEnabled() {
		keep(writeFile(s.metricsPath(), func(f *os.File) error {
			return s.collector.WriteMetrics(f, s.tool)
		}))
	}
	return first
}

// writeFile creates path (making parent directories) and streams
// content into it, reporting create, write, and close failures.
func writeFile(path string, write func(*os.File) error) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("cli: mkdir %s: %w", dir, err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("cli: create %s: %w", path, err)
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("cli: write %s: %w", path, werr)
	}
	if cerr != nil {
		return fmt.Errorf("cli: close %s: %w", path, cerr)
	}
	return nil
}
