package cli

import (
	"errors"
	"strings"
	"testing"
)

type failAfter struct {
	n   int
	err error
	b   strings.Builder
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.b.Len() >= f.n {
		return 0, f.err
	}
	return f.b.Write(p)
}

func TestPrinterPassesThrough(t *testing.T) {
	var b strings.Builder
	p := NewPrinter(&b)
	p.Printf("a=%d ", 1)
	p.Print("b")
	p.Println(" c")
	if got, want := b.String(), "a=1 b c\n"; got != want {
		t.Fatalf("output %q, want %q", got, want)
	}
	if p.Err() != nil {
		t.Fatalf("unexpected error: %v", p.Err())
	}
}

func TestPrinterRecordsFirstError(t *testing.T) {
	boom := errors.New("boom")
	f := &failAfter{n: 0, err: boom}
	p := NewPrinter(f)
	p.Println("lost")
	p.Println("also lost")
	if !errors.Is(p.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", p.Err(), boom)
	}
}

func TestWrapReusesPrinter(t *testing.T) {
	var b strings.Builder
	p := NewPrinter(&b)
	if Wrap(p) != p {
		t.Fatal("Wrap should return the same Printer")
	}
	q := Wrap(&b)
	if q == p {
		t.Fatal("Wrap of a plain writer must allocate a new Printer")
	}
	q.Printf("x")
	if b.String() != "x" {
		t.Fatalf("wrapped printer did not write: %q", b.String())
	}
}
