package des

import (
	"bytes"
	"encoding/json"
	"testing"

	"besst/internal/obs"
)

// buildRing wires n echo components into a ring with the given latency
// on engine e, distributing them round-robin over its partitions.
func buildRing(e *ParallelEngine, n int, latency Time) []*echo {
	comps := make([]*echo, n)
	ids := make([]ComponentID, n)
	for i := 0; i < n; i++ {
		comps[i] = &echo{}
		ids[i] = e.RegisterIn(i%e.Partitions(), comps[i])
	}
	for i := 0; i < n; i++ {
		e.Connect(ids[i], "peer", ids[(i+1)%n], "peer", latency)
	}
	return comps
}

// TestParallelEngineObservabilityFixture is the golden end-to-end
// fixture for the observability layer: a real parallel DES run with
// both a TraceBuffer and a Collector teed onto the engine must yield a
// parseable Chrome trace and a versioned metrics document with
// non-zero event counts and per-partition barrier-stall rows.
func TestParallelEngineObservabilityFixture(t *testing.T) {
	const nparts = 4
	buf := obs.NewTraceBuffer(obs.DefaultTraceCap)
	col := obs.NewCollector()

	e := NewParallelEngine(nparts, 100)
	e.SetTracer(obs.Tee(buf, col), 7)
	buildRing(e, 8, 100)
	e.ScheduleAt(0, 0, Payload{A: 40})
	e.Run(0)
	col.EngineTotals(e.Processed(), e.PeakQueueDepth())

	if buf.Len() == 0 {
		t.Fatal("trace buffer recorded no events")
	}
	for _, r := range buf.Records() {
		if r.Stream != 7 {
			t.Fatalf("record carries stream %d, want 7", r.Stream)
		}
	}

	// The Chrome trace must be valid JSON with complete ("X") spans
	// for dispatches and barrier waits plus instant ("i") queue marks.
	var cbuf bytes.Buffer
	if err := buf.WriteChromeTrace(&cbuf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
			PID   int    `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(cbuf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if trace.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", trace.DisplayTimeUnit)
	}
	phases := map[string]int{}
	for _, ev := range trace.TraceEvents {
		phases[ev.Phase]++
		if ev.PID != 7 {
			t.Fatalf("event pid %d, want stream 7", ev.PID)
		}
	}
	if phases["X"] == 0 || phases["i"] == 0 {
		t.Fatalf("trace phases %v: want both complete (X) and instant (i) events", phases)
	}

	// The metrics document must carry the schema version, the engine
	// totals, and one row per partition with barrier-stall fields.
	var mbuf bytes.Buffer
	if err := col.WriteMetrics(&mbuf, "fixture"); err != nil {
		t.Fatalf("WriteMetrics: %v", err)
	}
	var m struct {
		SchemaVersion   int    `json:"schema_version"`
		Tool            string `json:"tool"`
		EventsProcessed uint64 `json:"events_processed"`
		PeakQueueDepth  int    `json:"peak_queue_depth"`
		EventsExchanged uint64 `json:"events_exchanged"`
		Partitions      []struct {
			Part            int    `json:"part"`
			Events          uint64 `json:"events"`
			BarrierStallNs  *int64 `json:"barrier_stall_ns"`
			Windows         uint64 `json:"windows"`
			CrossEventsSent uint64 `json:"cross_events_sent"`
		} `json:"partitions"`
	}
	if err := json.Unmarshal(mbuf.Bytes(), &m); err != nil {
		t.Fatalf("metrics document is not valid JSON: %v", err)
	}
	if m.SchemaVersion != obs.MetricsSchemaVersion {
		t.Fatalf("schema_version = %d, want %d", m.SchemaVersion, obs.MetricsSchemaVersion)
	}
	if m.Tool != "fixture" {
		t.Fatalf("tool = %q, want fixture", m.Tool)
	}
	if m.EventsProcessed != e.Processed() || m.EventsProcessed == 0 {
		t.Fatalf("events_processed = %d, want %d (non-zero)", m.EventsProcessed, e.Processed())
	}
	if m.PeakQueueDepth <= 0 {
		t.Fatalf("peak_queue_depth = %d, want > 0", m.PeakQueueDepth)
	}
	if len(m.Partitions) != nparts {
		t.Fatalf("%d partition rows, want %d", len(m.Partitions), nparts)
	}
	var counted, crossed uint64
	for _, p := range m.Partitions {
		counted += p.Events
		crossed += p.CrossEventsSent
		if p.BarrierStallNs == nil {
			t.Fatalf("partition %d: barrier_stall_ns field missing", p.Part)
		}
		if p.Windows == 0 {
			t.Fatalf("partition %d: no barrier windows recorded", p.Part)
		}
	}
	if counted != m.EventsProcessed {
		t.Fatalf("partition events sum %d != events_processed %d", counted, m.EventsProcessed)
	}
	// Every ring hop crosses partitions here, so the adaptive exchange
	// counters must be populated and consistent.
	if m.EventsExchanged == 0 || crossed != m.EventsExchanged {
		t.Fatalf("cross-event sum %d vs events_exchanged %d, want equal and non-zero",
			crossed, m.EventsExchanged)
	}
}

// TestTracerDoesNotPerturbParallelRun asserts that attaching a
// recording tracer leaves the simulated trajectory untouched: same
// delivery times, same processed count, same end time.
func TestTracerDoesNotPerturbParallelRun(t *testing.T) {
	run := func(tr Tracer) ([]*echo, Time, uint64) {
		e := NewParallelEngine(4, 100)
		if tr != nil {
			e.SetTracer(tr, 0)
		}
		comps := buildRing(e, 8, 100)
		e.ScheduleAt(0, 0, Payload{A: 40})
		end := e.Run(0)
		return comps, end, e.Processed()
	}

	plain, plainEnd, plainN := run(nil)
	traced, tracedEnd, tracedN := run(obs.Tee(obs.NewTraceBuffer(1024), obs.NewCollector()))

	if plainEnd != tracedEnd || plainN != tracedN {
		t.Fatalf("traced run diverged: end %v vs %v, processed %d vs %d",
			tracedEnd, plainEnd, tracedN, plainN)
	}
	for i := range plain {
		a, b := plain[i].times, traced[i].times
		if len(a) != len(b) {
			t.Fatalf("component %d delivery count %d vs %d", i, len(b), len(a))
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("component %d delivery %d at %v vs %v", i, j, b[j], a[j])
			}
		}
	}
}
