package des

import "testing"

// ticker schedules itself every nanosecond until its counter runs out;
// the initial payload controls how many events it generates, so tests
// can build arbitrarily skewed per-component loads.
type ticker struct {
	seen int
}

func (c *ticker) HandleEvent(ctx *Context, ev Event) {
	c.seen++
	if ev.Payload.A > 0 {
		ctx.ScheduleSelf(1, Payload{A: ev.Payload.A - 1})
	}
}

// rebalanceRecorder captures the adaptive rebalance hook.
type rebalanceRecorder struct {
	fired     int
	moved     int
	maxBefore uint64
	maxAfter  uint64
}

func (r *rebalanceRecorder) EventDispatch(int, int, int, int64)      {}
func (r *rebalanceRecorder) EventReturn(int, int, int64)             {}
func (r *rebalanceRecorder) EventQueued(int, int, int, int64, int64) {}
func (r *rebalanceRecorder) BarrierArrive(int, int, int64)           {}
func (r *rebalanceRecorder) BarrierResume(int, int, int64)           {}
func (r *rebalanceRecorder) WindowClosed(int, int, int64, int64, int, int) {
}

func (r *rebalanceRecorder) RebalanceApplied(stream, moved int, maxBefore, maxAfter uint64) {
	r.fired++
	r.moved = moved
	r.maxBefore = maxBefore
	r.maxAfter = maxAfter
}

func TestRebalanceMovesSkewedLoad(t *testing.T) {
	e := NewParallelEngine(2, 10)
	defer e.Close()
	rec := &rebalanceRecorder{}
	e.SetTracer(rec, 3)
	// Everything lands in partition 0 with wildly uneven self-loads;
	// partition 1 starts empty.
	weights := []int64{40, 30, 5, 5}
	ids := make([]ComponentID, len(weights))
	for i := range weights {
		ids[i] = e.RegisterIn(0, &ticker{})
	}
	for i, w := range weights {
		e.ScheduleAt(0, ids[i], Payload{A: w})
	}
	e.Run(0)

	loads := e.ComponentLoads()
	for i, w := range weights {
		if loads[i] != uint64(w)+1 {
			t.Fatalf("component %d load = %d, want %d", i, loads[i], w+1)
		}
	}

	e.Reset()
	d := e.Rebalance()
	if !d.Applied || d.Moved == 0 {
		t.Fatalf("decision = %+v, want an applied move", d)
	}
	if d.MaxLoadAfter >= d.MaxLoadBefore {
		t.Fatalf("max load %d -> %d, want strict improvement", d.MaxLoadBefore, d.MaxLoadAfter)
	}
	// Greedy LPT on {41,31,6,6} over two bins: 41 alone, 31+6+6 together.
	if d.MaxLoadBefore != 84 || d.MaxLoadAfter != 43 {
		t.Fatalf("max load %d -> %d, want 84 -> 43", d.MaxLoadBefore, d.MaxLoadAfter)
	}
	if rec.fired != 1 || rec.moved != d.Moved || rec.maxBefore != 84 || rec.maxAfter != 43 {
		t.Fatalf("RebalanceApplied hook saw fired=%d moved=%d %d->%d",
			rec.fired, rec.moved, rec.maxBefore, rec.maxAfter)
	}
	if e.partOf[0] == e.partOf[1] {
		t.Fatalf("two heaviest components still share partition %d", e.partOf[0])
	}

	// The engine must still run correctly under the new assignment.
	for i, w := range weights {
		e.ScheduleAt(0, ids[i], Payload{A: w})
	}
	e.Run(0)
	for i, w := range weights {
		if got := e.ComponentLoads()[i]; got != 2*(uint64(w)+1) {
			t.Fatalf("component %d load after rerun = %d, want %d", i, got, 2*(w+1))
		}
	}
}

func TestRebalanceKeepsSubLookaheadClusters(t *testing.T) {
	e := NewParallelEngine(2, 10)
	defer e.Close()
	// Components 0 and 1 are joined by a latency-2 link (< lookahead), so
	// any reassignment must move them together.
	a := e.RegisterIn(0, &ticker{})
	b := e.RegisterIn(0, &ticker{})
	c := e.RegisterIn(0, &ticker{})
	e.Connect(a, "pair", b, "in", 2)
	e.ScheduleAt(0, a, Payload{A: 20})
	e.ScheduleAt(0, b, Payload{A: 20})
	e.ScheduleAt(0, c, Payload{A: 30})
	e.Run(0)
	e.Reset()
	d := e.Rebalance()
	if !d.Applied {
		t.Fatalf("decision = %+v, want applied", d)
	}
	if e.partOf[a] != e.partOf[b] {
		t.Fatalf("sub-lookahead pair split across partitions %d and %d",
			e.partOf[a], e.partOf[b])
	}
	if e.partOf[c] == e.partOf[a] {
		t.Fatalf("rebalance left everything in partition %d", e.partOf[c])
	}
}

func TestRebalanceNoImprovementUnapplied(t *testing.T) {
	e := NewParallelEngine(2, 10)
	defer e.Close()
	a := e.RegisterIn(0, &ticker{})
	b := e.RegisterIn(1, &ticker{})
	e.ScheduleAt(0, a, Payload{A: 10})
	e.ScheduleAt(0, b, Payload{A: 10})
	e.Run(0)
	e.Reset()
	d := e.Rebalance()
	if d.Applied || d.Moved != 0 {
		t.Fatalf("decision = %+v, want unapplied no-op on balanced loads", d)
	}
	if e.partOf[a] != 0 || e.partOf[b] != 1 {
		t.Fatalf("unapplied pass mutated assignment: %v", e.partOf)
	}
}

func TestRebalancePendingEventsPanics(t *testing.T) {
	e := NewParallelEngine(2, 10)
	id := e.RegisterIn(0, &ticker{})
	e.ScheduleAt(5, id, Payload{})
	defer func() {
		if recover() == nil {
			t.Fatal("Rebalance with queued events did not panic")
		}
	}()
	e.Rebalance()
}

// TestRebalanceThenRunMatchesSequential reruns a cross-partition
// workload after a committed rebalance and checks it still reproduces
// the sequential engine exactly — the reassignment must rebuild the
// widening matrices, not just the component map.
func TestRebalanceThenRunMatchesSequential(t *testing.T) {
	r := testRand(123)
	for trial := 0; trial < 20; trial++ {
		nparts := 2 + r.intn(3)
		tp := genTopology(&r, nparts)

		seq := NewEngine()
		seqComps := tp.build(
			func(i int, c Component) ComponentID { return seq.Register(c) },
			seq.Connect, seq.ScheduleAt)
		seq.Run(0)

		par := NewParallelEngine(nparts, wideningLookahead)
		var parComps []*hopRelay
		// Warm-up run measures loads; the topology generator never links
		// across partitions below the lookahead, so clusters stay movable.
		warm := tp.build(
			func(i int, c Component) ComponentID { return par.RegisterIn(tp.partOf[i], c) },
			par.Connect, par.ScheduleAt)
		par.Run(0)
		par.Reset()
		par.Rebalance() // applied or not, the engine must stay correct
		for _, c := range warm {
			c.times = c.times[:0]
		}
		parComps = warm
		for _, in := range tp.inits {
			par.ScheduleAt(in.t, in.c, Payload{A: in.a})
		}
		par.Run(0)
		par.Close()

		for i := range seqComps {
			s, p := seqComps[i].times, parComps[i].times
			if len(s) != len(p) {
				t.Fatalf("trial %d: component %d delivery count %d vs %d",
					trial, i, len(p), len(s))
			}
			for j := range s {
				if s[j] != p[j] {
					t.Fatalf("trial %d: component %d delivery %d at %d vs %d (ns)",
						trial, i, j, p[j], s[j])
				}
			}
		}
	}
}
