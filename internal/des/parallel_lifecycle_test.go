package des

import "testing"

// Lifecycle tests for the persistent-worker engine: full-Run allocation
// behaviour, Reset buffer reuse, Close semantics, and the adaptive
// window hook.

// TestParallelRunZeroAllocs pins the whole Run path — epoch barrier,
// worker wakeups, outbox exchange, inbox merge — at zero steady-state
// allocations. The warm-up run AllocsPerRun performs is what starts the
// workers and grows every buffer; after that, repeated Run/Reset cycles
// must not touch the heap.
func TestParallelRunZeroAllocs(t *testing.T) {
	e := NewParallelEngine(2, 10)
	defer e.Close()
	n := 0
	a := e.RegisterIn(0, &allocEcho{n: &n})
	b := e.RegisterIn(1, &allocEcho{n: &n})
	e.Connect(a, "out", b, "in", 10)
	e.Connect(b, "out", a, "in", 10)
	// Tickers keep both partitions active in the same windows, so the
	// multi-worker barrier path runs (a lone ping-pong would serialize
	// onto the inline single-active path).
	tickers := [2]*allocTicker{{}, {}}
	t0 := e.RegisterIn(0, tickers[0])
	t1 := e.RegisterIn(1, tickers[1])

	const bounces = 64
	const ticks = 256
	run := func() {
		e.Reset()
		n = bounces
		tickers[0].remaining = ticks
		tickers[1].remaining = ticks
		e.ScheduleAt(0, a, Payload{A: bounces})
		e.ScheduleAt(0, t0, Payload{})
		e.ScheduleAt(0, t1, Payload{})
		e.Run(0)
	}
	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Errorf("parallel Run: %.1f allocs/op on a warmed engine, want 0", avg)
	}
	if n != 0 || tickers[0].remaining != 0 || tickers[1].remaining != 0 {
		t.Fatalf("workload did not drain: n=%d ticks=%d/%d",
			n, tickers[0].remaining, tickers[1].remaining)
	}
}

// TestParallelResetReusesBuffers mirrors the Engine.Reset
// capacity-preservation test: Reset must keep the grown queue, outbox,
// and inbox backing arrays (so the next run starts warm) while zeroing
// their slots so stale Payload.Data references do not pin garbage.
func TestParallelResetReusesBuffers(t *testing.T) {
	e := NewParallelEngine(2, 10)
	defer e.Close()
	n := 0
	a := e.RegisterIn(0, &allocEcho{n: &n})
	b := e.RegisterIn(1, &allocEcho{n: &n})
	e.Connect(a, "out", b, "in", 10)
	e.Connect(b, "out", a, "in", 10)
	n = 32
	e.ScheduleAt(0, a, Payload{A: 32, Data: []byte("pinned")})
	e.Run(0)

	// Leave queued and in-flight cross events carrying Data references,
	// then Reset: white-box because a drained engine has empty boxes.
	p0, p1 := e.parts[0], e.parts[1]
	e.ScheduleAt(e.Now()+1, a, Payload{Data: []byte("queued")})
	p0.out[1] = append(p0.out[1], crossEvent{ev: Event{Payload: Payload{Data: []byte("boxed")}}})
	p1.inbox = append(p1.inbox, crossEvent{ev: Event{Payload: Payload{Data: []byte("inboxed")}}})

	qCap := cap(p0.queue.ev)
	outCap := cap(p0.out[1])
	inCap := cap(p1.inbox)
	if qCap == 0 || outCap == 0 || inCap == 0 {
		t.Fatalf("run left no grown buffers to check (caps %d/%d/%d)", qCap, outCap, inCap)
	}
	e.Reset()
	if got := cap(p0.queue.ev); got != qCap {
		t.Errorf("queue capacity %d after Reset, want %d kept", got, qCap)
	}
	if got := cap(p0.out[1]); got != outCap {
		t.Errorf("outbox capacity %d after Reset, want %d kept", got, outCap)
	}
	if got := cap(p1.inbox); got != inCap {
		t.Errorf("inbox capacity %d after Reset, want %d kept", got, inCap)
	}
	for i, ce := range p0.out[1][:cap(p0.out[1])] {
		if ce != (crossEvent{}) {
			t.Fatalf("outbox slot %d not zeroed: %+v", i, ce)
		}
	}
	for i, ce := range p1.inbox[:cap(p1.inbox)] {
		if ce != (crossEvent{}) {
			t.Fatalf("inbox slot %d not zeroed: %+v", i, ce)
		}
	}

	// The engine must run the same workload again on the kept workers.
	n = 32
	e.ScheduleAt(0, a, Payload{A: 32})
	e.Run(0)
	if n != 0 {
		t.Fatalf("rerun after Reset left n=%d, want 0", n)
	}
}

func TestParallelCloseIdempotent(t *testing.T) {
	e := NewParallelEngine(2, 10)
	n := 0
	a := e.RegisterIn(0, &allocEcho{n: &n})
	b := e.RegisterIn(1, &allocEcho{n: &n})
	e.Connect(a, "out", b, "in", 10)
	e.Connect(b, "out", a, "in", 10)
	n = 8
	e.ScheduleAt(0, a, Payload{A: 8})
	e.Run(0)
	processed := e.Processed()
	e.Close()
	e.Close() // idempotent
	if e.Processed() != processed {
		t.Fatalf("Close perturbed Processed: %d vs %d", e.Processed(), processed)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Run on a closed engine did not panic")
		}
	}()
	e.Run(0)
}

func TestParallelCloseNeverStarted(t *testing.T) {
	e := NewParallelEngine(4, 10)
	e.Close() // no workers ever started: must not hang or panic
}

// windowRecorder captures WindowClosed hooks (fired from the
// coordinator goroutine, i.e. the Run caller — no locking needed).
type windowRecorder struct {
	windows     int
	localEvents int
	crossSent   int
	unbounded   int
}

func (r *windowRecorder) EventDispatch(int, int, int, int64)      {}
func (r *windowRecorder) EventReturn(int, int, int64)             {}
func (r *windowRecorder) EventQueued(int, int, int, int64, int64) {}
func (r *windowRecorder) BarrierArrive(int, int, int64)           {}
func (r *windowRecorder) BarrierResume(int, int, int64)           {}
func (r *windowRecorder) RebalanceApplied(int, int, uint64, uint64) {
}

func (r *windowRecorder) WindowClosed(stream, part int, windowNs, widthNs int64, localEvents, crossSent int) {
	r.windows++
	r.localEvents += localEvents
	r.crossSent += crossSent
	if widthNs < 0 {
		r.unbounded++
	}
}

func TestParallelWindowClosedHook(t *testing.T) {
	e := NewParallelEngine(2, 10)
	defer e.Close()
	rec := &windowRecorder{}
	e.SetTracer(rec, 0)
	a := &echo{}
	bcomp := &echo{}
	aid := e.RegisterIn(0, a)
	bid := e.RegisterIn(1, bcomp)
	e.Connect(aid, "peer", bid, "peer", 10)
	e.Connect(bid, "peer", aid, "peer", 10)
	e.ScheduleAt(0, aid, Payload{A: 10})
	e.Run(0)

	if rec.windows == 0 {
		t.Fatal("WindowClosed never fired")
	}
	// 11 deliveries total; every forward (10 of them) crosses partitions.
	if rec.localEvents != 11 {
		t.Fatalf("local events sum %d, want 11", rec.localEvents)
	}
	if rec.crossSent != 10 {
		t.Fatalf("cross-sent sum %d, want 10", rec.crossSent)
	}
}
