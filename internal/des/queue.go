package des

// eventQueue is a concrete 4-ary min-heap over events, ordered by
// (Time, seq) so simultaneous events are processed in schedule order
// and runs stay bit-reproducible.
//
// It replaces container/heap on the hot path: the interface-based heap
// boxes every Event into an `any` on Push and back out on Pop — one
// heap allocation per scheduled event — while this queue moves events
// through a single reusable []Event backing array. The 4-ary shape
// halves the tree depth of a binary heap, trading a few extra sibling
// comparisons (cheap: two integer fields) for fewer cache-missing
// levels on sift-down.
type eventQueue struct {
	ev []Event
}

// eventBefore is the strict ordering: earlier time first, then FIFO by
// schedule sequence.
func eventBefore(a, b *Event) bool {
	if a.Time != b.Time {
		return a.Time < b.Time
	}
	return a.seq < b.seq
}

func (q *eventQueue) len() int { return len(q.ev) }

// reset empties the queue, keeping the backing array for reuse across
// trials. Slots are zeroed so stale escape-hatch payloads (Payload.Data)
// are not pinned by a pooled engine.
func (q *eventQueue) reset() {
	for i := range q.ev {
		q.ev[i] = Event{}
	}
	q.ev = q.ev[:0]
}

// peek returns the minimum event without removing it. The queue must be
// non-empty.
func (q *eventQueue) peek() *Event { return &q.ev[0] }

func (q *eventQueue) push(ev Event) {
	a := append(q.ev, ev)
	q.ev = a
	// Sift up: move the hole toward the root until the parent sorts
	// at-or-before the new event.
	i := len(a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventBefore(&ev, &a[parent]) {
			break
		}
		a[i] = a[parent]
		i = parent
	}
	a[i] = ev
}

func (q *eventQueue) pop() Event {
	a := q.ev
	top := a[0]
	last := len(a) - 1
	ev := a[last]
	a[last] = Event{} // drop payload references held in spare capacity
	a = a[:last]
	q.ev = a
	if last == 0 {
		return top
	}
	// Sift down: move the hole from the root toward the leaves, pulling
	// up the smallest of up to four children at each level.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if eventBefore(&a[c], &a[min]) {
				min = c
			}
		}
		if !eventBefore(&a[min], &ev) {
			break
		}
		a[i] = a[min]
		i = min
	}
	a[i] = ev
	return top
}
