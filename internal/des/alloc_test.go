package des

import "testing"

// These tests pin the central performance property of the engine
// refactor: once an engine is warmed (queue capacity grown, links
// wired), the steady-state event path — pop, dispatch, schedule, push —
// performs zero heap allocations. Typed payloads keep event content out
// of interfaces, the inlined heap keeps events out of container/heap's
// `any` boxing, and the reused Context kills the per-dispatch escape.
// A regression here silently reintroduces per-event garbage, which is
// exactly what the bench-regression gate exists to catch; this test
// catches it in tier-1 `go test ./...` without running benchmarks.

// allocEcho bounces an event back over its "out" link while the shared
// countdown is positive, exercising the link-send path.
type allocEcho struct{ n *int }

func (e *allocEcho) HandleEvent(ctx *Context, ev Event) {
	if *e.n > 0 {
		*e.n--
		ctx.Send("out", 0, Payload{Kind: 1, A: int64(*e.n)})
	}
}

// allocTicker counts down via self events, exercising ScheduleSelf.
type allocTicker struct{ remaining int }

func (t *allocTicker) HandleEvent(ctx *Context, ev Event) {
	if t.remaining > 0 {
		t.remaining--
		ctx.ScheduleSelf(1, Payload{Kind: 2, A: int64(t.remaining)})
	}
}

func TestSequentialDispatchZeroAllocs(t *testing.T) {
	e := NewEngine()
	n := 0
	a := e.Register(&allocEcho{n: &n})
	b := e.Register(&allocEcho{n: &n})
	e.Connect(a, "out", b, "in", 1)
	e.Connect(b, "out", a, "in", 1)

	const events = 512
	run := func() {
		e.Reset()
		n = events
		e.ScheduleAt(0, a, Payload{A: events})
		e.Run(0)
	}
	// AllocsPerRun invokes run once as warm-up before measuring, which
	// is when the queue's backing array grows to steady-state capacity.
	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Errorf("sequential dispatch: %.1f allocs/op on a warmed engine, want 0", avg)
	}
}

func TestParallelWindowDispatchZeroAllocs(t *testing.T) {
	// White-box view of the per-partition steady state: runWindow is the
	// code every worker spends its life in, and it must not allocate.
	// TestParallelRunZeroAllocs covers the full Run path (barrier,
	// outboxes, exchange) on top of it.
	e := NewParallelEngine(2, 10)
	tickers := [2]*allocTicker{{}, {}}
	ids := [2]ComponentID{
		e.RegisterIn(0, tickers[0]),
		e.RegisterIn(1, tickers[1]),
	}

	const events = 256
	run := func() {
		e.Reset()
		for i, tk := range tickers {
			tk.remaining = events
			e.ScheduleAt(0, ids[i], Payload{})
		}
		for _, p := range e.parts {
			p.runWindow(events + 2)
		}
	}
	if avg := testing.AllocsPerRun(10, run); avg > 0 {
		t.Errorf("partition window dispatch: %.1f allocs/op on a warmed engine, want 0", avg)
	}
	// Sanity: the ticker chains actually drained inside the window.
	for i, tk := range tickers {
		if tk.remaining != 0 {
			t.Fatalf("partition %d processed only part of its chain (%d left)", i, tk.remaining)
		}
	}
}
