package des

import (
	"sort"
	"testing"
)

// TestEventQueueOrdering drains a queue filled with heavily tied
// timestamps and checks pops come out in exact (Time, seq) order
// against a reference sort — the determinism contract the inlined
// 4-ary heap must uphold.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	// Deterministic LCG; many duplicate times so seq tie-breaking is
	// exercised hard.
	x := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x
	}
	const n = 4096
	type key struct {
		t   Time
		seq uint64
	}
	want := make([]key, 0, n)
	for i := 0; i < n; i++ {
		tm := Time(next() % 64)
		q.push(Event{Time: tm, seq: uint64(i), Dst: ComponentID(i)})
		want = append(want, key{tm, uint64(i)})
	}
	sort.Slice(want, func(i, j int) bool {
		if want[i].t != want[j].t {
			return want[i].t < want[j].t
		}
		return want[i].seq < want[j].seq
	})
	for i := 0; i < n; i++ {
		if pk := q.peek(); pk.Time != want[i].t || pk.seq != want[i].seq {
			t.Fatalf("peek %d: got (%d, %d), want (%d, %d)", i, pk.Time, pk.seq, want[i].t, want[i].seq)
		}
		got := q.pop()
		if got.Time != want[i].t || got.seq != want[i].seq {
			t.Fatalf("pop %d: got (%d, %d), want (%d, %d)", i, got.Time, got.seq, want[i].t, want[i].seq)
		}
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after draining: %d left", q.len())
	}
}

// TestEventQueueInterleaved mixes pushes and pops and checks every pop
// still returns the global minimum of what is currently queued.
func TestEventQueueInterleaved(t *testing.T) {
	var q eventQueue
	x := uint64(7)
	next := func() uint64 {
		x = x*6364136223846793005 + 1442695040888963407
		return x
	}
	live := map[uint64]Time{} // seq -> time of everything queued
	seq := uint64(0)
	for round := 0; round < 2000; round++ {
		if q.len() == 0 || next()%3 != 0 {
			tm := Time(next() % 32)
			q.push(Event{Time: tm, seq: seq})
			live[seq] = tm
			seq++
			continue
		}
		got := q.pop()
		wantT, ok := live[got.seq]
		if !ok || got.Time != wantT {
			t.Fatalf("round %d: popped unknown/mismatched event (%d, %d)", round, got.Time, got.seq)
		}
		for s, tm := range live {
			if tm < got.Time || (tm == got.Time && s < got.seq) {
				t.Fatalf("round %d: popped (%d, %d) while (%d, %d) still queued", round, got.Time, got.seq, tm, s)
			}
		}
		delete(live, got.seq)
	}
}

// TestEventQueueResetAndPopClearSlots verifies vacated backing-array
// slots are zeroed: a pooled engine must not pin escape-hatch payload
// data (Payload.Data) through spare queue capacity.
func TestEventQueueResetAndPopClearSlots(t *testing.T) {
	var q eventQueue
	for i := 0; i < 16; i++ {
		q.push(Event{Time: Time(i), seq: uint64(i), Payload: Payload{Data: "pinned"}})
	}
	for i := 0; i < 8; i++ {
		q.pop()
	}
	if got := q.ev[:cap(q.ev)]; got[len(q.ev)].Payload.Data != nil {
		t.Fatal("pop left payload data in the vacated slot")
	}
	cp := cap(q.ev)
	q.reset()
	if q.len() != 0 {
		t.Fatalf("reset left %d events queued", q.len())
	}
	if cap(q.ev) != cp {
		t.Fatalf("reset dropped backing capacity: %d -> %d", cp, cap(q.ev))
	}
	full := q.ev[:cap(q.ev)]
	for i := range full {
		if full[i].Payload.Data != nil {
			t.Fatalf("reset left payload data in slot %d", i)
		}
	}
}
