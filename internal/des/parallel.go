package des

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// maxWindow is the exclusive window edge meaning "unbounded": a
// partition with no inbound cross-partition constraint may drain every
// event it holds.
const maxWindow = Time(math.MaxInt64)

// shutdownWindow is the sentinel window edge telling a persistent
// worker to exit (real edges are always positive).
const shutdownWindow = Time(-1)

// ParallelEngine is a conservative parallel discrete-event simulator.
//
// Components are assigned to partitions; each partition is executed by
// a persistent worker goroutine with a private event queue. Execution
// proceeds in windows: every active partition processes all events with
// timestamp strictly below its window edge, then the partitions
// synchronize at a lightweight epoch barrier (an atomic arrival counter
// plus buffered channel wakeups — no goroutine is ever spawned per
// window) and exchange cross-partition events through per-destination
// outboxes whose buffers are reused across windows.
//
// The per-partition window edge is statically widened past the global
// lookahead: Connect maintains the minimum cross-link latency for every
// (source, destination) partition pair, whose min-plus transitive
// closure lower-bounds how fast influence can travel between any two
// partitions over any chain of links. A partition may safely run to the
// earliest time any event-holding partition — including itself, via the
// shortest echo cycle — could reach it: min over q of q.next +
// dist[q][p]. Cross events are only delivered at barriers, never
// mid-window, so nothing can land inside the widened window. The engine
// lookahead remains the floor for every cross-partition link latency
// (checked at Connect), which guarantees the globally-earliest
// partition always clears at least one event per window.
//
// Results are bit-identical to the sequential Engine for models whose
// behaviour depends only on per-component event order (the BE-SST
// components in this repository), and are themselves deterministic
// across runs regardless of goroutine scheduling: cross-partition
// deliveries are merged in (time, source partition, source sequence)
// order at each barrier.
//
// Call Close when done with an engine that has run multi-partition
// windows to stop its workers; a never-started or single-partition
// engine holds no goroutines.
type ParallelEngine struct {
	components []Component
	partOf     []int // component -> partition
	links      map[portKey]halfLink
	parts      []*partition
	lookahead  Time
	// pairMin[q*nparts+p] is the minimum latency over links from a
	// component in partition q to one in partition p (-1 when no such
	// link exists). Maintained by Connect and rebuilt by Rebalance.
	pairMin []Time
	// dist is the min-plus transitive closure of pairMin: dist[q*n+p]
	// lower-bounds the simulated time any influence leaving partition q
	// needs to reach partition p over any chain of cross links, however
	// many idle partitions relay it (intra-partition hops add no edge —
	// they may be zero-latency). The diagonal is the shortest nontrivial
	// cycle back to the partition itself, which is what bounds a
	// partition against echoes of its own sends. Recomputed lazily at
	// Run when the wiring or the assignment changed; it is what lets
	// safeBound widen a partition's window past the global lookahead.
	dist      []Time
	distDirty bool
	// loads counts delivered events per component across runs (Reset
	// keeps it): the workload measurement Rebalance feeds on. Workers
	// write disjoint indices — a component is only ever dispatched by
	// the partition that owns it.
	loads     []uint64
	now       Time
	running   bool
	processed uint64
	tracer    Tracer         // nil unless SetTracer was called
	adaptive  AdaptiveTracer // tracer's optional extension, nil if absent
	stream    int            // stream tag passed to every tracer hook

	// Persistent-worker state. Workers start lazily at the first window
	// with two or more active partitions and live until Close: the
	// coordinator publishes each active partition's window edge over its
	// buffered wake channel, workers decrement pending as they finish,
	// and the last one signals the barrier channel.
	started bool
	closed  bool
	pending atomic.Int32
	barrier chan struct{}
	wg      sync.WaitGroup

	active []int  // scratch: partitions woken this window
	ends   []Time // scratch: per-partition window edge, indexed by partition
}

type partition struct {
	eng   *ParallelEngine
	index int
	queue eventQueue
	ctx   Context // reused across this partition's dispatches
	seq   uint64
	// out buffers cross-partition sends per destination partition. Only
	// the goroutine running this partition's window appends, so the
	// slices need no locks; the coordinator drains them at the barrier
	// and the backing arrays are reused across windows.
	out [][]crossEvent
	// inbox accumulates the cross events the coordinator routed here at
	// the barrier; the owning worker sorts and enqueues them at the
	// start of its next window, spreading merge work across workers.
	inbox     []crossEvent
	count     uint64 // events processed since the last flush
	crossSent int    // cross events sent this window (adaptive tracer)
	// next caches the earliest pending time — queue head or routed
	// inbox minimum, -1 when neither — so the coordinator's min-scan
	// between windows never touches the heaps. Maintained by the owning
	// worker at window end and by the coordinator during ScheduleAt and
	// the barrier exchange — never concurrently.
	next Time
	// now is the timestamp of the event currently being handled, kept
	// so tracer hooks can stamp scheduling times without threading the
	// context through the scheduler interface.
	now Time
	// last is the timestamp of this partition's most recent dispatch,
	// which is where the engine clock lands when the simulation drains.
	last Time
	// wake carries the partition's next window edge (or shutdownWindow)
	// from the coordinator to the parked worker. Buffered so the
	// coordinator never blocks: a worker always consumes its previous
	// edge before the barrier that precedes the next send.
	wake chan Time
	// stat accumulates cumulative per-partition counters for run
	// metrics, under the same ownership discipline as next.
	stat PartitionStat
}

type crossEvent struct {
	ev      Event
	srcPart int
	srcSeq  uint64
}

// NewParallelEngine returns an engine with nparts partitions and the
// given lookahead window. Lookahead must be positive: a zero-lookahead
// conservative simulation cannot make parallel progress.
func NewParallelEngine(nparts int, lookahead Time) *ParallelEngine {
	if nparts <= 0 {
		panic("des: non-positive partition count")
	}
	if lookahead <= 0 {
		panic("des: non-positive lookahead")
	}
	e := &ParallelEngine{
		links:     make(map[portKey]halfLink),
		lookahead: lookahead,
		pairMin:   make([]Time, nparts*nparts),
		dist:      make([]Time, nparts*nparts),
		barrier:   make(chan struct{}, 1),
		active:    make([]int, 0, nparts),
		ends:      make([]Time, nparts),
	}
	for i := range e.pairMin {
		e.pairMin[i] = -1
		e.dist[i] = -1
	}
	for i := 0; i < nparts; i++ {
		p := &partition{
			eng:   e,
			index: i,
			next:  -1,
			out:   make([][]crossEvent, nparts),
			wake:  make(chan Time, 1),
		}
		p.ctx.sch = p
		e.parts = append(e.parts, p)
	}
	return e
}

// Partitions returns the number of partitions.
func (e *ParallelEngine) Partitions() int { return len(e.parts) }

// RegisterIn adds a component to the given partition and returns its ID.
func (e *ParallelEngine) RegisterIn(part int, c Component) ComponentID {
	if e.running {
		panic("des: RegisterIn during Run")
	}
	if part < 0 || part >= len(e.parts) {
		panic(fmt.Sprintf("des: partition %d out of range", part))
	}
	e.components = append(e.components, c)
	e.partOf = append(e.partOf, part)
	e.loads = append(e.loads, 0)
	return ComponentID(len(e.components) - 1)
}

// Connect wires a unidirectional link. Cross-partition links must have
// latency >= the engine lookahead; violating that breaks conservative
// safety, so it panics at wiring time rather than corrupting a run.
func (e *ParallelEngine) Connect(src ComponentID, srcPort string, dst ComponentID, dstPort string, latency Time) {
	if latency < 0 {
		panic("des: negative link latency")
	}
	sp, dp := e.partOf[src], e.partOf[dst]
	if sp != dp && latency < e.lookahead {
		panic(fmt.Sprintf("des: cross-partition link %d/%q latency %v below lookahead %v",
			src, srcPort, latency, e.lookahead))
	}
	key := portKey{src, srcPort}
	if _, dup := e.links[key]; dup {
		panic(fmt.Sprintf("des: duplicate link %d/%q", src, srcPort))
	}
	e.links[key] = halfLink{dst: dst, dstPort: dstPort, latency: latency}
	if sp != dp {
		if i := sp*len(e.parts) + dp; e.pairMin[i] < 0 || latency < e.pairMin[i] {
			e.pairMin[i] = latency
			e.distDirty = true
		}
	}
}

// ScheduleAt enqueues an initial event for dst at absolute time t.
func (e *ParallelEngine) ScheduleAt(t Time, dst ComponentID, payload Payload) {
	if t < e.now {
		panic("des: scheduling into the past")
	}
	p := e.parts[e.partOf[dst]]
	ev := Event{Time: t, Dst: dst, Payload: payload, seq: p.seq}
	p.seq++
	p.queue.push(ev)
	if p.queue.len() > p.stat.PeakQueueDepth {
		p.stat.PeakQueueDepth = p.queue.len()
	}
	if p.next < 0 || t < p.next {
		p.next = t
	}
	if e.tracer != nil {
		e.tracer.EventQueued(e.stream, p.index, int(dst), int64(e.now), int64(t))
	}
}

// Now returns the current simulated time (the completed window edge, or
// the final dispatch time once the simulation drains).
func (e *ParallelEngine) Now() Time { return e.now }

// Processed returns the number of events delivered since construction
// or the last Reset.
func (e *ParallelEngine) Processed() uint64 { return e.processed }

// PartitionStats snapshots every partition's cumulative counters. It
// must not be called while Run is in progress.
func (e *ParallelEngine) PartitionStats() []PartitionStat {
	if e.running {
		panic("des: PartitionStats during Run")
	}
	out := make([]PartitionStat, len(e.parts))
	for i, p := range e.parts {
		out[i] = p.stat
	}
	return out
}

// PeakQueueDepth returns the deepest any partition's private queue
// ever grew. It must not be called while Run is in progress.
func (e *ParallelEngine) PeakQueueDepth() int {
	if e.running {
		panic("des: PeakQueueDepth during Run")
	}
	peak := 0
	for _, p := range e.parts {
		if p.stat.PeakQueueDepth > peak {
			peak = p.stat.PeakQueueDepth
		}
	}
	return peak
}

// SetTracer attaches a lifecycle tracer; nil detaches. Hooks fire
// concurrently from the partition workers, so the tracer must be safe
// for concurrent use. A tracer that also implements AdaptiveTracer
// additionally receives per-window synchronization decisions. stream
// tags every hook from this engine. Must not be called while Run is in
// progress.
func (e *ParallelEngine) SetTracer(t Tracer, stream int) {
	if e.running {
		panic("des: SetTracer during Run")
	}
	e.tracer = t
	e.adaptive, _ = t.(AdaptiveTracer)
	e.stream = stream
}

// Reset rewinds the engine to time zero for another run, mirroring
// Engine.Reset: pending events, outboxes, inboxes, and counters are
// cleared while components, links, the tracer, the persistent workers,
// and every buffer's capacity are kept. Component load counters
// survive (see ComponentLoads).
func (e *ParallelEngine) Reset() {
	if e.running {
		panic("des: Reset during Run")
	}
	e.now = 0
	e.processed = 0
	for _, p := range e.parts {
		p.queue.reset()
		p.seq = 0
		for d := range p.out {
			box := p.out[d][:cap(p.out[d])]
			for k := range box {
				box[k] = crossEvent{} // drop payload references
			}
			p.out[d] = box[:0]
		}
		in := p.inbox[:cap(p.inbox)]
		for k := range in {
			in[k] = crossEvent{}
		}
		p.inbox = in[:0]
		p.count = 0
		p.crossSent = 0
		p.next = -1
		p.now = 0
		p.last = 0
		p.stat = PartitionStat{}
	}
}

// Close stops the persistent partition workers. It is idempotent and
// safe on an engine whose workers never started; a closed engine
// rejects further Run calls but stays readable (Processed, stats).
// Must not be called while Run is in progress.
func (e *ParallelEngine) Close() {
	if e.running {
		panic("des: Close during Run")
	}
	if e.closed {
		return
	}
	e.closed = true
	if !e.started {
		return
	}
	for _, p := range e.parts {
		p.wake <- shutdownWindow
	}
	e.wg.Wait()
}

// partition implements scheduler for the components it hosts.

func (p *partition) schedule(ev Event) {
	dstPart := p.eng.partOf[ev.Dst]
	if dstPart == p.index {
		ev.seq = p.seq
		p.seq++
		p.queue.push(ev)
		if p.queue.len() > p.stat.PeakQueueDepth {
			p.stat.PeakQueueDepth = p.queue.len()
		}
		if t := p.eng.tracer; t != nil {
			t.EventQueued(p.eng.stream, p.index, int(ev.Dst), int64(p.now), int64(ev.Time))
		}
		return
	}
	p.out[dstPart] = append(p.out[dstPart], crossEvent{
		ev:      ev,
		srcPart: p.index,
		srcSeq:  p.seq,
	})
	p.seq++
	p.crossSent++
	if t := p.eng.tracer; t != nil {
		t.EventQueued(p.eng.stream, p.index, int(ev.Dst), int64(p.now), int64(ev.Time))
	}
}

func (p *partition) link(src ComponentID, port string) (halfLink, bool) {
	l, ok := p.eng.links[portKey{src, port}]
	return l, ok
}

// sort.Interface over the inbox, on the partition itself so sorting
// allocates nothing (a *partition converts to sort.Interface without
// boxing). The key — (time, source partition, source sequence) — is
// identical for every worker schedule, which is what makes the merge,
// and therefore the whole run, deterministic.

func (p *partition) Len() int { return len(p.inbox) }

func (p *partition) Less(i, j int) bool {
	a, b := &p.inbox[i], &p.inbox[j]
	if a.ev.Time != b.ev.Time {
		return a.ev.Time < b.ev.Time
	}
	if a.srcPart != b.srcPart {
		return a.srcPart < b.srcPart
	}
	return a.srcSeq < b.srcSeq
}

func (p *partition) Swap(i, j int) { p.inbox[i], p.inbox[j] = p.inbox[j], p.inbox[i] }

// mergeInbox enqueues the cross events the coordinator routed here,
// in deterministic merge order. Runs on the goroutine that owns the
// partition's window, so the sort and heap work parallelizes instead
// of serializing on the coordinator.
func (p *partition) mergeInbox() {
	if len(p.inbox) == 0 {
		return
	}
	sort.Sort(p)
	for i := range p.inbox {
		ev := p.inbox[i].ev
		ev.seq = p.seq
		p.seq++
		p.queue.push(ev)
		p.inbox[i] = crossEvent{} // drop payload references
	}
	p.inbox = p.inbox[:0]
	if p.queue.len() > p.stat.PeakQueueDepth {
		p.stat.PeakQueueDepth = p.queue.len()
	}
}

// runWindow processes all events with Time < windowEnd in this
// partition, then refreshes the cached next-event time for the
// coordinator's min-scan.
func (p *partition) runWindow(windowEnd Time) {
	tr := p.eng.tracer
	loads := p.eng.loads
	dispatched := false
	for p.queue.len() > 0 && p.queue.peek().Time < windowEnd {
		ev := p.queue.pop()
		p.ctx.id = ev.Dst
		p.ctx.now = ev.Time
		p.now = ev.Time
		if tr != nil {
			tr.EventDispatch(p.eng.stream, p.index, int(ev.Dst), int64(ev.Time))
			p.eng.components[int(ev.Dst)].HandleEvent(&p.ctx, ev)
			tr.EventReturn(p.eng.stream, p.index, int64(ev.Time))
		} else {
			p.eng.components[int(ev.Dst)].HandleEvent(&p.ctx, ev)
		}
		loads[int(ev.Dst)]++
		p.count++
		dispatched = true
	}
	if dispatched {
		p.last = p.now
	}
	p.stat.Windows++
	if p.queue.len() > 0 {
		p.next = p.queue.peek().Time
	} else {
		p.next = -1
	}
}

// work is the persistent worker loop: park on the wake channel, merge
// the inbox, run the window named by the received edge, and signal the
// epoch barrier when the last active worker finishes. One goroutine
// per partition, started lazily by the first multi-partition window and
// stopped by Close.
func (p *partition) work() {
	e := p.eng
	defer e.wg.Done()
	for {
		end := <-p.wake
		if end == shutdownWindow {
			return
		}
		if t := e.tracer; t != nil {
			t.BarrierResume(e.stream, p.index, int64(end))
		}
		p.mergeInbox()
		p.runWindow(end)
		if t := e.tracer; t != nil {
			t.BarrierArrive(e.stream, p.index, int64(end))
		}
		if e.pending.Add(-1) == 0 {
			e.barrier <- struct{}{}
		}
	}
}

// startWorkers launches the persistent workers, once per engine.
func (e *ParallelEngine) startWorkers() {
	if e.started {
		return
	}
	e.started = true
	for _, p := range e.parts {
		e.wg.Add(1)
		go p.work()
	}
}

// flushCounts folds every partition's in-window event tally into the
// engine total. It runs on every Run exit path (and at each barrier) so
// Processed() is never stale, whichever branch returned.
func (e *ParallelEngine) flushCounts() {
	for _, p := range e.parts {
		e.processed += p.count
		p.stat.Processed += p.count
		p.count = 0
	}
}

// computeDist rebuilds the min-plus transitive closure of pairMin
// (Floyd–Warshall over the partition graph, -1 as +infinity). The
// diagonal starts unreachable — a partition has no zero-length path to
// itself here — so relaxation leaves dist[p][p] as the shortest
// nontrivial cycle through p, exactly the earliest a partition's own
// sends can echo back into it.
func (e *ParallelEngine) computeDist() {
	n := len(e.parts)
	copy(e.dist, e.pairMin)
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			ik := e.dist[i*n+k]
			if ik < 0 {
				continue
			}
			for j := 0; j < n; j++ {
				kj := e.dist[k*n+j]
				if kj < 0 {
					continue
				}
				sum := ik + kj
				if sum < ik { // overflow
					sum = maxWindow
				}
				if d := e.dist[i*n+j]; d < 0 || sum < d {
					e.dist[i*n+j] = sum
				}
			}
		}
	}
	e.distDirty = false
}

// safeBound returns partition pi's widened exclusive window edge:
// max(base, min over event-holding partitions q of q.next+dist[q][pi]).
// Every event some q dispatches from here on has Time >= q.next, and any
// influence it exerts on pi — directly, relayed through other partitions
// over later barriers, or cycling back when q == pi — travels links
// summing to at least dist[q][pi]. Cross events are only delivered at
// barriers, so nothing can land inside that bound, and running pi's
// local events up to it is safe. A partition with no inbound constraint
// is unbounded and may drain.
func (e *ParallelEngine) safeBound(pi int, base Time) Time {
	n := len(e.parts)
	bound := Time(-1)
	for qi, q := range e.parts {
		if q.next < 0 {
			continue
		}
		lat := e.dist[qi*n+pi]
		if lat < 0 {
			continue
		}
		b := q.next + lat
		if b < q.next { // overflow
			b = maxWindow
		}
		if bound < 0 || b < bound {
			bound = b
		}
	}
	if bound < 0 {
		return maxWindow
	}
	if bound < base {
		return base
	}
	return bound
}

// exchange routes every active partition's outboxes into the
// destination inboxes in one pass (buffers reused, nothing copied
// twice), refreshes the destinations' cached next-event times, and
// reports the closed window to the adaptive tracer.
func (e *ParallelEngine) exchange(minT Time) {
	for _, qi := range e.active {
		q := e.parts[qi]
		if q.crossSent == 0 {
			continue
		}
		for d := range q.out {
			box := q.out[d]
			if len(box) == 0 {
				continue
			}
			dst := e.parts[d]
			dst.inbox = append(dst.inbox, box...)
			for k := range box {
				if t := box[k].ev.Time; dst.next < 0 || t < dst.next {
					dst.next = t
				}
			}
			q.out[d] = box[:0]
		}
	}
	if e.adaptive != nil {
		for _, qi := range e.active {
			q := e.parts[qi]
			end := e.ends[qi]
			width := int64(-1) // unbounded: the partition drained freely
			if end != maxWindow {
				width = int64(end - minT)
			}
			e.adaptive.WindowClosed(e.stream, qi, int64(end), width, int(q.count), q.crossSent)
		}
	}
	for _, qi := range e.active {
		e.parts[qi].crossSent = 0
	}
}

// Run executes the simulation until no events remain anywhere or the
// horizon is reached (horizon <= 0 means none). It returns the final
// simulated time.
//
// Each iteration picks the active partitions (those holding an
// admissible event or an unmerged inbox), computes their widened window
// edges, and releases them through the epoch barrier. A window with a
// single active partition runs inline on the coordinator — no wakeup,
// no barrier — so skewed or serialized phases cost no synchronization.
func (e *ParallelEngine) Run(horizon Time) Time {
	if e.closed {
		panic("des: Run on closed engine")
	}
	e.running = true
	defer func() { e.running = false }()
	defer e.flushCounts()
	if e.distDirty {
		e.computeDist()
	}

	for {
		// Global minimum next-event time, read from the cached
		// per-partition heads instead of re-inspecting every heap.
		minT := Time(-1)
		for _, p := range e.parts {
			if p.next >= 0 && (minT < 0 || p.next < minT) {
				minT = p.next
			}
		}
		if minT < 0 {
			// Drained: land the clock on the latest dispatch, like the
			// sequential engine (widened windows may run partitions past
			// the last synchronized edge, so the edge alone is stale).
			for _, p := range e.parts {
				if p.last > e.now {
					e.now = p.last
				}
			}
			return e.now
		}
		if horizon > 0 && minT > horizon {
			e.now = horizon
			return e.now
		}
		base := minT + e.lookahead
		if base <= minT { // overflow
			base = maxWindow
		}
		// Clamp windows at the horizon so no event beyond it is
		// processed: the sequential engine delivers events with
		// Time <= horizon and leaves the rest queued, and Time is
		// integral, so horizon+1 is the matching exclusive edge.
		if horizon > 0 && base > horizon+1 {
			base = horizon + 1
		}

		e.active = e.active[:0]
		for i, p := range e.parts {
			if p.next < 0 {
				continue
			}
			end := e.safeBound(i, base)
			if horizon > 0 && end > horizon+1 {
				end = horizon + 1
			}
			if len(p.inbox) == 0 && p.next >= end {
				continue // nothing admissible this window: skip the wakeup
			}
			e.ends[i] = end
			e.active = append(e.active, i)
		}

		if len(e.active) == 1 {
			p := e.parts[e.active[0]]
			end := e.ends[p.index]
			if t := e.tracer; t != nil {
				t.BarrierResume(e.stream, p.index, int64(end))
			}
			p.mergeInbox()
			p.runWindow(end)
			if t := e.tracer; t != nil {
				t.BarrierArrive(e.stream, p.index, int64(end))
			}
		} else {
			e.startWorkers()
			e.pending.Store(int32(len(e.active)))
			for _, i := range e.active {
				e.parts[i].wake <- e.ends[i]
			}
			<-e.barrier
		}

		e.exchange(minT)
		e.flushCounts()
		// e.now is deliberately NOT advanced to the window edge here:
		// base overshoots the final dispatch by up to one lookahead, and
		// the sequential engine's clock lands on the last dispatched
		// event. Only the exits above commit the clock.
	}
}
