package des

import (
	"fmt"
	"sort"
	"sync"
)

// ParallelEngine is a conservative parallel discrete-event simulator.
//
// Components are assigned to partitions; each partition runs on its own
// goroutine with a private event queue. Execution proceeds in windows:
// every partition processes all events with timestamp strictly below the
// window end, then all partitions synchronize at a barrier and exchange
// cross-partition events. The window width is the engine's lookahead,
// which must be a lower bound on the latency of every cross-partition
// link — the classic conservative-synchronization safety condition: an
// event sent across partitions at time t arrives no earlier than
// t + lookahead, i.e., beyond the current window, so no partition can
// receive an event "from the past".
//
// Results are bit-identical to the sequential Engine for models whose
// behaviour depends only on per-component event order (the BE-SST
// components in this repository), and are themselves deterministic
// across runs regardless of goroutine scheduling: cross-partition
// deliveries are merged in (time, source partition, source sequence)
// order at each barrier.
type ParallelEngine struct {
	components []Component
	partOf     []int // component -> partition
	links      map[portKey]halfLink
	parts      []*partition
	lookahead  Time
	now        Time
	running    bool
	processed  uint64
	crossed    []crossEvent // merge scratch buffer, reused across windows
	tracer     Tracer       // nil unless SetTracer was called
	stream     int          // stream tag passed to every tracer hook
}

type partition struct {
	eng    *ParallelEngine
	index  int
	queue  eventQueue
	ctx    Context // reused across this partition's dispatches
	seq    uint64
	outbox []crossEvent // cross-partition sends buffered until the barrier
	count  uint64       // events processed by this partition
	// next caches the queue head's time (-1 when empty) so the
	// coordinator's min-scan between windows never touches the heaps.
	// Maintained by the owning worker at window end and by the
	// coordinator during ScheduleAt and the barrier merge — never
	// concurrently.
	next Time
	// now is the timestamp of the event currently being handled, kept
	// so tracer hooks can stamp scheduling times without threading the
	// context through the scheduler interface.
	now Time
	// stat accumulates cumulative per-partition counters for run
	// metrics. Written under the same ownership discipline as next:
	// by the owning worker inside a window, by the coordinator between
	// windows — never concurrently.
	stat PartitionStat
}

type crossEvent struct {
	ev      Event
	dstPart int
	srcPart int
	srcSeq  uint64
}

// NewParallelEngine returns an engine with nparts partitions and the
// given lookahead window. Lookahead must be positive: a zero-lookahead
// conservative simulation cannot make parallel progress.
func NewParallelEngine(nparts int, lookahead Time) *ParallelEngine {
	if nparts <= 0 {
		panic("des: non-positive partition count")
	}
	if lookahead <= 0 {
		panic("des: non-positive lookahead")
	}
	e := &ParallelEngine{
		links:     make(map[portKey]halfLink),
		lookahead: lookahead,
	}
	for i := 0; i < nparts; i++ {
		p := &partition{eng: e, index: i, next: -1}
		p.ctx.sch = p
		e.parts = append(e.parts, p)
	}
	return e
}

// Partitions returns the number of partitions.
func (e *ParallelEngine) Partitions() int { return len(e.parts) }

// RegisterIn adds a component to the given partition and returns its ID.
func (e *ParallelEngine) RegisterIn(part int, c Component) ComponentID {
	if e.running {
		panic("des: RegisterIn during Run")
	}
	if part < 0 || part >= len(e.parts) {
		panic(fmt.Sprintf("des: partition %d out of range", part))
	}
	e.components = append(e.components, c)
	e.partOf = append(e.partOf, part)
	return ComponentID(len(e.components) - 1)
}

// Connect wires a unidirectional link. Cross-partition links must have
// latency >= the engine lookahead; violating that breaks conservative
// safety, so it panics at wiring time rather than corrupting a run.
func (e *ParallelEngine) Connect(src ComponentID, srcPort string, dst ComponentID, dstPort string, latency Time) {
	if latency < 0 {
		panic("des: negative link latency")
	}
	if e.partOf[src] != e.partOf[dst] && latency < e.lookahead {
		panic(fmt.Sprintf("des: cross-partition link %d/%q latency %v below lookahead %v",
			src, srcPort, latency, e.lookahead))
	}
	key := portKey{src, srcPort}
	if _, dup := e.links[key]; dup {
		panic(fmt.Sprintf("des: duplicate link %d/%q", src, srcPort))
	}
	e.links[key] = halfLink{dst: dst, dstPort: dstPort, latency: latency}
}

// ScheduleAt enqueues an initial event for dst at absolute time t.
func (e *ParallelEngine) ScheduleAt(t Time, dst ComponentID, payload Payload) {
	if t < e.now {
		panic("des: scheduling into the past")
	}
	p := e.parts[e.partOf[dst]]
	ev := Event{Time: t, Dst: dst, Payload: payload, seq: p.seq}
	p.seq++
	p.queue.push(ev)
	if p.queue.len() > p.stat.PeakQueueDepth {
		p.stat.PeakQueueDepth = p.queue.len()
	}
	if p.next < 0 || t < p.next {
		p.next = t
	}
	if e.tracer != nil {
		e.tracer.EventQueued(e.stream, p.index, int(dst), int64(e.now), int64(t))
	}
}

// Now returns the current simulated time (the completed window edge).
func (e *ParallelEngine) Now() Time { return e.now }

// Processed returns the number of events delivered since construction
// or the last Reset.
func (e *ParallelEngine) Processed() uint64 { return e.processed }

// PartitionStats snapshots every partition's cumulative counters. It
// must not be called while Run is in progress.
func (e *ParallelEngine) PartitionStats() []PartitionStat {
	if e.running {
		panic("des: PartitionStats during Run")
	}
	out := make([]PartitionStat, len(e.parts))
	for i, p := range e.parts {
		out[i] = p.stat
	}
	return out
}

// PeakQueueDepth returns the deepest any partition's private queue
// ever grew. It must not be called while Run is in progress.
func (e *ParallelEngine) PeakQueueDepth() int {
	if e.running {
		panic("des: PeakQueueDepth during Run")
	}
	peak := 0
	for _, p := range e.parts {
		if p.stat.PeakQueueDepth > peak {
			peak = p.stat.PeakQueueDepth
		}
	}
	return peak
}

// SetTracer attaches a lifecycle tracer; nil detaches. Hooks fire
// concurrently from the partition workers, so the tracer must be safe
// for concurrent use. stream tags every hook from this engine. Must
// not be called while Run is in progress.
func (e *ParallelEngine) SetTracer(t Tracer, stream int) {
	if e.running {
		panic("des: SetTracer during Run")
	}
	e.tracer = t
	e.stream = stream
}

// Reset rewinds the engine to time zero for another run, mirroring
// Engine.Reset: pending events, outboxes, and counters are cleared
// while components, links, the tracer, and every partition's queue
// capacity are kept.
func (e *ParallelEngine) Reset() {
	if e.running {
		panic("des: Reset during Run")
	}
	e.now = 0
	e.processed = 0
	for _, p := range e.parts {
		p.queue.reset()
		p.seq = 0
		p.outbox = p.outbox[:0]
		p.count = 0
		p.next = -1
		p.now = 0
		p.stat = PartitionStat{}
	}
}

// partition implements scheduler for the components it hosts.

func (p *partition) schedule(ev Event) {
	dstPart := p.eng.partOf[ev.Dst]
	if dstPart == p.index {
		ev.seq = p.seq
		p.seq++
		p.queue.push(ev)
		if p.queue.len() > p.stat.PeakQueueDepth {
			p.stat.PeakQueueDepth = p.queue.len()
		}
		if t := p.eng.tracer; t != nil {
			t.EventQueued(p.eng.stream, p.index, int(ev.Dst), int64(p.now), int64(ev.Time))
		}
		return
	}
	p.outbox = append(p.outbox, crossEvent{
		ev:      ev,
		dstPart: dstPart,
		srcPart: p.index,
		srcSeq:  p.seq,
	})
	p.seq++
	if t := p.eng.tracer; t != nil {
		t.EventQueued(p.eng.stream, p.index, int(ev.Dst), int64(p.now), int64(ev.Time))
	}
}

func (p *partition) link(src ComponentID, port string) (halfLink, bool) {
	l, ok := p.eng.links[portKey{src, port}]
	return l, ok
}

// runWindow processes all events with Time < windowEnd in this
// partition, then refreshes the cached next-event time for the
// coordinator's min-scan.
func (p *partition) runWindow(windowEnd Time) {
	tr := p.eng.tracer
	for p.queue.len() > 0 && p.queue.peek().Time < windowEnd {
		ev := p.queue.pop()
		p.ctx.id = ev.Dst
		p.ctx.now = ev.Time
		p.now = ev.Time
		if tr != nil {
			tr.EventDispatch(p.eng.stream, p.index, int(ev.Dst), int64(ev.Time))
			p.eng.components[int(ev.Dst)].HandleEvent(&p.ctx, ev)
			tr.EventReturn(p.eng.stream, p.index, int64(ev.Time))
		} else {
			p.eng.components[int(ev.Dst)].HandleEvent(&p.ctx, ev)
		}
		p.count++
	}
	p.stat.Windows++
	if p.queue.len() > 0 {
		p.next = p.queue.peek().Time
	} else {
		p.next = -1
	}
}

// flushCounts folds every partition's in-window event tally into the
// engine total. It runs on every Run exit path (and at each barrier) so
// Processed() is never stale, whichever branch returned.
func (e *ParallelEngine) flushCounts() {
	for _, p := range e.parts {
		e.processed += p.count
		p.stat.Processed += p.count
		p.count = 0
	}
}

// Run executes the simulation until no events remain anywhere or the
// horizon is reached (horizon <= 0 means none). It returns the final
// simulated time.
//
// Workers are long-lived goroutines, one per partition, signaled with
// the next window edge over a channel: spawning goroutines per window
// would dominate the runtime for fine-grained lookahead.
func (e *ParallelEngine) Run(horizon Time) Time {
	e.running = true
	defer func() { e.running = false }()
	defer e.flushCounts()

	windows := make([]chan Time, len(e.parts))
	var done sync.WaitGroup
	for i, p := range e.parts {
		windows[i] = make(chan Time)
		go func(p *partition, win <-chan Time) {
			for end := range win {
				if t := e.tracer; t != nil {
					t.BarrierResume(e.stream, p.index, int64(end))
				}
				p.runWindow(end)
				if t := e.tracer; t != nil {
					t.BarrierArrive(e.stream, p.index, int64(end))
				}
				done.Done()
			}
		}(p, windows[i])
	}
	defer func() {
		for _, w := range windows {
			close(w)
		}
	}()

	for {
		// Global minimum next-event time, read from the cached
		// per-partition heads instead of re-inspecting every heap.
		minT := Time(-1)
		for _, p := range e.parts {
			if p.next >= 0 && (minT < 0 || p.next < minT) {
				minT = p.next
			}
		}
		if minT < 0 {
			return e.now // drained
		}
		if horizon > 0 && minT > horizon {
			e.now = horizon
			return e.now
		}
		windowEnd := minT + e.lookahead
		// Clamp the window at the horizon so no event beyond it is
		// processed: the sequential engine delivers events with
		// Time <= horizon and leaves the rest queued, and Time is
		// integral, so horizon+1 is the matching exclusive window edge.
		if horizon > 0 && windowEnd > horizon+1 {
			windowEnd = horizon + 1
		}

		done.Add(len(e.parts))
		for i := range e.parts {
			windows[i] <- windowEnd
		}
		done.Wait()
		e.flushCounts()

		// Barrier: merge cross-partition events deterministically,
		// reusing the engine-owned scratch buffer across windows.
		e.crossed = e.crossed[:0]
		for _, p := range e.parts {
			e.crossed = append(e.crossed, p.outbox...)
			p.outbox = p.outbox[:0]
		}
		sort.Slice(e.crossed, func(i, j int) bool {
			a, b := e.crossed[i], e.crossed[j]
			if a.ev.Time != b.ev.Time {
				return a.ev.Time < b.ev.Time
			}
			if a.srcPart != b.srcPart {
				return a.srcPart < b.srcPart
			}
			return a.srcSeq < b.srcSeq
		})
		for _, ce := range e.crossed {
			p := e.parts[ce.dstPart]
			ev := ce.ev
			ev.seq = p.seq
			p.seq++
			p.queue.push(ev)
			if p.queue.len() > p.stat.PeakQueueDepth {
				p.stat.PeakQueueDepth = p.queue.len()
			}
			if p.next < 0 || ev.Time < p.next {
				p.next = ev.Time
			}
		}

		e.now = windowEnd
		if horizon > 0 && e.now > horizon {
			e.now = horizon
		}
	}
}
