package des

import "fmt"

// Payload is the typed content of an event. Kind is a component-defined
// message tag and A/B carry two integer arguments inline, so the common
// protocol messages of a simulation travel without heap allocation.
// Data is the escape hatch for arbitrary values; storing a non-nil Data
// boxes it into the interface at the sender — exactly the per-event
// allocation the typed fields exist to avoid — so hot-path protocols
// should encode into Kind/A/B and leave Data nil.
type Payload struct {
	Kind int32
	A, B int64
	Data any
}

// Event is a timestamped message delivered to a component.
type Event struct {
	Time    Time
	Dst     ComponentID
	SrcPort string // name of the link/port the event arrived on ("" for self events)
	Payload Payload

	seq uint64 // FIFO tie-breaker for deterministic ordering
}

// ComponentID identifies a component registered with an engine.
type ComponentID int

// Component is the unit of simulation. HandleEvent is invoked once per
// delivered event with the engine's clock already advanced to the event
// time. Components react by scheduling self events and sending on links.
type Component interface {
	// HandleEvent processes one event. ctx provides scheduling and
	// link-send operations valid only for the duration of the call;
	// implementations must not retain ctx (the engine reuses one
	// Context across all dispatches).
	HandleEvent(ctx *Context, ev Event)
}

// scheduler is the engine-side contract Context needs: it is satisfied
// by the sequential Engine and by each partition worker of the parallel
// engine.
type scheduler interface {
	schedule(ev Event)
	link(src ComponentID, port string) (halfLink, bool)
}

// Context gives a component access to the engine during HandleEvent.
type Context struct {
	sch scheduler
	id  ComponentID
	now Time
}

// Now returns the current simulated time.
func (c *Context) Now() Time { return c.now }

// Self returns the handling component's ID.
func (c *Context) Self() ComponentID { return c.id }

// ScheduleSelf enqueues an event for the handling component after delay.
func (c *Context) ScheduleSelf(delay Time, payload Payload) {
	if delay < 0 {
		panic("des: negative delay")
	}
	c.sch.schedule(Event{Time: c.now + delay, Dst: c.id, Payload: payload})
}

// Send delivers payload over the named outgoing link of the handling
// component. Delivery occurs after the link's configured latency plus
// extra. It panics if the component has no such link: wiring errors are
// construction bugs, not runtime conditions.
func (c *Context) Send(port string, extra Time, payload Payload) {
	l, ok := c.sch.link(c.id, port)
	if !ok {
		panic(fmt.Sprintf("des: component %d has no link %q", c.id, port))
	}
	if extra < 0 {
		panic("des: negative extra latency")
	}
	c.sch.schedule(Event{
		Time:    c.now + l.latency + extra,
		Dst:     l.dst,
		SrcPort: l.dstPort,
		Payload: payload,
	})
}

// LinkLatency reports the configured latency of one of the handling
// component's outgoing links.
func (c *Context) LinkLatency(port string) Time {
	l, ok := c.sch.link(c.id, port)
	if !ok {
		panic(fmt.Sprintf("des: component %d has no link %q", c.id, port))
	}
	return l.latency
}

type portKey struct {
	src  ComponentID
	port string
}

type halfLink struct {
	dst     ComponentID
	dstPort string
	latency Time
}

// Engine is the sequential discrete-event simulator. Construct with
// NewEngine, register components and links, seed initial events with
// ScheduleAt, then call Run. A finished engine can be rewound with
// Reset and rerun, reusing its components, links, and queue capacity.
type Engine struct {
	components []Component
	links      map[portKey]halfLink
	queue      eventQueue
	ctx        Context // reused across dispatches; one escape, not one per event
	now        Time
	seq        uint64
	processed  uint64
	running    bool
	tracer     Tracer // nil unless SetTracer was called
	stream     int    // stream tag passed to every tracer hook
	peakQueue  int
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine {
	e := &Engine{links: make(map[portKey]halfLink)}
	e.ctx.sch = e
	return e
}

// Register adds a component and returns its ID.
func (e *Engine) Register(c Component) ComponentID {
	if e.running {
		panic("des: Register during Run")
	}
	e.components = append(e.components, c)
	return ComponentID(len(e.components) - 1)
}

// Connect wires a unidirectional link from src's port srcPort to dst's
// port dstPort with the given latency. Events sent on srcPort arrive at
// dst tagged with dstPort.
func (e *Engine) Connect(src ComponentID, srcPort string, dst ComponentID, dstPort string, latency Time) {
	if latency < 0 {
		panic("des: negative link latency")
	}
	key := portKey{src, srcPort}
	if _, dup := e.links[key]; dup {
		panic(fmt.Sprintf("des: duplicate link %d/%q", src, srcPort))
	}
	e.links[key] = halfLink{dst: dst, dstPort: dstPort, latency: latency}
}

// ConnectBidirectional wires a:aPort <-> b:bPort with equal latency.
func (e *Engine) ConnectBidirectional(a ComponentID, aPort string, b ComponentID, bPort string, latency Time) {
	e.Connect(a, aPort, b, bPort, latency)
	e.Connect(b, bPort, a, aPort, latency)
}

// ScheduleAt enqueues an initial event for dst at absolute time t.
func (e *Engine) ScheduleAt(t Time, dst ComponentID, payload Payload) {
	if t < e.now {
		panic("des: scheduling into the past")
	}
	e.schedule(Event{Time: t, Dst: dst, Payload: payload})
}

func (e *Engine) schedule(ev Event) {
	if ev.Time < e.now {
		panic("des: scheduling into the past")
	}
	ev.seq = e.seq
	e.seq++
	e.queue.push(ev)
	if e.queue.len() > e.peakQueue {
		e.peakQueue = e.queue.len()
	}
	if e.tracer != nil {
		e.tracer.EventQueued(e.stream, 0, int(ev.Dst), int64(e.now), int64(ev.Time))
	}
}

func (e *Engine) link(src ComponentID, port string) (halfLink, bool) {
	l, ok := e.links[portKey{src, port}]
	return l, ok
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events delivered since construction
// or the last Reset.
func (e *Engine) Processed() uint64 { return e.processed }

// PeakQueueDepth returns the deepest the event queue ever grew — the
// engine tracks it unconditionally (one comparison per schedule) so
// run metrics are available even without a tracer.
func (e *Engine) PeakQueueDepth() int { return e.peakQueue }

// SetTracer attaches a lifecycle tracer; nil detaches. stream tags
// every hook from this engine, letting runs that share one tracer
// (e.g. Monte Carlo trials) stay distinguishable in the trace. Must
// not be called while Run is in progress.
func (e *Engine) SetTracer(t Tracer, stream int) {
	if e.running {
		panic("des: SetTracer during Run")
	}
	e.tracer = t
	e.stream = stream
}

// Reset rewinds the engine to time zero for another run: pending events
// are discarded and the clock, sequence counter, and metrics counters
// are cleared, while components, links, the tracer, and the queue's
// backing capacity are all kept. This is what lets replication loops
// reuse one wired engine per trial instead of reconstructing it.
func (e *Engine) Reset() {
	if e.running {
		panic("des: Reset during Run")
	}
	e.queue.reset()
	e.now = 0
	e.seq = 0
	e.processed = 0
	e.peakQueue = 0
}

// Run processes events in timestamp order until the queue is empty or
// the horizon is passed (horizon <= 0 means no horizon). It returns the
// final simulated time.
func (e *Engine) Run(horizon Time) Time {
	e.running = true
	defer func() { e.running = false }()
	for e.queue.len() > 0 {
		if horizon > 0 && e.queue.peek().Time > horizon {
			// Leave the event queued; the clock stops at the horizon.
			e.now = horizon
			return e.now
		}
		ev := e.queue.pop()
		if ev.Time < e.now {
			panic("des: event queue went backwards")
		}
		e.now = ev.Time
		e.dispatch(ev)
	}
	return e.now
}

func (e *Engine) dispatch(ev Event) {
	dst := int(ev.Dst)
	if dst < 0 || dst >= len(e.components) {
		panic(fmt.Sprintf("des: event for unknown component %d", ev.Dst))
	}
	e.ctx.id = ev.Dst
	e.ctx.now = e.now
	if e.tracer != nil {
		e.tracer.EventDispatch(e.stream, 0, dst, int64(e.now))
		e.components[dst].HandleEvent(&e.ctx, ev)
		e.tracer.EventReturn(e.stream, 0, int64(e.now))
	} else {
		e.components[dst].HandleEvent(&e.ctx, ev)
	}
	e.processed++
}

// Step processes exactly one event if available, returning false when
// the queue is empty. It is exposed for tests and debugging tooling.
func (e *Engine) Step() bool {
	if e.queue.len() == 0 {
		return false
	}
	ev := e.queue.pop()
	e.now = ev.Time
	e.dispatch(ev)
	return true
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.len() }
