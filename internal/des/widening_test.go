package des

import (
	"fmt"
	"testing"
)

// Property tests for static lookahead widening: the per-partition
// window edge must never admit an event the conservative
// global-lookahead schedule could still invalidate. Two angles:
//
//   - TestSafeBoundNeverBeatsLinkArrivals checks the white-box bound
//     arithmetic directly against a brute-force scan of the wiring: the
//     widened edge equals max(base, earliest possible cross arrival)
//     and never drops below the conservative base window.
//   - TestWideningRandomTopologyMatchesSequential runs randomized
//     topologies on the sequential and parallel engines and requires
//     identical per-component delivery traces — if widening ever
//     released an event early, a cross arrival would land in a
//     partition's past and the traces would diverge.

// testRand is a tiny deterministic generator for the property tests
// (math/rand is linted out of the simulator packages, and the tests
// must be reproducible from their seed anyway).
type testRand uint64

func (r *testRand) next() uint64 {
	*r = *r*6364136223846793005 + 1442695040888963407
	return uint64(*r >> 17)
}

func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

// hopRelay forwards a decrementing counter over one of its out ports.
// The port is chosen from the arrival time, so when two same-time
// events collide at one component the forwarded multiset is identical
// regardless of their processing order — the property the parallel
// engine guarantees is per-component event order, not global tie order.
type hopRelay struct {
	times []Time
	ports []string
}

func (c *hopRelay) HandleEvent(ctx *Context, ev Event) {
	c.times = append(c.times, ctx.Now())
	if n := ev.Payload.A; n > 0 && len(c.ports) > 0 {
		ctx.Send(c.ports[int(ctx.Now())%len(c.ports)], 0, Payload{A: n - 1})
	}
}

// randomTopology is an engine-agnostic model description.
type randomTopology struct {
	nparts int
	partOf []int // component -> partition
	nports []int // component -> out-port count
	dsts   [][]ComponentID
	lats   [][]Time
	inits  []struct {
		t Time
		c ComponentID
		a int64
	}
}

const wideningLookahead = Time(8)

func genTopology(r *testRand, nparts int) *randomTopology {
	n := 6 + r.intn(9)
	tp := &randomTopology{nparts: nparts}
	for i := 0; i < n; i++ {
		tp.partOf = append(tp.partOf, r.intn(nparts))
	}
	for i := 0; i < n; i++ {
		np := 1 + r.intn(3)
		tp.nports = append(tp.nports, np)
		var dsts []ComponentID
		var lats []Time
		for j := 0; j < np; j++ {
			dst := r.intn(n)
			var lat Time
			if tp.partOf[i] == tp.partOf[dst] {
				lat = Time(1 + r.intn(20))
			} else {
				lat = wideningLookahead + Time(r.intn(13))
			}
			dsts = append(dsts, ComponentID(dst))
			lats = append(lats, lat)
		}
		tp.dsts = append(tp.dsts, dsts)
		tp.lats = append(tp.lats, lats)
	}
	for k := 0; k < 1+r.intn(3); k++ {
		tp.inits = append(tp.inits, struct {
			t Time
			c ComponentID
			a int64
		}{Time(r.intn(5)), ComponentID(r.intn(n)), int64(20 + r.intn(40))})
	}
	return tp
}

func portName(j int) string { return fmt.Sprintf("p%d", j) }

func (tp *randomTopology) build(reg func(i int, c Component) ComponentID,
	connect func(src ComponentID, sp string, dst ComponentID, dp string, lat Time),
	schedule func(t Time, dst ComponentID, p Payload)) []*hopRelay {
	comps := make([]*hopRelay, len(tp.partOf))
	ids := make([]ComponentID, len(tp.partOf))
	for i := range comps {
		comps[i] = &hopRelay{}
		for j := 0; j < tp.nports[i]; j++ {
			comps[i].ports = append(comps[i].ports, portName(j))
		}
		ids[i] = reg(i, comps[i])
	}
	for i := range comps {
		for j := 0; j < tp.nports[i]; j++ {
			connect(ids[i], portName(j), ids[tp.dsts[i][j]], "in", tp.lats[i][j])
		}
	}
	for _, in := range tp.inits {
		schedule(in.t, in.c, Payload{A: in.a})
	}
	return comps
}

// bruteForceBound recomputes a partition's widened edge straight from
// the link map, independently of the engine's cached matrices: the
// earliest time any event-holding partition could deliver into pi over
// any chain of cross links — relays through currently-empty partitions
// and echo cycles back into pi itself included — floored at the
// conservative base window. Chains matter: a partition with no direct
// inbound link can still be reached two barriers later through an
// intermediary, and a drained partition can be re-entered by its own
// earlier sends.
func bruteForceBound(e *ParallelEngine, pi int, base Time) Time {
	n := len(e.parts)
	type edge struct {
		from, to int
		lat      Time
	}
	var edges []edge
	for key, l := range e.links {
		if sp, dp := e.partOf[key.src], e.partOf[l.dst]; sp != dp {
			edges = append(edges, edge{sp, dp, l.latency})
		}
	}
	// Bellman-Ford-style relaxation to the min-plus closure (-1 =
	// unreachable). Cross latencies are positive, so a shortest chain
	// never needs more than n edges even when it is a cycle.
	dist := make([]Time, n*n)
	for i := range dist {
		dist[i] = -1
	}
	for _, ed := range edges {
		if d := dist[ed.from*n+ed.to]; d < 0 || ed.lat < d {
			dist[ed.from*n+ed.to] = ed.lat
		}
	}
	for round := 0; round < n; round++ {
		for i := 0; i < n; i++ {
			for _, ed := range edges {
				via := dist[i*n+ed.from]
				if via < 0 {
					continue
				}
				if d := dist[i*n+ed.to]; d < 0 || via+ed.lat < d {
					dist[i*n+ed.to] = via + ed.lat
				}
			}
		}
	}
	bound := Time(-1)
	for qi, q := range e.parts {
		if q.next < 0 {
			continue
		}
		d := dist[qi*n+pi]
		if d < 0 {
			continue
		}
		if b := q.next + d; bound < 0 || b < bound {
			bound = b
		}
	}
	if bound < 0 {
		return maxWindow
	}
	if bound < base {
		return base
	}
	return bound
}

func TestSafeBoundNeverBeatsLinkArrivals(t *testing.T) {
	r := testRand(7)
	for trial := 0; trial < 40; trial++ {
		nparts := 2 + r.intn(3)
		tp := genTopology(&r, nparts)
		e := NewParallelEngine(nparts, wideningLookahead)
		tp.build(
			func(i int, c Component) ComponentID { return e.RegisterIn(tp.partOf[i], c) },
			e.Connect,
			func(Time, ComponentID, Payload) {}) // no events: states are synthetic
		e.computeDist() // Run does this lazily; the probes bypass Run

		for probe := 0; probe < 16; probe++ {
			for _, p := range e.parts {
				p.next = -1
				if r.intn(3) > 0 {
					p.next = Time(r.intn(50))
				}
			}
			minT := Time(-1)
			for _, p := range e.parts {
				if p.next >= 0 && (minT < 0 || p.next < minT) {
					minT = p.next
				}
			}
			if minT < 0 {
				continue
			}
			base := minT + e.lookahead
			for pi := range e.parts {
				got := e.safeBound(pi, base)
				if got < base {
					t.Fatalf("trial %d probe %d: safeBound(%d) = %v below conservative base %v",
						trial, probe, pi, got, base)
				}
				if want := bruteForceBound(e, pi, base); got != want {
					t.Fatalf("trial %d probe %d: safeBound(%d) = %v, brute force over links = %v",
						trial, probe, pi, got, want)
				}
			}
		}
	}
}

func TestWideningRandomTopologyMatchesSequential(t *testing.T) {
	r := testRand(42)
	for trial := 0; trial < 60; trial++ {
		nparts := 2 + r.intn(3)
		tp := genTopology(&r, nparts)

		seq := NewEngine()
		seqComps := tp.build(
			func(i int, c Component) ComponentID { return seq.Register(c) },
			seq.Connect, seq.ScheduleAt)
		seq.Run(0)

		par := NewParallelEngine(nparts, wideningLookahead)
		parComps := tp.build(
			func(i int, c Component) ComponentID { return par.RegisterIn(tp.partOf[i], c) },
			par.Connect, par.ScheduleAt)
		par.Run(0)
		par.Close()

		if par.Processed() != seq.Processed() {
			t.Fatalf("trial %d (parts %d): processed %d vs sequential %d",
				trial, nparts, par.Processed(), seq.Processed())
		}
		for i := range seqComps {
			s, p := seqComps[i].times, parComps[i].times
			if len(s) != len(p) {
				t.Fatalf("trial %d (parts %d): component %d delivery count %d vs %d",
					trial, nparts, i, len(p), len(s))
			}
			for j := range s {
				if s[j] != p[j] {
					t.Fatalf("trial %d (parts %d): component %d delivery %d at %d vs %d (ns)\npar: %d\nseq: %d",
						trial, nparts, i, j, p[j], s[j], p, s)
				}
			}
		}
	}
}

// TestWideningHorizonRandomTopology repeats the equivalence property
// under a mid-run horizon plus resume, the paths where the widened
// edges interact with the horizon clamp.
func TestWideningHorizonRandomTopology(t *testing.T) {
	r := testRand(99)
	for trial := 0; trial < 30; trial++ {
		nparts := 2 + r.intn(3)
		tp := genTopology(&r, nparts)
		horizon := Time(10 + r.intn(60))

		seq := NewEngine()
		seqComps := tp.build(
			func(i int, c Component) ComponentID { return seq.Register(c) },
			seq.Connect, seq.ScheduleAt)
		seq.Run(horizon)

		par := NewParallelEngine(nparts, wideningLookahead)
		parComps := tp.build(
			func(i int, c Component) ComponentID { return par.RegisterIn(tp.partOf[i], c) },
			par.Connect, par.ScheduleAt)
		par.Run(horizon)

		check := func(stage string) {
			t.Helper()
			if par.Processed() != seq.Processed() {
				t.Fatalf("trial %d %s: processed %d vs sequential %d",
					trial, stage, par.Processed(), seq.Processed())
			}
			for i := range seqComps {
				s, p := seqComps[i].times, parComps[i].times
				if len(s) != len(p) {
					t.Fatalf("trial %d %s: component %d delivery count %d vs %d",
						trial, stage, i, len(p), len(s))
				}
				for j := range s {
					if s[j] != p[j] {
						t.Fatalf("trial %d %s: component %d delivery %d at %d vs %d (ns)",
							trial, stage, i, j, p[j], s[j])
					}
				}
			}
		}
		check("at horizon")

		seq.Run(0)
		par.Run(0)
		par.Close()
		check("after resume")
	}
}
