// Package des implements the component-based discrete-event simulation
// engine that FT-BESST is built on. It plays the role of Sandia's
// Structural Simulation Toolkit (SST) in the original BE-SST stack: it
// owns simulated time, delivers timestamped events between components
// over latency links, and offers both a sequential executor and a
// conservative parallel executor that exploits link latency as lookahead.
//
// The engine is deliberately coarse-grained. BE-SST components exchange
// on the order of one event per modeled application block, so the engine
// optimizes for deterministic ordering and cheap scheduling rather than
// for cycle-level throughput.
package des

import (
	"fmt"
	"time"
)

// Time is a simulated timestamp in nanoseconds since the start of the
// simulation. Nanosecond resolution is fine-grained enough for the
// microsecond-to-second events behavioral emulation produces while
// keeping the arithmetic exact (no floating-point clock drift over long
// runs).
type Time int64

// Common construction helpers for simulated durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromSeconds converts a floating-point duration in seconds to simulated
// time, rounding to the nearest nanosecond. Negative durations clamp to
// zero: performance models can produce tiny negative values from
// regression extrapolation, and the simulator treats those as free.
func FromSeconds(s float64) Time {
	if s <= 0 {
		return 0
	}
	return Time(s*1e9 + 0.5)
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Duration converts a simulated interval to a time.Duration for display.
func (t Time) Duration() time.Duration { return time.Duration(t) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}
