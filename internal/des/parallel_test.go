package des

import (
	"sync"
	"testing"
)

// echo bounces a counter back and forth over its "peer" link until the
// counter reaches zero, recording each arrival time.
type echo struct {
	mu    sync.Mutex
	times []Time
}

func (c *echo) HandleEvent(ctx *Context, ev Event) {
	n := ev.Payload.A
	c.mu.Lock()
	c.times = append(c.times, ctx.Now())
	c.mu.Unlock()
	if n > 0 {
		ctx.Send("peer", 0, Payload{A: n - 1})
	}
}

func TestParallelPingPong(t *testing.T) {
	e := NewParallelEngine(2, 10)
	a := &echo{}
	b := &echo{}
	aid := e.RegisterIn(0, a)
	bid := e.RegisterIn(1, b)
	e.Connect(aid, "peer", bid, "peer", 10)
	e.Connect(bid, "peer", aid, "peer", 10)
	e.ScheduleAt(0, aid, Payload{A: 10})
	end := e.Run(0)
	// 11 deliveries total (n=10..0), alternating partitions, 10ns apart
	// starting at t=0, so the last arrives at t=100.
	total := len(a.times) + len(b.times)
	if total != 11 {
		t.Fatalf("total deliveries = %d, want 11", total)
	}
	if a.times[len(a.times)-1] != 100 && b.times[len(b.times)-1] != 100 {
		t.Fatalf("last delivery not at 100: a=%v b=%v", a.times, b.times)
	}
	if end < 100 {
		t.Fatalf("end time %v < 100", end)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	// Build the same ring of pingers on both engines and compare
	// delivery traces.
	build := func(reg func(i int, c Component) ComponentID,
		connect func(src ComponentID, sp string, dst ComponentID, dp string, lat Time)) []*echo {
		const n = 8
		comps := make([]*echo, n)
		ids := make([]ComponentID, n)
		for i := 0; i < n; i++ {
			comps[i] = &echo{}
			ids[i] = reg(i, comps[i])
		}
		for i := 0; i < n; i++ {
			connect(ids[i], "peer", ids[(i+1)%n], "peer", 100)
		}
		return comps
	}

	seq := NewEngine()
	seqComps := build(
		func(i int, c Component) ComponentID { return seq.Register(c) },
		seq.Connect)
	seq.ScheduleAt(0, 0, Payload{A: 40})
	seq.Run(0)

	par := NewParallelEngine(4, 100)
	parComps := build(
		func(i int, c Component) ComponentID { return par.RegisterIn(i%4, c) },
		par.Connect)
	par.ScheduleAt(0, 0, Payload{A: 40})
	par.Run(0)

	for i := range seqComps {
		s, p := seqComps[i].times, parComps[i].times
		if len(s) != len(p) {
			t.Fatalf("component %d delivery count %d vs %d", i, len(s), len(p))
		}
		for j := range s {
			if s[j] != p[j] {
				t.Fatalf("component %d delivery %d at %v vs %v", i, j, s[j], p[j])
			}
		}
	}
}

func TestParallelDeterministicAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := NewParallelEngine(3, 5)
		comps := make([]*echo, 6)
		ids := make([]ComponentID, 6)
		for i := range comps {
			comps[i] = &echo{}
			ids[i] = e.RegisterIn(i%3, comps[i])
		}
		for i := range ids {
			e.Connect(ids[i], "peer", ids[(i+1)%len(ids)], "peer", 5)
		}
		e.ScheduleAt(0, ids[0], Payload{A: 30})
		e.ScheduleAt(0, ids[3], Payload{A: 30})
		e.Run(0)
		var all []Time
		for _, c := range comps {
			all = append(all, c.times...)
		}
		return all
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestParallelCrossLinkBelowLookaheadPanics(t *testing.T) {
	e := NewParallelEngine(2, 100)
	a := e.RegisterIn(0, &echo{})
	b := e.RegisterIn(1, &echo{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsafe cross-partition link")
		}
	}()
	e.Connect(a, "peer", b, "peer", 50)
}

func TestParallelIntraPartitionShortLinkAllowed(t *testing.T) {
	e := NewParallelEngine(2, 100)
	a := &echo{}
	b := &echo{}
	aid := e.RegisterIn(0, a)
	bid := e.RegisterIn(0, b) // same partition: latency below lookahead is fine
	e.Connect(aid, "peer", bid, "peer", 1)
	e.Connect(bid, "peer", aid, "peer", 1)
	e.ScheduleAt(0, aid, Payload{A: 4})
	e.Run(0)
	if len(a.times)+len(b.times) != 5 {
		t.Fatalf("deliveries = %d, want 5", len(a.times)+len(b.times))
	}
}

func TestParallelHorizon(t *testing.T) {
	e := NewParallelEngine(2, 10)
	a := &echo{}
	aid := e.RegisterIn(0, a)
	bid := e.RegisterIn(1, &echo{})
	e.Connect(aid, "peer", bid, "peer", 10)
	e.Connect(bid, "peer", aid, "peer", 10)
	e.ScheduleAt(1000, aid, Payload{A: 5})
	end := e.Run(500)
	if end != 500 {
		t.Fatalf("end = %v, want 500", end)
	}
	if len(a.times) != 0 {
		t.Fatal("no events should have run before horizon")
	}
}

// TestParallelHorizonMidWindow is the regression test for the horizon
// clamp: with a lookahead wider than the event spacing, a horizon that
// bisects a window previously let partitions process events beyond it.
// The parallel engine must deliver exactly the events the sequential
// engine delivers, report the same Processed() count immediately after
// the horizon-bounded Run (no stale per-partition tallies), stop its
// clock at the horizon, and be resumable to an identical full trace.
func TestParallelHorizonMidWindow(t *testing.T) {
	const horizon = Time(5)

	seq := NewEngine()
	sa, sb := &echo{}, &echo{}
	said := seq.Register(sa)
	sbid := seq.Register(sb)
	seq.Connect(said, "peer", sbid, "peer", 1)
	seq.Connect(sbid, "peer", said, "peer", 1)
	seq.ScheduleAt(0, said, Payload{A: 20})
	seqEnd := seq.Run(horizon)

	par := NewParallelEngine(2, 10)
	pa, pb := &echo{}, &echo{}
	paid := par.RegisterIn(0, pa)
	pbid := par.RegisterIn(0, pb) // same partition: spacing 1 < lookahead 10
	par.Connect(paid, "peer", pbid, "peer", 1)
	par.Connect(pbid, "peer", paid, "peer", 1)
	par.ScheduleAt(0, paid, Payload{A: 20})
	parEnd := par.Run(horizon)

	if parEnd != seqEnd || parEnd != horizon {
		t.Fatalf("end times: parallel %v, sequential %v, want %v", parEnd, seqEnd, horizon)
	}
	if par.Processed() != seq.Processed() {
		t.Fatalf("processed after horizon run: parallel %d, sequential %d",
			par.Processed(), seq.Processed())
	}
	compare := func(label string, want, got []Time) {
		t.Helper()
		if len(want) != len(got) {
			t.Fatalf("%s: %d deliveries vs sequential %d", label, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%s: delivery %d at %v, sequential at %v", label, i, got[i], want[i])
			}
		}
	}
	compare("a@horizon", sa.times, pa.times)
	compare("b@horizon", sb.times, pb.times)

	// Resume past the horizon: both engines must complete identically.
	seq.Run(0)
	par.Run(0)
	if par.Processed() != seq.Processed() || par.Processed() != 21 {
		t.Fatalf("processed after resume: parallel %d, sequential %d, want 21",
			par.Processed(), seq.Processed())
	}
	compare("a@end", sa.times, pa.times)
	compare("b@end", sb.times, pb.times)
}

func TestParallelProcessedCount(t *testing.T) {
	e := NewParallelEngine(2, 10)
	a := &echo{}
	b := &echo{}
	aid := e.RegisterIn(0, a)
	bid := e.RegisterIn(1, b)
	e.Connect(aid, "peer", bid, "peer", 10)
	e.Connect(bid, "peer", aid, "peer", 10)
	e.ScheduleAt(0, aid, Payload{A: 6})
	e.Run(0)
	if e.Processed() != 7 {
		t.Fatalf("processed = %d, want 7", e.Processed())
	}
}

func TestParallelBadPartitionPanics(t *testing.T) {
	e := NewParallelEngine(2, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.RegisterIn(5, &echo{})
}

func TestParallelPartitionsAccessor(t *testing.T) {
	if NewParallelEngine(3, 10).Partitions() != 3 {
		t.Fatal("partitions wrong")
	}
}

func TestParallelConstructorPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewParallelEngine(0, 10) },
		func() { NewParallelEngine(2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestParallelDuplicateLinkPanics(t *testing.T) {
	e := NewParallelEngine(2, 10)
	a := e.RegisterIn(0, &echo{})
	b := e.RegisterIn(1, &echo{})
	e.Connect(a, "peer", b, "peer", 10)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Connect(a, "peer", b, "peer", 10)
}

func TestParallelSchedulePastPanics(t *testing.T) {
	e := NewParallelEngine(2, 10)
	a := e.RegisterIn(0, &echo{})
	b := e.RegisterIn(1, &echo{})
	e.Connect(a, "peer", b, "peer", 10)
	e.Connect(b, "peer", a, "peer", 10)
	e.ScheduleAt(0, a, Payload{A: 2})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.ScheduleAt(0, a, Payload{A: 1}) // engine clock has advanced past 0
}
