package des

import (
	"testing"
	"testing/quick"
)

// recorder logs the order and time of every event it receives.
type recorder struct {
	times    []Time
	payloads []Payload
	ports    []string
}

func (r *recorder) HandleEvent(ctx *Context, ev Event) {
	r.times = append(r.times, ctx.Now())
	r.payloads = append(r.payloads, ev.Payload)
	r.ports = append(r.ports, ev.SrcPort)
}

// pinger sends count messages over its "out" link, one per received event.
type pinger struct {
	remaining int
}

func (p *pinger) HandleEvent(ctx *Context, ev Event) {
	if p.remaining <= 0 {
		return
	}
	p.remaining--
	ctx.Send("out", 0, Payload{A: int64(p.remaining)})
	if p.remaining > 0 {
		ctx.ScheduleSelf(Microsecond, Payload{})
	}
}

func TestFromSeconds(t *testing.T) {
	if FromSeconds(1) != Second {
		t.Fatal("1s conversion wrong")
	}
	if FromSeconds(-5) != 0 {
		t.Fatal("negative seconds should clamp to zero")
	}
	if FromSeconds(1e-9) != Nanosecond {
		t.Fatal("1ns conversion wrong")
	}
}

func TestTimeRoundTripProperty(t *testing.T) {
	f := func(ns uint32) bool {
		tm := Time(ns)
		return FromSeconds(tm.Seconds()) == tm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialOrdering(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	id := e.Register(r)
	e.ScheduleAt(30, id, Payload{Data: "c"})
	e.ScheduleAt(10, id, Payload{Data: "a"})
	e.ScheduleAt(20, id, Payload{Data: "b"})
	e.Run(0)
	if len(r.payloads) != 3 {
		t.Fatalf("got %d events", len(r.payloads))
	}
	for i, want := range []string{"a", "b", "c"} {
		if r.payloads[i].Data != want {
			t.Fatalf("event %d = %v, want %v", i, r.payloads[i], want)
		}
	}
	if r.times[0] != 10 || r.times[2] != 30 {
		t.Fatalf("bad times %v", r.times)
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	id := e.Register(r)
	for i := 0; i < 10; i++ {
		e.ScheduleAt(5, id, Payload{A: int64(i)})
	}
	e.Run(0)
	for i := 0; i < 10; i++ {
		if r.payloads[i].A != int64(i) {
			t.Fatalf("tie-break not FIFO: %v", r.payloads)
		}
	}
}

func TestLinkLatencyDelivery(t *testing.T) {
	e := NewEngine()
	p := &pinger{remaining: 1}
	r := &recorder{}
	pid := e.Register(p)
	rid := e.Register(r)
	e.Connect(pid, "out", rid, "in", 50)
	e.ScheduleAt(100, pid, Payload{})
	e.Run(0)
	if len(r.times) != 1 || r.times[0] != 150 {
		t.Fatalf("delivery times %v, want [150]", r.times)
	}
	if r.ports[0] != "in" {
		t.Fatalf("arrival port %q, want in", r.ports[0])
	}
}

func TestHorizonStopsClock(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	id := e.Register(r)
	e.ScheduleAt(10, id, Payload{})
	e.ScheduleAt(1000, id, Payload{})
	end := e.Run(100)
	if end != 100 {
		t.Fatalf("end = %v, want 100", end)
	}
	if len(r.times) != 1 {
		t.Fatalf("processed %d events, want 1", len(r.times))
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestSelfScheduleChain(t *testing.T) {
	e := NewEngine()
	p := &pinger{remaining: 5}
	r := &recorder{}
	pid := e.Register(p)
	rid := e.Register(r)
	e.Connect(pid, "out", rid, "in", 1)
	e.ScheduleAt(0, pid, Payload{})
	e.Run(0)
	if len(r.times) != 5 {
		t.Fatalf("got %d pings, want 5", len(r.times))
	}
	if e.Processed() != 10 { // 5 pinger events + 5 recorder events
		t.Fatalf("processed = %d, want 10", e.Processed())
	}
}

func TestConnectDuplicatePanics(t *testing.T) {
	e := NewEngine()
	a := e.Register(&recorder{})
	b := e.Register(&recorder{})
	e.Connect(a, "out", b, "in", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate link")
		}
	}()
	e.Connect(a, "out", b, "in", 2)
}

func TestSendOnMissingPortPanics(t *testing.T) {
	e := NewEngine()
	p := &pinger{remaining: 1}
	pid := e.Register(p)
	e.ScheduleAt(0, pid, Payload{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing link")
		}
	}()
	e.Run(0)
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	id := e.Register(&recorder{})
	e.ScheduleAt(10, id, Payload{})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for past scheduling")
		}
	}()
	e.ScheduleAt(5, id, Payload{})
}

func TestBidirectionalLink(t *testing.T) {
	e := NewEngine()
	a := &recorder{}
	b := &pinger{remaining: 1}
	aid := e.Register(a)
	bid := e.Register(b)
	e.ConnectBidirectional(aid, "out", bid, "out", 7)
	e.ScheduleAt(0, bid, Payload{})
	e.Run(0)
	if len(a.times) != 1 || a.times[0] != 7 {
		t.Fatalf("bidirectional delivery failed: %v", a.times)
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	r := &recorder{}
	id := e.Register(r)
	e.ScheduleAt(1, id, Payload{})
	e.ScheduleAt(2, id, Payload{})
	if !e.Step() || len(r.times) != 1 {
		t.Fatal("first step failed")
	}
	if !e.Step() || len(r.times) != 2 {
		t.Fatal("second step failed")
	}
	if e.Step() {
		t.Fatal("step on empty queue should return false")
	}
}

func TestTimeFormatting(t *testing.T) {
	if Second.String() != "1.000000s" {
		t.Fatalf("string = %q", Second.String())
	}
	if Millisecond.Duration().Milliseconds() != 1 {
		t.Fatal("duration conversion wrong")
	}
}

func TestLinkLatencyAccessor(t *testing.T) {
	e := NewEngine()
	probe := &latencyProbe{}
	a := e.Register(probe)
	b := e.Register(&recorder{})
	e.Connect(a, "out", b, "in", 42)
	e.ScheduleAt(0, a, Payload{})
	e.Run(0)
	if probe.seen != 42 {
		t.Fatalf("latency = %v, want 42", probe.seen)
	}
}

type latencyProbe struct{ seen Time }

func (p *latencyProbe) HandleEvent(ctx *Context, ev Event) {
	p.seen = ctx.LinkLatency("out")
}

func TestNegativeLinkLatencyPanics(t *testing.T) {
	e := NewEngine()
	a := e.Register(&recorder{})
	b := e.Register(&recorder{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Connect(a, "out", b, "in", -1)
}

func TestRegisterDuringRunPanics(t *testing.T) {
	e := NewEngine()
	id := e.Register(&registrar{eng: e})
	e.ScheduleAt(0, id, Payload{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Run(0)
}

type registrar struct{ eng *Engine }

func (r *registrar) HandleEvent(ctx *Context, ev Event) {
	r.eng.Register(&recorder{})
}
