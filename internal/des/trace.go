package des

// Tracer receives engine lifecycle hooks: event dispatch and return,
// event scheduling (sends and self-schedules), and the window-barrier
// transitions of the parallel engine. The observability layer
// (internal/obs) implements it; the interface is deliberately typed
// with builtins only so implementations need not import this package.
//
// Hook contract:
//
//   - Hooks are informational: implementations must not call back into
//     the engine, and nothing they do can alter simulation results —
//     the engines consult the tracer after their own state transitions
//     are complete.
//   - ParallelEngine partitions invoke hooks concurrently from their
//     worker goroutines, so implementations must be safe for concurrent
//     use. The sequential Engine calls from a single goroutine.
//   - `stream` distinguishes runs sharing one tracer (e.g. Monte Carlo
//     trials); `part` is the partition index (0 for the sequential
//     engine); times are simulated nanoseconds.
//
// Both engines hold the tracer behind a nil guard: with no tracer set
// the instrumented paths cost one pointer comparison and allocate
// nothing, preserving the byte-identical replication gate and the
// bench trajectory.
type Tracer interface {
	// EventDispatch fires immediately before a component handles an
	// event; EventReturn fires when the handler returns.
	EventDispatch(stream, part, comp int, simNs int64)
	EventReturn(stream, part int, simNs int64)
	// EventQueued fires when an event is scheduled (Send, ScheduleSelf,
	// or an initial ScheduleAt): dst is the destination component,
	// simNs the scheduling time, deliverNs the delivery time.
	EventQueued(stream, part, dst int, simNs, deliverNs int64)
	// BarrierArrive fires when a parallel partition finishes its window
	// and begins waiting at the synchronization barrier; BarrierResume
	// fires when the coordinator releases it into the next window.
	// windowNs is the exclusive window edge the hook refers to.
	BarrierArrive(stream, part int, windowNs int64)
	BarrierResume(stream, part int, windowNs int64)
}

// AdaptiveTracer is an optional extension of Tracer for the adaptive
// parallel engine. A tracer that also implements it (checked once, at
// SetTracer) receives the per-window synchronization decisions that
// make the engine's adaptive behaviour observable: which edge each
// active partition ran to, how far the static lookahead widening
// stretched its window, how many events crossed partitions at the
// barrier, and any committed rebalance pass. Hooks fire from the
// coordinator goroutine between windows — never concurrently with each
// other, but possibly concurrently with hooks from other engines
// sharing the tracer, so implementations must still be safe for
// concurrent use.
type AdaptiveTracer interface {
	// WindowClosed reports one partition's completed window: windowNs
	// is the exclusive edge it ran to, widthNs the widened window span
	// measured from the global minimum next-event time (-1 when the
	// partition was unconstrained and drained freely), localEvents the
	// events it delivered inside the window, and crossSent the events
	// it posted to other partitions at the barrier.
	WindowClosed(stream, part int, windowNs, widthNs int64, localEvents, crossSent int)
	// RebalanceApplied reports a committed partition-rebalance pass:
	// moved components changed partition, and the heaviest partition's
	// measured event load fell from maxBefore to the predicted
	// maxAfter.
	RebalanceApplied(stream, moved int, maxBefore, maxAfter uint64)
}

// PartitionStat is one partition's cumulative counters over a
// ParallelEngine run, exposed for the run-metrics collector.
type PartitionStat struct {
	// Processed is the number of events this partition delivered.
	Processed uint64
	// PeakQueueDepth is the deepest its private event queue ever grew.
	PeakQueueDepth int
	// Windows is the number of synchronization windows it executed.
	Windows uint64
}
