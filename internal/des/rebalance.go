package des

import (
	"fmt"
	"sort"
)

// Stall-aware partition rebalancing. The observability layer measures
// per-partition barrier stalls; when they reveal a skewed decomposition
// (one partition serializing the rest), the caller invokes Rebalance
// between runs and the engine reassigns components greedily by the
// event loads it measured itself. The pass moves whole clusters — sets
// of components joined by links shorter than the lookahead, which
// Connect requires to be co-partitioned — so the conservative safety
// condition survives any reassignment by construction.

// RebalanceDecision describes the outcome of one greedy rebalancing
// pass.
type RebalanceDecision struct {
	// Applied reports whether the new assignment was committed: the
	// pass only commits when it strictly lowers the heaviest
	// partition's load.
	Applied bool
	// Moved is the number of components whose partition changed.
	Moved int
	// MaxLoadBefore is the heaviest partition's measured event load
	// under the old assignment; MaxLoadAfter is the heaviest
	// partition's load under the proposed one (predicted from the same
	// measurements).
	MaxLoadBefore uint64
	MaxLoadAfter  uint64
}

// ComponentLoads returns a copy of the per-component delivered-event
// counters. They accumulate across runs — Reset keeps them, because
// they are the workload measurement Rebalance feeds on.
func (e *ParallelEngine) ComponentLoads() []uint64 {
	out := make([]uint64, len(e.loads))
	copy(out, e.loads)
	return out
}

// Rebalance reassigns components to partitions using the event loads
// measured by previous runs: components are clustered by sub-lookahead
// links (which must stay co-partitioned), clusters are placed
// heaviest-first onto the least-loaded partition (greedy LPT), and the
// assignment is committed only if it strictly lowers the heaviest
// partition's load. The decision is deterministic for a given wiring
// and load vector.
//
// Call it between runs on a drained or Reset engine — it panics while
// Run is in progress or with events still pending, because queued
// events are keyed to the partition assignment. The typical sequence is
// run, Reset, Rebalance, reschedule, run.
func (e *ParallelEngine) Rebalance() RebalanceDecision {
	if e.running {
		panic("des: Rebalance during Run")
	}
	for _, p := range e.parts {
		if p.queue.len() > 0 || len(p.inbox) > 0 {
			panic("des: Rebalance with events pending")
		}
	}
	n := len(e.components)
	if n == 0 || len(e.parts) == 1 {
		return RebalanceDecision{}
	}

	// Union-find over sub-lookahead links: those components must share
	// a partition, so the pass moves their clusters atomically. Union
	// by smaller root keeps the structure independent of the link map's
	// iteration order.
	uf := make([]int, n)
	for i := range uf {
		uf[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for uf[x] != x {
			uf[x] = uf[uf[x]] // path halving
			x = uf[x]
		}
		return x
	}
	for key, l := range e.links {
		if l.latency >= e.lookahead {
			continue
		}
		a, b := find(int(key.src)), find(int(l.dst))
		if a == b {
			continue
		}
		if a < b {
			uf[b] = a
		} else {
			uf[a] = b
		}
	}

	// Gather clusters in ascending order of their smallest member, so
	// everything downstream is deterministic.
	type cluster struct {
		members []int
		load    uint64
	}
	idx := make(map[int]int, n)
	var clusters []cluster
	for i := 0; i < n; i++ {
		r := find(i)
		ci, ok := idx[r]
		if !ok {
			ci = len(clusters)
			idx[r] = ci
			clusters = append(clusters, cluster{})
		}
		c := &clusters[ci]
		c.members = append(c.members, i)
		c.load += e.loads[i]
	}

	// Greedy LPT: heaviest cluster first (ties by smallest member id)
	// onto the least-loaded partition (ties by lowest index).
	ord := make([]int, len(clusters))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(a, b int) bool {
		ca, cb := &clusters[ord[a]], &clusters[ord[b]]
		if ca.load != cb.load {
			return ca.load > cb.load
		}
		return ca.members[0] < cb.members[0]
	})
	binLoad := make([]uint64, len(e.parts))
	assign := make([]int, len(clusters))
	for _, ci := range ord {
		best := 0
		for b := 1; b < len(binLoad); b++ {
			if binLoad[b] < binLoad[best] {
				best = b
			}
		}
		assign[ci] = best
		binLoad[best] += clusters[ci].load
	}

	curLoad := make([]uint64, len(e.parts))
	for i := 0; i < n; i++ {
		curLoad[e.partOf[i]] += e.loads[i]
	}
	d := RebalanceDecision{
		MaxLoadBefore: maxLoad(curLoad),
		MaxLoadAfter:  maxLoad(binLoad),
	}
	if d.MaxLoadAfter >= d.MaxLoadBefore {
		return d // no strict improvement: keep the current assignment
	}
	for ci := range clusters {
		for _, m := range clusters[ci].members {
			if e.partOf[m] != assign[ci] {
				e.partOf[m] = assign[ci]
				d.Moved++
			}
		}
	}
	d.Applied = true
	e.rebuildPairMin()
	if e.adaptive != nil {
		e.adaptive.RebalanceApplied(e.stream, d.Moved, d.MaxLoadBefore, d.MaxLoadAfter)
	}
	return d
}

// rebuildPairMin recomputes the per-partition-pair minimum cross-link
// latencies after a reassignment, re-checking the conservative safety
// condition on the way (unreachable by construction — sub-lookahead
// links never cross clusters — but cheap to keep as an invariant).
func (e *ParallelEngine) rebuildPairMin() {
	for i := range e.pairMin {
		e.pairMin[i] = -1
	}
	n := len(e.parts)
	for key, l := range e.links {
		sp, dp := e.partOf[key.src], e.partOf[l.dst]
		if sp == dp {
			continue
		}
		if l.latency < e.lookahead {
			panic(fmt.Sprintf("des: rebalance produced unsafe cross-partition link %d/%q latency %v below lookahead %v",
				key.src, key.port, l.latency, e.lookahead))
		}
		if i := sp*n + dp; e.pairMin[i] < 0 || l.latency < e.pairMin[i] {
			e.pairMin[i] = l.latency
		}
	}
	e.distDirty = true
}

func maxLoad(loads []uint64) uint64 {
	var m uint64
	for _, l := range loads {
		if l > m {
			m = l
		}
	}
	return m
}
