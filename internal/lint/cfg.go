package lint

import (
	"go/ast"
)

// Intraprocedural control-flow graph construction over go/ast, the
// dataflow substrate for the concurrency- and allocation-invariant
// checks (hotalloc, atomicmix, goroutineleak, lockguard). Like the
// loader it is stdlib-only: no golang.org/x/tools/go/cfg.
//
// The graph is deliberately modest — one function body at a time, basic
// blocks holding the statements (and branch conditions, in evaluation
// position) that execute straight-line, edges for every structured and
// unstructured control transfer Go has: if/else, for/range, switch and
// type switch (with fallthrough), select, labeled break/continue, goto,
// return, and calls to the panic builtin (which terminate the function
// and therefore edge to the synthetic exit block). Function literals
// are opaque at this level: a FuncLit appears as a value inside a node,
// and callers that care about its body build a separate graph for it,
// because the literal runs at some other time under some other lock
// set.

// cfgBlock is one basic block: nodes execute in order, then control
// transfers along one of succs. The synthetic exit block has no nodes
// and no successors.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
	index int
}

// funcCFG is the control-flow graph of one function body. entry is
// where execution starts; exit is the synthetic block reached by every
// return, by falling off the end, and by panic terminators.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// buildCFG constructs the graph for a function body. It never fails:
// constructs it does not model precisely are approximated
// conservatively (extra edges, never missing ones), which keeps the
// downstream must-analyses sound-for-their-purpose rather than
// wrong-but-precise.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{
		g:      &funcCFG{},
		labels: map[string]*cfgBlock{},
	}
	b.g.exit = b.newBlock() // index 0: the synthetic exit
	b.g.entry = b.newBlock()
	b.cur = b.g.entry
	b.stmtList(body.List)
	// Falling off the end of the body returns.
	b.edge(b.cur, b.g.exit)
	for _, pg := range b.gotos {
		if t, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, t)
		} else {
			// Undefined label: the type checker already rejected the
			// package, but stay total — treat it as a return.
			b.edge(pg.from, b.g.exit)
		}
	}
	return b.g
}

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label    string    // "" for unlabeled
	brk      *cfgBlock // break target (block after the construct)
	cont     *cfgBlock // continue target (nil for switch/select)
	isSwitch bool      // break binds, continue does not
}

type pendingGoto struct {
	label string
	from  *cfgBlock
}

type cfgBuilder struct {
	g      *funcCFG
	cur    *cfgBlock
	frames []loopFrame
	labels map[string]*cfgBlock
	gotos  []pendingGoto
	// nextLabel is the label attached to the immediately following
	// for/range/switch/select statement, consumed when it opens.
	nextLabel string
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{index: len(b.g.blocks)}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.nodes = append(b.cur.nodes, n)
	}
}

// terminate ends the current block with an edge to target and parks the
// builder on a fresh, unreachable block for any trailing dead code.
func (b *cfgBuilder) terminate(target *cfgBlock) {
	b.edge(b.cur, target)
	b.cur = b.newBlock()
}

func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// Give the label its own block so goto can land on it.
		target := b.newBlock()
		b.edge(b.cur, target)
		b.cur = target
		b.labels[s.Label.Name] = target
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.nextLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlk := b.cur
		thenBlk := b.newBlock()
		after := b.newBlock()
		b.edge(condBlk, thenBlk)
		b.cur = thenBlk
		b.stmtList(s.Body.List)
		b.edge(b.cur, after)
		if s.Else != nil {
			elseBlk := b.newBlock()
			b.edge(condBlk, elseBlk)
			b.cur = elseBlk
			b.stmt(s.Else)
			b.edge(b.cur, after)
		} else {
			b.edge(condBlk, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock()
		body := b.newBlock()
		post := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.add(s.Cond)
			b.edge(head, after) // condition may be false
		}
		// `for { ... }` with no condition only leaves through break,
		// return, goto, or panic: no head->after edge. That missing edge
		// is precisely what goroutineleak's exit-reachability test sees.
		b.edge(head, body)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: post})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.add(s.Post)
		}
		b.edge(post, head)
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		body := b.newBlock()
		after := b.newBlock()
		b.edge(b.cur, head)
		head.nodes = append(head.nodes, s.X)
		if s.Key != nil {
			head.nodes = append(head.nodes, s.Key)
		}
		if s.Value != nil {
			head.nodes = append(head.nodes, s.Value)
		}
		// A range loop always has an exhaustion edge — even over a
		// channel, where exhaustion is someone closing it (the
		// close-driven shutdown pattern goroutineleak accepts).
		b.edge(head, after)
		b.edge(head, body)
		b.frames = append(b.frames, loopFrame{label: label, brk: after, cont: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(s.Body.List, label, false)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(s.Body.List, label, false)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.caseClauses(s.Body.List, label, true)

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate(b.g.exit)

	case *ast.BranchStmt:
		b.add(s)
		b.branch(s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.terminate(b.g.exit)
		}

	default:
		// Assignments, declarations, defer, go, send, incdec, empty:
		// straight-line nodes.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch/select shape: a head
// (the current block) fanning out to one block per clause, clauses
// falling through to the next on fallthrough, and everything joining at
// after. A switch without a default may match nothing, so the head then
// also edges to after; a select without a default always executes some
// clause (blocking until one is ready), so it does not.
func (b *cfgBuilder) caseClauses(clauses []ast.Stmt, label string, isSelect bool) {
	head := b.cur
	after := b.newBlock()
	hasDefault := false
	frame := loopFrame{label: label, brk: after, isSwitch: true}
	b.frames = append(b.frames, frame)

	var clauseBlocks []*cfgBlock
	var clauseBodies [][]ast.Stmt
	for _, cl := range clauses {
		blk := b.newBlock()
		b.edge(head, blk)
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				head.nodes = append(head.nodes, e)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseBodies = append(clauseBodies, cl.Body)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				blk.nodes = append(blk.nodes, cl.Comm)
			}
			clauseBlocks = append(clauseBlocks, blk)
			clauseBodies = append(clauseBodies, cl.Body)
		}
	}
	for i, blk := range clauseBlocks {
		b.cur = blk
		b.stmtList(clauseBodies[i])
		// fallthrough transfers to the next clause body. branch() leaves
		// the current block open for it; the extra edge to after below is
		// a conservative over-approximation (more paths, never fewer).
		if endsInFallthrough(clauseBodies[i]) && i+1 < len(clauseBlocks) {
			b.edge(b.cur, clauseBlocks[i+1])
		}
		b.edge(b.cur, after)
	}
	b.frames = b.frames[:len(b.frames)-1]
	if !hasDefault && !isSelect {
		b.edge(head, after)
	}
	b.cur = after
}

// endsInFallthrough reports whether the clause body ends in a
// fallthrough statement (the only place Go allows one).
func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	name := ""
	if s.Label != nil {
		name = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if name == "" || f.label == name {
				b.terminate(f.brk)
				return
			}
		}
		b.terminate(b.g.exit) // label outside our view: approximate as return
	case "continue":
		for i := len(b.frames) - 1; i >= 0; i-- {
			f := b.frames[i]
			if f.isSwitch {
				continue // continue skips switch/select frames
			}
			if name == "" || f.label == name {
				b.terminate(f.cont)
				return
			}
		}
		b.terminate(b.g.exit)
	case "goto":
		b.gotos = append(b.gotos, pendingGoto{label: name, from: b.cur})
		b.cur = b.newBlock()
	case "fallthrough":
		// Leave the block open: caseClauses wires it to the next clause.
	}
}

// isPanicCall reports whether expr is a direct call of the panic
// builtin. It is purely syntactic — a shadowed `panic` identifier would
// be misread — but shadowing panic is its own problem.
func isPanicCall(expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// reachable returns the set of blocks reachable from entry.
func (g *funcCFG) reachable() map[*cfgBlock]bool {
	seen := map[*cfgBlock]bool{}
	stack := []*cfgBlock{g.entry}
	for len(stack) > 0 {
		blk := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[blk] {
			continue
		}
		seen[blk] = true
		stack = append(stack, blk.succs...)
	}
	return seen
}

// exitReachable reports whether any exit — return, fall-off-the-end, or
// panic — is reachable from the function entry. A goroutine body for
// which this is false can never terminate: it is a structural leak.
func (g *funcCFG) exitReachable() bool {
	return g.reachable()[g.exit]
}

// factSet is a set of named dataflow facts ("lock L on receiver R is
// held"). Facts are strings built from stable data (token positions),
// never pointers, so analyses over them are deterministic.
type factSet map[string]bool

func (s factSet) clone() factSet {
	out := make(factSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s factSet) intersect(o factSet) factSet {
	out := factSet{}
	for k := range s {
		if o[k] {
			out[k] = true
		}
	}
	return out
}

func (s factSet) equal(o factSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// forwardMust runs a forward must-analysis to fixpoint: a fact holds at
// a point only if it holds along *every* path reaching it (entry starts
// empty, block inputs are the intersection of predecessor outputs, and
// transfer folds one node's effect into the running set in place). It
// returns each reachable block's input set; unreachable blocks are
// absent, which callers should read as "dead code, skip it". This is
// the dominance approximation lockguard leans on: an access dominated
// by a Lock() with no intervening Unlock() sees the fact present on
// every path, so must-held == dominated-by-lock for straight-line lock
// usage, without building a full dominator tree.
func (g *funcCFG) forwardMust(transfer func(n ast.Node, facts factSet)) map[*cfgBlock]factSet {
	reach := g.reachable()
	preds := map[*cfgBlock][]*cfgBlock{}
	for _, blk := range g.blocks {
		if !reach[blk] {
			continue
		}
		for _, s := range blk.succs {
			preds[s] = append(preds[s], blk)
		}
	}
	in := map[*cfgBlock]factSet{g.entry: {}}
	out := map[*cfgBlock]factSet{}
	// Iterate in block-index order until stable; the graphs are tiny
	// (one function), so simplicity beats a worklist.
	for changed := true; changed; {
		changed = false
		for _, blk := range g.blocks {
			if !reach[blk] {
				continue
			}
			var nin factSet
			if blk == g.entry {
				nin = factSet{}
			} else {
				first := true
				for _, p := range preds[blk] {
					po, ok := out[p]
					if !ok {
						continue // predecessor not yet computed
					}
					if first {
						nin = po.clone()
						first = false
					} else {
						nin = nin.intersect(po)
					}
				}
				if nin == nil {
					continue // no computed predecessor yet
				}
			}
			if old, ok := in[blk]; !ok || !old.equal(nin) {
				in[blk] = nin
				changed = true
			}
			nout := in[blk].clone()
			for _, n := range blk.nodes {
				transfer(n, nout)
			}
			if old, ok := out[blk]; !ok || !old.equal(nout) {
				out[blk] = nout
				changed = true
			}
		}
	}
	return in
}
