// Package lint implements besst-lint, a small static-analysis pass
// built on the standard library's go/ast, go/parser, go/token, and
// go/types (no golang.org/x/tools dependency). It machine-checks the
// conventions the simulator's reproducibility story rests on: all
// randomness flows through explicitly seeded stats.RNG streams, no
// simulation path reads ambient entropy, concurrency stays inside the
// packages built for it, errors are not silently dropped, and floats
// are never compared exactly in model code.
//
// Diagnostics print as
//
//	file.go:line:col: [check] message
//
// and a finding can be suppressed — with a mandatory reason — by a
//
//	//lint:ignore check[,check...] reason
//
// comment on the same line as the finding, on the line directly above
// it, or — when the directive sits in a declaration's doc comment — on
// any line of that declaration. Malformed, unknown-check, and (when
// every check is enabled) unused directives are themselves reported
// under the pseudo-check "lintdirective", so suppressions cannot rot
// silently. A second directive, //lint:hotpath, opts a function into
// the hotalloc check's hot-path scope and is policed the same way.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding. File is relative to the module root.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// ReportFunc records a finding at pos for the check currently running.
type ReportFunc func(pos token.Pos, format string, args ...any)

// Check is one pluggable analysis. Run must be deterministic: visiting
// files in order and reporting through the callback only.
type Check interface {
	Name() string
	Doc() string
	Run(pkg *Package, report ReportFunc)
}

// DirectiveCheck is the pseudo-check name for diagnostics about the
// //lint:ignore directives themselves.
const DirectiveCheck = "lintdirective"

// AllChecks returns the full registry in reporting order.
func AllChecks() []Check {
	return []Check{
		&nodeterminismCheck{},
		&seeddisciplineCheck{},
		&goroutinedisciplineCheck{},
		&errcheckCheck{},
		&floateqCheck{},
		&hotallocCheck{},
		&atomicmixCheck{},
		&goroutineleakCheck{},
		&lockguardCheck{},
	}
}

// SelectChecks resolves a comma-separated name list ("" = all).
func SelectChecks(names string) ([]Check, error) {
	all := AllChecks()
	if strings.TrimSpace(names) == "" {
		return all, nil
	}
	byName := map[string]Check{}
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []Check
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (run besst-lint -list)", n)
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: -checks selected nothing")
	}
	return out, nil
}

// directive is one parsed //lint:ignore comment.
type directive struct {
	file string
	line int
	col  int
	// endLine is the last line the directive covers: line+1 for a
	// free-standing comment, the declaration's closing line when the
	// directive sits in a doc comment.
	endLine int
	checks  []string
	bad     string // diagnostic text if the directive is malformed
	used    bool
}

func (d *directive) covers(diag Diagnostic) bool {
	if d.bad != "" || diag.Check == DirectiveCheck || d.file != diag.File {
		return false
	}
	if diag.Line < d.line || diag.Line > d.endLine {
		return false
	}
	for _, c := range d.checks {
		if c == diag.Check {
			return true
		}
	}
	return false
}

// parseDirectives extracts every //lint:ignore directive in pkg.
// Unknown check names are flagged against the full registry (not the
// enabled subset) so a partial -checks run never misreports them.
func parseDirectives(pkg *Package) []*directive {
	known := map[string]bool{}
	for _, c := range AllChecks() {
		known[c.Name()] = true
	}
	var out []*directive
	for _, f := range pkg.Files {
		// Directives inside a declaration's doc comment cover the whole
		// declaration span, so a contract like "caller holds mu" can be
		// suppressed once at the function head.
		declEnd := map[*ast.CommentGroup]int{}
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc != nil {
				declEnd[doc] = pkg.Fset.Position(decl.End()).Line
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &directive{file: pkg.relFile(pos), line: pos.Line, col: pos.Column, endLine: pos.Line + 1}
				if end, ok := declEnd[cg]; ok && end > d.endLine {
					d.endLine = end
				}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.bad = "//lint:ignore needs a check name and a reason"
				case len(fields) == 1:
					d.bad = fmt.Sprintf("//lint:ignore %s needs a reason", fields[0])
				default:
					d.checks = strings.Split(fields[0], ",")
					for _, name := range d.checks {
						if !known[name] {
							d.bad = fmt.Sprintf("//lint:ignore names unknown check %q", name)
						}
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// hotpathIssues polices //lint:hotpath directives: they take no
// arguments, must sit in a function declaration's doc comment, and are
// redundant on functions the built-in internal/des hot table already
// covers.
func hotpathIssues(pkg *Package) []Diagnostic {
	var out []Diagnostic
	inDes := pathScopedTo(pkg, desHotScope)
	for _, f := range pkg.Files {
		docOf := map[*ast.CommentGroup]*ast.FuncDecl{}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docOf[fd.Doc] = fd
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, HotpathDirective)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				mk := func(format string, args ...any) {
					out = append(out, Diagnostic{
						File: pkg.relFile(pos), Line: pos.Line, Col: pos.Column,
						Check: DirectiveCheck, Message: fmt.Sprintf(format, args...),
					})
				}
				if strings.TrimSpace(rest) != "" {
					mk("//lint:hotpath takes no arguments")
					continue
				}
				fd, ok := docOf[cg]
				if !ok {
					mk("//lint:hotpath must sit in a function declaration's doc comment")
					continue
				}
				if inDes && desHotFuncs[funcKey(fd)] {
					mk("//lint:hotpath on %s is redundant: the built-in hot-path table already covers it", funcKey(fd))
				}
			}
		}
	}
	return out
}

// Run executes the checks over the packages and returns the surviving
// diagnostics sorted by file, line, column, check, and message. When
// checks covers the full registry, directives that suppress nothing
// are reported as unused.
func Run(pkgs []*Package, checks []Check) []Diagnostic {
	fullRun := len(checks) == len(AllChecks())

	var diags []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		for _, c := range checks {
			name := c.Name()
			c.Run(pkg, func(pos token.Pos, format string, args ...any) {
				p := pkg.Fset.Position(pos)
				raw = append(raw, Diagnostic{
					File:    pkg.relFile(p),
					Line:    p.Line,
					Col:     p.Column,
					Check:   name,
					Message: fmt.Sprintf(format, args...),
				})
			})
		}
		dirs := parseDirectives(pkg)
		for _, diag := range raw {
			suppressed := false
			for _, d := range dirs {
				if d.covers(diag) {
					d.used = true
					suppressed = true
				}
			}
			if !suppressed {
				diags = append(diags, diag)
			}
		}
		diags = append(diags, hotpathIssues(pkg)...)
		for _, d := range dirs {
			switch {
			case d.bad != "":
				diags = append(diags, Diagnostic{
					File: d.file, Line: d.line, Col: d.col,
					Check: DirectiveCheck, Message: d.bad,
				})
			case !d.used && fullRun:
				diags = append(diags, Diagnostic{
					File: d.file, Line: d.line, Col: d.col,
					Check:   DirectiveCheck,
					Message: fmt.Sprintf("//lint:ignore %s suppresses no diagnostic; remove it", strings.Join(d.checks, ",")),
				})
			}
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	// Dedupe identical findings (e.g. a check reporting the same node
	// through two syntactic routes).
	out := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			out = append(out, d)
		}
	}
	return out
}

// pathScopedTo reports whether pkg's module-relative import path lies
// at or under any of the given prefixes.
func pathScopedTo(pkg *Package, prefixes []string) bool {
	rel := pkg.Rel()
	for _, p := range prefixes {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}
