// Package errfix exercises the errcheck check: dropped error returns
// are flagged while stderr prints, in-memory builders, and explicit
// _ = discards pass.
package errfix

import (
	"fmt"
	"os"
	"strings"
)

func drops(f *os.File) {
	os.Remove("stale")
	defer f.Close()
	fmt.Fprintf(f, "boom\n")
}

func blessed() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ok %d\n", 1)
	b.WriteString("tail")
	fmt.Fprintln(os.Stderr, "diagnostic")
	_ = os.Remove("deliberate")
	return b.String()
}
