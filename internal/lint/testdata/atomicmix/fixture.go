// Package atomfix exercises the atomicmix check: a field accessed via
// sync/atomic anywhere in the package must never be accessed plainly
// outside init/Reset paths, and an atomic write protocol must keep its
// load side — a field that is only ever stored has lost whatever
// synchronization it was built for.
package atomfix

import "sync/atomic"

type counter struct {
	// pending is stored and blindly added to, but never loaded: the
	// barrier protocol it once synchronized has decayed.
	pending atomic.Int32
	// mixed is touched both atomically and plainly.
	mixed int64
	// flags is accessed only through sync/atomic: clean.
	flags uint32
	// done has both sides of its protocol: clean.
	done atomic.Bool
}

func (c *counter) arm(n int32) {
	c.pending.Store(n)
	c.done.Store(false)
}

func (c *counter) hit() {
	c.pending.Add(-1) // result discarded: a blind write, not a load
	atomic.AddInt64(&c.mixed, 1)
	atomic.StoreUint32(&c.flags, 1)
}

func (c *counter) finished() bool {
	return c.done.Load() && atomic.LoadUint32(&c.flags) == 1
}

func (c *counter) report() int64 {
	if c.mixed > 0 { // plain read of an atomic-protocol field
		return c.mixed // and a second one
	}
	return 0
}

// Reset rewinds between trials, before any worker goroutine exists:
// plain access is sanctioned here.
func (c *counter) Reset() {
	c.mixed = 0
}
