// Package hotfix exercises the hotalloc check: functions opted into the
// hot path with //lint:hotpath must not allocate — no fmt, no string
// concatenation, no map/new/composite-literal construction, no
// capacity-blind append, no escaping closure captures, no interface
// boxing of concrete values. Field-backed buffers, explicit-capacity
// make targets, and //lint:ignore with a reason are the sanctioned
// outs.
package hotfix

import "fmt"

type ring struct {
	buf  []int
	sink any
}

// push appends into the reused field buffer (clean) and into two
// fresh locals (one blind, one with capacity evidence).
//
//lint:hotpath
func (r *ring) push(v int) {
	r.buf = append(r.buf, v)
	tmp := []int{}
	tmp = append(tmp, v)
	scratch := make([]int, 0, 8)
	scratch = append(scratch, v)
	r.sink = v
	_, _ = tmp, scratch
}

// label formats on the hot path.
//
//lint:hotpath
func label(id int) string {
	s := fmt.Sprint(id)
	return "ev-" + s
}

// build constructs on the hot path.
//
//lint:hotpath
func build() {
	p := new(ring)
	m := map[int]int{}
	q := &ring{}
	_, _, _ = p, m, q
}

// capture returns a closure over its argument.
//
//lint:hotpath
func capture(n int) func() int {
	f := func() int { return n }
	return f
}

// refill is hot but its once-per-epoch table rebuild is sanctioned
// with a reasoned suppression; the panic path is exempt wholesale.
//
//lint:hotpath
func refill(r *ring, epoch int) {
	if epoch < 0 {
		panic(fmt.Sprintf("refill: negative epoch %d", epoch))
	}
	//lint:ignore hotalloc the index is rebuilt once per epoch, not per event
	idx := map[int]int{}
	for i, v := range r.buf {
		idx[v] = i
	}
}

// cold is not annotated: it may allocate freely.
func cold() map[int]int { return map[int]int{} }

//lint:hotpath
var notAFunc int

//lint:hotpath on the wrong line with arguments
func misuse() {}
