// Package lockfix exercises the lockguard check: fields documented
// `// guarded by <mu>` may only be accessed on paths where the named
// mutex is provably held (must-held dataflow), freshly constructed
// values are exempt until shared, and annotations naming a nonexistent
// mutex sibling are themselves flagged.
package lockfix

import "sync"

type box struct {
	mu sync.Mutex
	// guarded by mu
	n int
	// guarded by missing
	m int
}

// locked holds mu across the access: clean.
func (b *box) locked() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// deferred holds mu to function exit: clean.
func (b *box) deferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// unlocked touches n with no lock at all.
func (b *box) unlocked() {
	b.n++
}

// halfLocked only acquires on one path, so the access is not dominated
// by the Lock.
func (b *box) halfLocked(c bool) {
	if c {
		b.mu.Lock()
	}
	b.n++
	if c {
		b.mu.Unlock()
	}
}

// released reads n after giving the lock back.
func (b *box) released() int {
	b.mu.Lock()
	b.mu.Unlock()
	return b.n
}

// fresh constructs its own box: not shared yet, lock-free access is
// fine.
func fresh() *box {
	b := &box{}
	b.n = 1
	return b
}

// closureLeak returns a literal that touches n under no lock of its
// own; the literal runs later, after mu has been released.
func (b *box) closureLeak() func() {
	b.mu.Lock()
	defer b.mu.Unlock()
	return func() { b.n++ }
}
