// Package suppressfix exercises //lint:ignore handling: directives on
// the line above and at the end of the flagged line suppress; malformed,
// unknown-check, and unused directives are reported as lintdirective
// findings and suppress nothing.
package suppressfix

func suppressed(a, b float64) bool {
	//lint:ignore floateq bit-exactness is intended in this fixture
	return a == b
}

func trailing(x float64) bool {
	return x != 0 //lint:ignore floateq zero is the sentinel here
}

func unsuppressed(a, b float64) bool {
	return a != b
}

//lint:ignore floateq
func missingReason(a, b float64) bool {
	return a == b
}

//lint:ignore nosuchcheck the check name above does not exist
func unknownCheck(a, b int) bool {
	return a == b
}

//lint:ignore errcheck nothing on the next line can trip errcheck
func unused(a, b int) int {
	return a + b
}

// declCovered's doc-level directive covers the whole declaration span,
// not just the next line, so the comparison three lines down is
// suppressed too.
//
//lint:ignore floateq comparisons in this helper are bit-exact by design
func declCovered(a, b float64) bool {
	x := a * b
	y := b * a
	return x == y
}
