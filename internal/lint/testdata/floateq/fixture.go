// Package floatfix exercises the floateq check: exact comparisons on
// any float type are flagged; integer comparisons are not.
package floatfix

func eq(a, b float64) bool { return a == b }

func nonzero(x float64) bool { return x != 0 }

func eq32(a, b float32) bool { return a == b }

func intEq(a, b int) bool { return a == b }
