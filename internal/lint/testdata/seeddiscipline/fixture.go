// Package seedfix exercises the seeddiscipline check: RNG construction
// inside loops with the sanctioned and forbidden seed derivations.
package seedfix

import "besst/internal/stats"

type item struct{ Seed uint64 }

func derive(master uint64, i int) uint64 {
	return master ^ uint64(i)*0x9e3779b97f4a7c15
}

// bad constructions: a reused master seed and loop-variable arithmetic.
func bad(master uint64, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		r := stats.NewRNG(master)
		sum += r.Float64() + float64(i)
	}
	for i := 0; i < n; i++ {
		r := stats.NewRNG(master + uint64(i))
		sum += r.Float64()
	}
	return sum
}

// good constructions: seed tables, derivation helpers, per-item fields.
func good(master uint64, seeds []uint64, items []item, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += stats.NewRNG(seeds[i]).Float64()
		sum += stats.NewRNG(derive(master, i)).Float64()
	}
	for _, it := range items {
		sum += stats.NewRNG(it.Seed).Float64()
	}
	return sum
}
