// Package gofix exercises the goroutinediscipline check: hand-rolled
// fan-out outside internal/par and internal/des must be flagged at both
// the go statement and the sync.WaitGroup use.
package gofix

import "sync"

func fanOut(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(w)
	}
	wg.Wait()
}
