// Package leakfix exercises the goroutineleak check. It poses as
// besst/internal/par/leakfix so its go statements are inside
// concurrencyScope: every spawned body must have a reachable shutdown
// edge — a return, a close-driven range exhaustion, or a sentinel
// receive — discovered by CFG exit-reachability.
package leakfix

type pump struct {
	in   chan int
	done chan struct{}
}

// leakClosure spins on a bare receive loop with no way out.
func (p *pump) leakClosure() {
	go func() {
		for {
			v := <-p.in
			_ = v
		}
	}()
}

// leakNamed spawns a named worker whose every path loops forever.
func (p *pump) leakNamed() {
	go p.spin()
}

func (p *pump) spin() {
	for {
		select {
		case v := <-p.in:
			_ = v
		}
	}
}

// drain exits when in is closed: the range loop has an exhaustion edge.
func (p *pump) drain() {
	go func() {
		for v := range p.in {
			_ = v
		}
	}()
}

// sentinel exits when done fires.
func (p *pump) sentinel() {
	go func() {
		for {
			select {
			case v := <-p.in:
				_ = v
			case <-p.done:
				return
			}
		}
	}()
}
