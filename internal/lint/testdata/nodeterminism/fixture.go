// Package ndfix exercises the nodeterminism check: it is loaded under a
// synthetic import path inside internal/des, so every ambient entropy
// source below must be flagged.
package ndfix

import (
	"math/rand"
	"os"
	"time"
)

func entropy() float64 {
	start := time.Now()
	_ = time.Since(start)
	_ = os.Getpid()
	return rand.Float64()
}
