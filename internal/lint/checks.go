package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ---------------------------------------------------------------------------
// Shared type helpers

var errorType = types.Universe.Lookup("error").Type()

// pkgName resolves expr to the *types.PkgName it names, or nil.
func pkgName(pkg *Package, expr ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pkg.Info.Uses[id].(*types.PkgName)
	return pn
}

// selectorOf reports whether expr is a selector of the named package
// (by import path), returning the selected name.
func selectorOf(pkg *Package, expr ast.Expr, pkgPath string) (string, bool) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	pn := pkgName(pkg, sel.X)
	if pn == nil || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

// calleeTypesFunc resolves the *types.Func a call invokes (package
// function or method), or nil for conversions, builtins, and calls of
// function-typed values.
func calleeTypesFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = f
	case *ast.SelectorExpr:
		id = f.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// isNamed reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// ---------------------------------------------------------------------------
// nodeterminism

// nondetScope is the simulation core: every package whose output feeds
// the paper's validation tables must be a pure function of its inputs
// and explicit seeds.
var nondetScope = []string{
	"internal/des", "internal/besst", "internal/dse", "internal/groundtruth",
	"internal/stats", "internal/workflow", "internal/exp",
	"internal/netsim", "internal/benchdata",
}

// forbiddenImports are entropy sources whose mere presence in a
// simulation package is a violation; stats.RNG is the only sanctioned
// randomness.
var forbiddenImports = map[string]string{
	"math/rand":    "use the explicitly seeded stats.RNG instead",
	"math/rand/v2": "use the explicitly seeded stats.RNG instead",
	"crypto/rand":  "simulation code must be reproducible from its seed",
}

// forbiddenCalls maps package path -> function names that read ambient
// entropy (wall clock, process identity).
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":   "derive time from the DES clock or take it as a parameter",
		"Since": "derive durations from simulated timestamps",
		"Until": "derive durations from simulated timestamps",
	},
	"os": {
		"Getpid":  "process identity must not influence simulation output",
		"Getppid": "process identity must not influence simulation output",
	},
}

type nodeterminismCheck struct{}

func (*nodeterminismCheck) Name() string { return "nodeterminism" }
func (*nodeterminismCheck) Doc() string {
	return "simulation packages must not read wall-clock time, process identity, or math/rand entropy"
}

func (c *nodeterminismCheck) Run(pkg *Package, report ReportFunc) {
	if !pathScopedTo(pkg, nondetScope) {
		return
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if why, ok := forbiddenImports[path]; ok {
				report(imp.Pos(), "import of %s in a simulation package; %s", path, why)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pn := pkgName(pkg, sel.X)
			if pn == nil {
				return true
			}
			if why, ok := forbiddenCalls[pn.Imported().Path()][sel.Sel.Name]; ok {
				report(sel.Pos(), "%s.%s is nondeterministic; %s", pn.Imported().Name(), sel.Sel.Name, why)
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// seeddiscipline

type seeddisciplineCheck struct{}

func (*seeddisciplineCheck) Name() string { return "seeddiscipline" }
func (*seeddisciplineCheck) Doc() string {
	return "RNGs built inside loops must consume pre-drawn per-item seeds (par.SeedFan), not reused masters or loop-variable arithmetic"
}

func (c *seeddisciplineCheck) Run(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		ast.Walk(&seedVisitor{pkg: pkg, report: report}, f)
	}
}

// seedVisitor walks a file carrying the set of loop variables currently
// in scope; each loop pushes a frame, and the frame pops automatically
// because child visitors get their own copy of the stack.
type seedVisitor struct {
	pkg      *Package
	report   ReportFunc
	loopVars map[types.Object]bool // all active loop variables
	inLoop   bool
}

func (v *seedVisitor) Visit(n ast.Node) ast.Visitor {
	if n == nil {
		return nil
	}
	child := *v
	switch s := n.(type) {
	case *ast.ForStmt:
		child.inLoop = true
		child.loopVars = extendLoopVars(v.pkg, v.loopVars, forStmtVars(v.pkg, s))
	case *ast.RangeStmt:
		child.inLoop = true
		child.loopVars = extendLoopVars(v.pkg, v.loopVars, rangeStmtVars(v.pkg, s))
	case *ast.CallExpr:
		v.checkCall(s)
	}
	return &child
}

func extendLoopVars(pkg *Package, base map[types.Object]bool, add []types.Object) map[types.Object]bool {
	out := make(map[types.Object]bool, len(base)+len(add))
	for o := range base {
		out[o] = true
	}
	for _, o := range add {
		if o != nil {
			out[o] = true
		}
	}
	return out
}

func forStmtVars(pkg *Package, s *ast.ForStmt) []types.Object {
	assign, ok := s.Init.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var out []types.Object
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				out = append(out, obj)
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func rangeStmtVars(pkg *Package, s *ast.RangeStmt) []types.Object {
	var out []types.Object
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok && id != nil {
			if obj := pkg.Info.Defs[id]; obj != nil {
				out = append(out, obj)
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func (v *seedVisitor) checkCall(call *ast.CallExpr) {
	if !v.inLoop || len(call.Args) != 1 {
		return
	}
	fn := calleeTypesFunc(v.pkg, call)
	if fn == nil || fn.FullName() != "besst/internal/stats.NewRNG" {
		return
	}
	arg := unwrapConversions(v.pkg, call.Args[0])
	// A nested call is a named derivation helper (or an RNG draw like
	// master.Uint64()); an index expression is a pre-drawn seed table.
	// Both are the sanctioned per-item patterns.
	if containsNonConversionCall(v.pkg, arg) || containsIndexExpr(arg) {
		return
	}
	if !usesAnyObject(v.pkg, arg, v.loopVars) {
		report := "stats.NewRNG(%s) inside a loop reuses a loop-invariant seed, so every iteration replays the same stream; pre-draw per-item seeds with par.SeedFan"
		v.report(call.Pos(), report, types.ExprString(call.Args[0]))
		return
	}
	// The loop variable itself (or a field of the ranged-over item) is a
	// legitimate per-item seed source.
	if isIdentOrFieldChain(arg) {
		return
	}
	v.report(call.Pos(),
		"stats.NewRNG(%s) derives its seed from a loop variable by arithmetic; route it through par.SeedFan or a named derivation helper",
		types.ExprString(call.Args[0]))
}

// unwrapConversions strips parens and type conversions (uint64(i), ...)
// so classification sees the underlying seed expression.
func unwrapConversions(pkg *Package, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		tv, ok := pkg.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return e
		}
		e = call.Args[0]
	}
}

func containsNonConversionCall(pkg *Package, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if tv, isConv := pkg.Info.Types[call.Fun]; !isConv || !tv.IsType() {
				found = true
				return false
			}
		}
		return !found
	})
	return found
}

func containsIndexExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

func usesAnyObject(pkg *Package, e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pkg.Info.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// isIdentOrFieldChain reports whether e is a bare identifier or a
// selector chain rooted at one (x, x.Seed, item.Cfg.Seed).
func isIdentOrFieldChain(e ast.Expr) bool {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			return true
		case *ast.SelectorExpr:
			e = t.X
		default:
			return false
		}
	}
}

// ---------------------------------------------------------------------------
// goroutinediscipline

// concurrencyScope is where goroutines may be spawned: the worker pool,
// the conservative-window parallel DES engine, the observability layer
// (whose hooks are invoked from engine partitions and must guard shared
// buffers), the campaign resilience runner (whose watchdog must race a
// trial attempt against a timer), the simulation service (whose
// scheduler, campaign runners, and signal handling are daemon plumbing
// outside any single trial), the distributed coordinator/worker layer
// (replica fan-out, heartbeats, worker signal handling), and the
// service client (whose smoke harness hosts an in-process server),
// and the design-space explorer (whose cross-campaign point memo is a
// mutex-guarded LRU shared between concurrent campaigns). Everything
// else must go through par.ForEach so draining, panic propagation, and
// the determinism contract stay in one place.
var concurrencyScope = []string{
	"internal/par", "internal/des", "internal/obs", "internal/resilience",
	"internal/serve", "internal/dist", "internal/serveclient", "internal/dse",
}

type goroutinedisciplineCheck struct{}

func (*goroutinedisciplineCheck) Name() string { return "goroutinediscipline" }
func (*goroutinedisciplineCheck) Doc() string {
	return "go statements and sync.WaitGroup are confined to internal/par, internal/des, internal/obs, internal/resilience, internal/serve, internal/dist, internal/serveclient, and internal/dse"
}

func (c *goroutinedisciplineCheck) Run(pkg *Package, report ReportFunc) {
	if pathScopedTo(pkg, concurrencyScope) {
		return
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				report(s.Pos(), "bare go statement outside the concurrency scope (internal/par, internal/des, internal/obs, internal/resilience, internal/serve, internal/dist, internal/serveclient, internal/dse); use par.ForEach so pool draining and panic propagation stay centralized")
			case *ast.Ident:
				if tn, ok := pkg.Info.Uses[s].(*types.TypeName); ok &&
					tn.Pkg() != nil && tn.Pkg().Path() == "sync" && tn.Name() == "WaitGroup" {
					report(s.Pos(), "sync.WaitGroup outside the concurrency scope (internal/par, internal/des, internal/obs, internal/resilience, internal/serve, internal/dist, internal/serveclient, internal/dse); use par.ForEach instead of hand-rolled fan-out")
				}
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// errcheck

type errcheckCheck struct{}

func (*errcheckCheck) Name() string { return "errcheck" }
func (*errcheckCheck) Doc() string {
	return "no silently discarded error returns (stderr prints, strings.Builder/bytes.Buffer writes, and cli.Printer output are blessed)"
}

func (c *errcheckCheck) Run(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					c.flag(pkg, call, "", report)
				}
			case *ast.DeferStmt:
				c.flag(pkg, s.Call, "deferred ", report)
			case *ast.GoStmt:
				c.flag(pkg, s.Call, "spawned ", report)
			}
			return true
		})
	}
}

func (c *errcheckCheck) flag(pkg *Package, call *ast.CallExpr, kind string, report ReportFunc) {
	t := pkg.Info.TypeOf(call)
	if t == nil || !resultCarriesError(t) || c.blessed(pkg, call) {
		return
	}
	name := "call"
	if fn := calleeTypesFunc(pkg, call); fn != nil {
		name = funcDisplayName(fn)
	}
	report(call.Pos(), "%s%s returns an error that is discarded; handle it, assign it to _, or suppress with a reason", kind, name)
}

func resultCarriesError(t types.Type) bool {
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if types.Identical(tuple.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	}
	return types.Identical(t, errorType)
}

// blessed lists the writes whose errors are safe to drop: diagnostics
// to stderr (already the process's error channel), in-memory builders
// that document never failing, and the error-absorbing cli.Printer
// (which records the first failure for the caller to surface at exit).
func (c *errcheckCheck) blessed(pkg *Package, call *ast.CallExpr) bool {
	fn := calleeTypesFunc(pkg, call)
	if fn == nil {
		return false
	}
	switch fn.FullName() {
	case "fmt.Fprint", "fmt.Fprintf", "fmt.Fprintln":
		if len(call.Args) == 0 {
			return false
		}
		if name, ok := selectorOf(pkg, call.Args[0], "os"); ok && name == "Stderr" {
			return true
		}
		if t := pkg.Info.TypeOf(call.Args[0]); t != nil && neverFailingWriter(t) {
			return true
		}
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return neverFailingWriter(sig.Recv().Type())
}

// neverFailingWriter reports whether t is a writer whose errors are
// safe to drop: the in-memory builders (documented to never fail) and
// the error-absorbing cli.Printer.
func neverFailingWriter(t types.Type) bool {
	return isNamed(t, "strings", "Builder") ||
		isNamed(t, "bytes", "Buffer") ||
		isNamed(t, "besst/internal/cli", "Printer")
}

func funcDisplayName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		qual := func(p *types.Package) string { return p.Name() }
		return "(" + types.TypeString(sig.Recv().Type(), qual) + ")." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// ---------------------------------------------------------------------------
// floateq

type floateqCheck struct{}

func (*floateqCheck) Name() string { return "floateq" }
func (*floateqCheck) Doc() string {
	return "no == or != on float operands; compare through stats.ApproxEqual or suppress with the reason exactness is intended"
}

func (c *floateqCheck) Run(pkg *Package, report ReportFunc) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			b, ok := n.(*ast.BinaryExpr)
			if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
				return true
			}
			tx, ty := pkg.Info.TypeOf(b.X), pkg.Info.TypeOf(b.Y)
			if (tx != nil && isFloat(tx)) || (ty != nil && isFloat(ty)) {
				report(b.OpPos, "%s compares floats exactly; use stats.ApproxEqual(a, b, tol) or suppress with the reason bit-exactness is intended", b.Op)
			}
			return true
		})
	}
}
