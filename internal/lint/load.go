package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package ready for analysis.
//
// Test files (_test.go) are deliberately excluded: the invariants
// besst-lint enforces protect simulation code paths, and tests need the
// freedom to spawn goroutines, compare floats exactly, and measure wall
// time around the code under test.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	loader *Loader
}

// Rel returns the package's import path relative to the module root
// ("internal/des", "cmd/besst-lint", "" for the root package). Checks
// use it to scope themselves to parts of the tree.
func (p *Package) Rel() string {
	if p.ImportPath == p.loader.ModPath {
		return ""
	}
	return strings.TrimPrefix(p.ImportPath, p.loader.ModPath+"/")
}

// relFile returns pos's filename relative to the module root, with
// forward slashes, so diagnostics are stable across checkouts.
func (p *Package) relFile(pos token.Position) string {
	rel, err := filepath.Rel(p.loader.ModRoot, pos.Filename)
	if err != nil {
		return pos.Filename
	}
	return filepath.ToSlash(rel)
}

// Loader discovers, parses, and type-checks the module's packages using
// only the standard library: module-local imports are resolved by
// recursively loading their directories, and standard-library imports
// fall back to the source importer (go/importer "source"), which
// type-checks GOROOT packages directly. Loaded packages are memoized,
// so a whole-tree run type-checks each package exactly once.
type Loader struct {
	ModRoot string // absolute path of the directory holding go.mod
	ModPath string // module path declared in go.mod

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader locates the enclosing module by walking up from dir (or the
// working directory if dir is empty) to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     src,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load
// from the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load type-checks the module package with the given import path.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the non-test Go files of dir as the
// package with the given import path. It is exported so tests can load
// fixture packages from testdata under a synthetic import path (the
// path decides which path-scoped checks apply).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}

	p := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		loader:     l,
	}
	l.pkgs[path] = p
	return p, nil
}

// goFileNames lists dir's buildable non-test Go files in name order.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// LoadPatterns resolves package patterns — "./...", "./dir/...",
// "./dir", or module-relative equivalents — against the module tree and
// loads every matched package, returned in import-path order. Package
// patterns follow the go tool's directory conventions: testdata,
// vendor, hidden, and underscore-prefixed directories are skipped, as
// are directories with no non-test Go files.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, l.ModPath+"/")
		pat = strings.TrimPrefix(pat, "./")
		if pat == "." || pat == l.ModPath {
			pat = ""
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(rest, "/")
		}
		base := filepath.Join(l.ModRoot, filepath.FromSlash(pat))
		if st, err := os.Stat(base); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: no such directory %s", pat, base)
		}
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for dir := range dirs {
		names, err := goFileNames(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue // directory without buildable Go files
		}
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
