package lint

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one type-checked, non-test package ready for analysis.
//
// Test files (_test.go) are deliberately excluded: the invariants
// besst-lint enforces protect simulation code paths, and tests need the
// freedom to spawn goroutines, compare floats exactly, and measure wall
// time around the code under test.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info

	loader *Loader
}

// Rel returns the package's import path relative to the module root
// ("internal/des", "cmd/besst-lint", "" for the root package). Checks
// use it to scope themselves to parts of the tree.
func (p *Package) Rel() string {
	if p.ImportPath == p.loader.ModPath {
		return ""
	}
	return strings.TrimPrefix(p.ImportPath, p.loader.ModPath+"/")
}

// relFile returns pos's filename relative to the module root, with
// forward slashes, so diagnostics are stable across checkouts.
func (p *Package) relFile(pos token.Position) string {
	rel, err := filepath.Rel(p.loader.ModRoot, pos.Filename)
	if err != nil {
		return pos.Filename
	}
	return filepath.ToSlash(rel)
}

// Loader discovers, parses, and type-checks the module's packages using
// only the standard library: module-local imports are resolved by
// recursively loading their directories, and standard-library imports
// fall back to the source importer (go/importer "source"), which
// type-checks GOROOT packages directly. Loaded packages are memoized,
// so a whole-tree run type-checks each package exactly once.
type Loader struct {
	ModRoot string // absolute path of the directory holding go.mod
	ModPath string // module path declared in go.mod

	fset    *token.FileSet
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path
	loading map[string]bool     // import-cycle guard
}

// NewLoader locates the enclosing module by walking up from dir (or the
// working directory if dir is empty) to the nearest go.mod.
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := readModulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	return &Loader{
		ModRoot: root,
		ModPath: modPath,
		fset:    fset,
		std:     src,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}, nil
}

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-local paths load
// from the module tree, everything else from GOROOT source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load type-checks the module package with the given import path.
func (l *Loader) load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
	return l.LoadDir(filepath.Join(l.ModRoot, filepath.FromSlash(rel)), path)
}

// LoadDir parses and type-checks the non-test Go files of dir as the
// package with the given import path. It is exported so tests can load
// fixture packages from testdata under a synthetic import path (the
// path decides which path-scoped checks apply).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := buildableGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no buildable non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		full := filepath.Join(dir, name)
		src, err := os.ReadFile(full)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(l.fset, full, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}

	p := &Package{
		ImportPath: path,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		loader:     l,
	}
	l.pkgs[path] = p
	return p, nil
}

// goFileNames lists dir's non-test Go files in name order, before any
// build-constraint filtering.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, "_") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildableGoFiles narrows goFileNames to the files that build for the
// current GOOS/GOARCH: the go tool's _GOOS/_GOARCH filename suffix
// rules plus //go:build constraint evaluation. Without this, a
// build-tagged file for another platform (or //go:build ignore) would
// be parsed into the package and break type-checking.
func buildableGoFiles(dir string) ([]string, error) {
	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, name := range names {
		if !fileMatchesTarget(name) {
			continue
		}
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if !buildConstraintSatisfied(src) {
			continue
		}
		out = append(out, name)
	}
	return out, nil
}

// knownOS and knownArch mirror the go tool's recognized target names;
// only recognized suffixes constrain a file (queue_test.go is a test
// file, queue_linux.go is linux-only, queue_foo.go is unconstrained).
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mipsle": true, "mips64": true,
	"mips64le": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// fileMatchesTarget applies the *_GOOS.go / *_GOARCH.go /
// *_GOOS_GOARCH.go filename rules for the running platform.
func fileMatchesTarget(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) >= 3 {
		goos, goarch := parts[len(parts)-2], parts[len(parts)-1]
		if knownOS[goos] && knownArch[goarch] {
			return goos == runtime.GOOS && goarch == runtime.GOARCH
		}
	}
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if knownOS[last] {
			return last == runtime.GOOS
		}
		if knownArch[last] {
			return last == runtime.GOARCH
		}
	}
	return true
}

// buildConstraintSatisfied evaluates the file's //go:build line (if
// any) with the running GOOS/GOARCH and the gc toolchain as the only
// true tags. Legacy // +build lines are ignored: gofmt has rewritten
// them to //go:build since Go 1.17.
func buildConstraintSatisfied(src []byte) bool {
	for _, line := range strings.Split(string(src), "\n") {
		trimmed := strings.TrimSpace(line)
		if constraint.IsGoBuild(trimmed) {
			expr, err := constraint.Parse(trimmed)
			if err != nil {
				return true // malformed: let the parser report it
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH || tag == "gc"
			})
		}
		if strings.HasPrefix(trimmed, "package ") {
			break // constraints must precede the package clause
		}
	}
	return true
}

// LoadPatterns resolves package patterns — "./...", "./dir/...",
// "./dir", or module-relative equivalents — against the module tree and
// loads every matched package, returned in import-path order. Package
// patterns follow the go tool's directory conventions: testdata,
// vendor, hidden, and underscore-prefixed directories are skipped, as
// are directories with no non-test Go files.
func (l *Loader) LoadPatterns(patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs := map[string]bool{}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		pat = strings.TrimPrefix(pat, l.ModPath+"/")
		pat = strings.TrimPrefix(pat, "./")
		if pat == "." || pat == l.ModPath {
			pat = ""
		}
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "..."); ok {
			recursive = true
			pat = strings.TrimSuffix(rest, "/")
		}
		base := filepath.Join(l.ModRoot, filepath.FromSlash(pat))
		if st, err := os.Stat(base); err != nil || !st.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: no such directory %s", pat, base)
		}
		if !recursive {
			dirs[base] = true
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for dir := range dirs {
		names, err := buildableGoFiles(dir)
		if err != nil {
			return nil, err
		}
		if len(names) == 0 {
			continue // directory without buildable Go files
		}
		rel, err := filepath.Rel(l.ModRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}
