package lint_test

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"besst/internal/lint"
)

// writeModule materializes a throwaway module in a temp dir: files maps
// slash-separated relative paths to contents. A go.mod declaring module
// example.com/m is added automatically.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	files["go.mod"] = "module example.com/m\n\ngo 1.21\n"
	for rel, content := range files {
		full := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatalf("mkdir: %v", err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatalf("write %s: %v", rel, err)
		}
	}
	return root
}

func moduleLoader(t *testing.T, root string) *lint.Loader {
	t.Helper()
	l, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

// TestLoadTestOnlyPackage: a directory holding only _test.go files is
// not a lintable package — LoadPatterns walks past it, and loading it
// directly says why.
func TestLoadTestOnlyPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go":             "package a\n\nfunc A() int { return 1 }\n",
		"testonly/x_test.go": "package testonly\n\nimport \"testing\"\n\nfunc TestX(t *testing.T) {}\n",
	})
	l := moduleLoader(t, root)
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.ImportPath, "testonly") {
			t.Errorf("test-only directory loaded as package %s", p.ImportPath)
		}
	}
	if len(pkgs) != 1 || pkgs[0].ImportPath != "example.com/m/a" {
		t.Errorf("want exactly package a, got %v", pkgs)
	}
	if _, err := l.LoadDir(filepath.Join(root, "testonly"), "example.com/m/testonly"); err == nil {
		t.Error("LoadDir on a test-only directory should fail")
	} else if !strings.Contains(err.Error(), "no buildable non-test Go files") {
		t.Errorf("unhelpful error: %v", err)
	}
}

// TestLoadBuildTags: files excluded by //go:build constraints or
// foreign _GOOS suffixes must not be parsed into the package — each
// excluded file here would break type-checking (duplicate declaration)
// if it leaked in.
func TestLoadBuildTags(t *testing.T) {
	otherOS := "plan9"
	if runtime.GOOS == "plan9" {
		otherOS = "windows"
	}
	root := writeModule(t, map[string]string{
		"b/b.go":                      "package b\n\nfunc B() int { return 1 }\n",
		"b/b_ignored.go":              "//go:build never\n\npackage b\n\nfunc B() int { return 2 }\n",
		"b/suffix_" + otherOS + ".go": "package b\n\nfunc B() int { return 3 }\n",
		"b/b_current.go":              "//go:build " + runtime.GOOS + "\n\npackage b\n\nfunc C() int { return B() }\n",
	})
	l := moduleLoader(t, root)
	pkg, err := l.LoadDir(filepath.Join(root, "b"), "example.com/m/b")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if got := len(pkg.Files); got != 2 {
		t.Errorf("got %d files in package b, want 2 (b.go and b_current.go)", got)
	}
	if pkg.Types.Scope().Lookup("C") == nil {
		t.Error("matching //go:build file was excluded")
	}
}

// TestLoadCycleThroughTestPackage: an import cycle that exists only
// through _test.go files is no cycle at all for the loader, since test
// files are excluded by design.
func TestLoadCycleThroughTestPackage(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go":      "package a\n\nfunc A() int { return 1 }\n",
		"a/a_test.go": "package a\n\nimport \"example.com/m/b\"\n\nvar _ = b.B\n",
		"b/b.go":      "package b\n\nimport \"example.com/m/a\"\n\nfunc B() int { return a.A() }\n",
	})
	l := moduleLoader(t, root)
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if len(pkgs) != 2 {
		t.Errorf("got %d packages, want 2", len(pkgs))
	}
}

// TestLoadGenuineCycle: a real import cycle between non-test files must
// surface as an error, not a hang or a stack overflow.
func TestLoadGenuineCycle(t *testing.T) {
	root := writeModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"example.com/m/b\"\n\nfunc A() int { return b.B() }\n",
		"b/b.go": "package b\n\nimport \"example.com/m/a\"\n\nfunc B() int { return a.A() }\n",
	})
	l := moduleLoader(t, root)
	_, err := l.LoadPatterns([]string{"./..."})
	if err == nil {
		t.Fatal("LoadPatterns accepted an import cycle")
	}
	if !strings.Contains(err.Error(), "import cycle") {
		t.Errorf("error does not name the cycle: %v", err)
	}
}
