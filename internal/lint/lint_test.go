package lint_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"besst/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the expected.txt golden files")

// fixtures maps each testdata package to the import path it is loaded
// under. The synthetic paths matter: path-scoped checks decide from the
// import path whether a package is in scope, so the nodeterminism
// fixture poses as part of internal/des while the goroutine fixture
// stays outside internal/par and internal/des.
var fixtures = []struct {
	dir        string
	importPath string
}{
	{"nodeterminism", "besst/internal/des/ndfix"},
	{"seeddiscipline", "besst/internal/lint/testdata/seeddiscipline"},
	{"goroutinediscipline", "besst/internal/lint/testdata/goroutinediscipline"},
	{"errcheck", "besst/internal/lint/testdata/errcheck"},
	{"floateq", "besst/internal/lint/testdata/floateq"},
	{"hotalloc", "besst/internal/lint/testdata/hotalloc"},
	{"atomicmix", "besst/internal/lint/testdata/atomicmix"},
	{"goroutineleak", "besst/internal/par/leakfix"},
	{"lockguard", "besst/internal/lint/testdata/lockguard"},
	{"suppress", "besst/internal/lint/testdata/suppress"},
}

func newLoader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := lint.NewLoader("")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	return l
}

func loadFixture(t *testing.T, l *lint.Loader, dir, importPath string) *lint.Package {
	t.Helper()
	pkg, err := l.LoadDir(filepath.Join("testdata", dir), importPath)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	return pkg
}

func render(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGolden runs the full check registry over each fixture package and
// compares the rendered diagnostics against the committed expected.txt.
// Regenerate with go test ./internal/lint -run TestGolden -update.
func TestGolden(t *testing.T) {
	l := newLoader(t)
	for _, f := range fixtures {
		t.Run(f.dir, func(t *testing.T) {
			pkg := loadFixture(t, l, f.dir, f.importPath)
			got := render(lint.Run([]*lint.Package{pkg}, lint.AllChecks()))
			golden := filepath.Join("testdata", f.dir, "expected.txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatalf("write golden: %v", err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden: %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s\n--- got ---\n%s--- want ---\n%s", f.dir, got, want)
			}
		})
	}
}

// TestSuppression pins the suppression contract beyond the golden file:
// directives with a reason remove their finding, and the directive
// pseudo-check reports malformed, unknown, and unused directives.
func TestSuppression(t *testing.T) {
	l := newLoader(t)
	pkg := loadFixture(t, l, "suppress", "besst/internal/lint/testdata/suppress")
	out := render(lint.Run([]*lint.Package{pkg}, lint.AllChecks()))

	for _, suppressed := range []string{
		"bit-exactness is intended in this fixture",
		"zero is the sentinel here",
		"comparisons in this helper are bit-exact by design",
	} {
		if strings.Contains(out, suppressed) {
			t.Errorf("suppression reason leaked into diagnostics: %q", suppressed)
		}
	}
	for _, want := range []string{
		"[floateq]",                   // the unsuppressed comparison survives
		"needs a reason",              // malformed directive
		`unknown check "nosuchcheck"`, // unknown-check directive
		"suppresses no diagnostic",    // unused directive
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diagnostics missing %q:\n%s", want, out)
		}
	}
	// Exactly two floateq findings survive: unsuppressed and the body
	// under the malformed (hence inert) directive.
	if n := strings.Count(out, "[floateq]"); n != 2 {
		t.Errorf("got %d floateq findings, want 2:\n%s", n, out)
	}
}

// TestSubsetRun checks -checks semantics: a partial run still reports
// malformed directives but never flags unused ones (a directive for a
// disabled check is not unused, just unexercised).
func TestSubsetRun(t *testing.T) {
	l := newLoader(t)
	pkg := loadFixture(t, l, "suppress", "besst/internal/lint/testdata/suppress")
	checks, err := lint.SelectChecks("floateq")
	if err != nil {
		t.Fatalf("SelectChecks: %v", err)
	}
	out := render(lint.Run([]*lint.Package{pkg}, checks))
	if strings.Contains(out, "suppresses no diagnostic") {
		t.Errorf("partial run reported an unused directive:\n%s", out)
	}
	if !strings.Contains(out, "needs a reason") {
		t.Errorf("partial run dropped the malformed-directive finding:\n%s", out)
	}
}

func TestSelectChecksUnknown(t *testing.T) {
	if _, err := lint.SelectChecks("floateq,bogus"); err == nil {
		t.Fatal("SelectChecks accepted an unknown check name")
	}
	if _, err := lint.SelectChecks(" , "); err == nil {
		t.Fatal("SelectChecks accepted an empty selection")
	}
}

// TestDeterministic runs the whole fixture pipeline twice from scratch
// — fresh loaders, fresh type-checks — and requires byte-identical
// output, the same property the lint gate itself depends on.
func TestDeterministic(t *testing.T) {
	outs := make([]string, 2)
	for i := range outs {
		l := newLoader(t)
		var pkgs []*lint.Package
		for _, f := range fixtures {
			pkgs = append(pkgs, loadFixture(t, l, f.dir, f.importPath))
		}
		outs[i] = render(lint.Run(pkgs, lint.AllChecks()))
	}
	if outs[0] != outs[1] {
		t.Errorf("two runs diverged\n--- first ---\n%s--- second ---\n%s", outs[0], outs[1])
	}
}

// TestTreeIsClean is the gate besst-lint enforces in make check: the
// committed tree must produce zero diagnostics under the full registry.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module type-check is slow; skipped with -short")
	}
	l := newLoader(t)
	pkgs, err := l.LoadPatterns([]string{"./..."})
	if err != nil {
		t.Fatalf("LoadPatterns: %v", err)
	}
	if diags := lint.Run(pkgs, lint.AllChecks()); len(diags) != 0 {
		t.Errorf("committed tree has %d lint findings:\n%s", len(diags), render(diags))
	}
}
