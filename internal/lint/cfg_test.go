package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses src as the body of `func f() { ... }` and returns
// its CFG.
func parseBody(t *testing.T, body string) *funcCFG {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_test.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := f.Decls[0].(*ast.FuncDecl)
	return buildCFG(fd.Body)
}

func TestCFGExitReachability(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"empty", ``, true},
		{"plain return", `return`, true},
		{"infinite for", `for { work() }`, false},
		{"for with return", `for { if done() { return }; work() }`, true},
		{"for with break", `for { if done() { break }; work() }`, true},
		{"conditional for", `for i := 0; i < 10; i++ { work() }`, true},
		{"range loop", `for range ch { work() }`, true}, // close-driven exhaustion
		{"infinite select", `for { select { case <-a: work(); case <-b: work() } }`, false},
		{"select with return", `for { select { case <-a: work(); case <-done: return } }`, true},
		{"select with default", `for { select { case <-a: work(); default: } }`, false},
		{"panic terminates", `for { panic("boom") }`, true},
		{"goto forward", `goto out; out: return`, true},
		{"goto self-loop", `again: work(); goto again`, false},
		{"labeled break", `outer: for { for { break outer } }`, true},
		{"labeled continue only", `outer: for { for { continue outer } }`, false},
		{"nested infinite", `for { for { work() } }`, false},
		{"switch falls through head", `switch v() { case 1: work() }`, true},
		{"infinite with inner break", `for { switch v() { case 1: break }; }`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			if got := g.exitReachable(); got != tc.want {
				t.Errorf("exitReachable = %v, want %v\nbody:\n%s", got, tc.want, tc.body)
			}
		})
	}
}

func TestCFGFallthrough(t *testing.T) {
	// With the fallthrough edge present, case 2's predecessors are the
	// switch head (locked) AND case 1's end (unlocked), so the must-
	// analysis intersection kills the fact. Without fallthrough the
	// head is the only predecessor and the fact survives — the pair
	// detects the edge.
	g := parseBody(t, `lock()
switch v() {
case 1:
	unlock()
	fallthrough
case 2:
	access()
}`)
	if !g.exitReachable() {
		t.Fatalf("switch must reach exit")
	}
	if held, ok := factAt(g, "access"); !ok {
		t.Fatalf("no block contains access()")
	} else if held {
		t.Errorf("unlock on the fallthrough path should kill the fact in case 2")
	}

	g = parseBody(t, `lock()
switch v() {
case 1:
	unlock()
case 2:
	access()
}`)
	if held, ok := factAt(g, "access"); !ok {
		t.Fatalf("no block contains access()")
	} else if !held {
		t.Errorf("without fallthrough, case 2 sees only the locked head")
	}
}

// factAt runs the lock/unlock toy analysis and reports whether the
// fact "locked" must hold immediately before the call named name.
func factAt(g *funcCFG, name string) (held, found bool) {
	transfer := func(n ast.Node, facts factSet) {
		ast.Inspect(n, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				switch id.Name {
				case "lock":
					facts["locked"] = true
				case "unlock":
					delete(facts, "locked")
				}
			}
			return true
		})
	}
	in := g.forwardMust(transfer)
	for _, blk := range g.blocks {
		facts, ok := in[blk]
		if !ok {
			continue
		}
		cur := facts.clone()
		for _, n := range blk.nodes {
			hit := false
			ast.Inspect(n, func(x ast.Node) bool {
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						hit = true
					}
				}
				return true
			})
			if hit {
				return cur["locked"], true
			}
			transfer(n, cur)
		}
	}
	return false, false
}

func TestForwardMustIntersection(t *testing.T) {
	cases := []struct {
		name string
		body string
		want bool
	}{
		{"straight line", `lock(); access()`, true},
		{"one armed if", `if c() { lock() }; access()`, false},
		{"both arms lock", `if c() { lock() } else { lock() }; access()`, true},
		{"unlock kills", `lock(); unlock(); access()`, false},
		{"unlock on one path kills", `lock(); if c() { unlock() }; access()`, false},
		{"loop body keeps fact", `lock(); for i := 0; i < 3; i++ { access() }`, true},
		{"lock inside loop only", `for i := 0; i < 3; i++ { access(); lock() }`, false},
		{"relock after unlock", `lock(); unlock(); lock(); access()`, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := parseBody(t, tc.body)
			held, ok := factAt(g, "access")
			if !ok {
				t.Fatalf("no block contains access()")
			}
			if held != tc.want {
				t.Errorf("must-held(access) = %v, want %v\nbody:\n%s", held, tc.want, tc.body)
			}
		})
	}
}

func TestCFGDeadCodeUnreachable(t *testing.T) {
	g := parseBody(t, `return; work()`)
	reach := g.reachable()
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				continue
			}
			if call, ok := es.X.(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "work" && reach[blk] {
					t.Errorf("work() after return should be unreachable")
				}
			}
		}
	}
}
