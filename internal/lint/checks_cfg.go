package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// The CFG-backed checks: hotalloc, atomicmix, goroutineleak, and
// lockguard. Unlike the per-node walkers in checks.go these reason
// about paths — what must have happened before a statement executes —
// using the intraprocedural graphs built in cfg.go.

// ---------------------------------------------------------------------------
// Shared helpers

// HotpathDirective marks a function as hot-path scope for hotalloc.
const HotpathDirective = "//lint:hotpath"

// funcKey names a declaration the way the hot-scope table does:
// "Recv.Name" for methods (pointer receivers unwrapped), "Name" for
// plain functions.
func funcKey(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	t := fd.Recv.List[0].Type
	if se, ok := t.(*ast.StarExpr); ok {
		t = se.X
	}
	if id, ok := ast.Unparen(t).(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// hasHotpathDirective reports whether the declaration's doc comment
// carries //lint:hotpath.
func hasHotpathDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == HotpathDirective {
			return true
		}
	}
	return false
}

// rootObject resolves the base identifier of a selector/index chain
// (b.recs[i] -> b, e.parts[i].inbox -> e) to its object, or nil when
// the chain is rooted in something other than a plain identifier.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch t := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[t]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[t]
		case *ast.SelectorExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.StarExpr:
			e = t.X
		default:
			return nil
		}
	}
}

// fieldObject resolves sel to the struct field it selects, or nil.
func fieldObject(pkg *Package, sel *ast.SelectorExpr) *types.Var {
	if v, ok := pkg.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// ---------------------------------------------------------------------------
// hotalloc

// desHotFuncs is the built-in hot-path scope: the per-event functions
// of internal/des — queue operations, sequential dispatch, and the
// parallel engine's window machinery — whose zero-allocation discipline
// the AllocsPerRun tests measure dynamically and this check enforces
// statically, on every path. Functions elsewhere opt in with a
// //lint:hotpath doc directive.
var desHotFuncs = map[string]bool{
	"eventBefore":      true,
	"eventQueue.len":   true,
	"eventQueue.reset": true,
	"eventQueue.peek":  true,
	"eventQueue.push":  true,
	"eventQueue.pop":   true,

	"Engine.Run":        true,
	"Engine.Step":       true,
	"Engine.dispatch":   true,
	"Engine.schedule":   true,
	"Engine.ScheduleAt": true,

	"Context.Now":          true,
	"Context.Self":         true,
	"Context.ScheduleSelf": true,
	"Context.Send":         true,
	"Context.LinkLatency":  true,

	"ParallelEngine.Run":         true,
	"ParallelEngine.ScheduleAt":  true,
	"ParallelEngine.safeBound":   true,
	"ParallelEngine.exchange":    true,
	"ParallelEngine.flushCounts": true,
	"ParallelEngine.computeDist": true,

	"partition.schedule":   true,
	"partition.link":       true,
	"partition.runWindow":  true,
	"partition.mergeInbox": true,
	"partition.work":       true,
	"partition.Len":        true,
	"partition.Less":       true,
	"partition.Swap":       true,
}

// desHotScope is where the built-in table applies.
var desHotScope = []string{"internal/des"}

type hotallocCheck struct{}

func (*hotallocCheck) Name() string { return "hotalloc" }
func (*hotallocCheck) Doc() string {
	return "hot-path functions (internal/des queue/dispatch/parallel plus //lint:hotpath) must not contain heap-allocating constructs"
}

func (c *hotallocCheck) Run(pkg *Package, report ReportFunc) {
	inDes := pathScopedTo(pkg, desHotScope)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !(inDes && desHotFuncs[funcKey(fd)]) && !hasHotpathDirective(fd) {
				continue
			}
			w := &hotWalker{pkg: pkg, report: report, fd: fd}
			w.run()
		}
	}
}

type hotWalker struct {
	pkg    *Package
	report ReportFunc
	fd     *ast.FuncDecl
	// capOK holds locals with capacity evidence: defined from a
	// make(..., cap) with explicit capacity or from a reslice of an
	// existing buffer, so appending to them amortizes.
	capOK map[types.Object]bool
	// litExempt marks function literals that do not escape by
	// construction: immediately called, deferred (open-coded since
	// go1.14), or the body of a go statement (goroutinediscipline
	// already polices those).
	litExempt map[*ast.FuncLit]bool
	// stack is the ancestor chain of the node being visited, used to
	// find the signature a return statement belongs to.
	stack []ast.Node
}

func (w *hotWalker) run() {
	w.capOK = map[types.Object]bool{}
	w.litExempt = map[*ast.FuncLit]bool{}
	ast.Inspect(w.fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := w.pkg.Info.Defs[id]
			if obj == nil {
				obj = w.pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			switch rhs := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CallExpr:
				if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok {
					if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok &&
						b.Name() == "make" && len(rhs.Args) == 3 {
						w.capOK[obj] = true
					}
				}
			case *ast.SliceExpr:
				w.capOK[obj] = true
			}
		}
		return true
	})
	ast.Inspect(w.fd.Body, w.visit)
}

func (w *hotWalker) visit(n ast.Node) bool {
	if n == nil {
		w.stack = w.stack[:len(w.stack)-1]
		return true
	}
	w.stack = append(w.stack, n)
	prune := false
	switch n := n.(type) {
	case *ast.DeferStmt:
		if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			w.litExempt[fl] = true
		}
	case *ast.GoStmt:
		if fl, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
			w.litExempt[fl] = true
		}
	case *ast.CallExpr:
		prune = w.call(n)
	case *ast.FuncLit:
		if !w.litExempt[n] {
			if name, ok := w.captures(n); ok {
				w.report(n.Pos(), "closure captures %s and escapes the hot path; captured closures allocate — hoist it or pass state explicitly", name)
			}
		}
	case *ast.CompositeLit:
		t := w.pkg.Info.TypeOf(n)
		if t != nil {
			switch t.Underlying().(type) {
			case *types.Map:
				w.report(n.Pos(), "map literal allocates; hoist it out of the hot path")
			case *types.Slice:
				w.report(n.Pos(), "slice literal allocates its backing array; reuse a preallocated buffer")
			}
		}
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				w.report(n.Pos(), "&composite-literal allocates on escape; reuse a pooled or field-backed value")
			}
		}
	case *ast.BinaryExpr:
		w.binary(n)
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i, lhs := range n.Lhs {
				w.boxed(w.pkg.Info.TypeOf(lhs), n.Rhs[i], "assignment")
			}
		}
	case *ast.SendStmt:
		if ch, ok := w.pkg.Info.TypeOf(n.Chan).Underlying().(*types.Chan); ok {
			w.boxed(ch.Elem(), n.Value, "channel send")
		}
	case *ast.ReturnStmt:
		w.returns(n)
	}
	if prune {
		w.stack = w.stack[:len(w.stack)-1]
		return false
	}
	return true
}

// call classifies one call expression; it returns true when the walk
// should not descend into the call (panic arguments — the cold
// termination path — are exempt wholesale, fmt.Sprintf inside them
// included).
func (w *hotWalker) call(n *ast.CallExpr) bool {
	if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
		if b, ok := w.pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "panic":
				return true
			case "new":
				w.report(n.Pos(), "new(T) allocates; reuse a field-backed or pooled value")
			case "make":
				w.report(n.Pos(), "make allocates; hoist construction out of the hot path or reuse a preallocated buffer")
			case "append":
				w.appendCall(n)
			}
			return false
		}
	}
	if name, ok := selectorOf(w.pkg, n.Fun, "fmt"); ok {
		w.report(n.Pos(), "fmt.%s formats through interfaces and allocates; encode into typed payload fields or move formatting off the hot path", name)
		return false
	}
	if tv, ok := w.pkg.Info.Types[n.Fun]; ok && tv.IsType() {
		if len(n.Args) == 1 {
			w.boxed(tv.Type, n.Args[0], "conversion")
		}
		return false
	}
	sig, ok := w.pkg.Info.TypeOf(n.Fun).(*types.Signature)
	if !ok {
		return false
	}
	np := sig.Params().Len()
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if n.Ellipsis.IsValid() {
				continue // slice passed whole: no per-element boxing
			}
			if sl, ok := sig.Params().At(np - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < np:
			pt = sig.Params().At(i).Type()
		}
		w.boxed(pt, arg, "argument")
	}
	return false
}

func (w *hotWalker) binary(n *ast.BinaryExpr) {
	tx, ty := w.pkg.Info.TypeOf(n.X), w.pkg.Info.TypeOf(n.Y)
	if n.Op == token.ADD && tx != nil && isString(tx) {
		w.report(n.OpPos, "string concatenation allocates; preformat off the hot path or reuse a byte buffer")
		return
	}
	if n.Op == token.EQL || n.Op == token.NEQ {
		// Comparing a concrete value against an interface boxes it.
		if tx != nil && ty != nil {
			if isInterface(tx) {
				w.boxed(tx, n.Y, "interface comparison")
			} else if isInterface(ty) {
				w.boxed(ty, n.X, "interface comparison")
			}
		}
	}
}

func (w *hotWalker) returns(n *ast.ReturnStmt) {
	sig := w.enclosingSignature()
	if sig == nil || sig.Results().Len() != len(n.Results) {
		return
	}
	for i, r := range n.Results {
		w.boxed(sig.Results().At(i).Type(), r, "return")
	}
}

// enclosingSignature finds the signature the innermost enclosing
// function literal — or the hot declaration itself — returns to.
func (w *hotWalker) enclosingSignature() *types.Signature {
	for i := len(w.stack) - 2; i >= 0; i-- {
		if fl, ok := w.stack[i].(*ast.FuncLit); ok {
			sig, _ := w.pkg.Info.TypeOf(fl).(*types.Signature)
			return sig
		}
	}
	if fn, ok := w.pkg.Info.Defs[w.fd.Name].(*types.Func); ok {
		sig, _ := fn.Type().(*types.Signature)
		return sig
	}
	return nil
}

// boxed reports src when assigning it to dst implies boxing a concrete
// non-pointer-shaped value into an interface — the per-event allocation
// the typed Payload fields exist to avoid. Pointer-shaped values
// (pointers, channels, maps, funcs) fit the interface word, constants
// box to static data, and zero-size structs share the zero base, so
// none of those are flagged.
func (w *hotWalker) boxed(dst types.Type, src ast.Expr, context string) {
	if dst == nil || !isInterface(dst) {
		return
	}
	tv, ok := w.pkg.Info.Types[src]
	if !ok || tv.Value != nil {
		return
	}
	st := tv.Type
	if st == nil || isInterface(st) {
		return
	}
	if b, ok := st.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	switch u := st.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return
	case *types.Struct:
		if u.NumFields() == 0 {
			return
		}
	}
	w.report(src.Pos(), "%s boxes %s into an interface and allocates; keep hot-path values concrete or pointer-shaped", context, types.TypeString(st, func(p *types.Package) string { return p.Name() }))
}

func (w *hotWalker) appendCall(n *ast.CallExpr) {
	if len(n.Args) == 0 {
		return
	}
	switch base := ast.Unparen(n.Args[0]).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Field- or element-backed buffer: the reuse discipline
		// (capacity survives Reset) is the capacity evidence.
		return
	case *ast.Ident:
		obj := w.pkg.Info.Uses[base]
		if obj == nil {
			obj = w.pkg.Info.Defs[base]
		}
		if obj != nil && w.capOK[obj] {
			return
		}
	}
	w.report(n.Pos(), "append to %s has no capacity evidence (not a reused field buffer, a make with explicit capacity, or a reslice); the backing array may grow on every call", types.ExprString(n.Args[0]))
}

// captures reports whether the literal references a variable declared
// in the enclosing function (captured closures escape and allocate),
// returning the first such name.
func (w *hotWalker) captures(lit *ast.FuncLit) (string, bool) {
	name, found := "", false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := w.pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == w.pkg.Types.Scope() {
			return true // package-level: referenced, not captured
		}
		if v.Pos() >= w.fd.Pos() && v.Pos() < lit.Pos() {
			name, found = id.Name, true
			return false
		}
		return true
	})
	return name, found
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// ---------------------------------------------------------------------------
// atomicmix

type atomicmixCheck struct{}

func (*atomicmixCheck) Name() string { return "atomicmix" }
func (*atomicmixCheck) Doc() string {
	return "fields accessed via sync/atomic must never be accessed plainly outside init/Reset paths, and atomic stores must have a matching atomic load"
}

// atomicFieldUse accumulates how one struct field is touched across the
// package.
type atomicFieldUse struct {
	obj          *types.Var
	atomicReads  int
	atomicWrites int
	firstWrite   token.Pos
	plain        []plainAccess
}

type plainAccess struct {
	pos    token.Pos
	inFunc string // enclosing function name, for the init/Reset exemption
}

// atomicInitExempt reports whether plain access inside the named
// function is sanctioned: construction and rewind paths run before (or
// after) the goroutines whose visibility the atomics order.
func atomicInitExempt(fn string) bool {
	return fn == "init" || fn == "Reset" || fn == "reset" ||
		strings.HasPrefix(fn, "New") || strings.HasPrefix(fn, "new")
}

func (c *atomicmixCheck) Run(pkg *Package, report ReportFunc) {
	uses := map[*types.Var]*atomicFieldUse{}
	use := func(v *types.Var) *atomicFieldUse {
		u, ok := uses[v]
		if !ok {
			u = &atomicFieldUse{obj: v}
			uses[v] = u
		}
		return u
	}

	for _, f := range pkg.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldObject(pkg, sel)
			if v == nil {
				return true
			}
			switch kind, method, resultUsed := atomicAccessKind(pkg, stack); kind {
			case atomicTyped, atomicFunc:
				u := use(v)
				r, wr := classifyAtomicOp(method, resultUsed)
				u.atomicReads += r
				u.atomicWrites += wr
				if wr > 0 && u.firstWrite == token.NoPos {
					u.firstWrite = sel.Pos()
				}
			case plainAtomicType:
				// A typed atomic (atomic.Int32 field) touched other than
				// through a method call: copying or aliasing it. go vet
				// owns copy detection; ignore here.
			default:
				u := use(v)
				u.plain = append(u.plain, plainAccess{pos: sel.Pos(), inFunc: enclosingFuncName(stack)})
			}
			return true
		})
	}

	for _, f := range pkg.Files {
		// Re-walk declarations in file order so reporting is positional
		// and deterministic regardless of map iteration.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := fieldObject(pkg, sel)
			if v == nil {
				return true
			}
			u := uses[v]
			if u == nil || u.atomicReads+u.atomicWrites == 0 {
				return true
			}
			for _, p := range u.plain {
				if p.pos != sel.Pos() || atomicInitExempt(p.inFunc) {
					continue
				}
				report(p.pos, "field %s is accessed via sync/atomic elsewhere in this package but plainly here, outside an init/Reset path; mixed access races — go through sync/atomic", v.Name())
			}
			if u.atomicWrites > 0 && u.atomicReads == 0 && sel.Pos() == u.firstWrite {
				report(u.firstWrite, "atomic field %s is written but never read atomically in this package; the protocol it synchronizes has lost its load side", v.Name())
			}
			return true
		})
	}
}

type atomicKind int

const (
	plainAccessKind atomicKind = iota
	atomicTyped                // field of type sync/atomic.IntN etc., method call
	atomicFunc                 // &field passed to a sync/atomic function
	plainAtomicType            // typed atomic used without a method call
)

// atomicAccessKind classifies the selector on top of stack: is it the
// receiver of a sync/atomic typed-method call, the &-argument of a
// sync/atomic package function, or a plain access?
func atomicAccessKind(pkg *Package, stack []ast.Node) (kind atomicKind, method string, resultUsed bool) {
	sel := stack[len(stack)-1].(*ast.SelectorExpr)
	if isAtomicType(pkg.Info.TypeOf(sel)) {
		// Expect parent SelectorExpr (the method) then CallExpr.
		if len(stack) >= 3 {
			if msel, ok := stack[len(stack)-2].(*ast.SelectorExpr); ok && msel.X == sel {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && ast.Unparen(call.Fun) == msel {
					used := true
					if len(stack) >= 4 {
						_, isStmt := stack[len(stack)-4].(*ast.ExprStmt)
						used = !isStmt
					}
					return atomicTyped, msel.Sel.Name, used
				}
			}
		}
		return plainAtomicType, "", false
	}
	// &field as first argument of atomic.XxxInt64(&x.f, ...).
	if len(stack) >= 3 {
		if un, ok := stack[len(stack)-2].(*ast.UnaryExpr); ok && un.Op == token.AND && ast.Unparen(un.X) == sel {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok {
				if name, ok := selectorOf(pkg, call.Fun, "sync/atomic"); ok {
					used := true
					if len(stack) >= 4 {
						_, isStmt := stack[len(stack)-4].(*ast.ExprStmt)
						used = !isStmt
					}
					return atomicFunc, name, used
				}
			}
		}
	}
	return plainAccessKind, "", false
}

// classifyAtomicOp maps an atomic method/function name to (reads,
// writes). Add-style ops count as reads only when their result is
// consumed: a discarded Add is a blind write, and a protocol whose only
// load was the discarded Add result has decayed.
func classifyAtomicOp(name string, resultUsed bool) (reads, writes int) {
	switch {
	case strings.HasPrefix(name, "Load"):
		return 1, 0
	case strings.HasPrefix(name, "Store"):
		return 0, 1
	case strings.HasPrefix(name, "Swap") || strings.HasPrefix(name, "CompareAndSwap"):
		return 1, 1
	case strings.HasPrefix(name, "Add") || strings.HasPrefix(name, "Or") || strings.HasPrefix(name, "And"):
		if resultUsed {
			return 1, 1
		}
		return 0, 1
	}
	return 1, 1 // unknown op: assume both so nothing is misreported
}

// isAtomicType reports whether t is one of sync/atomic's typed values.
func isAtomicType(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

func enclosingFuncName(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd.Name.Name
		}
	}
	return ""
}

// ---------------------------------------------------------------------------
// goroutineleak

type goroutineleakCheck struct{}

func (*goroutineleakCheck) Name() string { return "goroutineleak" }
func (*goroutineleakCheck) Doc() string {
	return "every go statement in the concurrency scope needs a reachable shutdown edge (return, sentinel, or close-driven loop exit) in its body"
}

func (c *goroutineleakCheck) Run(pkg *Package, report ReportFunc) {
	if !pathScopedTo(pkg, concurrencyScope) {
		return
	}
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = fd
				}
			}
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			var what string
			if fl, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
				body, what = fl.Body, "goroutine closure"
			} else if fn := calleeTypesFunc(pkg, gs.Call); fn != nil {
				if fd, ok := decls[fn]; ok {
					body, what = fd.Body, funcDisplayName(fn)
				}
			}
			if body == nil {
				return true // cross-package or dynamic target: out of view
			}
			if !buildCFG(body).exitReachable() {
				report(gs.Pos(), "%s has no reachable shutdown edge: every path loops forever; add a sentinel receive, closed-channel exit, or Close-driven return", what)
			}
			return true
		})
	}
}

// ---------------------------------------------------------------------------
// lockguard

// guardedByRe extracts the mutex name from a `guarded by mu` field
// comment (an optional trailing period is tolerated).
var guardedByRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)

type lockguardCheck struct{}

func (*lockguardCheck) Name() string { return "lockguard" }
func (*lockguardCheck) Doc() string {
	return "fields documented `// guarded by <mu>` may only be accessed on paths where <mu> is held (must-held dataflow over the CFG)"
}

func (c *lockguardCheck) Run(pkg *Package, report ReportFunc) {
	guarded := collectGuarded(pkg, report)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyzeLocks(pkg, fd.Body, guarded, report)
			// Function literals run at another time under another lock
			// set: analyze each with an empty entry state.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					analyzeLocks(pkg, fl.Body, guarded, report)
				}
				return true
			})
		}
	}
}

// collectGuarded parses `guarded by <mu>` field documentation into a
// field-object -> mutex-field-object map, reporting annotations whose
// named mutex is not a sync.Mutex/RWMutex sibling.
func collectGuarded(pkg *Package, report ReportFunc) map[*types.Var]*types.Var {
	guarded := map[*types.Var]*types.Var{}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			mutexes := map[string]*types.Var{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok && isMutex(v.Type()) {
						mutexes[name.Name] = v
					}
				}
			}
			for _, fld := range st.Fields.List {
				doc := ""
				if fld.Doc != nil {
					doc += fld.Doc.Text()
				}
				if fld.Comment != nil {
					doc += " " + fld.Comment.Text()
				}
				m := guardedByRe.FindStringSubmatch(doc)
				if m == nil {
					continue
				}
				mu, ok := mutexes[m[1]]
				if !ok {
					report(fld.Pos(), "guarded-by annotation names %q, which is not a sync.Mutex/RWMutex sibling field", m[1])
					continue
				}
				for _, name := range fld.Names {
					if v, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guarded[v] = mu
					}
				}
			}
			return true
		})
	}
	return guarded
}

func isMutex(t types.Type) bool {
	return isNamed(t, "sync", "Mutex") || isNamed(t, "sync", "RWMutex")
}

// lockFact builds the dataflow fact "mutex field mu of the value rooted
// at root is held" from stable token positions.
func lockFact(root types.Object, mu *types.Var) string {
	return itoaSmall(int(root.Pos())) + ":" + itoaSmall(int(mu.Pos()))
}

// analyzeLocks runs the must-held analysis over one function body and
// reports guarded-field accesses on paths where the documented mutex is
// not provably held.
func analyzeLocks(pkg *Package, body *ast.BlockStmt, guarded map[*types.Var]*types.Var, report ReportFunc) {
	g := buildCFG(body)
	fresh := freshLocals(pkg, body)
	transfer := func(n ast.Node, facts factSet) {
		applyLockOps(pkg, n, facts)
	}
	in := g.forwardMust(transfer)
	seen := map[string]bool{}
	for _, blk := range g.blocks {
		facts, ok := in[blk]
		if !ok {
			continue // unreachable: dead code
		}
		cur := facts.clone()
		for _, n := range blk.nodes {
			checkGuardedAccesses(pkg, n, cur, guarded, fresh, seen, report)
			applyLockOps(pkg, n, cur)
		}
	}
}

// applyLockOps folds the lock effects of one CFG node into facts:
// Lock/RLock acquires, Unlock/RUnlock releases, and deferred unlocks
// are ignored (they run at function exit, after every access).
// Function literals inside the node are opaque (they run later).
func applyLockOps(pkg *Package, n ast.Node, facts factSet) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.CallExpr:
			msel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var acquire bool
			switch msel.Sel.Name {
			case "Lock", "RLock":
				acquire = true
			case "Unlock", "RUnlock":
				acquire = false
			default:
				return true
			}
			musel, ok := ast.Unparen(msel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			mu := fieldObject(pkg, musel)
			if mu == nil || !isMutex(mu.Type()) {
				return true
			}
			root := rootObject(pkg, musel.X)
			if root == nil {
				return true
			}
			if acquire {
				facts[lockFact(root, mu)] = true
			} else {
				delete(facts, lockFact(root, mu))
			}
		}
		return true
	})
}

// checkGuardedAccesses reports guarded-field selections in n whose
// documented mutex is not in facts. Freshly constructed locals are
// exempt (the value is not shared yet), as are accesses inside nested
// literals and defers (analyzed separately / running at exit).
func checkGuardedAccesses(pkg *Package, n ast.Node, facts factSet, guarded map[*types.Var]*types.Var, fresh map[types.Object]bool, seen map[string]bool, report ReportFunc) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt:
			return false
		case *ast.SelectorExpr:
			v := fieldObject(pkg, x)
			if v == nil {
				return true
			}
			mu, ok := guarded[v]
			if !ok {
				return true
			}
			root := rootObject(pkg, x.X)
			if root == nil || fresh[root] {
				return true
			}
			if facts[lockFact(root, mu)] {
				return true
			}
			pos := pkg.Fset.Position(x.Pos())
			key := pos.Filename + ":" + v.Name() + ":" + itoaSmall(pos.Line)
			if seen[key] {
				return true
			}
			seen[key] = true
			report(x.Pos(), "field %s is documented guarded by %s but accessed on a path where it is not held; lock %s first or fix the annotation", v.Name(), mu.Name(), mu.Name())
		}
		return true
	})
}

// freshLocals collects locals bound to values constructed in this
// function (composite literals, new) — not yet shared, so their guarded
// fields may be touched lock-free.
func freshLocals(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	fresh := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			obj := pkg.Info.Defs[id]
			if obj == nil {
				continue // only := bindings are certainly local
			}
			if isConstruction(pkg, as.Rhs[i]) {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

func isConstruction(pkg *Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op != token.AND {
			return false
		}
		_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
		return ok
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
				return b.Name() == "new"
			}
		}
	}
	return false
}

// itoaSmall formats a non-negative int without fmt (this file is loaded
// by besst-lint itself; keep its footprint minimal).
func itoaSmall(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
