package machine

import (
	"strings"
	"testing"

	"besst/internal/topo"
)

func TestQuartzDescription(t *testing.T) {
	q := Quartz()
	if q.Nodes != 2988 {
		t.Fatalf("nodes = %d", q.Nodes)
	}
	if q.CoresPerNode != 36 {
		t.Fatalf("cores per node = %d", q.CoresPerNode)
	}
	if q.MemPerNode != 128<<30 {
		t.Fatalf("mem per node = %d", q.MemPerNode)
	}
	if q.TotalCores() != 2988*36 {
		t.Fatalf("total cores = %d", q.TotalCores())
	}
	if _, ok := q.Topology.(*topo.FatTree); !ok {
		t.Fatalf("quartz topology %T, want fat tree", q.Topology)
	}
	if topo.MaxHops(q.Topology) != 4 {
		t.Fatalf("two-stage fat tree diameter = %d, want 4", topo.MaxHops(q.Topology))
	}
}

func TestVulcanDescription(t *testing.T) {
	v := Vulcan()
	if v.Nodes != 24576 {
		t.Fatalf("nodes = %d", v.Nodes)
	}
	if v.Topology.Nodes() != 24576 {
		t.Fatalf("topology nodes = %d", v.Topology.Nodes())
	}
	if _, ok := v.Topology.(*topo.Torus); !ok {
		t.Fatalf("vulcan topology %T, want torus", v.Topology)
	}
}

func TestNetworkModelConstruction(t *testing.T) {
	q := Quartz()
	nm := q.Network()
	if nm.PointToPoint(0, 1, 1<<20) <= 0 {
		t.Fatal("network model unusable")
	}
}

func TestNodeOfRank(t *testing.T) {
	q := Quartz()
	if q.NodeOfRank(0, 2) != 0 || q.NodeOfRank(1, 2) != 0 || q.NodeOfRank(2, 2) != 1 {
		t.Fatal("block placement wrong")
	}
}

func TestNodeOfRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Quartz().NodeOfRank(3, 0)
}

func TestNotionalGrowsFatTree(t *testing.T) {
	q := Quartz()
	n := Notional(q, 10000, 256<<30)
	if n.Nodes != 10000 {
		t.Fatalf("nodes = %d", n.Nodes)
	}
	if n.MemPerNode != 256<<30 {
		t.Fatalf("mem = %d", n.MemPerNode)
	}
	if n.Topology.Nodes() < 10000 {
		t.Fatalf("topology too small: %d", n.Topology.Nodes())
	}
	if !strings.Contains(n.Name, "notional") {
		t.Fatalf("name %q", n.Name)
	}
	// Base machine untouched.
	if q.Nodes != 2988 {
		t.Fatal("Notional mutated its base")
	}
}

func TestNotionalGrowsTorus(t *testing.T) {
	v := Vulcan()
	n := Notional(v, 60000, 0)
	if n.Topology.Nodes() < 60000 {
		t.Fatalf("torus too small: %d", n.Topology.Nodes())
	}
	if n.MemPerNode != v.MemPerNode {
		t.Fatal("memPerNode<=0 should keep base memory")
	}
}

func TestNotionalKeepsNetworkParams(t *testing.T) {
	q := Quartz()
	n := Notional(q, 5000, 0)
	if n.Net != q.Net {
		t.Fatal("network params should carry over")
	}
}

func TestValidateCatchesBadMachine(t *testing.T) {
	m := Quartz()
	m.CoreGFLOPS = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Validate()
}

func TestNotionalPanicsOnBadCount(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Notional(Quartz(), -1, 0)
}
