// Package machine holds the system descriptions FT-BESST simulates:
// LLNL Quartz (the paper's case-study target), a Vulcan-like BlueGene/Q
// (the Fig 1 validation target), and a builder for notional machines —
// hypothetical systems extrapolated from a validated base, the DSE
// capability highlighted in the paper.
package machine

import (
	"fmt"

	"besst/internal/network"
	"besst/internal/storage"
	"besst/internal/topo"
)

// Machine is a complete coarse-grained system description: the
// architecture side of an ArchBEO. Performance models are attached
// separately (package beo); Machine carries only physical parameters.
type Machine struct {
	Name         string
	Nodes        int
	CoresPerNode int
	MemPerNode   int64 // bytes

	Topology topo.Topology
	Net      network.Params
	Disk     storage.LocalDisk
	PFS      storage.PFS

	// CoreGFLOPS is the per-core sustained compute rate used by
	// ground-truth cost functions, in GFLOP/s.
	CoreGFLOPS float64

	// NodeMTBFHours is the mean time between failures of a single
	// node in hours, for fault-injection studies (Cases 2 and 4 of
	// the paper's Fig 4).
	NodeMTBFHours float64

	// RecoverySeconds is the time to replace/reboot a failed node and
	// relaunch the job, before any checkpoint restore I/O.
	RecoverySeconds float64
}

// Validate panics if the description is not usable.
func (m *Machine) Validate() {
	if m.Nodes <= 0 || m.CoresPerNode <= 0 || m.MemPerNode <= 0 {
		panic(fmt.Sprintf("machine %q: non-positive size parameter", m.Name))
	}
	if m.Topology == nil {
		panic(fmt.Sprintf("machine %q: nil topology", m.Name))
	}
	if m.Topology.Nodes() < m.Nodes {
		panic(fmt.Sprintf("machine %q: topology smaller than node count", m.Name))
	}
	if m.CoreGFLOPS <= 0 {
		panic(fmt.Sprintf("machine %q: non-positive compute rate", m.Name))
	}
	m.Net.Validate()
	m.Disk.Validate()
	m.PFS.Validate()
}

// TotalCores returns Nodes * CoresPerNode.
func (m *Machine) TotalCores() int { return m.Nodes * m.CoresPerNode }

// Network returns the machine's network cost model.
func (m *Machine) Network() *network.Model {
	return network.New(m.Topology, m.Net)
}

// NodeOfRank maps an MPI rank to its node under block placement with
// ranksPerNode ranks packed per node.
func (m *Machine) NodeOfRank(rank, ranksPerNode int) int {
	if ranksPerNode <= 0 {
		panic("machine: non-positive ranks per node")
	}
	return rank / ranksPerNode
}

// Quartz returns the description of LLNL's Quartz used in the case
// study: 2,988 nodes, 2x Intel Xeon E5-2695v4 (36 cores total), 128 GB
// per node, two-stage bidirectional fat tree with Omni-Path (100 Gb/s).
func Quartz() *Machine {
	const nodesPerEdge = 32
	edges := (2988 + nodesPerEdge - 1) / nodesPerEdge // 94 edge switches
	m := &Machine{
		Name:         "Quartz",
		Nodes:        2988,
		CoresPerNode: 36,
		MemPerNode:   128 << 30,
		Topology:     topo.NewFatTree(nodesPerEdge, edges, 16),
		Net: network.Params{
			InjectionOverhead: 1.2e-6,
			HopLatency:        110e-9,
			LinkBandwidth:     12.5e9, // 100 Gb/s Omni-Path
			EagerLimit:        8192,
		},
		Disk: storage.LocalDisk{
			Latency:   0.8e-3,
			Bandwidth: 0.9e9, // node-local scratch SSD-class
			// Small checkpoint bursts absorb into the device write
			// cache; large files stream at raw bandwidth.
			CacheBytes:   3 << 20,
			CacheSpeedup: 6,
		},
		PFS: storage.PFS{
			Latency:            6e-3,
			AggregateBandwidth: 80e9, // Lustre-class aggregate
			PerClientBandwidth: 2.5e9,
		},
		CoreGFLOPS:      16, // E5-2695v4 sustained per-core
		NodeMTBFHours:   20000,
		RecoverySeconds: 120,
	}
	m.Validate()
	return m
}

// Vulcan returns a BlueGene/Q-like description of LLNL's Vulcan (24,576
// nodes, 16 cores each, 5-D torus), used for the Fig 1 reproduction.
func Vulcan() *Machine {
	m := &Machine{
		Name:         "Vulcan",
		Nodes:        24576,
		CoresPerNode: 16,
		MemPerNode:   16 << 30,
		Topology:     topo.NewTorus(8, 8, 8, 8, 6), // 24576 nodes
		Net: network.Params{
			InjectionOverhead: 2.0e-6,
			HopLatency:        40e-9,
			LinkBandwidth:     2e9, // 2 GB/s per BG/Q torus link
			EagerLimit:        512,
		},
		Disk: storage.LocalDisk{
			Latency:      1.5e-3,
			Bandwidth:    0.4e9,
			CacheBytes:   2 << 20,
			CacheSpeedup: 4,
		},
		PFS: storage.PFS{
			Latency:            8e-3,
			AggregateBandwidth: 40e9,
			PerClientBandwidth: 1.2e9,
		},
		CoreGFLOPS:      12.8,
		NodeMTBFHours:   50000, // BG/Q was famously reliable
		RecoverySeconds: 300,
	}
	m.Validate()
	return m
}

// Notional derives a hypothetical machine from base by scaling its node
// count and per-node memory — the "notional system" DSE move the paper
// demonstrates (simulating beyond the physical machine size, or with
// more memory per node for larger problem sizes). The topology is
// rebuilt to fit.
func Notional(base *Machine, nodes int, memPerNode int64) *Machine {
	if nodes <= 0 {
		panic("machine: non-positive notional node count")
	}
	m := *base // shallow copy; immutable sub-configs are safe to share
	m.Name = fmt.Sprintf("%s-notional(%d nodes)", base.Name, nodes)
	m.Nodes = nodes
	if memPerNode > 0 {
		m.MemPerNode = memPerNode
	}
	switch bt := base.Topology.(type) {
	case *topo.FatTree:
		nodesPerEdge := 32
		edges := (nodes + nodesPerEdge - 1) / nodesPerEdge
		spines := bt.SpineSwitches()
		if spines < edges/8 {
			spines = edges / 8
		}
		if spines < 1 {
			spines = 1
		}
		m.Topology = topo.NewFatTree(nodesPerEdge, edges, spines)
	case *topo.Torus:
		m.Topology = growTorus(bt, nodes)
	default:
		panic(fmt.Sprintf("machine: cannot grow topology %T", base.Topology))
	}
	m.Validate()
	return &m
}

// growTorus returns a torus with at least wantNodes nodes, grown by
// repeatedly doubling the smallest dimension of the base shape.
func growTorus(base *topo.Torus, wantNodes int) *topo.Torus {
	dims := base.Dims()
	for {
		n := 1
		for _, d := range dims {
			n *= d
		}
		if n >= wantNodes {
			return topo.NewTorus(dims...)
		}
		smallest := 0
		for i, d := range dims {
			if d < dims[smallest] {
				smallest = i
			}
		}
		dims[smallest] *= 2
	}
}
