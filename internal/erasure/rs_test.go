package erasure

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"besst/internal/stats"
)

func TestGFMulBasics(t *testing.T) {
	if gfMul(0, 7) != 0 || gfMul(7, 0) != 0 {
		t.Fatal("zero annihilates")
	}
	if gfMul(1, 133) != 133 {
		t.Fatal("one is identity")
	}
	// 2*2 = 4 in GF(256).
	if gfMul(2, 2) != 4 {
		t.Fatal("2*2 != 4")
	}
	// x^7 * x = x^8 = x^4+x^3+x^2+1 = 0x1d.
	if gfMul(0x80, 2) != 0x1d {
		t.Fatalf("0x80*2 = %#x, want 0x1d", gfMul(0x80, 2))
	}
}

func TestGFFieldAxiomsProperty(t *testing.T) {
	f := func(a, b, c byte) bool {
		// Commutativity and associativity of mul; distributivity over xor.
		if gfMul(a, b) != gfMul(b, a) {
			return false
		}
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			return false
		}
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGFInverse(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("inv(%d) wrong", a)
		}
	}
}

func TestGFDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	gfDiv(5, 0)
}

func TestInvertMatrixIdentity(t *testing.T) {
	m := [][]byte{{1, 0}, {0, 1}}
	if !invertMatrix(m) {
		t.Fatal("identity should invert")
	}
	if m[0][0] != 1 || m[0][1] != 0 || m[1][0] != 0 || m[1][1] != 1 {
		t.Fatalf("identity inverse wrong: %v", m)
	}
}

func TestInvertMatrixSingular(t *testing.T) {
	m := [][]byte{{1, 1}, {1, 1}}
	if invertMatrix(m) {
		t.Fatal("singular matrix reported invertible")
	}
}

func TestInvertMatrixRoundTrip(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(6) + 1
		orig := make([][]byte, n)
		m := make([][]byte, n)
		for i := range m {
			orig[i] = make([]byte, n)
			m[i] = make([]byte, n)
			for j := range m[i] {
				orig[i][j] = byte(rng.Intn(256))
				m[i][j] = orig[i][j]
			}
		}
		if !invertMatrix(m) {
			continue // singular draw; skip
		}
		// orig * m should be identity.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum byte
				for l := 0; l < n; l++ {
					sum ^= gfMul(orig[i][l], m[l][j])
				}
				want := byte(0)
				if i == j {
					want = 1
				}
				if sum != want {
					t.Fatalf("trial %d: product[%d][%d] = %d", trial, i, j, sum)
				}
			}
		}
	}
}

func makeShards(rng *stats.RNG, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		for j := range data[i] {
			data[i][j] = byte(rng.Intn(256))
		}
	}
	return data
}

func TestEncodeReconstructNoLoss(t *testing.T) {
	c := NewCoder(4, 2)
	rng := stats.NewRNG(1)
	data := makeShards(rng, 4, 128)
	parity := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	out, err := c.Reconstruct(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(out[i], data[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}

func TestReconstructWithDataLoss(t *testing.T) {
	c := NewCoder(4, 2)
	rng := stats.NewRNG(2)
	data := makeShards(rng, 4, 256)
	parity := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	shards[1] = nil
	shards[3] = nil
	out, err := c.Reconstruct(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(out[i], data[i]) {
			t.Fatalf("shard %d not recovered", i)
		}
	}
}

func TestReconstructWithMixedLoss(t *testing.T) {
	c := NewCoder(5, 3)
	rng := stats.NewRNG(3)
	data := makeShards(rng, 5, 64)
	parity := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	shards[0] = nil // data
	shards[6] = nil // parity
	shards[2] = nil // data
	out, err := c.Reconstruct(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(out[i], data[i]) {
			t.Fatalf("shard %d not recovered", i)
		}
	}
}

func TestReconstructFailsBeyondParity(t *testing.T) {
	c := NewCoder(4, 2)
	rng := stats.NewRNG(4)
	data := makeShards(rng, 4, 32)
	parity := c.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	shards[0], shards[1], shards[2] = nil, nil, nil // 3 losses > m=2
	if _, err := c.Reconstruct(shards); err == nil {
		t.Fatal("expected reconstruction failure")
	}
}

func TestAnyKOfNProperty(t *testing.T) {
	// The FTI guarantee: any m erasures are recoverable.
	c := NewCoder(6, 3)
	rng := stats.NewRNG(5)
	data := makeShards(rng, 6, 50)
	parity := c.Encode(data)
	base := append(append([][]byte{}, data...), parity...)
	for trial := 0; trial < 100; trial++ {
		shards := make([][]byte, len(base))
		copy(shards, base)
		// Erase exactly m random shards.
		perm := rng.Perm(len(base))
		for _, idx := range perm[:3] {
			shards[idx] = nil
		}
		out, err := c.Reconstruct(shards)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range data {
			if !bytes.Equal(out[i], data[i]) {
				t.Fatalf("trial %d shard %d mismatch", trial, i)
			}
		}
	}
}

func TestNewCoderPanicsOnBadParams(t *testing.T) {
	for _, kc := range [][2]int{{0, 1}, {1, 0}, {200, 100}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for k=%d m=%d", kc[0], kc[1])
				}
			}()
			NewCoder(kc[0], kc[1])
		}()
	}
}

func TestEncodePanicsOnRaggedShards(t *testing.T) {
	c := NewCoder(2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Encode([][]byte{make([]byte, 10), make([]byte, 11)})
}

func TestReconstructWrongCount(t *testing.T) {
	c := NewCoder(2, 1)
	if _, err := c.Reconstruct(make([][]byte, 5)); err == nil {
		t.Fatal("expected error for wrong shard count")
	}
}

func TestEncodeThroughputPositive(t *testing.T) {
	c := NewCoder(4, 2)
	clock := func() int64 { return time.Now().UnixNano() }
	if tp := c.EncodeThroughput(1<<16, clock); tp <= 0 {
		t.Fatalf("throughput %v", tp)
	}
}
