// Package erasure implements Reed–Solomon erasure coding over GF(2^8).
//
// FTI's Level 3 checkpointing encodes each node's checkpoint file across
// its group with a Reed–Solomon code so that the group tolerates the
// loss of up to half its members. This package provides a real,
// systematic RS coder (Cauchy construction) used by the FTI model both
// functionally — to verify recoverability in fault-injection runs — and
// to parameterize the Level 3 encoding-cost model from its measured
// throughput.
package erasure

// GF(2^8) arithmetic with the AES/QR-code polynomial x^8+x^4+x^3+x^2+1
// (0x11d), via log/exp tables built at package init.

const gfPoly = 0x11d

var (
	gfExp [512]byte // doubled so mul can skip the mod 255
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies two field elements.
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides a by b. It panics on division by zero.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse of a non-zero element.
func gfInv(a byte) byte { return gfDiv(1, a) }

// mulSlice computes dst[i] ^= c * src[i] for all i.
func mulAddSlice(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i := range src {
			dst[i] ^= src[i]
		}
		return
	}
	logC := int(gfLog[c])
	for i, s := range src {
		if s != 0 {
			dst[i] ^= gfExp[logC+int(gfLog[s])]
		}
	}
}

// invertMatrix inverts an n x n matrix over GF(256) in place using
// Gauss-Jordan elimination, returning false if the matrix is singular.
func invertMatrix(m [][]byte) bool {
	n := len(m)
	// Augment with identity.
	aug := make([][]byte, n)
	for i := range aug {
		aug[i] = make([]byte, 2*n)
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Scale pivot row to 1.
		inv := gfInv(aug[col][col])
		for c := 0; c < 2*n; c++ {
			aug[col][c] = gfMul(aug[col][c], inv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for c := 0; c < 2*n; c++ {
				aug[r][c] ^= gfMul(f, aug[col][c])
			}
		}
	}
	for i := range m {
		copy(m[i], aug[i][n:])
	}
	return true
}
