package erasure

import "fmt"

// Coder is a systematic Reed–Solomon erasure coder with k data shards
// and m parity shards. Any k of the k+m shards suffice to reconstruct
// the original data — the property FTI Level 3 relies on to survive the
// loss of up to m group members' checkpoints.
type Coder struct {
	k, m int
	// parityRows[i][j] is the coefficient applied to data shard j when
	// computing parity shard i (a Cauchy matrix, so every k x k
	// submatrix of [I; parityRows] is invertible).
	parityRows [][]byte
}

// NewCoder builds a coder for k data and m parity shards.
// Requires 1 <= k, 1 <= m, and k+m <= 256 (field size limit).
func NewCoder(k, m int) *Coder {
	if k < 1 || m < 1 || k+m > 256 {
		panic(fmt.Sprintf("erasure: invalid shard counts k=%d m=%d", k, m))
	}
	rows := make([][]byte, m)
	for i := range rows {
		rows[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			// Cauchy: 1 / (x_i ^ y_j) with x_i = k+i, y_j = j.
			// x and y index sets are disjoint, so the xor is nonzero.
			rows[i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return &Coder{k: k, m: m, parityRows: rows}
}

// DataShards returns k.
func (c *Coder) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Coder) ParityShards() int { return c.m }

// Encode computes the m parity shards for the given k data shards. All
// data shards must be the same length; the returned parity shards have
// that length too.
func (c *Coder) Encode(data [][]byte) [][]byte {
	if len(data) != c.k {
		panic(fmt.Sprintf("erasure: Encode expected %d data shards, got %d", c.k, len(data)))
	}
	size := len(data[0])
	for i, d := range data {
		if len(d) != size {
			panic(fmt.Sprintf("erasure: shard %d length %d != %d", i, len(d), size))
		}
	}
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(parity[i], data[j], c.parityRows[i][j])
		}
	}
	return parity
}

// Reconstruct recovers the full set of k data shards from any k
// surviving shards. shards must have length k+m, with missing shards
// nil: indices [0,k) are data shards, [k,k+m) parity shards. It returns
// the reconstructed data shards, or an error if fewer than k shards
// survive.
func (c *Coder) Reconstruct(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.k+c.m {
		return nil, fmt.Errorf("erasure: expected %d shards, got %d", c.k+c.m, len(shards))
	}
	size := -1
	present := 0
	for _, s := range shards {
		if s != nil {
			present++
			if size < 0 {
				size = len(s)
			} else if len(s) != size {
				return nil, fmt.Errorf("erasure: inconsistent shard sizes")
			}
		}
	}
	if present < c.k {
		return nil, fmt.Errorf("erasure: only %d of %d required shards survive", present, c.k)
	}

	// Fast path: all data shards intact.
	allData := true
	for i := 0; i < c.k; i++ {
		if shards[i] == nil {
			allData = false
			break
		}
	}
	if allData {
		out := make([][]byte, c.k)
		copy(out, shards[:c.k])
		return out, nil
	}

	// Build the decode matrix from the first k surviving shards'
	// generator rows, invert it, and multiply by the surviving shards.
	rows := make([][]byte, 0, c.k)
	sub := make([][]byte, 0, c.k)
	for idx := 0; idx < c.k+c.m && len(rows) < c.k; idx++ {
		if shards[idx] == nil {
			continue
		}
		row := make([]byte, c.k)
		if idx < c.k {
			row[idx] = 1 // systematic identity row
		} else {
			copy(row, c.parityRows[idx-c.k])
		}
		rows = append(rows, row)
		sub = append(sub, shards[idx])
	}
	if !invertMatrix(rows) {
		// Cannot happen with a Cauchy construction; guard anyway.
		return nil, fmt.Errorf("erasure: decode matrix singular")
	}
	out := make([][]byte, c.k)
	for i := 0; i < c.k; i++ {
		if shards[i] != nil {
			out[i] = shards[i]
			continue
		}
		out[i] = make([]byte, size)
		for j := 0; j < c.k; j++ {
			mulAddSlice(out[i], sub[j], rows[i][j])
		}
	}
	return out, nil
}

// EncodeThroughput measures this coder's encode rate in bytes of data
// processed per second, by encoding a synthetic payload of the given
// per-shard size once and timing it with the provided clock function.
// The FTI Level 3 cost model calls this at configuration time to ground
// its compute-cost term in the real implementation.
func (c *Coder) EncodeThroughput(shardSize int, clock func() int64) float64 {
	data := make([][]byte, c.k)
	for i := range data {
		data[i] = make([]byte, shardSize)
		for j := range data[i] {
			data[i][j] = byte(i + j)
		}
	}
	start := clock()
	c.Encode(data)
	elapsed := clock() - start
	if elapsed <= 0 {
		elapsed = 1
	}
	return float64(c.k*shardSize) / (float64(elapsed) / 1e9)
}
