package cmtbone

import (
	"testing"

	"besst/internal/beo"
)

func TestApp(t *testing.T) {
	app := App(64, 5, 128, 100)
	if app.Ranks != 128 {
		t.Fatal("ranks wrong")
	}
	if !app.Ops()[OpTimestep] {
		t.Fatal("timestep op missing")
	}
	if got := app.CountInstr(); got != 300 {
		t.Fatalf("instr count = %d, want 300", got)
	}
	loop := app.Program[0].(beo.Loop)
	comp := loop.Body[0].(beo.Comp)
	if comp.Params.Get("psize") != 64 || comp.Params.Get("ranks") != 128 {
		t.Fatalf("params = %v", comp.Params)
	}
}

func TestFaceBytes(t *testing.T) {
	// (N+1)^2 * 5 vars * 8 bytes.
	if FaceBytes(4) != 25*5*8 {
		t.Fatalf("face bytes = %d", FaceBytes(4))
	}
}

func TestElementsPerRank(t *testing.T) {
	if ElementsPerRank(32) != 32 {
		t.Fatal("elements wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ElementsPerRank(0)
}

func TestAppPanicsOnBadArgs(t *testing.T) {
	cases := []func(){
		func() { App(0, 5, 8, 10) },
		func() { App(64, 0, 8, 10) },
		func() { App(64, 5, 0, 10) },
		func() { App(64, 5, 8, 0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
