// Package cmtbone generates the AppBEO for CMT-bone, the proxy
// application for compressible multiphase turbulence (a stripped-down
// CMT-nek, itself based on the Nek5000 CFD solver) used in the paper's
// Fig 1: BE-SST validation on the Vulcan supercomputer. CMT-bone is a
// spectral-element code; its per-timestep cost is dominated by
// element-local operator evaluations plus face exchanges between
// neighboring elements.
package cmtbone

import (
	"fmt"

	"besst/internal/beo"
	"besst/internal/perfmodel"
)

// Op names bound in the ArchBEO.
const (
	OpTimestep = "cmtbone_timestep"
)

// ElementsPerRank returns the spectral elements each rank owns for a
// problem-size parameter (elements per rank is CMT-bone's primary
// scaling knob in the BE-SST studies).
func ElementsPerRank(psize int) int64 {
	if psize <= 0 {
		panic("cmtbone: non-positive problem size")
	}
	return int64(psize)
}

// FaceBytes returns the per-neighbor face-exchange payload per timestep
// for polynomial order N (values on an (N+1)^2 face, 5 conserved
// variables of 8 bytes).
func FaceBytes(order int) int64 {
	n := int64(order + 1)
	return n * n * 5 * 8
}

// App builds the CMT-bone AppBEO: a timestep loop of element-local
// compute, a halo exchange, and the stability allreduce.
func App(psize, order, ranks, timesteps int) *beo.AppBEO {
	if ranks <= 0 || timesteps <= 0 {
		panic("cmtbone: non-positive ranks or timesteps")
	}
	ElementsPerRank(psize) // validates psize
	if order <= 0 {
		panic("cmtbone: non-positive polynomial order")
	}
	params := perfmodel.Params{
		"psize": float64(psize),
		"ranks": float64(ranks),
	}
	body := []beo.Instr{
		beo.Comp{Op: OpTimestep, Params: params},
		beo.Comm{Pattern: beo.Halo, Bytes: FaceBytes(order), Neighbors: 6},
		beo.Comm{Pattern: beo.Allreduce, Bytes: 8},
	}
	return &beo.AppBEO{
		Name:    fmt.Sprintf("CMT-bone(psize=%d, ranks=%d)", psize, ranks),
		Ranks:   ranks,
		Program: []beo.Instr{beo.Loop{Count: timesteps, Body: body}},
	}
}
