// Package par holds the shared parallel-execution primitives behind
// every concurrent tier of the simulator: a bounded worker pool for
// embarrassingly parallel index spaces (Monte Carlo replications, DSE
// grid cells, benchmarking-campaign combinations) and the deterministic
// seed-fanout helper that makes those tiers bit-reproducible.
//
// The determinism contract is always the same: the caller pre-draws one
// seed per work item from a master RNG *before* any work starts, so the
// random stream a work item consumes depends only on its index — never
// on completion order, worker count, or goroutine scheduling. Running
// with 1 worker and with N workers then produces byte-identical output.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"besst/internal/stats"
)

// Workers resolves a requested worker count: any value <= 0 selects
// runtime.GOMAXPROCS(0), the pool's default concurrency.
func Workers(requested int) int {
	if requested > 0 {
		return requested
	}
	return runtime.GOMAXPROCS(0)
}

// SeedFan pre-draws n trial seeds from a master seed, one per work
// item, in index order. The draw order matches a serial loop pulling
// master.Uint64() once per item, so a parallel caller fanning these
// seeds out reproduces the exact streams of its serial reference.
func SeedFan(master uint64, n int) []uint64 {
	if n < 0 {
		panic("par: negative seed count")
	}
	rng := stats.NewRNG(master)
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64()
	}
	return out
}

// Range is a half-open index interval [Lo, Hi) — one shard of an
// n-item work space.
type Range struct {
	Lo, Hi int
}

// Len is the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into at most k contiguous, non-overlapping,
// in-order ranges whose sizes differ by at most one (the first n%k
// ranges get the extra item). It is the deterministic shard geometry of
// distributed campaigns: because SeedFan pre-draws per-index seeds,
// any Split of the same n covers the same per-index work, so shards
// computed by different processes merge back into the byte-identical
// whole regardless of k. Empty ranges are never returned; k <= 0 is
// treated as 1, and k > n collapses to n single-item ranges.
func Split(n, k int) []Range {
	if n <= 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	out := make([]Range, k)
	size, extra := n/k, n%k
	lo := 0
	for i := range out {
		hi := lo + size
		if i < extra {
			hi++
		}
		out[i] = Range{Lo: lo, Hi: hi}
		lo = hi
	}
	return out
}

// ForEach runs fn(i) for every i in [0, n) on a pool of at most
// `workers` goroutines (Workers-resolved, clamped to n). It returns
// once every started call has finished. A panic inside fn stops new
// work, drains the pool, and is re-raised on the caller's goroutine
// with its original value. fn must be safe for concurrent invocation
// when workers > 1.
func ForEach(workers, n int, fn func(i int)) {
	// The error path is unreachable, but the panic path is shared.
	_ = ForEachErr(workers, n, func(i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr is ForEach for fallible work: the first error observed
// (lowest index among those encountered) stops new work, the pool
// drains cleanly — every in-flight call runs to completion — and that
// error is returned. Panics propagate as in ForEach and take
// precedence over errors.
func ForEachErr(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		wg       sync.WaitGroup
		firstIdx = n
		firstErr error
		panicVal any
		panicked bool
	)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if !panicked {
					panicked, panicVal = true, r
				}
				mu.Unlock()
				stop.Store(true)
			}
		}()
		if err := fn(i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
			stop.Store(true)
		}
	}
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				call(i)
			}
		}()
	}
	wg.Wait()
	if panicked {
		panic(panicVal)
	}
	return firstErr
}

// PanicError is a work-item panic captured by ForEachIsolated: the item
// index, the recovered value, and the goroutine stack at recovery time.
type PanicError struct {
	Index int
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: work item %d panicked: %v", e.Index, e.Value)
}

// ForEachIsolated runs fn(i) for every i in [0, n) like ForEachErr, but
// with full fault isolation between items: a panic or error in one item
// never stops the others — every index runs exactly once, panics are
// captured as *PanicError instead of crossing the pool boundary, and
// the per-index outcome slice is returned (nil entries succeeded). This
// is the entry point long-running campaigns use so one poison trial
// cannot take down hours of completed work.
func ForEachIsolated(workers, n int, fn func(i int) error) []error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				errs[i] = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		errs[i] = fn(i)
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			call(i)
		}
		return errs
	}
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				call(i)
			}
		}()
	}
	wg.Wait()
	return errs
}
