package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"besst/internal/stats"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Fatalf("Workers(3) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	for _, req := range []int{0, -1, -100} {
		if got := Workers(req); got != want {
			t.Fatalf("Workers(%d) = %d, want GOMAXPROCS %d", req, got, want)
		}
	}
}

func TestSeedFanMatchesSerialDrawOrder(t *testing.T) {
	const master, n = 42, 16
	seeds := SeedFan(master, n)
	rng := stats.NewRNG(master)
	for i, s := range seeds {
		if want := rng.Uint64(); s != want {
			t.Fatalf("seed %d = %d, want %d (serial draw order)", i, s, want)
		}
	}
	again := SeedFan(master, n)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("SeedFan not deterministic")
		}
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		const n = 500
		counts := make([]atomic.Int32, n)
		ForEach(workers, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachRespectsConcurrencyBound(t *testing.T) {
	const workers, n = 3, 200
	var active, peak atomic.Int32
	ForEach(workers, n, func(i int) {
		a := active.Add(1)
		for {
			p := peak.Load()
			if a <= p || peak.CompareAndSwap(p, a) {
				break
			}
		}
		// Hold the slot long enough for other workers to pile in if the
		// bound were broken.
		for j := 0; j < 2000; j++ {
			_ = j * j
		}
		active.Add(-1)
	})
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, bound is %d", p, workers)
	}
}

func TestForEachPropagatesPanicValue(t *testing.T) {
	sentinel := errors.New("boom")
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if r != sentinel {
			t.Fatalf("panic value %v, want original sentinel", r)
		}
	}()
	ForEach(4, 100, func(i int) {
		if i == 7 {
			panic(sentinel)
		}
	})
}

func TestForEachErrStopsEarlyAndDrains(t *testing.T) {
	sentinel := errors.New("fail-fast")
	const n = 100000
	var calls atomic.Int64
	err := ForEachErr(4, n, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	// The pool must stop claiming work after the error: with the error
	// raised on the very first index, only a small prefix of the index
	// space may have been touched before every worker saw the stop flag.
	if c := calls.Load(); c >= n {
		t.Fatalf("pool did not stop early: %d calls", c)
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	// Serial path: both fail, the lower index must win.
	err := ForEachErr(1, 10, func(i int) error {
		switch i {
		case 2:
			return errLow
		case 5:
			return errHigh
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("err = %v, want lowest-index error", err)
	}
}

func TestForEachZeroAndNegativeN(t *testing.T) {
	called := false
	ForEach(4, 0, func(int) { called = true })
	ForEach(4, -5, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty index space")
	}
}

// TestForEachIsolatedCapturesPanics is the regression gate for worker
// panics: before ForEachIsolated, a panicking work item either took
// down the process or (via ForEach) aborted the whole campaign. Run
// under -race it also proves the per-index error slots are written
// race-free.
func TestForEachIsolatedCapturesPanics(t *testing.T) {
	for _, workers := range []int{1, 8} {
		const n = 64
		var ran atomic.Int64
		errs := ForEachIsolated(workers, n, func(i int) error {
			ran.Add(1)
			if i%7 == 3 {
				panic(fmt.Sprintf("poison %d", i))
			}
			if i%10 == 9 {
				return errors.New("soft failure")
			}
			return nil
		})
		if got := ran.Load(); got != n {
			t.Fatalf("workers=%d: %d items ran, want %d (isolation must not stop the pool)", workers, got, n)
		}
		if len(errs) != n {
			t.Fatalf("workers=%d: %d error slots, want %d", workers, len(errs), n)
		}
		for i, err := range errs {
			switch {
			case i%7 == 3:
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Fatalf("workers=%d: index %d: err = %v, want *PanicError", workers, i, err)
				}
				if pe.Index != i || len(pe.Stack) == 0 {
					t.Fatalf("workers=%d: index %d: PanicError missing provenance: %+v", workers, i, pe)
				}
			case i%10 == 9:
				if err == nil || err.Error() != "soft failure" {
					t.Fatalf("workers=%d: index %d: err = %v, want soft failure", workers, i, err)
				}
			default:
				if err != nil {
					t.Fatalf("workers=%d: index %d: unexpected error %v", workers, i, err)
				}
			}
		}
	}
}

func TestForEachIsolatedEmpty(t *testing.T) {
	if errs := ForEachIsolated(4, 0, func(int) error { return errors.New("x") }); errs != nil {
		t.Fatalf("empty index space returned %v", errs)
	}
}

// TestSplitGeometry checks the shard invariants Split promises:
// ranges are contiguous, in order, cover exactly [0, n), are never
// empty, and differ in size by at most one.
func TestSplitGeometry(t *testing.T) {
	for n := 0; n <= 40; n++ {
		for _, k := range []int{-1, 0, 1, 2, 3, 7, n, n + 5, 100} {
			ranges := Split(n, k)
			if n == 0 {
				if ranges != nil {
					t.Fatalf("Split(0, %d) = %v, want nil", k, ranges)
				}
				continue
			}
			wantK := k
			if wantK <= 0 {
				wantK = 1
			}
			if wantK > n {
				wantK = n
			}
			if len(ranges) != wantK {
				t.Fatalf("Split(%d, %d) returned %d ranges, want %d", n, k, len(ranges), wantK)
			}
			lo, minLen, maxLen := 0, n, 0
			for _, r := range ranges {
				if r.Lo != lo {
					t.Fatalf("Split(%d, %d): gap or overlap at %v (want lo %d)", n, k, r, lo)
				}
				if r.Len() <= 0 {
					t.Fatalf("Split(%d, %d): empty range %v", n, k, r)
				}
				if r.Len() < minLen {
					minLen = r.Len()
				}
				if r.Len() > maxLen {
					maxLen = r.Len()
				}
				lo = r.Hi
			}
			if lo != n {
				t.Fatalf("Split(%d, %d) covers [0, %d), want [0, %d)", n, k, lo, n)
			}
			if maxLen-minLen > 1 {
				t.Fatalf("Split(%d, %d): uneven shards (sizes %d..%d)", n, k, minLen, maxLen)
			}
		}
	}
}

// TestSplitDeterministic pins the exact geometry shards are addressed
// by: coordinator and workers must always agree on Split(n, k).
func TestSplitDeterministic(t *testing.T) {
	got := Split(10, 4)
	want := []Range{{0, 3}, {3, 6}, {6, 8}, {8, 10}}
	if len(got) != len(want) {
		t.Fatalf("Split(10, 4) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Split(10, 4) = %v, want %v", got, want)
		}
	}
}
