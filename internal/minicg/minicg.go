// Package minicg generates the AppBEO for a conjugate-gradient solver
// proxy (a miniFE/HPCG-like sparse iterative kernel). It is the second
// application of this reproduction, demonstrating that the FT-aware
// workflow is application-agnostic (the paper: "BE-SST is already being
// used to study multiple applications").
//
// CG's profile contrasts with LULESH's: each iteration is a sparse
// matrix-vector product (memory-bound, modest flops) plus TWO global
// dot-product allreduces, so communication grows with scale much faster
// than LULESH's single allreduce; and its protected state (three
// vectors) is far smaller than LULESH's field set, so checkpointing is
// comparatively cheap — a different corner of the FT design space.
package minicg

import (
	"fmt"

	"besst/internal/beo"
	"besst/internal/fti"
	"besst/internal/perfmodel"
)

// Op names bound in the ArchBEO.
const (
	OpIteration = "minicg_iteration"
	OpCkptL1    = "fti_ckpt_l1" // shares the FTI instance models
)

// RowsPerRank is the local matrix dimension for a problem-size
// parameter n (n^3 grid points per rank, 27-point stencil).
func RowsPerRank(n int) int64 {
	if n <= 0 {
		panic("minicg: non-positive problem size")
	}
	v := int64(n)
	return v * v * v
}

// CheckpointBytes returns the protected state per rank: the solution,
// residual, and search-direction vectors (three doubles per row).
func CheckpointBytes(n int) int64 {
	return RowsPerRank(n) * 3 * 8
}

// HaloBytes returns the per-neighbor halo payload of the SpMV: one
// face of the local grid.
func HaloBytes(n int) int64 {
	v := int64(n)
	return v * v * 8
}

// App builds the CG AppBEO: iterations of SpMV + halo + two dot-product
// allreduces, with optional L1 checkpointing every `period` iterations
// (0 disables checkpointing).
func App(n, ranks, iterations, period int, cfg fti.Config) *beo.AppBEO {
	if ranks <= 0 || iterations <= 0 {
		panic("minicg: non-positive ranks or iterations")
	}
	RowsPerRank(n) // validates n
	if period > 0 {
		if err := cfg.CheckRanks(ranks); err != nil {
			panic(err)
		}
	}
	params := perfmodel.Params{"n": float64(n), "ranks": float64(ranks)}
	body := []beo.Instr{
		beo.Comp{Op: OpIteration, Params: params},
		beo.Comm{Pattern: beo.Halo, Bytes: HaloBytes(n), Neighbors: 6},
		// CG needs two global reductions per iteration (alpha and
		// beta), which is what makes it communication-sensitive.
		beo.Comm{Pattern: beo.Allreduce, Bytes: 8},
		beo.Comm{Pattern: beo.Allreduce, Bytes: 8},
	}
	if period > 0 {
		body = append(body, beo.Periodic{
			Period: period,
			Offset: period - 1,
			Body: []beo.Instr{
				beo.Ckpt{Op: OpCkptL1, Level: fti.L1, Params: params},
			},
		})
	}
	name := fmt.Sprintf("miniCG(n=%d, ranks=%d)", n, ranks)
	return &beo.AppBEO{
		Name:    name,
		Ranks:   ranks,
		Program: []beo.Instr{beo.Loop{Count: iterations, Body: body}},
	}
}
