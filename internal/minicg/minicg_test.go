package minicg

import (
	"testing"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/fti"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/perfmodel"
	"besst/internal/stats"
	"besst/internal/workflow"
)

var cfg = fti.Config{GroupSize: 4, NodeSize: 2}

func TestSizes(t *testing.T) {
	if RowsPerRank(10) != 1000 {
		t.Fatal("rows wrong")
	}
	if CheckpointBytes(10) != 1000*24 {
		t.Fatal("checkpoint bytes wrong")
	}
	if HaloBytes(10) != 100*8 {
		t.Fatal("halo bytes wrong")
	}
}

func TestAppStructure(t *testing.T) {
	app := App(16, 64, 100, 25, cfg)
	if app.Ranks != 64 {
		t.Fatal("ranks wrong")
	}
	ops := app.Ops()
	if !ops[OpIteration] || !ops[OpCkptL1] {
		t.Fatalf("ops = %v", ops)
	}
	// 100*(iter + halo + 2 allreduce) + 4 checkpoints.
	if got := app.CountInstr(); got != 404 {
		t.Fatalf("count = %d, want 404", got)
	}
}

func TestAppNoCheckpoint(t *testing.T) {
	app := App(16, 64, 50, 0, cfg)
	if app.Ops()[OpCkptL1] {
		t.Fatal("period 0 should disable checkpointing")
	}
}

func TestAppPanics(t *testing.T) {
	cases := []func(){
		func() { App(0, 64, 10, 0, cfg) },
		func() { App(16, 0, 10, 0, cfg) },
		func() { App(16, 64, 0, 0, cfg) },
		func() { App(16, 27, 10, 5, cfg) }, // 27 not FTI-divisible
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestCGEndToEnd runs the whole workflow on the second application:
// benchmark the CG iteration on the ground truth, fit a model, and
// simulate a checkpointed run — demonstrating application-agnosticism.
func TestCGEndToEnd(t *testing.T) {
	em := groundtruth.NewQuartz()
	campaign := &benchdata.Campaign{}
	rng := stats.NewRNG(77)
	for _, n := range []int{8, 16, 24} {
		for _, ranks := range []int{8, 64, 512} {
			p := perfmodel.Params{"n": float64(n), "ranks": float64(ranks)}
			for i := 0; i < 6; i++ {
				campaign.Add(OpIteration, p, em.MeasureCGIteration(n, ranks, rng))
				campaign.Add(OpCkptL1, p,
					em.Cost.InstanceTime(fti.L1, ranks, CheckpointBytes(n)))
			}
		}
	}
	models := workflow.Develop(campaign, workflow.SymbolicRegression, []string{"n", "ranks"}, 5)
	iterRep := models.Report(OpIteration)
	if iterRep.ValidationMAPE > 12 {
		t.Fatalf("CG iteration model MAPE %v out of band", iterRep.ValidationMAPE)
	}

	app := App(16, 64, 100, 25, cfg)
	arch := beo.NewArchBEO(em.M, cfg.NodeSize)
	for op, m := range models.ByOp {
		arch.Bind(op, m)
	}
	res := besst.Run(app, arch, besst.WithMode(besst.DES))
	if res.Makespan <= 0 || len(res.CkptTimes) != 4 {
		t.Fatalf("bad result: makespan %v, %d ckpts", res.Makespan, len(res.CkptTimes))
	}
	// CG's two allreduces per iteration make comm a visible share.
	if res.Breakdown.CommSec <= 0 {
		t.Fatal("comm share missing")
	}
}

// TestCGCheckpointCheaperThanLulesh confirms the contrast the package
// exists to show: CG's protected state (3 vectors) is far smaller than
// LULESH's field set at comparable local sizes, so its L1 instance is
// far cheaper — a different corner of the FT design space.
func TestCGCheckpointCheaperThanLulesh(t *testing.T) {
	em := groundtruth.NewQuartz()
	// Comparable local volumes: epr 20 -> 8000 elements; n 20 -> 8000 rows.
	cg := em.Cost.InstanceTime(fti.L1, 512, CheckpointBytes(20))
	lu := em.Cost.InstanceTime(fti.L1, 512, lulesh.CheckpointBytes(20))
	if cg >= lu {
		t.Fatalf("CG checkpoint %v should undercut LULESH's %v", cg, lu)
	}
}
