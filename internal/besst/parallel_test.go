package besst

import (
	"testing"

	"besst/internal/beo"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/perfmodel"
	"besst/internal/stats"
)

// serialMonteCarloReference replicates the historical serial Monte
// Carlo implementation exactly: one master RNG, one Uint64 draw per
// trial in index order, one independent single run per trial.
func serialMonteCarloReference(app *beo.AppBEO, arch *beo.ArchBEO, cfg RunConfig, n int) []*Result {
	cfg.MonteCarlo = true
	master := stats.NewRNG(cfg.Seed)
	out := make([]*Result, n)
	for i := range out {
		c := cfg
		c.Seed = master.Uint64()
		out[i] = Compile(app, arch).RunWith(c)
	}
	return out
}

// options converts a literal RunConfig to the equivalent option list,
// letting table-driven tests feed struct literals to the functional-
// option entry points.
func (c RunConfig) options(extra ...Option) []Option {
	base := func(dst *RunConfig) { *dst = c }
	return append([]Option{base}, extra...)
}

func noisyArch() *beo.ArchBEO {
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	arch.Bind(lulesh.OpTimestep, perfmodel.Func{Label: "ts", F: func(perfmodel.Params) float64 { return 0.01 }, NoiseSigma: 0.1})
	arch.Bind(lulesh.OpCkptL1, perfmodel.Func{Label: "l1", F: func(perfmodel.Params) float64 { return 0.1 }, NoiseSigma: 0.2})
	arch.Bind(lulesh.OpCkptL2, perfmodel.Func{Label: "l2", F: func(perfmodel.Params) float64 { return 0.15 }, NoiseSigma: 0.2})
	return arch
}

// requireIdenticalResults asserts bit-identical result vectors: every
// float64 must compare exactly equal, not approximately.
func requireIdenticalResults(t *testing.T, want, got []*Result, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Makespan != g.Makespan {
			t.Fatalf("%s: trial %d makespan %v != %v", label, i, g.Makespan, w.Makespan)
		}
		if w.Breakdown != g.Breakdown {
			t.Fatalf("%s: trial %d breakdown %+v != %+v", label, i, g.Breakdown, w.Breakdown)
		}
		if len(w.StepCompletions) != len(g.StepCompletions) || len(w.CkptTimes) != len(g.CkptTimes) {
			t.Fatalf("%s: trial %d series lengths differ", label, i)
		}
		for j := range w.StepCompletions {
			if w.StepCompletions[j] != g.StepCompletions[j] {
				t.Fatalf("%s: trial %d step %d: %v != %v", label, i, j, g.StepCompletions[j], w.StepCompletions[j])
			}
		}
		for j := range w.CkptTimes {
			if w.CkptTimes[j] != g.CkptTimes[j] {
				t.Fatalf("%s: trial %d ckpt %d: %v != %v", label, i, j, g.CkptTimes[j], w.CkptTimes[j])
			}
		}
	}
}

// TestMonteCarloParallelMatchesSerialReference is the Monte Carlo
// equivalence gate: for a fixed seed, the pooled implementation must be
// byte-identical to the historical serial loop at every worker count
// and in both execution modes. Run under -race it also proves the
// shared compiled state is touched read-only.
func TestMonteCarloParallelMatchesSerialReference(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
		app  *beo.AppBEO
		cfg  RunConfig
		n    int
	}{
		{
			name: "direct-per-rank-noise",
			mode: Direct,
			app:  lulesh.App(10, 64, 40, lulesh.ScenarioL1L2, cfg),
			cfg:  RunConfig{Mode: Direct, PerRankNoise: true, Seed: 17},
			n:    12,
		},
		{
			name: "direct-instance-noise",
			mode: Direct,
			app:  lulesh.App(10, 8, 60, lulesh.ScenarioL1, cfg),
			cfg:  RunConfig{Mode: Direct, Seed: 23},
			n:    10,
		},
		{
			name: "des",
			mode: DES,
			app:  lulesh.App(10, 8, 15, lulesh.ScenarioL1, cfg),
			cfg:  RunConfig{Mode: DES, Seed: 31},
			n:    6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arch := noisyArch()
			want := serialMonteCarloReference(tc.app, arch, tc.cfg, tc.n)
			for _, workers := range []int{1, 8} {
				got := Replicate(tc.app, arch, tc.n, tc.cfg.options(WithConcurrency(workers))...)
				requireIdenticalResults(t, want, got, tc.name)
			}
			// Default concurrency (GOMAXPROCS) must agree too.
			requireIdenticalResults(t, want, Replicate(tc.app, arch, tc.n, tc.cfg.options()...), tc.name+"/default")
		})
	}
}

// TestCompiledRunReuse exercises the hoisted compile path: one
// CompiledRun serving Simulate-equivalent runs and repeated Monte Carlo
// batches without revalidating or recompiling.
func TestCompiledRunReuse(t *testing.T) {
	app := lulesh.App(10, 8, 30, lulesh.ScenarioL1, cfg)
	arch := noisyArch()
	cr := Compile(app, arch)

	one := cr.RunWith(NewRunConfig(WithMode(Direct), WithSeed(3)))
	ref := Run(app, arch, WithMode(Direct), WithSeed(3))
	if one.Makespan != ref.Makespan {
		t.Fatalf("CompiledRun.RunWith %v != Run %v", one.Makespan, ref.Makespan)
	}

	a := cr.Replicate(8, WithMode(Direct), WithSeed(5), WithConcurrency(4))
	b := Replicate(app, arch, 8, WithMode(Direct), WithSeed(5), WithConcurrency(1))
	requireIdenticalResults(t, b, a, "compiled-run reuse")
}

func TestCompiledRunReplicatePanicsOnBadN(t *testing.T) {
	app := lulesh.App(10, 8, 5, lulesh.ScenarioNoFT, cfg)
	cr := Compile(app, constArch(1, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cr.Replicate(0)
}
