package besst

import (
	"testing"

	"besst/internal/beo"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/perfmodel"
	"besst/internal/stats"
)

// serialMonteCarloReference replicates the historical serial MonteCarlo
// implementation exactly: one master RNG, one Uint64 draw per trial in
// index order, one independent Simulate per trial.
func serialMonteCarloReference(app *beo.AppBEO, arch *beo.ArchBEO, opt Options, n int) []*Result {
	opt.MonteCarlo = true
	master := stats.NewRNG(opt.Seed)
	out := make([]*Result, n)
	for i := range out {
		o := opt
		o.Seed = master.Uint64()
		out[i] = Simulate(app, arch, o)
	}
	return out
}

func noisyArch() *beo.ArchBEO {
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	arch.Bind(lulesh.OpTimestep, perfmodel.Func{Label: "ts", F: func(perfmodel.Params) float64 { return 0.01 }, NoiseSigma: 0.1})
	arch.Bind(lulesh.OpCkptL1, perfmodel.Func{Label: "l1", F: func(perfmodel.Params) float64 { return 0.1 }, NoiseSigma: 0.2})
	arch.Bind(lulesh.OpCkptL2, perfmodel.Func{Label: "l2", F: func(perfmodel.Params) float64 { return 0.15 }, NoiseSigma: 0.2})
	return arch
}

// requireIdenticalResults asserts bit-identical result vectors: every
// float64 must compare exactly equal, not approximately.
func requireIdenticalResults(t *testing.T, want, got []*Result, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Makespan != g.Makespan {
			t.Fatalf("%s: trial %d makespan %v != %v", label, i, g.Makespan, w.Makespan)
		}
		if w.Breakdown != g.Breakdown {
			t.Fatalf("%s: trial %d breakdown %+v != %+v", label, i, g.Breakdown, w.Breakdown)
		}
		if len(w.StepCompletions) != len(g.StepCompletions) || len(w.CkptTimes) != len(g.CkptTimes) {
			t.Fatalf("%s: trial %d series lengths differ", label, i)
		}
		for j := range w.StepCompletions {
			if w.StepCompletions[j] != g.StepCompletions[j] {
				t.Fatalf("%s: trial %d step %d: %v != %v", label, i, j, g.StepCompletions[j], w.StepCompletions[j])
			}
		}
		for j := range w.CkptTimes {
			if w.CkptTimes[j] != g.CkptTimes[j] {
				t.Fatalf("%s: trial %d ckpt %d: %v != %v", label, i, j, g.CkptTimes[j], w.CkptTimes[j])
			}
		}
	}
}

// TestMonteCarloParallelMatchesSerialReference is the Monte Carlo
// equivalence gate: for a fixed seed, the pooled implementation must be
// byte-identical to the historical serial loop at every worker count
// and in both execution modes. Run under -race it also proves the
// shared compiled state is touched read-only.
func TestMonteCarloParallelMatchesSerialReference(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
		app  *beo.AppBEO
		opt  Options
		n    int
	}{
		{
			name: "direct-per-rank-noise",
			mode: Direct,
			app:  lulesh.App(10, 64, 40, lulesh.ScenarioL1L2, cfg),
			opt:  Options{Mode: Direct, PerRankNoise: true, Seed: 17},
			n:    12,
		},
		{
			name: "direct-instance-noise",
			mode: Direct,
			app:  lulesh.App(10, 8, 60, lulesh.ScenarioL1, cfg),
			opt:  Options{Mode: Direct, Seed: 23},
			n:    10,
		},
		{
			name: "des",
			mode: DES,
			app:  lulesh.App(10, 8, 15, lulesh.ScenarioL1, cfg),
			opt:  Options{Mode: DES, Seed: 31},
			n:    6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			arch := noisyArch()
			want := serialMonteCarloReference(tc.app, arch, tc.opt, tc.n)
			for _, workers := range []int{1, 8} {
				got := MonteCarlo(tc.app, arch, tc.opt, tc.n, WithConcurrency(workers))
				requireIdenticalResults(t, want, got, tc.name)
			}
			// Default concurrency (GOMAXPROCS) must agree too.
			requireIdenticalResults(t, want, MonteCarlo(tc.app, arch, tc.opt, tc.n), tc.name+"/default")
		})
	}
}

// TestCompiledRunReuse exercises the hoisted compile path: one
// CompiledRun serving Simulate-equivalent runs and repeated Monte Carlo
// batches without revalidating or recompiling.
func TestCompiledRunReuse(t *testing.T) {
	app := lulesh.App(10, 8, 30, lulesh.ScenarioL1, cfg)
	arch := noisyArch()
	cr := Compile(app, arch)

	one := cr.Run(Options{Mode: Direct, Seed: 3})
	ref := Simulate(app, arch, Options{Mode: Direct, Seed: 3})
	if one.Makespan != ref.Makespan {
		t.Fatalf("CompiledRun.Run %v != Simulate %v", one.Makespan, ref.Makespan)
	}

	a := cr.MonteCarlo(Options{Mode: Direct, Seed: 5}, 8, WithConcurrency(4))
	b := MonteCarlo(app, arch, Options{Mode: Direct, Seed: 5}, 8, WithConcurrency(1))
	requireIdenticalResults(t, b, a, "compiled-run reuse")
}

func TestCompiledRunMonteCarloPanicsOnBadN(t *testing.T) {
	app := lulesh.App(10, 8, 5, lulesh.ScenarioNoFT, cfg)
	cr := Compile(app, constArch(1, 1, 1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cr.MonteCarlo(Options{}, 0)
}
