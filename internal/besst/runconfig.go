package besst

import (
	"besst/internal/beo"
	"besst/internal/des"
	"besst/internal/par"
)

// RunConfig is the unified configuration for single runs and Monte
// Carlo replication. It subsumes the legacy Options struct and the
// variadic MCOption knobs: construct one with functional options
// (WithSeed, WithConcurrency, WithTracer, ...) or fill the struct
// directly — the zero value is a deterministic single DES run.
type RunConfig struct {
	// Mode selects DES (default) or Direct execution.
	Mode Mode
	// MonteCarlo, when true, draws from each model's sample
	// distribution (reproducing calibration variance); when false the
	// simulator uses deterministic Predict values. Replicate forces it
	// on for every trial.
	MonteCarlo bool
	// Seed drives all randomness.
	Seed uint64
	// PerRankNoise controls whether compute blocks draw independent
	// noise per rank (the step then completes at the slowest rank).
	// Ignored when MonteCarlo is false.
	PerRankNoise bool
	// Workers bounds Monte Carlo replication concurrency. Values <= 0
	// select runtime.GOMAXPROCS workers; 1 forces serial execution.
	// Results are byte-identical for every worker count.
	Workers int
	// Tracer, when non-nil, receives DES lifecycle hooks (dispatch,
	// send, barrier wait). Replicate tags each trial's hooks with the
	// trial index as the stream. Tracing is a DES-engine feature:
	// Direct mode has no events and emits nothing. The tracer must be
	// safe for concurrent use when Workers != 1.
	Tracer Tracer
	// Collector, when non-nil, receives run-level metrics callbacks
	// (per-trial timings, engine totals). It must be safe for
	// concurrent use when Workers != 1.
	Collector Collector
}

// Tracer is the DES lifecycle hook interface; see des.Tracer for the
// hook contract. The alias lets callers configure tracing through this
// package alone.
type Tracer = des.Tracer

// Collector receives run-level metrics. The interface is typed with
// builtins only, so the observability layer (internal/obs) implements
// it structurally without this package importing it.
type Collector interface {
	// TrialStart and TrialDone bracket Monte Carlo trial i. Replicate
	// calls them from worker goroutines.
	TrialStart(i int)
	TrialDone(i int)
	// EngineTotals reports one DES run's totals: events processed and
	// the peak event-queue depth. Not called in Direct mode.
	EngineTotals(processed uint64, peakQueueDepth int)
}

// Option mutates a RunConfig.
type Option func(*RunConfig)

// WithMode selects DES or Direct execution.
func WithMode(m Mode) Option { return func(c *RunConfig) { c.Mode = m } }

// WithSeed sets the master seed driving all randomness.
func WithSeed(seed uint64) Option { return func(c *RunConfig) { c.Seed = seed } }

// WithMonteCarlo enables sampling from each model's distribution
// instead of deterministic Predict values. Replicate implies it.
func WithMonteCarlo(on bool) Option { return func(c *RunConfig) { c.MonteCarlo = on } }

// WithPerRankNoise enables independent per-rank compute noise (the
// step then completes at the slowest rank).
func WithPerRankNoise(on bool) Option { return func(c *RunConfig) { c.PerRankNoise = on } }

// WithConcurrency bounds the replication worker count. Values <= 0
// (the default) select runtime.GOMAXPROCS workers; 1 forces serial
// execution. Results are byte-identical for every worker count.
func WithConcurrency(n int) Option { return func(c *RunConfig) { c.Workers = n } }

// WithTracer attaches a DES lifecycle tracer (nil detaches).
func WithTracer(t Tracer) Option { return func(c *RunConfig) { c.Tracer = t } }

// WithCollector attaches a run-metrics collector (nil detaches).
func WithCollector(col Collector) Option { return func(c *RunConfig) { c.Collector = col } }

// NewRunConfig applies opts to a zero RunConfig.
func NewRunConfig(opts ...Option) RunConfig {
	var cfg RunConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// RunWith executes one replication of the compiled program under cfg.
func (cr *CompiledRun) RunWith(cfg RunConfig) *Result {
	return cr.runStream(cfg, 0)
}

// runStream executes one replication, tagging tracer hooks with the
// given stream (the Monte Carlo trial index; 0 for single runs).
func (cr *CompiledRun) runStream(cfg RunConfig, stream int) *Result {
	if cfg.Mode == Direct {
		return simulateDirect(cr, cfg)
	}
	return simulateDES(cr, cfg, stream)
}

// Replicate runs n Monte Carlo replications of the compiled program
// with independent random streams and returns all results — the Monte
// Carlo capability BE-SST uses to "capture the variance that exists in
// the calibration samples".
//
// Every trial seed is pre-drawn from the master RNG in index order
// before any trial starts, so seed assignment — and therefore every
// result — is independent of completion order and worker count, and
// identical to the serial reference. A configured Tracer sees each
// trial as its own stream; a configured Collector gets
// TrialStart/TrialDone brackets and per-engine totals.
func (cr *CompiledRun) Replicate(n int, opts ...Option) []*Result {
	if n <= 0 {
		panic("besst: non-positive Monte Carlo count")
	}
	cfg := NewRunConfig(opts...)
	cfg.MonteCarlo = true
	seeds := par.SeedFan(cfg.Seed, n)
	out := make([]*Result, n)
	col := cfg.Collector
	par.ForEach(cfg.Workers, n, func(i int) {
		c := cfg
		c.Seed = seeds[i]
		if col != nil {
			col.TrialStart(i)
		}
		out[i] = cr.runStream(c, i)
		if col != nil {
			col.TrialDone(i)
		}
	})
	return out
}

// Run compiles app against arch and executes one replication.
func Run(app *beo.AppBEO, arch *beo.ArchBEO, opts ...Option) *Result {
	return Compile(app, arch).RunWith(NewRunConfig(opts...))
}

// Replicate compiles app against arch and runs n Monte Carlo
// replications. See CompiledRun.Replicate for the determinism and
// instrumentation contract.
func Replicate(app *beo.AppBEO, arch *beo.ArchBEO, n int, opts ...Option) []*Result {
	if n <= 0 {
		panic("besst: non-positive Monte Carlo count")
	}
	return Compile(app, arch).Replicate(n, opts...)
}
