package besst

import (
	"besst/internal/beo"
	"besst/internal/des"
	"besst/internal/par"
)

// RunConfig is the unified configuration for single runs and Monte
// Carlo replication. It subsumes the legacy Options struct and the
// variadic MCOption knobs: construct one with functional options
// (WithSeed, WithConcurrency, WithTracer, ...) or fill the struct
// directly — the zero value is a deterministic single DES run.
type RunConfig struct {
	// Mode selects DES (default) or Direct execution.
	Mode Mode
	// MonteCarlo, when true, draws from each model's sample
	// distribution (reproducing calibration variance); when false the
	// simulator uses deterministic Predict values. Replicate forces it
	// on for every trial.
	MonteCarlo bool
	// Seed drives all randomness.
	Seed uint64
	// PerRankNoise controls whether compute blocks draw independent
	// noise per rank (the step then completes at the slowest rank).
	// Ignored when MonteCarlo is false.
	PerRankNoise bool
	// Workers bounds Monte Carlo replication concurrency. Values <= 0
	// select runtime.GOMAXPROCS workers; 1 forces serial execution.
	// Results are byte-identical for every worker count.
	Workers int
	// Tracer, when non-nil, receives DES lifecycle hooks (dispatch,
	// send, barrier wait). Replicate tags each trial's hooks with the
	// trial index as the stream. Tracing is a DES-engine feature:
	// Direct mode has no events and emits nothing. The tracer must be
	// safe for concurrent use when Workers != 1.
	Tracer Tracer
	// Collector, when non-nil, receives run-level metrics callbacks
	// (per-trial timings, engine totals). It must be safe for
	// concurrent use when Workers != 1.
	Collector Collector
}

// Tracer is the DES lifecycle hook interface; see des.Tracer for the
// hook contract. The alias lets callers configure tracing through this
// package alone.
type Tracer = des.Tracer

// Collector receives run-level metrics. The interface is typed with
// builtins only, so the observability layer (internal/obs) implements
// it structurally without this package importing it.
type Collector interface {
	// TrialStart and TrialDone bracket Monte Carlo trial i. Replicate
	// calls them from worker goroutines.
	TrialStart(i int)
	TrialDone(i int)
	// EngineTotals reports one DES run's totals: events processed and
	// the peak event-queue depth. Not called in Direct mode.
	EngineTotals(processed uint64, peakQueueDepth int)
}

// Option mutates a RunConfig.
type Option func(*RunConfig)

// WithMode selects DES or Direct execution.
func WithMode(m Mode) Option { return func(c *RunConfig) { c.Mode = m } }

// WithSeed sets the master seed driving all randomness.
func WithSeed(seed uint64) Option { return func(c *RunConfig) { c.Seed = seed } }

// WithMonteCarlo enables sampling from each model's distribution
// instead of deterministic Predict values. Replicate implies it.
func WithMonteCarlo(on bool) Option { return func(c *RunConfig) { c.MonteCarlo = on } }

// WithPerRankNoise enables independent per-rank compute noise (the
// step then completes at the slowest rank).
func WithPerRankNoise(on bool) Option { return func(c *RunConfig) { c.PerRankNoise = on } }

// WithConcurrency bounds the replication worker count. Values <= 0
// (the default) select runtime.GOMAXPROCS workers; 1 forces serial
// execution. Results are byte-identical for every worker count.
func WithConcurrency(n int) Option { return func(c *RunConfig) { c.Workers = n } }

// WithTracer attaches a DES lifecycle tracer (nil detaches).
func WithTracer(t Tracer) Option { return func(c *RunConfig) { c.Tracer = t } }

// WithCollector attaches a run-metrics collector (nil detaches).
func WithCollector(col Collector) Option { return func(c *RunConfig) { c.Collector = col } }

// NewRunConfig applies opts to a zero RunConfig.
func NewRunConfig(opts ...Option) RunConfig {
	var cfg RunConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// RunWith executes one replication of the compiled program under cfg.
func (cr *CompiledRun) RunWith(cfg RunConfig) *Result {
	return cr.runStream(cfg, 0)
}

// runStream executes one replication, tagging tracer hooks with the
// given stream (the Monte Carlo trial index; 0 for single runs).
func (cr *CompiledRun) runStream(cfg RunConfig, stream int) *Result {
	if cfg.Mode == Direct {
		return simulateDirect(cr, cfg)
	}
	return simulateDES(cr, cfg, stream)
}

// TrialRunner pre-draws the n per-trial seeds from cfg.Seed and
// returns the per-trial executor behind Replicate: runner(i) executes
// Monte Carlo trial i (seed fan index i, tracer stream i, collector
// brackets) independently of every other trial. Because the seeds are
// drawn up front, runner(i) is a pure function of i — callable in any
// order, from any worker, and re-callable after a crash — which is
// what lets an external campaign runner (internal/resilience) replay a
// checkpoint journal and re-run only the missing indices while staying
// byte-identical to an uninterrupted Replicate.
func (cr *CompiledRun) TrialRunner(n int, opts ...Option) (func(i int) *Result, error) {
	if err := validateTrials(n); err != nil {
		return nil, err
	}
	cfg := NewRunConfig(opts...)
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.MonteCarlo = true
	seeds := par.SeedFan(cfg.Seed, n)
	col := cfg.Collector
	return func(i int) *Result {
		c := cfg
		c.Seed = seeds[i]
		if col != nil {
			col.TrialStart(i)
		}
		r := cr.runStream(c, i)
		if col != nil {
			col.TrialDone(i)
		}
		return r
	}, nil
}

// Replicate runs n Monte Carlo replications of the compiled program
// with independent random streams and returns all results — the Monte
// Carlo capability BE-SST uses to "capture the variance that exists in
// the calibration samples". It panics on invalid inputs; ReplicateErr
// is the typed-error variant.
//
// Every trial seed is pre-drawn from the master RNG in index order
// before any trial starts, so seed assignment — and therefore every
// result — is independent of completion order and worker count, and
// identical to the serial reference. A configured Tracer sees each
// trial as its own stream; a configured Collector gets
// TrialStart/TrialDone brackets and per-engine totals.
func (cr *CompiledRun) Replicate(n int, opts ...Option) []*Result {
	out, err := cr.ReplicateErr(n, opts...)
	if err != nil {
		panic(err)
	}
	return out
}

// ReplicateErr is Replicate returning a *ConfigError for non-positive
// trial counts or an invalid configuration instead of panicking.
func (cr *CompiledRun) ReplicateErr(n int, opts ...Option) ([]*Result, error) {
	run, err := cr.TrialRunner(n, opts...)
	if err != nil {
		return nil, err
	}
	cfg := NewRunConfig(opts...)
	out := make([]*Result, n)
	par.ForEach(cfg.Workers, n, func(i int) {
		out[i] = run(i)
	})
	return out, nil
}

// Run compiles app against arch and executes one replication.
func Run(app *beo.AppBEO, arch *beo.ArchBEO, opts ...Option) *Result {
	return Compile(app, arch).RunWith(NewRunConfig(opts...))
}

// Replicate compiles app against arch and runs n Monte Carlo
// replications. See CompiledRun.Replicate for the determinism and
// instrumentation contract. It panics on invalid inputs; ReplicateErr
// is the typed-error variant.
func Replicate(app *beo.AppBEO, arch *beo.ArchBEO, n int, opts ...Option) []*Result {
	out, err := ReplicateErr(app, arch, n, opts...)
	if err != nil {
		panic(err)
	}
	return out
}

// ReplicateErr compiles and replicates with typed-error validation of
// every input: nil app or arch, app/arch mismatch, non-positive trial
// count, unknown mode, absurd worker count.
func ReplicateErr(app *beo.AppBEO, arch *beo.ArchBEO, n int, opts ...Option) ([]*Result, error) {
	if err := validateTrials(n); err != nil {
		return nil, err
	}
	cr, err := CompileErr(app, arch)
	if err != nil {
		return nil, err
	}
	return cr.ReplicateErr(n, opts...)
}
