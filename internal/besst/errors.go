package besst

import (
	"fmt"

	"besst/internal/beo"
)

// MaxWorkers bounds RunConfig.Workers: anything above this is a
// configuration bug (a corrupted flag, an overflowed computation), not
// a plausible pool width, and is rejected before any goroutine spawns.
const MaxWorkers = 1 << 16

// ConfigError reports an invalid run configuration. It is returned by
// the Err-suffixed entry points and carried as the panic value by their
// legacy panicking wrappers, so callers can classify failures with
// errors.As either way.
type ConfigError struct {
	// Field names the offending input (app, arch, trials, workers, mode).
	Field string
	// Reason says what is wrong with it.
	Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("besst: invalid %s: %s", e.Field, e.Reason)
}

// Validate checks the configuration's standalone fields, returning a
// *ConfigError for an unknown mode or an absurd worker count. Zero and
// negative worker counts are valid (GOMAXPROCS selection).
func (c RunConfig) Validate() error {
	if c.Mode != DES && c.Mode != Direct {
		return &ConfigError{Field: "mode", Reason: fmt.Sprintf("unknown execution mode %d", c.Mode)}
	}
	if c.Workers > MaxWorkers {
		return &ConfigError{Field: "workers", Reason: fmt.Sprintf("%d workers exceeds the %d sanity bound", c.Workers, MaxWorkers)}
	}
	return nil
}

// validateTrials rejects non-positive Monte Carlo counts.
func validateTrials(n int) error {
	if n <= 0 {
		return &ConfigError{Field: "trials", Reason: fmt.Sprintf("non-positive Monte Carlo count %d", n)}
	}
	return nil
}

// CompileErr is Compile with an error return instead of a panic: nil
// app or arch and app/arch validation failures come back as typed
// errors so long-running campaign drivers can reject bad inputs without
// recovering deep in the run.
func CompileErr(app *beo.AppBEO, arch *beo.ArchBEO) (*CompiledRun, error) {
	if app == nil {
		return nil, &ConfigError{Field: "app", Reason: "nil AppBEO"}
	}
	if arch == nil {
		return nil, &ConfigError{Field: "arch", Reason: "nil ArchBEO"}
	}
	if err := arch.Validate(app); err != nil {
		return nil, fmt.Errorf("besst: validate %q: %w", app.Name, err)
	}
	return newCompiledRun(app, arch), nil
}
