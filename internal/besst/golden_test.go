package besst

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"besst/internal/lulesh"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden Result fixtures")

// goldenCases are the replication configs pinned by the golden fixture:
// both execution modes, deterministic and Monte Carlo noise, exercised
// at worker counts 1 and 8 (the fixture stores one result vector per
// case; both worker counts must reproduce it byte-for-byte).
func goldenCases() []struct {
	name string
	run  func(workers int) []*Result
} {
	return []struct {
		name string
		run  func(workers int) []*Result
	}{
		{"des-deterministic", func(workers int) []*Result {
			app := lulesh.App(10, 8, 15, lulesh.ScenarioL1L2, cfg)
			cr := Compile(app, noisyArch())
			return []*Result{cr.RunWith(NewRunConfig(WithMode(DES), WithSeed(7)))}
		}},
		{"des-montecarlo", func(workers int) []*Result {
			app := lulesh.App(10, 8, 15, lulesh.ScenarioL1L2, cfg)
			cr := Compile(app, noisyArch())
			return cr.Replicate(6, WithMode(DES), WithSeed(31), WithConcurrency(workers))
		}},
		{"direct-deterministic", func(workers int) []*Result {
			app := lulesh.App(10, 64, 40, lulesh.ScenarioL1, cfg)
			cr := Compile(app, noisyArch())
			return []*Result{cr.RunWith(NewRunConfig(WithMode(Direct), WithSeed(7)))}
		}},
		{"direct-montecarlo-perrank", func(workers int) []*Result {
			app := lulesh.App(10, 64, 40, lulesh.ScenarioL1, cfg)
			cr := Compile(app, noisyArch())
			return cr.Replicate(6, WithMode(Direct), WithSeed(31),
				WithPerRankNoise(true), WithConcurrency(workers))
		}},
	}
}

// TestSeedEngineGolden is the cross-PR equivalence gate for the DES
// hot-path work: the optimized engines must produce Result JSON that is
// byte-identical to the seed engine's, for deterministic and Monte
// Carlo modes, at worker counts 1, 4, and 8. The fixture was generated from
// the pre-optimization engine; regenerating it (-update) is only
// legitimate when simulation semantics intentionally change.
func TestSeedEngineGolden(t *testing.T) {
	golden := filepath.Join("testdata", "golden_results.json")
	got := map[string]json.RawMessage{}
	for _, tc := range goldenCases() {
		var ref []byte
		for _, workers := range []int{1, 4, 8} {
			data, err := json.MarshalIndent(tc.run(workers), "", " ")
			if err != nil {
				t.Fatalf("%s: marshal: %v", tc.name, err)
			}
			if ref == nil {
				ref = data
			} else if !bytes.Equal(ref, data) {
				t.Fatalf("%s: workers %d diverges from workers 1", tc.name, workers)
			}
		}
		got[tc.name] = ref
	}
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", " ")
		if err != nil {
			t.Fatalf("marshal fixture: %v", err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(golden, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want map[string]json.RawMessage
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Fatalf("golden case %q no longer produced", name)
		}
		// Compact strips the indentation MarshalIndent re-applies to
		// nested raw messages; number literals pass through untouched,
		// so value bytes still must match exactly.
		if !bytes.Equal(compactJSON(t, w), compactJSON(t, g)) {
			t.Errorf("%s: Result JSON diverges from the seed engine", name)
		}
	}
	if len(want) != len(got) {
		t.Fatalf("case count %d, golden has %d", len(got), len(want))
	}
}

func compactJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compact: %v", err)
	}
	return buf.Bytes()
}
