package besst

import (
	"strconv"
	"strings"
	"testing"
)

func TestItoaFormatsNonNegative(t *testing.T) {
	for _, n := range []int{0, 1, 9, 10, 42, 999, 1000, 123456, 1 << 30} {
		if got, want := itoa(n), strconv.Itoa(n); got != want {
			t.Errorf("itoa(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestItoaPanicsOnNegative(t *testing.T) {
	// The old implementation silently returned "" for negative input,
	// which would have produced colliding empty port names and a
	// baffling missing-link panic far from the cause.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("itoa(-3) did not panic")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "-3") {
			t.Fatalf("panic %v does not name the offending value", r)
		}
	}()
	itoa(-3)
}

func TestRankPort(t *testing.T) {
	if got := rankPort(17); got != "r17" {
		t.Errorf("rankPort(17) = %q, want %q", got, "r17")
	}
}
