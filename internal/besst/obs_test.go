package besst

import (
	"testing"

	"besst/internal/lulesh"
	"besst/internal/obs"
)

// TestInstrumentationDoesNotPerturbResults is the observability
// equivalence gate: attaching a recording TraceBuffer and a Collector
// to a Monte Carlo replication must leave every result byte-identical
// to the uninstrumented run, at one worker and at eight. Run under
// -race it also proves the shared trace buffer and collector tolerate
// concurrent trials.
func TestInstrumentationDoesNotPerturbResults(t *testing.T) {
	cases := []struct {
		name string
		mode Mode
	}{
		{name: "direct", mode: Direct},
		{name: "des", mode: DES},
	}
	const n = 8
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			app := lulesh.App(10, 8, 15, lulesh.ScenarioL1, cfg)
			arch := noisyArch()
			base := []Option{
				WithMode(tc.mode), WithPerRankNoise(true), WithSeed(97),
			}
			want := Replicate(app, arch, n, append(base[:len(base):len(base)], WithConcurrency(1))...)

			for _, workers := range []int{1, 8} {
				buf := obs.NewTraceBuffer(obs.DefaultTraceCap)
				col := obs.NewCollector()
				got := Replicate(app, arch, n, append(base[:len(base):len(base)],
					WithConcurrency(workers),
					WithTracer(obs.Tee(buf, col)),
					WithCollector(col))...)
				requireIdenticalResults(t, want, got, tc.name)

				snap := col.Snapshot("test")
				if len(snap.Trials) != n {
					t.Fatalf("collector saw %d trials, want %d", len(snap.Trials), n)
				}
				if tc.mode == DES {
					if buf.Len() == 0 {
						t.Fatal("DES run recorded no trace events")
					}
					if snap.EventsProcessed == 0 {
						t.Fatal("DES run reported zero events processed")
					}
				}
			}
		})
	}
}
