package besst

import "besst/internal/beo"

// This file is the pre-RunConfig configuration surface, kept as thin
// aliases so out-of-tree callers keep compiling. Nothing in this module
// calls it anymore; new code uses RunConfig, RunSpec, and the
// functional options.

// Options configures a simulation.
//
// Deprecated: use RunConfig (or the functional options of Run,
// Replicate, and CompiledRun.RunWith).
type Options struct {
	Mode         Mode
	MonteCarlo   bool
	Seed         uint64
	PerRankNoise bool
}

// Config converts the legacy Options to an equivalent RunConfig.
func (o Options) Config() RunConfig {
	return RunConfig{Mode: o.Mode, MonteCarlo: o.MonteCarlo, Seed: o.Seed, PerRankNoise: o.PerRankNoise}
}

// MCOption configures a Monte Carlo invocation.
//
// Deprecated: MCOption is an alias of Option.
type MCOption = Option

// Run executes one replication of the compiled program.
//
// Deprecated: use CompiledRun.RunWith.
func (cr *CompiledRun) Run(opt Options) *Result { return cr.RunWith(opt.Config()) }

// Simulate runs app on arch once and returns the result.
//
// Deprecated: use Run with functional options.
func Simulate(app *beo.AppBEO, arch *beo.ArchBEO, opt Options) *Result {
	return Run(app, arch, opt.option())
}

// MonteCarlo runs n replications with independent random streams.
//
// Deprecated: use Replicate with functional options.
func MonteCarlo(app *beo.AppBEO, arch *beo.ArchBEO, opt Options, n int, opts ...MCOption) []*Result {
	return Replicate(app, arch, n, append([]Option{opt.option()}, opts...)...)
}

// MonteCarlo runs n replications of the compiled program.
//
// Deprecated: use CompiledRun.Replicate.
func (cr *CompiledRun) MonteCarlo(opt Options, n int, opts ...MCOption) []*Result {
	return cr.Replicate(n, append([]Option{opt.option()}, opts...)...)
}

// option adapts the legacy struct to a functional option.
func (o Options) option() Option {
	return func(c *RunConfig) { *c = o.Config() }
}
