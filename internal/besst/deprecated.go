package besst

import "besst/internal/beo"

// This file holds the pre-RunConfig configuration surface. Everything
// here is a thin shim over runconfig.go, kept so existing callers keep
// compiling; new code should use RunConfig and the functional options.

// Options configures a simulation.
//
// Deprecated: use RunConfig (or the functional options of Run,
// Replicate, and CompiledRun.RunWith), which adds concurrency and
// instrumentation knobs in the same place.
type Options struct {
	// Mode selects DES (default) or Direct execution.
	Mode Mode
	// MonteCarlo, when true, draws from each model's sample
	// distribution (reproducing calibration variance); when false the
	// simulator uses deterministic Predict values.
	MonteCarlo bool
	// Seed drives all randomness.
	Seed uint64
	// PerRankNoise controls whether compute blocks draw independent
	// noise per rank (the step then completes at the slowest rank).
	// Ignored when MonteCarlo is false.
	PerRankNoise bool
}

// Config converts the legacy Options to an equivalent RunConfig.
func (o Options) Config() RunConfig {
	return RunConfig{
		Mode:         o.Mode,
		MonteCarlo:   o.MonteCarlo,
		Seed:         o.Seed,
		PerRankNoise: o.PerRankNoise,
	}
}

// MCOption configures a Monte Carlo invocation.
//
// Deprecated: MCOption is now an alias of Option; existing
// WithConcurrency call sites work unchanged with Replicate.
type MCOption = Option

// Run executes one replication of the compiled program.
//
// Deprecated: use CompiledRun.RunWith.
func (cr *CompiledRun) Run(opt Options) *Result {
	return cr.RunWith(opt.Config())
}

// Simulate runs app on arch once and returns the result.
//
// Deprecated: use Run with functional options.
func Simulate(app *beo.AppBEO, arch *beo.ArchBEO, opt Options) *Result {
	return Compile(app, arch).RunWith(opt.Config())
}

// MonteCarlo runs n replications with independent random streams and
// returns all results.
//
// Deprecated: use Replicate with functional options.
func MonteCarlo(app *beo.AppBEO, arch *beo.ArchBEO, opt Options, n int, opts ...MCOption) []*Result {
	if n <= 0 {
		panic("besst: non-positive Monte Carlo count")
	}
	return Compile(app, arch).MonteCarlo(opt, n, opts...)
}

// MonteCarlo runs n replications of the compiled program, reusing the
// compiled state across trials.
//
// Deprecated: use CompiledRun.Replicate.
func (cr *CompiledRun) MonteCarlo(opt Options, n int, opts ...MCOption) []*Result {
	base := opt.Config()
	all := append([]Option{func(c *RunConfig) { *c = base }}, opts...)
	return cr.Replicate(n, all...)
}
