// Package besst is the core of this reproduction: the BE-SST simulator.
//
// It executes an AppBEO's abstract instructions for every rank over the
// discrete-event engine (package des, the SST stand-in). Each Comp
// instruction polls the ArchBEO performance model bound to its op and
// advances that rank's clock by the predicted (or Monte Carlo sampled)
// time; Comm instructions synchronize the ranks through a collective
// coordinator charged with the network cost model; Ckpt instructions —
// the FT-aware extension — synchronize like a coordinated checkpoint
// and advance the global clock by one sampled checkpoint-instance time.
//
// Two execution modes are provided:
//
//   - DES mode is the faithful component-based simulation (one
//     component per rank plus a coordinator). It is used for the
//     validation-scale runs of the paper (up to 1331 ranks).
//   - Direct mode exploits the lockstep structure of BE programs to
//     evaluate the same semantics closed-form, step by step. It is
//     orders of magnitude faster and is used for mega-scale notional
//     predictions (Fig 1 extends to a million ranks).
//
// Both modes are deterministic for a given RunConfig.Seed.
package besst

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"

	"besst/internal/beo"
	"besst/internal/fti"
	"besst/internal/groundtruth"
	"besst/internal/network"
	"besst/internal/perfmodel"
	"besst/internal/stats"
)

// Mode selects the execution strategy.
type Mode int

// Execution modes.
const (
	// DES runs the full component-based discrete-event simulation.
	DES Mode = iota
	// Direct evaluates the lockstep program closed-form.
	Direct
)

// Result is the outcome of one simulated run.
type Result struct {
	// Makespan is the end-to-end runtime in seconds (slowest rank).
	Makespan float64
	// StepCompletions[i] is the simulated time at which top-level
	// loop iteration i completed (rank 0's clock) — the series
	// plotted in Figs 7-8.
	StepCompletions []float64
	// CkptTimes are the completion times of each checkpoint instance
	// (the black dots of Figs 7-8).
	CkptTimes []float64
	// Events is the number of discrete events processed (0 in Direct
	// mode).
	Events uint64
	// Breakdown decomposes rank 0's wall time by activity — the
	// overhead decomposition DSE reports need.
	Breakdown Breakdown
}

// Breakdown is the per-activity decomposition of a run's wall time
// (rank 0's perspective; synchronization waits land in Comm).
type Breakdown struct {
	ComputeSec float64 // Comp instructions
	CommSec    float64 // collectives incl. arrival waits
	CkptSec    float64 // checkpoint instances incl. coordination waits
}

// Payload serializes the result as the canonical trial payload: the
// exact bytes the checkpoint journals persist, shard replicas compare,
// and resumed or distributed campaigns merge. encoding/json emits
// shortest round-trippable float64 forms, so two processes computing
// the same trial produce the same bytes — keeping the encoding in one
// place makes "byte-identical" a single contract rather than a
// coincidence of call sites.
func (r *Result) Payload() (json.RawMessage, error) {
	return json.Marshal(r)
}

// Total returns the sum of the components.
func (b Breakdown) Total() float64 { return b.ComputeSec + b.CommSec + b.CkptSec }

// compiled instruction kinds.
type ckind int

const (
	ckComp ckind = iota
	ckComm
	ckCkpt
	ckStepEnd
)

type cinstr struct {
	kind      ckind
	op        string
	params    perfmodel.Params
	model     perfmodel.Model // ckComp/ckCkpt: resolved binding (Compile)
	pattern   beo.CommPattern
	bytes     int64
	neighbors int
	level     fti.Level
	step      int // ckStepEnd: completed top-level iteration index
	syncID    int // ckComm/ckCkpt: dynamic synchronization instance id
	// detCost is the instruction's deterministic cost, precomputed once
	// per CompiledRun: Predict(params) for ckComp/ckCkpt, the network
	// collective cost for ckComm. Both are pure functions of compiled
	// state, so hoisting them out of the per-rank per-trial hot loops
	// changes no output bytes. Monte Carlo Sample draws still happen
	// per trial; ckComm costs are deterministic in every mode.
	detCost float64
}

// compile expands the program into the flat dynamic instruction list
// shared (read-only) by all rank components. Top-level loop iterations
// get step-end markers for the Figs 7-8 time series.
func compile(app *beo.AppBEO) []cinstr {
	var out []cinstr
	syncID := 0
	var emit func(is []beo.Instr, iter int, topLevel bool)
	emit = func(is []beo.Instr, iter int, topLevel bool) {
		for _, in := range is {
			switch v := in.(type) {
			case beo.Comp:
				out = append(out, cinstr{kind: ckComp, op: v.Op, params: v.Params})
			case beo.Comm:
				out = append(out, cinstr{
					kind: ckComm, pattern: v.Pattern, bytes: v.Bytes,
					neighbors: v.Neighbors, syncID: syncID,
				})
				syncID++
			case beo.Ckpt:
				out = append(out, cinstr{
					kind: ckCkpt, op: v.Op, params: v.Params,
					level: v.Level, syncID: syncID,
				})
				syncID++
			case beo.Loop:
				for i := 0; i < v.Count; i++ {
					emit(v.Body, i, false)
					if topLevel {
						out = append(out, cinstr{kind: ckStepEnd, step: i})
					}
				}
			case beo.Periodic:
				if v.Period <= 0 {
					panic("besst: non-positive Periodic period")
				}
				if iter%v.Period == v.Offset%v.Period {
					emit(v.Body, iter, false)
				}
			default:
				panic(fmt.Sprintf("besst: unknown instruction %T", in))
			}
		}
	}
	emit(app.Program, 0, true)
	return out
}

// commCost returns the deterministic network cost of a communication
// instruction for `ranks` participants, using a shared network model
// (its topology-diameter cache makes repeated collective costs cheap).
func commCost(net *network.Model, c cinstr, ranks int) float64 {
	switch c.pattern {
	case beo.Barrier:
		return net.Barrier(ranks)
	case beo.Allreduce:
		return net.Allreduce(ranks, c.bytes)
	case beo.Broadcast:
		return net.Broadcast(ranks, c.bytes)
	case beo.Gather:
		return net.Gather(ranks, c.bytes)
	case beo.AllToAll:
		return net.AllToAll(ranks, c.bytes)
	case beo.Halo:
		return net.NearestNeighbor(c.neighbors, c.bytes)
	default:
		panic(fmt.Sprintf("besst: unknown comm pattern %v", c.pattern))
	}
}

// CompiledRun caches everything that is invariant across replications
// of one (app, arch) pair: validation, the flattened instruction list
// with its model bindings resolved, the shared network cost model
// (whose topology-diameter cache is expensive to warm), and the exact
// result-series lengths so per-trial slices are allocated once at full
// capacity instead of growing step by step.
//
// Compiling also forces every lazy model state (interpolation-table
// rebuilds, the network diameter) to materialize while still
// single-threaded, so concurrent replications only ever perform pure
// reads on the shared structures. A CompiledRun is therefore safe for
// use from multiple goroutines, provided the app, arch, and bound
// models are not mutated after Compile.
type CompiledRun struct {
	app   *beo.AppBEO
	arch  *beo.ArchBEO
	prog  []cinstr
	net   *network.Model
	steps int // number of ckStepEnd markers per run
	ckpts int // number of ckCkpt instances per run

	// syncIdx is the dense syncID -> prog index table for the DES
	// coordinator (syncIDs are assigned contiguously by compile), and
	// ports the matching precomputed coordinator->rank release port
	// names — both replace per-trial map builds and string formatting.
	// Indices rather than instruction copies: cinstr is large and half a
	// program can be sync points, so duplicating them would roughly
	// double the compile footprint that DSE sweeps pay per cell.
	syncIdx []int32
	ports   []string

	// desPool recycles fully wired DES simulations across trials: a
	// desSim is reset (engine rewound, RNGs reseeded, program counters
	// zeroed) before every run, so a pooled instance is byte-identical
	// to a freshly built one. Trials are pure functions of their
	// pre-drawn seeds, which keeps the pool safe under concurrent
	// replication.
	desPool sync.Pool
}

// Compile validates app against arch and builds the reusable run
// object shared by Simulate and Monte Carlo replication. It panics on
// validation failure, matching Simulate's historical contract; use
// CompileErr for a typed-error return.
func Compile(app *beo.AppBEO, arch *beo.ArchBEO) *CompiledRun {
	cr, err := CompileErr(app, arch)
	if err != nil {
		panic(err)
	}
	return cr
}

// newCompiledRun builds the run object from validated inputs.
func newCompiledRun(app *beo.AppBEO, arch *beo.ArchBEO) *CompiledRun {
	cr := &CompiledRun{
		app:  app,
		arch: arch,
		prog: compile(app),
		net:  arch.Machine.Network(),
	}
	// Loop expansion repeats the same (op, params) pair once per
	// iteration — often hundreds of copies sharing one params map — and
	// table-model Predict allocates interpolation scratch per call, so
	// memoize the deterministic cost per op. Entries are only reused when
	// the params compare exactly equal, which keeps the memo a pure
	// shortcut: every path still yields Predict(params) bit for bit.
	type costMemo struct {
		params perfmodel.Params
		cost   float64
	}
	memo := make(map[string]costMemo)
	for i := range cr.prog {
		c := &cr.prog[i]
		switch c.kind {
		case ckComp, ckCkpt:
			c.model = arch.ModelFor(c.op)
			// Precompute the deterministic cost. The first Predict per
			// model also triggers its lazy state (table rebuilds) while
			// still single-threaded; Predict and Sample are read-only
			// afterwards.
			if m, ok := memo[c.op]; ok && sameParams(m.params, c.params) {
				c.detCost = m.cost
			} else {
				c.detCost = c.model.Predict(c.params)
				memo[c.op] = costMemo{params: c.params, cost: c.detCost}
			}
			if c.kind == ckCkpt {
				cr.ckpts++
			}
		case ckComm:
			c.detCost = commCost(cr.net, *c, app.Ranks)
		case ckStepEnd:
			cr.steps++
		}
		if c.kind == ckComm || c.kind == ckCkpt {
			if c.syncID != len(cr.syncIdx) {
				panic(fmt.Sprintf("besst: non-contiguous syncID %d at instruction %d", c.syncID, i))
			}
			cr.syncIdx = append(cr.syncIdx, int32(i))
		}
	}
	cr.ports = make([]string, app.Ranks)
	for r := range cr.ports {
		cr.ports[r] = rankPort(r)
	}
	// Warm the diameter cache backing every collective cost.
	cr.net.Barrier(2)
	return cr
}

// sameParams reports whether two parameter maps are exactly equal. Used
// only to validate compile-time cost memo hits; exact (not approximate)
// float comparison is deliberate — any difference at all must force a
// fresh Predict so memoization stays invisible in the output bytes.
func sameParams(a, b perfmodel.Params) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		//lint:ignore floateq memo validity needs bit-exact comparison
		if bv, ok := b[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

// Makespans extracts the makespan distribution from replications.
func Makespans(rs []*Result) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = r.Makespan
	}
	return out
}

// simulateDirect evaluates the lockstep program closed-form. The hot
// loop indexes the shared compiled program in place (no per-iteration
// struct copy) and uses the result-series lengths counted at compile
// time so the per-trial slices never reallocate mid-run.
func simulateDirect(cr *CompiledRun, cfg RunConfig) *Result {
	rng := stats.NewRNG(cfg.Seed)
	res := &Result{
		StepCompletions: make([]float64, 0, cr.steps),
		CkptTimes:       make([]float64, 0, cr.ckpts),
	}
	ranks := cr.app.Ranks
	now := 0.0
	for i := range cr.prog {
		c := &cr.prog[i]
		switch c.kind {
		case ckComp:
			before := now
			if cfg.MonteCarlo {
				if cfg.PerRankNoise {
					// The step completes when the slowest rank's
					// draw does; reuse the shared extreme-value
					// helper for identical semantics with the
					// ground-truth emulator.
					mean := c.detCost
					sigma := modelSigma(c.model, c.params, mean, rng)
					now += groundtruth.StepMax(mean, sigma, ranks, rng)
				} else {
					now += c.model.Sample(c.params, rng)
				}
			} else {
				now += c.detCost
			}
			res.Breakdown.ComputeSec += now - before
		case ckComm:
			dt := c.detCost
			res.Breakdown.CommSec += dt
			now += dt
		case ckCkpt:
			var dt float64
			if cfg.MonteCarlo {
				dt = c.model.Sample(c.params, rng) // one coordinated draw
			} else {
				dt = c.detCost
			}
			res.Breakdown.CkptSec += dt
			now += dt
			res.CkptTimes = append(res.CkptTimes, now)
		case ckStepEnd:
			res.StepCompletions = append(res.StepCompletions, now)
		}
	}
	res.Makespan = now
	return res
}

// modelSigma estimates a model's relative spread at params by drawing a
// handful of samples. For symreg.Fitted this recovers ResidualSigma; for
// tables it reflects the stored sample spread. mean must be the model's
// Predict(p) value (callers pass the precomputed per-instruction cost).
func modelSigma(m perfmodel.Model, p perfmodel.Params, mean float64, rng *stats.RNG) float64 {
	if mean <= 0 {
		return 0
	}
	const probes = 8
	var ss float64
	for i := 0; i < probes; i++ {
		r := m.Sample(p, rng) / mean
		if r <= 0 {
			continue
		}
		l := math.Log(r)
		ss += l * l
	}
	return math.Sqrt(ss / probes)
}
