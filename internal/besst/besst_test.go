package besst

import (
	"math"
	"testing"

	"besst/internal/beo"
	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/perfmodel"
	"besst/internal/stats"
)

var cfg = fti.Config{GroupSize: 4, NodeSize: 2}

// constArch binds constant models for the LULESH ops.
func constArch(ts, l1, l2 float64) *beo.ArchBEO {
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	arch.Bind(lulesh.OpTimestep, perfmodel.Constant{Label: "ts", Seconds: ts})
	arch.Bind(lulesh.OpCkptL1, perfmodel.Constant{Label: "l1", Seconds: l1})
	arch.Bind(lulesh.OpCkptL2, perfmodel.Constant{Label: "l2", Seconds: l2})
	return arch
}

// commFree zeroes the network cost so makespans are exactly computable.
func commFree(arch *beo.ArchBEO) *beo.ArchBEO {
	m := *arch.Machine
	m.Net.InjectionOverhead = 0
	m.Net.HopLatency = 0
	m.Net.LinkBandwidth = 1e30
	m.Net.EagerLimit = 1 << 62
	arch.Machine = &m
	return arch
}

func TestCompileCounts(t *testing.T) {
	app := lulesh.App(10, 64, 200, lulesh.ScenarioL1, cfg)
	prog := compile(app)
	// Per step: comp + halo + allreduce (+ ckpt on 5 steps) + stepEnd.
	want := 200*4 + 5
	if len(prog) != want {
		t.Fatalf("compiled length %d, want %d", len(prog), want)
	}
	// Sync ids must be unique and dense.
	seen := map[int]bool{}
	for _, c := range prog {
		if c.kind == ckComm || c.kind == ckCkpt {
			if seen[c.syncID] {
				t.Fatalf("duplicate sync id %d", c.syncID)
			}
			seen[c.syncID] = true
		}
	}
	if len(seen) != 200*2+5 {
		t.Fatalf("sync instances = %d", len(seen))
	}
}

func TestDESExactMakespanConstModels(t *testing.T) {
	app := lulesh.App(10, 8, 40, lulesh.ScenarioL1, cfg)
	arch := commFree(constArch(0.01, 0.2, 0))
	res := Run(app, arch, WithMode(DES))
	// 40 steps x 10ms + 1 checkpoint x 200ms.
	want := 40*0.01 + 0.2
	if math.Abs(res.Makespan-want) > 1e-9 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Events == 0 {
		t.Fatal("DES mode should process events")
	}
}

func TestDirectMatchesDESDeterministic(t *testing.T) {
	app := lulesh.App(15, 64, 80, lulesh.ScenarioL1L2, cfg)
	arch := constArch(0.01, 0.1, 0.15)
	des := Run(app, arch, WithMode(DES))
	dir := Run(app, arch, WithMode(Direct))
	if math.Abs(des.Makespan-dir.Makespan) > 1e-9*des.Makespan {
		t.Fatalf("DES %v != Direct %v", des.Makespan, dir.Makespan)
	}
	if len(des.StepCompletions) != len(dir.StepCompletions) {
		t.Fatal("step series length mismatch")
	}
	for i := range des.StepCompletions {
		if math.Abs(des.StepCompletions[i]-dir.StepCompletions[i]) > 1e-9 {
			t.Fatalf("step %d: %v vs %v", i, des.StepCompletions[i], dir.StepCompletions[i])
		}
	}
	if len(des.CkptTimes) != len(dir.CkptTimes) {
		t.Fatal("checkpoint marker mismatch")
	}
}

func TestStepCompletionsMonotone(t *testing.T) {
	app := lulesh.App(10, 8, 50, lulesh.ScenarioL1, cfg)
	arch := constArch(0.01, 0.1, 0)
	res := Run(app, arch, WithMode(DES))
	if len(res.StepCompletions) != 50 {
		t.Fatalf("steps recorded = %d", len(res.StepCompletions))
	}
	for i := 1; i < len(res.StepCompletions); i++ {
		if res.StepCompletions[i] <= res.StepCompletions[i-1] {
			t.Fatalf("non-monotone at %d", i)
		}
	}
}

func TestCkptTimesCadence(t *testing.T) {
	app := lulesh.App(10, 8, 200, lulesh.ScenarioL1, cfg)
	arch := constArch(0.01, 0.5, 0)
	res := Run(app, arch, WithMode(DES))
	if len(res.CkptTimes) != 5 {
		t.Fatalf("checkpoint instances = %d, want 5", len(res.CkptTimes))
	}
	// Checkpoints land after steps 40, 80, ...: each ckpt time must
	// exceed the 39th step completion etc.
	if res.CkptTimes[0] <= res.StepCompletions[38] {
		t.Fatal("first checkpoint too early")
	}
	if res.CkptTimes[0] > res.StepCompletions[39]+1e-9 {
		t.Fatal("first checkpoint after step 40 completion")
	}
}

func TestScenarioOverheadOrdering(t *testing.T) {
	arch := constArch(0.01, 0.1, 0.12)
	total := func(sc lulesh.Scenario) float64 {
		app := lulesh.App(10, 8, 200, sc, cfg)
		return Run(app, arch, WithMode(DES)).Makespan
	}
	noFT := total(lulesh.ScenarioNoFT)
	l1 := total(lulesh.ScenarioL1)
	l12 := total(lulesh.ScenarioL1L2)
	if !(noFT < l1 && l1 < l12) {
		t.Fatalf("ordering violated: %v %v %v", noFT, l1, l12)
	}
}

func TestMonteCarloDeterministicBySeed(t *testing.T) {
	app := lulesh.App(10, 8, 20, lulesh.ScenarioL1, cfg)
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	arch.Bind(lulesh.OpTimestep, perfmodel.Func{Label: "ts", F: func(perfmodel.Params) float64 { return 0.01 }, NoiseSigma: 0.1})
	arch.Bind(lulesh.OpCkptL1, perfmodel.Func{Label: "l1", F: func(perfmodel.Params) float64 { return 0.1 }, NoiseSigma: 0.2})
	a := Replicate(app, arch, 4, WithMode(DES), WithSeed(5))
	b := Replicate(app, arch, 4, WithMode(DES), WithSeed(5))
	for i := range a {
		if a[i].Makespan != b[i].Makespan {
			t.Fatal("MC not reproducible for same seed")
		}
	}
	if a[0].Makespan == a[1].Makespan {
		t.Fatal("MC replications identical — streams not independent")
	}
}

func TestMonteCarloVarianceReflectsNoise(t *testing.T) {
	app := lulesh.App(10, 8, 20, lulesh.ScenarioNoFT, cfg)
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	arch.Bind(lulesh.OpTimestep, perfmodel.Func{Label: "ts", F: func(perfmodel.Params) float64 { return 0.01 }, NoiseSigma: 0.1})
	runs := Replicate(app, arch, 30, WithMode(DES), WithSeed(1))
	s := stats.Summarize(Makespans(runs))
	if s.Std == 0 {
		t.Fatal("MC makespans carry no variance")
	}
	if s.Std/s.Mean > 0.1 {
		t.Fatalf("relative spread %v implausibly large", s.Std/s.Mean)
	}
}

func TestPerRankNoiseInflatesDirectMakespan(t *testing.T) {
	app := lulesh.App(10, 1000, 20, lulesh.ScenarioNoFT, cfg)
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	arch.Bind(lulesh.OpTimestep, perfmodel.Func{Label: "ts", F: func(perfmodel.Params) float64 { return 0.01 }, NoiseSigma: 0.05})
	det := Run(app, arch, WithMode(Direct))
	mc := Replicate(app, arch, 10, WithMode(Direct), WithPerRankNoise(true), WithSeed(2))
	mean := stats.Mean(Makespans(mc))
	// Max over 1000 lognormal(0,0.05) draws is ~15-20% above mean.
	if mean < 1.05*det.Makespan {
		t.Fatalf("per-rank noise did not inflate makespan: %v vs %v", mean, det.Makespan)
	}
}

func TestDESPerRankStragglersInflateToo(t *testing.T) {
	app := lulesh.App(10, 64, 20, lulesh.ScenarioNoFT, cfg)
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	arch.Bind(lulesh.OpTimestep, perfmodel.Func{Label: "ts", F: func(perfmodel.Params) float64 { return 0.01 }, NoiseSigma: 0.05})
	det := Run(app, arch, WithMode(DES))
	mc := Replicate(app, arch, 10, WithMode(DES), WithSeed(3))
	mean := stats.Mean(Makespans(mc))
	if mean <= det.Makespan {
		t.Fatalf("DES straggler effect missing: %v vs %v", mean, det.Makespan)
	}
}

func TestSimulatePanicsOnUnboundModel(t *testing.T) {
	app := lulesh.App(10, 8, 5, lulesh.ScenarioL1, cfg)
	arch := beo.NewArchBEO(machine.Quartz(), 2) // nothing bound
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Run(app, arch)
}

func TestMonteCarloPanicsOnBadN(t *testing.T) {
	app := lulesh.App(10, 8, 5, lulesh.ScenarioNoFT, cfg)
	arch := constArch(1, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Replicate(app, arch, 0)
}

func TestCommCostPatterns(t *testing.T) {
	net := machine.Quartz().Network()
	for _, p := range []beo.CommPattern{beo.Barrier, beo.Allreduce, beo.Broadcast, beo.Gather, beo.AllToAll} {
		c := cinstr{kind: ckComm, pattern: p, bytes: 1 << 16}
		if got := commCost(net, c, 64); got <= 0 {
			t.Fatalf("pattern %v cost %v", p, got)
		}
	}
	halo := cinstr{kind: ckComm, pattern: beo.Halo, bytes: 1 << 16, neighbors: 6}
	if commCost(net, halo, 64) <= 0 {
		t.Fatal("halo cost should be positive")
	}
}

func TestModelSigmaRecoversNoise(t *testing.T) {
	m := perfmodel.Func{Label: "f", F: func(perfmodel.Params) float64 { return 1 }, NoiseSigma: 0.2}
	rng := stats.NewRNG(4)
	got := modelSigma(m, perfmodel.Params{}, m.Predict(perfmodel.Params{}), rng)
	if got < 0.05 || got > 0.5 {
		t.Fatalf("sigma estimate %v far from 0.2", got)
	}
	c := perfmodel.Constant{Seconds: 1}
	if s := modelSigma(c, perfmodel.Params{}, c.Predict(perfmodel.Params{}), rng); s != 0 {
		t.Fatalf("constant model sigma = %v", s)
	}
}

func TestBreakdownDirectSumsToMakespan(t *testing.T) {
	app := lulesh.App(10, 8, 50, lulesh.ScenarioL1, cfg)
	arch := commFree(constArch(0.01, 0.1, 0))
	res := Run(app, arch, WithMode(Direct))
	if math.Abs(res.Breakdown.Total()-res.Makespan) > 1e-9 {
		t.Fatalf("breakdown %v != makespan %v", res.Breakdown.Total(), res.Makespan)
	}
	if math.Abs(res.Breakdown.ComputeSec-0.5) > 1e-9 { // 50 x 10ms
		t.Fatalf("compute = %v", res.Breakdown.ComputeSec)
	}
	if math.Abs(res.Breakdown.CkptSec-0.1) > 1e-9 { // 1 instance
		t.Fatalf("ckpt = %v", res.Breakdown.CkptSec)
	}
}

func TestBreakdownDESSumsToMakespan(t *testing.T) {
	app := lulesh.App(10, 8, 50, lulesh.ScenarioL1L2, cfg)
	arch := constArch(0.01, 0.1, 0.15)
	res := Run(app, arch, WithMode(DES))
	// Rank 0's buckets must tile its wall time exactly in the
	// deterministic case (no straggler waits with constant models).
	if math.Abs(res.Breakdown.Total()-res.Makespan) > 1e-6*res.Makespan {
		t.Fatalf("breakdown %v != makespan %v", res.Breakdown.Total(), res.Makespan)
	}
	if math.Abs(res.Breakdown.CkptSec-0.25) > 1e-9 { // one L1 + one L2
		t.Fatalf("ckpt = %v", res.Breakdown.CkptSec)
	}
	if res.Breakdown.CommSec <= 0 {
		t.Fatal("comm bucket empty")
	}
}

func TestBreakdownDESCapturesStragglerWaits(t *testing.T) {
	// With per-rank noise, rank 0 waits for stragglers at collectives;
	// those waits must land in the comm/ckpt buckets, keeping the
	// total equal to the makespan-ish wall of rank 0.
	app := lulesh.App(10, 8, 30, lulesh.ScenarioL1, cfg)
	arch := beo.NewArchBEO(machine.Quartz(), 2)
	arch.Bind(lulesh.OpTimestep, perfmodel.Func{Label: "ts", F: func(perfmodel.Params) float64 { return 0.01 }, NoiseSigma: 0.2})
	arch.Bind(lulesh.OpCkptL1, perfmodel.Constant{Label: "l1", Seconds: 0.1})
	res := Run(app, arch, WithMode(DES), WithMonteCarlo(true), WithSeed(9))
	if res.Breakdown.CommSec <= 0 {
		t.Fatal("straggler waits not accounted")
	}
	// Rank 0's own compute is ~30x10ms on average but each draw varies;
	// total buckets must not exceed the makespan.
	if res.Breakdown.Total() > res.Makespan+1e-9 {
		t.Fatalf("breakdown %v exceeds makespan %v", res.Breakdown.Total(), res.Makespan)
	}
}
