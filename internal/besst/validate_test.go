package besst

import (
	"errors"
	"testing"

	"besst/internal/beo"
	"besst/internal/lulesh"
	"besst/internal/machine"
)

// TestReplicateErrTypedValidation pins the typed-error contract of the
// Err-suffixed entry points: bad campaign inputs come back as
// *ConfigError naming the offending field instead of panicking deep in
// the run.
func TestReplicateErrTypedValidation(t *testing.T) {
	app := lulesh.App(10, 8, 5, lulesh.ScenarioNoFT, cfg)
	arch := constArch(1, 1, 1)

	cases := []struct {
		name  string
		field string
		run   func() error
	}{
		{"zero trials", "trials", func() error {
			_, err := ReplicateErr(app, arch, 0)
			return err
		}},
		{"negative trials", "trials", func() error {
			_, err := ReplicateErr(app, arch, -3)
			return err
		}},
		{"nil app", "app", func() error {
			_, err := ReplicateErr(nil, arch, 4)
			return err
		}},
		{"nil arch", "arch", func() error {
			_, err := ReplicateErr(app, nil, 4)
			return err
		}},
		{"nil app compile", "app", func() error {
			_, err := CompileErr(nil, arch)
			return err
		}},
		{"absurd workers", "workers", func() error {
			_, err := ReplicateErr(app, arch, 4, WithConcurrency(MaxWorkers+1))
			return err
		}},
		{"unknown mode", "mode", func() error {
			_, err := ReplicateErr(app, arch, 4, WithMode(Mode(99)))
			return err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			var ce *ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("err = %v, want *ConfigError", err)
			}
			if ce.Field != tc.field {
				t.Fatalf("field = %q, want %q (err: %v)", ce.Field, tc.field, ce)
			}
		})
	}
}

// TestCompileErrRejectsMismatchedArch checks that app/arch validation
// failures surface as wrapped errors rather than panics.
func TestCompileErrRejectsMismatchedArch(t *testing.T) {
	app := lulesh.App(10, 8, 5, lulesh.ScenarioL1, cfg)
	// An arch with no model bindings at all cannot satisfy the app's
	// ops, so validation must fail.
	if _, err := CompileErr(app, beo.NewArchBEO(machine.Quartz(), 2)); err == nil {
		t.Fatal("CompileErr accepted an arch with no model bindings")
	}
}

// TestPanicWrappersCarryTypedError checks the legacy panicking entry
// points now panic with the same typed error, so existing recover-based
// callers can classify what went wrong.
func TestPanicWrappersCarryTypedError(t *testing.T) {
	app := lulesh.App(10, 8, 5, lulesh.ScenarioNoFT, cfg)
	defer func() {
		r := recover()
		err, ok := r.(error)
		if !ok {
			t.Fatalf("panic value %v is not an error", r)
		}
		var ce *ConfigError
		if !errors.As(err, &ce) || ce.Field != "trials" {
			t.Fatalf("panic error = %v, want *ConfigError on trials", err)
		}
	}()
	Replicate(app, constArch(1, 1, 1), 0)
}

// TestTrialRunnerMatchesReplicate checks the exposed per-trial executor
// reproduces Replicate exactly, in any call order — the property the
// resume path depends on.
func TestTrialRunnerMatchesReplicate(t *testing.T) {
	app := lulesh.App(10, 8, 20, lulesh.ScenarioL1, cfg)
	arch := noisyArch()
	cr := Compile(app, arch)
	const n = 8
	want := cr.Replicate(n, WithMode(Direct), WithSeed(11), WithConcurrency(1))

	run, err := cr.TrialRunner(n, WithMode(Direct), WithSeed(11))
	if err != nil {
		t.Fatalf("TrialRunner: %v", err)
	}
	got := make([]*Result, n)
	// Reverse order: trial results must depend only on the index.
	for i := n - 1; i >= 0; i-- {
		got[i] = run(i)
	}
	requireIdenticalResults(t, want, got, "trial runner")
}
