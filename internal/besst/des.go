package besst

import (
	"besst/internal/beo"
	"besst/internal/des"
	"besst/internal/network"
	"besst/internal/stats"
)

// DES-mode implementation: one component per rank plus a collective
// coordinator. Every Comm/Ckpt instruction is a synchronization point:
// ranks report arrival to the coordinator; when the last rank arrives
// the coordinator charges the communication (or checkpoint-instance)
// cost and releases everyone.

// payloads
type advanceMsg struct{}
type arriveMsg struct {
	syncID int
	rank   int
}
type releaseMsg struct{ syncID int }

const (
	portCoord = "coord" // rank -> coordinator
)

// rankComp executes the compiled program for one rank.
type rankComp struct {
	sim  *desSim
	rank int
	pc   int
	rng  *stats.RNG
	// breakdown accounting (rank 0 only): the sync instruction rank 0
	// is currently blocked on, and when it arrived there.
	waitKind  ckind
	waitSince des.Time
	waiting   bool
}

// coordComp synchronizes collective instructions.
type coordComp struct {
	sim     *desSim
	pending map[int]int      // syncID -> arrivals so far
	arrived map[int]des.Time // syncID -> latest arrival time
	rng     *stats.RNG
}

type desSim struct {
	app       *beo.AppBEO
	arch      *beo.ArchBEO
	net       *network.Model
	prog      []cinstr
	syncInstr map[int]cinstr // syncID -> its Comm/Ckpt instruction
	cfg       RunConfig
	eng       *des.Engine
	res       *Result
	ranks     []des.ComponentID
	coord     des.ComponentID
	ends      []des.Time // per-rank completion time
}

// simulateDES runs one DES-mode replication. stream tags tracer hooks
// so trials sharing one tracer stay distinguishable (Replicate passes
// the trial index).
func simulateDES(cr *CompiledRun, cfg RunConfig, stream int) *Result {
	master := stats.NewRNG(cfg.Seed)
	app := cr.app
	s := &desSim{
		app:       app,
		arch:      cr.arch,
		net:       cr.net,
		prog:      cr.prog,
		syncInstr: map[int]cinstr{},
		cfg:       cfg,
		eng:       des.NewEngine(),
		res: &Result{
			StepCompletions: make([]float64, 0, cr.steps),
			CkptTimes:       make([]float64, 0, cr.ckpts),
		},
		ends: make([]des.Time, app.Ranks),
	}
	for _, c := range cr.prog {
		if c.kind == ckComm || c.kind == ckCkpt {
			s.syncInstr[c.syncID] = c
		}
	}
	coord := &coordComp{
		sim:     s,
		pending: map[int]int{},
		arrived: map[int]des.Time{},
		rng:     master.Split(),
	}
	s.coord = s.eng.Register(coord)
	for r := 0; r < app.Ranks; r++ {
		rc := &rankComp{sim: s, rank: r, rng: master.Split()}
		id := s.eng.Register(rc)
		s.ranks = append(s.ranks, id)
		s.eng.Connect(id, portCoord, s.coord, "in", 0)
		s.eng.Connect(s.coord, rankPort(r), id, "release", 0)
	}
	if cfg.Tracer != nil {
		s.eng.SetTracer(cfg.Tracer, stream)
	}
	for r := 0; r < app.Ranks; r++ {
		s.eng.ScheduleAt(0, s.ranks[r], advanceMsg{})
	}
	s.eng.Run(0)
	if cfg.Collector != nil {
		cfg.Collector.EngineTotals(s.eng.Processed(), s.eng.PeakQueueDepth())
	}
	// Makespan: the slowest rank's completion.
	var max des.Time
	for _, t := range s.ends {
		if t > max {
			max = t
		}
	}
	s.res.Makespan = max.Seconds()
	s.res.Events = s.eng.Processed()
	return s.res
}

func rankPort(rank int) string {
	// Small allocation-free-ish formatting is unnecessary here: ports
	// are wired once at construction.
	return "r" + itoa(rank)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// HandleEvent advances the rank's program until it blocks on a
// collective or schedules compute time.
func (rc *rankComp) HandleEvent(ctx *des.Context, ev des.Event) {
	s := rc.sim
	if rc.rank == 0 && rc.waiting {
		// A release just arrived: charge the blocked interval (wait
		// for stragglers + the collective/checkpoint cost itself) to
		// the right bucket.
		elapsed := (ctx.Now() - rc.waitSince).Seconds()
		if rc.waitKind == ckCkpt {
			s.res.Breakdown.CkptSec += elapsed
		} else {
			s.res.Breakdown.CommSec += elapsed
		}
		rc.waiting = false
	}
	for rc.pc < len(s.prog) {
		c := s.prog[rc.pc]
		switch c.kind {
		case ckComp:
			rc.pc++
			var dt float64
			if s.cfg.MonteCarlo {
				dt = c.model.Sample(c.params, rc.rng)
			} else {
				dt = c.model.Predict(c.params)
			}
			if rc.rank == 0 {
				s.res.Breakdown.ComputeSec += dt
			}
			ctx.ScheduleSelf(des.FromSeconds(dt), advanceMsg{})
			return
		case ckComm, ckCkpt:
			rc.pc++
			if rc.rank == 0 {
				rc.waiting = true
				rc.waitKind = c.kind
				rc.waitSince = ctx.Now()
			}
			ctx.Send(portCoord, 0, arriveMsg{syncID: c.syncID, rank: rc.rank})
			return // resume on releaseMsg
		case ckStepEnd:
			rc.pc++
			if rc.rank == 0 {
				s.res.StepCompletions = append(s.res.StepCompletions, ctx.Now().Seconds())
			}
		}
	}
	s.ends[rc.rank] = ctx.Now()
}

// HandleEvent gathers arrivals and releases ranks when complete.
func (cc *coordComp) HandleEvent(ctx *des.Context, ev des.Event) {
	msg, ok := ev.Payload.(arriveMsg)
	if !ok {
		return
	}
	s := cc.sim
	cc.pending[msg.syncID]++
	if t := ctx.Now(); t > cc.arrived[msg.syncID] {
		cc.arrived[msg.syncID] = t
	}
	if cc.pending[msg.syncID] < s.app.Ranks {
		return
	}
	delete(cc.pending, msg.syncID)
	delete(cc.arrived, msg.syncID)

	// All ranks arrived (the coordinator's clock is already at the
	// latest arrival, since events are processed in time order).
	c := s.syncInstr[msg.syncID]
	var cost float64
	switch c.kind {
	case ckComm:
		cost = commCost(s.net, c, s.app.Ranks)
	case ckCkpt:
		if s.cfg.MonteCarlo {
			cost = c.model.Sample(c.params, cc.rng) // one coordinated draw
		} else {
			cost = c.model.Predict(c.params)
		}
		s.res.CkptTimes = append(s.res.CkptTimes, ctx.Now().Seconds()+cost)
	}
	extra := des.FromSeconds(cost)
	for r := 0; r < s.app.Ranks; r++ {
		ctx.Send(rankPort(r), extra, releaseMsg{syncID: msg.syncID})
	}
}
