package besst

import (
	"fmt"

	"besst/internal/des"
	"besst/internal/stats"
)

// DES-mode implementation: one component per rank plus a collective
// coordinator. Every Comm/Ckpt instruction is a synchronization point:
// ranks report arrival to the coordinator; when the last rank arrives
// the coordinator charges the communication (or checkpoint-instance)
// cost and releases everyone.

// Payload kinds on des.Payload.Kind. The protocol encodes entirely into
// the typed fields — pkArrive carries (syncID, rank) in (A, B) and
// pkRelease carries syncID in A — so the steady-state event path never
// boxes a payload.
const (
	pkAdvance int32 = iota + 1 // resume a rank's program (self event or release)
	pkArrive                   // rank -> coordinator: A = syncID, B = rank
	pkRelease                  // coordinator -> rank: A = syncID
)

const (
	portCoord = "coord" // rank -> coordinator
)

// rankComp executes the compiled program for one rank.
type rankComp struct {
	sim  *desSim
	rank int
	pc   int
	rng  *stats.RNG
	// breakdown accounting (rank 0 only): the sync instruction rank 0
	// is currently blocked on, and when it arrived there.
	waitKind  ckind
	waitSince des.Time
	waiting   bool
}

// coordComp synchronizes collective instructions. pending is indexed
// directly by syncID (compile assigns them contiguously); each slot is
// zeroed again when its collective completes, so the slice needs no
// per-trial clearing — a finished run leaves it all-zero. The seed
// engine also kept a latest-arrival map, but events arrive in time
// order so the coordinator's clock already is that maximum; the map
// was dead state and is gone.
type coordComp struct {
	sim     *desSim
	pending []int32 // syncID -> arrivals so far
	rng     *stats.RNG
}

// desSim is one fully wired DES simulation of a CompiledRun. Engines,
// components, links, and RNG allocations are built once and recycled
// through CompiledRun.desPool; reset rewinds everything per trial.
type desSim struct {
	cr     *CompiledRun
	cfg    RunConfig
	eng    *des.Engine
	res    *Result
	ranks  []des.ComponentID
	coord  des.ComponentID
	coordC *coordComp
	rankC  []*rankComp
	ends   []des.Time // per-rank completion time
}

// newDesSim builds and wires a simulation for cr. All per-trial state
// is set by reset.
func newDesSim(cr *CompiledRun) *desSim {
	s := &desSim{
		cr:    cr,
		eng:   des.NewEngine(),
		ranks: make([]des.ComponentID, 0, cr.app.Ranks),
		rankC: make([]*rankComp, 0, cr.app.Ranks),
		ends:  make([]des.Time, cr.app.Ranks),
	}
	s.coordC = &coordComp{
		sim:     s,
		pending: make([]int32, len(cr.syncIdx)),
		rng:     new(stats.RNG),
	}
	s.coord = s.eng.Register(s.coordC)
	for r := 0; r < cr.app.Ranks; r++ {
		rc := &rankComp{sim: s, rank: r, rng: new(stats.RNG)}
		id := s.eng.Register(rc)
		s.ranks = append(s.ranks, id)
		s.rankC = append(s.rankC, rc)
		s.eng.Connect(id, portCoord, s.coord, "in", 0)
		s.eng.Connect(s.coord, cr.ports[r], id, "release", 0)
	}
	return s
}

// reset rewinds the simulation for one trial: the engine goes back to
// time zero keeping its queue capacity, every RNG is reseeded in place
// to the exact stream a fresh build would draw (coordinator first, then
// ranks in order — the seed engine's Split order), and per-rank state
// is zeroed. The result object is fresh per trial since callers keep it.
func (s *desSim) reset(cfg RunConfig, stream int) {
	s.cfg = cfg
	var master stats.RNG
	master.Reseed(cfg.Seed)
	master.SplitTo(s.coordC.rng)
	for _, rc := range s.rankC {
		master.SplitTo(rc.rng)
		rc.pc = 0
		rc.waiting = false
		rc.waitKind = 0
		rc.waitSince = 0
	}
	for i := range s.ends {
		s.ends[i] = 0
	}
	s.res = &Result{
		StepCompletions: make([]float64, 0, s.cr.steps),
		CkptTimes:       make([]float64, 0, s.cr.ckpts),
	}
	s.eng.Reset()
	s.eng.SetTracer(cfg.Tracer, stream)
}

// simulateDES runs one DES-mode replication. stream tags tracer hooks
// so trials sharing one tracer stay distinguishable (Replicate passes
// the trial index).
func simulateDES(cr *CompiledRun, cfg RunConfig, stream int) *Result {
	s, _ := cr.desPool.Get().(*desSim)
	if s == nil {
		s = newDesSim(cr)
	}
	s.reset(cfg, stream)
	for r := 0; r < cr.app.Ranks; r++ {
		s.eng.ScheduleAt(0, s.ranks[r], des.Payload{Kind: pkAdvance})
	}
	s.eng.Run(0)
	if cfg.Collector != nil {
		cfg.Collector.EngineTotals(s.eng.Processed(), s.eng.PeakQueueDepth())
	}
	// Makespan: the slowest rank's completion.
	var max des.Time
	for _, t := range s.ends {
		if t > max {
			max = t
		}
	}
	res := s.res
	res.Makespan = max.Seconds()
	res.Events = s.eng.Processed()
	// Only a run that completed normally goes back to the pool: a panic
	// mid-run would leave dirty coordinator slots and queued events.
	s.res = nil
	cr.desPool.Put(s)
	return res
}

func rankPort(rank int) string {
	// Port names are wired once per CompiledRun (see CompiledRun.ports),
	// never on the event path.
	return "r" + itoa(rank)
}

func itoa(n int) string {
	if n < 0 {
		// A negative rank index can only come from corrupted wiring
		// logic; an empty or garbled port name would surface much later
		// as a baffling missing-link panic, so fail at the source.
		panic(fmt.Sprintf("besst: itoa on negative value %d", n))
	}
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// HandleEvent advances the rank's program until it blocks on a
// collective or schedules compute time.
func (rc *rankComp) HandleEvent(ctx *des.Context, ev des.Event) {
	s := rc.sim
	prog := s.cr.prog
	if rc.rank == 0 && rc.waiting {
		// A release just arrived: charge the blocked interval (wait
		// for stragglers + the collective/checkpoint cost itself) to
		// the right bucket.
		elapsed := (ctx.Now() - rc.waitSince).Seconds()
		if rc.waitKind == ckCkpt {
			s.res.Breakdown.CkptSec += elapsed
		} else {
			s.res.Breakdown.CommSec += elapsed
		}
		rc.waiting = false
	}
	for rc.pc < len(prog) {
		c := &prog[rc.pc]
		switch c.kind {
		case ckComp:
			rc.pc++
			var dt float64
			if s.cfg.MonteCarlo {
				dt = c.model.Sample(c.params, rc.rng)
			} else {
				dt = c.detCost
			}
			if rc.rank == 0 {
				s.res.Breakdown.ComputeSec += dt
			}
			ctx.ScheduleSelf(des.FromSeconds(dt), des.Payload{Kind: pkAdvance})
			return
		case ckComm, ckCkpt:
			rc.pc++
			if rc.rank == 0 {
				rc.waiting = true
				rc.waitKind = c.kind
				rc.waitSince = ctx.Now()
			}
			ctx.Send(portCoord, 0, des.Payload{
				Kind: pkArrive, A: int64(c.syncID), B: int64(rc.rank),
			})
			return // resume on release
		case ckStepEnd:
			rc.pc++
			if rc.rank == 0 {
				s.res.StepCompletions = append(s.res.StepCompletions, ctx.Now().Seconds())
			}
		}
	}
	s.ends[rc.rank] = ctx.Now()
}

// HandleEvent gathers arrivals and releases ranks when complete.
func (cc *coordComp) HandleEvent(ctx *des.Context, ev des.Event) {
	p := ev.Payload
	if p.Kind != pkArrive {
		// Anything but an arrival reaching the coordinator means the
		// wiring or protocol is broken; match the engine's policy that
		// wiring errors are construction bugs, not runtime conditions.
		panic(fmt.Sprintf(
			"besst: coordinator received payload kind %d (data %v) on port %q at %v; only arrivals are wired here",
			p.Kind, p.Data, ev.SrcPort, ctx.Now()))
	}
	s := cc.sim
	syncID := int(p.A)
	cc.pending[syncID]++
	if int(cc.pending[syncID]) < s.cr.app.Ranks {
		return
	}
	cc.pending[syncID] = 0 // slot reuse: all-zero again between trials

	// All ranks arrived (the coordinator's clock is already at the
	// latest arrival, since events are processed in time order).
	c := &s.cr.prog[s.cr.syncIdx[syncID]]
	var cost float64
	switch c.kind {
	case ckComm:
		cost = c.detCost
	case ckCkpt:
		if s.cfg.MonteCarlo {
			cost = c.model.Sample(c.params, cc.rng) // one coordinated draw
		} else {
			cost = c.detCost
		}
		s.res.CkptTimes = append(s.res.CkptTimes, ctx.Now().Seconds()+cost)
	}
	extra := des.FromSeconds(cost)
	release := des.Payload{Kind: pkRelease, A: p.A}
	for r := 0; r < s.cr.app.Ranks; r++ {
		ctx.Send(s.cr.ports[r], extra, release)
	}
}
