package besst

import "fmt"

// SpecSchemaVersion is bumped whenever RunSpec's serialized layout
// changes incompatibly, so services and tooling can reject documents
// they do not understand (the gem5-style standardization of the
// request/result schema).
const SpecSchemaVersion = 1

// RunSpec is the canonical serialized form of RunConfig: the one
// schema_version-ed struct shared by CLI -json output and the besst-serve
// HTTP API. It carries exactly the fields that influence result bytes —
// instrumentation (Tracer, Collector) is attached at execution time and
// never serialized. A zero Seed means "unpinned": services derive the
// effective seed deterministically from the request hash so every
// response stays byte-reproducible.
type RunSpec struct {
	SchemaVersion int `json:"schema_version"`
	// Mode is the execution mode name: "des" (default) or "direct".
	Mode string `json:"mode,omitempty"`
	// MonteCarlo enables sampling from each model's distribution.
	MonteCarlo bool `json:"monte_carlo,omitempty"`
	// Seed is the master random seed (0: derive from the request hash).
	Seed uint64 `json:"seed,omitempty"`
	// PerRankNoise enables independent per-rank compute noise.
	PerRankNoise bool `json:"per_rank_noise,omitempty"`
	// Workers bounds replication concurrency. It is part of the spec
	// because it is part of RunConfig, but results are byte-identical
	// for every value.
	Workers int `json:"workers,omitempty"`
}

// String names the mode for serialization and CLI flags.
func (m Mode) String() string {
	switch m {
	case DES:
		return "des"
	case Direct:
		return "direct"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode resolves a mode name ("des" or "direct"; "" selects DES,
// the zero value) to its Mode, with a *ConfigError for anything else.
func ParseMode(name string) (Mode, error) {
	switch name {
	case "des", "":
		return DES, nil
	case "direct":
		return Direct, nil
	default:
		return DES, &ConfigError{Field: "mode", Reason: fmt.Sprintf("unknown execution mode %q", name)}
	}
}

// Spec converts the configuration to its canonical serialized form.
func (c RunConfig) Spec() RunSpec {
	return RunSpec{
		SchemaVersion: SpecSchemaVersion,
		Mode:          c.Mode.String(),
		MonteCarlo:    c.MonteCarlo,
		Seed:          c.Seed,
		PerRankNoise:  c.PerRankNoise,
		Workers:       c.Workers,
	}
}

// Config converts the serialized spec back to a RunConfig, validating
// the schema version, the mode name, and the standalone RunConfig
// fields through the exact Validate path the CLIs use.
func (s RunSpec) Config() (RunConfig, error) {
	if s.SchemaVersion != 0 && s.SchemaVersion != SpecSchemaVersion {
		return RunConfig{}, &ConfigError{
			Field:  "schema_version",
			Reason: fmt.Sprintf("unsupported run spec version %d (want %d)", s.SchemaVersion, SpecSchemaVersion),
		}
	}
	mode, err := ParseMode(s.Mode)
	if err != nil {
		return RunConfig{}, err
	}
	cfg := RunConfig{
		Mode:         mode,
		MonteCarlo:   s.MonteCarlo,
		Seed:         s.Seed,
		PerRankNoise: s.PerRankNoise,
		Workers:      s.Workers,
	}
	if err := cfg.Validate(); err != nil {
		return RunConfig{}, err
	}
	return cfg, nil
}
