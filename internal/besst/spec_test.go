package besst

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestRunSpecRoundTrip(t *testing.T) {
	cfg := NewRunConfig(
		WithMode(Direct),
		WithMonteCarlo(true),
		WithSeed(99),
		WithPerRankNoise(true),
		WithConcurrency(4),
	)
	spec := cfg.Spec()
	if spec.SchemaVersion != SpecSchemaVersion {
		t.Fatalf("schema version %d, want %d", spec.SchemaVersion, SpecSchemaVersion)
	}
	back, err := spec.Config()
	if err != nil {
		t.Fatalf("Config: %v", err)
	}
	if back != cfg {
		t.Fatalf("round trip %+v != %+v", back, cfg)
	}

	// The serialized form must survive a JSON round trip unchanged.
	data, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded RunSpec
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if decoded != spec {
		t.Fatalf("JSON round trip %+v != %+v", decoded, spec)
	}
}

func TestRunSpecZeroValueIsDefaultDES(t *testing.T) {
	cfg, err := RunSpec{}.Config()
	if err != nil {
		t.Fatalf("zero spec: %v", err)
	}
	if cfg != (RunConfig{}) {
		t.Fatalf("zero spec config %+v, want zero RunConfig", cfg)
	}
}

func TestRunSpecRejectsBadInputs(t *testing.T) {
	cases := []RunSpec{
		{SchemaVersion: 99},
		{Mode: "warp"},
		{Workers: MaxWorkers + 1},
	}
	for i, s := range cases {
		_, err := s.Config()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("case %d: error %v, want *ConfigError", i, err)
		}
	}
}

func TestParseModeMatchesString(t *testing.T) {
	for _, m := range []Mode{DES, Direct} {
		got, err := ParseMode(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseMode(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseMode("nope"); err == nil {
		t.Fatal("ParseMode accepted an unknown mode")
	}
}
