package netsim

import (
	"math"
	"testing"

	"besst/internal/network"
	"besst/internal/stats"
	"besst/internal/topo"
)

var testCfg = Config{LinkBandwidth: 1e9, BaseLatency: 1e-6}

func fat() *topo.FatTree { return topo.NewFatTree(4, 4, 2) }

func TestSingleFlowBandwidthBound(t *testing.T) {
	rs := Simulate(fat(), testCfg, []Flow{{Src: 0, Dst: 1, Bytes: 1e9}})
	// 1 GB at 1 GB/s over uncontended links + latency.
	want := 1.0 + 1e-6
	if math.Abs(rs[0].FinishSec-want) > 1e-9 {
		t.Fatalf("finish = %v, want %v", rs[0].FinishSec, want)
	}
}

func TestIntraNodeFlowIsLatencyOnly(t *testing.T) {
	rs := Simulate(fat(), testCfg, []Flow{{Src: 2, Dst: 2, Bytes: 1e12}})
	if rs[0].FinishSec != 1e-6 {
		t.Fatalf("finish = %v", rs[0].FinishSec)
	}
}

func TestTwoFlowsShareSourceUplink(t *testing.T) {
	// Same source node: both flows cross the node's uplink.
	rs := Simulate(fat(), testCfg, []Flow{
		{Src: 0, Dst: 4, Bytes: 1e9},
		{Src: 0, Dst: 8, Bytes: 1e9},
	})
	// Fair share halves the rate: both finish at ~2s.
	for _, r := range rs {
		if math.Abs(r.FinishSec-2.0) > 1e-3 {
			t.Fatalf("finish = %v, want ~2", r.FinishSec)
		}
	}
}

func TestShortFlowFreesCapacity(t *testing.T) {
	// A short and a long flow share the uplink; once the short one
	// finishes, the long one speeds up. Total: the pair moves 1.5 GB
	// through a 1 GB/s link -> the long flow finishes at ~1.5s, far
	// below the naive always-halved estimate of 2s.
	rs := Simulate(fat(), testCfg, []Flow{
		{Src: 0, Dst: 4, Bytes: 5e8},
		{Src: 0, Dst: 8, Bytes: 1e9},
	})
	if math.Abs(rs[0].FinishSec-1.0) > 1e-3 { // short: 0.5GB at half rate
		t.Fatalf("short flow finish = %v, want ~1", rs[0].FinishSec)
	}
	if math.Abs(rs[1].FinishSec-1.5) > 1e-3 {
		t.Fatalf("long flow finish = %v, want ~1.5", rs[1].FinishSec)
	}
}

func TestStaggeredArrival(t *testing.T) {
	rs := Simulate(fat(), testCfg, []Flow{
		{Src: 0, Dst: 4, Bytes: 1e9},
		{Src: 0, Dst: 8, Bytes: 1e9, Start: 10},
	})
	// First flow finishes alone at ~1s, well before the second starts.
	if math.Abs(rs[0].FinishSec-1.0) > 1e-3 {
		t.Fatalf("first = %v", rs[0].FinishSec)
	}
	if math.Abs(rs[1].FinishSec-11.0) > 1e-3 {
		t.Fatalf("second = %v", rs[1].FinishSec)
	}
}

func TestDisjointFlowsFullRate(t *testing.T) {
	rs := Simulate(fat(), testCfg, []Flow{
		{Src: 0, Dst: 1, Bytes: 1e9},
		{Src: 4, Dst: 5, Bytes: 1e9},
	})
	for _, r := range rs {
		if math.Abs(r.FinishSec-(1.0+1e-6)) > 1e-6 {
			t.Fatalf("disjoint flow slowed: %v", r.FinishSec)
		}
	}
}

func TestMaxMinClassicExample(t *testing.T) {
	// Three flows on a 2-link line topology built from a torus ring:
	// flow A crosses links 1-2, flow B link 1, flow C link 2. Max-min:
	// each link splits between 2 flows -> all rates 0.5.
	tor := topo.NewTorus(4)
	// node 0 -> 2 crosses links (0->1),(1->2); 0->1 crosses first;
	// 1->2 crosses second.
	rs := Simulate(tor, Config{LinkBandwidth: 1e9}, []Flow{
		{Src: 0, Dst: 2, Bytes: 1e9},
		{Src: 0, Dst: 1, Bytes: 1e9},
		{Src: 1, Dst: 2, Bytes: 1e9},
	})
	// B and C share with A; when they finish (at 2s), A has 0 left...
	// all three at rate 0.5 finish together at ~2s.
	for i, r := range rs {
		if math.Abs(r.FinishSec-2.0) > 1e-3 {
			t.Fatalf("flow %d finish = %v, want ~2", i, r.FinishSec)
		}
	}
}

func TestZeroByteFlow(t *testing.T) {
	rs := Simulate(fat(), testCfg, []Flow{{Src: 0, Dst: 4, Bytes: 0}})
	if rs[0].FinishSec != 1e-6 {
		t.Fatalf("finish = %v", rs[0].FinishSec)
	}
}

func TestSimulateNeverSlowerThanAnalyticBound(t *testing.T) {
	// The analytic model (package network) charges every flow its
	// most-contended link's full serialization for the whole transfer;
	// max-min sharing with capacity reuse can only do better (to
	// within latency-term differences). Property-check on random flow
	// sets.
	ft := topo.NewFatTree(8, 8, 4)
	params := network.Params{
		InjectionOverhead: 0, HopLatency: 0,
		LinkBandwidth: 1e9, EagerLimit: 0,
	}
	analytic := network.New(ft, params)
	rng := stats.NewRNG(7)
	for trial := 0; trial < 30; trial++ {
		n := rng.Intn(12) + 2
		flows := make([]Flow, n)
		aflows := make([]network.Flow, n)
		for i := range flows {
			src := rng.Intn(ft.Nodes())
			dst := rng.Intn(ft.Nodes())
			if dst == src {
				dst = (dst + 1) % ft.Nodes()
			}
			bytes := int64(rng.Intn(1<<24) + 1<<16)
			flows[i] = Flow{Src: src, Dst: dst, Bytes: bytes}
			aflows[i] = network.Flow{Src: src, Dst: dst, Bytes: bytes}
		}
		simMk := Makespan(Simulate(ft, Config{LinkBandwidth: 1e9}, flows))
		anaMk := analytic.Congested(aflows)
		if simMk > anaMk*1.001 {
			t.Fatalf("trial %d: flow-level %v exceeds analytic bound %v", trial, simMk, anaMk)
		}
	}
}

func TestSortByFinish(t *testing.T) {
	rs := []Result{{FinishSec: 3}, {FinishSec: 1}, {FinishSec: 2}}
	SortByFinish(rs)
	if rs[0].FinishSec != 1 || rs[2].FinishSec != 3 {
		t.Fatalf("sort broken: %v", rs)
	}
}

func TestInvalidInputsPanic(t *testing.T) {
	cases := []func(){
		func() { Simulate(fat(), Config{}, nil) },
		func() { Simulate(fat(), testCfg, []Flow{{Src: 0, Dst: 1, Bytes: -1}}) },
		func() { Simulate(fat(), testCfg, []Flow{{Src: 0, Dst: 1, Bytes: 1, Start: -1}}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}
