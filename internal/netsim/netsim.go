// Package netsim is a flow-level network simulator: the "finer-grained
// simulator" tier of the paper's MODSIM spectrum, one step below the
// analytic alpha-beta model of package network. Flows share link
// bandwidth max-min fairly; as flows finish, capacity is redistributed
// and remaining flows speed up — the dynamics the coarse model's
// "most-contended link" approximation ignores.
//
// BE-SST's workflow uses exactly this kind of tool to re-examine the
// design-space regions the coarse models flag (the Figs 5A/5D/6D
// discussion); the ablation bench compares the two tiers directly.
package netsim

import (
	"fmt"
	"math"
	"sort"

	"besst/internal/topo"
)

// Flow describes one transfer.
type Flow struct {
	Src, Dst int
	Bytes    int64
	// Start is the injection time in seconds (flows may stagger).
	Start float64
}

// Result reports one flow's outcome.
type Result struct {
	Flow
	// FinishSec is the completion time (transfer end plus propagation).
	FinishSec float64
}

// Config parameterizes the fabric.
type Config struct {
	// LinkBandwidth is each link's capacity in bytes/second.
	LinkBandwidth float64
	// BaseLatency is the fixed per-flow latency in seconds (injection
	// plus propagation), added to the bandwidth-sharing time.
	BaseLatency float64
}

// Validate panics on nonsense.
func (c Config) Validate() {
	if c.LinkBandwidth <= 0 || c.BaseLatency < 0 {
		panic("netsim: invalid Config")
	}
}

type simFlow struct {
	idx       int
	route     []topo.LinkID
	remaining float64 // bytes
	start     float64
	finish    float64
	rate      float64
	done      bool
	started   bool
}

// Simulate runs all flows to completion over the topology and returns
// per-flow finish times. Intra-node flows (src == dst) complete at
// BaseLatency. The algorithm is progressive filling: at each event
// (flow arrival or completion) rates are recomputed max-min fairly and
// time advances to the next event.
func Simulate(t topo.Topology, cfg Config, flows []Flow) []Result {
	cfg.Validate()
	sims := make([]*simFlow, len(flows))
	for i, f := range flows {
		if f.Bytes < 0 || f.Start < 0 {
			panic(fmt.Sprintf("netsim: invalid flow %+v", f))
		}
		sims[i] = &simFlow{
			idx:       i,
			route:     t.Route(f.Src, f.Dst),
			remaining: float64(f.Bytes),
			start:     f.Start,
		}
	}

	now := 0.0
	for {
		// Activate arrivals, collect running flows.
		var running []*simFlow
		nextArrival := math.Inf(1)
		for _, s := range sims {
			if s.done {
				continue
			}
			if s.start > now {
				if s.start < nextArrival {
					nextArrival = s.start
				}
				continue
			}
			s.started = true
			//lint:ignore floateq exactly zero remaining bytes marks an empty flow
			if len(s.route) == 0 || s.remaining == 0 {
				// Intra-node or empty flow: completes at base latency.
				s.done = true
				s.finish = s.start + cfg.BaseLatency
				continue
			}
			running = append(running, s)
		}
		if len(running) == 0 {
			if math.IsInf(nextArrival, 1) {
				break // all done
			}
			now = nextArrival
			continue
		}

		maxMinRates(running, cfg.LinkBandwidth)

		// Advance to the earliest completion or arrival.
		nextEvent := nextArrival
		for _, s := range running {
			if c := now + s.remaining/s.rate; c < nextEvent {
				nextEvent = c
			}
		}
		dt := nextEvent - now
		for _, s := range running {
			s.remaining -= s.rate * dt
			if s.remaining <= 1e-6 {
				s.remaining = 0
				s.done = true
				s.finish = nextEvent + cfg.BaseLatency
			}
		}
		now = nextEvent
	}

	out := make([]Result, len(flows))
	for i, s := range sims {
		out[i] = Result{Flow: flows[i], FinishSec: s.finish}
	}
	return out
}

// maxMinRates assigns max-min fair rates to the running flows:
// repeatedly find the bottleneck link (smallest equal share among its
// unfrozen flows), freeze its flows at that share, subtract, repeat.
func maxMinRates(running []*simFlow, linkBW float64) {
	type linkState struct {
		capacity float64
		flows    []*simFlow
	}
	links := map[topo.LinkID]*linkState{}
	for _, s := range running {
		s.rate = 0
		for _, l := range s.route {
			ls := links[l]
			if ls == nil {
				ls = &linkState{capacity: linkBW}
				links[l] = ls
			}
			ls.flows = append(ls.flows, s)
		}
	}
	frozen := map[*simFlow]bool{}
	for len(frozen) < len(running) {
		// Find the bottleneck link.
		var bottleneck *linkState
		bottleneckShare := math.Inf(1)
		for _, ls := range links {
			n := 0
			for _, f := range ls.flows {
				if !frozen[f] {
					n++
				}
			}
			if n == 0 {
				continue
			}
			share := ls.capacity / float64(n)
			if share < bottleneckShare {
				bottleneckShare = share
				bottleneck = ls
			}
		}
		if bottleneck == nil {
			// Flows with no unfrozen constrained links (cannot happen
			// while every running flow has a route); guard anyway.
			for _, s := range running {
				if !frozen[s] {
					s.rate = linkBW
					frozen[s] = true
				}
			}
			break
		}
		// Freeze this link's unfrozen flows at the bottleneck share.
		for _, f := range bottleneck.flows {
			if frozen[f] {
				continue
			}
			f.rate = bottleneckShare
			frozen[f] = true
			// Subtract its rate from every other link it crosses.
			for _, l := range f.route {
				ls := links[l]
				if ls != bottleneck {
					ls.capacity -= bottleneckShare
					if ls.capacity < 0 {
						ls.capacity = 0
					}
				}
			}
		}
		bottleneck.capacity = 0
	}
}

// Makespan returns the latest finish time of the results.
func Makespan(rs []Result) float64 {
	worst := 0.0
	for _, r := range rs {
		if r.FinishSec > worst {
			worst = r.FinishSec
		}
	}
	return worst
}

// SortByFinish orders results by completion time (diagnostics).
func SortByFinish(rs []Result) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].FinishSec < rs[j].FinishSec })
}
