package serve

import (
	"encoding/json"
	"errors"

	"besst/internal/besst"
	"besst/internal/dse"
	"besst/internal/par"
	"besst/internal/resilience"
)

// This file is the out-of-process execution surface of the service:
// everything a distributed coordinator (internal/dist) or a
// besst-worker process needs to execute a slice of a campaign and
// assemble the merged result, without serve ever importing them.
//
// The determinism chain that makes sharding sound: a campaign's
// identity is its canonical request JSON (canon.go); its master seed
// is pinned or hash-derived from that identity; par.SeedFan pre-draws
// one seed per unit (trial or sweep point) from the master seed; so
// unit i's payload bytes are a pure function of (request, i) — any
// process can compute any index range and the results merge
// byte-identically.

// IsBadRequest reports whether err classifies as a 400-class request
// error (malformed, invalid, or out-of-bounds request fields) rather
// than an execution failure. The worker handler uses it to answer 400
// — telling the coordinator not to retry — instead of 500.
func IsBadRequest(err error) bool {
	var b *badRequest
	return errors.As(err, &b)
}

// Plan is the coordinator-side view of a validated campaign request:
// enough to know the campaign's identity, shape, and unit count, and
// to assemble worker-computed payloads into the final result document
// — without compiling models or running anything.
type Plan struct {
	pl *plan
}

// ParsePlan canonicalizes, hashes, and validates raw request JSON.
// Errors classify with IsBadRequest.
func ParsePlan(raw []byte) (*Plan, error) {
	id, canonical, sum, err := HashRequest(raw)
	if err != nil {
		return nil, reject("bad request: %v", err)
	}
	pl, err := buildPlan(id, sum, canonical)
	if err != nil {
		return nil, err
	}
	return &Plan{pl: pl}, nil
}

// ID is the content-addressed campaign ID.
func (p *Plan) ID() string { return p.pl.id }

// Kind is the campaign kind: single, monte_carlo, or dse_sweep.
func (p *Plan) Kind() string { return p.pl.req.Kind }

// Canonical returns the canonical request JSON — the bytes whose hash
// is the campaign ID, and the exact request representation shards
// carry so every worker rebuilds the identical plan.
func (p *Plan) Canonical() []byte { return p.pl.canonical }

// Units is the number of independent work items the campaign shards
// into: Monte Carlo trials, or distinct sweep design points.
func (p *Plan) Units() int { return p.pl.units() }

// Assemble folds a complete per-unit payload vector (index order) into
// the campaign's result document — byte-identical to what an
// in-process run of the same request produces.
func (p *Plan) Assemble(payloads []json.RawMessage) ([]byte, error) {
	return p.pl.assemble(payloads)
}

// ExecConfig parameterizes a ShardExecutor.
type ExecConfig struct {
	// Workers bounds intra-shard unit concurrency (<= 0: 1; a worker
	// process typically runs many shards' units serially and scales by
	// process count, not goroutines).
	Workers int
	// CacheCap bounds the compile cache (<= 0: 8 artifacts).
	CacheCap int
	// Chaos is the deterministic fault injector applied before every
	// unit — including KillRate, which SIGKILLs the worker process
	// mid-shard. The schedule is a pure function of (Chaos.Seed, unit
	// index), so a chaos-killed worker dies at the same unit on every
	// run: the reassignment guarantee is provable, not probabilistic.
	Chaos resilience.ChaosConfig
	// Memo, when non-nil, is the cross-campaign design-point result
	// cache shared with the process's other executors; nil builds a
	// private in-memory memo with the default capacity.
	Memo *dse.Memo
}

// ShardExecutor executes index ranges of shardable campaigns — the
// compute half of a besst-worker process. It rebuilds the plan from
// the canonical request bytes (verifying the campaign ID), compiles
// through its own single-flight LRU artifact cache, and returns one
// canonical payload per unit. It implements internal/dist's Executor
// interface structurally.
type ShardExecutor struct {
	cfg  ExecConfig
	arts *artifacts
}

// NewShardExecutor builds an executor with a warm-capable cache.
func NewShardExecutor(cfg ExecConfig) *ShardExecutor {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	return &ShardExecutor{cfg: cfg, arts: newArtifacts(cfg.CacheCap, cfg.Memo)}
}

// ExecShard executes units [lo, hi) of the campaign identified by
// campaignID and returns their canonical payloads in index order.
// The request bytes are the source of truth: the executor re-derives
// the campaign ID and rejects a mismatch, so a shard can never run
// under the wrong identity.
func (x *ShardExecutor) ExecShard(campaignID string, request []byte, lo, hi int) ([]json.RawMessage, error) {
	p, err := ParsePlan(request)
	if err != nil {
		return nil, err
	}
	if campaignID != "" && campaignID != p.ID() {
		return nil, reject("campaign id %s does not match request hash %s", campaignID, p.ID())
	}
	pl := p.pl
	n := pl.units()
	if lo < 0 || hi > n || lo >= hi {
		return nil, reject("shard [%d, %d) outside the campaign's %d units", lo, hi, n)
	}

	inj := x.cfg.Chaos.NewInjector(n)
	payloads := make([]json.RawMessage, hi-lo)
	switch pl.req.Kind {
	case KindMonteCarlo:
		art, _, err := x.arts.compiled(pl)
		if err != nil {
			return nil, err
		}
		cfg := pl.runCfg
		runner, err := art.cr.TrialRunner(pl.trials, func(dst *besst.RunConfig) { *dst = cfg })
		if err != nil {
			return nil, err
		}
		if err := forEachUnit(x.cfg.Workers, lo, hi, inj, func(i, k int) error {
			p, perr := runner(i).Payload()
			payloads[k] = p
			return perr
		}); err != nil {
			return nil, err
		}
	case KindSweep:
		if pl.searchCfg != nil {
			// A searched sweep is adaptive: round N's shard membership
			// depends on round N-1's results, so there is no static index
			// space to shard. The coordinator never dispatches one; a
			// direct request is a caller error.
			return nil, reject("surrogate-guided sweeps are not sharded; POST them to besst-serve directly")
		}
		ma, _, err := x.arts.models(*pl.req.Model)
		if err != nil {
			return nil, err
		}
		prepared := dse.PrepareSweep(ma.models, ma.em.M, ma.em.Cost.Config.NodeSize, pl.sweepCfg)
		prepared.AttachMemo(x.arts.memo, memoBundle(*pl.req.Model))
		if err := forEachUnit(x.cfg.Workers, lo, hi, inj, func(i, k int) error {
			p, perr := json.Marshal(prepared.EvalPoint(i))
			payloads[k] = p
			return perr
		}); err != nil {
			return nil, err
		}
	default:
		return nil, reject("%s campaigns are not sharded; POST them to besst-serve directly", pl.req.Kind)
	}
	return payloads, nil
}

// forEachUnit runs fn(i, k) for every unit index i in [lo, hi) (k the
// shard-local slot), injecting chaos before each unit. Attempt is
// always 1: a worker does not retry its own units — retries belong to
// the coordinator, which reassigns the whole shard to another worker.
//
// A panicking unit (a poison design point, an injected chaos panic) is
// quarantined — its payload stays nil, which crosses the wire as JSON
// null — rather than failing the shard. This mirrors the in-process
// campaign runner, so local and distributed runs of the same request
// agree on which units failed and the assembled documents stay
// byte-identical. Panics are pure functions of (request, i), so every
// replica quarantines the same units and replication still converges.
func forEachUnit(workers, lo, hi int, inj *resilience.Injector, fn func(i, k int) error) error {
	return par.ForEachErr(workers, hi-lo, func(k int) error {
		return runUnit(lo+k, k, inj, fn)
	})
}

// runUnit isolates one unit behind a recover barrier.
func runUnit(i, k int, inj *resilience.Injector, fn func(i, k int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = nil // quarantined: the unit's payload stays nil
		}
	}()
	inj.Inject(i, 1)
	return fn(i, k)
}

// Statz reports the executor's compile-cache counters (the worker's
// /v1/statz document body).
func (x *ShardExecutor) Statz() CacheStats { return x.arts.cache.Stats() }

// MemoStatz reports the executor's point-memo counters.
func (x *ShardExecutor) MemoStatz() dse.MemoStats { return x.arts.memo.Stats() }
