// Package serve is the BE-SST simulation service: a multi-tenant HTTP
// daemon exposing a versioned campaign API over the same compile/run
// pipeline the CLIs use.
//
//	POST /v1/campaigns             submit (or join/resume) a campaign
//	GET  /v1/campaigns/{id}        status; ?watch=1 streams NDJSON
//	GET  /v1/campaigns/{id}/result the byte-reproducible result document
//	GET  /v1/healthz               liveness + drain state
//	GET  /v1/statz                 counters: queue, tenants, compile cache
//
// Identity is content-addressed: a campaign's ID is the hash of its
// request's canonical JSON (canon.go), which also keys the compile
// cache and the checkpoint journal and — when run.seed is 0 — derives
// the master seed. The same request therefore always names the same
// campaign: concurrent duplicates join the in-flight run, re-posts of
// finished campaigns re-execute through the warm compile cache (and
// resume from their journal when a state directory is configured), and
// every execution of a given request yields byte-identical result
// bodies at any worker count.
//
// Admission is a bounded FIFO queue with per-tenant in-flight caps:
// a full queue answers 429 with Retry-After, and a tenant at its cap
// is skipped over (later tenants proceed) rather than head-of-line
// blocking the service. SIGTERM drains gracefully: running campaigns
// checkpoint through internal/resilience and stop at a trial boundary,
// queued ones are released, and re-posting after restart resumes from
// the journals.
package serve

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"besst/internal/dse"
	"besst/internal/obs"
)

// obsProgress keeps the schema documents free of a direct obs import
// cycle concern while exposing the collector's progress type verbatim.
type obsProgress = obs.Progress

// Campaign states as they appear in CampaignStatus.State, exported for
// typed clients.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateDone        = "done"
	StateFailed      = "failed"
	StateInterrupted = "interrupted"
)

// Internal aliases: the handlers predate the exported names.
const (
	stateQueued      = StateQueued
	stateRunning     = StateRunning
	stateDone        = StateDone
	stateFailed      = StateFailed
	stateInterrupted = StateInterrupted
)

// Config parameterizes a Server. The zero value is usable: sensible
// caps, no checkpoint journals.
type Config struct {
	// StateDir, when non-empty, holds per-campaign checkpoint journals
	// (CKPT_serve_<id>.jsonl) enabling drain-and-resume.
	StateDir string
	// Workers is the default per-campaign replication concurrency
	// (<= 0: GOMAXPROCS); requests may pin run.workers themselves.
	Workers int
	// CacheCap bounds the compile cache (<= 0: 8 artifacts).
	CacheCap int
	// MaxQueued bounds the admission queue; beyond it POST answers 429
	// (<= 0: 16).
	MaxQueued int
	// MaxActive bounds concurrently running campaigns (<= 0: 2).
	MaxActive int
	// MaxPerTenant bounds one tenant's concurrently running campaigns
	// (<= 0: 1).
	MaxPerTenant int
	// AuthToken, when non-empty, requires every request (except
	// GET /v1/healthz, left open for liveness probes) to carry
	// "Authorization: Bearer <token>"; mismatches answer 401. Empty
	// keeps the service open.
	AuthToken string
	// CampaignTTL, when positive, garbage-collects settled campaigns
	// (done / failed / interrupted) from the in-memory registry once
	// they have been settled longer than the TTL, so long-lived daemons
	// don't grow without bound. Queued and running campaigns are never
	// evicted; re-posting an evicted request simply re-admits it under
	// the same content-addressed ID.
	CampaignTTL time.Duration
	// Backend, when non-nil, executes monte_carlo and dse_sweep
	// campaigns instead of the in-process pipeline — the hook the
	// distributed coordinator (internal/dist) plugs in behind
	// `besst-serve -workers-addr`. Single campaigns always run
	// in-process. Surrogate-guided sweeps always run in-process too:
	// their rounds are adaptive and cannot be sharded.
	Backend Backend
	// Memo, when non-nil, is the cross-campaign design-point result
	// cache every sweep campaign evaluates through — the hook the cmd
	// wiring uses to share one journal-backed memo across the server
	// and any co-resident executors. Nil builds a private in-memory
	// memo with dse.DefaultMemoCapacity.
	Memo *dse.Memo
}

// Backend executes a shardable campaign out of process. request is the
// canonical request JSON (the campaign identity), n its unit count;
// cancel is closed when the server drains. The returned payload vector
// must hold one canonical payload per unit, in index order. A nil
// vector with a nil error means execution was cancelled before
// completion (the campaign surfaces as interrupted).
//
// The interface is defined here — not in internal/dist — so serve
// never imports its own backends; dist implements it and cmd wiring
// connects the two.
type Backend interface {
	Run(request []byte, n int, cancel <-chan struct{}, col BackendCollector) ([]json.RawMessage, BackendReport, error)
}

// BackendCollector receives distributed-execution telemetry. It is the
// shard-level subset of *obs.Collector's hooks, typed with builtins
// only so obs satisfies it structurally.
type BackendCollector interface {
	ShardDone(shard, lo, hi int)
	ShardRetry(shard, attempt int)
	ShardDivergence(shard, agree, returned int)
	WorkerDown(worker int)
}

// BackendReport summarizes one distributed execution for the campaign
// record: replica journals that lost their quorum vote are surfaced as
// first-class divergence descriptions on the campaign status, never
// silently discarded.
type BackendReport struct {
	Shards      int
	Replicas    int
	Retries     int
	WorkersLost int
	Divergences []string
}

func (c Config) withDefaults() Config {
	if c.CacheCap <= 0 {
		c.CacheCap = 8
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 16
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 2
	}
	if c.MaxPerTenant <= 0 {
		c.MaxPerTenant = 1
	}
	return c
}

// campaign is one admitted request's lifecycle record. The identity
// fields (id, plan, tenant, collector, done) are immutable after
// admission; everything else is guarded by the server mutex.
type campaign struct {
	id        string
	plan      *plan
	tenant    string
	collector *obs.Collector
	done      chan struct{} // closed when the campaign leaves queued/running

	state    string
	cacheHit bool
	result   []byte
	errMsg   string
	// divergences lists replica disagreements observed while this
	// campaign ran on a distributed backend (majority still won; the
	// outvoted journals are recorded here).
	divergences []string
	// settledAt timestamps the transition out of queued/running; the
	// TTL janitor evicts settled campaigns past Config.CampaignTTL.
	settledAt time.Time
}

// Server is the simulation service.
type Server struct {
	cfg  Config
	arts *artifacts

	mu           sync.Mutex
	campaigns    map[string]*campaign
	queue        []*campaign // pending, admission order
	active       int
	tenantActive map[string]int
	rejected     uint64
	completed    uint64
	evicted      uint64

	wake      chan struct{}
	draining  chan struct{} // closed by Drain; doubles as resilience Cancel
	schedDone chan struct{}
	drainOnce sync.Once
	wg        sync.WaitGroup // running campaign goroutines
	started   time.Time

	// trialPause, when positive, slows every Monte Carlo trial — a test
	// hook for backpressure and drain-timing tests.
	trialPause time.Duration
}

// NewServer builds a Server and starts its scheduler.
func NewServer(cfg Config) *Server {
	s := &Server{
		cfg:          cfg.withDefaults(),
		arts:         newArtifacts(cfg.CacheCap, cfg.Memo),
		campaigns:    make(map[string]*campaign),
		tenantActive: make(map[string]int),
		wake:         make(chan struct{}, 1),
		draining:     make(chan struct{}),
		schedDone:    make(chan struct{}),
		started:      time.Now(),
	}
	go s.schedule()
	return s
}

// schedule is the dispatch loop: every admission or completion kicks
// it to start as many queued campaigns as the caps allow, and — when a
// campaign TTL is configured — a ticker sweeps settled campaigns out
// of the registry. It exits on drain.
func (s *Server) schedule() {
	defer close(s.schedDone)
	var gcTick <-chan time.Time
	if s.cfg.CampaignTTL > 0 {
		period := s.cfg.CampaignTTL / 2
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		gcTick = t.C
	}
	for {
		select {
		case <-s.draining:
			return
		case <-s.wake:
		case <-gcTick:
			s.evictExpired(time.Now())
		}
		s.dispatch()
	}
}

// evictExpired drops settled campaigns whose TTL has lapsed.
func (s *Server) evictExpired(now time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, c := range s.campaigns {
		if c.settledAt.IsZero() {
			continue // queued or running: never evicted
		}
		if now.Sub(c.settledAt) >= s.cfg.CampaignTTL {
			delete(s.campaigns, id)
			s.evicted++
		}
	}
}

// dispatch starts queued campaigns while the global and per-tenant
// in-flight caps allow. Tenants at their cap are skipped over — FIFO
// within a tenant, no head-of-line blocking across tenants.
func (s *Server) dispatch() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.active < s.cfg.MaxActive {
		idx := -1
		for i, c := range s.queue {
			if s.tenantActive[c.tenant] < s.cfg.MaxPerTenant {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		c := s.queue[idx]
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		s.active++
		s.tenantActive[c.tenant]++
		c.state = stateRunning
		s.wg.Add(1)
		go s.runCampaign(c)
	}
}

// runCampaign executes one campaign and records its outcome.
func (s *Server) runCampaign(c *campaign) {
	defer s.wg.Done()
	body, hit, err := s.execute(c)

	s.mu.Lock()
	c.cacheHit = hit
	switch {
	case err != nil:
		c.state = stateFailed
		c.errMsg = err.Error()
	case body == nil:
		c.state = stateInterrupted
		c.errMsg = "campaign drained before completion; re-POST the request to resume"
	default:
		c.state = stateDone
		c.result = body
		s.completed++
	}
	c.settledAt = time.Now()
	s.active--
	s.tenantActive[c.tenant]--
	if s.tenantActive[c.tenant] <= 0 {
		delete(s.tenantActive, c.tenant)
	}
	s.mu.Unlock()
	close(c.done)
	s.kick()
}

// kick nudges the scheduler without blocking.
func (s *Server) kick() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

func (s *Server) isDraining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// Drain gracefully stops the server: no new admissions, running
// campaigns checkpoint and stop at the next trial boundary (through
// the shared cancel channel resilience observes), queued campaigns are
// released as interrupted. Safe to call more than once; blocks until
// every campaign goroutine has finished.
func (s *Server) Drain() {
	s.drainOnce.Do(func() { close(s.draining) })
	<-s.schedDone
	s.wg.Wait()
	s.mu.Lock()
	for _, c := range s.queue {
		c.state = stateInterrupted
		c.errMsg = "server drained before the campaign started; re-POST after restart"
		c.settledAt = time.Now()
		close(c.done)
	}
	s.queue = nil
	s.mu.Unlock()
}

// Handler returns the service's HTTP routes, wrapped in bearer-token
// auth when Config.AuthToken is set.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/campaigns/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/statz", s.handleStatz)
	return WithAuth(s.cfg.AuthToken, mux)
}

// WithAuth wraps a handler in shared-secret bearer-token auth: every
// request must carry "Authorization: Bearer <token>" or is answered
// 401, except GET /v1/healthz, which stays open so liveness probes
// need no credentials. An empty token disables the check. The same
// wrapper guards besst-serve and the besst-worker shard endpoint, so
// one `-auth-token` flag protects the whole deployment.
func WithAuth(token string, next http.Handler) http.Handler {
	if token == "" {
		return next
	}
	want := sha256.Sum256([]byte(token))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodGet && r.URL.Path == "/v1/healthz" {
			next.ServeHTTP(w, r)
			return
		}
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		// Hash both sides so the comparison is constant-time even
		// across length mismatches.
		sum := sha256.Sum256([]byte(got))
		if !ok || subtle.ConstantTimeCompare(sum[:], want[:]) != 1 {
			writeError(w, http.StatusUnauthorized, "missing or invalid bearer token")
			return
		}
		next.ServeHTTP(w, r)
	})
}

// ListenAndServe serves the API on addr until SIGTERM/SIGINT (or a
// programmatic Drain), then drains campaigns and shuts the listener
// down cleanly.
func (s *Server) ListenAndServe(addr string) error {
	httpSrv := &http.Server{Addr: addr, Handler: s.Handler()}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	stopped := make(chan struct{})
	go func() {
		select {
		case <-sigc:
		case <-s.draining:
		}
		s.Drain()
		_ = httpSrv.Close() // campaigns already checkpointed; drop keep-alives
		close(stopped)
	}()

	err := httpSrv.ListenAndServe()
	s.Drain() // no-op if the signal path already drained
	<-stopped
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// handleSubmit admits POST /v1/campaigns.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	raw, err := readBody(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id, canonical, sum, err := HashRequest(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	pl, err := buildPlan(id, sum, canonical)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if existing, ok := s.campaigns[id]; ok {
		if existing.state == stateQueued || existing.state == stateRunning {
			// Identical request already in flight: join it.
			st := s.statusLocked(existing)
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, st)
			return
		}
		// done/failed/interrupted: fall through and re-admit. Re-posts
		// re-execute through the warm compile cache (and resume from the
		// journal when checkpointing is configured), re-proving byte
		// identity rather than replaying stored bytes.
	}
	if s.isDraining() {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if len(s.queue) >= s.cfg.MaxQueued {
		s.rejected++
		depth := len(s.queue)
		s.mu.Unlock()
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSec(depth)))
		writeError(w, http.StatusTooManyRequests, "admission queue is full; retry later")
		return
	}
	c := &campaign{
		id:        id,
		plan:      pl,
		tenant:    pl.req.Tenant,
		collector: obs.NewCollector(),
		done:      make(chan struct{}),
		state:     stateQueued,
	}
	s.campaigns[id] = c
	s.queue = append(s.queue, c)
	st := s.statusLocked(c)
	s.mu.Unlock()
	s.kick()
	writeJSON(w, http.StatusAccepted, st)
}

// retryAfterSec estimates the backoff hint from queue depth.
func retryAfterSec(depth int) int {
	sec := 1 + depth/2
	if sec > 30 {
		sec = 30
	}
	return sec
}

// handleStatus serves GET /v1/campaigns/{id}; ?watch=1 streams status
// as NDJSON until the campaign settles.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"))
	if c == nil {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	if r.URL.Query().Get("watch") == "" {
		s.mu.Lock()
		st := s.statusLocked(c)
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, st)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		s.mu.Lock()
		st := s.statusLocked(c)
		s.mu.Unlock()
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State != stateQueued && st.State != stateRunning {
			return
		}
		select {
		case <-c.done:
			// Loop once more to emit the settled status line.
		case <-r.Context().Done():
			return
		case <-time.After(250 * time.Millisecond):
		}
	}
}

// handleResult serves GET /v1/campaigns/{id}/result.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"))
	if c == nil {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	s.mu.Lock()
	state, body := c.state, c.result
	s.mu.Unlock()
	if state != stateDone {
		writeError(w, http.StatusConflict, fmt.Sprintf("campaign is %s, not done", state))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}

// Healthz is the GET /v1/healthz liveness document, shared by the
// service, the worker, and the typed client.
type Healthz struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	h := Healthz{Status: "ok", Draining: s.isDraining()}
	if h.Draining {
		h.Status = "draining"
	}
	writeJSON(w, http.StatusOK, h)
}

// Statz is the GET /v1/statz counters document.
type Statz struct {
	SchemaVersion int            `json:"schema_version"`
	UptimeSec     float64        `json:"uptime_sec"`
	Draining      bool           `json:"draining"`
	QueueDepth    int            `json:"queue_depth"`
	Active        int            `json:"active"`
	Completed     uint64         `json:"completed"`
	Rejected      uint64         `json:"rejected"`
	Evicted       uint64         `json:"campaigns_evicted"`
	Campaigns     map[string]int `json:"campaigns"` // state -> count
	Tenants       map[string]int `json:"tenants_active,omitempty"`
	Cache         CacheStats     `json:"compile_cache"`
	// PointMemo is the cross-campaign design-point memo's counters:
	// hits are simulations the service never had to repeat.
	PointMemo dse.MemoStats `json:"point_memo"`
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	st := Statz{
		SchemaVersion: RequestSchemaVersion,
		UptimeSec:     time.Since(s.started).Seconds(),
		Draining:      s.isDraining(),
		QueueDepth:    len(s.queue),
		Active:        s.active,
		Completed:     s.completed,
		Rejected:      s.rejected,
		Evicted:       s.evicted,
		Campaigns:     make(map[string]int),
		Tenants:       make(map[string]int, len(s.tenantActive)),
	}
	for _, c := range s.campaigns {
		st.Campaigns[c.state]++
	}
	for t, n := range s.tenantActive {
		st.Tenants[t] = n
	}
	s.mu.Unlock()
	st.Cache = s.arts.cache.Stats()
	st.PointMemo = s.arts.memo.Stats()
	writeJSON(w, http.StatusOK, st)
}

// lookup resolves a campaign ID under the lock.
func (s *Server) lookup(id string) *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.campaigns[id]
}

// statusLocked renders a campaign's status document. Callers hold mu.
func (s *Server) statusLocked(c *campaign) CampaignStatus {
	st := CampaignStatus{
		SchemaVersion: RequestSchemaVersion,
		ID:            c.id,
		Kind:          c.plan.req.Kind,
		Tenant:        c.tenant,
		State:         c.state,
		Seed:          c.plan.seed,
		Error:         c.errMsg,
		Divergences:   c.divergences,
		Progress:      c.collector.Progress(),
	}
	if c.state == stateDone {
		st.ResultURL = "/v1/campaigns/" + c.id + "/result"
	}
	if c.state == stateDone || c.state == stateFailed {
		hit := c.cacheHit
		st.CacheHit = &hit
	}
	return st
}

// readBody reads a bounded request body.
func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	if err != nil {
		return nil, fmt.Errorf("serve: reading request body: %w", err)
	}
	return raw, nil
}

// writeJSON renders one JSON response document.
func writeJSON(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(doc)
}

// writeError renders the uniform error document.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorDoc{Error: msg})
}
