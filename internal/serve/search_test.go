package serve

import (
	"encoding/json"
	"net/http"
	"testing"

	"besst/internal/dse"
)

const searchRequest = `{
  "schema_version": 1,
  "kind": "dse_sweep",
  "run": {"seed": 7},
  "sweep": {
    "eprs": [5, 6, 7, 8],
    "ranks": [8, 27],
    "scenarios": ["noft", "l1"],
    "timesteps": 10,
    "mc_runs": 2,
    "search": {"budget": 0.5, "round_size": 2}
  },
  "model": {"method": "interp", "samples": 2, "seed": 1}
}`

// TestSearchCampaign drives a surrogate-guided sweep through the full
// service stack: the result document carries the search summary, cells
// the search skipped are flagged predicted, a re-POST re-executes
// through the point memo byte-identically, and /v1/statz exposes the
// memo counters.
func TestSearchCampaign(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CacheCap: 4})

	st, resp := post(t, ts.URL, searchRequest)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	st = waitState(t, ts.URL, st.ID)
	if st.State != stateDone {
		t.Fatalf("campaign %s: %s", st.State, st.Error)
	}
	first := result(t, ts.URL, st.ID)

	var doc CampaignResult
	if err := json.Unmarshal(first, &doc); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if doc.Search == nil {
		t.Fatal("result carries no search summary")
	}
	if doc.Search.GridPoints != 16 || doc.Search.FullSims >= 16 || doc.Search.FullSims == 0 {
		t.Fatalf("search summary %+v, want 0 < full_sims < 16 grid points", doc.Search)
	}
	if doc.Search.Best.MeanSec <= 0 {
		t.Fatalf("best cell %+v", doc.Search.Best)
	}
	predicted := 0
	for _, c := range doc.Cells {
		if c.Predicted {
			predicted++
		}
	}
	if predicted == 0 {
		t.Fatal("no cells flagged predicted at a 50% budget")
	}

	var stz Statz
	if err := getJSON(ts.URL+"/v1/statz", &stz); err != nil {
		t.Fatal(err)
	}
	if stz.PointMemo.Misses == 0 || stz.PointMemo.Entries == 0 {
		t.Fatalf("point memo unused after a search campaign: %+v", stz.PointMemo)
	}
	coldHits := stz.PointMemo.Hits

	// Re-POST: the settled campaign re-executes, this time through the
	// warm memo, and must reproduce the bytes exactly.
	st2, _ := post(t, ts.URL, searchRequest)
	st2 = waitState(t, ts.URL, st2.ID)
	if st2.State != stateDone {
		t.Fatalf("re-run campaign %s: %s", st2.State, st2.Error)
	}
	second := result(t, ts.URL, st2.ID)
	if string(first) != string(second) {
		t.Fatalf("memo-warm re-run differs:\n%s\n%s", first, second)
	}
	if err := getJSON(ts.URL+"/v1/statz", &stz); err != nil {
		t.Fatal(err)
	}
	if stz.PointMemo.Hits <= coldHits {
		t.Fatalf("warm re-run did not hit the memo (hits %d -> %d)", coldHits, stz.PointMemo.Hits)
	}
}

// TestSearchRequestValidation rejects malformed search blocks at
// admission time.
func TestSearchRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{"kind":"dse_sweep","run":{},"sweep":{"eprs":[5],"ranks":[8],"scenarios":["l1"],"timesteps":5,"mc_runs":1,"search":{"budget":0}}}`,
		`{"kind":"dse_sweep","run":{},"sweep":{"eprs":[5],"ranks":[8],"scenarios":["l1"],"timesteps":5,"mc_runs":1,"search":{"budget":1.5}}}`,
		`{"kind":"dse_sweep","run":{},"sweep":{"eprs":[5],"ranks":[8],"scenarios":["l1"],"timesteps":5,"mc_runs":1,"search":{"budget":0.5,"round_size":-1}}}`,
	} {
		_, resp := post(t, ts.URL, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad search block admitted (%d): %s", resp.StatusCode, body)
		}
	}
}

// TestSearchNotSharded pins the distribution boundary: a searched
// sweep has no static index space, so the shard executor refuses it as
// a bad request rather than executing nonsense.
func TestSearchNotSharded(t *testing.T) {
	x := NewShardExecutor(ExecConfig{Workers: 1})
	_, err := x.ExecShard("", []byte(searchRequest), 0, 1)
	if err == nil || !IsBadRequest(err) {
		t.Fatalf("sharded search: err = %v, want bad request", err)
	}
}

// TestSearchSpecCanonicalization pins the identity contract: the
// search block participates in the campaign hash, so the same grid
// with and without search are distinct campaigns.
func TestSearchSpecCanonicalization(t *testing.T) {
	plain := `{"kind":"dse_sweep","run":{},"sweep":{"eprs":[5],"ranks":[8],"scenarios":["l1"],"timesteps":5,"mc_runs":1}}`
	searched := `{"kind":"dse_sweep","run":{},"sweep":{"eprs":[5],"ranks":[8],"scenarios":["l1"],"timesteps":5,"mc_runs":1,"search":{"budget":0.5}}}`
	idPlain, _, _, err := HashRequest([]byte(plain))
	if err != nil {
		t.Fatal(err)
	}
	idSearched, _, _, err := HashRequest([]byte(searched))
	if err != nil {
		t.Fatal(err)
	}
	if idPlain == idSearched {
		t.Fatal("search block does not canonicalize into the campaign identity")
	}
}

// TestConfigMemoShared proves an injected memo is shared between a
// server and a shard executor built from it — the cross-process
// deployment shape where besst-serve and a worker share one journal.
func TestConfigMemoShared(t *testing.T) {
	memo := dse.NewMemo(4)
	memo.Store("k", 1.0)
	x := NewShardExecutor(ExecConfig{Workers: 1, Memo: memo})
	if st := x.MemoStatz(); st.Entries != 1 {
		t.Fatalf("executor memo stats %+v, want the injected memo", st)
	}
}
