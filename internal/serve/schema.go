package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"

	"besst/internal/besst"
	"besst/internal/dse"
	"besst/internal/lulesh"
	"besst/internal/stats"
)

// RequestSchemaVersion is bumped whenever CampaignRequest's layout
// changes incompatibly; requests carrying any other version are
// rejected with 400 rather than silently misread.
const RequestSchemaVersion = 1

// Campaign kinds.
const (
	KindSingle     = "single"      // one simulation run
	KindMonteCarlo = "monte_carlo" // replicated Monte Carlo campaign
	KindSweep      = "dse_sweep"   // design-space overhead sweep
)

// Bounds keeping one request from monopolizing the service.
const (
	maxTrials       = 1 << 16
	maxModelSamples = 1 << 12
	maxRequestBytes = 1 << 20
)

// CampaignRequest is the versioned body of POST /v1/campaigns. Its
// canonical JSON form (sorted keys, normalized numbers) is the campaign
// identity: the ID, the compile-cache keys, the checkpoint-journal
// manifest hash, and — when run.seed is zero — the master seed are all
// derived from it, so identical configs can never fork.
type CampaignRequest struct {
	SchemaVersion int `json:"schema_version"`
	// Kind selects the campaign shape: single | monte_carlo | dse_sweep.
	Kind string `json:"kind"`
	// Tenant scopes admission fairness (in-flight caps); empty means the
	// anonymous tenant. It is part of the campaign identity but not of
	// the compile-cache key: tenants share compiled artifacts.
	Tenant string `json:"tenant,omitempty"`
	// Run is the canonical serialized run configuration — the same
	// schema besst-sim -json emits, replayable verbatim.
	Run besst.RunSpec `json:"run"`
	// Trials is the Monte Carlo replication count (monte_carlo only).
	Trials int `json:"trials,omitempty"`
	// App selects the LULESH application build (single/monte_carlo).
	App *AppSpec `json:"app,omitempty"`
	// Model selects how performance models are developed; defaults to
	// symbolic regression on 10 samples per combination, seed 1.
	Model *ModelSpec `json:"model,omitempty"`
	// Sweep is the design-space grid (dse_sweep only).
	Sweep *SweepSpec `json:"sweep,omitempty"`
}

// AppSpec parameterizes the LULESH AppBEO builder.
type AppSpec struct {
	EPR      int    `json:"epr"`
	Ranks    int    `json:"ranks"`
	Steps    int    `json:"steps"`
	Scenario string `json:"scenario"` // noft | l1 | l1l2
	// Period overrides the checkpoint period in timesteps (0 keeps the
	// scenario default).
	Period int `json:"period,omitempty"`
}

// ModelSpec parameterizes model development. The seed defaults to 1
// rather than deriving from the request hash: model bundles are shared
// across requests through the compile cache, so their identity must
// depend only on these fields.
type ModelSpec struct {
	Method  string `json:"method,omitempty"` // symreg (default) | interp
	Samples int    `json:"samples,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
}

// SweepSpec is the dse_sweep grid, mirroring dse.SweepConfig.
type SweepSpec struct {
	EPRs      []int    `json:"eprs"`
	Ranks     []int    `json:"ranks"` // strictly ascending; first anchors the baseline
	Scenarios []string `json:"scenarios"`
	Timesteps int      `json:"timesteps"`
	MCRuns    int      `json:"mc_runs"`
	// Search, when present, runs the sweep as a surrogate-guided search
	// instead of exhaustive enumeration. It canonicalizes into the
	// campaign identity like every other field, so a searched and an
	// exhaustive sweep of the same grid are distinct campaigns.
	Search *SearchSpec `json:"search,omitempty"`
}

// SearchSpec mirrors dse.SearchConfig (its canonical fields only).
type SearchSpec struct {
	// Budget is the fraction of grid points the search may fully
	// simulate, in (0, 1].
	Budget float64 `json:"budget"`
	// RoundSize bounds full simulations per refinement round (0: auto).
	RoundSize int `json:"round_size,omitempty"`
	// Explore weighs surrogate uncertainty in the acquisition (0: 1).
	Explore float64 `json:"explore,omitempty"`
	// Patience is the no-improvement round tolerance (0: 2).
	Patience int `json:"patience,omitempty"`
}

// CampaignResult is the body of GET /v1/campaigns/{id}/result: one flat
// document covering all three kinds. It is built only from simulation
// outputs (never wall-clock), so for a given request it is
// byte-reproducible across worker counts, restarts, and cache states.
type CampaignResult struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Kind          string `json:"kind"`
	// Run echoes the effective run configuration with the derived seed
	// resolved, so any result can be replayed as a pinned request.
	Run besst.RunSpec `json:"run"`

	// single / monte_carlo:
	Trials       int              `json:"trials,omitempty"`
	Makespan     *stats.Summary   `json:"makespan,omitempty"`
	Makespans    []float64        `json:"makespans,omitempty"`
	EventsPerRun uint64           `json:"events_per_run,omitempty"`
	CkptTimes    []float64        `json:"ckpt_times,omitempty"`
	Breakdown    *besst.Breakdown `json:"breakdown,omitempty"`
	FailedTrials []int            `json:"failed_trials,omitempty"`

	// dse_sweep:
	Cells        []dse.Cell `json:"cells,omitempty"`
	FailedPoints []int      `json:"failed_points,omitempty"`
	// Search summarizes a surrogate-guided sweep (absent for
	// exhaustive sweeps, so their documents are unchanged).
	Search *SearchSummary `json:"search,omitempty"`
}

// SearchSummary is the result-side record of a surrogate-guided sweep:
// how much of the grid was fully simulated and which configuration won.
// Built only from simulation outputs, so it is byte-reproducible like
// the rest of the result document.
type SearchSummary struct {
	Budget     float64  `json:"budget"`
	GridPoints int      `json:"grid_points"`
	FullSims   int      `json:"full_sims"`
	Rounds     int      `json:"rounds"`
	Best       dse.Cell `json:"best"`
}

// CampaignStatus is the body of GET /v1/campaigns/{id} (and each line
// of the ?watch=1 NDJSON stream).
type CampaignStatus struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Kind          string `json:"kind"`
	Tenant        string `json:"tenant,omitempty"`
	// State is one of queued | running | done | failed | interrupted.
	State string `json:"state"`
	// Seed is the effective master seed (request seed or hash-derived).
	Seed uint64 `json:"seed"`
	// CacheHit reports, once the campaign finished, whether its compiled
	// artifact came from the compile cache.
	CacheHit *bool  `json:"cache_hit,omitempty"`
	Error    string `json:"error,omitempty"`
	// Divergences lists replica disagreements observed while the
	// campaign ran on a distributed backend: each entry names a shard
	// whose replicas did not all return byte-identical journals. The
	// majority result was accepted (otherwise the campaign fails), but
	// a divergence is never silent — it means a worker computed, or
	// reported, different bytes for the same deterministic work.
	Divergences []string `json:"divergences,omitempty"`
	// Progress is the live obs.Collector campaign snapshot.
	Progress  obsProgress `json:"progress"`
	ResultURL string      `json:"result_url,omitempty"`
}

// errorDoc is every non-2xx JSON body.
type errorDoc struct {
	Error string `json:"error"`
}

// plan is a validated, defaulted, executable request.
type plan struct {
	req       CampaignRequest
	id        string
	canonical []byte          // canonical request JSON (the campaign identity)
	seed      uint64          // effective master seed
	runCfg    besst.RunConfig // single / monte_carlo; Seed resolved
	trials    int             // single: 1
	scenario  lulesh.Scenario // app scenario with period applied
	sweepCfg  dse.SweepConfig // dse_sweep; Seed resolved, Workers/Collector unset
	// searchCfg is non-nil for surrogate-guided sweeps (Cancel unset —
	// runtime plumbing is attached at execution).
	searchCfg *dse.SearchConfig
}

// units is the number of independent work items the campaign shards
// into: Monte Carlo trials, or distinct sweep design points.
func (pl *plan) units() int {
	if pl.req.Kind == KindSweep {
		return dse.NewGrid(pl.sweepCfg).NumPoints()
	}
	return pl.trials
}

// badRequest is a 400-class plan error.
type badRequest struct{ msg string }

func (e *badRequest) Error() string { return e.msg }

func reject(format string, args ...any) error {
	return &badRequest{msg: fmt.Sprintf(format, args...)}
}

// buildPlan strictly decodes the canonical request bytes and validates
// every field through the same Validate paths the CLIs use
// (besst.RunSpec.Config, dse.SweepConfig.Validate, lulesh.ParseScenario).
func buildPlan(id string, sum [sha256.Size]byte, canonical []byte) (*plan, error) {
	var req CampaignRequest
	dec := json.NewDecoder(bytes.NewReader(canonical))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, reject("bad request: %v", err)
	}
	if req.SchemaVersion != 0 && req.SchemaVersion != RequestSchemaVersion {
		return nil, reject("unsupported schema_version %d (want %d)", req.SchemaVersion, RequestSchemaVersion)
	}

	pl := &plan{req: req, id: id, canonical: canonical}
	pl.seed = req.Run.Seed
	if pl.seed == 0 {
		pl.seed = DeriveSeed(sum)
	}

	switch req.Kind {
	case KindSingle, KindMonteCarlo:
		if req.App == nil {
			return nil, reject("%s campaign requires an app spec", req.Kind)
		}
		cfg, err := req.Run.Config()
		if err != nil {
			return nil, reject("run: %v", err)
		}
		cfg.Seed = pl.seed
		if req.Kind == KindMonteCarlo {
			cfg.MonteCarlo = true
			if req.Trials <= 0 {
				return nil, reject("monte_carlo campaign requires trials >= 1")
			}
			if req.Trials > maxTrials {
				return nil, reject("trials %d exceeds the %d bound", req.Trials, maxTrials)
			}
			pl.trials = req.Trials
		} else {
			if req.Trials > 1 {
				return nil, reject("single campaign cannot set trials (%d); use kind monte_carlo", req.Trials)
			}
			pl.trials = 1
		}
		pl.runCfg = cfg
		sc, err := validateApp(req.App)
		if err != nil {
			return nil, err
		}
		pl.scenario = sc
	case KindSweep:
		if req.Sweep == nil {
			return nil, reject("dse_sweep campaign requires a sweep spec")
		}
		if req.App != nil || req.Trials != 0 {
			return nil, reject("dse_sweep campaign takes a sweep grid, not app/trials")
		}
		scenarios := make([]lulesh.Scenario, 0, len(req.Sweep.Scenarios))
		for _, name := range req.Sweep.Scenarios {
			sc, err := lulesh.ParseScenario(name)
			if err != nil {
				return nil, reject("sweep: %v", err)
			}
			scenarios = append(scenarios, sc)
		}
		cfg := dse.NewSweepConfig(
			dse.WithEPRs(req.Sweep.EPRs...),
			dse.WithRanks(req.Sweep.Ranks...),
			dse.WithScenarios(scenarios...),
			dse.WithTimesteps(req.Sweep.Timesteps),
			dse.WithMCRuns(req.Sweep.MCRuns),
			dse.WithSeed(pl.seed),
		)
		if err := cfg.Validate(); err != nil {
			return nil, reject("sweep: %v", err)
		}
		if cfg.MCRuns > maxTrials {
			return nil, reject("sweep mc_runs %d exceeds the %d bound", cfg.MCRuns, maxTrials)
		}
		for _, r := range cfg.Ranks {
			if !lulesh.IsPerfectCube(r) {
				return nil, reject("sweep ranks %d is not a perfect cube", r)
			}
		}
		pl.sweepCfg = cfg
		if req.Sweep.Search != nil {
			scfg := dse.SearchConfig{
				Budget:    req.Sweep.Search.Budget,
				RoundSize: req.Sweep.Search.RoundSize,
				Explore:   req.Sweep.Search.Explore,
				Patience:  req.Sweep.Search.Patience,
			}
			if err := scfg.Validate(); err != nil {
				return nil, reject("sweep: %v", err)
			}
			pl.searchCfg = &scfg
		}
	case "":
		return nil, reject("kind is required: single | monte_carlo | dse_sweep")
	default:
		return nil, reject("unknown kind %q (want single | monte_carlo | dse_sweep)", req.Kind)
	}

	model, err := validateModel(req.Model)
	if err != nil {
		return nil, err
	}
	pl.req.Model = &model
	return pl, nil
}

// validateApp checks the app spec and resolves its scenario (with the
// period override applied).
func validateApp(app *AppSpec) (lulesh.Scenario, error) {
	if app.EPR <= 0 {
		return lulesh.Scenario{}, reject("app: non-positive epr %d", app.EPR)
	}
	if app.Steps <= 0 {
		return lulesh.Scenario{}, reject("app: non-positive steps %d", app.Steps)
	}
	if !lulesh.IsPerfectCube(app.Ranks) {
		return lulesh.Scenario{}, reject("app: ranks %d is not a perfect cube", app.Ranks)
	}
	if app.Period < 0 {
		return lulesh.Scenario{}, reject("app: negative checkpoint period %d", app.Period)
	}
	sc, err := lulesh.ParseScenario(app.Scenario)
	if err != nil {
		return lulesh.Scenario{}, reject("app: %v", err)
	}
	if app.Period > 0 {
		for i := range sc.Schedules {
			sc.Schedules[i].Period = app.Period
		}
	}
	return sc, nil
}

// validateModel applies model-spec defaults (symreg, 10 samples, seed 1)
// and bounds.
func validateModel(m *ModelSpec) (ModelSpec, error) {
	spec := ModelSpec{Method: "symreg", Samples: 10, Seed: 1}
	if m != nil {
		spec = *m
	}
	if spec.Method == "" {
		spec.Method = "symreg"
	}
	if spec.Method != "symreg" && spec.Method != "interp" {
		return spec, reject("model: unknown method %q (want symreg | interp)", spec.Method)
	}
	if spec.Samples == 0 {
		spec.Samples = 10
	}
	if spec.Samples < 0 || spec.Samples > maxModelSamples {
		return spec, reject("model: samples %d outside [1, %d]", spec.Samples, maxModelSamples)
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	return spec, nil
}

// effectiveSpec is the run spec echoed in results: the request's run
// configuration with the derived seed pinned.
func (pl *plan) effectiveSpec() besst.RunSpec {
	if pl.req.Kind == KindSweep {
		spec := pl.req.Run
		spec.SchemaVersion = besst.SpecSchemaVersion
		spec.Seed = pl.seed
		return spec
	}
	return pl.runCfg.Spec()
}
