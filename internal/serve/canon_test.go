package serve

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestCanonicalJSONNormalizes(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"sorted keys", `{"b":2,"a":1}`, `{"a":1,"b":2}`},
		{"whitespace", "{\n  \"a\": 1 ,\t\"b\": [ 1 , 2 ]\n}", `{"a":1,"b":[1,2]}`},
		{"float spelling of int", `{"x":1.0}`, `{"x":1}`},
		{"exponent spelling", `{"x":1e0}`, `{"x":1}`},
		{"negative zero int", `{"x":-0}`, `{"x":0}`},
		{"negative zero float", `{"x":-0.0}`, `{"x":0}`},
		{"fraction spellings", `{"x":5e-1}`, `{"x":0.5}`},
		{"big int preserved", `{"x":100000000000000000001}`, `{"x":100000000000000000001}`},
		{"escape spelling", `{"x":"A"}`, `{"x":"A"}`},
		{"nested", `{"b":{"d":4,"c":3},"a":[{"y":2.0,"x":1}]}`, `{"a":[{"x":1,"y":2}],"b":{"c":3,"d":4}}`},
		{"scalars", `[true,false,null,"s"]`, `[true,false,null,"s"]`},
	}
	for _, tc := range cases {
		got, err := CanonicalJSON([]byte(tc.in))
		if err != nil {
			t.Fatalf("%s: CanonicalJSON(%q): %v", tc.name, tc.in, err)
		}
		if string(got) != tc.want {
			t.Errorf("%s: CanonicalJSON(%q) = %q, want %q", tc.name, tc.in, got, tc.want)
		}
	}
}

func TestCanonicalJSONRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "{", `{"a":1}{"b":2}`, `{"a":1} trailing`, "nope"} {
		if _, err := CanonicalJSON([]byte(in)); err == nil {
			t.Errorf("CanonicalJSON(%q) accepted invalid input", in)
		}
	}
}

// TestHashRequestSpellingInvariance is the regression for the canonical
// hashing bugfix: semantically identical configs, spelled differently,
// must produce one campaign identity...
func TestHashRequestSpellingInvariance(t *testing.T) {
	a := []byte(`{"kind":"monte_carlo","trials":5,"run":{"seed":7,"workers":2}}`)
	b := []byte("{\"run\": {\"workers\": 2.0, \"seed\": 7},\n \"trials\": 5, \"kind\": \"monte_carlo\"}")
	idA, canonA, sumA, err := HashRequest(a)
	if err != nil {
		t.Fatal(err)
	}
	idB, canonB, sumB, err := HashRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if idA != idB || sumA != sumB || !bytes.Equal(canonA, canonB) {
		t.Fatalf("spellings hashed apart: %s vs %s (%q vs %q)", idA, idB, canonA, canonB)
	}
	if DeriveSeed(sumA) != DeriveSeed(sumB) {
		t.Fatal("derived seeds differ for identical configs")
	}

	c := []byte(`{"kind":"monte_carlo","trials":6,"run":{"seed":7,"workers":2}}`)
	idC, _, _, err := HashRequest(c)
	if err != nil {
		t.Fatal(err)
	}
	if idC == idA {
		t.Fatal("distinct configs collided")
	}
}

// ...and at the cache layer: two spellings must share one cache entry
// (one miss, then hits).
func TestCacheOneEntryForEquivalentSpellings(t *testing.T) {
	idA, _, _, err := HashRequest([]byte(`{"samples":2,"method":"interp"}`))
	if err != nil {
		t.Fatal(err)
	}
	idB, _, _, err := HashRequest([]byte(`{"method": "interp", "samples": 2.0}`))
	if err != nil {
		t.Fatal(err)
	}

	c := newCache(4)
	builds := 0
	build := func() (any, error) { builds++; return "artifact", nil }
	if _, hit, _ := c.Get(idA, build); hit {
		t.Fatal("first Get reported a hit on an empty cache")
	}
	if _, hit, _ := c.Get(idB, build); !hit {
		t.Fatal("equivalent spelling missed the cache")
	}
	if builds != 1 {
		t.Fatalf("built %d times, want 1", builds)
	}
	st := c.Stats()
	if st.Entries != 1 || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 entry, 1 hit, 1 miss", st)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := newCache(4)
	var mu sync.Mutex
	builds := 0
	release := make(chan struct{})
	build := func() (any, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		<-release
		return 42, nil
	}
	const n = 8
	var wg sync.WaitGroup
	results := make([]any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Get("k", build)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if builds != 1 {
		t.Fatalf("concurrent Gets built %d times, want 1 (single-flight)", builds)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %v, want 42", i, v)
		}
	}
}

func TestCacheEvictsLRU(t *testing.T) {
	c := newCache(2)
	build := func(v int) func() (any, error) { return func() (any, error) { return v, nil } }
	_, _, _ = c.Get("a", build(1))
	_, _, _ = c.Get("b", build(2))
	_, _, _ = c.Get("a", build(1)) // a now most recent
	_, _, _ = c.Get("c", build(3)) // evicts b
	if _, hit, _ := c.Get("a", build(1)); !hit {
		t.Fatal("recently used entry was evicted")
	}
	if _, hit, _ := c.Get("b", build(2)); hit {
		t.Fatal("least recently used entry survived eviction")
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions > 0", st)
	}
}

func TestCacheDoesNotCacheFailures(t *testing.T) {
	c := newCache(4)
	calls := 0
	failing := func() (any, error) { calls++; return nil, fmt.Errorf("boom %d", calls) }
	if _, _, err := c.Get("k", failing); err == nil {
		t.Fatal("failed build returned nil error")
	}
	if _, hit, err := c.Get("k", failing); err == nil || hit {
		t.Fatalf("failure was cached (hit=%v err=%v)", hit, err)
	}
	if calls != 2 {
		t.Fatalf("build ran %d times, want 2 (failures retried)", calls)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed builds left %d entries in the cache", st.Entries)
	}
}
