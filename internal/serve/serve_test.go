package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// mcRequest is the Monte Carlo request the identity tests share: seed
// unpinned, so the master seed is derived from the request hash and
// byte-reproducibility covers the derivation path too.
const mcRequest = `{
  "schema_version": 1,
  "kind": "monte_carlo",
  "trials": 6,
  "run": {"mode": "direct", "per_rank_noise": true},
  "app": {"epr": 4, "ranks": 8, "steps": 10, "scenario": "l1l2", "period": 5},
  "model": {"method": "interp", "samples": 2, "seed": 1}
}`

const sweepRequest = `{
  "schema_version": 1,
  "kind": "dse_sweep",
  "run": {},
  "sweep": {"eprs": [5, 6], "ranks": [8, 27], "scenarios": ["noft", "l1"], "timesteps": 10, "mc_runs": 2},
  "model": {"method": "interp", "samples": 2, "seed": 1}
}`

// newTestServer boots a server plus an httptest front end and tears
// both down with the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		ts.Close()
	})
	return srv, ts
}

// post submits a campaign request and decodes the response document.
func post(t *testing.T, base, body string) (CampaignStatus, *http.Response) {
	t.Helper()
	resp, err := http.Post(base+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatalf("POST body: %v", err)
	}
	var st CampaignStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decode POST response %q: %v", raw, err)
		}
	}
	return st, resp
}

// status fetches one status document.
func status(t *testing.T, base, id string) CampaignStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitState polls until the campaign reaches a settled state and
// returns it.
func waitState(t *testing.T, base, id string) CampaignStatus {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for {
		st := status(t, base, id)
		if st.State != stateQueued && st.State != stateRunning {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s still %s after 90s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// result fetches the result body.
func result(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/campaigns/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, raw)
	}
	return raw
}

// runToResult posts, waits for done, and fetches the result body.
func runToResult(t *testing.T, base, body string) []byte {
	t.Helper()
	st, resp := post(t, base, body)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	final := waitState(t, base, st.ID)
	if final.State != stateDone {
		t.Fatalf("campaign %s settled as %s: %s", st.ID, final.State, final.Error)
	}
	return result(t, base, st.ID)
}

func statz(t *testing.T, base string) Statz {
	t.Helper()
	resp, err := http.Get(base + "/v1/statz")
	if err != nil {
		t.Fatalf("GET statz: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	var st Statz
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode statz: %v", err)
	}
	return st
}

// TestByteIdenticalAcrossWorkersAndCache is the core service
// invariant: the same request body produces byte-identical result
// documents at 1 and 8 workers, cold cache and warm.
func TestByteIdenticalAcrossWorkersAndCache(t *testing.T) {
	for _, body := range []string{mcRequest, sweepRequest} {
		_, ts1 := newTestServer(t, Config{Workers: 1})
		_, ts8 := newTestServer(t, Config{Workers: 8})

		cold := runToResult(t, ts1.URL, body)
		warm := runToResult(t, ts1.URL, body) // re-post: warm compile cache
		wide := runToResult(t, ts8.URL, body)

		if !bytes.Equal(cold, warm) {
			t.Errorf("cold and warm results differ:\n%s\nvs\n%s", cold, warm)
		}
		if !bytes.Equal(cold, wide) {
			t.Errorf("1-worker and 8-worker results differ:\n%s\nvs\n%s", cold, wide)
		}
		st := statz(t, ts1.URL)
		if st.Cache.Hits == 0 {
			t.Errorf("warm re-post did not hit the compile cache: %+v", st.Cache)
		}
	}
}

// TestEquivalentSpellingsShareOneCampaign proves the canonical-hash fix
// end to end: a permuted, float-spelled, whitespace-mangled version of
// the same request maps to the same campaign ID and compile cache
// entries.
func TestEquivalentSpellingsShareOneCampaign(t *testing.T) {
	respelled := `{
  "model": {"samples": 2.0, "seed": 1, "method": "interp"},
  "app": {"period": 5, "scenario": "l1l2", "steps": 10.0, "ranks": 8, "epr": 4},
  "run": {"per_rank_noise": true, "mode": "direct"},
  "trials": 6e0,
  "kind": "monte_carlo",
  "schema_version": 1
}`
	_, ts := newTestServer(t, Config{Workers: 2})
	first := runToResult(t, ts.URL, mcRequest)
	st, _ := post(t, ts.URL, respelled)
	final := waitState(t, ts.URL, st.ID)
	if final.State != stateDone {
		t.Fatalf("respelled campaign settled as %s: %s", final.State, final.Error)
	}
	second := result(t, ts.URL, st.ID)
	if !bytes.Equal(first, second) {
		t.Fatalf("equivalent spellings produced different results")
	}
	sz := statz(t, ts.URL)
	if sz.Cache.Misses != 2 { // one model artifact + one compiled app — ever
		t.Fatalf("equivalent spellings compiled twice: %+v", sz.Cache)
	}
	if len(sz.Campaigns) != 1 || sz.Campaigns[stateDone] != 1 {
		t.Fatalf("equivalent spellings created distinct campaigns: %+v", sz.Campaigns)
	}
}

// TestJoinInFlightCampaign checks that a duplicate POST while the
// campaign is queued or running joins it instead of re-admitting.
func TestJoinInFlightCampaign(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	srv.trialPause = 20 * time.Millisecond

	st1, resp1 := post(t, ts.URL, mcRequest)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST status %d, want 202", resp1.StatusCode)
	}
	st2, resp2 := post(t, ts.URL, mcRequest)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("duplicate POST status %d, want 200 (joined)", resp2.StatusCode)
	}
	if st1.ID != st2.ID {
		t.Fatalf("duplicate POST got a different ID: %s vs %s", st1.ID, st2.ID)
	}
	if got := waitState(t, ts.URL, st1.ID); got.State != stateDone {
		t.Fatalf("campaign settled as %s: %s", got.State, got.Error)
	}
	if sz := statz(t, ts.URL); sz.Completed != 1 {
		t.Fatalf("joined POST executed a second campaign: completed=%d", sz.Completed)
	}
}

// TestQueueFullBackpressure fills the admission queue and expects 429
// with a Retry-After hint, counted in /v1/statz.
func TestQueueFullBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxActive: 1, MaxPerTenant: 1, MaxQueued: 1})
	srv.trialPause = 50 * time.Millisecond

	// Three distinct campaigns (pinned seeds differ): first runs, second
	// queues, third must bounce.
	seedReq := func(seed string) string {
		return strings.Replace(mcRequest, `"run": {"mode": "direct", "per_rank_noise": true}`,
			`"run": {"mode": "direct", "per_rank_noise": true, "seed": `+seed+`}`, 1)
	}
	_, r1 := post(t, ts.URL, seedReq("11"))
	_, r2 := post(t, ts.URL, seedReq("12"))
	_, r3 := post(t, ts.URL, seedReq("13"))
	if r1.StatusCode != http.StatusAccepted || r2.StatusCode != http.StatusAccepted {
		t.Fatalf("setup POSTs got %d, %d; want 202, 202", r1.StatusCode, r2.StatusCode)
	}
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST got %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Fatal("429 response is missing Retry-After")
	}
	if sz := statz(t, ts.URL); sz.Rejected != 1 {
		t.Fatalf("statz rejected = %d, want 1", sz.Rejected)
	}
}

// TestTenantFairness floods tenant A and checks tenant B is not
// head-of-line blocked behind A's queued work.
func TestTenantFairness(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxActive: 2, MaxPerTenant: 1, MaxQueued: 8})
	srv.trialPause = 30 * time.Millisecond

	tenantReq := func(tenant, seed string) string {
		return strings.Replace(
			strings.Replace(mcRequest, `"kind": "monte_carlo",`, `"kind": "monte_carlo", "tenant": "`+tenant+`",`, 1),
			`"run": {"mode": "direct", "per_rank_noise": true}`,
			`"run": {"mode": "direct", "per_rank_noise": true, "seed": `+seed+`}`, 1)
	}
	a1, _ := post(t, ts.URL, tenantReq("a", "21"))
	a2, _ := post(t, ts.URL, tenantReq("a", "22"))
	b1, _ := post(t, ts.URL, tenantReq("b", "23"))

	// b's first campaign must start even though a's second was queued
	// earlier; a's second must still be queued while a1 runs.
	deadline := time.Now().Add(30 * time.Second)
	for {
		stA1, stA2, stB1 := status(t, ts.URL, a1.ID), status(t, ts.URL, a2.ID), status(t, ts.URL, b1.ID)
		if stB1.State == stateRunning || stB1.State == stateDone {
			if stA1.State == stateRunning && stA2.State != stateQueued {
				t.Fatalf("tenant a ran two campaigns concurrently: a1=%s a2=%s", stA1.State, stA2.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tenant b head-of-line blocked: a1=%s a2=%s b1=%s", stA1.State, stA2.State, stB1.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range []string{a1.ID, a2.ID, b1.ID} {
		if st := waitState(t, ts.URL, id); st.State != stateDone {
			t.Fatalf("campaign %s settled as %s: %s", id, st.State, st.Error)
		}
	}
}

// TestDrainCheckpointsAndResumes is the graceful-shutdown contract:
// draining mid-campaign checkpoints finished trials, the campaign
// reports interrupted, and re-posting the identical request against a
// fresh server on the same state directory resumes from the journal and
// produces the byte-identical result an uninterrupted server yields.
func TestDrainCheckpointsAndResumes(t *testing.T) {
	pinned := strings.Replace(mcRequest, `"trials": 6`, `"trials": 12`, 1)
	pinned = strings.Replace(pinned, `"run": {"mode": "direct", "per_rank_noise": true}`,
		`"run": {"mode": "direct", "per_rank_noise": true, "workers": 1}`, 1)

	// Reference: uninterrupted run, no state dir.
	_, refTS := newTestServer(t, Config{})
	want := runToResult(t, refTS.URL, pinned)

	state := t.TempDir()
	srv1 := NewServer(Config{StateDir: state})
	ts1 := httptest.NewServer(srv1.Handler())
	defer ts1.Close()
	srv1.trialPause = 20 * time.Millisecond

	st, _ := post(t, ts1.URL, pinned)
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur := status(t, ts1.URL, st.ID)
		if cur.Progress.TrialsDone >= 2 {
			break
		}
		if cur.State == stateDone || cur.State == stateFailed {
			t.Fatalf("campaign finished before the drain could interrupt it (%s)", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign made no progress before drain")
		}
		time.Sleep(2 * time.Millisecond)
	}
	srv1.Drain() // the SIGTERM path minus the signal plumbing

	interrupted := status(t, ts1.URL, st.ID)
	if interrupted.State != stateInterrupted {
		t.Fatalf("drained campaign is %s, want interrupted", interrupted.State)
	}
	journals, err := filepath.Glob(filepath.Join(state, "CKPT_serve_*.jsonl"))
	if err != nil || len(journals) != 1 {
		t.Fatalf("journal glob: %v, %v", journals, err)
	}

	// Fresh server, same state dir: the identical request resumes.
	_, ts2 := newTestServer(t, Config{StateDir: state})
	st2, _ := post(t, ts2.URL, pinned)
	if st2.ID != st.ID {
		t.Fatalf("resume got a different campaign ID: %s vs %s", st2.ID, st.ID)
	}
	final := waitState(t, ts2.URL, st2.ID)
	if final.State != stateDone {
		t.Fatalf("resumed campaign settled as %s: %s", final.State, final.Error)
	}
	if final.Progress.Replayed == 0 {
		t.Fatal("resumed campaign replayed nothing from the journal")
	}
	got := result(t, ts2.URL, st2.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from the uninterrupted reference:\n%s\nvs\n%s", got, want)
	}
}

// TestWatchStreamsStatus exercises the NDJSON watch mode.
func TestWatchStreamsStatus(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	st, _ := post(t, ts.URL, mcRequest)
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "?watch=1")
	if err != nil {
		t.Fatalf("GET watch: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch Content-Type = %q", ct)
	}
	var last CampaignStatus
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("watch line %d: %v", lines, err)
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("watch stream: %v", err)
	}
	if lines == 0 || last.State != stateDone {
		t.Fatalf("watch ended after %d lines in state %q, want done", lines, last.State)
	}
}

// TestRejectsMalformedRequests covers the 400 paths.
func TestRejectsMalformedRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct{ name, body string }{
		{"invalid JSON", `{`},
		{"trailing document", `{"kind":"single"}{"kind":"single"}`},
		{"unknown field", `{"kind":"monte_carlo","trials":2,"frobnicate":1,"run":{},"app":{"epr":4,"ranks":8,"steps":5,"scenario":"l1"}}`},
		{"missing kind", `{"run":{}}`},
		{"unknown kind", `{"kind":"warp","run":{}}`},
		{"bad schema version", `{"schema_version":99,"kind":"single","run":{},"app":{"epr":4,"ranks":8,"steps":5,"scenario":"l1"}}`},
		{"bad mode", `{"kind":"single","run":{"mode":"warp"},"app":{"epr":4,"ranks":8,"steps":5,"scenario":"l1"}}`},
		{"mc without trials", `{"kind":"monte_carlo","run":{},"app":{"epr":4,"ranks":8,"steps":5,"scenario":"l1"}}`},
		{"single with trials", `{"kind":"single","trials":3,"run":{},"app":{"epr":4,"ranks":8,"steps":5,"scenario":"l1"}}`},
		{"non-cube ranks", `{"kind":"single","run":{},"app":{"epr":4,"ranks":10,"steps":5,"scenario":"l1"}}`},
		{"bad scenario", `{"kind":"single","run":{},"app":{"epr":4,"ranks":8,"steps":5,"scenario":"l9"}}`},
		{"bad model method", `{"kind":"single","run":{},"app":{"epr":4,"ranks":8,"steps":5,"scenario":"l1"},"model":{"method":"magic"}}`},
		{"sweep without grid", `{"kind":"dse_sweep","run":{}}`},
		{"sweep bad ranks order", `{"kind":"dse_sweep","run":{},"sweep":{"eprs":[5],"ranks":[27,8],"scenarios":["l1"],"timesteps":5,"mc_runs":1}}`},
		{"sweep with app", `{"kind":"dse_sweep","run":{},"app":{"epr":4,"ranks":8,"steps":5,"scenario":"l1"},"sweep":{"eprs":[5],"ranks":[8],"scenarios":["l1"],"timesteps":5,"mc_runs":1}}`},
	}
	for _, tc := range cases {
		_, resp := post(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

// TestStatusAndResultNotFound covers lookups of unknown campaigns and
// premature result fetches.
func TestStatusAndResultNotFound(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1})
	srv.trialPause = 20 * time.Millisecond

	resp, err := http.Get(ts.URL + "/v1/campaigns/ffffffffffffffff")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown campaign status %d, want 404", resp.StatusCode)
	}

	st, _ := post(t, ts.URL, mcRequest)
	resp, err = http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("premature result fetch status %d, want 409", resp.StatusCode)
	}
	waitState(t, ts.URL, st.ID)
}

// fakeBackend stands in for the distributed coordinator: it computes
// payloads through an in-process ShardExecutor and reports a scripted
// divergence, so the backend execution path and divergence surfacing
// are testable without processes.
type fakeBackend struct {
	ex          *ShardExecutor
	divergences []string
}

func (b *fakeBackend) Run(request []byte, n int, cancel <-chan struct{}, col BackendCollector) ([]json.RawMessage, BackendReport, error) {
	p, err := ParsePlan(request)
	if err != nil {
		return nil, BackendReport{}, err
	}
	payloads, err := b.ex.ExecShard(p.ID(), request, 0, n)
	if err != nil {
		return nil, BackendReport{}, err
	}
	if col != nil {
		col.ShardDone(0, 0, n)
		for range b.divergences {
			col.ShardDivergence(0, 2, 3)
		}
	}
	return payloads, BackendReport{Shards: 1, Replicas: 3, Divergences: b.divergences}, nil
}

// TestBackendExecutionByteIdentical runs monte_carlo and dse_sweep
// campaigns through a Config.Backend and requires the result documents
// to match in-process execution exactly, with the backend's divergence
// notes surfaced on the settled status.
func TestBackendExecutionByteIdentical(t *testing.T) {
	_, local := newTestServer(t, Config{Workers: 2})
	be := &fakeBackend{
		ex:          NewShardExecutor(ExecConfig{Workers: 2, CacheCap: 4}),
		divergences: []string{"shard 0 [0,3): 2/3 replicas agreed on journal abc; rejected minority journals: [def]"},
	}
	_, backed := newTestServer(t, Config{Backend: be})

	for _, body := range []string{mcRequest, sweepRequest} {
		want := runToResult(t, local.URL, body)
		st, _ := post(t, backed.URL, body)
		final := waitState(t, backed.URL, st.ID)
		if final.State != stateDone {
			t.Fatalf("backend campaign settled as %s: %s", final.State, final.Error)
		}
		if len(final.Divergences) != 1 || !strings.Contains(final.Divergences[0], "2/3 replicas agreed") {
			t.Fatalf("backend divergences not surfaced on status: %v", final.Divergences)
		}
		got := result(t, backed.URL, st.ID)
		if !bytes.Equal(got, want) {
			t.Fatalf("backend result diverged from in-process run (%d vs %d bytes)", len(got), len(want))
		}
	}
}

// TestCampaignTTLEviction lets a settled campaign age past its TTL and
// expects the registry to drop it (status 404) with the eviction
// counted in /v1/statz.
func TestCampaignTTLEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, CampaignTTL: 30 * time.Millisecond})
	st, resp := post(t, ts.URL, mcRequest)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST status %d", resp.StatusCode)
	}
	if final := waitState(t, ts.URL, st.ID); final.State != stateDone {
		t.Fatalf("campaign settled as %s: %s", final.State, final.Error)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("campaign not evicted 10s past its 30ms TTL (status %d)", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if sz := statz(t, ts.URL); sz.Evicted == 0 {
		t.Fatalf("eviction not counted: %+v", sz)
	}
}

// TestHealthzReflectsDrain checks liveness before and after Drain, and
// that a draining server refuses new work with 503.
func TestHealthzReflectsDrain(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	var h Healthz
	if err := getJSON(ts.URL+"/v1/healthz", &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Draining {
		t.Fatalf("healthz before drain: %+v", h)
	}
	srv.Drain()
	if err := getJSON(ts.URL+"/v1/healthz", &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || !h.Draining {
		t.Fatalf("healthz after drain: %+v", h)
	}
	_, resp := post(t, ts.URL, mcRequest)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining server admitted work: status %d, want 503", resp.StatusCode)
	}
}

// getJSON fetches one JSON document (test helper; the production
// client lives in internal/serveclient).
func getJSON(url string, doc any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s status %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, doc)
}
