package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/dse"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/resilience"
	"besst/internal/stats"
	"besst/internal/workflow"
)

// modelArtifact is a cached model-development result: the emulator
// (machine description + FTI cost config) and the fitted model bundle.
type modelArtifact struct {
	em     *groundtruth.Emulator
	models *workflow.Models
}

// compiledArtifact is a cached compiled application: the AppBEO bound
// to its modeled architecture, ready for RunWith/Replicate at any
// seed or worker count.
type compiledArtifact struct {
	cr *besst.CompiledRun
}

// cacheKey builds a canonical cache key from a defaulted spec struct.
// encoding/json emits struct fields in declaration order, so equal
// specs always produce equal keys.
func cacheKey(prefix string, v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("serve: cache key marshal: %v", err))
	}
	return prefix + "|" + string(b)
}

// artifacts is the compile pipeline behind both the Server and the
// standalone ShardExecutor: a single-flight LRU cache of developed
// model bundles and compiled applications. Splitting it from Server
// lets a besst-worker process reuse the exact build path (and
// cache-key discipline) of the service without carrying its admission
// machinery.
type artifacts struct {
	cache *cache
	// memo is the cross-campaign design-point result cache shared by
	// every sweep execution path (in-process, search, and shard).
	memo *dse.Memo
}

func newArtifacts(cap int, memo *dse.Memo) *artifacts {
	if memo == nil {
		memo = dse.NewMemo(0)
	}
	return &artifacts{cache: newCache(cap), memo: memo}
}

// memoBundle is the model-bundle half of a design point's memo key: the
// compile-cache model key canonically identifies which machine, app
// family, model method, sample count, and model seed produced the
// predictors a sweep evaluates against.
func memoBundle(spec ModelSpec) string { return cacheKey("model", spec) }

// models fetches (or develops) the model artifact for a plan's model
// spec through the compile cache.
func (a *artifacts) models(spec ModelSpec) (*modelArtifact, bool, error) {
	v, hit, err := a.cache.Get(cacheKey("model", spec), func() (art any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: model development failed: %v", r)
			}
		}()
		method := workflow.SymbolicRegression
		if spec.Method == "interp" {
			method = workflow.Interpolation
		}
		em := groundtruth.NewQuartz()
		models, _ := workflow.DevelopLuleshQuartz(em, spec.Samples, method, spec.Seed)
		return &modelArtifact{em: em, models: models}, nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*modelArtifact), hit, nil
}

// compiled fetches (or builds) the compiled application for a plan
// through the compile cache. The key covers the model spec and the app
// spec — everything that determines the compiled artifact — but not
// the run spec, seed, or tenant, so re-posts and seed variations of
// one config always hit.
func (a *artifacts) compiled(pl *plan) (*compiledArtifact, bool, error) {
	ma, _, err := a.models(*pl.req.Model)
	if err != nil {
		return nil, false, err
	}
	key := cacheKey("app", struct {
		Model ModelSpec
		App   AppSpec
	}{*pl.req.Model, *pl.req.App})
	v, hit, err := a.cache.Get(key, func() (art any, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("serve: compile failed: %v", r)
			}
		}()
		cfg := ma.em.Cost.Config
		app := lulesh.App(pl.req.App.EPR, pl.req.App.Ranks, pl.req.App.Steps, pl.scenario, cfg)
		arch := beo.NewArchBEO(ma.em.M, cfg.NodeSize)
		workflow.BindLulesh(arch, ma.models)
		if verr := arch.Validate(app); verr != nil {
			return nil, fmt.Errorf("serve: compile failed: %w", verr)
		}
		cr, cerr := besst.CompileErr(app, arch)
		if cerr != nil {
			return nil, fmt.Errorf("serve: compile failed: %w", cerr)
		}
		return &compiledArtifact{cr: cr}, nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*compiledArtifact), hit, nil
}

// campaignFor assembles the resilience envelope for one campaign: the
// checkpoint journal lives under the state directory keyed by the
// campaign ID, so a drained or crashed campaign resumes exactly where
// it stopped when the identical request is re-posted.
func (s *Server) campaignFor(c *campaign) resilience.Campaign {
	camp := resilience.Campaign{
		Tool:       "serve_" + c.plan.id,
		ConfigHash: c.plan.id,
		Seed:       c.plan.seed,
		Workers:    s.workersFor(c.plan),
		CkptEvery:  1,
		Collector:  c.collector,
		Cancel:     s.draining,
	}
	if s.cfg.StateDir != "" {
		camp.Path = resilience.JournalPath(s.cfg.StateDir, camp.Tool)
		if _, err := os.Stat(camp.Path); err == nil {
			camp.Resume = true
		}
	}
	return camp
}

// workersFor resolves a plan's replication worker count: the request's
// run.workers if pinned, otherwise the server default.
func (s *Server) workersFor(pl *plan) int {
	if pl.runCfg.Workers > 0 {
		return pl.runCfg.Workers
	}
	return s.cfg.Workers
}

// execute runs one admitted campaign to its result document. A nil
// body with a nil error means the campaign was drained mid-flight
// (state interrupted); its journal holds the completed prefix.
func (s *Server) execute(c *campaign) (body []byte, cacheHit bool, err error) {
	if c.plan.searchCfg != nil {
		// Surrogate-guided sweeps are adaptive — each round's candidates
		// depend on the previous round's results — so they are never
		// sharded to a backend; the point memo recoups re-execution cost
		// instead of a checkpoint journal.
		return s.executeSearch(c)
	}
	if s.cfg.Backend != nil && c.plan.req.Kind != KindSingle {
		return s.executeBackend(c)
	}
	if c.plan.req.Kind == KindSweep {
		return s.executeSweep(c)
	}
	return s.executeRun(c)
}

// executeBackend hands a shardable campaign (monte_carlo or dse_sweep)
// to the configured distributed backend and assembles the merged
// payload vector into the result document — the exact assembly the
// in-process paths use, so backend and local execution of one request
// are byte-identical. Single campaigns always run locally: one run
// cannot be sharded, and dispatching it would only add a network hop.
func (s *Server) executeBackend(c *campaign) ([]byte, bool, error) {
	pl := c.plan
	payloads, rep, err := s.cfg.Backend.Run(pl.canonical, pl.units(), s.draining, c.collector)
	if err != nil {
		return nil, false, err
	}
	if payloads == nil {
		return nil, false, nil // drained mid-campaign
	}
	if len(rep.Divergences) > 0 {
		s.mu.Lock()
		c.divergences = append([]string(nil), rep.Divergences...)
		s.mu.Unlock()
	}
	body, err := pl.assemble(payloads)
	return body, false, err
}

// executeRun handles single and monte_carlo campaigns.
func (s *Server) executeRun(c *campaign) ([]byte, bool, error) {
	pl := c.plan
	art, hit, err := s.arts.compiled(pl)
	if err != nil {
		return nil, hit, err
	}

	cfg := pl.runCfg
	cfg.Workers = s.workersFor(pl)
	var col besst.Collector = c.collector
	if s.trialPause > 0 {
		col = pacedCollector{Collector: col, pause: s.trialPause}
	}
	opts := []besst.Option{
		func(dst *besst.RunConfig) { *dst = cfg },
		besst.WithCollector(col),
	}

	if pl.req.Kind == KindSingle {
		if s.isDraining() {
			return nil, hit, nil
		}
		res := art.cr.RunWith(besst.NewRunConfig(opts...))
		return marshalResult(resultDoc(pl, []*besst.Result{res}, nil)), hit, nil
	}

	camp := s.campaignFor(c)
	results, rep, err := resilience.ReplicateResumable(art.cr, pl.trials, camp, opts...)
	if err != nil {
		return nil, hit, err
	}
	if rep.Skipped > 0 {
		return nil, hit, nil // drained; journal holds the completed prefix
	}
	runs := make([]*besst.Result, 0, len(results))
	for _, r := range results {
		if r != nil {
			runs = append(runs, r)
		}
	}
	if len(runs) == 0 {
		return nil, hit, fmt.Errorf("serve: every trial was quarantined")
	}
	return marshalResult(resultDoc(pl, runs, rep.FailedIndices)), hit, nil
}

// executeSweep handles dse_sweep campaigns.
func (s *Server) executeSweep(c *campaign) ([]byte, bool, error) {
	pl := c.plan
	ma, hit, err := s.arts.models(*pl.req.Model)
	if err != nil {
		return nil, hit, err
	}
	cfg := pl.sweepCfg
	cfg.Workers = s.workersFor(pl)
	cfg.Collector = c.collector

	prepared := dse.PrepareSweep(ma.models, ma.em.M, ma.em.Cost.Config.NodeSize, cfg)
	prepared.AttachMemo(s.arts.memo, memoBundle(*pl.req.Model))
	camp := s.campaignFor(c)
	cells, rep, err := resilience.SweepResumable(prepared, camp)
	if err != nil {
		return nil, hit, err
	}
	if rep.Skipped > 0 {
		return nil, hit, nil
	}
	return marshalResult(sweepDoc(pl, cells, rep.FailedIndices)), hit, nil
}

// executeSearch handles surrogate-guided dse_sweep campaigns. There is
// no checkpoint journal: the search's adaptive rounds have no fixed
// unit order to journal against, and the point memo already persists
// the expensive part — a drained search re-posted later replays its
// completed evaluations as memo hits and re-runs only the remainder.
func (s *Server) executeSearch(c *campaign) ([]byte, bool, error) {
	pl := c.plan
	ma, hit, err := s.arts.models(*pl.req.Model)
	if err != nil {
		return nil, hit, err
	}
	cfg := pl.sweepCfg
	cfg.Workers = s.workersFor(pl)
	cfg.Collector = c.collector

	prepared := dse.PrepareSweep(ma.models, ma.em.M, ma.em.Cost.Config.NodeSize, cfg)
	prepared.AttachMemo(s.arts.memo, memoBundle(*pl.req.Model))
	scfg := *pl.searchCfg
	scfg.Cancel = s.draining
	res, err := prepared.Search(scfg)
	if err != nil {
		if errors.Is(err, dse.ErrSearchCanceled) {
			return nil, hit, nil // drained; memo holds the completed evaluations
		}
		return nil, hit, err
	}
	doc := sweepDoc(pl, res.Cells, nil)
	doc.Search = &SearchSummary{
		Budget:     pl.searchCfg.Budget,
		GridPoints: prepared.NumPoints(),
		FullSims:   res.FullSims,
		Rounds:     res.Rounds,
		Best:       res.Best,
	}
	return marshalResult(doc), hit, nil
}

// assemble folds a complete per-unit payload vector (trial results or
// sweep-point means, in index order) into the campaign's result
// document. It is the merge half of distributed execution: payloads
// computed by any process, in any shard geometry, assemble into the
// same bytes the in-process paths produce — provided every unit is
// present, which the distributed layer guarantees by failing the
// campaign rather than merging holes.
//
// A nil (wire: JSON null) payload is not a hole: it is a worker's
// explicit record that the unit panicked and was quarantined, exactly
// as the in-process campaign runner quarantines it. Quarantined units
// surface as failed indices in the document — zero-mean cells for
// sweeps, failed trials for Monte Carlo — matching the local paths'
// resilience reports byte for byte.
func (pl *plan) assemble(payloads []json.RawMessage) ([]byte, error) {
	if want := pl.units(); len(payloads) != want {
		return nil, fmt.Errorf("serve: assembling %d payloads for a %d-unit campaign", len(payloads), want)
	}
	var failed []int
	for i, p := range payloads {
		if quarantined(p) {
			payloads[i] = nil
			failed = append(failed, i)
		}
	}
	if pl.req.Kind == KindSweep {
		means := make([]float64, len(payloads))
		for i, p := range payloads {
			if p == nil {
				continue // quarantined point: zero mean, listed in failed
			}
			if err := json.Unmarshal(p, &means[i]); err != nil {
				return nil, fmt.Errorf("serve: decode sweep point %d: %w", i, err)
			}
		}
		cells := dse.NewGrid(pl.sweepCfg).Cells(means)
		return marshalResult(sweepDoc(pl, cells, failed)), nil
	}
	results, err := resilience.Decode[besst.Result](payloads)
	if err != nil {
		return nil, err
	}
	runs := make([]*besst.Result, 0, len(results))
	for _, r := range results {
		if r != nil {
			runs = append(runs, r)
		}
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("serve: every trial was quarantined")
	}
	return marshalResult(resultDoc(pl, runs, failed)), nil
}

// quarantined reports whether a payload marks a quarantined unit: nil
// in-process, the literal null after a JSON wire round-trip.
func quarantined(p json.RawMessage) bool {
	return len(p) == 0 || string(p) == "null"
}

// sweepDoc builds the dse_sweep result document.
func sweepDoc(pl *plan, cells []dse.Cell, failed []int) CampaignResult {
	return CampaignResult{
		SchemaVersion: RequestSchemaVersion,
		ID:            pl.id,
		Kind:          pl.req.Kind,
		Run:           pl.effectiveSpec(),
		Cells:         cells,
		FailedPoints:  failed,
	}
}

// resultDoc builds the single/monte_carlo result document from the
// completed runs (in trial order).
func resultDoc(pl *plan, runs []*besst.Result, failed []int) CampaignResult {
	summary := stats.Summarize(besst.Makespans(runs))
	first := runs[0]
	return CampaignResult{
		SchemaVersion: RequestSchemaVersion,
		ID:            pl.id,
		Kind:          pl.req.Kind,
		Run:           pl.effectiveSpec(),
		Trials:        pl.trials,
		Makespan:      &summary,
		Makespans:     besst.Makespans(runs),
		EventsPerRun:  first.Events,
		CkptTimes:     first.CkptTimes,
		Breakdown:     &first.Breakdown,
		FailedTrials:  failed,
	}
}

// marshalResult renders the result document. Indentation is fixed so
// the bytes are stable for golden diffs and byte-identity checks.
func marshalResult(doc CampaignResult) []byte {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("serve: marshal result: %v", err))
	}
	return append(b, '\n')
}

// pacedCollector slows every trial bracket by a fixed pause — a test
// hook for exercising queue backpressure and drain timing without
// inflating campaign sizes.
type pacedCollector struct {
	besst.Collector
	pause time.Duration
}

func (p pacedCollector) TrialStart(i int) {
	time.Sleep(p.pause)
	p.Collector.TrialStart(i)
}
