package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Canonical request hashing. The campaign ID — and with it the compile
// cache key, the checkpoint-journal manifest hash, and the derived
// master seed — is the SHA-256 of the request body's *canonical* JSON
// form, so two semantically identical requests can never produce two
// cache entries or two divergent campaigns. Canonicalization:
//
//   - object keys are sorted lexicographically,
//   - strings are re-encoded (escape spellings collapse: "A" == "A"),
//   - numbers are normalized: integer literals keep their exact digits
//     (minus "-0" and a redundant sign), every other spelling is parsed
//     as float64 and re-emitted in shortest round-trippable form, so
//     1.0, 1e0, and 1 all canonicalize to "1",
//   - insignificant whitespace is dropped.
//
// The one caveat: an integer literal too large for exact float64
// representation keeps its digits verbatim, so spelling it in exponent
// notation (1e20 vs 100000000000000000000) is treated as a distinct
// config rather than silently losing precision on 64-bit seeds.

// CanonicalJSON returns the canonical encoding of one JSON document.
func CanonicalJSON(raw []byte) ([]byte, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, fmt.Errorf("serve: invalid JSON: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err == nil || dec.More() {
		return nil, fmt.Errorf("serve: trailing content after JSON document")
	}
	var b bytes.Buffer
	if err := writeCanonical(&b, v); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// writeCanonical appends v's canonical encoding to b.
func writeCanonical(b *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		if x {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case string:
		enc, err := json.Marshal(x)
		if err != nil {
			return err
		}
		b.Write(enc)
	case json.Number:
		s, err := canonicalNumber(x)
		if err != nil {
			return err
		}
		b.WriteString(s)
	case []any:
		b.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeCanonical(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			enc, err := json.Marshal(k)
			if err != nil {
				return err
			}
			b.Write(enc)
			b.WriteByte(':')
			if err := writeCanonical(b, x[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	default:
		return fmt.Errorf("serve: unexpected JSON value %T", v)
	}
	return nil
}

// canonicalNumber normalizes one JSON number literal.
func canonicalNumber(n json.Number) (string, error) {
	s := string(n)
	if !bytes.ContainsAny([]byte(s), ".eE") {
		// Integer literal: exact digits, normalized sign ("-0" -> "0").
		if s == "-0" {
			return "0", nil
		}
		return s, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return "", fmt.Errorf("serve: bad number %q: %w", s, err)
	}
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return "", fmt.Errorf("serve: number %q out of float64 range", s)
	}
	if f == 0 { //lint:ignore floateq exact-zero test collapsing the -0.0 spelling
		return "0", nil
	}
	return strconv.FormatFloat(f, 'g', -1, 64), nil
}

// HashRequest canonicalizes a request body and returns its campaign ID
// (the first 16 hex digits of the canonical SHA-256) alongside the
// canonical bytes and the full digest.
func HashRequest(raw []byte) (id string, canonical []byte, sum [sha256.Size]byte, err error) {
	canonical, err = CanonicalJSON(raw)
	if err != nil {
		return "", nil, sum, err
	}
	sum = sha256.Sum256(canonical)
	return hex.EncodeToString(sum[:])[:16], canonical, sum, nil
}

// DeriveSeed maps a request digest to the campaign's master seed — the
// per-request deterministic seed used whenever the request leaves its
// seed unpinned (zero), keeping every response byte-reproducible from
// its request hash alone.
func DeriveSeed(sum [sha256.Size]byte) uint64 {
	return binary.BigEndian.Uint64(sum[:8])
}
