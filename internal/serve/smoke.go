package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"
)

// SmokeConfig parameterizes the self-contained service smoke check.
type SmokeConfig struct {
	// Golden, when non-empty, is the committed result document the
	// quickstart campaign must reproduce byte-for-byte.
	Golden string
	// Update rewrites Golden from the live result instead of diffing.
	Update bool
}

// smokeRequest is the README quickstart campaign: a small direct-mode
// Monte Carlo run whose result document is committed as a golden file.
// Everything is pinned (seed included) so the bytes are stable.
const smokeRequest = `{
  "schema_version": 1,
  "kind": "monte_carlo",
  "tenant": "smoke",
  "trials": 5,
  "run": {"schema_version": 1, "mode": "direct", "monte_carlo": true, "per_rank_noise": true, "seed": 7},
  "app": {"epr": 5, "ranks": 8, "steps": 20, "scenario": "l1", "period": 10},
  "model": {"method": "interp", "samples": 2, "seed": 1}
}`

// Smoke boots an in-process server on a loopback port, runs the
// quickstart campaign twice over real HTTP, and verifies the service
// invariants end to end:
//
//   - both result bodies are byte-identical (cold vs warm compile cache),
//   - the second submission hit the compile cache (/v1/statz counters),
//   - the result matches the committed golden document.
//
// It runs without a state directory on purpose: the second POST must
// genuinely re-simulate through the warm cache, not replay a journal.
func Smoke(out io.Writer, cfg SmokeConfig) error {
	srv := NewServer(Config{MaxActive: 2, MaxQueued: 8, MaxPerTenant: 2, CacheCap: 4})
	defer srv.Drain()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("serve smoke: listen: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	base := "http://" + ln.Addr().String()

	first, err := runSmokeCampaign(base)
	if err != nil {
		return err
	}
	second, err := runSmokeCampaign(base)
	if err != nil {
		return err
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("serve smoke: cold and warm result bodies differ (%d vs %d bytes)", len(first), len(second))
	}

	var st Statz
	if err := getJSON(base+"/v1/statz", &st); err != nil {
		return err
	}
	if st.Cache.Hits == 0 {
		return fmt.Errorf("serve smoke: second identical request did not hit the compile cache (hits=0, misses=%d)", st.Cache.Misses)
	}

	if cfg.Golden != "" {
		if cfg.Update {
			if err := os.WriteFile(cfg.Golden, first, 0o644); err != nil {
				return fmt.Errorf("serve smoke: update golden: %w", err)
			}
			_, _ = fmt.Fprintf(out, "serve smoke: golden updated: %s (%d bytes)\n", cfg.Golden, len(first))
		} else {
			want, err := os.ReadFile(cfg.Golden)
			if err != nil {
				return fmt.Errorf("serve smoke: read golden (run with -update-golden to create): %w", err)
			}
			if !bytes.Equal(first, want) {
				return fmt.Errorf("serve smoke: result diverged from golden %s (%d vs %d bytes); "+
					"if the change is intentional, regenerate with -update-golden", cfg.Golden, len(first), len(want))
			}
		}
	}
	_, _ = fmt.Fprintf(out, "serve smoke OK: byte-identical cold/warm results, compile cache hits=%d misses=%d\n",
		st.Cache.Hits, st.Cache.Misses)
	return nil
}

// runSmokeCampaign posts the quickstart request, waits for completion,
// and fetches the result body.
func runSmokeCampaign(base string) ([]byte, error) {
	resp, err := http.Post(base+"/v1/campaigns", "application/json", bytes.NewReader([]byte(smokeRequest)))
	if err != nil {
		return nil, fmt.Errorf("serve smoke: POST: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("serve smoke: POST response: %w", err)
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve smoke: POST status %d: %s", resp.StatusCode, body)
	}
	var st CampaignStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("serve smoke: decode status: %w", err)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		if err := getJSON(base+"/v1/campaigns/"+st.ID, &st); err != nil {
			return nil, err
		}
		if st.State == stateDone {
			break
		}
		if st.State == stateFailed || st.State == stateInterrupted {
			return nil, fmt.Errorf("serve smoke: campaign %s is %s: %s", st.ID, st.State, st.Error)
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("serve smoke: campaign %s still %s after 2m", st.ID, st.State)
		}
		time.Sleep(20 * time.Millisecond)
	}

	res, err := http.Get(base + "/v1/campaigns/" + st.ID + "/result")
	if err != nil {
		return nil, fmt.Errorf("serve smoke: GET result: %w", err)
	}
	defer func() { _ = res.Body.Close() }()
	out, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, fmt.Errorf("serve smoke: read result: %w", err)
	}
	if res.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve smoke: result status %d: %s", res.StatusCode, out)
	}
	return out, nil
}

// getJSON fetches one JSON document.
func getJSON(url string, doc any) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("serve smoke: GET %s: %w", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("serve smoke: read %s: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve smoke: GET %s status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, doc); err != nil {
		return fmt.Errorf("serve smoke: decode %s: %w", url, err)
	}
	return nil
}
