package serve

import (
	"container/list"
	"sync"
)

// cache is the compile-once artifact cache: an LRU keyed by canonical
// config hash with single-flight admission. The first request for a key
// builds the artifact while every concurrent request for the same key
// blocks on the entry's ready channel instead of compiling a duplicate;
// later requests hit the finished entry. Model bundles and compiled
// apps share one cache (prefixed keys), so the capacity bounds total
// retained artifacts, and the cache is tenant-agnostic: two tenants
// posting the same config share one compilation.
type cache struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*cacheEntry
	lru     *list.List // front = most recently used
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheEntry struct {
	key   string
	elem  *list.Element
	ready chan struct{} // closed once val/err are set
	val   any
	err   error
}

// CacheStats is the /v1/statz view of the cache.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		capacity = 8
	}
	return &cache{
		cap:     capacity,
		entries: make(map[string]*cacheEntry),
		lru:     list.New(),
	}
}

// Get returns the artifact for key, building it at most once per
// residency. The second return reports whether the request was a cache
// hit (including joining a build already in flight — the compilation is
// still skipped). Failed builds are not cached: the error is returned
// to every joined waiter, then the entry is dropped so a later request
// can retry.
func (c *cache) Get(key string, build func() (any, error)) (any, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.lru.MoveToFront(e.elem)
		c.hits++
		c.mu.Unlock()
		<-e.ready
		return e.val, true, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.misses++
	c.mu.Unlock()

	e.val, e.err = build()
	close(e.ready)

	c.mu.Lock()
	if e.err != nil {
		// Only drop the entry if it is still ours — a failed build may
		// already have been evicted by concurrent inserts.
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.lru.Remove(e.elem)
		}
	} else {
		c.evictLocked()
	}
	c.mu.Unlock()
	return e.val, false, e.err
}

// evictLocked trims least-recently-used finished entries beyond cap.
// In-flight entries are never evicted (waiters hold their pointer and
// they are by construction near the front anyway).
func (c *cache) evictLocked() {
	for c.lru.Len() > c.cap {
		back := c.lru.Back()
		if back == nil {
			return
		}
		e := back.Value.(*cacheEntry)
		select {
		case <-e.ready:
		default:
			return // oldest entry still building; nothing evictable behind it
		}
		c.lru.Remove(back)
		delete(c.entries, e.key)
		c.evicted++
	}
}

// Stats snapshots the counters.
func (c *cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:   len(c.entries),
		Capacity:  c.cap,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evicted,
	}
}
