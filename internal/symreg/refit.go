package symreg

import (
	"fmt"
	"math"

	"besst/internal/stats"
)

// Refit evolves an updated model for a grown training set, warm-started
// from a previously fitted expression. The surrogate-guided DSE search
// (internal/dse) refits once per round as fully simulated points
// accumulate; running Fit from scratch every round would spend most of
// the GP budget rediscovering the shape the previous round already
// found. The previous model's input/output scales are reused verbatim —
// they were estimated from a subset of the current rows and keep
// prev.Expr meaningful on the rescaled problem — so only the expression
// evolves. The first restart seeds its population with the previous
// winner and a band of its mutants; remaining restarts stay fully
// independent, so a stale shape cannot trap the search. A nil prev (or
// one whose scales don't match the current arity) falls back to a
// fresh Fit.
func Refit(prev *Fitted, train, test Dataset, opt Options) *Fitted {
	if prev == nil || prev.Expr == nil || len(prev.XScale) != len(train.VarNames) {
		label := ""
		if prev != nil {
			label = prev.Label
		}
		return Fit(label, train, test, opt)
	}
	train.Validate()
	opt = opt.withDefaults()
	master := stats.NewRNG(opt.Seed)

	xScale := prev.XScale
	yScale := defaultIfZero(prev.YScale, 1)
	strain := scaleDataset(train, xScale, yScale)

	var best individual
	best.fitness = math.Inf(1)
	best.rawMAPE = math.Inf(1)
	for r := 0; r < opt.Restarts; r++ {
		var warm *Node
		if r == 0 {
			warm = prev.Expr
		}
		cand := evolve(strain, opt, master.Split(), warm)
		if cand.rawMAPE < best.rawMAPE {
			best = cand
		}
		if best.rawMAPE < opt.TargetMAPE {
			break
		}
	}

	f := &Fitted{
		Label:     prev.Label,
		Expr:      best.tree,
		VarNames:  train.VarNames,
		TrainMAPE: best.rawMAPE,
		TestMAPE:  math.NaN(),
		XScale:    xScale,
		YScale:    yScale,
	}
	if len(test.Y) > 0 {
		f.TestMAPE = mape(best.tree, scaleDataset(test, xScale, yScale))
	}
	f.ResidualSigma = residualSigma(best.tree, strain)
	return f
}

// PredictBatch evaluates the model at every row of xs — raw (unscaled)
// values in VarNames order — writing predictions into dst, which is
// grown only when its capacity falls short. One scratch variable vector
// is reused across the whole batch, so ranking thousands of candidate
// design points per search round allocates nothing per point (unlike
// Predict, which needs a perfmodel.Params map per call).
func (f *Fitted) PredictBatch(xs [][]float64, dst []float64) []float64 {
	if cap(dst) < len(xs) {
		dst = make([]float64, len(xs))
	}
	dst = dst[:len(xs)]
	vars := make([]float64, len(f.VarNames))
	for i, row := range xs {
		if len(row) != len(f.VarNames) {
			panic(fmt.Sprintf("symreg: batch row %d has %d values, want %d", i, len(row), len(f.VarNames)))
		}
		for j := range vars {
			vars[j] = row[j]
			if f.XScale != nil {
				vars[j] /= f.XScale[j]
			}
		}
		v := f.Expr.Eval(vars)
		//lint:ignore floateq exactly zero YScale marks an unscaled legacy model
		if f.YScale != 0 {
			v *= f.YScale
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			v = 0
		}
		dst[i] = v
	}
	return dst
}
