// Package symreg implements the symbolic-regression modeling method of
// the BE-SST Model Development phase (Chenna et al., "Multi-parameter
// performance modeling using symbolic regression"): a genetic program
// evolves expression trees over the system parameters until they fit
// the calibration samples, and the fitted expression becomes the
// performance model polled during simulation. This is the method used
// for the paper's case-study experiments.
package symreg

import (
	"fmt"
	"math"
	"strings"

	"besst/internal/stats"
)

// Op enumerates expression-tree node kinds.
type Op int

// Node kinds. Const and Var are leaves; the rest are operators chosen
// to span the polynomial / surface-area / logarithmic scaling shapes
// coarse-grained HPC runtime models take.
const (
	OpConst Op = iota
	OpVar
	OpAdd
	OpSub
	OpMul
	OpDiv // protected: |denominator| < 1e-9 evaluates to 1
	OpSq
	OpCube
	OpSqrt // protected: sqrt(|x|)
	OpLog  // protected: log(1+|x|)
)

var binaryOps = []Op{OpAdd, OpSub, OpMul, OpDiv}
var unaryOps = []Op{OpSq, OpCube, OpSqrt, OpLog}

// Node is one expression-tree node. Leaves carry Value (OpConst) or
// VarIndex (OpVar); operators carry children.
type Node struct {
	Op       Op
	Value    float64
	VarIndex int
	L, R     *Node // R nil for unary ops
}

// Eval evaluates the tree on one input vector.
func (n *Node) Eval(vars []float64) float64 {
	switch n.Op {
	case OpConst:
		return n.Value
	case OpVar:
		return vars[n.VarIndex]
	case OpAdd:
		return n.L.Eval(vars) + n.R.Eval(vars)
	case OpSub:
		return n.L.Eval(vars) - n.R.Eval(vars)
	case OpMul:
		return n.L.Eval(vars) * n.R.Eval(vars)
	case OpDiv:
		d := n.R.Eval(vars)
		if math.Abs(d) < 1e-9 {
			return 1
		}
		return n.L.Eval(vars) / d
	case OpSq:
		v := n.L.Eval(vars)
		return v * v
	case OpCube:
		v := n.L.Eval(vars)
		return v * v * v
	case OpSqrt:
		return math.Sqrt(math.Abs(n.L.Eval(vars)))
	case OpLog:
		return math.Log1p(math.Abs(n.L.Eval(vars)))
	default:
		panic(fmt.Sprintf("symreg: unknown op %d", n.Op))
	}
}

// Size returns the node count of the tree (parsimony pressure input).
func (n *Node) Size() int {
	if n == nil {
		return 0
	}
	return 1 + n.L.Size() + n.R.Size()
}

// Depth returns the height of the tree.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	l, r := n.L.Depth(), n.R.Depth()
	if r > l {
		l = r
	}
	return 1 + l
}

// Clone deep-copies the tree.
func (n *Node) Clone() *Node {
	if n == nil {
		return nil
	}
	c := *n
	c.L = n.L.Clone()
	c.R = n.R.Clone()
	return &c
}

// String renders the expression with the given variable names.
func (n *Node) String(varNames []string) string {
	var b strings.Builder
	n.render(&b, varNames)
	return b.String()
}

func (n *Node) render(b *strings.Builder, names []string) {
	switch n.Op {
	case OpConst:
		fmt.Fprintf(b, "%.4g", n.Value)
	case OpVar:
		if n.VarIndex < len(names) {
			b.WriteString(names[n.VarIndex])
		} else {
			fmt.Fprintf(b, "x%d", n.VarIndex)
		}
	case OpAdd, OpSub, OpMul, OpDiv:
		op := map[Op]string{OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/"}[n.Op]
		b.WriteByte('(')
		n.L.render(b, names)
		b.WriteByte(' ')
		b.WriteString(op)
		b.WriteByte(' ')
		n.R.render(b, names)
		b.WriteByte(')')
	case OpSq, OpCube, OpSqrt, OpLog:
		fn := map[Op]string{OpSq: "sq", OpCube: "cube", OpSqrt: "sqrt", OpLog: "log1p"}[n.Op]
		b.WriteString(fn)
		b.WriteByte('(')
		n.L.render(b, names)
		b.WriteByte(')')
	}
}

// nodes flattens the tree in preorder for uniform subtree selection.
func (n *Node) nodes() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		if m == nil {
			return
		}
		out = append(out, m)
		walk(m.L)
		walk(m.R)
	}
	walk(n)
	return out
}

// randomTree generates a random tree up to the given depth. full forces
// operator nodes until depth runs out (the "full" half of ramped
// half-and-half initialization).
func randomTree(rng *stats.RNG, nvars, depth int, full bool, constMin, constMax float64) *Node {
	if depth <= 1 || (!full && rng.Float64() < 0.3) {
		// Leaf: variable or constant.
		if rng.Float64() < 0.6 {
			return &Node{Op: OpVar, VarIndex: rng.Intn(nvars)}
		}
		return &Node{Op: OpConst, Value: constMin + rng.Float64()*(constMax-constMin)}
	}
	if rng.Float64() < 0.7 {
		op := binaryOps[rng.Intn(len(binaryOps))]
		return &Node{
			Op: op,
			L:  randomTree(rng, nvars, depth-1, full, constMin, constMax),
			R:  randomTree(rng, nvars, depth-1, full, constMin, constMax),
		}
	}
	op := unaryOps[rng.Intn(len(unaryOps))]
	return &Node{Op: op, L: randomTree(rng, nvars, depth-1, full, constMin, constMax)}
}
