package symreg

import (
	"encoding/json"
	"testing"

	"besst/internal/perfmodel"
)

func linearDataset(n int) Dataset {
	ds := Dataset{VarNames: []string{"x"}}
	for i := 1; i <= n; i++ {
		x := float64(i)
		ds.X = append(ds.X, []float64{x})
		ds.Y = append(ds.Y, 3*x+5)
	}
	return ds
}

// TestRefitFallsBackToFit pins the cold-start contract: with no prior
// fit (or a mismatched one), Refit IS Fit — same options, same seed,
// byte-identical Fitted.
func TestRefitFallsBackToFit(t *testing.T) {
	ds := linearDataset(12)
	opt := Options{Seed: 7, Generations: 20, PopSize: 64, Restarts: 2}
	fresh := Fit("", ds, Dataset{}, opt)
	cold := Refit(nil, ds, Dataset{}, opt)
	a, _ := json.Marshal(fresh)
	b, _ := json.Marshal(cold)
	if string(a) != string(b) {
		t.Fatalf("Refit(nil) differs from Fit:\n%s\n%s", a, b)
	}

	// Arity mismatch: the prior fit covers different variables, so the
	// fallback is a fresh Fit under the prior's label.
	prev := Fit("2d", Dataset{
		VarNames: []string{"x", "r"},
		X:        [][]float64{{1, 1}, {2, 2}, {3, 3}, {4, 4}},
		Y:        []float64{2, 4, 6, 8},
	}, Dataset{}, opt)
	mismatch := Refit(prev, ds, Dataset{}, opt)
	want, _ := json.Marshal(Fit("2d", ds, Dataset{}, opt))
	c, _ := json.Marshal(mismatch)
	if string(want) != string(c) {
		t.Fatalf("Refit with mismatched prior differs from Fit:\n%s\n%s", want, c)
	}
}

// TestRefitWarmStartImproves pins the warm-start contract: refitting
// with more data starting from a prior fit stays deterministic and at
// least as accurate as the prior on the new training set.
func TestRefitWarmStartImproves(t *testing.T) {
	opt := Options{Seed: 7, Generations: 20, PopSize: 64, Restarts: 2}
	prev := Fit("lin", linearDataset(6), Dataset{}, opt)
	grown := linearDataset(18)

	warm1 := Refit(prev, grown, Dataset{}, opt)
	warm2 := Refit(prev, grown, Dataset{}, opt)
	a, _ := json.Marshal(warm1)
	b, _ := json.Marshal(warm2)
	if string(a) != string(b) {
		t.Fatal("Refit is not deterministic for identical inputs")
	}
	if warm1.Label != "lin" {
		t.Fatalf("Refit dropped the label: %q", warm1.Label)
	}
	if warm1.TrainMAPE > prev.TrainMAPE+1e-9 && warm1.TrainMAPE > 5 {
		t.Fatalf("warm refit got worse: MAPE %v (prior %v)", warm1.TrainMAPE, prev.TrainMAPE)
	}
}

// TestPredictBatchMatchesPredictRow pins batch prediction against the
// scalar path and the no-allocation reuse contract.
func TestPredictBatchMatchesPredictRow(t *testing.T) {
	f := Fit("lin", linearDataset(12), Dataset{}, Options{Seed: 7, Generations: 20, PopSize: 64, Restarts: 2})
	xs := [][]float64{{1}, {5}, {9}, {13}}

	got := f.PredictBatch(xs, nil)
	if len(got) != len(xs) {
		t.Fatalf("PredictBatch returned %d values for %d rows", len(got), len(xs))
	}
	for i, row := range xs {
		want := f.Predict(perfmodel.Params{"x": row[0]})
		if got[i] < want || got[i] > want {
			t.Fatalf("row %d: batch %v, scalar %v", i, got[i], want)
		}
	}

	// Reusing a big-enough dst must not reallocate.
	dst := make([]float64, 0, 16)
	out := f.PredictBatch(xs, dst)
	if &out[0] != &dst[:1][0] {
		t.Fatal("PredictBatch reallocated despite sufficient dst capacity")
	}
}

func TestPredictBatchPanicsOnArityMismatch(t *testing.T) {
	f := Fit("lin", linearDataset(8), Dataset{}, Options{Seed: 7, Generations: 10, PopSize: 32, Restarts: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("PredictBatch accepted a row with the wrong arity")
		}
	}()
	f.PredictBatch([][]float64{{1, 2}}, nil)
}
