package symreg

import (
	"fmt"
	"math"

	"besst/internal/perfmodel"
	"besst/internal/stats"
)

// Dataset is a supervised regression problem: X rows of variable values
// and target runtimes Y.
type Dataset struct {
	VarNames []string
	X        [][]float64
	Y        []float64
}

// Validate panics on an unusable dataset.
func (d Dataset) Validate() {
	if len(d.VarNames) == 0 {
		panic("symreg: dataset has no variables")
	}
	if len(d.X) != len(d.Y) || len(d.X) == 0 {
		panic("symreg: dataset rows mismatched or empty")
	}
	for i, row := range d.X {
		if len(row) != len(d.VarNames) {
			panic(fmt.Sprintf("symreg: row %d has %d values, want %d", i, len(row), len(d.VarNames)))
		}
	}
}

// Split partitions the dataset into train and test subsets with the
// given test fraction, shuffled deterministically by seed. This is the
// paper's train/test protocol: "the benchmarking data is split into
// training data and testing data".
func (d Dataset) Split(testFrac float64, seed uint64) (train, test Dataset) {
	d.Validate()
	if testFrac < 0 || testFrac >= 1 {
		panic("symreg: test fraction out of [0,1)")
	}
	rng := stats.NewRNG(seed)
	perm := rng.Perm(len(d.X))
	nTest := int(float64(len(d.X)) * testFrac)
	train = Dataset{VarNames: d.VarNames}
	test = Dataset{VarNames: d.VarNames}
	for i, idx := range perm {
		if i < nTest {
			test.X = append(test.X, d.X[idx])
			test.Y = append(test.Y, d.Y[idx])
		} else {
			train.X = append(train.X, d.X[idx])
			train.Y = append(train.Y, d.Y[idx])
		}
	}
	return train, test
}

// Options configures the genetic program.
type Options struct {
	PopSize        int     // population size (default 256)
	Generations    int     // generations per restart (default 80)
	Restarts       int     // independent runs, best kept (default 3)
	MaxDepth       int     // hard tree-depth limit (default 7)
	TournamentK    int     // tournament size (default 5)
	ParsimonyCoeff float64 // fitness penalty per node, in MAPE points (default 0.05)
	CrossoverProb  float64 // default 0.7
	MutateProb     float64 // default 0.2 (remainder: reproduction)
	ConstMin       float64 // constant range (default 0)
	ConstMax       float64 // default 2
	Seed           uint64
	TargetMAPE     float64 // early stop when train MAPE falls below (default 0.5)
}

func (o Options) withDefaults() Options {
	if o.PopSize == 0 {
		o.PopSize = 256
	}
	if o.Generations == 0 {
		o.Generations = 120
	}
	if o.Restarts == 0 {
		o.Restarts = 4
	}
	if o.MaxDepth == 0 {
		o.MaxDepth = 7
	}
	if o.TournamentK == 0 {
		o.TournamentK = 5
	}
	o.ParsimonyCoeff = defaultIfZero(o.ParsimonyCoeff, 0.05)
	o.CrossoverProb = defaultIfZero(o.CrossoverProb, 0.7)
	o.MutateProb = defaultIfZero(o.MutateProb, 0.2)
	o.ConstMax = defaultIfZero(o.ConstMax, 2)
	o.TargetMAPE = defaultIfZero(o.TargetMAPE, 0.5)
	return o
}

// Fitted is a symbolic-regression performance model. It implements
// perfmodel.Model: Predict evaluates the fitted expression and Sample
// adds multiplicative log-normal residual noise estimated from the
// training residuals, so Monte Carlo simulation reproduces the
// calibration variance.
type Fitted struct {
	Label         string
	Expr          *Node
	VarNames      []string
	TrainMAPE     float64 // percent
	TestMAPE      float64 // percent (NaN when no test set supplied)
	ResidualSigma float64 // log-space sigma of train residuals

	// XScale and YScale normalize the regression problem: the GP sees
	// inputs divided by XScale and targets divided by YScale, so its
	// constants stay O(1) regardless of whether runtimes are
	// nanoseconds or hours. Predict undoes the scaling.
	XScale []float64
	YScale float64
}

// Predict implements perfmodel.Model. It is on the Monte Carlo hot path
// (every Sample starts with a Predict), so the variable vector lives in
// a stack buffer for the fitted models' typical arity; only expressions
// over more than eight variables fall back to a heap slice.
func (f *Fitted) Predict(p perfmodel.Params) float64 {
	var buf [8]float64
	var vars []float64
	if len(f.VarNames) <= len(buf) {
		vars = buf[:len(f.VarNames)]
	} else {
		vars = make([]float64, len(f.VarNames))
	}
	for i, n := range f.VarNames {
		vars[i] = p.Get(n)
		if f.XScale != nil {
			vars[i] /= f.XScale[i]
		}
	}
	v := f.Expr.Eval(vars)
	//lint:ignore floateq exactly zero YScale marks an unscaled legacy model
	if f.YScale != 0 {
		v *= f.YScale
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0
	}
	return v
}

// Sample implements perfmodel.Model.
func (f *Fitted) Sample(p perfmodel.Params, rng *stats.RNG) float64 {
	v := f.Predict(p)
	if f.ResidualSigma > 0 {
		v *= rng.LogNormal(0, f.ResidualSigma)
	}
	return v
}

// Name implements perfmodel.Model.
func (f *Fitted) Name() string { return f.Label }

// String renders the fitted expression.
func (f *Fitted) String() string { return f.Expr.String(f.VarNames) }

// mape returns the mean absolute percentage error of expr on ds, or
// +Inf for invalid predictions. Used as GP fitness (lower is better).
func mape(expr *Node, ds Dataset) float64 {
	var sum float64
	n := 0
	vars := make([]float64, len(ds.VarNames))
	for i, row := range ds.X {
		copy(vars, row)
		pred := expr.Eval(vars)
		if math.IsNaN(pred) || math.IsInf(pred, 0) {
			return math.Inf(1)
		}
		if stats.ApproxEqual(ds.Y[i], 0, 0) {
			continue
		}
		sum += math.Abs((pred - ds.Y[i]) / ds.Y[i])
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return 100 * sum / float64(n)
}

type individual struct {
	tree    *Node
	fitness float64 // MAPE + parsimony penalty
	rawMAPE float64
}

// Fit evolves a symbolic model for train, optionally evaluating held-out
// accuracy on test (pass a zero-value Dataset to skip). The best
// expression across restarts (by raw train MAPE) is returned.
func Fit(label string, train, test Dataset, opt Options) *Fitted {
	train.Validate()
	opt = opt.withDefaults()
	master := stats.NewRNG(opt.Seed)

	// Normalize the problem so the GP's constant range covers the
	// search space: divide each input by its mean magnitude and the
	// target by its mean. MAPE is scale-invariant in y, so reported
	// errors are unaffected.
	xScale, yScale := dataScales(train)
	strain := scaleDataset(train, xScale, yScale)

	var best individual
	best.fitness = math.Inf(1)
	best.rawMAPE = math.Inf(1)
	for r := 0; r < opt.Restarts; r++ {
		cand := evolve(strain, opt, master.Split(), nil)
		if cand.rawMAPE < best.rawMAPE {
			best = cand
		}
		if best.rawMAPE < opt.TargetMAPE {
			break
		}
	}

	f := &Fitted{
		Label:     label,
		Expr:      best.tree,
		VarNames:  train.VarNames,
		TrainMAPE: best.rawMAPE,
		TestMAPE:  math.NaN(),
		XScale:    xScale,
		YScale:    yScale,
	}
	if len(test.Y) > 0 {
		f.TestMAPE = mape(best.tree, scaleDataset(test, xScale, yScale))
	}
	f.ResidualSigma = residualSigma(best.tree, strain)
	return f
}

// dataScales estimates the normalization Fit applies before evolving:
// each input column's mean magnitude and the target's mean magnitude.
// MAPE is scale-invariant in y, so reported errors are unaffected.
func dataScales(train Dataset) (xScale []float64, yScale float64) {
	xScale = make([]float64, len(train.VarNames))
	for j := range xScale {
		var s float64
		for _, row := range train.X {
			s += math.Abs(row[j])
		}
		s /= float64(len(train.X))
		xScale[j] = defaultIfZero(s, 1)
	}
	for _, y := range train.Y {
		yScale += math.Abs(y)
	}
	yScale /= float64(len(train.Y))
	return xScale, defaultIfZero(yScale, 1)
}

// scaleDataset divides each input column by xScale and every target by
// yScale — the normalization Fit estimates (dataScales) and Predict
// undoes.
func scaleDataset(ds Dataset, xScale []float64, yScale float64) Dataset {
	out := Dataset{VarNames: ds.VarNames}
	for i, row := range ds.X {
		r := make([]float64, len(row))
		for j := range row {
			r[j] = row[j] / xScale[j]
		}
		out.X = append(out.X, r)
		out.Y = append(out.Y, ds.Y[i]/yScale)
	}
	return out
}

// residualSigma estimates the log-space standard deviation of
// measured/predicted ratios on the training set.
func residualSigma(expr *Node, ds Dataset) float64 {
	var logs []float64
	vars := make([]float64, len(ds.VarNames))
	for i, row := range ds.X {
		copy(vars, row)
		pred := expr.Eval(vars)
		if pred <= 0 || ds.Y[i] <= 0 {
			continue
		}
		logs = append(logs, math.Log(ds.Y[i]/pred))
	}
	if len(logs) < 2 {
		return 0
	}
	return stats.Summarize(logs).Std
}

// evolve runs one GP restart and returns its best individual. A
// non-nil warm tree (already on the scaled problem) seeds the front of
// the initial population with itself and a band of its mutants — the
// incremental-refit path (Refit) warm-starts one restart this way so a
// grown training set doesn't pay for rediscovering the previous shape.
func evolve(train Dataset, opt Options, rng *stats.RNG, warm *Node) individual {
	nvars := len(train.VarNames)
	evaluate := func(t *Node) individual {
		raw := mape(t, train)
		return individual{tree: t, rawMAPE: raw, fitness: raw + opt.ParsimonyCoeff*float64(t.Size())}
	}

	// Ramped half-and-half initialization across depths 2..MaxDepth,
	// with the warm seed (when given) occupying the first quarter.
	pop := make([]individual, opt.PopSize)
	for i := range pop {
		if warm != nil && i == 0 {
			pop[i] = evaluate(warm.Clone())
			continue
		}
		if warm != nil && i < opt.PopSize/4 {
			pop[i] = evaluate(mutate(warm, nvars, opt, rng))
			continue
		}
		depth := 2 + i%(opt.MaxDepth-1)
		full := i%2 == 0
		pop[i] = evaluate(randomTree(rng, nvars, depth, full, opt.ConstMin, opt.ConstMax))
	}

	best := pop[0]
	for _, ind := range pop {
		if ind.fitness < best.fitness {
			best = ind
		}
	}

	tournament := func() individual {
		w := pop[rng.Intn(len(pop))]
		for i := 1; i < opt.TournamentK; i++ {
			c := pop[rng.Intn(len(pop))]
			if c.fitness < w.fitness {
				w = c
			}
		}
		return w
	}

	for gen := 0; gen < opt.Generations; gen++ {
		next := make([]individual, 0, opt.PopSize)
		next = append(next, best) // elitism
		for len(next) < opt.PopSize {
			p1 := tournament()
			roll := rng.Float64()
			var child *Node
			switch {
			case roll < opt.CrossoverProb:
				child = crossover(p1.tree, tournament().tree, rng)
			case roll < opt.CrossoverProb+opt.MutateProb:
				child = mutate(p1.tree, nvars, opt, rng)
			default:
				child = p1.tree.Clone()
			}
			if child.Depth() > opt.MaxDepth {
				child = randomTree(rng, nvars, opt.MaxDepth, false, opt.ConstMin, opt.ConstMax)
			}
			ind := evaluate(child)
			if ind.fitness < best.fitness {
				best = ind
			}
			next = append(next, ind)
		}
		pop = next
		if best.rawMAPE < opt.TargetMAPE {
			break
		}
	}
	// Local constant refinement on the winner.
	best = refineConstants(best, train, opt, rng)
	return best
}

// crossover swaps a random subtree of a into a clone of... — standard
// subtree crossover: replace a random node of a copy of a with a clone
// of a random subtree of b.
func crossover(a, b *Node, rng *stats.RNG) *Node {
	child := a.Clone()
	targets := child.nodes()
	donorNodes := b.nodes()
	target := targets[rng.Intn(len(targets))]
	donor := donorNodes[rng.Intn(len(donorNodes))].Clone()
	*target = *donor
	return child
}

// mutate applies one of: subtree replacement, constant jitter, or
// variable swap.
func mutate(t *Node, nvars int, opt Options, rng *stats.RNG) *Node {
	child := t.Clone()
	targets := child.nodes()
	target := targets[rng.Intn(len(targets))]
	switch rng.Intn(3) {
	case 0: // subtree replacement
		*target = *randomTree(rng, nvars, 3, false, opt.ConstMin, opt.ConstMax)
	case 1: // constant jitter (or inject a constant leaf)
		if target.Op == OpConst {
			target.Value *= math.Exp(rng.Normal(0, 0.3))
		} else {
			*target = Node{Op: OpConst, Value: opt.ConstMin + rng.Float64()*(opt.ConstMax-opt.ConstMin)}
		}
	default: // variable swap
		*target = Node{Op: OpVar, VarIndex: rng.Intn(nvars)}
	}
	return child
}

// refineConstants hill-climbs the constants of the best tree: each
// round perturbs one constant multiplicatively and keeps improvements.
func refineConstants(ind individual, train Dataset, opt Options, rng *stats.RNG) individual {
	consts := []*Node{}
	for _, n := range ind.tree.nodes() {
		if n.Op == OpConst {
			consts = append(consts, n)
		}
	}
	if len(consts) == 0 {
		return ind
	}
	bestMAPE := ind.rawMAPE
	for round := 0; round < 200; round++ {
		c := consts[rng.Intn(len(consts))]
		old := c.Value
		c.Value *= math.Exp(rng.Normal(0, 0.15))
		if m := mape(ind.tree, train); m < bestMAPE {
			bestMAPE = m
		} else {
			c.Value = old
		}
	}
	ind.rawMAPE = bestMAPE
	ind.fitness = bestMAPE + opt.ParsimonyCoeff*float64(ind.tree.Size())
	return ind
}

// defaultIfZero substitutes def when v is exactly zero — the unset
// sentinel for Options fields and data-driven scale factors.
func defaultIfZero(v, def float64) float64 {
	//lint:ignore floateq zero is the unset sentinel; only an exact zero means "use the default"
	if v == 0 {
		return def
	}
	return v
}
