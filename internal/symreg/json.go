package symreg

import (
	"encoding/json"
	"fmt"
	"math"
)

// jsonNode is the serialized form of an expression node.
type jsonNode struct {
	Op    string    `json:"op"`
	Value float64   `json:"value,omitempty"`
	Var   int       `json:"var,omitempty"`
	L     *jsonNode `json:"l,omitempty"`
	R     *jsonNode `json:"r,omitempty"`
}

var opNames = map[Op]string{
	OpConst: "const", OpVar: "var", OpAdd: "add", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpSq: "sq", OpCube: "cube",
	OpSqrt: "sqrt", OpLog: "log1p",
}

var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, n := range opNames {
		m[n] = op
	}
	return m
}()

func toJSONNode(n *Node) *jsonNode {
	if n == nil {
		return nil
	}
	return &jsonNode{
		Op:    opNames[n.Op],
		Value: n.Value,
		Var:   n.VarIndex,
		L:     toJSONNode(n.L),
		R:     toJSONNode(n.R),
	}
}

func fromJSONNode(j *jsonNode) (*Node, error) {
	if j == nil {
		return nil, nil
	}
	op, ok := opByName[j.Op]
	if !ok {
		return nil, fmt.Errorf("symreg: unknown op %q", j.Op)
	}
	l, err := fromJSONNode(j.L)
	if err != nil {
		return nil, err
	}
	r, err := fromJSONNode(j.R)
	if err != nil {
		return nil, err
	}
	n := &Node{Op: op, Value: j.Value, VarIndex: j.Var, L: l, R: r}
	switch op {
	case OpConst, OpVar:
		if l != nil || r != nil {
			return nil, fmt.Errorf("symreg: leaf %q with children", j.Op)
		}
	case OpSq, OpCube, OpSqrt, OpLog:
		if l == nil || r != nil {
			return nil, fmt.Errorf("symreg: unary %q with wrong arity", j.Op)
		}
	default:
		if l == nil || r == nil {
			return nil, fmt.Errorf("symreg: binary %q with missing child", j.Op)
		}
	}
	return n, nil
}

// jsonFitted is the serialized form of a fitted model. NaN MAPEs are
// encoded as -1 (JSON has no NaN).
type jsonFitted struct {
	Label         string    `json:"label"`
	VarNames      []string  `json:"vars"`
	Expr          *jsonNode `json:"expr"`
	TrainMAPE     float64   `json:"trainMAPE"`
	TestMAPE      float64   `json:"testMAPE"`
	ResidualSigma float64   `json:"residualSigma"`
	XScale        []float64 `json:"xScale,omitempty"`
	YScale        float64   `json:"yScale,omitempty"`
}

func encMAPE(v float64) float64 {
	if math.IsNaN(v) {
		return -1
	}
	return v
}

func decMAPE(v float64) float64 {
	if v < 0 {
		return math.NaN()
	}
	return v
}

// MarshalJSON implements json.Marshaler.
func (f *Fitted) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonFitted{
		Label:         f.Label,
		VarNames:      f.VarNames,
		Expr:          toJSONNode(f.Expr),
		TrainMAPE:     encMAPE(f.TrainMAPE),
		TestMAPE:      encMAPE(f.TestMAPE),
		ResidualSigma: f.ResidualSigma,
		XScale:        f.XScale,
		YScale:        f.YScale,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *Fitted) UnmarshalJSON(data []byte) error {
	var j jsonFitted
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	expr, err := fromJSONNode(j.Expr)
	if err != nil {
		return err
	}
	if expr == nil {
		return fmt.Errorf("symreg: model %q has no expression", j.Label)
	}
	if j.XScale != nil && len(j.XScale) != len(j.VarNames) {
		return fmt.Errorf("symreg: model %q scale/vars mismatch", j.Label)
	}
	*f = Fitted{
		Label:         j.Label,
		VarNames:      j.VarNames,
		Expr:          expr,
		TrainMAPE:     decMAPE(j.TrainMAPE),
		TestMAPE:      decMAPE(j.TestMAPE),
		ResidualSigma: j.ResidualSigma,
		XScale:        j.XScale,
		YScale:        j.YScale,
	}
	return nil
}
