package symreg

import (
	"encoding/json"
	"math"
	"testing"

	"besst/internal/perfmodel"
)

func fittedFixture() *Fitted {
	// 2*cube(x0) + x1
	expr := &Node{
		Op: OpAdd,
		L: &Node{Op: OpMul,
			L: &Node{Op: OpConst, Value: 2},
			R: &Node{Op: OpCube, L: &Node{Op: OpVar, VarIndex: 0}},
		},
		R: &Node{Op: OpVar, VarIndex: 1},
	}
	return &Fitted{
		Label:         "fix",
		Expr:          expr,
		VarNames:      []string{"a", "b"},
		TrainMAPE:     3.5,
		TestMAPE:      math.NaN(),
		ResidualSigma: 0.07,
		XScale:        []float64{2, 10},
		YScale:        5,
	}
}

func TestFittedJSONRoundTrip(t *testing.T) {
	f := fittedFixture()
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Fitted
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label != "fix" || back.TrainMAPE != 3.5 || !math.IsNaN(back.TestMAPE) {
		t.Fatalf("metadata lost: %+v", back)
	}
	if back.ResidualSigma != 0.07 || back.YScale != 5 {
		t.Fatal("scales lost")
	}
	for _, p := range []perfmodel.Params{{"a": 1, "b": 2}, {"a": 7, "b": 0}, {"a": 100, "b": -3}} {
		if f.Predict(p) != back.Predict(p) {
			t.Fatalf("prediction differs at %v", p.Key())
		}
	}
	if back.String() != f.String() {
		t.Fatalf("expression changed: %s vs %s", back.String(), f.String())
	}
}

func TestFittedJSONRejectsBadShapes(t *testing.T) {
	cases := []string{
		`{"label":"x","vars":["a"],"expr":{"op":"wat"}}`,
		`{"label":"x","vars":["a"],"expr":null}`,
		`{"label":"x","vars":["a"],"expr":{"op":"add","l":{"op":"const"}}}`,       // binary missing child
		`{"label":"x","vars":["a"],"expr":{"op":"sq"}}`,                           // unary missing child
		`{"label":"x","vars":["a"],"expr":{"op":"const","l":{"op":"const"}}}`,     // leaf with child
		`{"label":"x","vars":["a","b"],"xScale":[1],"expr":{"op":"var","var":0}}`, // scale mismatch
	}
	for i, c := range cases {
		var f Fitted
		if err := json.Unmarshal([]byte(c), &f); err == nil {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestFitThenRoundTripPreservesEverything(t *testing.T) {
	ds := Dataset{VarNames: []string{"x"}}
	for i := 1; i <= 12; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, 4*float64(i*i)+1)
	}
	f := Fit("sq", ds, Dataset{}, Options{Seed: 5, Generations: 30, PopSize: 64, Restarts: 1})
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	var back Fitted
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	for x := 1.0; x <= 20; x += 2.5 {
		p := perfmodel.Params{"x": x}
		if f.Predict(p) != back.Predict(p) {
			t.Fatalf("prediction differs at x=%v", x)
		}
	}
}
