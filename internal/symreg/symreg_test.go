package symreg

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"besst/internal/perfmodel"
	"besst/internal/stats"
)

func TestEvalLeaves(t *testing.T) {
	c := &Node{Op: OpConst, Value: 3.5}
	if c.Eval(nil) != 3.5 {
		t.Fatal("const eval")
	}
	v := &Node{Op: OpVar, VarIndex: 1}
	if v.Eval([]float64{9, 7}) != 7 {
		t.Fatal("var eval")
	}
}

func TestEvalOperators(t *testing.T) {
	x := &Node{Op: OpVar, VarIndex: 0}
	two := &Node{Op: OpConst, Value: 2}
	cases := []struct {
		n    *Node
		in   float64
		want float64
	}{
		{&Node{Op: OpAdd, L: x, R: two}, 3, 5},
		{&Node{Op: OpSub, L: x, R: two}, 3, 1},
		{&Node{Op: OpMul, L: x, R: two}, 3, 6},
		{&Node{Op: OpDiv, L: x, R: two}, 3, 1.5},
		{&Node{Op: OpSq, L: x}, 3, 9},
		{&Node{Op: OpCube, L: x}, 2, 8},
		{&Node{Op: OpSqrt, L: x}, 16, 4},
		{&Node{Op: OpSqrt, L: x}, -16, 4}, // protected
		{&Node{Op: OpLog, L: x}, math.E - 1, 1},
	}
	for i, c := range cases {
		if got := c.n.Eval([]float64{c.in}); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("case %d: got %v, want %v", i, got, c.want)
		}
	}
}

func TestProtectedDivision(t *testing.T) {
	x := &Node{Op: OpVar, VarIndex: 0}
	zero := &Node{Op: OpConst, Value: 0}
	n := &Node{Op: OpDiv, L: x, R: zero}
	if got := n.Eval([]float64{5}); got != 1 {
		t.Fatalf("protected div = %v, want 1", got)
	}
}

func TestSizeDepthClone(t *testing.T) {
	tree := &Node{
		Op: OpAdd,
		L:  &Node{Op: OpSq, L: &Node{Op: OpVar}},
		R:  &Node{Op: OpConst, Value: 1},
	}
	if tree.Size() != 4 {
		t.Fatalf("size = %d", tree.Size())
	}
	if tree.Depth() != 3 {
		t.Fatalf("depth = %d", tree.Depth())
	}
	c := tree.Clone()
	c.L.L.VarIndex = 5
	if tree.L.L.VarIndex == 5 {
		t.Fatal("clone aliased nodes")
	}
}

func TestStringRendering(t *testing.T) {
	tree := &Node{
		Op: OpMul,
		L:  &Node{Op: OpConst, Value: 2},
		R:  &Node{Op: OpCube, L: &Node{Op: OpVar, VarIndex: 0}},
	}
	s := tree.String([]string{"epr"})
	if !strings.Contains(s, "cube(epr)") || !strings.Contains(s, "2") {
		t.Fatalf("render = %q", s)
	}
}

func TestRandomTreeRespectsDepth(t *testing.T) {
	rng := stats.NewRNG(1)
	for i := 0; i < 200; i++ {
		tr := randomTree(rng, 2, 5, i%2 == 0, 0, 2)
		if d := tr.Depth(); d > 5 {
			t.Fatalf("depth %d exceeds limit", d)
		}
	}
}

func TestRandomTreeEvaluates(t *testing.T) {
	rng := stats.NewRNG(2)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		tr := randomTree(rng, 2, 4, false, 0, 2)
		v := tr.Eval([]float64{a, b})
		_ = v // any float (incl. Inf from overflow) is acceptable; must not panic
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDatasetSplit(t *testing.T) {
	ds := Dataset{VarNames: []string{"x"}}
	for i := 0; i < 100; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, float64(i))
	}
	train, test := ds.Split(0.25, 42)
	if len(test.Y) != 25 || len(train.Y) != 75 {
		t.Fatalf("split sizes %d/%d", len(train.Y), len(test.Y))
	}
	// No overlap, full coverage.
	seen := map[float64]bool{}
	for _, y := range append(append([]float64{}, train.Y...), test.Y...) {
		if seen[y] {
			t.Fatalf("duplicate %v across split", y)
		}
		seen[y] = true
	}
	if len(seen) != 100 {
		t.Fatal("split lost rows")
	}
	// Deterministic.
	train2, _ := ds.Split(0.25, 42)
	for i := range train.Y {
		if train.Y[i] != train2.Y[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestDatasetValidate(t *testing.T) {
	bad := Dataset{VarNames: []string{"x"}, X: [][]float64{{1, 2}}, Y: []float64{1}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bad.Validate()
}

func TestMAPEHelper(t *testing.T) {
	expr := &Node{Op: OpVar, VarIndex: 0} // identity
	ds := Dataset{VarNames: []string{"x"}, X: [][]float64{{10}, {20}}, Y: []float64{10, 20}}
	if m := mape(expr, ds); m != 0 {
		t.Fatalf("identity MAPE = %v", m)
	}
}

func TestFitRecoversLinear(t *testing.T) {
	// y = 3x + 5, exact samples. GP should get close.
	ds := Dataset{VarNames: []string{"x"}}
	for i := 1; i <= 20; i++ {
		x := float64(i)
		ds.X = append(ds.X, []float64{x})
		ds.Y = append(ds.Y, 3*x+5)
	}
	f := Fit("lin", ds, Dataset{}, Options{Seed: 7, Generations: 60, PopSize: 200, Restarts: 2})
	if f.TrainMAPE > 5 {
		t.Fatalf("train MAPE %v too high for linear target (%s)", f.TrainMAPE, f)
	}
}

func TestFitRecoversCubic(t *testing.T) {
	// y = 2*x^3, the LULESH-like shape (epr^3 elements per rank).
	ds := Dataset{VarNames: []string{"epr"}}
	for _, x := range []float64{5, 10, 15, 20, 25} {
		ds.X = append(ds.X, []float64{x})
		ds.Y = append(ds.Y, 2*x*x*x)
	}
	f := Fit("cubic", ds, Dataset{}, Options{Seed: 3, Generations: 80, PopSize: 256, Restarts: 3})
	if f.TrainMAPE > 5 {
		t.Fatalf("train MAPE %v too high for cubic target (%s)", f.TrainMAPE, f)
	}
	// Extrapolation should keep growing (prediction region sanity).
	p25 := f.Predict(perfmodel.Params{"epr": 25})
	p30 := f.Predict(perfmodel.Params{"epr": 30})
	if p30 <= p25 {
		t.Fatalf("cubic fit does not extrapolate upward: %v -> %v", p25, p30)
	}
}

func TestFitTwoVariables(t *testing.T) {
	// y = x^2 + 10*log(1+r): two-parameter surface with noise.
	rng := stats.NewRNG(11)
	ds := Dataset{VarNames: []string{"x", "r"}}
	for _, x := range []float64{2, 4, 6, 8, 10} {
		for _, r := range []float64{8, 64, 216, 512, 1000} {
			y := x*x + 10*math.Log1p(r)
			y *= rng.LogNormal(0, 0.02)
			ds.X = append(ds.X, []float64{x, r})
			ds.Y = append(ds.Y, y)
		}
	}
	train, test := ds.Split(0.2, 5)
	f := Fit("surf", train, test, Options{Seed: 9})
	if f.TrainMAPE > 12 {
		t.Fatalf("train MAPE %v too high (%s)", f.TrainMAPE, f)
	}
	if math.IsNaN(f.TestMAPE) {
		t.Fatal("test MAPE should be computed")
	}
	if f.TestMAPE > 25 {
		t.Fatalf("test MAPE %v too high (%s)", f.TestMAPE, f)
	}
}

func TestFittedPredictNeverNegative(t *testing.T) {
	f := &Fitted{
		Expr:     &Node{Op: OpSub, L: &Node{Op: OpConst, Value: 1}, R: &Node{Op: OpVar, VarIndex: 0}},
		VarNames: []string{"x"},
	}
	if got := f.Predict(perfmodel.Params{"x": 100}); got != 0 {
		t.Fatalf("negative prediction leaked: %v", got)
	}
}

func TestFittedSampleVariance(t *testing.T) {
	f := &Fitted{
		Expr:          &Node{Op: OpConst, Value: 10},
		VarNames:      []string{"x"},
		ResidualSigma: 0.1,
	}
	rng := stats.NewRNG(13)
	var lo, hi int
	for i := 0; i < 500; i++ {
		v := f.Sample(perfmodel.Params{"x": 1}, rng)
		if v < 10 {
			lo++
		} else {
			hi++
		}
	}
	if lo == 0 || hi == 0 {
		t.Fatal("sample has no spread")
	}
}

func TestFitDeterministicForSeed(t *testing.T) {
	ds := Dataset{VarNames: []string{"x"}}
	for i := 1; i <= 10; i++ {
		ds.X = append(ds.X, []float64{float64(i)})
		ds.Y = append(ds.Y, float64(i*i))
	}
	opt := Options{Seed: 21, Generations: 20, PopSize: 64, Restarts: 1}
	a := Fit("a", ds, Dataset{}, opt)
	b := Fit("b", ds, Dataset{}, opt)
	if a.String() != b.String() {
		t.Fatalf("non-deterministic fit:\n%s\n%s", a, b)
	}
}

func TestFittedImplementsModel(t *testing.T) {
	var _ perfmodel.Model = &Fitted{}
}
