package benchdata

import (
	"encoding/json"
	"fmt"
	"os"
)

// Hot-path benchmark reports and the regression comparator behind
// `make bench-compare`. besst-bench -hotpath writes a HotpathReport for
// the allocation-sensitive simulator benchmarks; the comparator diffs a
// fresh report against the committed baseline and reports regressions:
// any ns/op growth beyond the tolerance, or ANY allocs/op growth at
// all. Allocation counts are deterministic for a warmed hot path, so a
// single extra alloc/op is a real code regression, never noise — the
// zero-tolerance rule is what keeps the zero-allocation dispatch
// property from eroding one "harmless" box at a time.

// HotpathEntry is one benchmark measurement.
type HotpathEntry struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// HotpathReport is the machine-readable output of besst-bench -hotpath.
type HotpathReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	CPU        string         `json:"cpu,omitempty"`
	Benchmarks []HotpathEntry `json:"benchmarks"`
}

// Lookup returns the entry with the given benchmark name.
func (r *HotpathReport) Lookup(name string) (HotpathEntry, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return HotpathEntry{}, false
}

// LoadHotpath reads a report written by besst-bench -hotpath.
func LoadHotpath(path string) (*HotpathReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r HotpathReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("parse %s: no benchmarks in report", path)
	}
	return &r, nil
}

// HotpathRegression describes one metric that got worse than the
// baseline allows.
type HotpathRegression struct {
	Name   string // benchmark name
	Metric string // "ns/op" or "allocs/op" or "missing"
	Base   int64
	Cur    int64
	Detail string
}

func (r HotpathRegression) String() string {
	if r.Metric == "missing" {
		return fmt.Sprintf("%s: benchmark missing from current report", r.Name)
	}
	return fmt.Sprintf("%s: %s %d -> %d (%s)", r.Name, r.Metric, r.Base, r.Cur, r.Detail)
}

// CompareHotpath diffs cur against base. A benchmark regresses when its
// ns/op exceeds the baseline by more than nsTolPct percent, or when its
// allocs/op exceeds the baseline at all. Baseline benchmarks absent
// from cur count as regressions (a silently dropped benchmark must not
// pass the gate); extra benchmarks in cur are ignored so the baseline
// can trail new additions by one regeneration.
func CompareHotpath(cur, base *HotpathReport, nsTolPct float64) []HotpathRegression {
	var regs []HotpathRegression
	for _, b := range base.Benchmarks {
		c, ok := cur.Lookup(b.Name)
		if !ok {
			regs = append(regs, HotpathRegression{Name: b.Name, Metric: "missing"})
			continue
		}
		limit := float64(b.NsPerOp) * (1 + nsTolPct/100)
		if float64(c.NsPerOp) > limit {
			regs = append(regs, HotpathRegression{
				Name: b.Name, Metric: "ns/op", Base: b.NsPerOp, Cur: c.NsPerOp,
				Detail: fmt.Sprintf("limit %.0f at +%.0f%%", limit, nsTolPct),
			})
		}
		if c.AllocsPerOp > b.AllocsPerOp {
			regs = append(regs, HotpathRegression{
				Name: b.Name, Metric: "allocs/op", Base: b.AllocsPerOp, Cur: c.AllocsPerOp,
				Detail: "any allocation growth fails the gate",
			})
		}
	}
	return regs
}
