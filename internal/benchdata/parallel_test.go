package benchdata

import (
	"os"
	"path/filepath"
	"testing"
)

func validReport() *ParallelReport {
	return &ParallelReport{
		GOMAXPROCS: 4, NumCPU: 4, Workers: 4, MCReplications: 32,
		ScalingValid: true, IdenticalResults: true,
		Benchmarks: []ParallelEntry{
			{Name: "DESAblation/serial", Workers: 1, NsPerOp: 1000},
			{Name: "DESAblation/parallel", Workers: 4, NsPerOp: 400, SpeedupVsSerial: 2.5},
		},
	}
}

func TestCompareParallelClean(t *testing.T) {
	if regs := CompareParallel(validReport(), validReport(), 10); len(regs) != 0 {
		t.Fatalf("identical reports regressed: %v", regs)
	}
}

func TestCompareParallelNsRegression(t *testing.T) {
	cur := validReport()
	cur.Benchmarks[0].NsPerOp = 1200 // +20% > 10% tolerance
	regs := CompareParallel(cur, validReport(), 10)
	if len(regs) != 1 || regs[0].Metric != "ns/op" || regs[0].Name != "DESAblation/serial" {
		t.Fatalf("regressions = %v, want one ns/op entry", regs)
	}
	// Within tolerance: no regression.
	cur.Benchmarks[0].NsPerOp = 1090
	if regs := CompareParallel(cur, validReport(), 10); len(regs) != 0 {
		t.Fatalf("+9%% flagged at 10%% tolerance: %v", regs)
	}
}

func TestCompareParallelSpeedupFloor(t *testing.T) {
	cur := validReport()
	cur.Benchmarks[1].SpeedupVsSerial = 1.1 // far below the 2.5x baseline
	cur.Benchmarks[1].NsPerOp = 420         // ns/op itself within tolerance
	regs := CompareParallel(cur, validReport(), 10)
	if len(regs) != 1 || regs[0].Metric != "speedup" {
		t.Fatalf("regressions = %v, want one speedup entry", regs)
	}
}

func TestCompareParallelSpeedupSkippedWhenInvalidBoth(t *testing.T) {
	base, cur := validReport(), validReport()
	base.ScalingValid, cur.ScalingValid = false, false
	cur.Benchmarks[1].SpeedupVsSerial = 0.9
	if regs := CompareParallel(cur, base, 10); len(regs) != 0 {
		t.Fatalf("speedup gated on non-scaling hardware: %v", regs)
	}
}

func TestCompareParallelScalingValidityLapse(t *testing.T) {
	cur := validReport()
	cur.ScalingValid = false
	cur.Benchmarks[1].SpeedupVsSerial = 0.9 // must not be judged, but the lapse itself fails
	regs := CompareParallel(cur, validReport(), 10)
	if len(regs) != 1 || regs[0].Metric != "scaling-validity" {
		t.Fatalf("regressions = %v, want one scaling-validity entry", regs)
	}
}

func TestCompareParallelDivergentResults(t *testing.T) {
	cur := validReport()
	cur.IdenticalResults = false
	regs := CompareParallel(cur, validReport(), 10)
	if len(regs) != 1 || regs[0].Metric != "identical-results" {
		t.Fatalf("regressions = %v, want one identical-results entry", regs)
	}
}

func TestCompareParallelMissingBenchmark(t *testing.T) {
	cur := validReport()
	cur.Benchmarks = cur.Benchmarks[:1]
	regs := CompareParallel(cur, validReport(), 10)
	if len(regs) != 1 || regs[0].Metric != "missing" || regs[0].Name != "DESAblation/parallel" {
		t.Fatalf("regressions = %v, want one missing entry", regs)
	}
}

func TestLoadParallelRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "par.json")
	if err := os.WriteFile(path, []byte(`{
		"gomaxprocs": 4, "num_cpu": 4, "workers": 4,
		"scaling_valid": true, "identical_results": true,
		"benchmarks": [{"name": "x/serial", "workers": 1, "ns_per_op": 5}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadParallel(path)
	if err != nil {
		t.Fatalf("LoadParallel: %v", err)
	}
	if !r.ScalingValid || len(r.Benchmarks) != 1 || r.Benchmarks[0].NsPerOp != 5 {
		t.Fatalf("round-trip mismatch: %+v", r)
	}
	if _, ok := r.Lookup("x/serial"); !ok {
		t.Fatal("Lookup missed present benchmark")
	}
	if err := os.WriteFile(path, []byte(`{"benchmarks": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadParallel(path); err == nil {
		t.Fatal("empty report loaded without error")
	}
}
