package benchdata

import (
	"bytes"
	"reflect"
	"testing"

	"besst/internal/fti"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/perfmodel"
)

func smallPlan() LuleshPlan {
	return LuleshPlan{
		EPRs:       []int{5, 10},
		Ranks:      []int{8, 64},
		Levels:     []fti.Level{fti.L1},
		SamplesPer: 3,
		Seed:       1,
	}
}

func TestCollectLuleshShape(t *testing.T) {
	c := CollectLulesh(groundtruth.NewQuartz(), smallPlan())
	// 2 eprs x 2 ranks x 3 samples x (timestep + L1).
	if len(c.Samples) != 2*2*3*2 {
		t.Fatalf("samples = %d", len(c.Samples))
	}
	ops := c.Ops()
	if len(ops) != 2 || ops[0] != lulesh.OpCkptL1 || ops[1] != lulesh.OpTimestep {
		t.Fatalf("ops = %v", ops)
	}
	if got := len(c.ForOp(lulesh.OpTimestep)); got != 12 {
		t.Fatalf("timestep samples = %d", got)
	}
}

// TestCollectLuleshParallelWorkerCountInvariant: per-combination seeds
// are pre-assigned in grid order, so the parallel campaign must be
// byte-identical at every worker count and across repeated runs.
func TestCollectLuleshParallelWorkerCountInvariant(t *testing.T) {
	em := groundtruth.NewQuartz()
	serial := CollectLuleshParallel(em, smallPlan(), 1)
	if len(serial.Samples) != 2*2*3*2 {
		t.Fatalf("samples = %d", len(serial.Samples))
	}
	for _, workers := range []int{8, 0} {
		got := CollectLuleshParallel(em, smallPlan(), workers)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d campaign differs from serial campaign", workers)
		}
	}
	// Same grid as the single-stream collector: identical ops and
	// per-op sample counts, only the noise streams differ.
	legacy := CollectLulesh(em, smallPlan())
	if !reflect.DeepEqual(legacy.Ops(), serial.Ops()) {
		t.Fatalf("ops %v vs legacy %v", serial.Ops(), legacy.Ops())
	}
	for _, op := range legacy.Ops() {
		if len(serial.ForOp(op)) != len(legacy.ForOp(op)) {
			t.Fatalf("op %s: %d samples vs legacy %d", op, len(serial.ForOp(op)), len(legacy.ForOp(op)))
		}
	}
}

func TestCollectDeterministicBySeed(t *testing.T) {
	a := CollectLulesh(groundtruth.NewQuartz(), smallPlan())
	b := CollectLulesh(groundtruth.NewQuartz(), smallPlan())
	for i := range a.Samples {
		if a.Samples[i].Seconds != b.Samples[i].Seconds {
			t.Fatal("campaign not reproducible")
		}
	}
}

func TestCaseStudyPlanMatchesTable2(t *testing.T) {
	p := CaseStudyPlan(10, 42)
	if len(p.EPRs) != 5 || p.EPRs[0] != 5 || p.EPRs[4] != 25 {
		t.Fatalf("eprs = %v", p.EPRs)
	}
	if len(p.Ranks) != 5 || p.Ranks[4] != 1000 {
		t.Fatalf("ranks = %v", p.Ranks)
	}
	if len(p.Levels) != 2 {
		t.Fatalf("levels = %v", p.Levels)
	}
}

func TestTableConstruction(t *testing.T) {
	c := CollectLulesh(groundtruth.NewQuartz(), smallPlan())
	tab := c.Table(lulesh.OpTimestep, "epr", "ranks")
	if tab.Points() != 4 {
		t.Fatalf("points = %d, want 4", tab.Points())
	}
	v := tab.Predict(perfmodel.Params{"epr": 5, "ranks": 8})
	if v <= 0 {
		t.Fatal("prediction not positive")
	}
}

func TestDatasetConstruction(t *testing.T) {
	c := CollectLulesh(groundtruth.NewQuartz(), smallPlan())
	ds := c.Dataset(lulesh.OpCkptL1, "epr", "ranks")
	if len(ds.Y) != 12 {
		t.Fatalf("rows = %d", len(ds.Y))
	}
	if len(ds.X[0]) != 2 {
		t.Fatalf("vars = %d", len(ds.X[0]))
	}
}

func TestTableMissingOpPanics(t *testing.T) {
	c := &Campaign{}
	c.Add("a", perfmodel.Params{"x": 1}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Table("missing", "x")
}

func TestCSVRoundTrip(t *testing.T) {
	c := CollectLulesh(groundtruth.NewQuartz(), smallPlan())
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Samples) != len(c.Samples) {
		t.Fatalf("rows %d != %d", len(back.Samples), len(c.Samples))
	}
	for i := range c.Samples {
		a, b := c.Samples[i], back.Samples[i]
		if a.Op != b.Op || a.Seconds != b.Seconds ||
			a.Params.Key() != b.Params.Key() {
			t.Fatalf("row %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	if _, err := ReadCSV(bytes.NewBufferString("nope\n")); err == nil {
		t.Fatal("expected error for malformed header")
	}
	if _, err := ReadCSV(bytes.NewBufferString("op,x,seconds\na,notanumber,1\n")); err == nil {
		t.Fatal("expected error for bad float")
	}
}

func TestCollectCmtBone(t *testing.T) {
	c := CollectCmtBone(groundtruth.NewVulcan(), []int{16, 32}, []int{64, 512}, 2, 7)
	if len(c.Samples) != 8 {
		t.Fatalf("samples = %d", len(c.Samples))
	}
	ds := c.Dataset("cmtbone_timestep", "psize", "ranks")
	if len(ds.Y) != 8 {
		t.Fatal("dataset rows wrong")
	}
}

func TestCollectPanicsOnBadSamplesPer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CollectLulesh(groundtruth.NewQuartz(), LuleshPlan{EPRs: []int{5}, Ranks: []int{8}, SamplesPer: 0})
}
