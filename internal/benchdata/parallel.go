package benchdata

import (
	"encoding/json"
	"fmt"
	"os"
)

// Parallel-scaling benchmark reports and the comparator behind
// `make bench-parallel`. besst-bench -parbench writes a ParallelReport
// for the serial-vs-parallel tiers (Monte Carlo replication, the DSE
// sweep, and the DES ablation rings); the comparator diffs a fresh
// report against the committed baseline and fails on ns/op growth
// beyond the tolerance or on parallel speedup dropping below the
// baseline's. Speedup is only comparable when both reports were taken
// on hardware that can actually scale (ScalingValid), so a single-core
// CI runner degrades to the ns/op gate instead of failing spuriously —
// and a baseline recorded on valid hardware refuses certification from
// an invalid current run rather than letting the floor silently lapse.

// ParallelEntry is one serial or parallel benchmark measurement.
type ParallelEntry struct {
	Name            string  `json:"name"`
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	AllocsPerOp     int64   `json:"allocs_per_op"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

// ParallelReport is the machine-readable output of besst-bench
// -parbench. ScalingValid records whether the measurement environment
// could exhibit real parallel speedup: GOMAXPROCS pinned to at least
// the worker count AND that many physical CPUs actually present. The
// harness refuses to certify speedups from a misleading configuration
// (the original snapshot was recorded with gomaxprocs 1, making its
// ~1.0x "speedups" meaningless).
type ParallelReport struct {
	GOMAXPROCS       int             `json:"gomaxprocs"`
	NumCPU           int             `json:"num_cpu"`
	Workers          int             `json:"workers"`
	MCReplications   int             `json:"mc_replications"`
	ScalingValid     bool            `json:"scaling_valid"`
	IdenticalResults bool            `json:"identical_results"`
	Benchmarks       []ParallelEntry `json:"benchmarks"`
}

// Lookup returns the entry with the given benchmark name.
func (r *ParallelReport) Lookup(name string) (ParallelEntry, bool) {
	for _, b := range r.Benchmarks {
		if b.Name == name {
			return b, true
		}
	}
	return ParallelEntry{}, false
}

// LoadParallel reads a report written by besst-bench -parbench.
func LoadParallel(path string) (*ParallelReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r ParallelReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("parse %s: no benchmarks in report", path)
	}
	return &r, nil
}

// ParallelRegression describes one way the current report is worse than
// the committed baseline allows.
type ParallelRegression struct {
	Name   string // benchmark name ("" for report-level failures)
	Metric string // "ns/op", "speedup", "missing", "identical-results", "scaling-validity"
	BaseNs int64
	CurNs  int64
	BaseX  float64
	CurX   float64
	Detail string
}

func (r ParallelRegression) String() string {
	switch r.Metric {
	case "missing":
		return fmt.Sprintf("%s: benchmark missing from current report", r.Name)
	case "identical-results":
		return "parallel results diverge from serial results"
	case "scaling-validity":
		return r.Detail
	case "speedup":
		return fmt.Sprintf("%s: speedup %.2fx -> %.2fx (%s)", r.Name, r.BaseX, r.CurX, r.Detail)
	}
	return fmt.Sprintf("%s: %s %d -> %d (%s)", r.Name, r.Metric, r.BaseNs, r.CurNs, r.Detail)
}

// CompareParallel diffs cur against base. Failures:
//
//   - cur does not reproduce serial results bit-identically
//     (IdenticalResults false) — correctness trumps speed;
//   - a baseline benchmark is missing from cur;
//   - any benchmark's ns/op exceeds the baseline by more than nsTolPct
//     percent;
//   - when both reports are ScalingValid: a parallel benchmark's
//     speedup-vs-serial drops below the baseline's by more than the
//     same tolerance;
//   - the baseline is ScalingValid but cur is not — a misleading
//     configuration must not launder away the committed speedup floor.
//
// Allocation counts are deliberately not gated here: these tiers run
// whole campaigns with worker pools, where allocs/op is load-dependent
// rather than deterministic (the hot-path gate owns that property).
func CompareParallel(cur, base *ParallelReport, nsTolPct float64) []ParallelRegression {
	var regs []ParallelRegression
	if !cur.IdenticalResults {
		regs = append(regs, ParallelRegression{Metric: "identical-results"})
	}
	if base.ScalingValid && !cur.ScalingValid {
		regs = append(regs, ParallelRegression{
			Metric: "scaling-validity",
			Detail: fmt.Sprintf("baseline was recorded on scaling-valid hardware (gomaxprocs %d, %d CPUs); current run is not (gomaxprocs %d, %d CPUs)",
				base.GOMAXPROCS, base.NumCPU, cur.GOMAXPROCS, cur.NumCPU),
		})
	}
	checkSpeedup := base.ScalingValid && cur.ScalingValid
	for _, b := range base.Benchmarks {
		c, ok := cur.Lookup(b.Name)
		if !ok {
			regs = append(regs, ParallelRegression{Name: b.Name, Metric: "missing"})
			continue
		}
		limit := float64(b.NsPerOp) * (1 + nsTolPct/100)
		if float64(c.NsPerOp) > limit {
			regs = append(regs, ParallelRegression{
				Name: b.Name, Metric: "ns/op", BaseNs: b.NsPerOp, CurNs: c.NsPerOp,
				Detail: fmt.Sprintf("limit %.0f at +%.0f%%", limit, nsTolPct),
			})
		}
		if checkSpeedup && b.SpeedupVsSerial > 0 {
			floor := b.SpeedupVsSerial * (1 - nsTolPct/100)
			if c.SpeedupVsSerial < floor {
				regs = append(regs, ParallelRegression{
					Name: b.Name, Metric: "speedup", BaseX: b.SpeedupVsSerial, CurX: c.SpeedupVsSerial,
					Detail: fmt.Sprintf("floor %.2fx at -%.0f%%", floor, nsTolPct),
				})
			}
		}
	}
	return regs
}
