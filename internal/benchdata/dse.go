package benchdata

import (
	"encoding/json"
	"fmt"
	"os"
)

// Surrogate-search quality reports and the regression comparator behind
// `make bench-dse`. besst-bench -dse runs the search on a small grid it
// can also sweep exhaustively, so the report carries ground truth: the
// achieved-vs-exhaustive optimality gap, the full-simulation count the
// budget bought, and whether a memo-warm re-search reproduced the cold
// result byte-for-byte. Everything in the report is a pure function of
// the pinned seed — a regression is a code change, never noise — so the
// comparator tolerates nothing except an explicit gap slack.

// DSESchemaVersion stamps DSEReport documents.
const DSESchemaVersion = 1

// DSEReport is the machine-readable output of besst-bench -dse.
type DSEReport struct {
	SchemaVersion int    `json:"schema_version"`
	Seed          uint64 `json:"seed"`
	// GridPoints and BudgetFrac pin the experiment shape; the
	// comparator rejects baselines from a different shape.
	GridPoints int     `json:"grid_points"`
	BudgetFrac float64 `json:"budget_frac"`
	// FullSims is how many design points the search fully simulated
	// (memo hits included); the gate fails when it grows.
	FullSims int `json:"full_sims"`
	Rounds   int `json:"rounds"`
	// GapPct is 100*(searchBest-trueBest)/trueBest against the
	// exhaustive sweep's optimum — 0 means the search found the true
	// optimum exactly.
	GapPct        float64 `json:"gap_pct"`
	BestLabel     string  `json:"best_label"`
	TrueBestLabel string  `json:"true_best_label"`
	// MemoWarmHits counts point-memo hits during the warm re-search;
	// WarmIdentical reports whether its marshaled result matched the
	// cold run byte-for-byte.
	MemoWarmHits  uint64 `json:"memo_warm_hits"`
	WarmIdentical bool   `json:"warm_identical"`
}

// LoadDSE reads a report written by besst-bench -dse.
func LoadDSE(path string) (*DSEReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r DSEReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse %s: %v", path, err)
	}
	if r.SchemaVersion != DSESchemaVersion {
		return nil, fmt.Errorf("parse %s: schema_version %d, want %d", path, r.SchemaVersion, DSESchemaVersion)
	}
	if r.GridPoints == 0 {
		return nil, fmt.Errorf("parse %s: empty report", path)
	}
	return &r, nil
}

// DSERegression describes one search-quality metric that got worse
// than the baseline allows.
type DSERegression struct {
	Metric string
	Detail string
}

func (r DSERegression) String() string {
	return fmt.Sprintf("%s: %s", r.Metric, r.Detail)
}

// CompareDSE diffs cur against base. The search regresses when it
// fully simulates more points than the baseline did (the budget's
// entire value is the sims it avoids), when its optimality gap exceeds
// the baseline's by more than gapSlackPct percentage points, when the
// memo-warm re-search stopped reproducing the cold bytes, or when the
// warm run stopped hitting the memo at all. A shape mismatch (grid or
// budget) is reported rather than silently compared.
func CompareDSE(cur, base *DSEReport, gapSlackPct float64) []DSERegression {
	var regs []DSERegression
	if cur.GridPoints != base.GridPoints {
		regs = append(regs, DSERegression{Metric: "shape",
			Detail: fmt.Sprintf("grid_points %d vs baseline %d — regenerate the baseline", cur.GridPoints, base.GridPoints)})
		return regs
	}
	if cur.BudgetFrac < base.BudgetFrac || base.BudgetFrac < cur.BudgetFrac {
		regs = append(regs, DSERegression{Metric: "shape",
			Detail: fmt.Sprintf("budget_frac %g vs baseline %g — regenerate the baseline", cur.BudgetFrac, base.BudgetFrac)})
		return regs
	}
	if cur.FullSims > base.FullSims {
		regs = append(regs, DSERegression{Metric: "full_sims",
			Detail: fmt.Sprintf("%d -> %d: the search simulates more of the grid than the baseline", base.FullSims, cur.FullSims)})
	}
	if cur.GapPct > base.GapPct+gapSlackPct {
		regs = append(regs, DSERegression{Metric: "gap_pct",
			Detail: fmt.Sprintf("%.3f -> %.3f exceeds baseline + %.1f slack (best %s, true best %s)",
				base.GapPct, cur.GapPct, gapSlackPct, cur.BestLabel, cur.TrueBestLabel)})
	}
	if !cur.WarmIdentical {
		regs = append(regs, DSERegression{Metric: "warm_identical",
			Detail: "memo-warm re-search no longer reproduces the cold result bytes"})
	}
	if cur.MemoWarmHits == 0 {
		regs = append(regs, DSERegression{Metric: "memo_warm_hits",
			Detail: "warm re-search recorded zero memo hits — the memo is not being consulted"})
	}
	return regs
}
