package benchdata

import (
	"os"
	"path/filepath"
	"testing"
)

func hotReport(entries ...HotpathEntry) *HotpathReport {
	return &HotpathReport{GOMAXPROCS: 1, Benchmarks: entries}
}

func TestCompareHotpathPasses(t *testing.T) {
	base := hotReport(
		HotpathEntry{Name: "a", NsPerOp: 1000, AllocsPerOp: 3},
		HotpathEntry{Name: "b", NsPerOp: 500, AllocsPerOp: 0},
	)
	cur := hotReport(
		HotpathEntry{Name: "a", NsPerOp: 1099, AllocsPerOp: 3}, // within 10%
		HotpathEntry{Name: "b", NsPerOp: 450, AllocsPerOp: 0},  // improved
		HotpathEntry{Name: "new", NsPerOp: 9999, AllocsPerOp: 99},
	)
	if regs := CompareHotpath(cur, base, 10); len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

func TestCompareHotpathFlagsNsGrowth(t *testing.T) {
	base := hotReport(HotpathEntry{Name: "a", NsPerOp: 1000, AllocsPerOp: 3})
	cur := hotReport(HotpathEntry{Name: "a", NsPerOp: 1101, AllocsPerOp: 3})
	regs := CompareHotpath(cur, base, 10)
	if len(regs) != 1 || regs[0].Metric != "ns/op" {
		t.Fatalf("want one ns/op regression, got %v", regs)
	}
}

func TestCompareHotpathFlagsAnyAllocGrowth(t *testing.T) {
	base := hotReport(HotpathEntry{Name: "a", NsPerOp: 1000, AllocsPerOp: 0})
	cur := hotReport(HotpathEntry{Name: "a", NsPerOp: 900, AllocsPerOp: 1})
	regs := CompareHotpath(cur, base, 10)
	if len(regs) != 1 || regs[0].Metric != "allocs/op" {
		t.Fatalf("want one allocs/op regression, got %v", regs)
	}
}

func TestCompareHotpathFlagsMissingBenchmark(t *testing.T) {
	base := hotReport(
		HotpathEntry{Name: "a", NsPerOp: 1000, AllocsPerOp: 0},
		HotpathEntry{Name: "gone", NsPerOp: 10, AllocsPerOp: 0},
	)
	cur := hotReport(HotpathEntry{Name: "a", NsPerOp: 1000, AllocsPerOp: 0})
	regs := CompareHotpath(cur, base, 10)
	if len(regs) != 1 || regs[0].Metric != "missing" {
		t.Fatalf("want one missing-benchmark regression, got %v", regs)
	}
}

func TestLoadHotpathRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "r.json")
	if err := os.WriteFile(path, []byte(`{
		"gomaxprocs": 1,
		"benchmarks": [{"name": "a", "ns_per_op": 7, "bytes_per_op": 8, "allocs_per_op": 9}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := LoadHotpath(path)
	if err != nil {
		t.Fatal(err)
	}
	e, ok := r.Lookup("a")
	if !ok || e.NsPerOp != 7 || e.BytesPerOp != 8 || e.AllocsPerOp != 9 {
		t.Fatalf("bad round-trip: %+v ok=%v", e, ok)
	}
	if _, err := LoadHotpath(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("want error for missing file")
	}
	empty := filepath.Join(t.TempDir(), "empty.json")
	os.WriteFile(empty, []byte(`{"gomaxprocs":1,"benchmarks":[]}`), 0o644)
	if _, err := LoadHotpath(empty); err == nil {
		t.Fatal("want error for report with no benchmarks")
	}
}
