// Package benchdata implements the benchmarking half of the Model
// Development phase (Fig 2, left): run the instrumented application
// blocks over the design-space parameter grid on the (emulated) real
// machine, collect repeated timing samples per parameter combination,
// and package them for the two modeling methods — lookup tables
// (perfmodel.Table) and symbolic regression (symreg.Dataset).
package benchdata

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"

	"besst/internal/fti"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/par"
	"besst/internal/perfmodel"
	"besst/internal/stats"
	"besst/internal/symreg"
)

// Sample is one timed run of one instrumented block.
type Sample struct {
	Op      string
	Params  perfmodel.Params
	Seconds float64
}

// Campaign is a collection of benchmark samples.
type Campaign struct {
	Samples []Sample
}

// Add appends one sample.
func (c *Campaign) Add(op string, p perfmodel.Params, seconds float64) {
	c.Samples = append(c.Samples, Sample{Op: op, Params: p.Clone(), Seconds: seconds})
}

// Ops returns the distinct op names present, sorted.
func (c *Campaign) Ops() []string {
	seen := map[string]bool{}
	for _, s := range c.Samples {
		seen[s.Op] = true
	}
	ops := make([]string, 0, len(seen))
	for op := range seen {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	return ops
}

// ForOp returns the samples of one op.
func (c *Campaign) ForOp(op string) []Sample {
	var out []Sample
	for _, s := range c.Samples {
		if s.Op == op {
			out = append(out, s)
		}
	}
	return out
}

// Table builds the interpolation lookup table for one op over the given
// parameter axes.
func (c *Campaign) Table(op string, paramNames ...string) *perfmodel.Table {
	t := perfmodel.NewTable(op, paramNames...)
	for _, s := range c.ForOp(op) {
		t.Add(s.Params, s.Seconds)
	}
	if t.Points() == 0 {
		panic(fmt.Sprintf("benchdata: no samples for op %q", op))
	}
	return t
}

// Dataset builds the symbolic-regression dataset for one op over the
// given variables.
func (c *Campaign) Dataset(op string, varNames ...string) symreg.Dataset {
	ds := symreg.Dataset{VarNames: varNames}
	for _, s := range c.ForOp(op) {
		row := make([]float64, len(varNames))
		for i, n := range varNames {
			row[i] = s.Params.Get(n)
		}
		ds.X = append(ds.X, row)
		ds.Y = append(ds.Y, s.Seconds)
	}
	if len(ds.Y) == 0 {
		panic(fmt.Sprintf("benchdata: no samples for op %q", op))
	}
	return ds
}

// LuleshPlan configures a LULESH+FTI benchmarking campaign over the
// Table II grid.
type LuleshPlan struct {
	EPRs       []int
	Ranks      []int
	Levels     []fti.Level
	SamplesPer int // repeated timings per parameter combination
	Seed       uint64
}

// CaseStudyPlan returns the paper's Table II campaign: epr
// {5,10,15,20,25} x ranks {8,64,216,512,1000}, checkpoint levels 1 and
// 2, with the given number of repeated samples per combination.
func CaseStudyPlan(samplesPer int, seed uint64) LuleshPlan {
	return LuleshPlan{
		EPRs:       []int{5, 10, 15, 20, 25},
		Ranks:      []int{8, 64, 216, 512, 1000},
		Levels:     []fti.Level{fti.L1, fti.L2},
		SamplesPer: samplesPer,
		Seed:       seed,
	}
}

// CollectLulesh runs the campaign against the ground-truth emulator:
// for every (epr, ranks) combination it times the LULESH timestep
// function and each requested checkpoint level SamplesPer times.
func CollectLulesh(e *groundtruth.Emulator, plan LuleshPlan) *Campaign {
	if plan.SamplesPer <= 0 {
		panic("benchdata: non-positive samples per combination")
	}
	rng := stats.NewRNG(plan.Seed)
	c := &Campaign{}
	for _, epr := range plan.EPRs {
		for _, ranks := range plan.Ranks {
			p := perfmodel.Params{"epr": float64(epr), "ranks": float64(ranks)}
			for i := 0; i < plan.SamplesPer; i++ {
				c.Add(lulesh.OpTimestep, p, e.MeasureLuleshTimestep(epr, ranks, rng))
				for _, l := range plan.Levels {
					c.Add(lulesh.CkptOp(l), p, e.MeasureCkpt(l, epr, ranks, rng))
				}
			}
		}
	}
	return c
}

// CollectLuleshParallel runs the campaign with the (epr, ranks)
// parameter combinations measured concurrently over at most `workers`
// goroutines (<= 0 selects runtime.GOMAXPROCS). Each combination gets
// its own RNG stream, seeded deterministically from plan.Seed in grid
// order before any measurement starts, so the returned campaign is
// byte-identical for every worker count. Its sample values differ from
// CollectLulesh, which threads one RNG through the whole grid — that
// single-stream variant is retained so recorded campaigns stay
// reproducible.
func CollectLuleshParallel(e *groundtruth.Emulator, plan LuleshPlan, workers int) *Campaign {
	if plan.SamplesPer <= 0 {
		panic("benchdata: non-positive samples per combination")
	}
	type combo struct{ epr, ranks int }
	var combos []combo
	for _, epr := range plan.EPRs {
		for _, ranks := range plan.Ranks {
			combos = append(combos, combo{epr, ranks})
		}
	}
	seeds := par.SeedFan(plan.Seed, len(combos))
	parts := make([][]Sample, len(combos))
	par.ForEach(workers, len(combos), func(i int) {
		cb := combos[i]
		rng := stats.NewRNG(seeds[i])
		p := perfmodel.Params{"epr": float64(cb.epr), "ranks": float64(cb.ranks)}
		var sub Campaign
		for s := 0; s < plan.SamplesPer; s++ {
			sub.Add(lulesh.OpTimestep, p, e.MeasureLuleshTimestep(cb.epr, cb.ranks, rng))
			for _, l := range plan.Levels {
				sub.Add(lulesh.CkptOp(l), p, e.MeasureCkpt(l, cb.epr, cb.ranks, rng))
			}
		}
		parts[i] = sub.Samples
	})
	c := &Campaign{}
	for _, s := range parts {
		c.Samples = append(c.Samples, s...)
	}
	return c
}

// CollectCmtBone runs a CMT-bone campaign (Fig 1's Vulcan study) over
// problem sizes and rank counts.
func CollectCmtBone(e *groundtruth.Emulator, psizes, ranks []int, samplesPer int, seed uint64) *Campaign {
	if samplesPer <= 0 {
		panic("benchdata: non-positive samples per combination")
	}
	rng := stats.NewRNG(seed)
	c := &Campaign{}
	for _, ps := range psizes {
		for _, r := range ranks {
			p := perfmodel.Params{"psize": float64(ps), "ranks": float64(r)}
			for i := 0; i < samplesPer; i++ {
				c.Add("cmtbone_timestep", p, e.MeasureCmtTimestep(ps, r, rng))
			}
		}
	}
	return c
}

// WriteCSV serializes the campaign with header op,<param>...,seconds.
// All samples must share the same parameter names.
func (c *Campaign) WriteCSV(w io.Writer) error {
	if len(c.Samples) == 0 {
		return fmt.Errorf("benchdata: empty campaign")
	}
	var names []string
	for k := range c.Samples[0].Params {
		names = append(names, k)
	}
	sort.Strings(names)
	cw := csv.NewWriter(w)
	header := append(append([]string{"op"}, names...), "seconds")
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range c.Samples {
		row := []string{s.Op}
		for _, n := range names {
			row = append(row, strconv.FormatFloat(s.Params.Get(n), 'g', -1, 64))
		}
		row = append(row, strconv.FormatFloat(s.Seconds, 'g', -1, 64))
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a campaign serialized by WriteCSV.
func ReadCSV(r io.Reader) (*Campaign, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, err
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("benchdata: CSV has no data rows")
	}
	header := rows[0]
	if len(header) < 3 || header[0] != "op" || header[len(header)-1] != "seconds" {
		return nil, fmt.Errorf("benchdata: malformed CSV header %v", header)
	}
	paramNames := header[1 : len(header)-1]
	c := &Campaign{}
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("benchdata: row %d has %d fields, want %d", i+2, len(row), len(header))
		}
		p := perfmodel.Params{}
		for j, n := range paramNames {
			v, err := strconv.ParseFloat(row[j+1], 64)
			if err != nil {
				return nil, fmt.Errorf("benchdata: row %d param %s: %v", i+2, n, err)
			}
			p[n] = v
		}
		sec, err := strconv.ParseFloat(row[len(row)-1], 64)
		if err != nil {
			return nil, fmt.Errorf("benchdata: row %d seconds: %v", i+2, err)
		}
		c.Add(row[0], p, sec)
	}
	return c, nil
}
