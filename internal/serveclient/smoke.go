package serveclient

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"besst/internal/serve"
)

// SmokeConfig parameterizes the self-contained service smoke check.
type SmokeConfig struct {
	// Golden, when non-empty, is the committed result document the
	// quickstart campaign must reproduce byte-for-byte.
	Golden string
	// Update rewrites Golden from the live result instead of diffing.
	Update bool
}

// QuickstartRequest is the README quickstart campaign: a small
// direct-mode Monte Carlo run whose result document is committed as a
// golden file. Everything is pinned (seed included) so the bytes are
// stable. The distributed smoke (internal/dist) reuses it so the
// sharded merge can be diffed against the same golden.
const QuickstartRequest = `{
  "schema_version": 1,
  "kind": "monte_carlo",
  "tenant": "smoke",
  "trials": 5,
  "run": {"schema_version": 1, "mode": "direct", "monte_carlo": true, "per_rank_noise": true, "seed": 7},
  "app": {"epr": 5, "ranks": 8, "steps": 20, "scenario": "l1", "period": 10},
  "model": {"method": "interp", "samples": 2, "seed": 1}
}`

// Smoke boots an in-process server on a loopback port, runs the
// quickstart campaign twice over real HTTP through the typed client,
// and verifies the service invariants end to end:
//
//   - both result bodies are byte-identical (cold vs warm compile cache),
//   - the second submission hit the compile cache (/v1/statz counters),
//   - the result matches the committed golden document.
//
// It runs without a state directory on purpose: the second POST must
// genuinely re-simulate through the warm cache, not replay a journal.
func Smoke(out io.Writer, cfg SmokeConfig) error {
	srv := serve.NewServer(serve.Config{MaxActive: 2, MaxQueued: 8, MaxPerTenant: 2, CacheCap: 4})
	defer srv.Drain()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("serve smoke: listen: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	c := New("http://"+ln.Addr().String(), "")

	first, err := RunCampaign(c, []byte(QuickstartRequest), 2*time.Minute)
	if err != nil {
		return fmt.Errorf("serve smoke: %w", err)
	}
	second, err := RunCampaign(c, []byte(QuickstartRequest), 2*time.Minute)
	if err != nil {
		return fmt.Errorf("serve smoke: %w", err)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("serve smoke: cold and warm result bodies differ (%d vs %d bytes)", len(first), len(second))
	}

	st, err := c.Statz(context.Background())
	if err != nil {
		return fmt.Errorf("serve smoke: %w", err)
	}
	if st.Cache.Hits == 0 {
		return fmt.Errorf("serve smoke: second identical request did not hit the compile cache (hits=0, misses=%d)", st.Cache.Misses)
	}

	if cfg.Golden != "" {
		if cfg.Update {
			if err := os.WriteFile(cfg.Golden, first, 0o644); err != nil {
				return fmt.Errorf("serve smoke: update golden: %w", err)
			}
			_, _ = fmt.Fprintf(out, "serve smoke: golden updated: %s (%d bytes)\n", cfg.Golden, len(first))
		} else {
			want, err := os.ReadFile(cfg.Golden)
			if err != nil {
				return fmt.Errorf("serve smoke: read golden (run with -update-golden to create): %w", err)
			}
			if !bytes.Equal(first, want) {
				return fmt.Errorf("serve smoke: result diverged from golden %s (%d vs %d bytes); "+
					"if the change is intentional, regenerate with -update-golden", cfg.Golden, len(first), len(want))
			}
		}
	}
	_, _ = fmt.Fprintf(out, "serve smoke OK: byte-identical cold/warm results, compile cache hits=%d misses=%d\n",
		st.Cache.Hits, st.Cache.Misses)
	return nil
}

// RunCampaign submits raw request JSON, waits until the campaign
// settles (bounded by timeout), and returns the result document bytes.
// A settled state other than done is an error carrying the campaign's
// own error string.
func RunCampaign(c *Client, raw []byte, timeout time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	st, err := c.SubmitRaw(ctx, raw)
	if err != nil {
		return nil, err
	}
	st, err = c.Wait(ctx, st.ID, 0)
	if err != nil {
		return nil, err
	}
	if st.State != serve.StateDone {
		return nil, fmt.Errorf("campaign %s is %s: %s", st.ID, st.State, st.Error)
	}
	return c.Result(ctx, st.ID)
}
