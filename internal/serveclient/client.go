// Package serveclient is the typed Go client for the besst-serve /v1
// campaign API: submit, poll, watch, and fetch results without
// hand-rolling HTTP calls. The distributed coordinator (internal/dist)
// builds its worker transport on the same Client, so auth, error
// classification, and response decoding live in exactly one place.
package serveclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"besst/internal/serve"
)

// APIError is a non-2xx response decoded from the service's uniform
// error document (falling back to the raw body for non-JSON errors).
type APIError struct {
	Status int    // HTTP status code
	Msg    string // error document message or raw body
}

func (e *APIError) Error() string {
	return fmt.Sprintf("serveclient: %d %s: %s", e.Status, http.StatusText(e.Status), e.Msg)
}

// Client talks to one besst-serve (or besst-worker) base URL.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Token, when non-empty, is sent as "Authorization: Bearer <Token>"
	// on every request.
	Token string
	// HTTPClient overrides the transport (nil: http.DefaultClient).
	// Per-request deadlines come from contexts, not from this client's
	// Timeout, so one Client serves both quick polls and long watches.
	HTTPClient *http.Client

	// sleep overrides Wait's inter-poll delay (nil: wall clock). Tests
	// inject a recorder so the backoff schedule is asserted without
	// real sleeps.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a client for a base URL. token may be empty.
func New(baseURL, token string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/"), Token: token}
}

func (c *Client) httpc() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Do performs one API request and returns the response status and
// body. It is the transport primitive everything else builds on —
// exported so internal/dist's shard protocol can reuse the auth and
// base-URL handling verbatim. body may be nil for GETs.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return 0, nil, fmt.Errorf("serveclient: build %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("serveclient: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, fmt.Errorf("serveclient: read %s %s: %w", method, path, err)
	}
	return resp.StatusCode, out, nil
}

// doJSON performs a request, enforces a 2xx status, and decodes the
// response into doc (skipped when doc is nil).
func (c *Client) doJSON(ctx context.Context, method, path string, body []byte, doc any) error {
	status, out, err := c.Do(ctx, method, path, body)
	if err != nil {
		return err
	}
	if status < 200 || status > 299 {
		return toAPIError(status, out)
	}
	if doc == nil {
		return nil
	}
	if err := json.Unmarshal(out, doc); err != nil {
		return fmt.Errorf("serveclient: decode %s %s: %w", method, path, err)
	}
	return nil
}

// toAPIError shapes a non-2xx body into an *APIError.
func toAPIError(status int, body []byte) *APIError {
	var doc struct {
		Error string `json:"error"`
	}
	msg := strings.TrimSpace(string(body))
	if err := json.Unmarshal(body, &doc); err == nil && doc.Error != "" {
		msg = doc.Error
	}
	return &APIError{Status: status, Msg: msg}
}

// Submit posts a typed campaign request and returns the admission (or
// joined in-flight) status.
func (c *Client) Submit(ctx context.Context, req serve.CampaignRequest) (serve.CampaignStatus, error) {
	raw, err := json.Marshal(req)
	if err != nil {
		return serve.CampaignStatus{}, fmt.Errorf("serveclient: marshal request: %w", err)
	}
	return c.SubmitRaw(ctx, raw)
}

// SubmitRaw posts raw request JSON — the form to use when the exact
// request bytes matter (they are canonicalized server-side, so
// spelling variants of one request share a campaign).
func (c *Client) SubmitRaw(ctx context.Context, raw []byte) (serve.CampaignStatus, error) {
	var st serve.CampaignStatus
	err := c.doJSON(ctx, http.MethodPost, "/v1/campaigns", raw, &st)
	return st, err
}

// Status fetches a campaign's current status.
func (c *Client) Status(ctx context.Context, id string) (serve.CampaignStatus, error) {
	var st serve.CampaignStatus
	err := c.doJSON(ctx, http.MethodGet, "/v1/campaigns/"+id, nil, &st)
	return st, err
}

// Result fetches a done campaign's result document bytes verbatim —
// never re-encoded, because the bytes are the byte-reproducibility
// contract.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	status, out, err := c.Do(ctx, http.MethodGet, "/v1/campaigns/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, toAPIError(status, out)
	}
	return out, nil
}

// waitMaxPoll caps Wait's exponential backoff: delays double from the
// caller's poll interval but never exceed this, so a long campaign is
// polled every couple of seconds rather than hammered at the initial
// rate — and never slower than that, so settling is noticed promptly.
const waitMaxPoll = 2 * time.Second

// Wait polls a campaign until it leaves queued/running and returns the
// settled status. poll <= 0 selects 20ms. The delay between polls
// doubles each round, capped at waitMaxPoll, so quick campaigns settle
// after a handful of requests and long ones don't flood the service.
// The context bounds the wait.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (serve.CampaignStatus, error) {
	if poll <= 0 {
		poll = 20 * time.Millisecond
	}
	delay := poll
	for {
		st, err := c.Status(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State != serve.StateQueued && st.State != serve.StateRunning {
			return st, nil
		}
		if err := c.waitSleep(ctx, delay); err != nil {
			return st, fmt.Errorf("serveclient: waiting for campaign %s: %w", id, err)
		}
		if delay < waitMaxPoll {
			delay *= 2
			if delay > waitMaxPoll {
				delay = waitMaxPoll
			}
		}
	}
}

// waitSleep blocks for d or until the context is done.
func (c *Client) waitSleep(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Watch streams a campaign's NDJSON status lines (?watch=1), calling
// fn for each. It returns when the campaign settles (the stream ends),
// fn returns an error, or the context is cancelled.
func (c *Client) Watch(ctx context.Context, id string, fn func(serve.CampaignStatus) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/campaigns/"+id+"?watch=1", nil)
	if err != nil {
		return fmt.Errorf("serveclient: build watch: %w", err)
	}
	if c.Token != "" {
		req.Header.Set("Authorization", "Bearer "+c.Token)
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return fmt.Errorf("serveclient: watch %s: %w", id, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return toAPIError(resp.StatusCode, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var st serve.CampaignStatus
		if err := json.Unmarshal(line, &st); err != nil {
			return fmt.Errorf("serveclient: decode watch line: %w", err)
		}
		if err := fn(st); err != nil {
			return err
		}
	}
	return sc.Err()
}

// Statz fetches the service counters.
func (c *Client) Statz(ctx context.Context) (serve.Statz, error) {
	var st serve.Statz
	err := c.doJSON(ctx, http.MethodGet, "/v1/statz", nil, &st)
	return st, err
}

// Healthz fetches the liveness document.
func (c *Client) Healthz(ctx context.Context) (serve.Healthz, error) {
	var h serve.Healthz
	err := c.doJSON(ctx, http.MethodGet, "/v1/healthz", nil, &h)
	return h, err
}
