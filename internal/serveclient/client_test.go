package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"besst/internal/serve"
)

// newClient boots a server plus an httptest front end and returns a
// typed client pointed at it.
func newClient(t *testing.T, cfg serve.Config) *Client {
	t.Helper()
	srv := serve.NewServer(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Drain()
		ts.Close()
	})
	return New(ts.URL, cfg.AuthToken)
}

// TestClientRoundTrip drives submit → wait → result through the typed
// client and checks the result matches a second run byte-for-byte.
func TestClientRoundTrip(t *testing.T) {
	c := newClient(t, serve.Config{Workers: 2, CacheCap: 4})
	first, err := RunCampaign(c, []byte(QuickstartRequest), time.Minute)
	if err != nil {
		t.Fatalf("first run: %v", err)
	}
	second, err := RunCampaign(c, []byte(QuickstartRequest), time.Minute)
	if err != nil {
		t.Fatalf("second run: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("cold and warm results differ (%d vs %d bytes)", len(first), len(second))
	}
	st, err := c.Statz(context.Background())
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("warm re-post did not hit the compile cache: %+v", st.Cache)
	}
	h, err := c.Healthz(context.Background())
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz: %+v", h)
	}
}

// TestClientAPIError checks that a rejected request surfaces as a
// typed *APIError carrying the service's message.
func TestClientAPIError(t *testing.T) {
	c := newClient(t, serve.Config{})
	_, err := c.SubmitRaw(context.Background(), []byte(`{"kind": "nope"}`))
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if apiErr.Status != 400 || apiErr.Msg == "" {
		t.Fatalf("unexpected APIError: %+v", apiErr)
	}
	if _, err := c.Status(context.Background(), "no-such-campaign"); !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("status of unknown campaign: %v", err)
	}
}

// TestClientAuth checks bearer-token round-tripping: the wrong token
// answers 401 through the typed error, the right one works.
func TestClientAuth(t *testing.T) {
	c := newClient(t, serve.Config{AuthToken: "s3cret"})
	if _, err := RunCampaign(c, []byte(QuickstartRequest), time.Minute); err != nil {
		t.Fatalf("authorized run: %v", err)
	}
	bad := New(c.BaseURL, "wrong")
	_, err := bad.SubmitRaw(context.Background(), []byte(QuickstartRequest))
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 401 {
		t.Fatalf("wrong token: want 401 APIError, got %v", err)
	}
	// healthz stays reachable without credentials for load balancers.
	if _, err := New(c.BaseURL, "").Healthz(context.Background()); err != nil {
		t.Fatalf("unauthenticated healthz: %v", err)
	}
}

// TestClientWatch streams status lines and expects the final one to be
// settled.
func TestClientWatch(t *testing.T) {
	c := newClient(t, serve.Config{Workers: 1})
	st, err := c.SubmitRaw(context.Background(), []byte(QuickstartRequest))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var last serve.CampaignStatus
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Watch(ctx, st.ID, func(s serve.CampaignStatus) error {
		last = s
		return nil
	}); err != nil {
		t.Fatalf("watch: %v", err)
	}
	if last.State != serve.StateDone {
		t.Fatalf("watch ended on state %q: %s", last.State, last.Error)
	}
}

// TestSmoke runs the self-contained smoke check (sans golden) so `go
// test` covers the same path `make serve-smoke` gates on.
func TestSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke boots a real listener")
	}
	var buf bytes.Buffer
	if err := Smoke(&buf, SmokeConfig{}); err != nil {
		t.Fatalf("Smoke: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "serve smoke OK") {
		t.Fatalf("smoke output: %s", buf.String())
	}
}

// TestWaitBackoff scripts a status endpoint that reports running N
// times before settling and asserts — without any real sleeping — that
// Wait makes exactly N+1 requests and that its inter-poll delays
// double from the initial interval up to the 2s cap.
func TestWaitBackoff(t *testing.T) {
	const running = 9
	requests := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		requests++
		st := serve.CampaignStatus{SchemaVersion: serve.RequestSchemaVersion, ID: "c1", State: serve.StateRunning}
		if requests > running {
			st.State = serve.StateDone
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	}))
	defer ts.Close()

	var delays []time.Duration
	c := New(ts.URL, "")
	c.sleep = func(ctx context.Context, d time.Duration) error {
		delays = append(delays, d)
		return ctx.Err()
	}
	st, err := c.Wait(context.Background(), "c1", 100*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if st.State != serve.StateDone {
		t.Fatalf("settled state = %q, want done", st.State)
	}
	if requests != running+1 {
		t.Fatalf("Wait made %d requests, want %d", requests, running+1)
	}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, 1600 * time.Millisecond, 2 * time.Second,
		2 * time.Second, 2 * time.Second, 2 * time.Second,
	}
	if len(delays) != len(want) {
		t.Fatalf("recorded %d delays (%v), want %d", len(delays), delays, len(want))
	}
	for i, d := range delays {
		if d != want[i] {
			t.Fatalf("delay[%d] = %v, want %v (all: %v)", i, d, want[i], delays)
		}
	}
}

// TestWaitContextCancel verifies a cancelled context aborts the wait
// between polls rather than spinning.
func TestWaitContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := serve.CampaignStatus{SchemaVersion: serve.RequestSchemaVersion, ID: "c1", State: serve.StateRunning}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(st)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, "")
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel()
		return ctx.Err()
	}
	if _, err := c.Wait(ctx, "c1", time.Millisecond); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait err = %v, want context.Canceled", err)
	}
}

// TestSmokeDSE runs the surrogate-search smoke so `go test` covers the
// same path `make dse-smoke` gates on.
func TestSmokeDSE(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke boots a real listener")
	}
	var buf bytes.Buffer
	if err := SmokeDSE(&buf); err != nil {
		t.Fatalf("SmokeDSE: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "dse smoke OK") {
		t.Fatalf("smoke output: %s", buf.String())
	}
}
