package serveclient

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"besst/internal/serve"
)

// SmokeDSERequest is the pinned surrogate-guided sweep campaign the DSE
// smoke runs twice. Everything is pinned (seed included) so the result
// bytes are stable, the grid is small enough to settle in well under a
// second, and the 50% budget forces the search to leave part of the
// grid to the surrogates — exercising the predicted-cell path too.
const SmokeDSERequest = `{
  "schema_version": 1,
  "kind": "dse_sweep",
  "tenant": "smoke",
  "run": {"seed": 7},
  "sweep": {
    "eprs": [5, 6, 7, 8],
    "ranks": [8, 27],
    "scenarios": ["noft", "l1"],
    "timesteps": 10,
    "mc_runs": 2,
    "search": {"budget": 0.5, "round_size": 2}
  },
  "model": {"method": "interp", "samples": 2, "seed": 1}
}`

// SmokeDSE boots an in-process server on a loopback port and runs the
// pinned search campaign twice over real HTTP, verifying the
// surrogate-search invariants end to end:
//
//   - the first (cold) run populates the point memo — misses > 0,
//   - the second run re-executes and serves its points from the memo
//     (hits grow by at least the first run's full-simulation count),
//   - cold and warm result bodies are byte-identical — memo hits
//     return the exact floats the cold run computed,
//   - the result carries a search summary whose full_sims stays under
//     the grid size (the search genuinely skipped points).
//
// Like Smoke, it runs without a state directory on purpose: the warm
// run must flow through the memo, not replay a journal.
func SmokeDSE(out io.Writer) error {
	srv := serve.NewServer(serve.Config{MaxActive: 2, MaxQueued: 8, MaxPerTenant: 2, CacheCap: 4})
	defer srv.Drain()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("dse smoke: listen: %w", err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer func() { _ = httpSrv.Close() }()
	c := New("http://"+ln.Addr().String(), "")

	first, err := RunCampaign(c, []byte(SmokeDSERequest), 2*time.Minute)
	if err != nil {
		return fmt.Errorf("dse smoke: cold run: %w", err)
	}
	cold, err := c.Statz(context.Background())
	if err != nil {
		return fmt.Errorf("dse smoke: %w", err)
	}
	if cold.PointMemo.Misses == 0 {
		return fmt.Errorf("dse smoke: cold run recorded no memo misses (entries=%d)", cold.PointMemo.Entries)
	}

	second, err := RunCampaign(c, []byte(SmokeDSERequest), 2*time.Minute)
	if err != nil {
		return fmt.Errorf("dse smoke: warm run: %w", err)
	}
	if !bytes.Equal(first, second) {
		return fmt.Errorf("dse smoke: cold and warm result bodies differ (%d vs %d bytes)", len(first), len(second))
	}
	warm, err := c.Statz(context.Background())
	if err != nil {
		return fmt.Errorf("dse smoke: %w", err)
	}
	if warm.PointMemo.Hits <= cold.PointMemo.Hits {
		return fmt.Errorf("dse smoke: warm run did not hit the point memo (hits %d -> %d, misses %d -> %d)",
			cold.PointMemo.Hits, warm.PointMemo.Hits, cold.PointMemo.Misses, warm.PointMemo.Misses)
	}

	var doc serve.CampaignResult
	if err := json.Unmarshal(first, &doc); err != nil {
		return fmt.Errorf("dse smoke: decode result: %w", err)
	}
	if doc.Search == nil {
		return fmt.Errorf("dse smoke: result carries no search summary")
	}
	if doc.Search.FullSims >= doc.Search.GridPoints {
		return fmt.Errorf("dse smoke: search simulated the whole grid (%d of %d points)",
			doc.Search.FullSims, doc.Search.GridPoints)
	}

	_, _ = fmt.Fprintf(out, "dse smoke OK: byte-identical cold/warm search results, %d/%d points simulated, memo hits=%d misses=%d\n",
		doc.Search.FullSims, doc.Search.GridPoints, warm.PointMemo.Hits, warm.PointMemo.Misses)
	return nil
}
