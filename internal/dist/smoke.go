package dist

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"besst/internal/serve"
	"besst/internal/serveclient"
)

// SmokeConfig parameterizes the distributed smoke check.
type SmokeConfig struct {
	// Golden, when non-empty, is the committed single-process result
	// document (the serve-smoke golden — same quickstart request) every
	// distributed merge must reproduce byte-for-byte.
	Golden string
}

// Smoke is the end-to-end proof of the distributed layer's central
// claim: sharding, replication, and worker loss cannot change result
// bytes. It re-executes its own binary (cmd/besst-worker) as three
// local workers — one armed with -chaos-kill 1, so it SIGKILLs itself
// mid-shard the first time it executes a unit — then runs the
// quickstart campaign at every combination of shards {1, 4} × replicas
// {1, 2, 3} and requires each merged result to be byte-identical to
// the single-process reference (and to the committed golden, when
// given). It also requires that the chaos worker was actually lost and
// its shards reassigned: a smoke where nothing died proves nothing.
func Smoke(out io.Writer, cfg SmokeConfig) error {
	// Single-process reference: execute every unit in this process and
	// assemble, bypassing HTTP entirely.
	request := []byte(serveclient.QuickstartRequest)
	p, err := serve.ParsePlan(request)
	if err != nil {
		return fmt.Errorf("dist smoke: %w", err)
	}
	ex := serve.NewShardExecutor(serve.ExecConfig{Workers: 2, CacheCap: 4})
	units, err := ex.ExecShard(p.ID(), request, 0, p.Units())
	if err != nil {
		return fmt.Errorf("dist smoke: reference run: %w", err)
	}
	want, err := p.Assemble(units)
	if err != nil {
		return fmt.Errorf("dist smoke: assemble reference: %w", err)
	}
	if cfg.Golden != "" {
		golden, err := os.ReadFile(cfg.Golden)
		if err != nil {
			return fmt.Errorf("dist smoke: read golden: %w", err)
		}
		if !bytes.Equal(want, golden) {
			return fmt.Errorf("dist smoke: single-process reference diverged from golden %s (%d vs %d bytes)",
				cfg.Golden, len(want), len(golden))
		}
	}

	exe, err := os.Executable()
	if err != nil {
		return fmt.Errorf("dist smoke: locate own binary: %w", err)
	}
	const token = "dist-smoke"
	var (
		cmds []*exec.Cmd
		urls []string
	)
	defer func() {
		for _, cmd := range cmds {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}
	}()
	for i := 0; i < 3; i++ {
		args := []string{"-addr", "127.0.0.1:0", "-auth-token", token}
		if i == 2 { // the doomed worker: dies mid-shard on first contact
			args = append(args, "-chaos-kill", "1", "-chaos-seed", "42")
		}
		cmd, url, err := spawnWorker(exe, args)
		if err != nil {
			return fmt.Errorf("dist smoke: spawn worker %d: %w", i, err)
		}
		cmds = append(cmds, cmd)
		urls = append(urls, url)
	}

	lost, retries := 0, 0
	for _, shards := range []int{1, 4} {
		for _, replicas := range []int{1, 2, 3} {
			c, err := NewCoordinator(Config{
				Workers:      urls,
				Shards:       shards,
				Replicas:     replicas,
				AuthToken:    token,
				ShardTimeout: time.Minute,
				Heartbeat:    150 * time.Millisecond,
				MaxAttempts:  6,
				BaseBackoff:  20 * time.Millisecond,
			})
			if err != nil {
				return fmt.Errorf("dist smoke: %w", err)
			}
			doc, rep, err := RunRequest(c, request, nil, nil)
			if err != nil {
				return fmt.Errorf("dist smoke: shards=%d replicas=%d: %w", shards, replicas, err)
			}
			if !bytes.Equal(doc, want) {
				return fmt.Errorf("dist smoke: shards=%d replicas=%d: merged result diverged from single-process reference (%d vs %d bytes)",
					shards, replicas, len(doc), len(want))
			}
			if len(rep.Divergences) > 0 {
				return fmt.Errorf("dist smoke: shards=%d replicas=%d: unexpected divergences: %v", shards, replicas, rep.Divergences)
			}
			lost += rep.WorkersLost
			retries += rep.Retries
			_, _ = fmt.Fprintf(out, "dist smoke: shards=%d replicas=%d OK (retries=%d, workers lost=%d)\n",
				shards, replicas, rep.Retries, rep.WorkersLost)
		}
	}
	if lost == 0 || retries == 0 {
		return fmt.Errorf("dist smoke: the chaos worker was never lost (lost=%d, retries=%d) — worker-loss tolerance went unexercised", lost, retries)
	}
	_, _ = fmt.Fprintf(out, "dist smoke OK: byte-identical merges across shards {1,4} x replicas {1,2,3} with a worker SIGKILLed mid-shard (total retries=%d)\n", retries)
	return nil
}

// spawnWorker starts one besst-worker subprocess on an ephemeral port
// and parses the bound address from its first stdout line.
func spawnWorker(exe string, args []string) (*exec.Cmd, string, error) {
	cmd := exec.Command(exe, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, "", err
	}
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return nil, "", fmt.Errorf("worker exited before announcing its address: %v", sc.Err())
	}
	addr := strings.TrimPrefix(strings.TrimSpace(sc.Text()), "besst-worker listening on ")
	return cmd, "http://" + addr, nil
}
