// Package dist executes one campaign across many worker processes and
// keeps going when workers die. It is the system-level expression of
// the paper's fault-tolerance thesis: the simulator that models
// checkpoint/restart and replication for exascale applications runs
// its own campaigns under the same disciplines.
//
// The layer is a coordinator/worker pair over stdlib HTTP/JSON:
//
//   - the coordinator (Coordinator) splits a monte_carlo or dse_sweep
//     campaign into deterministic index-range shards (par.Split over
//     serve.Plan.Units), dispatches each shard to k replica workers,
//     and merges the per-unit payloads with serve.Plan.Assemble;
//   - a worker (cmd/besst-worker, handler here) rebuilds the plan from
//     the canonical request bytes, verifies the campaign ID, executes
//     its index range through serve.ShardExecutor, and returns one
//     canonical payload per unit.
//
// Fault tolerance is functional replication (FT-GAIA's k-modular
// redundancy): every shard runs on k workers, replica journals are
// compared byte-for-byte, and a strict majority must agree. Worker
// loss (connection refused, timeout, 5xx) triggers exponential-backoff
// retry on surviving workers; divergent minorities are surfaced as
// first-class campaign errors, not averaged away.
//
// Because unit i's payload bytes are a pure function of (canonical
// request, i) — see internal/serve/exec.go — the merged result is
// byte-identical to a single-process run at any shard count, replica
// count, or kill schedule.
package dist

import (
	"encoding/json"
	"fmt"
	"strings"
)

// ShardSchemaVersion versions the coordinator↔worker wire protocol.
const ShardSchemaVersion = 1

// ShardRequest is the body of POST /v1/shards: run units [Lo, Hi) of
// the campaign whose canonical request bytes are Request. The request
// travels with every shard so workers are stateless — any worker can
// execute any shard of any campaign, including ones admitted after the
// worker started.
type ShardRequest struct {
	SchemaVersion int             `json:"schema_version"`
	CampaignID    string          `json:"campaign_id"`
	Request       json.RawMessage `json:"request"`
	Lo            int             `json:"lo"`
	Hi            int             `json:"hi"`
}

// ShardResult is the worker's answer: one canonical payload per unit,
// index order. Payload bytes are the unit of replica comparison — the
// coordinator hashes them itself and never trusts a worker-reported
// digest.
type ShardResult struct {
	SchemaVersion int               `json:"schema_version"`
	CampaignID    string            `json:"campaign_id"`
	Lo            int               `json:"lo"`
	Hi            int               `json:"hi"`
	Payloads      []json.RawMessage `json:"payloads"`
}

// Report summarizes a distributed run for status documents and logs.
type Report struct {
	// Shards is the number of index-range shards the campaign split into.
	Shards int `json:"shards"`
	// Replicas is the replication degree each shard ran at.
	Replicas int `json:"replicas"`
	// Retries counts dispatch attempts beyond the first, across all
	// shard replicas (worker loss, timeouts, transport errors).
	Retries int `json:"retries"`
	// WorkersLost counts workers marked down at least once.
	WorkersLost int `json:"workers_lost"`
	// Divergences describes shards whose replicas disagreed but still
	// reached majority — accepted, yet surfaced: silent state corruption
	// is the failure mode replication exists to catch.
	Divergences []string `json:"divergences,omitempty"`
}

// DivergenceError is a shard whose replicas could not reach a strict
// majority: no journal variant was returned by more than half the
// replicas that answered. The campaign fails with this error rather
// than guessing — FT-GAIA accepts majority results and only majority
// results.
type DivergenceError struct {
	Shard    int      // shard index
	Lo, Hi   int      // unit range
	Returned int      // replicas that answered
	Variants []string // distinct journal hashes observed, most common first
}

func (e *DivergenceError) Error() string {
	return fmt.Sprintf("dist: shard %d [%d,%d) diverged: %d replicas returned %d distinct journals (%s) with no majority",
		e.Shard, e.Lo, e.Hi, e.Returned, len(e.Variants), strings.Join(e.Variants, ", "))
}

// Collector receives distributed-execution progress events. It is
// structurally satisfied by *obs.Collector and serve's backend
// collector; a nil Collector is valid and drops everything.
type Collector interface {
	ShardDone(shard, lo, hi int)
	ShardRetry(shard, attempt int)
	ShardDivergence(shard, agree, returned int)
	WorkerDown(worker int)
}
