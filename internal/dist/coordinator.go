package dist

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"besst/internal/par"
	"besst/internal/serve"
	"besst/internal/serveclient"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Workers are the worker base URLs (e.g. "http://127.0.0.1:9001").
	// At least one is required.
	Workers []string
	// Shards is the number of index-range shards to split a campaign
	// into (<= 0: one per worker).
	Shards int
	// Replicas is the functional-replication degree: every shard runs
	// on this many workers and a strict majority of returned journals
	// must agree byte-for-byte (<= 0: 1, i.e. no replication).
	Replicas int
	// AuthToken, when non-empty, authenticates every worker call.
	AuthToken string
	// ShardTimeout bounds one shard-replica execution attempt
	// (<= 0: 2m). A straggler past the deadline counts as worker loss:
	// the attempt is abandoned and the shard reassigned.
	ShardTimeout time.Duration
	// Heartbeat is the worker health-probe period (<= 0: 1s; probing
	// also revives workers previously marked down).
	Heartbeat time.Duration
	// MaxAttempts bounds dispatch attempts per shard replica, first
	// attempt included (<= 0: 4).
	MaxAttempts int
	// BaseBackoff is the delay before the second attempt, doubling per
	// attempt up to MaxBackoff (defaults 50ms and 2s).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

// Coordinator runs campaigns across a fixed fleet of worker processes,
// tolerating worker loss through retry, reassignment, and functional
// replication. Safe for concurrent use; each Run is independent.
type Coordinator struct {
	cfg     Config
	clients []*serveclient.Client

	mu       sync.Mutex
	down     []bool // guarded by mu
	everDown []bool // guarded by mu
}

// NewCoordinator validates the config and builds per-worker clients.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: no workers configured")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = len(cfg.Workers)
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.ShardTimeout <= 0 {
		cfg.ShardTimeout = 2 * time.Minute
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	c := &Coordinator{
		cfg:      cfg,
		clients:  make([]*serveclient.Client, len(cfg.Workers)),
		down:     make([]bool, len(cfg.Workers)),
		everDown: make([]bool, len(cfg.Workers)),
	}
	for i, w := range cfg.Workers {
		c.clients[i] = serveclient.New(w, cfg.AuthToken)
	}
	return c, nil
}

// nopCollector drops every event so the hot path never nil-checks.
type nopCollector struct{}

func (nopCollector) ShardDone(int, int, int)       {}
func (nopCollector) ShardRetry(int, int)           {}
func (nopCollector) ShardDivergence(int, int, int) {}
func (nopCollector) WorkerDown(int)                {}

// runAccounting accumulates the Report across concurrent shards.
type runAccounting struct {
	mu          sync.Mutex
	retries     int      // guarded by mu
	divergences []string // guarded by mu
}

// Run executes the campaign in raw request JSON across the worker
// fleet and returns the complete per-unit payload vector (index
// order). n, when positive, cross-checks the caller's unit count
// against the plan. A closed cancel channel aborts the run and returns
// (nil, report, nil) — the drained convention shared with
// serve.Backend. Divergence-without-majority, exhaustion of every
// replica's attempts, and bad requests return errors.
func (c *Coordinator) Run(request []byte, n int, cancel <-chan struct{}, col Collector) ([]json.RawMessage, Report, error) {
	rep := Report{Replicas: c.cfg.Replicas}
	p, err := serve.ParsePlan(request)
	if err != nil {
		return nil, rep, err
	}
	units := p.Units()
	if n > 0 && n != units {
		return nil, rep, fmt.Errorf("dist: caller expects %d units but plan %s has %d", n, p.ID(), units)
	}
	ranges := par.Split(units, c.cfg.Shards)
	rep.Shards = len(ranges)
	if col == nil {
		col = nopCollector{}
	}

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	go func() { // abort on caller cancellation; exits via stop()
		select {
		case <-cancel:
			stop()
		case <-ctx.Done():
		}
	}()
	go c.heartbeatLoop(ctx, col)

	acct := &runAccounting{}
	payloads := make([]json.RawMessage, units)
	shardErrs := make([]error, len(ranges))
	var wg sync.WaitGroup
	for s, r := range ranges {
		wg.Add(1)
		go func(s int, r par.Range) {
			defer wg.Done()
			out, err := c.runShard(ctx, s, r, p, col, acct)
			if err != nil {
				shardErrs[s] = err
				stop() // fail fast: abandon the other shards
				return
			}
			copy(payloads[r.Lo:r.Hi], out)
			col.ShardDone(s, r.Lo, r.Hi)
		}(s, r)
	}
	wg.Wait()

	acct.mu.Lock()
	rep.Retries = acct.retries
	rep.Divergences = acct.divergences
	acct.mu.Unlock()
	c.mu.Lock()
	for _, d := range c.everDown {
		if d {
			rep.WorkersLost++
		}
	}
	c.mu.Unlock()

	// Prefer a root-cause error (divergence, exhausted retries) over
	// the context errors of shards abandoned by the fail-fast stop().
	var abandoned error
	for _, err := range shardErrs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			abandoned = err
			continue
		}
		return nil, rep, err
	}
	if abandoned != nil {
		select {
		case <-cancel:
			return nil, rep, nil // drained mid-shard
		default:
		}
		return nil, rep, abandoned
	}
	select {
	case <-cancel:
		return nil, rep, nil // drained
	default:
	}
	return payloads, rep, nil
}

// runShard executes one shard on Replicas workers and resolves the
// returned journals by strict majority.
func (c *Coordinator) runShard(ctx context.Context, s int, r par.Range, p *serve.Plan, col Collector, acct *runAccounting) ([]json.RawMessage, error) {
	type replicaOut struct {
		payloads []json.RawMessage
		key      string
	}
	var (
		mu       sync.Mutex
		returned []replicaOut // guarded by mu
		lastErr  error        // guarded by mu
	)
	var wg sync.WaitGroup
	for ri := 0; ri < c.cfg.Replicas; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			out, err := c.runReplica(ctx, s, ri, r, p, col, acct)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				lastErr = err
				return
			}
			returned = append(returned, replicaOut{out, journalKey(out)})
		}(ri)
	}
	wg.Wait()

	if len(returned) == 0 {
		if ctx.Err() != nil && lastErr == nil {
			return nil, fmt.Errorf("dist: shard %d [%d,%d) abandoned: %w", s, r.Lo, r.Hi, ctx.Err())
		}
		return nil, fmt.Errorf("dist: shard %d [%d,%d) failed on every replica: %w", s, r.Lo, r.Hi, lastErr)
	}

	// Group byte-identical journals; strict majority of *returned*
	// replicas wins. Workers that never answered don't vote.
	counts := map[string]int{}
	var order []string
	for _, ro := range returned {
		if counts[ro.key] == 0 {
			order = append(order, ro.key)
		}
		counts[ro.key]++
	}
	sort.SliceStable(order, func(i, j int) bool { return counts[order[i]] > counts[order[j]] })
	bestKey := order[0]
	best := counts[bestKey]
	if best*2 <= len(returned) {
		return nil, &DivergenceError{Shard: s, Lo: r.Lo, Hi: r.Hi, Returned: len(returned), Variants: order}
	}
	if len(order) > 1 {
		col.ShardDivergence(s, best, len(returned))
		note := fmt.Sprintf("shard %d [%d,%d): %d/%d replicas agreed on journal %s; rejected minority journals: %v",
			s, r.Lo, r.Hi, best, len(returned), bestKey, order[1:])
		acct.mu.Lock()
		acct.divergences = append(acct.divergences, note)
		acct.mu.Unlock()
	}
	for _, ro := range returned {
		if ro.key == bestKey {
			return ro.payloads, nil
		}
	}
	panic("unreachable: bestKey came from returned")
}

// runReplica drives one shard replica to completion: pick a live
// worker, call it with the shard deadline, and on worker loss back off
// and reassign to a survivor.
func (c *Coordinator) runReplica(ctx context.Context, s, ri int, r par.Range, p *serve.Plan, col Collector, acct *runAccounting) ([]json.RawMessage, error) {
	var lastErr error
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			col.ShardRetry(s, attempt)
			acct.mu.Lock()
			acct.retries++
			acct.mu.Unlock()
			if err := c.backoff(ctx, attempt); err != nil {
				return nil, err
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		w := c.pickWorker(s, ri, attempt)
		out, err := c.callWorker(ctx, w, s, r, p)
		if err == nil {
			return out, nil
		}
		lastErr = fmt.Errorf("worker %d (%s): %w", w, c.cfg.Workers[w], err)
		if isFatal(err) || ctx.Err() != nil {
			return nil, lastErr
		}
		c.markDown(w, col)
	}
	return nil, lastErr
}

// callWorker posts one shard to worker w and validates the answer.
func (c *Coordinator) callWorker(ctx context.Context, w, s int, r par.Range, p *serve.Plan) ([]json.RawMessage, error) {
	body, err := json.Marshal(ShardRequest{
		SchemaVersion: ShardSchemaVersion,
		CampaignID:    p.ID(),
		Request:       json.RawMessage(p.Canonical()),
		Lo:            r.Lo,
		Hi:            r.Hi,
	})
	if err != nil {
		return nil, err
	}
	callCtx, done := context.WithTimeout(ctx, c.cfg.ShardTimeout)
	defer done()
	status, out, err := c.clients[w].Do(callCtx, http.MethodPost, "/v1/shards", body)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		var doc struct {
			Error string `json:"error"`
		}
		msg := string(out)
		if jsonErr := json.Unmarshal(out, &doc); jsonErr == nil && doc.Error != "" {
			msg = doc.Error
		}
		return nil, &serveclient.APIError{Status: status, Msg: msg}
	}
	var res ShardResult
	if err := json.Unmarshal(out, &res); err != nil {
		return nil, fmt.Errorf("decode shard result: %w", err)
	}
	if res.CampaignID != p.ID() || res.Lo != r.Lo || res.Hi != r.Hi || len(res.Payloads) != r.Len() {
		return nil, fmt.Errorf("shard result mismatch: campaign %s [%d,%d) with %d payloads, want %s [%d,%d) with %d",
			res.CampaignID, res.Lo, res.Hi, len(res.Payloads), p.ID(), r.Lo, r.Hi, r.Len())
	}
	for i, pay := range res.Payloads {
		if len(pay) == 0 {
			return nil, fmt.Errorf("shard result: empty payload for unit %d", r.Lo+i)
		}
		if string(pay) == "null" {
			// The worker's explicit quarantine record for a panicked
			// unit. Normalize the wire form back to nil so replica
			// comparison and assembly see the in-process representation.
			res.Payloads[i] = nil
		}
	}
	return res.Payloads, nil
}

// isFatal reports whether the error marks the request itself broken —
// a 4xx the worker will answer identically forever — as opposed to
// worker loss, which retry on a survivor can fix.
func isFatal(err error) bool {
	var ae *serveclient.APIError
	if errors.As(err, &ae) {
		return ae.Status >= 400 && ae.Status < 500 &&
			ae.Status != http.StatusRequestTimeout && ae.Status != http.StatusTooManyRequests
	}
	return false
}

// backoff sleeps the exponential delay for attempt, aborting early on
// cancellation.
func (c *Coordinator) backoff(ctx context.Context, attempt int) error {
	d := c.cfg.BaseBackoff << (attempt - 2) // attempt 2 sleeps BaseBackoff
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-time.After(d):
		return nil
	}
}

// pickWorker deterministically spreads (shard, replica, attempt)
// across the fleet, skipping workers currently marked down. With every
// worker down it returns the base pick anyway — the health view may be
// stale, and a failed attempt costs one backoff.
func (c *Coordinator) pickWorker(shard, replica, attempt int) int {
	w := len(c.clients)
	start := (shard + replica + attempt) % w
	c.mu.Lock()
	defer c.mu.Unlock()
	for off := 0; off < w; off++ {
		i := (start + off) % w
		if !c.down[i] {
			return i
		}
	}
	return start
}

// markDown records worker loss (idempotent per down episode).
func (c *Coordinator) markDown(w int, col Collector) {
	c.mu.Lock()
	fresh := !c.down[w]
	c.down[w] = true
	c.everDown[w] = true
	c.mu.Unlock()
	if fresh {
		col.WorkerDown(w)
	}
}

// heartbeatLoop probes worker /v1/healthz on a ticker for the life of
// one Run: a down worker that answers again is revived and rejoins the
// assignment rotation; a live one that stops answering is marked down
// so stragglers stop receiving new shards. Exits when ctx is done.
func (c *Coordinator) heartbeatLoop(ctx context.Context, col Collector) {
	tick := time.NewTicker(c.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		for i, cl := range c.clients {
			probeCtx, done := context.WithTimeout(ctx, c.cfg.Heartbeat)
			_, err := cl.Healthz(probeCtx)
			done()
			if ctx.Err() != nil {
				return
			}
			if err != nil {
				c.markDown(i, col)
				continue
			}
			c.mu.Lock()
			c.down[i] = false
			c.mu.Unlock()
		}
	}
}

// journalKey is the byte-level identity of a replica's journal: a
// length-prefixed SHA-256 over the payload vector, truncated for
// readable divergence messages. Computed coordinator-side — a worker
// never reports its own digest.
func journalKey(payloads []json.RawMessage) string {
	h := sha256.New()
	var lenBuf [8]byte
	for _, p := range payloads {
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(len(p)))
		_, _ = h.Write(lenBuf[:])
		_, _ = h.Write(p)
	}
	return hex.EncodeToString(h.Sum(nil))[:12]
}

// RunRequest is the CLI entry point: parse the raw request, run it
// across the fleet, and assemble the merged result document —
// byte-identical to what besst-serve or the local CLIs produce for the
// same request.
func RunRequest(c *Coordinator, request []byte, cancel <-chan struct{}, col Collector) ([]byte, Report, error) {
	p, err := serve.ParsePlan(request)
	if err != nil {
		return nil, Report{}, err
	}
	payloads, rep, err := c.Run(request, 0, cancel, col)
	if err != nil {
		return nil, rep, err
	}
	if payloads == nil {
		return nil, rep, errors.New("dist: run cancelled")
	}
	doc, err := p.Assemble(payloads)
	if err != nil {
		return nil, rep, err
	}
	return doc, rep, nil
}

// ServeBackend adapts a Coordinator to serve.Backend so besst-serve
// can execute admitted campaigns on the worker fleet instead of
// in-process.
func ServeBackend(c *Coordinator) serve.Backend { return serveBackend{c} }

type serveBackend struct{ c *Coordinator }

func (b serveBackend) Run(request []byte, n int, cancel <-chan struct{}, col serve.BackendCollector) ([]json.RawMessage, serve.BackendReport, error) {
	var dc Collector
	if col != nil {
		dc = col
	}
	payloads, rep, err := b.c.Run(request, n, cancel, dc)
	return payloads, serve.BackendReport{
		Shards:      rep.Shards,
		Replicas:    rep.Replicas,
		Retries:     rep.Retries,
		WorkersLost: rep.WorkersLost,
		Divergences: rep.Divergences,
	}, err
}
