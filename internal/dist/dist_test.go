package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync"
	"testing"
	"time"

	"besst/internal/resilience"
	"besst/internal/serve"
	"besst/internal/serveclient"
)

// The dist tests drive the coordinator against scripted executors
// (forged journals, stragglers) and against the real shard executor
// (byte-identity matrix, subprocess SIGKILL). The child-worker mode is
// dispatched from TestMain via env var, the same re-exec pattern the
// resilience kill-resume test uses.

const childEnv = "BESST_DIST_WORKER_CHILD"

// testRequest is a small valid monte_carlo campaign; the scripted
// executors never run it, but the coordinator validates every request
// through serve.ParsePlan.
const testRequest = `{
  "schema_version": 1,
  "kind": "monte_carlo",
  "trials": 6,
  "run": {"mode": "direct", "per_rank_noise": true, "seed": 3},
  "app": {"epr": 4, "ranks": 8, "steps": 10, "scenario": "l1", "period": 5},
  "model": {"method": "interp", "samples": 2, "seed": 1}
}`

// execFunc adapts a function to Executor.
type execFunc func(id string, req []byte, lo, hi int) ([]json.RawMessage, error)

func (f execFunc) ExecShard(id string, req []byte, lo, hi int) ([]json.RawMessage, error) {
	return f(id, req, lo, hi)
}

// honestPayloads is the scripted ground truth: unit i -> {"u":i}.
func honestPayloads(lo, hi int) []json.RawMessage {
	out := make([]json.RawMessage, hi-lo)
	for k := range out {
		out[k] = json.RawMessage(fmt.Sprintf(`{"u":%d}`, lo+k))
	}
	return out
}

func honestExec() Executor {
	return execFunc(func(_ string, _ []byte, lo, hi int) ([]json.RawMessage, error) {
		return honestPayloads(lo, hi), nil
	})
}

// startWorker serves a WorkerHandler over httptest and returns its URL.
func startWorker(t *testing.T, cfg WorkerConfig) string {
	t.Helper()
	ts := httptest.NewServer(WorkerHandler(cfg))
	t.Cleanup(ts.Close)
	return ts.URL
}

// recCollector records progress events for assertions.
type recCollector struct {
	mu          sync.Mutex
	done        int   // guarded by mu
	retries     int   // guarded by mu
	divergences int   // guarded by mu
	workersDown []int // guarded by mu
}

func (r *recCollector) ShardDone(int, int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.done++
}
func (r *recCollector) ShardRetry(int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.retries++
}
func (r *recCollector) ShardDivergence(int, int, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.divergences++
}
func (r *recCollector) WorkerDown(w int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.workersDown = append(r.workersDown, w)
}

func newCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatalf("NewCoordinator: %v", err)
	}
	return c
}

// TestForgedDivergenceMajorityWins runs one shard on three replicas
// where one worker forges its journal: the two honest replicas form a
// strict majority, the forged minority is rejected, and the
// divergence is surfaced in the report and the collector — accepted,
// never silent.
func TestForgedDivergenceMajorityWins(t *testing.T) {
	forged := execFunc(func(_ string, _ []byte, lo, hi int) ([]json.RawMessage, error) {
		out := make([]json.RawMessage, hi-lo)
		for k := range out {
			out[k] = json.RawMessage(fmt.Sprintf(`{"u":%d,"forged":true}`, lo+k))
		}
		return out, nil
	})
	urls := []string{
		startWorker(t, WorkerConfig{Executor: honestExec()}),
		startWorker(t, WorkerConfig{Executor: honestExec()}),
		startWorker(t, WorkerConfig{Executor: forged}),
	}
	col := &recCollector{}
	c := newCoordinator(t, Config{Workers: urls, Shards: 1, Replicas: 3})
	payloads, rep, err := c.Run([]byte(testRequest), 0, nil, col)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, p := range payloads {
		if want := fmt.Sprintf(`{"u":%d}`, i); string(p) != want {
			t.Fatalf("unit %d: forged journal won: %s", i, p)
		}
	}
	if len(rep.Divergences) != 1 || !strings.Contains(rep.Divergences[0], "2/3 replicas agreed") {
		t.Fatalf("divergences not surfaced: %v", rep.Divergences)
	}
	if col.divergences != 1 {
		t.Fatalf("collector saw %d divergences, want 1", col.divergences)
	}
}

// TestNoMajorityFailsWithDivergenceError runs two replicas that
// disagree: 1-vs-1 is no strict majority, so the campaign must fail
// with a typed DivergenceError rather than guess.
func TestNoMajorityFailsWithDivergenceError(t *testing.T) {
	variant := func(tag string) Executor {
		return execFunc(func(_ string, _ []byte, lo, hi int) ([]json.RawMessage, error) {
			out := make([]json.RawMessage, hi-lo)
			for k := range out {
				out[k] = json.RawMessage(fmt.Sprintf(`{"u":%d,"v":%q}`, lo+k, tag))
			}
			return out, nil
		})
	}
	urls := []string{
		startWorker(t, WorkerConfig{Executor: variant("a")}),
		startWorker(t, WorkerConfig{Executor: variant("b")}),
	}
	c := newCoordinator(t, Config{Workers: urls, Shards: 1, Replicas: 2})
	_, _, err := c.Run([]byte(testRequest), 0, nil, nil)
	var div *DivergenceError
	if !errors.As(err, &div) {
		t.Fatalf("want DivergenceError, got %v", err)
	}
	if div.Returned != 2 || len(div.Variants) != 2 {
		t.Fatalf("unexpected divergence: %+v", div)
	}
}

// TestStragglerTimeoutReassigned points the first attempt at a worker
// that hangs forever: the shard deadline must fire, the straggler be
// marked down, and the shard reassigned to the survivor.
func TestStragglerTimeoutReassigned(t *testing.T) {
	release := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // stall until the test ends; the coordinator abandons the call long before
	}))
	t.Cleanup(hang.Close)
	t.Cleanup(func() { close(release) }) // LIFO: unblock handlers before Close waits on them
	urls := []string{
		startWorker(t, WorkerConfig{Executor: honestExec()}),
		hang.URL, // index 1: the first pick for shard 0 replica 0
	}
	col := &recCollector{}
	c := newCoordinator(t, Config{
		Workers:      urls,
		Shards:       1,
		Replicas:     1,
		ShardTimeout: 100 * time.Millisecond,
		BaseBackoff:  time.Millisecond,
		MaxBackoff:   2 * time.Millisecond,
	})
	payloads, rep, err := c.Run([]byte(testRequest), 0, nil, col)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(payloads) != 6 || string(payloads[0]) != `{"u":0}` {
		t.Fatalf("payloads after reassignment: %v", payloads)
	}
	if rep.Retries == 0 || rep.WorkersLost != 1 {
		t.Fatalf("straggler loss unreported: %+v", rep)
	}
	if len(col.workersDown) == 0 || col.workersDown[0] != 1 {
		t.Fatalf("collector workersDown: %v", col.workersDown)
	}
}

// TestBadRequestIsFatalNoRetry submits an unshardable (single-kind)
// campaign: the worker answers 400 and the coordinator must fail
// immediately instead of burning retries on a request that can never
// succeed.
func TestBadRequestIsFatalNoRetry(t *testing.T) {
	ex := serve.NewShardExecutor(serve.ExecConfig{Workers: 1, CacheCap: 2})
	urls := []string{startWorker(t, WorkerConfig{Executor: ex})}
	col := &recCollector{}
	c := newCoordinator(t, Config{Workers: urls, Shards: 1, Replicas: 1})
	single := strings.Replace(testRequest, `"kind": "monte_carlo",`, `"kind": "single",`, 1)
	single = strings.Replace(single, `"trials": 6,`, ``, 1)
	_, rep, err := c.Run([]byte(single), 0, nil, col)
	if err == nil || !strings.Contains(err.Error(), "not sharded") {
		t.Fatalf("want not-sharded rejection, got %v", err)
	}
	if rep.Retries != 0 || col.retries != 0 {
		t.Fatalf("fatal 400 was retried: %+v", rep)
	}
}

// TestWorkerAuth checks the worker's bearer-token gate: wrong token
// 401s shard posts, healthz stays open for heartbeats.
func TestWorkerAuth(t *testing.T) {
	url := startWorker(t, WorkerConfig{AuthToken: "s3cret", Executor: honestExec()})
	c := newCoordinator(t, Config{Workers: []string{url}, Shards: 1, Replicas: 1, AuthToken: "wrong"})
	_, _, err := c.Run([]byte(testRequest), 0, nil, nil)
	var ae *serveclient.APIError
	if !errors.As(err, &ae) || ae.Status != http.StatusUnauthorized {
		t.Fatalf("want 401, got %v", err)
	}
	resp, err := http.Get(url + "/v1/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unauthenticated healthz status %d", resp.StatusCode)
	}
	ok := newCoordinator(t, Config{Workers: []string{url}, Shards: 2, Replicas: 1, AuthToken: "s3cret"})
	if _, _, err := ok.Run([]byte(testRequest), 0, nil, nil); err != nil {
		t.Fatalf("authorized run: %v", err)
	}
}

// TestByteIdenticalAcrossGeometries is the tentpole invariant with the
// real shard executor: every shards x replicas combination merges to
// the exact bytes a single-process run produces.
func TestByteIdenticalAcrossGeometries(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles models and boots listeners")
	}
	request := []byte(serveclient.QuickstartRequest)
	p, err := serve.ParsePlan(request)
	if err != nil {
		t.Fatal(err)
	}
	ex := serve.NewShardExecutor(serve.ExecConfig{Workers: 2, CacheCap: 4})
	units, err := ex.ExecShard(p.ID(), request, 0, p.Units())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, err := p.Assemble(units)
	if err != nil {
		t.Fatal(err)
	}
	// Two workers sharing one executor: the compile cache is exercised
	// once, the HTTP path on every shard.
	urls := []string{
		startWorker(t, WorkerConfig{Executor: ex}),
		startWorker(t, WorkerConfig{Executor: ex}),
	}
	for _, shards := range []int{1, 4} {
		for _, replicas := range []int{1, 2, 3} {
			c := newCoordinator(t, Config{Workers: urls, Shards: shards, Replicas: replicas})
			doc, rep, err := RunRequest(c, request, nil, nil)
			if err != nil {
				t.Fatalf("shards=%d replicas=%d: %v", shards, replicas, err)
			}
			if !bytes.Equal(doc, want) {
				t.Fatalf("shards=%d replicas=%d: merged doc diverged (%d vs %d bytes)", shards, replicas, len(doc), len(want))
			}
			if len(rep.Divergences) != 0 {
				t.Fatalf("shards=%d replicas=%d: unexpected divergences %v", shards, replicas, rep.Divergences)
			}
		}
	}
}

// TestSIGKILLReplicaMidShardByteIdentical re-executes this test binary
// as a real besst-worker child armed with KillRate 1, so it SIGKILLs
// itself mid-shard the first time it executes a unit. The coordinator
// must lose it, reassign to the in-process survivors, and still merge
// the exact single-process bytes.
func TestSIGKILLReplicaMidShardByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("re-executes the test binary")
	}
	request := []byte(serveclient.QuickstartRequest)
	p, err := serve.ParsePlan(request)
	if err != nil {
		t.Fatal(err)
	}
	ex := serve.NewShardExecutor(serve.ExecConfig{Workers: 2, CacheCap: 4})
	units, err := ex.ExecShard(p.ID(), request, 0, p.Units())
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	want, err := p.Assemble(units)
	if err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=TestMain")
	cmd.Env = append(os.Environ(), childEnv+"=1")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child worker: %v", err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("child worker exited before announcing its address: %v", sc.Err())
	}
	childURL := "http://" + strings.TrimPrefix(strings.TrimSpace(sc.Text()), "listening on ")

	// Child at index 1: shard 0 replica 0's first pick, guaranteed to
	// be contacted while alive and die mid-shard.
	urls := []string{
		startWorker(t, WorkerConfig{Executor: ex}),
		childURL,
		startWorker(t, WorkerConfig{Executor: ex}),
	}
	col := &recCollector{}
	c := newCoordinator(t, Config{
		Workers:     urls,
		Shards:      2,
		Replicas:    2,
		BaseBackoff: 5 * time.Millisecond,
	})
	doc, rep, err := RunRequest(c, request, nil, col)
	if err != nil {
		t.Fatalf("run with SIGKILLed replica: %v", err)
	}
	if !bytes.Equal(doc, want) {
		t.Fatalf("merged doc diverged after worker SIGKILL (%d vs %d bytes)", len(doc), len(want))
	}
	if rep.WorkersLost == 0 || rep.Retries == 0 {
		t.Fatalf("the chaos child was never lost: %+v", rep)
	}
	if len(rep.Divergences) != 0 {
		t.Fatalf("unexpected divergences: %v", rep.Divergences)
	}
	// The child must actually be dead — killed by its own chaos
	// injector, not by our cleanup.
	if err := cmd.Wait(); err == nil {
		t.Fatal("chaos child exited cleanly; the SIGKILL never fired")
	}
}

// distWorkerChild is the re-executed child's entry point: a real
// worker whose chaos injector SIGKILLs the process at its first unit.
func distWorkerChild() int {
	ex := serve.NewShardExecutor(serve.ExecConfig{
		Workers:  1,
		CacheCap: 2,
		Chaos:    resilience.ChaosConfig{KillRate: 1, Seed: 42},
	})
	err := ListenAndServeWorker("127.0.0.1:0", WorkerConfig{Executor: ex}, func(addr string) {
		fmt.Printf("listening on %s\n", addr)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "child worker:", err)
		return 1
	}
	return 0
}

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		os.Exit(distWorkerChild())
	}
	os.Exit(m.Run())
}
