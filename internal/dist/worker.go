package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"besst/internal/dse"
	"besst/internal/serve"
)

// Executor executes one index range of a campaign. Structurally
// satisfied by *serve.ShardExecutor; the indirection keeps the worker
// handler testable with scripted executors (forged divergences,
// stalls).
type Executor interface {
	ExecShard(campaignID string, request []byte, lo, hi int) ([]json.RawMessage, error)
}

// WorkerConfig parameterizes a worker's HTTP surface.
type WorkerConfig struct {
	// AuthToken, when non-empty, requires "Authorization: Bearer
	// <token>" on every endpoint except GET /v1/healthz.
	AuthToken string
	// Executor runs the shards. Required.
	Executor Executor
}

// WorkerHandler is the worker process's HTTP surface:
//
//	POST /v1/shards      execute a ShardRequest, answer a ShardResult
//	GET  /v1/healthz     liveness (the coordinator's heartbeat target)
//	GET  /v1/statz       compile-cache counters, when the executor has them
//
// Bad requests answer 400 (the coordinator will not retry them);
// execution failures answer 500 (it will, on a survivor).
func WorkerHandler(cfg WorkerConfig) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/shards", func(w http.ResponseWriter, r *http.Request) {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
			return
		}
		var req ShardRequest
		if err := json.Unmarshal(body, &req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("decode shard request: %v", err))
			return
		}
		if req.SchemaVersion != ShardSchemaVersion {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("shard schema_version %d, want %d", req.SchemaVersion, ShardSchemaVersion))
			return
		}
		payloads, err := cfg.Executor.ExecShard(req.CampaignID, req.Request, req.Lo, req.Hi)
		if err != nil {
			status := http.StatusInternalServerError
			if serve.IsBadRequest(err) {
				status = http.StatusBadRequest
			}
			writeError(w, status, err.Error())
			return
		}
		writeDoc(w, http.StatusOK, ShardResult{
			SchemaVersion: ShardSchemaVersion,
			CampaignID:    req.CampaignID,
			Lo:            req.Lo,
			Hi:            req.Hi,
			Payloads:      payloads,
		})
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeDoc(w, http.StatusOK, serve.Healthz{Status: "ok"})
	})
	mux.HandleFunc("GET /v1/statz", func(w http.ResponseWriter, r *http.Request) {
		type statzer interface{ Statz() serve.CacheStats }
		type memoStatzer interface{ MemoStatz() dse.MemoStats }
		doc := struct {
			Cache     serve.CacheStats `json:"cache"`
			PointMemo dse.MemoStats    `json:"point_memo"`
		}{}
		if sz, ok := cfg.Executor.(statzer); ok {
			doc.Cache = sz.Statz()
		}
		if mz, ok := cfg.Executor.(memoStatzer); ok {
			doc.PointMemo = mz.MemoStatz()
		}
		writeDoc(w, http.StatusOK, doc)
	})
	return serve.WithAuth(cfg.AuthToken, mux)
}

// writeDoc writes one JSON response document. Deliberately compact:
// indentation would reformat the embedded json.RawMessage payloads,
// and payload bytes must cross the wire exactly as the executor
// produced them — they are the unit of replica comparison.
func writeDoc(w http.ResponseWriter, status int, doc any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(doc)
}

// writeError writes the uniform error document.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeDoc(w, status, struct {
		Error string `json:"error"`
	}{Error: msg})
}

// ListenAndServeWorker runs a worker until SIGINT/SIGTERM. ready, when
// non-nil, is called with the bound address once the listener is up —
// cmd/besst-worker prints it so harnesses binding ":0" can learn the
// port. Lives here rather than in the cmd so the signal goroutine
// stays inside a concurrency-scoped package.
func ListenAndServeWorker(addr string, cfg WorkerConfig, ready func(addr string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("dist: listen %s: %w", addr, err)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}
	httpSrv := &http.Server{Handler: WorkerHandler(cfg)}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	stopped := make(chan struct{})
	go func() { // exits via sigc or the stopped-close below
		select {
		case <-sigc:
			_ = httpSrv.Close()
		case <-stopped:
		}
	}()

	err = httpSrv.Serve(ln)
	close(stopped)
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}
