// Package dse implements the design-space-exploration layer of the
// Co-Design phase: sweeping (problem size, rank count, fault-tolerance
// level) grids through the BE-SST simulator, producing the overhead
// tables of Fig 9, ranking fault-tolerance configurations, and
// producing the pruning report — which regions of the design space the
// models cover cheaply, which should be re-run on hardware, and which
// deserve a fine-grained simulator (the Figs 5A/5D/6D discussion).
package dse

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"besst/internal/benchdata"
	"besst/internal/beo"
	"besst/internal/besst"
	"besst/internal/fti"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/par"
	"besst/internal/perfmodel"
	"besst/internal/stats"
	"besst/internal/workflow"
)

// Cell is one evaluated design point.
type Cell struct {
	EPR      int
	Ranks    int
	Scenario string
	// MeanSec is the Monte Carlo mean predicted runtime.
	MeanSec float64
	// OverheadPct is MeanSec as a percentage of the per-epr baseline
	// (the no-FT run at the smallest rank count), the Fig 9
	// normalization.
	OverheadPct float64
	// Predicted marks a cell whose MeanSec is a surrogate prediction
	// rather than a full simulation — only the surrogate-guided search
	// (Search) emits these; exhaustive sweeps never set it, so their
	// marshaled documents are unchanged.
	Predicted bool `json:",omitempty"`
}

// SweepConfig parameterizes an overhead sweep.
type SweepConfig struct {
	EPRs      []int
	Ranks     []int // ascending; Ranks[0] anchors the baseline
	Scenarios []lulesh.Scenario
	Timesteps int
	MCRuns    int
	Seed      uint64
	// Workers bounds how many grid cells are evaluated concurrently;
	// values <= 0 select runtime.GOMAXPROCS. Results are identical for
	// every worker count: each design point's Monte Carlo seed is
	// pre-assigned from the master seed before evaluation starts.
	Workers int
	// Collector, when non-nil, receives PointStart/PointDone brackets
	// around each design point's evaluation (in enumeration order:
	// per-EPR baselines first, then the grid). It must be safe for
	// concurrent use when Workers != 1. Never influences results.
	Collector Collector
}

// Collector receives sweep timing callbacks. The interface is typed
// with builtins only, so the observability layer (internal/obs)
// implements it structurally without this package importing it.
type Collector interface {
	PointStart(i int)
	PointDone(i int)
}

// ConfigError reports an unusable sweep configuration, mirroring
// besst.ConfigError so services and CLIs classify both the same way.
type ConfigError struct {
	// Field names the offending dimension; Reason says what is wrong.
	Field, Reason string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("dse: invalid %s: %s", e.Field, e.Reason)
}

// Validate returns a *ConfigError for an unusable sweep. It is the one
// validation path shared by the CLIs (through PrepareSweep) and the
// besst-serve request schema, symmetric with besst.RunConfig.Validate.
func (c SweepConfig) Validate() error {
	if len(c.EPRs) == 0 {
		return &ConfigError{Field: "eprs", Reason: "empty sweep dimension"}
	}
	if len(c.Ranks) == 0 {
		return &ConfigError{Field: "ranks", Reason: "empty sweep dimension"}
	}
	if len(c.Scenarios) == 0 {
		return &ConfigError{Field: "scenarios", Reason: "empty sweep dimension"}
	}
	if c.Timesteps <= 0 {
		return &ConfigError{Field: "timesteps", Reason: fmt.Sprintf("non-positive timesteps %d", c.Timesteps)}
	}
	if c.MCRuns <= 0 {
		return &ConfigError{Field: "mc_runs", Reason: fmt.Sprintf("non-positive MC runs %d", c.MCRuns)}
	}
	for i := 1; i < len(c.Ranks); i++ {
		if c.Ranks[i] <= c.Ranks[i-1] {
			return &ConfigError{Field: "ranks", Reason: "ranks must be strictly ascending (the first anchors the baseline)"}
		}
	}
	// Duplicate EPRs or scenario names would collapse into one design
	// point in the grid, yet Cells would emit duplicate output cells —
	// silently double-weighting that column in downstream rankings.
	// Quadratic scans keep Validate allocation-free (it sits on the
	// OverheadSweep hot path via NewGrid) and the dimensions are tiny.
	for i, epr := range c.EPRs {
		for _, prev := range c.EPRs[:i] {
			if prev == epr {
				return &ConfigError{Field: "eprs", Reason: fmt.Sprintf("duplicate value %d", epr)}
			}
		}
	}
	for i, sc := range c.Scenarios {
		for _, prev := range c.Scenarios[:i] {
			if prev.Name == sc.Name {
				return &ConfigError{Field: "scenarios", Reason: fmt.Sprintf("duplicate scenario %q", sc.Name)}
			}
		}
	}
	if c.Workers > besst.MaxWorkers {
		return &ConfigError{Field: "workers", Reason: fmt.Sprintf("%d workers exceeds the %d sanity bound", c.Workers, besst.MaxWorkers)}
	}
	return nil
}

// sweepPoint is one distinct design point of a sweep: a baseline, a
// grid cell, or both (the no-FT cell at the smallest rank count is
// memoized — evaluated once and shared with the baseline map).
type sweepPoint struct {
	epr, ranks int
	sc         lulesh.Scenario
	seed       uint64
}

// pointKey identifies a distinct design point in a sweep's index.
type pointKey struct {
	epr, ranks int
	sc         string
}

// Grid is the models-free half of a sweep: the distinct design points
// enumerated (per-EPR no-FT baselines first, then the grid in
// (scenario, ranks, epr) order), one Monte Carlo seed pre-drawn per
// point, and the Cells normalization that folds per-point means back
// into Fig 9 overhead cells. Everything here is a pure function of the
// SweepConfig — no model development, no machine state — so a
// distributed coordinator can enumerate the identical point space,
// shard it by index, and assemble cells from worker-computed means
// without ever building the models itself.
type Grid struct {
	cfg     SweepConfig
	points  []sweepPoint
	index   map[pointKey]int
	baseIdx []int // per-EPR baseline point indices
}

// NewGrid validates the config and enumerates its seeded design
// points. Like PrepareSweep it panics on an invalid config: callers
// are expected to have run Validate at their trust boundary.
func NewGrid(cfg SweepConfig) *Grid {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	g := &Grid{cfg: cfg, index: map[pointKey]int{}}
	add := func(epr, ranks int, sc lulesh.Scenario) int {
		k := pointKey{epr, ranks, sc.Name}
		if i, ok := g.index[k]; ok {
			return i
		}
		g.index[k] = len(g.points)
		g.points = append(g.points, sweepPoint{epr: epr, ranks: ranks, sc: sc})
		return len(g.points) - 1
	}
	g.baseIdx = make([]int, len(cfg.EPRs))
	for i, epr := range cfg.EPRs {
		g.baseIdx[i] = add(epr, cfg.Ranks[0], lulesh.ScenarioNoFT)
	}
	for _, sc := range cfg.Scenarios {
		for _, ranks := range cfg.Ranks {
			for _, epr := range cfg.EPRs {
				add(epr, ranks, sc)
			}
		}
	}

	// Seed fan-out: one pre-drawn seed per point, in enumeration order.
	seeds := par.SeedFan(cfg.Seed, len(g.points))
	for i := range g.points {
		g.points[i].seed = seeds[i]
	}
	return g
}

// PreparedSweep is an overhead sweep with its design points enumerated,
// seeded, and model state warmed, but not yet evaluated. It decomposes
// OverheadSweep into independently callable pieces — NumPoints,
// EvalPoint, Cells — so a checkpointing campaign runner
// (internal/resilience) can evaluate points in any order, persist each
// one as it completes, and re-run only the missing indices after a
// crash while producing cells byte-identical to an uninterrupted
// sweep: every point's Monte Carlo seed is pre-drawn in enumeration
// order before any evaluation starts.
type PreparedSweep struct {
	*Grid
	ftiCfg       fti.Config
	models       *workflow.Models
	m            *machine.Machine
	ranksPerNode int

	// memo, when attached, short-circuits EvalPoint for design points
	// some earlier campaign already simulated under the same bundle.
	memo   *Memo
	bundle string
}

// AttachMemo routes every EvalPoint through the cross-campaign point
// memo. bundle must canonically identify everything the memo key does
// not already carry — which models (machine, app, method, samples,
// model seed) the sweep evaluates against — so hits can never cross
// model boundaries. Attach before evaluation starts; the sweep's
// results are byte-identical with or without a memo, warm or cold.
func (s *PreparedSweep) AttachMemo(m *Memo, bundle string) {
	s.memo = m
	s.bundle = bundle
}

// PrepareSweep builds the sweep's Grid and warms the lazy model state
// so concurrent EvalPoint calls only perform pure reads on the shared
// models.
func PrepareSweep(models *workflow.Models, m *machine.Machine, ranksPerNode int, cfg SweepConfig) *PreparedSweep {
	s := &PreparedSweep{
		Grid:         NewGrid(cfg),
		ftiCfg:       fti.Config{GroupSize: 4, NodeSize: ranksPerNode},
		models:       models,
		m:            m,
		ranksPerNode: ranksPerNode,
	}

	// Force lazy model state to materialize before sharing the models
	// across workers.
	models.Warm(perfmodel.Params{
		"epr": float64(cfg.EPRs[0]), "ranks": float64(cfg.Ranks[0]),
	})
	return s
}

// NumPoints returns the number of distinct design points to evaluate.
func (g *Grid) NumPoints() int { return len(g.points) }

// PointLabel describes point i (for logs and campaign provenance).
func (g *Grid) PointLabel(i int) string {
	p := &g.points[i]
	return fmt.Sprintf("%s/epr=%d/ranks=%d", p.sc.Name, p.epr, p.ranks)
}

// PointIndex returns the enumeration index of the (epr, ranks,
// scenario-name) design point, or false when the sweep does not contain
// it.
func (g *Grid) PointIndex(epr, ranks int, scenario string) (int, bool) {
	i, ok := g.index[pointKey{epr, ranks, scenario}]
	return i, ok
}

// EvalPoint evaluates design point i — cfg.MCRuns Monte Carlo
// replications under the point's pre-drawn seed — and returns the mean
// makespan. It is a pure function of i, safe for concurrent use, and
// brackets the configured Collector. Each point's replications run
// serially (point-level parallelism already saturates the pool).
func (s *PreparedSweep) EvalPoint(i int) float64 {
	cfg := s.cfg
	if cfg.Collector != nil {
		cfg.Collector.PointStart(i)
	}
	p := &s.points[i]
	var key string
	if s.memo != nil {
		key = PointHash(s.bundle, p.epr, p.ranks, p.sc.Name, cfg.Timesteps, cfg.MCRuns, p.seed)
		if mean, ok := s.memo.Lookup(key); ok {
			if cfg.Collector != nil {
				cfg.Collector.PointDone(i)
			}
			return mean
		}
	}
	app := lulesh.App(p.epr, p.ranks, cfg.Timesteps, p.sc, s.ftiCfg)
	arch := beo.NewArchBEO(s.m, s.ranksPerNode)
	workflow.BindLulesh(arch, s.models)
	runs := besst.Replicate(app, arch, cfg.MCRuns,
		besst.WithMode(besst.Direct),
		besst.WithPerRankNoise(true),
		besst.WithSeed(p.seed),
		besst.WithConcurrency(1))
	mean := stats.Mean(besst.Makespans(runs))
	if s.memo != nil {
		s.memo.Store(key, mean)
	}
	if cfg.Collector != nil {
		cfg.Collector.PointDone(i)
	}
	return mean
}

// Cells assembles the Fig 9-style normalized overhead cells from the
// per-point means (means[i] = EvalPoint(i)). A non-positive baseline
// mean — possible only when a baseline point failed in a
// fault-isolated campaign — yields OverheadPct 0 for its column
// instead of dividing by zero.
func (g *Grid) Cells(means []float64) []Cell {
	if len(means) != len(g.points) {
		panic(fmt.Sprintf("dse: %d means for %d sweep points", len(means), len(g.points)))
	}
	base := map[int]float64{}
	for i, epr := range g.cfg.EPRs {
		base[epr] = means[g.baseIdx[i]]
	}
	var out []Cell
	for _, sc := range g.cfg.Scenarios {
		for _, ranks := range g.cfg.Ranks {
			for _, epr := range g.cfg.EPRs {
				mean := means[g.index[pointKey{epr, ranks, sc.Name}]]
				// Grouped so memoized baseline cells divide their own
				// mean exactly (x/x == 1) and report precisely 100%.
				pct := 0.0
				if base[epr] > 0 {
					pct = 100 * (mean / base[epr])
				}
				out = append(out, Cell{
					EPR: epr, Ranks: ranks, Scenario: sc.Name,
					MeanSec:     mean,
					OverheadPct: pct,
				})
			}
		}
	}
	return out
}

// OverheadSweep evaluates every grid point with the developed models
// and returns cells with Fig 9-style normalized overheads.
//
// The grid is pre-enumerated — per-EPR no-FT baselines first, then the
// remaining cells in (scenario, ranks, epr) order — with Monte Carlo
// seeds assigned from the master RNG in enumeration order before any
// evaluation starts. Cells are then evaluated concurrently over
// cfg.Workers workers; because seeds never depend on completion order,
// the output is byte-identical for every worker count. The per-EPR
// no-FT baseline points are memoized: each is simulated once and
// shared between the baseline normalizer and its own grid cell (so
// baseline cells report exactly 100%).
func OverheadSweep(models *workflow.Models, m *machine.Machine, ranksPerNode int, cfg SweepConfig) []Cell {
	s := PrepareSweep(models, m, ranksPerNode, cfg)
	means := make([]float64, s.NumPoints())
	par.ForEach(cfg.Workers, len(means), func(i int) {
		means[i] = s.EvalPoint(i)
	})
	return s.Cells(means)
}

// FormatOverheadTable renders the cells for one rank count as a Fig 9
// style table: rows are scenarios, columns problem sizes.
func FormatOverheadTable(cells []Cell, ranks int) string {
	eprSet := map[int]bool{}
	scenarios := []string{}
	seenSc := map[string]bool{}
	for _, c := range cells {
		if c.Ranks != ranks {
			continue
		}
		eprSet[c.EPR] = true
		if !seenSc[c.Scenario] {
			seenSc[c.Scenario] = true
			scenarios = append(scenarios, c.Scenario)
		}
	}
	eprs := make([]int, 0, len(eprSet))
	for e := range eprSet {
		eprs = append(eprs, e)
	}
	sort.Ints(eprs)

	var b strings.Builder
	fmt.Fprintf(&b, "%d Ranks   ", ranks)
	for _, e := range eprs {
		fmt.Fprintf(&b, "%8d", e)
	}
	b.WriteByte('\n')
	for _, sc := range scenarios {
		fmt.Fprintf(&b, "%-10s", sc)
		for _, e := range eprs {
			for _, c := range cells {
				if c.Ranks == ranks && c.EPR == e && c.Scenario == sc {
					fmt.Fprintf(&b, "%7.0f%%", c.OverheadPct)
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Divergence flags one grid point of the model-validation comparison.
type Divergence struct {
	Op           string
	EPR, Ranks   int
	MeasuredSec  float64 // mean of benchmark samples
	PredictedSec float64
	PercentError float64 // signed
	Flagged      bool    // |error| beyond the pruning threshold
	// Advice classifies the flagged point per the paper's discussion:
	// cheap outliers are re-run on hardware, expensive ones go to a
	// fine-grained simulator.
	Advice string
}

// PruneReport compares each benchmarked (op, epr, ranks) combination's
// mean measurement against the model prediction and flags divergent
// regions. threshold is the flagging level in percent.
func PruneReport(models *workflow.Models, campaign *benchdata.Campaign, threshold float64) []Divergence {
	if threshold <= 0 {
		panic("dse: non-positive threshold")
	}
	type key struct {
		op         string
		epr, ranks int
	}
	sums := map[key][]float64{}
	for _, s := range campaign.Samples {
		k := key{s.Op, int(s.Params.Get("epr")), int(s.Params.Get("ranks"))}
		sums[k] = append(sums[k], s.Seconds)
	}
	keys := make([]key, 0, len(sums))
	for k := range sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.op != b.op {
			return a.op < b.op
		}
		if a.epr != b.epr {
			return a.epr < b.epr
		}
		return a.ranks < b.ranks
	})

	// Cost median across points (per op) splits "cheap" from
	// "expensive" advice.
	medByOp := map[string]float64{}
	for _, op := range campaign.Ops() {
		var means []float64
		for k, v := range sums {
			if k.op == op {
				means = append(means, stats.Mean(v))
			}
		}
		medByOp[op] = stats.Percentile(means, 50)
	}

	// Keep only keys with a bound model, preserving sort order, then
	// evaluate the model predictions concurrently. Each slot of `out` is
	// written by exactly one worker, and after Warm the models are pure
	// reads, so the fan-out is deterministic and race-free.
	modeled := keys[:0]
	for _, k := range keys {
		if _, ok := models.ByOp[k.op]; ok {
			modeled = append(modeled, k)
		}
	}
	if len(modeled) == 0 {
		return nil
	}
	models.Warm(perfmodel.Params{
		"epr": float64(modeled[0].epr), "ranks": float64(modeled[0].ranks),
	})
	out := make([]Divergence, len(modeled))
	par.ForEach(0, len(modeled), func(i int) {
		k := modeled[i]
		meas := stats.Mean(sums[k])
		pred := models.ByOp[k.op].Predict(perfmodel.Params{"epr": float64(k.epr), "ranks": float64(k.ranks)})
		pe := stats.PercentError(meas, pred)
		d := Divergence{
			Op: k.op, EPR: k.epr, Ranks: k.ranks,
			MeasuredSec: meas, PredictedSec: pred, PercentError: pe,
		}
		if math.Abs(pe) > threshold {
			d.Flagged = true
			if meas < medByOp[k.op] {
				d.Advice = "low-cost region: benchmark directly on the machine"
			} else {
				d.Advice = "high-cost region: study with a fine-grained simulator"
			}
		}
		out[i] = d
	})
	return out
}

// RankFTLevels orders the scenario names of a sweep by total predicted
// runtime at the given design point — the "compare FT levels" DSE
// output.
func RankFTLevels(cells []Cell, epr, ranks int) []Cell {
	var at []Cell
	for _, c := range cells {
		if c.EPR == epr && c.Ranks == ranks {
			at = append(at, c)
		}
	}
	sort.Slice(at, func(i, j int) bool { return at[i].MeanSec < at[j].MeanSec })
	return at
}
