package dse

import (
	"encoding/json"
	"errors"
	"testing"

	"besst/internal/lulesh"
)

// searchSweepCfg is a grid small enough that the exhaustive truth is
// cheap but large enough (24 points) that a 40% budget genuinely skips
// points.
func searchSweepCfg(workers int) SweepConfig {
	return SweepConfig{
		EPRs:      []int{5, 10, 15, 20},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: 20,
		MCRuns:    2,
		Seed:      11,
		Workers:   workers,
	}
}

func TestSearchConfigValidate(t *testing.T) {
	cases := []struct {
		cfg   SearchConfig
		field string
	}{
		{SearchConfig{Budget: 0}, "search.budget"},
		{SearchConfig{Budget: 1.5}, "search.budget"},
		{SearchConfig{Budget: 0.5, RoundSize: -1}, "search.round_size"},
		{SearchConfig{Budget: 0.5, Explore: -0.1}, "search.explore"},
		{SearchConfig{Budget: 0.5, Patience: -2}, "search.patience"},
	}
	for i, tc := range cases {
		err := tc.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("case %d: error %v, want *ConfigError", i, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("case %d: field %q, want %q", i, ce.Field, tc.field)
		}
	}
	if err := (SearchConfig{Budget: 0.4}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestSearchFindsOptimumAtBudget is the headline acceptance check: at
// a 40% budget on the default-seeded small grid, the search's best
// design point is the exhaustive sweep's true optimum — optimality gap
// exactly zero.
func TestSearchFindsOptimumAtBudget(t *testing.T) {
	models, em := devModels(t)
	cfg := searchSweepCfg(2)

	truth := PrepareSweep(models, em.M, 2, cfg)
	trueBest, trueIdx := 0.0, -1
	for i := 0; i < truth.NumPoints(); i++ {
		mean := truth.EvalPoint(i)
		if trueIdx < 0 || mean < trueBest {
			trueBest, trueIdx = mean, i
		}
	}

	searched := PrepareSweep(models, em.M, 2, cfg)
	res, err := searched.Search(SearchConfig{Budget: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if res.FullSims >= truth.NumPoints() {
		t.Fatalf("search simulated the whole grid (%d of %d)", res.FullSims, truth.NumPoints())
	}
	bi, ok := truth.PointIndex(res.Best.EPR, res.Best.Ranks, res.Best.Scenario)
	if !ok {
		t.Fatalf("best cell %+v is not a grid point", res.Best)
	}
	if bi != trueIdx {
		t.Fatalf("search best %s (%.6gs), true best %s (%.6gs): optimality gap is not zero",
			truth.PointLabel(bi), res.Best.MeanSec, truth.PointLabel(trueIdx), trueBest)
	}
}

// TestSearchWorkerCountInvariant pins the determinism contract: the
// full search result — cells, evaluated set, rounds, best — is
// byte-identical at every worker count.
func TestSearchWorkerCountInvariant(t *testing.T) {
	models, em := devModels(t)
	var docs [][]byte
	for _, workers := range []int{1, 8} {
		prepared := PrepareSweep(models, em.M, 2, searchSweepCfg(workers))
		res, err := prepared.Search(SearchConfig{Budget: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		doc, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		docs = append(docs, doc)
	}
	if string(docs[0]) != string(docs[1]) {
		t.Fatalf("search results differ between 1 and 8 workers:\n%s\n%s", docs[0], docs[1])
	}
}

// TestSearchMemoWarmIdentity pins the memo contract: a warm re-search
// through a populated memo reproduces the cold result bytes exactly
// (hits return the exact floats) and performs no new simulations.
func TestSearchMemoWarmIdentity(t *testing.T) {
	models, em := devModels(t)
	memo := NewMemo(0)

	cold := PrepareSweep(models, em.M, 2, searchSweepCfg(2))
	cold.AttachMemo(memo, "test-bundle")
	coldRes, err := cold.Search(SearchConfig{Budget: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	coldStats := memo.Stats()
	if coldStats.Misses == 0 {
		t.Fatal("cold search recorded no memo misses")
	}

	warm := PrepareSweep(models, em.M, 2, searchSweepCfg(2))
	warm.AttachMemo(memo, "test-bundle")
	warmRes, err := warm.Search(SearchConfig{Budget: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	warmStats := memo.Stats()
	if warmStats.Hits <= coldStats.Hits {
		t.Fatalf("warm search did not hit the memo (hits %d -> %d)", coldStats.Hits, warmStats.Hits)
	}
	if warmStats.Misses != coldStats.Misses {
		t.Fatalf("warm search missed the memo %d times", warmStats.Misses-coldStats.Misses)
	}

	coldDoc, _ := json.Marshal(coldRes)
	warmDoc, _ := json.Marshal(warmRes)
	if string(coldDoc) != string(warmDoc) {
		t.Fatalf("warm result differs from cold:\n%s\n%s", coldDoc, warmDoc)
	}
}

// TestSearchBundleIsolation proves hits cannot cross model boundaries:
// a different bundle string shares nothing.
func TestSearchBundleIsolation(t *testing.T) {
	models, em := devModels(t)
	memo := NewMemo(0)

	a := PrepareSweep(models, em.M, 2, searchSweepCfg(2))
	a.AttachMemo(memo, "bundle-a")
	if _, err := a.Search(SearchConfig{Budget: 0.4}); err != nil {
		t.Fatal(err)
	}
	aStats := memo.Stats()

	b := PrepareSweep(models, em.M, 2, searchSweepCfg(2))
	b.AttachMemo(memo, "bundle-b")
	if _, err := b.Search(SearchConfig{Budget: 0.4}); err != nil {
		t.Fatal(err)
	}
	bStats := memo.Stats()
	if bStats.Hits != aStats.Hits {
		t.Fatalf("bundle-b search hit bundle-a entries (%d new hits)", bStats.Hits-aStats.Hits)
	}
}

// TestSearchMarksPredictedCells pins the provenance flag: cells the
// search never simulated carry Predicted=true, evaluated ones don't,
// and exhaustive sweeps mark nothing.
func TestSearchMarksPredictedCells(t *testing.T) {
	models, em := devModels(t)
	cfg := searchSweepCfg(2)
	prepared := PrepareSweep(models, em.M, 2, cfg)
	res, err := prepared.Search(SearchConfig{Budget: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	evaluated := map[int]bool{}
	for _, i := range res.Evaluated {
		evaluated[i] = true
	}
	predicted := 0
	for _, c := range res.Cells {
		i, ok := prepared.PointIndex(c.EPR, c.Ranks, c.Scenario)
		if !ok {
			t.Fatalf("cell %+v is not a grid point", c)
		}
		if c.Predicted == evaluated[i] {
			t.Fatalf("cell %s/%d/%d: Predicted=%v but evaluated=%v", c.Scenario, c.EPR, c.Ranks, c.Predicted, evaluated[i])
		}
		if c.Predicted {
			predicted++
		}
	}
	if predicted == 0 {
		t.Fatal("a 40% budget search predicted no cells")
	}
	for _, c := range OverheadSweep(models, em.M, 2, cfg) {
		if c.Predicted {
			t.Fatalf("exhaustive sweep marked cell %+v predicted", c)
		}
	}
}

// TestSearchCancel proves the drain path: a pre-closed cancel channel
// stops the refinement loop with ErrSearchCanceled.
func TestSearchCancel(t *testing.T) {
	models, em := devModels(t)
	prepared := PrepareSweep(models, em.M, 2, searchSweepCfg(2))
	cancel := make(chan struct{})
	close(cancel)
	if _, err := prepared.Search(SearchConfig{Budget: 0.4, Cancel: cancel}); !errors.Is(err, ErrSearchCanceled) {
		t.Fatalf("err = %v, want ErrSearchCanceled", err)
	}
}

// TestSearchBadBudget rejects invalid configs up front.
func TestSearchBadBudget(t *testing.T) {
	models, em := devModels(t)
	prepared := PrepareSweep(models, em.M, 2, searchSweepCfg(1))
	if _, err := prepared.Search(SearchConfig{Budget: 2}); err == nil {
		t.Fatal("budget 2 accepted")
	}
}
