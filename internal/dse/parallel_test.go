package dse

import (
	"reflect"
	"testing"

	"besst/internal/machine"
)

// TestOverheadSweepWorkerCountInvariant is the DSE equivalence gate:
// because every design point's Monte Carlo seed is pre-assigned before
// evaluation starts, the sweep must return byte-identical cells at
// every worker count. Run under -race it also proves the shared models
// are touched read-only after warming.
func TestOverheadSweepWorkerCountInvariant(t *testing.T) {
	models, _ := devModels(t)
	cfg := sweepCfg()

	cfg.Workers = 1
	serial := OverheadSweep(models, machine.Quartz(), 2, cfg)
	for _, workers := range []int{8, 0} { // 0 = GOMAXPROCS default
		cfg.Workers = workers
		got := OverheadSweep(models, machine.Quartz(), 2, cfg)
		if !reflect.DeepEqual(serial, got) {
			t.Fatalf("workers=%d sweep differs from serial sweep", workers)
		}
	}
}

// TestOverheadSweepBaselineMemoized: the per-EPR no-FT baseline point
// is evaluated once and shared with its own grid cell, so baseline
// cells normalize to exactly 100%.
func TestOverheadSweepBaselineMemoized(t *testing.T) {
	models, _ := devModels(t)
	cfg := sweepCfg()
	cells := OverheadSweep(models, machine.Quartz(), 2, cfg)
	found := 0
	for _, c := range cells {
		if c.Scenario == "No FT" && c.Ranks == cfg.Ranks[0] {
			found++
			if c.OverheadPct != 100 {
				t.Fatalf("baseline cell epr=%d overhead %v%%, want exactly 100%%", c.EPR, c.OverheadPct)
			}
		}
	}
	if found != len(cfg.EPRs) {
		t.Fatalf("found %d baseline cells, want %d", found, len(cfg.EPRs))
	}
}

// TestPruneReportDeterministic: the internally parallel prune report
// must be stable run to run (pure model reads, ordered output slots).
func TestPruneReportDeterministic(t *testing.T) {
	models, campaign := devSymregModels(t)
	a := PruneReport(models, campaign, 5)
	b := PruneReport(models, campaign, 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PruneReport not deterministic across runs")
	}
	if len(a) == 0 {
		t.Fatal("empty prune report")
	}
}
