package dse

import "besst/internal/lulesh"

// SweepOption mutates a SweepConfig, mirroring besst.Option so the two
// campaign configurations are constructed and validated the same way
// everywhere — CLI flag plumbing and besst-serve requests alike.
type SweepOption func(*SweepConfig)

// WithEPRs sets the problem-size dimension of the grid.
func WithEPRs(eprs ...int) SweepOption {
	return func(c *SweepConfig) { c.EPRs = eprs }
}

// WithRanks sets the rank-count dimension (ascending; the first anchors
// the per-EPR overhead baseline).
func WithRanks(ranks ...int) SweepOption {
	return func(c *SweepConfig) { c.Ranks = ranks }
}

// WithScenarios sets the fault-tolerance scenarios to sweep.
func WithScenarios(scs ...lulesh.Scenario) SweepOption {
	return func(c *SweepConfig) { c.Scenarios = scs }
}

// WithTimesteps sets the timesteps per simulated run.
func WithTimesteps(n int) SweepOption {
	return func(c *SweepConfig) { c.Timesteps = n }
}

// WithMCRuns sets the Monte Carlo replications per design point.
func WithMCRuns(n int) SweepOption {
	return func(c *SweepConfig) { c.MCRuns = n }
}

// WithSeed sets the master seed; per-point seeds are pre-drawn from it
// in enumeration order.
func WithSeed(seed uint64) SweepOption {
	return func(c *SweepConfig) { c.Seed = seed }
}

// WithConcurrency bounds how many grid cells are evaluated at once
// (<= 0: GOMAXPROCS). Results are identical for every worker count.
func WithConcurrency(n int) SweepOption {
	return func(c *SweepConfig) { c.Workers = n }
}

// WithCollector attaches a sweep-timing collector (nil detaches).
func WithCollector(col Collector) SweepOption {
	return func(c *SweepConfig) { c.Collector = col }
}

// NewSweepConfig applies opts to a zero SweepConfig. Call Validate (or
// PrepareSweep, which validates) before evaluating.
func NewSweepConfig(opts ...SweepOption) SweepConfig {
	var cfg SweepConfig
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}
