package dse

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPointHashDistinguishesEveryField(t *testing.T) {
	base := PointHash("b", 5, 8, "l1", 10, 2, 7)
	variants := []string{
		PointHash("b2", 5, 8, "l1", 10, 2, 7),
		PointHash("b", 6, 8, "l1", 10, 2, 7),
		PointHash("b", 5, 9, "l1", 10, 2, 7),
		PointHash("b", 5, 8, "l2", 10, 2, 7),
		PointHash("b", 5, 8, "l1", 11, 2, 7),
		PointHash("b", 5, 8, "l1", 10, 3, 7),
		PointHash("b", 5, 8, "l1", 10, 2, 8),
	}
	seen := map[string]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides", i)
		}
		seen[v] = true
	}
	if PointHash("b", 5, 8, "l1", 10, 2, 7) != base {
		t.Fatal("PointHash is not deterministic")
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := NewMemo(3)
	for i := 0; i < 3; i++ {
		m.Store(fmt.Sprintf("k%d", i), float64(i))
	}
	// Touch k0 so k1 is the least recently used.
	if _, ok := m.Lookup("k0"); !ok {
		t.Fatal("k0 missing")
	}
	m.Store("k3", 3)
	if _, ok := m.Lookup("k1"); ok {
		t.Fatal("k1 survived eviction despite being LRU")
	}
	if _, ok := m.Lookup("k0"); !ok {
		t.Fatal("recently used k0 was evicted")
	}
	st := m.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 3 entries, 1 eviction", st)
	}
}

func TestMemoStoreIsIdempotent(t *testing.T) {
	m := NewMemo(2)
	m.Store("k", 1.5)
	m.Store("k", 1.5)
	st := m.Stats()
	if st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want 1 entry, 0 evictions", st)
	}
	if v, ok := m.Lookup("k"); !ok || v < 1.5 || v > 1.5 {
		t.Fatalf("Lookup = %v, %v", v, ok)
	}
}

func TestMemoJournalRestore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.jsonl")
	m, err := NewMemoJournal(0, path)
	if err != nil {
		t.Fatal(err)
	}
	m.Store("a", 0.1)
	m.Store("b", 0.25)
	m.Store("a", 0.1) // refresh only: must not re-journal
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	again, err := NewMemoJournal(0, path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = again.Close() }()
	st := again.Stats()
	if st.Entries != 2 || st.Journaled != 2 {
		t.Fatalf("restored stats = %+v, want 2 entries from 2 journal lines", st)
	}
	if v, ok := again.Lookup("b"); !ok || v < 0.25 || v > 0.25 {
		t.Fatalf("restored b = %v, %v", v, ok)
	}
}

// TestMemoJournalTornTail proves a crash mid-append cannot poison the
// cache: the torn final line is skipped, everything before it loads.
func TestMemoJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.jsonl")
	m, err := NewMemoJournal(0, path)
	if err != nil {
		t.Fatal(err)
	}
	m.Store("a", 0.1)
	m.Store("b", 0.25)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(data, []byte(`{"key":"c","me`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	again, err := NewMemoJournal(0, path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = again.Close() }()
	if st := again.Stats(); st.Entries != 2 {
		t.Fatalf("restored %d entries from a torn journal, want 2", st.Entries)
	}
	if _, ok := again.Lookup("c"); ok {
		t.Fatal("torn line restored as an entry")
	}
}

// TestMemoJournalFirstSeenWins pins replay semantics: a key journaled
// twice (two processes sharing a journal) restores its first value —
// means are pure functions of the key, so any duplicate is identical
// in a healthy journal, and deterministic restore must not depend on
// which process appended last.
func TestMemoJournalFirstSeenWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "memo.jsonl")
	lines := strings.Join([]string{
		`{"key":"a","mean":0.5}`,
		`{"key":"a","mean":0.75}`,
	}, "\n") + "\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewMemoJournal(0, path)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = m.Close() }()
	if v, ok := m.Lookup("a"); !ok || v < 0.5 || v > 0.5 {
		t.Fatalf("restored a = %v, %v, want first-seen 0.5", v, ok)
	}
}

func TestMemoStatsCounters(t *testing.T) {
	m := NewMemo(8)
	if _, ok := m.Lookup("missing"); ok {
		t.Fatal("hit on empty memo")
	}
	m.Store("k", 2.0)
	if _, ok := m.Lookup("k"); !ok {
		t.Fatal("miss on stored key")
	}
	st := m.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Capacity != 8 {
		t.Fatalf("stats = %+v", st)
	}
}
