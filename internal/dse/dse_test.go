package dse

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"besst/internal/benchdata"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/workflow"
)

var (
	onceInterp   sync.Once
	interpModels *workflow.Models
	interpCamp   *benchdata.Campaign

	onceSymreg   sync.Once
	symregModels *workflow.Models
	symregCamp   *benchdata.Campaign
)

// devModels fits cheap interpolation models once for the whole test
// package (symreg is slower and exercised by the prune tests).
func devModels(t *testing.T) (*workflow.Models, *groundtruth.Emulator) {
	t.Helper()
	em := groundtruth.NewQuartz()
	onceInterp.Do(func() {
		interpModels, interpCamp = workflow.DevelopLuleshQuartz(em, 5, workflow.Interpolation, 7)
	})
	return interpModels, em
}

// devSymregModels fits symbolic-regression models once; unlike tables
// these carry non-zero error at benchmarked points, which the pruning
// report exists to flag.
func devSymregModels(t *testing.T) (*workflow.Models, *benchdata.Campaign) {
	t.Helper()
	onceSymreg.Do(func() {
		em := groundtruth.NewQuartz()
		symregModels, symregCamp = workflow.DevelopLuleshQuartz(em, 5, workflow.SymbolicRegression, 7)
	})
	return symregModels, symregCamp
}

func sweepCfg() SweepConfig {
	return SweepConfig{
		EPRs:      []int{10, 15},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: 80,
		MCRuns:    3,
		Seed:      11,
	}
}

func TestOverheadSweepShape(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	if len(cells) != 2*2*3 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.MeanSec <= 0 || c.OverheadPct <= 0 {
			t.Fatalf("bad cell %+v", c)
		}
	}
}

func TestOverheadBaselineIsHundred(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	for _, c := range cells {
		if c.Scenario == "No FT" && c.Ranks == 8 {
			// Baseline cell: its own normalizer (up to MC noise).
			if math.Abs(c.OverheadPct-100) > 15 {
				t.Fatalf("baseline overhead %v%% should be ~100%%", c.OverheadPct)
			}
		}
	}
}

func TestOverheadOrderingAcrossScenarios(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	get := func(sc string, epr, ranks int) float64 {
		for _, c := range cells {
			if c.Scenario == sc && c.EPR == epr && c.Ranks == ranks {
				return c.OverheadPct
			}
		}
		t.Fatalf("missing cell %s %d %d", sc, epr, ranks)
		return 0
	}
	// Fig 9 shape: No FT < L1 < L1&L2 everywhere.
	for _, epr := range []int{10, 15} {
		for _, ranks := range []int{8, 64} {
			noFT := get("No FT", epr, ranks)
			l1 := get("L1", epr, ranks)
			l12 := get("L1 & L2", epr, ranks)
			if !(noFT < l1 && l1 < l12) {
				t.Fatalf("ordering broken at epr=%d ranks=%d: %v %v %v", epr, ranks, noFT, l1, l12)
			}
		}
	}
	// Overheads grow with ranks (the Fig 9 64 -> 1000 trend).
	if get("L1", 10, 64) <= get("L1", 10, 8) {
		t.Fatal("L1 overhead should grow with ranks")
	}
}

func TestFormatOverheadTable(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	s := FormatOverheadTable(cells, 64)
	if !strings.Contains(s, "64 Ranks") || !strings.Contains(s, "No FT") || !strings.Contains(s, "%") {
		t.Fatalf("table rendering missing pieces:\n%s", s)
	}
	if strings.Contains(s, "8 Ranks") {
		t.Fatal("table leaked other rank counts")
	}
}

func TestPruneReport(t *testing.T) {
	models, campaign := devSymregModels(t)
	report := PruneReport(models, campaign, 1e-6) // flag everything
	if len(report) == 0 {
		t.Fatal("empty report")
	}
	flagged := 0
	for _, d := range report {
		if d.Flagged {
			flagged++
			if d.Advice == "" {
				t.Fatal("flagged divergence without advice")
			}
		}
	}
	if flagged == 0 {
		t.Fatal("threshold ~0 should flag points")
	}
	// With a huge threshold nothing is flagged.
	for _, d := range PruneReport(models, campaign, 1e9) {
		if d.Flagged {
			t.Fatal("nothing should be flagged at huge threshold")
		}
	}
}

func TestPruneReportAdviceSplitsByCost(t *testing.T) {
	models, campaign := devSymregModels(t)
	report := PruneReport(models, campaign, 1e-6)
	var cheap, expensive bool
	for _, d := range report {
		if strings.Contains(d.Advice, "benchmark directly") {
			cheap = true
		}
		if strings.Contains(d.Advice, "fine-grained") {
			expensive = true
		}
	}
	if !cheap || !expensive {
		t.Fatal("advice should split cheap and expensive regions")
	}
}

func TestRankFTLevels(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	ranked := RankFTLevels(cells, 10, 64)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Scenario != "No FT" {
		t.Fatalf("cheapest should be No FT, got %s", ranked[0].Scenario)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].MeanSec < ranked[i-1].MeanSec {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestSweepConfigValidate(t *testing.T) {
	cases := []struct {
		cfg   SweepConfig
		field string
	}{
		{SweepConfig{}, "eprs"},
		{SweepConfig{EPRs: []int{5}, Ranks: []int{8}, Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT}, Timesteps: 0, MCRuns: 1}, "timesteps"},
		{SweepConfig{EPRs: []int{5}, Ranks: []int{64, 8}, Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT}, Timesteps: 1, MCRuns: 1}, "ranks"},
	}
	for i, tc := range cases {
		err := tc.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("case %d: error %v, want *ConfigError", i, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("case %d: field %q, want %q", i, ce.Field, tc.field)
		}
	}
	// PrepareSweep keeps its historical panic contract on bad configs.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PrepareSweep accepted an invalid config")
			}
		}()
		PrepareSweep(nil, nil, 2, SweepConfig{})
	}()
}

// TestNewSweepConfigOptions proves the functional-option constructor is
// symmetric with a struct literal: same fields, same Validate verdict.
func TestNewSweepConfigOptions(t *testing.T) {
	got := NewSweepConfig(
		WithEPRs(5, 10),
		WithRanks(8, 64),
		WithScenarios(lulesh.ScenarioNoFT, lulesh.ScenarioL1),
		WithTimesteps(20),
		WithMCRuns(3),
		WithSeed(7),
		WithConcurrency(2),
	)
	want := SweepConfig{
		EPRs:      []int{5, 10},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1},
		Timesteps: 20, MCRuns: 3, Seed: 7, Workers: 2,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NewSweepConfig = %+v, want %+v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}
