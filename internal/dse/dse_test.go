package dse

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"besst/internal/benchdata"
	"besst/internal/groundtruth"
	"besst/internal/lulesh"
	"besst/internal/machine"
	"besst/internal/workflow"
)

var (
	onceInterp   sync.Once
	interpModels *workflow.Models
	interpCamp   *benchdata.Campaign

	onceSymreg   sync.Once
	symregModels *workflow.Models
	symregCamp   *benchdata.Campaign
)

// devModels fits cheap interpolation models once for the whole test
// package (symreg is slower and exercised by the prune tests).
func devModels(t *testing.T) (*workflow.Models, *groundtruth.Emulator) {
	t.Helper()
	em := groundtruth.NewQuartz()
	onceInterp.Do(func() {
		interpModels, interpCamp = workflow.DevelopLuleshQuartz(em, 5, workflow.Interpolation, 7)
	})
	return interpModels, em
}

// devSymregModels fits symbolic-regression models once; unlike tables
// these carry non-zero error at benchmarked points, which the pruning
// report exists to flag.
func devSymregModels(t *testing.T) (*workflow.Models, *benchdata.Campaign) {
	t.Helper()
	onceSymreg.Do(func() {
		em := groundtruth.NewQuartz()
		symregModels, symregCamp = workflow.DevelopLuleshQuartz(em, 5, workflow.SymbolicRegression, 7)
	})
	return symregModels, symregCamp
}

func sweepCfg() SweepConfig {
	return SweepConfig{
		EPRs:      []int{10, 15},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioL1L2},
		Timesteps: 80,
		MCRuns:    3,
		Seed:      11,
	}
}

func TestOverheadSweepShape(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	if len(cells) != 2*2*3 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.MeanSec <= 0 || c.OverheadPct <= 0 {
			t.Fatalf("bad cell %+v", c)
		}
	}
}

func TestOverheadBaselineIsHundred(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	for _, c := range cells {
		if c.Scenario == "No FT" && c.Ranks == 8 {
			// Baseline cell: its own normalizer (up to MC noise).
			if math.Abs(c.OverheadPct-100) > 15 {
				t.Fatalf("baseline overhead %v%% should be ~100%%", c.OverheadPct)
			}
		}
	}
}

func TestOverheadOrderingAcrossScenarios(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	get := func(sc string, epr, ranks int) float64 {
		for _, c := range cells {
			if c.Scenario == sc && c.EPR == epr && c.Ranks == ranks {
				return c.OverheadPct
			}
		}
		t.Fatalf("missing cell %s %d %d", sc, epr, ranks)
		return 0
	}
	// Fig 9 shape: No FT < L1 < L1&L2 everywhere.
	for _, epr := range []int{10, 15} {
		for _, ranks := range []int{8, 64} {
			noFT := get("No FT", epr, ranks)
			l1 := get("L1", epr, ranks)
			l12 := get("L1 & L2", epr, ranks)
			if !(noFT < l1 && l1 < l12) {
				t.Fatalf("ordering broken at epr=%d ranks=%d: %v %v %v", epr, ranks, noFT, l1, l12)
			}
		}
	}
	// Overheads grow with ranks (the Fig 9 64 -> 1000 trend).
	if get("L1", 10, 64) <= get("L1", 10, 8) {
		t.Fatal("L1 overhead should grow with ranks")
	}
}

func TestFormatOverheadTable(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	s := FormatOverheadTable(cells, 64)
	if !strings.Contains(s, "64 Ranks") || !strings.Contains(s, "No FT") || !strings.Contains(s, "%") {
		t.Fatalf("table rendering missing pieces:\n%s", s)
	}
	if strings.Contains(s, "8 Ranks") {
		t.Fatal("table leaked other rank counts")
	}
}

func TestPruneReport(t *testing.T) {
	models, campaign := devSymregModels(t)
	report := PruneReport(models, campaign, 1e-6) // flag everything
	if len(report) == 0 {
		t.Fatal("empty report")
	}
	flagged := 0
	for _, d := range report {
		if d.Flagged {
			flagged++
			if d.Advice == "" {
				t.Fatal("flagged divergence without advice")
			}
		}
	}
	if flagged == 0 {
		t.Fatal("threshold ~0 should flag points")
	}
	// With a huge threshold nothing is flagged.
	for _, d := range PruneReport(models, campaign, 1e9) {
		if d.Flagged {
			t.Fatal("nothing should be flagged at huge threshold")
		}
	}
}

func TestPruneReportAdviceSplitsByCost(t *testing.T) {
	models, campaign := devSymregModels(t)
	report := PruneReport(models, campaign, 1e-6)
	var cheap, expensive bool
	for _, d := range report {
		if strings.Contains(d.Advice, "benchmark directly") {
			cheap = true
		}
		if strings.Contains(d.Advice, "fine-grained") {
			expensive = true
		}
	}
	if !cheap || !expensive {
		t.Fatal("advice should split cheap and expensive regions")
	}
}

func TestRankFTLevels(t *testing.T) {
	models, _ := devModels(t)
	cells := OverheadSweep(models, machine.Quartz(), 2, sweepCfg())
	ranked := RankFTLevels(cells, 10, 64)
	if len(ranked) != 3 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0].Scenario != "No FT" {
		t.Fatalf("cheapest should be No FT, got %s", ranked[0].Scenario)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].MeanSec < ranked[i-1].MeanSec {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestSweepConfigValidate(t *testing.T) {
	cases := []struct {
		cfg   SweepConfig
		field string
	}{
		{SweepConfig{}, "eprs"},
		{SweepConfig{EPRs: []int{5}, Ranks: []int{8}, Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT}, Timesteps: 0, MCRuns: 1}, "timesteps"},
		{SweepConfig{EPRs: []int{5}, Ranks: []int{64, 8}, Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT}, Timesteps: 1, MCRuns: 1}, "ranks"},
	}
	for i, tc := range cases {
		err := tc.cfg.Validate()
		var ce *ConfigError
		if !errors.As(err, &ce) {
			t.Fatalf("case %d: error %v, want *ConfigError", i, err)
		}
		if ce.Field != tc.field {
			t.Fatalf("case %d: field %q, want %q", i, ce.Field, tc.field)
		}
	}
	// PrepareSweep keeps its historical panic contract on bad configs.
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("PrepareSweep accepted an invalid config")
			}
		}()
		PrepareSweep(nil, nil, 2, SweepConfig{})
	}()
}

// TestNewSweepConfigOptions proves the functional-option constructor is
// symmetric with a struct literal: same fields, same Validate verdict.
func TestNewSweepConfigOptions(t *testing.T) {
	got := NewSweepConfig(
		WithEPRs(5, 10),
		WithRanks(8, 64),
		WithScenarios(lulesh.ScenarioNoFT, lulesh.ScenarioL1),
		WithTimesteps(20),
		WithMCRuns(3),
		WithSeed(7),
		WithConcurrency(2),
	)
	want := SweepConfig{
		EPRs:      []int{5, 10},
		Ranks:     []int{8, 64},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1},
		Timesteps: 20, MCRuns: 3, Seed: 7, Workers: 2,
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NewSweepConfig = %+v, want %+v", got, want)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

// TestSweepConfigValidateDuplicates rejects duplicate EPRs and
// duplicate scenario names — both would double-evaluate points and
// silently skew the budget accounting of a surrogate-guided search.
func TestSweepConfigValidateDuplicates(t *testing.T) {
	dupEPR := SweepConfig{
		EPRs: []int{5, 10, 5}, Ranks: []int{8},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT},
		Timesteps: 1, MCRuns: 1,
	}
	var ce *ConfigError
	if err := dupEPR.Validate(); !errors.As(err, &ce) || ce.Field != "eprs" {
		t.Fatalf("duplicate eprs: got %v, want ConfigError on eprs", err)
	}
	dupSc := SweepConfig{
		EPRs: []int{5}, Ranks: []int{8},
		Scenarios: []lulesh.Scenario{lulesh.ScenarioNoFT, lulesh.ScenarioL1, lulesh.ScenarioNoFT},
		Timesteps: 1, MCRuns: 1,
	}
	if err := dupSc.Validate(); !errors.As(err, &ce) || ce.Field != "scenarios" {
		t.Fatalf("duplicate scenarios: got %v, want ConfigError on scenarios", err)
	}
}

// TestCellsNonPositiveBaseline pins the division-by-zero guard: a
// baseline point that failed (mean <= 0, possible only in a
// fault-isolated campaign) yields OverheadPct 0 for its whole column
// instead of Inf/NaN.
func TestCellsNonPositiveBaseline(t *testing.T) {
	models, em := devModels(t)
	prepared := PrepareSweep(models, em.M, 2, sweepCfg())
	means := make([]float64, prepared.NumPoints())
	for i := range means {
		means[i] = 1.0
	}
	// Zero out the epr=10 baseline (noft at the anchor rank count 8).
	bi, ok := prepared.PointIndex(10, 8, lulesh.ScenarioNoFT.Name)
	if !ok {
		t.Fatal("baseline point missing from grid")
	}
	means[bi] = 0
	for _, c := range prepared.Cells(means) {
		pct := c.OverheadPct
		if c.EPR == 10 && (pct < 0 || pct > 0) {
			t.Fatalf("epr=10 cell %s/%d: OverheadPct %v, want 0 (dead baseline)", c.Scenario, c.Ranks, pct)
		}
		if c.EPR == 15 && !(pct > 0) {
			t.Fatalf("epr=15 cell %s/%d: OverheadPct %v, want > 0 (live baseline)", c.Scenario, c.Ranks, pct)
		}
	}
}

// TestCellsBaselineIdentity pins the baseline memoization contract:
// the per-EPR noft baseline point IS the noft grid cell at the anchor
// rank count, so that cell divides its own mean and reports exactly
// 100% — not approximately.
func TestCellsBaselineIdentity(t *testing.T) {
	models, em := devModels(t)
	cfg := sweepCfg()
	prepared := PrepareSweep(models, em.M, 2, cfg)
	means := make([]float64, prepared.NumPoints())
	for i := range means {
		means[i] = prepared.EvalPoint(i)
	}
	for _, c := range prepared.Cells(means) {
		if c.Scenario == lulesh.ScenarioNoFT.Name && c.Ranks == cfg.Ranks[0] {
			if math.Abs(c.OverheadPct-100) > 0 {
				t.Fatalf("baseline cell epr=%d: OverheadPct %v, want exactly 100", c.EPR, c.OverheadPct)
			}
		}
	}
}

// TestPointLabelStable pins the label format: campaign journals and
// memo debugging both key provenance off these strings, so a format
// drift is a silent compatibility break.
func TestPointLabelStable(t *testing.T) {
	models, em := devModels(t)
	prepared := PrepareSweep(models, em.M, 2, sweepCfg())
	i, ok := prepared.PointIndex(15, 64, lulesh.ScenarioL1.Name)
	if !ok {
		t.Fatal("point missing from grid")
	}
	if got, want := prepared.PointLabel(i), "L1/epr=15/ranks=64"; got != want {
		t.Fatalf("PointLabel = %q, want %q", got, want)
	}
	// Labels are stable across independently prepared sweeps.
	again := PrepareSweep(models, em.M, 2, sweepCfg())
	if prepared.PointLabel(i) != again.PointLabel(i) {
		t.Fatal("PointLabel differs across identically configured sweeps")
	}
}
