package dse

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"besst/internal/par"
	"besst/internal/stats"
	"besst/internal/symreg"
)

// SearchConfig parameterizes the surrogate-guided sweep search: the
// paper's own model-development loop turned into a design-space
// explorer. Instead of fully simulating every grid cell, Search seeds a
// deterministic sample, fits cheap symbolic-regression surrogates per
// scenario on the evaluated (epr, ranks) -> mean points, and spends the
// remaining simulation budget only where the surrogates say the design
// looks cheap — discounted by their own residual uncertainty.
type SearchConfig struct {
	// Budget is the fraction of the grid's design points the search may
	// fully simulate, in (0, 1]. The floor is all per-EPR baselines
	// (Cells cannot normalize without them) plus one grid point.
	Budget float64
	// RoundSize bounds full simulations per refinement round; <= 0
	// selects a quarter of the budget (at least 1).
	RoundSize int
	// Explore weighs the surrogate's residual sigma in the acquisition
	// score: candidates are ranked by predicted mean discounted by
	// exp(-Explore*sigma), so an uncertain surrogate pulls its cells
	// forward for simulation. 0 selects the default 1.
	Explore float64
	// Patience is how many consecutive refinement rounds may pass
	// without the best fully simulated mean improving before the search
	// stops early and banks the remaining budget; <= 0 selects 2.
	Patience int
	// Cancel, when non-nil and closed, aborts the search at the next
	// round boundary with ErrSearchCanceled. Runtime plumbing only —
	// never part of a campaign's canonical identity.
	Cancel <-chan struct{} `json:"-"`
}

// Validate returns a *ConfigError for an unusable search config.
func (c SearchConfig) Validate() error {
	if !(c.Budget > 0 && c.Budget <= 1) {
		return &ConfigError{Field: "search.budget", Reason: fmt.Sprintf("budget %v outside (0, 1]", c.Budget)}
	}
	if c.RoundSize < 0 {
		return &ConfigError{Field: "search.round_size", Reason: fmt.Sprintf("negative round size %d", c.RoundSize)}
	}
	if c.Explore < 0 {
		return &ConfigError{Field: "search.explore", Reason: fmt.Sprintf("negative explore weight %v", c.Explore)}
	}
	if c.Patience < 0 {
		return &ConfigError{Field: "search.patience", Reason: fmt.Sprintf("negative patience %d", c.Patience)}
	}
	return nil
}

// SearchResult is the outcome of a surrogate-guided sweep search.
type SearchResult struct {
	// Cells covers the full grid in the same order as Grid.Cells /
	// OverheadSweep; cells never fully simulated carry the final
	// surrogate's predicted mean and Predicted=true.
	Cells []Cell
	// Evaluated lists the fully simulated point indices, ascending.
	Evaluated []int
	// FullSims is len(Evaluated): the simulation work actually spent.
	// It counts memo hits too — a hit replays a previous evaluation, so
	// the result document stays byte-identical warm or cold.
	FullSims int
	// Rounds counts evaluation rounds, including the seed round.
	Rounds int
	// BestIndex is the design-point index of the cheapest fully
	// simulated grid cell; Best is that cell (with its normalized
	// overhead). BestIndex is -1 only when the grid has no cells.
	BestIndex int
	Best      Cell
}

// ErrSearchCanceled reports a search aborted through SearchConfig.Cancel.
var ErrSearchCanceled = errors.New("dse: search canceled")

// searchRoundCollector is the optional per-round observability hook:
// a Collector that also implements it (internal/obs does, structurally)
// receives one call per evaluation round from the serial coordinator
// loop. Never influences results.
type searchRoundCollector interface {
	SearchRound(round, evals, cumEvals int, bestMean float64)
}

// searchSeedSalt decorrelates the surrogate GP seeds from the sweep's
// Monte Carlo seed fan without consuming master-seed draws (the point
// seeds must stay identical to an exhaustive sweep's).
const searchSeedSalt = 0x9e3779b97f4a7c15

// surrogateMinPoints is the fewest evaluated points a scenario needs
// before a surrogate is fit to it; below that its unevaluated cells are
// scored by the optimistic global-mean fallback so the next rounds pull
// them in and a surrogate can form.
const surrogateMinPoints = 3

// fallbackSigma is the uncertainty charged to scenarios without a
// surrogate yet.
const fallbackSigma = 1.0

// surrogateOptions is the per-round GP budget. Deliberately far smaller
// than model development's defaults: the surrogate only ranks
// candidates, so shape fidelity matters more than constant polish.
func surrogateOptions(seed uint64) symreg.Options {
	return symreg.Options{
		PopSize:     64,
		Generations: 30,
		Restarts:    2,
		MaxDepth:    5,
		TargetMAPE:  1,
		Seed:        seed,
	}
}

// Search runs the surrogate-guided exploration of the sweep grid and
// returns predicted-or-simulated cells for every grid point plus the
// best fully simulated configuration. Like the exhaustive sweep, the
// result is a pure function of the SweepConfig and SearchConfig: every
// simulated point uses its pre-drawn enumeration-order seed (so a
// point's mean is identical to what OverheadSweep computes for it),
// rounds are chosen by a serial coordinator loop, and only the
// evaluations inside a round fan out over cfg.Workers — byte-identical
// output at any worker count, memo cold or warm.
func (s *PreparedSweep) Search(scfg SearchConfig) (*SearchResult, error) {
	if err := scfg.Validate(); err != nil {
		return nil, err
	}
	cfg := s.cfg
	n := s.NumPoints()
	budget := int(math.Ceil(scfg.Budget * float64(n)))
	if floor := len(s.baseIdx) + 1; budget < floor {
		budget = floor
	}
	if budget > n {
		budget = n
	}
	roundSize := scfg.RoundSize
	if roundSize <= 0 {
		roundSize = max(1, budget/4)
	}
	patience := scfg.Patience
	if patience <= 0 {
		patience = 2
	}
	explore := defaultIfZero(scfg.Explore, 1)

	// gridPoint marks points that appear in the Cells output: the
	// no-FT baselines are output cells only when the no-FT scenario is
	// itself swept, and only grid cells compete for Best.
	gridPoint := make([]bool, n)
	for _, sc := range cfg.Scenarios {
		for _, ranks := range cfg.Ranks {
			for _, epr := range cfg.EPRs {
				gridPoint[s.index[pointKey{epr, ranks, sc.Name}]] = true
			}
		}
	}

	// scOf maps each point to its scenario slot; scenario slots are
	// enumeration-ordered and include the baseline scenario even when
	// it is not swept (its evaluated baselines still train a surrogate).
	scSlot := map[string]int{}
	var scCount int
	scOf := make([]int, n)
	for i := range s.points {
		name := s.points[i].sc.Name
		if _, ok := scSlot[name]; !ok {
			scSlot[name] = scCount
			scCount++
		}
		scOf[i] = scSlot[name]
	}

	evaluated := make([]bool, n)
	means := make([]float64, n)
	surrRNG := stats.NewRNG(cfg.Seed ^ searchSeedSalt)
	fits := make([]*symreg.Fitted, scCount)

	bestMean := math.Inf(1)
	bestIdx := -1
	total, rounds := 0, 0

	evalRound := func(batch []int) {
		rounds++
		par.ForEach(cfg.Workers, len(batch), func(k int) {
			means[batch[k]] = s.EvalPoint(batch[k])
		})
		for _, i := range batch {
			evaluated[i] = true
			total++
			if gridPoint[i] && means[i] < bestMean {
				bestMean = means[i]
				bestIdx = i
			}
		}
		if col, ok := cfg.Collector.(searchRoundCollector); ok {
			col.SearchRound(rounds, len(batch), total, bestMean)
		}
	}
	canceled := func() bool {
		if scfg.Cancel == nil {
			return false
		}
		select {
		case <-scfg.Cancel:
			return true
		default:
			return false
		}
	}

	// globalMean is the fallback predictor over everything evaluated.
	globalMean := func() float64 {
		var sum float64
		cnt := 0
		for i := range means {
			if evaluated[i] {
				sum += means[i]
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}

	// fitRound refits every scenario's surrogate on the points
	// evaluated so far. GP seeds are drawn serially per (round,
	// scenario) before the fits fan out, so fitting is deterministic at
	// any worker count; Refit warm-starts from last round's expression.
	fitRound := func() {
		seeds := make([]uint64, scCount)
		for i := range seeds {
			seeds[i] = surrRNG.Uint64()
		}
		par.ForEach(cfg.Workers, scCount, func(si int) {
			train := symreg.Dataset{VarNames: []string{"epr", "ranks"}}
			for i := 0; i < n; i++ {
				if evaluated[i] && scOf[i] == si {
					p := &s.points[i]
					train.X = append(train.X, []float64{float64(p.epr), float64(p.ranks)})
					train.Y = append(train.Y, means[i])
				}
			}
			if len(train.Y) < surrogateMinPoints {
				fits[si] = nil
				return
			}
			fits[si] = symreg.Refit(fits[si], train, symreg.Dataset{}, surrogateOptions(seeds[si]))
		})
	}

	// predict fills dst[i] for each unevaluated point index given, from
	// its scenario surrogate (or the global-mean fallback), returning
	// the value used for ranking and for final cell fill-in.
	var rowBuf [][]float64
	var predBuf []float64
	predictScenario := func(si int, idxs []int) []float64 {
		rowBuf = rowBuf[:0]
		for _, i := range idxs {
			p := &s.points[i]
			rowBuf = append(rowBuf, []float64{float64(p.epr), float64(p.ranks)})
		}
		gm := globalMean()
		out := make([]float64, len(idxs))
		if fits[si] == nil {
			for j := range out {
				out[j] = gm
			}
			return out
		}
		predBuf = fits[si].PredictBatch(rowBuf, predBuf)
		for j := range out {
			out[j] = predBuf[j]
			if out[j] <= 0 {
				// Degenerate surrogate output: fall back to the average
				// rather than letting a zero fake a free design.
				out[j] = gm
			}
		}
		return out
	}

	// Seed round: every per-EPR baseline (the Cells normalizers) plus
	// an even-stride sample of the remaining grid covering about half
	// the budget — all chosen before any simulation, so the seed set is
	// a pure function of the config.
	if canceled() {
		return nil, ErrSearchCanceled
	}
	inSeed := make([]bool, n)
	var batch []int
	for _, i := range s.baseIdx {
		if !inSeed[i] {
			inSeed[i] = true
			batch = append(batch, i)
		}
	}
	var rest []int
	for i := 0; i < n; i++ {
		if !inSeed[i] {
			rest = append(rest, i)
		}
	}
	seedN := budget / 2
	if floor := len(batch) + 1; seedN < floor {
		seedN = floor
	}
	if seedN > budget {
		seedN = budget
	}
	if k := min(seedN-len(batch), len(rest)); k > 0 {
		for j := 0; j < k; j++ {
			batch = append(batch, rest[j*len(rest)/k])
		}
	}
	sort.Ints(batch)
	evalRound(batch)

	// Refinement rounds: refit, rank the unevaluated frontier by
	// uncertainty-discounted predicted cost, simulate the cheapest
	// looking candidates, stop on budget exhaustion or convergence.
	stale := 0
	for total < budget {
		if canceled() {
			return nil, ErrSearchCanceled
		}
		fitRound()
		type cand struct {
			idx int
			acq float64
		}
		var cands []cand
		for si := 0; si < scCount; si++ {
			var idxs []int
			for i := 0; i < n; i++ {
				if !evaluated[i] && scOf[i] == si {
					idxs = append(idxs, i)
				}
			}
			if len(idxs) == 0 {
				continue
			}
			preds := predictScenario(si, idxs)
			sigma := fallbackSigma
			if fits[si] != nil {
				sigma = fits[si].ResidualSigma
			}
			disc := math.Exp(-explore * sigma)
			for j, i := range idxs {
				cands = append(cands, cand{idx: i, acq: preds[j] * disc})
			}
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].acq < cands[b].acq {
				return true
			}
			if cands[b].acq < cands[a].acq {
				return false
			}
			return cands[a].idx < cands[b].idx
		})
		k := min(roundSize, budget-total)
		if k > len(cands) {
			k = len(cands)
		}
		pick := make([]int, 0, k)
		for _, c := range cands[:k] {
			pick = append(pick, c.idx)
		}
		sort.Ints(pick)
		prevBest := bestMean
		evalRound(pick)
		if bestMean < prevBest {
			stale = 0
		} else {
			stale++
			if stale >= patience {
				break
			}
		}
	}

	// Final fill: refit on everything evaluated, then let the
	// surrogates stand in for the cells the budget never reached.
	fitRound()
	for si := 0; si < scCount; si++ {
		var idxs []int
		for i := 0; i < n; i++ {
			if !evaluated[i] && scOf[i] == si {
				idxs = append(idxs, i)
			}
		}
		if len(idxs) == 0 {
			continue
		}
		preds := predictScenario(si, idxs)
		for j, i := range idxs {
			means[i] = preds[j]
		}
	}

	cells := s.Cells(means)
	ci := 0
	for _, sc := range cfg.Scenarios {
		for _, ranks := range cfg.Ranks {
			for _, epr := range cfg.EPRs {
				if !evaluated[s.index[pointKey{epr, ranks, sc.Name}]] {
					cells[ci].Predicted = true
				}
				ci++
			}
		}
	}

	res := &SearchResult{
		Cells:     cells,
		FullSims:  total,
		Rounds:    rounds,
		BestIndex: bestIdx,
	}
	for i := 0; i < n; i++ {
		if evaluated[i] {
			res.Evaluated = append(res.Evaluated, i)
		}
	}
	if bestIdx >= 0 {
		p := &s.points[bestIdx]
		for _, c := range cells {
			if c.EPR == p.epr && c.Ranks == p.ranks && c.Scenario == p.sc.Name {
				res.Best = c
				break
			}
		}
	}
	return res, nil
}

// defaultIfZero substitutes def when v is exactly zero — the unset
// sentinel for SearchConfig fields, mirroring symreg.Options.
func defaultIfZero(v, def float64) float64 {
	//lint:ignore floateq zero is the unset sentinel; only an exact zero means "use the default"
	if v == 0 {
		return def
	}
	return v
}
