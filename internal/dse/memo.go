package dse

import (
	"bufio"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// PointHash is the canonical cross-campaign identity of one design
// point evaluation: the model-bundle hash (which machine, app, model
// method, sample count, and model seed produced the predictors), the
// point configuration, and the point's pre-drawn Monte Carlo seed.
// Everything that can change the mean makespan is folded into the key,
// so two campaigns that agree on a key would compute the identical
// mean — which is what makes memoized results safe to share across
// campaigns, tenants, and processes.
func PointHash(bundle string, epr, ranks int, scenario string, timesteps, mcRuns int, seed uint64) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("besst-point-v1|%s|epr=%d|ranks=%d|sc=%s|steps=%d|mc=%d|seed=%d",
		bundle, epr, ranks, scenario, timesteps, mcRuns, seed)))
	return hex.EncodeToString(h[:])
}

// memoRecord is one journal line: the point's content hash and its mean
// makespan. float64 JSON round-trips exactly (Go emits the shortest
// round-trippable decimal), so a journal-restored hit reproduces the
// original evaluation bit for bit.
type memoRecord struct {
	Key  string  `json:"key"`
	Mean float64 `json:"mean"`
}

// MemoStats is a point-memo counter snapshot (served by /v1/statz).
type MemoStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Journaled counts entries restored from the on-disk journal when
	// the memo was opened.
	Journaled int `json:"journaled,omitempty"`
}

// DefaultMemoCapacity bounds an unconfigured memo. A design-point entry
// is a hash and a float, so even the default retains far more points
// than a single campaign evaluates.
const DefaultMemoCapacity = 1 << 15

// Memo is the cross-campaign design-point result cache: an LRU map from
// PointHash keys to mean makespans, optionally backed by an append-only
// JSONL journal so warm results survive process restarts. One memo is
// shared by every execution path — besst-dse, besst-serve campaigns,
// and the dist ShardExecutor — so overlapping sweeps and repeated
// service requests never re-simulate a design point.
//
// Results are byte-identical whether the memo is cold or warm: a hit
// returns exactly the float64 the original evaluation produced, and the
// key includes the point's pre-drawn seed, so a hit can only ever stand
// in for the same deterministic computation.
type Memo struct {
	mu      sync.Mutex
	entries map[string]*list.Element // guarded by mu
	lru     *list.List               // front = most recent; guarded by mu
	journal *os.File                 // nil when in-memory only; guarded by mu
	hits    uint64                   // guarded by mu
	misses  uint64                   // guarded by mu
	evicted uint64                   // guarded by mu
	loaded  int                      // journal entries restored; guarded by mu

	capacity int // immutable after construction
}

type memoEntry struct {
	key  string
	mean float64
}

// NewMemo returns an in-memory point memo. capacity <= 0 selects
// DefaultMemoCapacity.
func NewMemo(capacity int) *Memo {
	if capacity <= 0 {
		capacity = DefaultMemoCapacity
	}
	m := &Memo{
		entries:  make(map[string]*list.Element),
		lru:      list.New(),
		capacity: capacity,
	}
	return m
}

// NewMemoJournal returns a point memo backed by an append-only JSONL
// journal at path. Existing entries are restored first — torn or
// garbage tail lines are skipped, the same crash-tolerant journal
// discipline as internal/resilience — and every new entry is appended.
func NewMemoJournal(capacity int, path string) (*Memo, error) {
	m := NewMemo(capacity)
	if err := m.restore(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.journal = f
	m.mu.Unlock()
	return m, nil
}

// restore loads the journal at path into the memo, if it exists.
// Duplicate keys keep the first-seen mean (later lines for a key can
// only be re-appends of the same deterministic value).
func (m *Memo) restore(path string) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	m.mu.Lock()
	for sc.Scan() {
		var rec memoRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" {
			continue // torn tail or garbage line
		}
		if _, ok := m.entries[rec.Key]; ok {
			continue
		}
		m.entries[rec.Key] = m.lru.PushFront(&memoEntry{key: rec.Key, mean: rec.Mean})
		for len(m.entries) > m.capacity {
			oldest := m.lru.Back()
			m.lru.Remove(oldest)
			delete(m.entries, oldest.Value.(*memoEntry).key)
			m.evicted++
		}
	}
	m.loaded = len(m.entries)
	m.mu.Unlock()
	if err := f.Close(); err != nil {
		return err
	}
	return sc.Err()
}

// Lookup returns the memoized mean for key and refreshes its recency.
func (m *Memo) Lookup(key string) (float64, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		m.lru.MoveToFront(el)
		m.hits++
		return el.Value.(*memoEntry).mean, true
	}
	m.misses++
	return 0, false
}

// Store memoizes mean under key. Re-storing a present key only
// refreshes recency — the value cannot differ (the key hashes every
// input of the deterministic evaluation) and is never re-journaled.
func (m *Memo) Store(key string, mean float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		m.lru.MoveToFront(el)
		return
	}
	m.entries[key] = m.lru.PushFront(&memoEntry{key: key, mean: mean})
	for len(m.entries) > m.capacity {
		oldest := m.lru.Back()
		m.lru.Remove(oldest)
		delete(m.entries, oldest.Value.(*memoEntry).key)
		m.evicted++
	}
	if m.journal == nil {
		return
	}
	line, err := json.Marshal(memoRecord{Key: key, Mean: mean})
	if err == nil {
		_, err = m.journal.Write(append(line, '\n'))
	}
	if err != nil {
		// A failed append degrades persistence, not correctness: drop
		// the journal and keep serving from memory.
		_ = m.journal.Close()
		m.journal = nil
	}
}

// Stats snapshots the counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Entries:   len(m.entries),
		Capacity:  m.capacity,
		Hits:      m.hits,
		Misses:    m.misses,
		Evictions: m.evicted,
		Journaled: m.loaded,
	}
}

// Close closes the journal, if any. The memo stays usable in-memory.
func (m *Memo) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil {
		return nil
	}
	err := m.journal.Close()
	m.journal = nil
	return err
}
